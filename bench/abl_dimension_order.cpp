// Ablation A2 — the increasing-index dimension order.  The paper routes
// every packet through its required dimensions in increasing order, which
// makes the equivalent network levelled (Property B) and the analysis
// possible.  This ablation re-routes with decreasing and random-per-hop
// orders: by symmetry every arc still carries rate rho, and the measured
// delay barely moves — evidence that the canonical order is an analytical
// device, not a performance optimisation, and that the paper's bounds
// describe "dimension-order routing" broadly.

#include <iostream>

#include "common/table.hpp"
#include "core/bounds.hpp"
#include "routing/greedy_hypercube.hpp"

using namespace routesim;

namespace {

double run_with(DimensionOrder order, int d, double rho, std::uint64_t seed) {
  GreedyHypercubeConfig config;
  config.d = d;
  config.lambda = 2.0 * rho;
  config.destinations = DestinationDistribution::uniform(d);
  config.seed = seed;
  config.dimension_order = order;
  GreedyHypercubeSim sim(config);
  sim.run(1500.0, 31500.0);
  return sim.delay().mean();
}

}  // namespace

int main() {
  std::cout << "A2: dimension-order ablation (d = 6, p = 1/2)\n";
  std::cout << "paper: increasing index order (canonical paths, levelled Q)\n\n";

  const int d = 6;
  benchtab::Checker checker;
  benchtab::Table table({"rho", "increasing (paper)", "decreasing", "random/hop",
                         "UB (P12)"});

  for (const double rho : {0.3, 0.6, 0.9}) {
    const double increasing = run_with(DimensionOrder::kIncreasing, d, rho, 3);
    const double decreasing = run_with(DimensionOrder::kDecreasing, d, rho, 3);
    const double random = run_with(DimensionOrder::kRandomPerHop, d, rho, 3);
    const double ub = bounds::greedy_delay_upper_bound({d, 2.0 * rho, 0.5});
    table.add_row({benchtab::fmt(rho, 1), benchtab::fmt(increasing),
                   benchtab::fmt(decreasing), benchtab::fmt(random),
                   benchtab::fmt(ub)});

    checker.require(std::abs(decreasing / increasing - 1.0) < 0.05,
                    "rho=" + benchtab::fmt(rho, 1) +
                        ": decreasing order within 5% of canonical "
                        "(fixed orders equivalent by symmetry)");
    checker.require(random >= increasing * 0.99 && random <= increasing * 1.2,
                    "rho=" + benchtab::fmt(rho, 1) +
                        ": random-per-hop slightly worse (mixing adds "
                        "interference) but within 20%");
    checker.require(decreasing <= ub * 1.05 && random <= ub * 1.05,
                    "rho=" + benchtab::fmt(rho, 1) +
                        ": ablated orders still satisfy the P12 value");
  }
  table.print();

  std::cout << "\nConclusion: every *fixed* dimension order is statistically\n"
               "identical (relabelling symmetry); per-hop random order mixes\n"
               "the streams and measurably adds delay (+6% at rho=0.6, +13% at\n"
               "rho=0.9) while staying inside the P12 bound.  The increasing\n"
               "order is what makes the proof (levelled Q, Property B) work.\n";
  return checker.summarize();
}
