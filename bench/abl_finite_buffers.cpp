// Ablation A3 — finite buffers.  The paper assumes infinite buffers; real
// switches have finite ones.  The product-form majorant (Prop. 12 proof)
// says per-arc occupancy is stochastically below geometric(rho), so the
// loss rate of a capacity-B arc should decay roughly like rho^B.  This
// ablation measures packet-loss versus buffer capacity and compares with
// the geometric tail P[N >= B] = rho^B.

#include <cmath>
#include <iostream>

#include "common/table.hpp"
#include "routing/greedy_hypercube.hpp"

using namespace routesim;

int main() {
  std::cout << "A3: finite-buffer ablation (d = 5, p = 1/2)\n";
  std::cout << "loss fraction vs per-arc buffer capacity B; reference tail "
               "rho^B (geometric majorant)\n\n";

  benchtab::Checker checker;
  for (const double rho : {0.6, 0.9}) {
    std::cout << "rho = " << rho << ":\n";
    benchtab::Table table({"B", "loss fraction", "geometric tail rho^B",
                           "delay (survivors)"});
    double previous_loss = 1.0;
    bool monotone = true;
    double loss_at_8 = 0.0;
    for (const std::uint32_t capacity : {1u, 2u, 4u, 8u, 16u}) {
      GreedyHypercubeConfig config;
      config.d = 5;
      config.lambda = 2.0 * rho;
      config.destinations = DestinationDistribution::uniform(5);
      config.seed = 515;
      config.buffer_capacity = capacity;
      GreedyHypercubeSim sim(config);
      sim.run(1000.0, 61000.0);
      const double loss = static_cast<double>(sim.drops_in_window()) /
                          static_cast<double>(sim.arrivals_in_window());
      monotone = monotone && loss <= previous_loss + 1e-9;
      previous_loss = loss;
      if (capacity == 8) loss_at_8 = loss;
      table.add_row({std::to_string(capacity), benchtab::fmt(loss, 5),
                     benchtab::fmt(std::pow(rho, capacity), 5),
                     benchtab::fmt(sim.delay().mean(), 2)});
    }
    table.print();
    checker.require(monotone, "rho=" + benchtab::fmt(rho, 1) +
                                  ": loss monotonically decreasing in B");
    checker.require(loss_at_8 <= std::pow(rho, 8) * 3.0 + 1e-4,
                    "rho=" + benchtab::fmt(rho, 1) +
                        ": loss at B=8 within ~3x of the geometric tail");
    std::cout << '\n';
  }

  std::cout << "Conclusion: the infinite-buffer assumption is benign — a\n"
               "buffer of a dozen slots per arc makes losses negligible at\n"
               "any fixed rho < 1, exactly as the geometric occupancy\n"
               "majorant predicts.\n";
  return checker.summarize();
}
