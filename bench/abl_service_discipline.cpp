// Ablation A1 — the FIFO priority rule.  The paper fixes FIFO at every arc
// ("priority is given to the one that arrived first", §3).  This ablation
// swaps in LIFO and random order: all three are work-conserving and blind
// to service requirements, so the MEAN delay — the quantity Props. 12/13
// bound — is unchanged; only the delay distribution's shape moves.  The
// FIFO choice therefore costs nothing in mean and buys the best tail.

#include <iostream>

#include "common/table.hpp"
#include "routing/greedy_hypercube.hpp"

using namespace routesim;

namespace {

struct Outcome {
  double mean, stddev, p99, max;
};

Outcome run_with(ArcServiceOrder order, double rho, std::uint64_t seed) {
  GreedyHypercubeConfig config;
  config.d = 6;
  config.lambda = 2.0 * rho;
  config.destinations = DestinationDistribution::uniform(6);
  config.seed = seed;
  config.arc_service_order = order;
  config.track_delay_histogram = true;
  GreedyHypercubeSim sim(config);
  sim.run(1500.0, 41500.0);
  return Outcome{sim.delay().mean(), sim.delay().stddev(),
                 sim.delay_histogram()->quantile(0.99), sim.delay().max()};
}

}  // namespace

int main() {
  std::cout << "A1: arc service discipline ablation (d = 6, p = 1/2)\n";
  std::cout << "paper's rule: FIFO; ablations: LIFO, random order\n\n";

  benchtab::Checker checker;
  for (const double rho : {0.5, 0.8}) {
    std::cout << "rho = " << rho << ":\n";
    const auto fifo = run_with(ArcServiceOrder::kFifo, rho, 7);
    const auto lifo = run_with(ArcServiceOrder::kLifo, rho, 7);
    const auto random = run_with(ArcServiceOrder::kRandom, rho, 7);

    benchtab::Table table({"discipline", "mean T", "stddev", "p99", "max"});
    table.add_row({"FIFO (paper)", benchtab::fmt(fifo.mean), benchtab::fmt(fifo.stddev),
                   benchtab::fmt(fifo.p99, 1), benchtab::fmt(fifo.max, 1)});
    table.add_row({"LIFO", benchtab::fmt(lifo.mean), benchtab::fmt(lifo.stddev),
                   benchtab::fmt(lifo.p99, 1), benchtab::fmt(lifo.max, 1)});
    table.add_row({"random", benchtab::fmt(random.mean), benchtab::fmt(random.stddev),
                   benchtab::fmt(random.p99, 1), benchtab::fmt(random.max, 1)});
    table.print();

    checker.require(std::abs(lifo.mean / fifo.mean - 1.0) < 0.03 &&
                        std::abs(random.mean / fifo.mean - 1.0) < 0.03,
                    "rho=" + benchtab::fmt(rho, 1) +
                        ": mean delay insensitive to the service order");
    checker.require(fifo.p99 <= lifo.p99 && fifo.p99 <= random.p99 * 1.05,
                    "rho=" + benchtab::fmt(rho, 1) +
                        ": FIFO has the lightest p99 tail");
    checker.require(lifo.stddev > fifo.stddev,
                    "rho=" + benchtab::fmt(rho, 1) + ": LIFO inflates variance");
    std::cout << '\n';
  }

  std::cout << "Conclusion: Props. 12/13 would hold for any work-conserving\n"
               "order; FIFO additionally minimises the tail — the right choice\n"
               "both analytically and practically.\n";
  return checker.summarize();
}
