#pragma once
/// \file driver.hpp
/// \brief Declarative bench harness over the Scenario API: a bench binary
///        is a table of named `Scenario`s plus its experiment-specific
///        checks.
///
/// Each added case runs on the process-wide campaign engine
/// (core/campaign.hpp) behind shared_engine(): one result cache per
/// binary, so a cell repeated across cases or suites is never recomputed,
/// and whole grids (add_campaign) schedule every replication onto one
/// shared worker pool instead of draining a pool per cell.  The driver
/// prints one aligned row per case (simulated delay between the paper's
/// bounds, plus any scheme-specific extra metrics), applies the two
/// standard acceptance checks uniformly (bracket containment and
/// Little's-law consistency), and handles the shared CLI surface
/// (`--json PATH` reports).  Custom shape checks go through
/// checker()/outcomes().
///
/// Header-only, like table.hpp: build/bench holds only executables.

#include <atomic>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/table.hpp"
#include "core/campaign.hpp"
#include "core/scenario.hpp"
#include "obs/trace.hpp"
#include "store/result_store.hpp"

namespace benchdrive {

/// One experiment point: a label, a scenario, and which of the standard
/// checks apply to it.
struct Case {
  std::string label;
  routesim::Scenario scenario;
  bool check_bracket = true;   ///< delay within [LB, UB] (when bounds exist)
  bool check_little = true;    ///< Little's-law error below little_tol
  double little_tol = 0.05;
  double bracket_slack = 0.0;  ///< widens the bracket check in delay units
};

struct Outcome {
  Case spec;
  routesim::RunResult result;
};

/// The durable tier the shared engine will use, settable *before* the
/// first shared_engine() call (routesim_bench --store PATH does this).
/// Falls back to the ROUTESIM_STORE environment variable, so *any* bench
/// binary gains persistent, cross-process result reuse without flags.
inline routesim::ResultBackend*& shared_store_slot() {
  static routesim::ResultBackend* store = nullptr;
  return store;
}

/// Cooperative-stop token for the shared engine, settable before the
/// first shared_engine() call (routesim_bench's SIGINT/SIGTERM handler).
inline const std::atomic<bool>*& shared_stop_slot() {
  static const std::atomic<bool>* stop = nullptr;
  return stop;
}

/// Execution-trace session for the shared engine, settable before the
/// first shared_engine() call (routesim_bench --trace PATH).
inline routesim::obs::TraceSession*& shared_trace_slot() {
  static routesim::obs::TraceSession* trace = nullptr;
  return trace;
}

/// Installs the durable store behind the binary-wide engine.  Call before
/// the first add()/add_campaign() — the engine snapshots its options once.
inline void attach_store(routesim::ResultBackend* store) {
  shared_store_slot() = store;
}

/// Installs the stop token checked between replications by the shared
/// engine's workers.  Call before the first add()/add_campaign().
inline void attach_stop(const std::atomic<bool>* stop) {
  shared_stop_slot() = stop;
}

/// Installs the execution tracer the shared engine records spans into
/// (obs/trace.hpp).  Call before the first add()/add_campaign(); the
/// caller owns the session and exports it (TraceSession::write_file)
/// after the work quiesces.
inline void attach_trace(routesim::obs::TraceSession* trace) {
  shared_trace_slot() = trace;
}

/// The campaign engine every suite in this binary shares: one in-process
/// result cache — so equal cells across cases (and suites) are free —
/// plus the optional durable store and stop token attached above.
inline routesim::Engine& shared_engine() {
  static routesim::ResultCache cache;
  static routesim::Engine engine = [] {
    if (shared_store_slot() == nullptr) {
      if (const char* env_path = std::getenv("ROUTESIM_STORE");
          env_path != nullptr && *env_path != '\0') {
        static routesim::ResultStore env_store{std::string(env_path)};
        if (env_store.ok()) shared_store_slot() = &env_store;
      }
    }
    routesim::EngineOptions options;
    options.threads = 0;
    options.cache = &cache;
    options.store = shared_store_slot();
    options.stop = shared_stop_slot();
    options.trace = shared_trace_slot();
    return routesim::Engine(std::move(options));
  }();
  return engine;
}

class Suite {
 public:
  /// `extra_columns` names scheme extra metrics shown as table columns
  /// (means of the across-replication intervals).
  Suite(std::string name, const std::string& title,
        std::vector<std::string> extra_columns = {})
      : name_(std::move(name)),
        extra_columns_(std::move(extra_columns)),
        table_(make_headers(extra_columns_)),
        report_(name_) {
    std::cout << title << "\n\n";
  }

  /// Runs the case now (a one-cell campaign on the shared engine, so the
  /// binary-wide cache applies) and records its row + standard checks.
  const routesim::RunResult& add(Case spec) {
    routesim::RunResult result = shared_engine().run_one(spec.scenario);
    return record(std::move(spec), std::move(result));
  }

  /// Runs every cell of `campaign` on the shared scheduler — replications
  /// from all cells on one worker pool, extra `sinks` streamed as cells
  /// finish — then records one row per cell *in cell order*.  `tune`
  /// (optional) adjusts the default checks per case before they apply.
  /// Cells cancelled by a cooperative stop (attach_stop) come back with
  /// completed == false and are *not* recorded — their default-constructed
  /// results would fail every check; the caller counts them for the
  /// "N cells checkpointed" report.
  std::vector<routesim::CellResult> add_campaign(
      const routesim::Campaign& campaign,
      const std::function<void(Case&)>& tune = {},
      const std::vector<routesim::ResultSink*>& sinks = {}) {
    routesim::EngineOptions options = shared_engine().options();
    options.sinks.insert(options.sinks.end(), sinks.begin(), sinks.end());
    const routesim::Engine engine(std::move(options));
    std::vector<routesim::CellResult> cells = engine.run(campaign);
    for (const auto& cell : cells) {
      if (!cell.completed) continue;
      Case spec{cell.label, cell.scenario};
      if (tune) tune(spec);
      record(std::move(spec), cell.result);
    }
    return cells;
  }

  /// Records an already-computed result: table row + standard checks.
  const routesim::RunResult& record(Case spec, routesim::RunResult result) {
    outcomes_.push_back({std::move(spec), std::move(result)});
    const Case& c = outcomes_.back().spec;
    const routesim::RunResult& r = outcomes_.back().result;

    std::vector<std::string> row{
        c.label,
        benchtab::fmt(r.rho, 2),
        r.has_bounds ? benchtab::fmt(r.lower_bound) : "-",
        benchtab::fmt(r.delay.mean),
        benchtab::fmt(r.delay.half_width),
        r.has_bounds ? benchtab::fmt(r.upper_bound) : "-",
        benchtab::fmt(r.throughput.mean, 2),
        benchtab::fmt(r.max_little_error, 4)};
    for (const auto& column : extra_columns_) {
      const auto* interval = r.extra(column);
      row.push_back(interval ? benchtab::fmt(interval->mean) : "-");
    }
    row.push_back(!r.has_bounds ? "-"
                                : r.within_bracket(c.bracket_slack) ? "yes" : "NO");
    table_.add_row(std::move(row));

    if (c.check_bracket && r.has_bounds) {
      checker_.require(r.within_bracket(c.bracket_slack),
                       c.label + ": simulated T within the paper's bracket");
    }
    if (c.check_little) {
      checker_.require(r.max_little_error < c.little_tol,
                       c.label + ": Little's law consistent");
    }
    return r;
  }

  [[nodiscard]] benchtab::Checker& checker() noexcept { return checker_; }
  [[nodiscard]] const std::vector<Outcome>& outcomes() const noexcept {
    return outcomes_;
  }
  [[nodiscard]] const routesim::RunResult& result(std::size_t i) const {
    return outcomes_.at(i).result;
  }
  [[nodiscard]] benchtab::JsonReport& report() noexcept { return report_; }

  /// Prints the table and the check summary, honours --json, and returns
  /// the process exit code.
  int finish(int argc, char** argv) {
    table_.print();
    report_.add_table("results", table_);
    const int exit_code = checker_.summarize();
    const std::string json_path = benchtab::json_path_from_args(argc, argv);
    if (!json_path.empty()) report_.write(json_path, checker_);
    return exit_code;
  }

 private:
  static std::vector<std::string> make_headers(
      const std::vector<std::string>& extra_columns) {
    std::vector<std::string> headers{"case", "rho",  "LB",    "T sim",
                                     "+/-",  "UB",   "thpt",  "little"};
    headers.insert(headers.end(), extra_columns.begin(), extra_columns.end());
    headers.push_back("in bracket");
    return headers;
  }

  std::string name_;
  std::vector<std::string> extra_columns_;
  benchtab::Table table_;
  benchtab::Checker checker_;
  benchtab::JsonReport report_;
  std::vector<Outcome> outcomes_;
};

}  // namespace benchdrive
