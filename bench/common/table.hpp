#pragma once
/// \file table.hpp
/// \brief Shared helpers for the experiment harnesses in bench/:
///        aligned-column table printing and acceptance checking.
///
/// Every bench binary prints the table(s) it reproduces and then a PASS/FAIL
/// summary of its acceptance checks (the "shape" claims from the paper);
/// the process exits non-zero if any check fails, so the bench suite doubles
/// as an integration gate.
///
/// Header-only on purpose: build/bench must contain only executables
/// (the standard run loop executes every file in that directory).

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace benchtab {

/// Formats a double with fixed precision, trimming to a compact width.
inline std::string fmt(double value, int precision = 3) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

inline std::string fmt_int(std::uint64_t value) { return std::to_string(value); }

/// Column-aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    const auto line = [&] {
      os << '+';
      for (const auto w : width) os << std::string(w + 2, '-') << '+';
      os << '\n';
    };
    const auto emit = [&](const std::vector<std::string>& cells) {
      os << '|';
      for (std::size_t c = 0; c < width.size(); ++c) {
        const std::string& cell = c < cells.size() ? cells[c] : std::string{};
        os << ' ' << cell << std::string(width[c] - cell.size() + 1, ' ') << '|';
      }
      os << '\n';
    };
    line();
    emit(headers_);
    line();
    for (const auto& row : rows_) emit(row);
    line();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Collects named pass/fail acceptance checks.
class Checker {
 public:
  void require(bool condition, const std::string& description) {
    results_.emplace_back(condition, description);
    if (!condition) ++failures_;
  }

  /// Prints the summary; returns the process exit code (0 iff all passed).
  int summarize(std::ostream& os = std::cout) const {
    os << '\n';
    for (const auto& [passed, description] : results_) {
      os << (passed ? "  [PASS] " : "  [FAIL] ") << description << '\n';
    }
    os << (failures_ == 0 ? "ALL CHECKS PASSED" : "CHECKS FAILED") << " ("
       << results_.size() - failures_ << '/' << results_.size() << ")\n";
    return failures_ == 0 ? 0 : 1;
  }

 private:
  std::vector<std::pair<bool, std::string>> results_;
  int failures_ = 0;
};

}  // namespace benchtab
