#pragma once
/// \file table.hpp
/// \brief Shared helpers for the experiment harnesses in bench/:
///        aligned-column table printing and acceptance checking.
///
/// Every bench binary prints the table(s) it reproduces and then a PASS/FAIL
/// summary of its acceptance checks (the "shape" claims from the paper);
/// the process exits non-zero if any check fails, so the bench suite doubles
/// as an integration gate.
///
/// Passing `--json PATH` to a bench binary additionally writes a
/// machine-readable report (every table row keyed by header + the check
/// results) so bench outputs can be tracked as BENCH_*.json across PRs —
/// see JsonReport below.
///
/// Header-only on purpose: build/bench must contain only executables
/// (the standard run loop executes every file in that directory).

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/atomic_file.hpp"

namespace benchtab {

/// Formats a double with fixed precision, trimming to a compact width.
inline std::string fmt(double value, int precision = 3) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

inline std::string fmt_int(std::uint64_t value) { return std::to_string(value); }

/// JSON string escaping (quotes, backslashes, control characters).
inline std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Column-aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    const auto line = [&] {
      os << '+';
      for (const auto w : width) os << std::string(w + 2, '-') << '+';
      os << '\n';
    };
    const auto emit = [&](const std::vector<std::string>& cells) {
      os << '|';
      for (std::size_t c = 0; c < width.size(); ++c) {
        const std::string& cell = c < cells.size() ? cells[c] : std::string{};
        os << ' ' << cell << std::string(width[c] - cell.size() + 1, ' ') << '|';
      }
      os << '\n';
    };
    line();
    emit(headers_);
    line();
    for (const auto& row : rows_) emit(row);
    line();
  }

  /// Rows as a JSON array of objects keyed by the column headers.
  void json(std::ostream& os) const {
    os << '[';
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      os << (r == 0 ? "" : ",") << "\n    {";
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        const std::string& cell = c < rows_[r].size() ? rows_[r][c] : std::string{};
        os << (c == 0 ? "" : ", ") << '"' << json_escape(headers_[c]) << "\": \""
           << json_escape(cell) << '"';
      }
      os << '}';
    }
    os << (rows_.empty() ? "]" : "\n  ]");
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Collects named pass/fail acceptance checks.
class Checker {
 public:
  void require(bool condition, const std::string& description) {
    results_.emplace_back(condition, description);
    if (!condition) ++failures_;
  }

  /// Prints the summary; returns the process exit code (0 iff all passed).
  int summarize(std::ostream& os = std::cout) const {
    os << '\n';
    for (const auto& [passed, description] : results_) {
      os << (passed ? "  [PASS] " : "  [FAIL] ") << description << '\n';
    }
    os << (failures_ == 0 ? "ALL CHECKS PASSED" : "CHECKS FAILED") << " ("
       << results_.size() - failures_ << '/' << results_.size() << ")\n";
    return failures_ == 0 ? 0 : 1;
  }

  [[nodiscard]] bool all_passed() const noexcept { return failures_ == 0; }

  /// Check results as JSON: {"passed": N, "failed": N, "checks": [...]}.
  void json(std::ostream& os) const {
    os << "{\"passed\": " << results_.size() - static_cast<std::size_t>(failures_)
       << ", \"failed\": " << failures_ << ", \"checks\": [";
    for (std::size_t i = 0; i < results_.size(); ++i) {
      os << (i == 0 ? "" : ",") << "\n    {\"pass\": "
         << (results_[i].first ? "true" : "false") << ", \"description\": \""
         << json_escape(results_[i].second) << "\"}";
    }
    os << (results_.empty() ? "]}" : "\n  ]}");
  }

 private:
  std::vector<std::pair<bool, std::string>> results_;
  int failures_ = 0;
};

/// Machine-readable bench report: named tables plus the checker verdicts,
/// written when the binary is invoked with `--json PATH`.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name) : bench_name_(std::move(bench_name)) {}

  void add_table(const std::string& name, const Table& table) {
    std::ostringstream os;
    table.json(os);
    tables_.emplace_back(name, os.str());
  }

  [[nodiscard]] std::string str(const Checker& checker) const {
    std::ostringstream os;
    os << "{\n  \"bench\": \"" << json_escape(bench_name_) << "\",\n";
    for (const auto& [name, body] : tables_) {
      os << "  \"" << json_escape(name) << "\": " << body << ",\n";
    }
    os << "  \"summary\": ";
    checker.json(os);
    os << "\n}\n";
    return os.str();
  }

  /// Writes the report atomically (temp sibling + rename, so a killed
  /// process never leaves a half-written file that still parses);
  /// complains on stderr (but does not fail the bench) on I/O error.
  void write(const std::string& path, const Checker& checker) const {
    if (!routesim::write_file_atomic(path, str(checker))) {
      std::cerr << "cannot write JSON report to " << path << '\n';
      return;
    }
    std::cout << "JSON report written to " << path << '\n';
  }

 private:
  std::string bench_name_;
  std::vector<std::pair<std::string, std::string>> tables_;
};

/// Scans argv for "--json PATH" (or "--json=PATH"); empty when absent.
inline std::string json_path_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) return argv[i + 1];
    if (arg.rfind("--json=", 0) == 0) return arg.substr(7);
  }
  return {};
}

}  // namespace benchtab
