// Experiment X2 — reproduces Fig. 2a-2c / Lemma 9: the three-server
// levelled network G (FIFO) versus G~ (PS) on the *same* sample path
// (coupled external arrivals and coupled order-indexed routing decisions).
// The paper proves B(t) >= B~(t) for all t; this harness prints the coupled
// departure counts over time and verifies the dominance on many seeds.

#include <iostream>

#include "common/table.hpp"
#include "core/equivalence.hpp"
#include "queueing/levelled_network.hpp"

using namespace routesim;

int main() {
  std::cout << "X2: Lemma 9 sample-path dominance on the network of Fig. 2\n";
  std::cout << "Servers: S1, S2 (level 1) -> S3 (level 2); Markovian routing\n";
  std::cout << "rates: S1=0.45 S2=0.55 S3=0.15; P(S1->S3)=0.5, P(S2->S3)=0.6\n\n";

  std::vector<double> checkpoints;
  for (int i = 1; i <= 10; ++i) checkpoints.push_back(1000.0 * i);

  benchtab::Table table({"t", "B_FIFO(t)", "B_PS(t)", "B_FIFO - B_PS", "dominates"});
  benchtab::Checker checker;

  // Detailed trajectory for one seed.
  {
    LevelledNetwork fifo(
        make_lemma9_network(0.45, 0.55, 0.15, 0.5, 0.6, Discipline::kFifo, 2024));
    LevelledNetwork ps(
        make_lemma9_network(0.45, 0.55, 0.15, 0.5, 0.6, Discipline::kPs, 2024));
    fifo.set_checkpoints(checkpoints);
    ps.set_checkpoints(checkpoints);
    fifo.run(0.0, 10001.0);
    ps.run(0.0, 10001.0);
    for (std::size_t i = 0; i < checkpoints.size(); ++i) {
      const auto bf = fifo.checkpoint_departures()[i];
      const auto bp = ps.checkpoint_departures()[i];
      table.add_row({benchtab::fmt(checkpoints[i], 0), benchtab::fmt_int(bf),
                     benchtab::fmt_int(bp),
                     std::to_string(static_cast<long long>(bf) -
                                    static_cast<long long>(bp)),
                     bf >= bp ? "yes" : "NO"});
    }
    table.print();
  }

  // Dominance across seeds and fine-grained checkpoints.
  std::vector<double> fine;
  for (int i = 1; i <= 500; ++i) fine.push_back(20.0 * i);
  int violations = 0;
  constexpr int kSeeds = 32;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    LevelledNetwork fifo(
        make_lemma9_network(0.45, 0.55, 0.15, 0.5, 0.6, Discipline::kFifo, seed));
    LevelledNetwork ps(
        make_lemma9_network(0.45, 0.55, 0.15, 0.5, 0.6, Discipline::kPs, seed));
    fifo.set_checkpoints(fine);
    ps.set_checkpoints(fine);
    fifo.run(0.0, 10001.0);
    ps.run(0.0, 10001.0);
    for (std::size_t i = 0; i < fine.size(); ++i) {
      if (fifo.checkpoint_departures()[i] < ps.checkpoint_departures()[i]) ++violations;
    }
  }
  std::cout << "\nchecked " << kSeeds << " coupled sample paths x " << fine.size()
            << " checkpoints; dominance violations: " << violations << "\n";

  checker.require(violations == 0,
                  "Lemma 9: B(t) >= B~(t) at every checkpoint on every coupled path");
  return checker.summarize();
}
