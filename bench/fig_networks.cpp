// Experiment X1 — reproduces the structural figures of the paper:
//   Fig. 1a: the 3-dimensional hypercube;
//   Fig. 1b: its equivalent levelled network Q (§3.1, Properties A-C);
//   Fig. 3a: the 2-dimensional butterfly;
//   Fig. 3b: its equivalent network R (§4.3).
// Emits DOT graphs (machine-readable reproduction of the diagrams) and
// verifies every structural invariant the figures encode.

#include <cmath>
#include <iostream>

#include "common/table.hpp"
#include "core/equivalence.hpp"
#include "topology/butterfly.hpp"
#include "topology/hypercube.hpp"

using namespace routesim;

namespace {

void emit_hypercube_dot(const Hypercube& cube) {
  std::cout << "// Fig. 1a — the " << cube.dimension() << "-cube\n";
  std::cout << "digraph hypercube_d" << cube.dimension() << " {\n";
  for (ArcId arc = 0; arc < cube.num_arcs(); ++arc) {
    std::cout << "  n" << cube.arc_source(arc) << " -> n" << cube.arc_target(arc)
              << " [label=\"dim" << cube.arc_dimension(arc) << "\"];\n";
  }
  std::cout << "}\n\n";
}

void emit_network_q_dot(int d, double lambda, double p) {
  const auto config = make_hypercube_network_q(d, lambda, p, Discipline::kFifo, 1);
  std::cout << "// Fig. 1b — equivalent network Q for the " << d
            << "-cube (lambda=" << lambda << ", p=" << p << ")\n";
  std::cout << "digraph network_q_d" << d << " {\n  rankdir=LR;\n";
  for (std::uint32_t s = 0; s < config.servers.size(); ++s) {
    std::cout << "  s" << s << " [label=\"arc " << s << "\\next rate "
              << benchtab::fmt(config.servers[s].external_rate, 4) << "\"];\n";
  }
  for (std::uint32_t s = 0; s < config.servers.size(); ++s) {
    for (const auto& choice : config.servers[s].routing) {
      std::cout << "  s" << s << " -> s" << choice.target << " [label=\""
                << benchtab::fmt(choice.probability, 3) << "\"];\n";
    }
  }
  std::cout << "}\n\n";
}

void emit_butterfly_dot(const Butterfly& bfly) {
  std::cout << "// Fig. 3a — the " << bfly.dimension() << "-dimensional butterfly\n";
  std::cout << "digraph butterfly_d" << bfly.dimension() << " {\n  rankdir=LR;\n";
  for (BflyArcId arc = 0; arc < bfly.num_arcs(); ++arc) {
    const char* style =
        bfly.arc_kind(arc) == Butterfly::ArcKind::kStraight ? "solid" : "dashed";
    std::cout << "  \"[" << bfly.arc_row(arc) << ";" << bfly.arc_level(arc)
              << "]\" -> \"[" << bfly.arc_target_row(arc) << ";"
              << bfly.arc_level(arc) + 1 << "]\" [style=" << style << "];\n";
  }
  std::cout << "}\n\n";
}

}  // namespace

int main() {
  std::cout << "X1: structural reproduction of Figures 1a, 1b, 3a, 3b\n\n";

  const Hypercube cube(3);
  emit_hypercube_dot(cube);
  emit_network_q_dot(3, 1.0, 0.5);
  const Butterfly bfly(2);
  emit_butterfly_dot(bfly);

  benchtab::Table counts({"object", "nodes", "arcs/servers", "paper"});
  counts.add_row({"3-cube (Fig 1a)", "8", std::to_string(cube.num_arcs()),
                  "2^d nodes, d*2^d = 24 arcs"});
  const auto q_config = make_hypercube_network_q(3, 1.0, 0.5, Discipline::kFifo, 1);
  counts.add_row({"network Q (Fig 1b)", "-", std::to_string(q_config.servers.size()),
                  "d*2^d = 24 servers, 3 levels"});
  counts.add_row({"2-butterfly (Fig 3a)", std::to_string(bfly.num_nodes()),
                  std::to_string(bfly.num_arcs()),
                  "(d+1)*2^d = 12 nodes, d*2^(d+1) = 16 arcs"});
  const auto r_config = make_butterfly_network_r(2, 1.0, 0.5, Discipline::kFifo, 1);
  counts.add_row({"network R (Fig 3b)", "-", std::to_string(r_config.servers.size()),
                  "d*2^(d+1) = 16 servers, 2 levels"});
  counts.print();

  benchtab::Checker checker;
  checker.require(cube.num_nodes() == 8 && cube.num_arcs() == 24,
                  "Fig 1a: 3-cube has 2^3 nodes and 3*2^3 directed arcs");
  checker.require(q_config.servers.size() == 24,
                  "Fig 1b: network Q has one server per hypercube arc");

  // Property B: Q is levelled — every routing edge goes to a higher level.
  bool levelled = true;
  for (std::uint32_t s = 0; s < q_config.servers.size(); ++s) {
    for (const auto& choice : q_config.servers[s].routing) {
      levelled = levelled && choice.target > s;
    }
  }
  checker.require(levelled, "Fig 1b: Q is levelled (Property B)");

  // Property A: external rates by dimension are lambda*p*(1-p)^(i-1).
  bool rates_ok = true;
  for (int dim = 1; dim <= 3; ++dim) {
    const double expected = 1.0 * 0.5 * std::pow(0.5, dim - 1);
    for (NodeId x = 0; x < 8; ++x) {
      rates_ok = rates_ok &&
                 std::abs(q_config.servers[q_server_index(3, x, dim)].external_rate -
                          expected) < 1e-12;
    }
  }
  checker.require(rates_ok, "Fig 1b: Property A external rates");

  checker.require(bfly.num_nodes() == 12 && bfly.num_arcs() == 16,
                  "Fig 3a: 2-butterfly has (d+1)2^d nodes and d*2^(d+1) arcs");
  checker.require(r_config.servers.size() == 16,
                  "Fig 3b: network R has one server per butterfly arc");

  // Every origin-destination pair of the butterfly has a unique d-arc path.
  bool paths_ok = true;
  for (NodeId origin = 0; origin < 4; ++origin) {
    for (NodeId dest = 0; dest < 4; ++dest) {
      paths_ok = paths_ok && bfly.path(origin, dest).size() == 2;
    }
  }
  checker.require(paths_ok, "Fig 3a: unique d-arc path per origin/destination pair");

  return checker.summarize();
}
