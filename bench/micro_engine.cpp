// Experiment X18 — engine microbenchmarks (google-benchmark): raw costs of
// the event queue, the RNG, the PS virtual-time server, and end-to-end
// simulator throughput in packets per second.

#include <benchmark/benchmark.h>

#include <chrono>

#include "core/campaign.hpp"
#include "core/equivalence.hpp"
#include "des/event_queue.hpp"
#include "obs/trace.hpp"
#include "queueing/levelled_network.hpp"
#include "queueing/ps_server.hpp"
#include "routing/greedy_hypercube.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace {

using namespace routesim;

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void BM_RngExponential(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) benchmark::DoNotOptimize(sample_exponential(rng, 1.0));
}
BENCHMARK(BM_RngExponential);

void BM_PoissonSmallMean(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) benchmark::DoNotOptimize(sample_poisson(rng, 2.5));
}
BENCHMARK(BM_PoissonSmallMean);

void BM_EventQueuePushPop(benchmark::State& state) {
  EventQueue<int> queue;
  Rng rng(4);
  const auto depth = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < depth; ++i) queue.push(rng.uniform() * 100.0, 0);
  double now = 0.0;
  for (auto _ : state) {
    const auto event = queue.pop();
    now = event.time;
    queue.push(now + rng.uniform() * 2.0, 0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueuePushPop)->Arg(64)->Arg(1024)->Arg(16384);

void BM_PsServerBatch(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> arrivals;
  double t = 0.0;
  for (int i = 0; i < 1000; ++i) {
    t += rng.uniform();
    arrivals.push_back(t);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ps_departure_times(arrivals, 1.0));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_PsServerBatch);

void BM_GreedyHypercubeSim(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    GreedyHypercubeConfig config;
    config.d = d;
    config.lambda = 1.2;  // rho = 0.6
    config.destinations = DestinationDistribution::uniform(d);
    config.seed = 6;
    GreedyHypercubeSim sim(config);
    sim.run(0.0, 500.0);
    delivered += sim.deliveries_in_window();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
  state.SetLabel("packets");
}
BENCHMARK(BM_GreedyHypercubeSim)->Arg(6)->Arg(8)->Arg(10);

// End-to-end kernel throughput at heavy traffic (d=10, rho = lambda*p =
// 0.9): the perf-trajectory headline number for the shared packet kernel.
// A fresh simulator per iteration, so construction + teardown are included.
void BM_KernelHypercubeHeavyTraffic(benchmark::State& state) {
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    GreedyHypercubeConfig config;
    config.d = 10;
    config.lambda = 1.8;  // rho = 0.9
    config.destinations = DestinationDistribution::uniform(10);
    config.seed = 6;
    GreedyHypercubeSim sim(config);
    sim.run(0.0, 300.0);
    delivered += sim.deliveries_in_window();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
  state.SetLabel("packets");
}
BENCHMARK(BM_KernelHypercubeHeavyTraffic);

// Same workload through reset(): kernel storage (packet pool, arc queues,
// event ring) is reused across iterations exactly as replication workers
// reuse it across reps.  The gap to BM_KernelHypercubeHeavyTraffic is the
// per-replication allocation cost that storage reuse eliminates.
void BM_KernelHypercubeStorageReuse(benchmark::State& state) {
  GreedyHypercubeConfig config;
  config.d = 10;
  config.lambda = 1.8;  // rho = 0.9
  config.destinations = DestinationDistribution::uniform(10);
  config.seed = 6;
  GreedyHypercubeSim sim(config);
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    sim.reset(config);
    sim.run(0.0, 300.0);
    delivered += sim.deliveries_in_window();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
  state.SetLabel("packets");
}
BENCHMARK(BM_KernelHypercubeStorageReuse);

// The heavy-traffic workload on the soa_batch backend: slotted time (the
// backend's requirement), same d=10 / rho=0.9 / seed as the scalar headline
// above, so packets-per-second is directly comparable across backends.
void BM_KernelSoaHeavyTraffic(benchmark::State& state) {
  GreedyHypercubeConfig config;
  config.d = 10;
  config.lambda = 1.8;  // rho = 0.9
  config.destinations = DestinationDistribution::uniform(10);
  config.seed = 6;
  config.slot = 1.0;
  config.backend = KernelBackend::kSoaBatch;
  GreedyHypercubeSim sim(config);
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    sim.reset(config);
    sim.run(0.0, 300.0);
    delivered += sim.deliveries_in_window();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
  state.SetLabel("packets");
}
BENCHMARK(BM_KernelSoaHeavyTraffic);

// Scalar vs soa_batch on the *same* slotted heavy-traffic scenario — the
// perf-trajectory headline for the backend seam.  Both sides run the
// identical simulation (they are pinned bit-identical by the parity suite),
// so speedup_vs_scalar is a pure execution-engine ratio.  Min-of-N on both
// sides, per the BM_CampaignVsSerial pattern, so one noisy sample cannot
// bias the ratio in either direction.
void BM_BackendSpeedup(benchmark::State& state) {
  using clock = std::chrono::steady_clock;
  GreedyHypercubeConfig config;
  config.d = 10;
  config.lambda = 1.8;  // rho = 0.9
  config.destinations = DestinationDistribution::uniform(10);
  config.seed = 6;
  config.slot = 1.0;

  config.backend = KernelBackend::kScalar;
  GreedyHypercubeSim scalar_sim(config);
  config.backend = KernelBackend::kSoaBatch;
  GreedyHypercubeSim soa_sim(config);

  // One untimed warm-up pass per backend so neither side is charged for
  // first-touch allocation of kernel storage.
  config.backend = KernelBackend::kScalar;
  scalar_sim.reset(config);
  scalar_sim.run(0.0, 300.0);
  config.backend = KernelBackend::kSoaBatch;
  soa_sim.reset(config);
  soa_sim.run(0.0, 300.0);

  double best_scalar_s = 1e300;
  double best_soa_s = 1e300;
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    config.backend = KernelBackend::kScalar;
    scalar_sim.reset(config);
    const auto scalar_start = clock::now();
    scalar_sim.run(0.0, 300.0);
    const double scalar_elapsed =
        std::chrono::duration<double>(clock::now() - scalar_start).count();
    best_scalar_s = std::min(best_scalar_s, scalar_elapsed);

    config.backend = KernelBackend::kSoaBatch;
    soa_sim.reset(config);
    const auto soa_start = clock::now();
    soa_sim.run(0.0, 300.0);
    const double soa_elapsed =
        std::chrono::duration<double>(clock::now() - soa_start).count();
    best_soa_s = std::min(best_soa_s, soa_elapsed);

    delivered += soa_sim.deliveries_in_window();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
  state.SetLabel("packets");
  state.counters["scalar_s"] = best_scalar_s;
  state.counters["soa_s"] = best_soa_s;
  state.counters["speedup_vs_scalar"] = best_scalar_s / best_soa_s;
}
BENCHMARK(BM_BackendSpeedup)->Unit(benchmark::kMillisecond)->Iterations(3);

// Tracing cost on the heavy-traffic kernel workload.  With no ambient
// session the kernel's entire added work is one disabled TraceSpan per
// drive() call — an out-of-line thread-local load and two null checks,
// nanoseconds against a run of tens of milliseconds.  A differential
// end-to-end timing cannot resolve that: shared-runner noise (steal
// time, frequency scaling) is several percent per run, orders of
// magnitude above the signal, so an honest subtraction is pure noise —
// measured A/A deltas on CI-class machines swing ±5%.  Instead the
// benchmark measures the two factors directly, each with tight error
// bars: the per-site cost of the exact disabled-path instrumentation
// sequence (averaged over millions of executions, so per-run noise
// vanishes) and the plain run time (min-of-N).  Their ratio is the
// disabled-path overhead; CI asserts trace_overhead_pct stays under 1%.
// plain_s vs traced_s (same workload under a live session, min-of-N) is
// reported alongside for eyeballing the enabled path.
void BM_TraceOverhead(benchmark::State& state) {
  using clock = std::chrono::steady_clock;
  GreedyHypercubeConfig config;
  config.d = 10;
  config.lambda = 1.8;  // rho = 0.9
  config.destinations = DestinationDistribution::uniform(10);
  config.seed = 6;
  GreedyHypercubeSim sim(config);

  // One untimed warm-up pass so neither side is charged for first-touch
  // allocation of kernel storage.
  sim.reset(config);
  sim.run(0.0, 300.0);

  // The disabled-path sequence the kernel runs once per drive():
  // construct and destroy a TraceSpan over the ambient (null) session.
  // thread_trace() is out-of-line, so the loop cannot be folded away.
  constexpr int kSiteReps = 1 << 22;
  const auto site_start = clock::now();
  for (int i = 0; i < kSiteReps; ++i) {
    obs::TraceSpan span(obs::thread_trace(), "kernel.drive", "kernel");
  }
  const double site_s =
      std::chrono::duration<double>(clock::now() - site_start).count() /
      kSiteReps;

  const auto timed_run = [&](obs::TraceSession* session) {
    obs::ThreadTraceScope scope(session);
    sim.reset(config);
    const auto start = clock::now();
    sim.run(0.0, 300.0);
    return std::chrono::duration<double>(clock::now() - start).count();
  };

  double best_plain_s = 1e300;
  double best_traced_s = 1e300;
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    obs::TraceSession session;
    best_plain_s = std::min(best_plain_s, timed_run(nullptr));
    best_traced_s = std::min(best_traced_s, timed_run(&session));
    delivered += sim.deliveries_in_window();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
  state.SetLabel("packets");
  state.counters["plain_s"] = best_plain_s;
  state.counters["traced_s"] = best_traced_s;
  state.counters["site_ns"] = site_s * 1e9;
  // One instrumented site per drive(), one drive() per run.
  state.counters["trace_overhead_pct"] = 100.0 * site_s / best_plain_s;
}
BENCHMARK(BM_TraceOverhead)->Unit(benchmark::kMillisecond)->Iterations(8);

// Campaign scheduler vs the serial per-cell run() loop on a 12-cell grid
// (rho in {0.2,...,0.8} x d in {4,6,8}), reps=2 per cell so the serial
// baseline is pool-starved exactly like the historic bench loops (each
// run() can use at most `reps` workers, the campaign uses all cores across
// cell boundaries).  The serial loop is timed once up front; the counters
// report both absolute times and speedup_vs_serial — the perf-trajectory
// headline for the batch layer.  On a single-core host the two are
// necessarily equal (speedup ~ 1); the gap opens with hardware
// concurrency.
void BM_CampaignVsSerial(benchmark::State& state) {
  using clock = std::chrono::steady_clock;
  Scenario base;
  base.scheme = "hypercube_greedy";
  base.plan = {2, 9, 0};
  base.measure = 300.0;
  Campaign campaign("micro_campaign_vs_serial");
  campaign.grid(base, {SweepSpec::parse("rho=0.2:0.8:0.2"),
                       SweepSpec::parse("d=4:8:2")});

  // One untimed warm-up pass so the serial baseline is not charged for
  // first-touch allocation of the per-thread simulator storage.
  for (const auto& cell : campaign.cells()) {
    benchmark::DoNotOptimize(run(cell.scenario));
  }

  // Time both sides once per iteration and report min-of-N for both, so a
  // single noisy sample cannot bias the speedup in either direction.
  double best_serial_s = 1e300;
  double best_campaign_s = 1e300;
  for (auto _ : state) {
    const auto serial_start = clock::now();
    for (const auto& cell : campaign.cells()) {
      benchmark::DoNotOptimize(run(cell.scenario));
    }
    const double serial_elapsed =
        std::chrono::duration<double>(clock::now() - serial_start).count();
    best_serial_s = std::min(best_serial_s, serial_elapsed);

    const Engine engine;  // no cache: measure scheduling, not memoisation
    const auto campaign_start = clock::now();
    const auto results = engine.run(campaign);
    const double campaign_elapsed =
        std::chrono::duration<double>(clock::now() - campaign_start).count();
    benchmark::DoNotOptimize(results.data());
    best_campaign_s = std::min(best_campaign_s, campaign_elapsed);
  }
  state.counters["cells"] = static_cast<double>(campaign.size());
  state.counters["serial_s"] = best_serial_s;
  state.counters["campaign_s"] = best_campaign_s;
  state.counters["speedup_vs_serial"] = best_serial_s / best_campaign_s;
}
BENCHMARK(BM_CampaignVsSerial)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_LevelledNetworkQ(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  std::uint64_t departed = 0;
  for (auto _ : state) {
    LevelledNetwork net(
        make_hypercube_network_q(d, 1.2, 0.5, Discipline::kFifo, 7));
    net.run(0.0, 500.0);
    departed += net.departures_in_window();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(departed));
  state.SetLabel("customers");
}
BENCHMARK(BM_LevelledNetworkQ)->Arg(6)->Arg(8);

void BM_LevelledNetworkQps(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  std::uint64_t departed = 0;
  for (auto _ : state) {
    LevelledNetwork net(make_hypercube_network_q(d, 1.2, 0.5, Discipline::kPs, 8));
    net.run(0.0, 500.0);
    departed += net.departures_in_window();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(departed));
  state.SetLabel("customers");
}
BENCHMARK(BM_LevelledNetworkQps)->Arg(6);

}  // namespace

BENCHMARK_MAIN();
