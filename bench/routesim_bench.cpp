// routesim_bench — the generic scenario runner: any registered scheme, any
// parameter point, sweep, or multi-axis campaign grid, straight from the
// command line.
//
//   routesim_bench --list
//   routesim_bench --list --json catalog.json   (machine-readable catalog)
//   routesim_bench --scenario hypercube_greedy --set d=8 --set rho=0.6
//   routesim_bench --scenario hypercube_greedy --sweep rho=0.1:0.9 --json out.json
//   routesim_bench --scenario hypercube_greedy
//       --grid rho=0.2:0.8:0.2 --grid d=4:8:2 --jsonl out.jsonl
//   routesim_bench --scenario hypercube_greedy --grid d=4:8:2 --cells
//
// Repeatable --grid (and --sweep, its one-axis alias) axes cross-multiply
// into a routesim::Campaign whose replications are scheduled onto one
// shared worker pool (core/campaign.hpp); --cells previews the grid
// without running it, and --jsonl streams one JSON line per finished cell.
// Every row is one cell: simulated delay with a 95% CI between the
// paper's bounds (when the scheme has them), throughput, the Little's-law
// self check, and any scheme-specific extra metrics.  Exit code 0 iff the
// standard acceptance checks (bracket containment + Little consistency)
// pass for every row.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/driver.hpp"
#include "common/table.hpp"
#include "core/campaign.hpp"
#include "core/catalog.hpp"
#include "core/registry.hpp"
#include "core/scenario.hpp"

namespace {

/// --list: the full scheme/key/workload/permutation/policy/CLI catalog,
/// assembled live from the registry (core/catalog.hpp).  With --json PATH
/// the same catalog is written as JSON (the input of tools/gen_docs).
int list_schemes(int argc, char** argv) {
  const routesim::ScenarioCatalog catalog = routesim::scenario_catalog();
  const std::string json_path = benchtab::json_path_from_args(argc, argv);
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write catalog JSON to " << json_path << '\n';
      return 1;
    }
    out << routesim::catalog_json(catalog);
    std::cout << "catalog JSON written to " << json_path << '\n';
    return 0;
  }
  std::cout << routesim::catalog_text(catalog);
  return 0;
}

int usage(const char* argv0) {
  std::cout
      << "usage: " << argv0
      << " --scenario SCHEME [--set key=value ...]\n"
         "       [--grid key=a:b[:step] ...] [--sweep key=a:b[:step] ...]\n"
         "       [--cells] [--jsonl PATH] [--json PATH] [--list]\n\n"
         // Key names come straight from the lists --list documents, so
         // --help cannot drift from the registry.
         "keys:";
  for (const auto& key : routesim::Scenario::known_set_keys()) {
    std::cout << ' ' << key;
  }
  std::cout << "\ngrid/sweep keys:";
  for (const auto& key : routesim::SweepSpec::known_keys()) {
    std::cout << ' ' << key;
  }
  std::cout << "\nrepeatable --grid axes cross-multiply into a campaign grid\n"
               "run on one shared worker pool; --cells previews it, --jsonl\n"
               "streams one JSON line per finished cell.\n"
               "(per-key docs, workloads, permutation families and fault\n"
               "policies: --list)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scheme;
  std::vector<std::string> settings;
  std::vector<std::string> axis_texts;
  std::string jsonl_path;
  bool preview_cells = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") return list_schemes(argc, argv);
    if (arg == "--help" || arg == "-h") return usage(argv[0]);
    if (arg == "--scenario" && i + 1 < argc) {
      scheme = argv[++i];
    } else if (arg == "--set" && i + 1 < argc) {
      settings.emplace_back(argv[++i]);
    } else if ((arg == "--grid" || arg == "--sweep") && i + 1 < argc) {
      axis_texts.emplace_back(argv[++i]);
    } else if (arg == "--jsonl" && i + 1 < argc) {
      jsonl_path = argv[++i];
    } else if (arg == "--cells") {
      preview_cells = true;
    } else if (arg == "--json" && i + 1 < argc) {
      ++i;  // consumed by Suite::finish
    } else if (arg.rfind("--json=", 0) == 0) {
      // consumed by Suite::finish
    } else {
      std::cerr << "unknown argument '" << arg << "'\n";
      return usage(argv[0]);
    }
  }
  if (scheme.empty()) {
    std::cerr << "missing --scenario SCHEME (try --list)\n";
    return usage(argv[0]);
  }

  try {
    std::vector<std::string> scenario_args{scheme};
    scenario_args.insert(scenario_args.end(), settings.begin(), settings.end());
    const routesim::Scenario base = routesim::Scenario::parse(scenario_args);

    std::vector<routesim::SweepSpec> axes;
    axes.reserve(axis_texts.size());
    for (const auto& text : axis_texts) {
      axes.push_back(routesim::SweepSpec::parse(text));
    }
    routesim::Campaign campaign("routesim_bench");
    campaign.grid(base, axes);  // no axes => the single base cell

    if (preview_cells) {
      for (const auto& cell : campaign.cells()) {
        std::cout << "cell " << (&cell - campaign.cells().data()) << ": "
                  << cell.label << " — "
                  << cell.scenario.resolved().to_string() << '\n';
      }
      std::cout << campaign.size() << " cells\n";
      return 0;
    }

    std::ofstream jsonl_file;
    std::vector<routesim::ResultSink*> sinks;
    routesim::JsonlSink jsonl(jsonl_file);
    if (!jsonl_path.empty()) {
      jsonl_file.open(jsonl_path);
      if (!jsonl_file) {
        std::cerr << "cannot write JSONL to " << jsonl_path << '\n';
        return 1;
      }
      sinks.push_back(&jsonl);
    }

    benchdrive::Suite suite("routesim_bench",
                            "routesim_bench: " + base.to_string(),
                            {"delivery_ratio", "mean_stretch", "delay_p99"});
    // The Little's-law self check compares the sojourn of *delivered*
    // packets against the rate of *all* arrivals, so it only applies when
    // nothing is dropped by faults.
    suite.add_campaign(
        campaign,
        [](benchdrive::Case& spec) {
          spec.check_little = !spec.scenario.faults_active();
        },
        sinks);
    return suite.finish(argc, argv);
  } catch (const std::exception& error) {
    // ScenarioError for bad input; contract violations from invalid
    // parameter combinations also surface here instead of terminating.
    std::cerr << "error: " << error.what() << '\n';
    return 2;
  }
}
