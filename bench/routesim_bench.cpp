// routesim_bench — the generic scenario runner: any registered scheme, any
// parameter point or sweep, straight from the command line.
//
//   routesim_bench --list
//   routesim_bench --list --json catalog.json   (machine-readable catalog)
//   routesim_bench --scenario hypercube_greedy --set d=8 --set rho=0.6
//   routesim_bench --scenario hypercube_greedy --sweep rho=0.1:0.9 --json out.json
//   routesim_bench --scenario butterfly_delay ... --set reps=8 --set seed=99
//
// Every row is one run(): simulated delay with a 95% CI between the
// paper's bounds (when the scheme has them), throughput, the Little's-law
// self check, and any scheme-specific extra metrics.  Exit code 0 iff the
// standard acceptance checks (bracket containment + Little consistency)
// pass for every row.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/driver.hpp"
#include "common/table.hpp"
#include "core/catalog.hpp"
#include "core/registry.hpp"
#include "core/scenario.hpp"

namespace {

/// --list: the full scheme/key/workload/permutation/policy catalog,
/// assembled live from the registry (core/catalog.hpp).  With --json PATH
/// the same catalog is written as JSON (the input of tools/gen_docs).
int list_schemes(int argc, char** argv) {
  const routesim::ScenarioCatalog catalog = routesim::scenario_catalog();
  const std::string json_path = benchtab::json_path_from_args(argc, argv);
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write catalog JSON to " << json_path << '\n';
      return 1;
    }
    out << routesim::catalog_json(catalog);
    std::cout << "catalog JSON written to " << json_path << '\n';
    return 0;
  }
  std::cout << routesim::catalog_text(catalog);
  return 0;
}

int usage(const char* argv0) {
  std::cout
      << "usage: " << argv0
      << " --scenario SCHEME [--set key=value ...] [--sweep key=a:b[:step]]\n"
         "       [--json PATH] [--list]\n\n"
         // Key names come straight from the lists --list documents, so
         // --help cannot drift from the registry.
         "keys:";
  for (const auto& key : routesim::Scenario::known_set_keys()) {
    std::cout << ' ' << key;
  }
  std::cout << "\nsweep keys:";
  for (const auto& key : routesim::SweepSpec::known_keys()) {
    std::cout << ' ' << key;
  }
  std::cout << "\n(per-key docs, workloads, permutation families and fault\n"
               "policies: --list)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scheme;
  std::vector<std::string> settings;
  std::string sweep_text;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") return list_schemes(argc, argv);
    if (arg == "--help" || arg == "-h") return usage(argv[0]);
    if (arg == "--scenario" && i + 1 < argc) {
      scheme = argv[++i];
    } else if (arg == "--set" && i + 1 < argc) {
      settings.emplace_back(argv[++i]);
    } else if (arg == "--sweep" && i + 1 < argc) {
      sweep_text = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      ++i;  // consumed by Suite::finish
    } else if (arg.rfind("--json=", 0) == 0) {
      // consumed by Suite::finish
    } else {
      std::cerr << "unknown argument '" << arg << "'\n";
      return usage(argv[0]);
    }
  }
  if (scheme.empty()) {
    std::cerr << "missing --scenario SCHEME (try --list)\n";
    return usage(argv[0]);
  }

  try {
    std::vector<std::string> scenario_args{scheme};
    scenario_args.insert(scenario_args.end(), settings.begin(), settings.end());
    const routesim::Scenario base = routesim::Scenario::parse(scenario_args);

    benchdrive::Suite suite("routesim_bench", "routesim_bench: " + base.to_string(),
                            {"delivery_ratio", "mean_stretch", "delay_p99"});
    // The Little's-law self check compares the sojourn of *delivered*
    // packets against the rate of *all* arrivals, so it only applies when
    // nothing is dropped by faults.
    if (sweep_text.empty()) {
      benchdrive::Case spec{base.scheme, base};
      spec.check_little = !base.faults_active();
      suite.add(spec);
    } else {
      const auto sweep = routesim::SweepSpec::parse(sweep_text);
      for (const double value : sweep.values()) {
        routesim::Scenario point = base;
        routesim::apply_sweep_value(point, sweep.key, value);
        benchdrive::Case spec{sweep.key + "=" + benchtab::fmt(value, 3), point};
        spec.check_little = !point.faults_active();
        suite.add(spec);
      }
    }
    return suite.finish(argc, argv);
  } catch (const std::exception& error) {
    // ScenarioError for bad input; contract violations from invalid
    // parameter combinations also surface here instead of terminating.
    std::cerr << "error: " << error.what() << '\n';
    return 2;
  }
}
