// routesim_bench — the generic scenario runner: any registered scheme, any
// parameter point, sweep, or multi-axis campaign grid, straight from the
// command line.
//
//   routesim_bench --list
//   routesim_bench --list --json catalog.json   (machine-readable catalog)
//   routesim_bench --scenario hypercube_greedy --set d=8 --set rho=0.6
//   routesim_bench --scenario hypercube_greedy --sweep rho=0.1:0.9 --json out.json
//   routesim_bench --scenario hypercube_greedy
//       --grid rho=0.2:0.8:0.2 --grid d=4:8:2 --jsonl out.jsonl
//   routesim_bench --scenario hypercube_greedy --grid d=4:8:2 --cells
//   routesim_bench --scenario hypercube_greedy --grid d=4:8:2 --store results.jsonl
//
// Repeatable --grid (and --sweep, its one-axis alias) axes cross-multiply
// into a routesim::Campaign whose replications are scheduled onto one
// shared worker pool (core/campaign.hpp); --cells previews the grid
// without running it, and --jsonl streams one JSON line per finished cell.
// Every row is one cell: simulated delay with a 95% CI between the
// paper's bounds (when the scheme has them), throughput, the Little's-law
// self check, and any scheme-specific extra metrics.  Exit code 0 iff the
// standard acceptance checks (bracket containment + Little consistency)
// pass for every row.
//
// Production mode (docs/SERVE.md): --store PATH keeps a durable result
// store — every finished cell is appended + fsync'd, and cells already in
// the store are served without recomputation, so rerunning an interrupted
// campaign *resumes* it.  SIGINT/SIGTERM stop admitting replications,
// drain in-flight work, flush the store, and exit 130 with a
// "N cells checkpointed" report.  --resume PATH replays a prior --jsonl
// stream (or store file) into the in-process cache for the same effect
// without a writable store.
//
// Observability (docs/OBSERVABILITY.md): --trace PATH records the run as
// Chrome trace-event JSON (campaign/replication/kernel spans; load in
// Perfetto), written on normal exit *and* after a SIGINT checkpoint.
// --progress prints a rate-limited stderr heartbeat (cells done/total,
// worker utilization, ETA) when stderr is a TTY; --progress=force prints
// it unconditionally, one line per beat.  Neither perturbs results.

#include <atomic>
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/driver.hpp"
#include "common/table.hpp"
#include "core/campaign.hpp"
#include "core/catalog.hpp"
#include "core/registry.hpp"
#include "core/scenario.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "store/result_store.hpp"
#include "util/atomic_file.hpp"
#include "util/rng.hpp"
#include "workload/trace.hpp"

namespace {

/// Set by SIGINT/SIGTERM; the engine's workers poll it between
/// replications (EngineOptions::stop), so a signal checkpoints instead of
/// killing jthreads mid-cell.
std::atomic<bool> g_stop_requested{false};

extern "C" void handle_stop_signal(int) { g_stop_requested.store(true); }

/// --list: the full scheme/key/workload/permutation/policy/CLI catalog,
/// assembled live from the registry (core/catalog.hpp).  With --json PATH
/// the same catalog is written as JSON (the input of tools/gen_docs).
int list_schemes(int argc, char** argv) {
  const routesim::ScenarioCatalog catalog = routesim::scenario_catalog();
  const std::string json_path = benchtab::json_path_from_args(argc, argv);
  if (!json_path.empty()) {
    // Atomic whole-file replacement: a kill mid-write must never leave a
    // half catalog that still parses.
    if (!routesim::write_file_atomic(json_path, routesim::catalog_json(catalog))) {
      std::cerr << "cannot write catalog JSON to " << json_path << '\n';
      return 1;
    }
    std::cout << "catalog JSON written to " << json_path << '\n';
    return 0;
  }
  std::cout << routesim::catalog_text(catalog);
  return 0;
}

int usage(const char* argv0) {
  std::cout
      << "usage: " << argv0
      << " --scenario SCHEME [--set key=value ...]\n"
         "       [--grid key=a:b[:step] ...] [--sweep key=a:b[:step] ...]\n"
         "       [--cells] [--jsonl PATH [--append]] [--json PATH]\n"
         "       [--store PATH] [--resume PATH] [--trace PATH]\n"
         "       [--record-trace PATH] [--progress[=force]] [--list]\n\n"
         // Key names come straight from the lists --list documents, so
         // --help cannot drift from the registry.
         "keys:";
  for (const auto& key : routesim::Scenario::known_set_keys()) {
    std::cout << ' ' << key;
  }
  std::cout << "\ngrid/sweep keys:";
  for (const auto& key : routesim::SweepSpec::known_keys()) {
    std::cout << ' ' << key;
  }
  std::cout << "\nrepeatable --grid axes cross-multiply into a campaign grid\n"
               "run on one shared worker pool; --cells previews it, --jsonl\n"
               "streams one JSON line per finished cell (--append keeps an\n"
               "existing stream).  --store PATH makes results durable and\n"
               "reruns resume instead of recompute; SIGINT checkpoints.\n"
               "--resume PATH replays a prior --jsonl/store file.\n"
               "--trace PATH records Chrome trace-event JSON (Perfetto);\n"
               "--progress prints a stderr heartbeat (TTY only; =force\n"
               "always).  Neither changes results.\n"
               "--record-trace PATH writes the base scenario's\n"
               "replication-0 packet trace as JSONL (the trace_file=\n"
               "format) and exits without simulating.\n"
               "(per-key docs, workloads, permutation families and fault\n"
               "policies: --list)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scheme;
  std::vector<std::string> settings;
  std::vector<std::string> axis_texts;
  std::string jsonl_path;
  std::string store_path;
  std::string resume_path;
  std::string trace_path;
  std::string record_trace_path;
  bool append_jsonl = false;
  bool preview_cells = false;
  bool progress_requested = false;
  bool progress_forced = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") return list_schemes(argc, argv);
    if (arg == "--help" || arg == "-h") return usage(argv[0]);
    if (arg == "--scenario" && i + 1 < argc) {
      scheme = argv[++i];
    } else if (arg == "--set" && i + 1 < argc) {
      settings.emplace_back(argv[++i]);
    } else if ((arg == "--grid" || arg == "--sweep") && i + 1 < argc) {
      axis_texts.emplace_back(argv[++i]);
    } else if (arg == "--jsonl" && i + 1 < argc) {
      jsonl_path = argv[++i];
    } else if (arg == "--store" && i + 1 < argc) {
      store_path = argv[++i];
    } else if (arg == "--resume" && i + 1 < argc) {
      resume_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--record-trace" && i + 1 < argc) {
      record_trace_path = argv[++i];
    } else if (arg == "--progress") {
      progress_requested = true;
    } else if (arg == "--progress=force") {
      progress_requested = true;
      progress_forced = true;
    } else if (arg == "--append") {
      append_jsonl = true;
    } else if (arg == "--cells") {
      preview_cells = true;
    } else if (arg == "--json" && i + 1 < argc) {
      ++i;  // consumed by Suite::finish
    } else if (arg.rfind("--json=", 0) == 0) {
      // consumed by Suite::finish
    } else {
      std::cerr << "unknown argument '" << arg << "'\n";
      return usage(argv[0]);
    }
  }
  if (scheme.empty()) {
    std::cerr << "missing --scenario SCHEME (try --list)\n";
    return usage(argv[0]);
  }

  try {
    std::vector<std::string> scenario_args{scheme};
    scenario_args.insert(scenario_args.end(), settings.begin(), settings.end());
    const routesim::Scenario base = routesim::Scenario::parse(scenario_args);

    if (!record_trace_path.empty()) {
      // Record, don't simulate: write the packet stream replication 0 of
      // this scenario would consume, in the trace_file= JSONL format.  A
      // trace recorded from workload=trace replays bit-identically under
      // workload=trace trace_file=PATH (pinned by test_kernel_parity).
      const routesim::Scenario rec = base.resolved();
      const routesim::Window window = rec.resolved_window();
      const std::uint64_t seed0 = routesim::derive_stream(rec.plan.base_seed, 0);
      routesim::PacketTrace trace;
      if (rec.workload == "permutation") {
        trace = routesim::generate_fixed_destination_trace(
            rec.d, rec.lambda, rec.permutation_table(), window.horizon, seed0);
      } else if (rec.scheme == "butterfly_greedy") {
        trace = routesim::generate_butterfly_trace(
            rec.d, rec.lambda, rec.make_destinations(), window.horizon, seed0);
      } else {
        trace = routesim::generate_hypercube_trace(
            rec.d, rec.lambda, rec.make_destinations(), window.horizon, seed0);
      }
      routesim::save_trace_jsonl(trace, record_trace_path);
      std::cout << "recorded " << trace.size() << " packets (d=" << rec.d
                << ", horizon=" << window.horizon << ") to "
                << record_trace_path << '\n';
      return 0;
    }

    std::vector<routesim::SweepSpec> axes;
    axes.reserve(axis_texts.size());
    for (const auto& text : axis_texts) {
      axes.push_back(routesim::SweepSpec::parse(text));
    }
    routesim::Campaign campaign("routesim_bench");
    campaign.grid(base, axes);  // no axes => the single base cell

    if (preview_cells) {
      for (const auto& cell : campaign.cells()) {
        std::cout << "cell " << (&cell - campaign.cells().data()) << ": "
                  << cell.label << " — "
                  << cell.scenario.resolved().to_string() << '\n';
      }
      std::cout << campaign.size() << " cells\n";
      return 0;
    }

    // Production wiring, all before the first shared_engine() use (the
    // engine snapshots its options once): durable store, stop token for
    // SIGINT/SIGTERM checkpointing, and any --resume replay.
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
    benchdrive::attach_stop(&g_stop_requested);

    std::unique_ptr<routesim::obs::TraceSession> trace;
    if (!trace_path.empty()) {
      trace = std::make_unique<routesim::obs::TraceSession>();
      benchdrive::attach_trace(trace.get());
    }
    // Exported once the campaign quiesced — after a SIGINT checkpoint too,
    // so an interrupted run still leaves a loadable trace.
    const auto write_trace = [&]() -> bool {
      if (trace == nullptr) return true;
      if (!trace->write_file(trace_path)) {
        std::cerr << "cannot write trace to " << trace_path << '\n';
        return false;
      }
      std::cout << "trace written to " << trace_path << " ("
                << trace->event_count() << " events)\n";
      return true;
    };

    std::unique_ptr<routesim::ResultStore> store;
    if (!store_path.empty()) {
      store = std::make_unique<routesim::ResultStore>(store_path);
      if (!store->ok()) {
        std::cerr << "error: " << store->error() << '\n';
        return 1;
      }
      benchdrive::attach_store(store.get());
      if (store->size() > 0) {
        std::cout << "store '" << store_path << "': " << store->size()
                  << " finished cells on disk will be reused\n";
      }
    }
    if (!resume_path.empty()) {
      {
        std::ifstream probe(resume_path);
        if (!probe) {
          std::cerr << "error: cannot read --resume file " << resume_path
                    << '\n';
          return 1;
        }
      }
      // Replay a prior run's --jsonl stream (or a store file) into the
      // in-process cache; cells it covers are served without recomputing.
      routesim::ResultCache* cache = benchdrive::shared_engine().options().cache;
      const std::size_t replayed = routesim::replay_results(
          resume_path, [&](const std::string& key, const routesim::Scenario&,
                           const routesim::RunResult& result) {
            cache->insert(key, result);
          });
      std::cout << "resumed " << replayed << " finished cells from "
                << resume_path << '\n';
    }

    std::vector<routesim::ResultSink*> sinks;
    std::unique_ptr<routesim::JsonlSink> jsonl;
    if (!jsonl_path.empty()) {
      jsonl = std::make_unique<routesim::JsonlSink>(
          jsonl_path, routesim::JsonlSink::FileOptions{append_jsonl, true});
      if (!jsonl->ok()) {
        std::cerr << "cannot write JSONL to " << jsonl_path << '\n';
        return 1;
      }
      sinks.push_back(jsonl.get());
    }
    std::unique_ptr<routesim::obs::ProgressMeter> progress;
    if (progress_requested) {
      progress = std::make_unique<routesim::obs::ProgressMeter>(
          routesim::obs::ProgressMeter::Options{progress_forced, 0.5});
      // Inactive (stderr not a TTY, no =force) meters are not registered
      // at all, so piped runs stay byte-clean.
      if (progress->active()) sinks.push_back(progress.get());
    }

    benchdrive::Suite suite("routesim_bench",
                            "routesim_bench: " + base.to_string(),
                            {"delivery_ratio", "mean_stretch", "delay_p99"});
    // The Little's-law self check compares the sojourn of *delivered*
    // packets against the rate of *all* arrivals, so it only applies when
    // nothing is dropped by faults.
    const std::vector<routesim::CellResult> cells = suite.add_campaign(
        campaign,
        [](benchdrive::Case& spec) {
          spec.check_little = !spec.scenario.faults_active();
        },
        sinks);

    std::size_t finished = 0;
    for (const auto& cell : cells) finished += cell.completed ? 1 : 0;
    if (finished < cells.size()) {
      // Interrupted: every *finished* cell is already durable (store
      // fsync'd per record, JSONL flushed per line); report how to pick
      // the campaign back up and exit with the conventional SIGINT code.
      std::cout << "\ninterrupted: " << finished << " of " << cells.size()
                << " cells checkpointed";
      if (!store_path.empty()) {
        std::cout << ", resume with --store " << store_path;
      } else if (!jsonl_path.empty()) {
        std::cout << ", resume with --resume " << jsonl_path;
      } else {
        std::cout << " (in-memory only: rerun with --store PATH to make "
                     "checkpoints durable)";
      }
      std::cout << '\n';
      (void)write_trace();
      return 130;
    }
    const int exit_code = suite.finish(argc, argv);
    if (!write_trace() && exit_code == 0) return 1;
    return exit_code;
  } catch (const std::exception& error) {
    // ScenarioError for bad input; contract violations from invalid
    // parameter combinations also surface here instead of terminating.
    std::cerr << "error: " << error.what() << '\n';
    return 2;
  }
}
