// Experiment X14 — the arrival-rate structure that makes the whole
// analysis work: Property A (external arc rates lambda*p*(1-p)^(i-1)),
// Proposition 5 (total rate = rho at EVERY arc), and Proposition 15
// (butterfly rates lambda(1-p) / lambda p by arc kind), all *measured* on
// the packet-level simulators.

#include <cmath>
#include <iostream>

#include "common/table.hpp"
#include "routing/greedy_butterfly.hpp"
#include "routing/greedy_hypercube.hpp"

using namespace routesim;

int main() {
  std::cout << "X14: measured arrival rates vs Property A / Prop. 5 / Prop. 15\n\n";
  benchtab::Checker checker;

  {
    const int d = 5;
    const double lambda = 1.0, p = 0.35;
    std::cout << "hypercube d=" << d << ", lambda=" << lambda << ", p=" << p << ":\n";
    GreedyHypercubeConfig config;
    config.d = d;
    config.lambda = lambda;
    config.destinations = DestinationDistribution::bit_flip(d, p);
    config.seed = 71;
    GreedyHypercubeSim sim(config);
    const double warmup = 500.0, horizon = 100500.0;
    sim.run(warmup, horizon);
    const double window = horizon - warmup;

    benchtab::Table table({"dim i", "ext rate sim", "PropA lp(1-p)^(i-1)",
                           "total rate sim", "Prop5 rho"});
    for (int dim = 1; dim <= d; ++dim) {
      double external = 0.0, total = 0.0;
      for (NodeId x = 0; x < 32; ++x) {
        const auto& counters = sim.arc_counters()[sim.topology().arc_index(x, dim)];
        external += static_cast<double>(counters.external_arrivals);
        total += static_cast<double>(counters.total_arrivals);
      }
      const double ext_rate = external / 32.0 / window;
      const double total_rate = total / 32.0 / window;
      const double property_a = lambda * p * std::pow(1 - p, dim - 1);
      table.add_row({std::to_string(dim), benchtab::fmt(ext_rate, 4),
                     benchtab::fmt(property_a, 4), benchtab::fmt(total_rate, 4),
                     benchtab::fmt(lambda * p, 4)});
      checker.require(std::abs(ext_rate / property_a - 1.0) < 0.03,
                      "dim " + std::to_string(dim) + ": Property A external rate");
      checker.require(std::abs(total_rate / (lambda * p) - 1.0) < 0.03,
                      "dim " + std::to_string(dim) + ": Prop. 5 total rate = rho");
    }
    table.print();
    std::cout << '\n';
  }

  {
    const int d = 4;
    const double lambda = 1.0, p = 0.3;
    std::cout << "butterfly d=" << d << ", lambda=" << lambda << ", p=" << p << ":\n";
    GreedyButterflyConfig config;
    config.d = d;
    config.lambda = lambda;
    config.destinations = DestinationDistribution::bit_flip(d, p);
    config.seed = 72;
    GreedyButterflySim sim(config);
    const double warmup = 500.0, horizon = 80500.0;
    sim.run(warmup, horizon);
    const double window = horizon - warmup;
    const auto& bfly = sim.topology();

    benchtab::Table table({"level", "straight sim", "P15 l(1-p)", "vertical sim",
                           "P15 lp"});
    for (int level = 1; level <= d; ++level) {
      double straight = 0.0, vertical = 0.0;
      for (NodeId row = 0; row < 16; ++row) {
        straight += static_cast<double>(
            sim.arc_counters()[bfly.arc_index(row, level,
                                              Butterfly::ArcKind::kStraight)]
                .total_arrivals);
        vertical += static_cast<double>(
            sim.arc_counters()[bfly.arc_index(row, level,
                                              Butterfly::ArcKind::kVertical)]
                .total_arrivals);
      }
      const double straight_rate = straight / 16.0 / window;
      const double vertical_rate = vertical / 16.0 / window;
      table.add_row({std::to_string(level), benchtab::fmt(straight_rate, 4),
                     benchtab::fmt(lambda * (1 - p), 4),
                     benchtab::fmt(vertical_rate, 4), benchtab::fmt(lambda * p, 4)});
      checker.require(
          std::abs(straight_rate / (lambda * (1 - p)) - 1.0) < 0.03,
          "level " + std::to_string(level) + ": Prop. 15 straight-arc rate");
      checker.require(
          std::abs(vertical_rate / (lambda * p) - 1.0) < 0.04,
          "level " + std::to_string(level) + ": Prop. 15 vertical-arc rate");
    }
    table.print();
  }

  std::cout << "\nShape check: early dimensions take more *external* traffic but\n"
               "internal forwarding exactly equalises the total at rho — the\n"
               "symmetry that makes every server of Q identical.\n";
  return checker.summarize();
}
