// Experiment X9 — §2.3: the non-greedy pipelined baseline (rounds of the
// Valiant-Brebner first phase) versus the greedy scheme.  The baseline's
// stability region shrinks like 1/(R d) while greedy holds the full rho < 1;
// we *measure* R from the empirical round length instead of assuming it.

#include <iostream>

#include "common/table.hpp"
#include "routing/greedy_hypercube.hpp"
#include "routing/pipelined_baseline.hpp"

using namespace routesim;

namespace {

struct BaselineOutcome {
  double round_over_d = 0.0;   // empirical R
  double delay = 0.0;
  double backlog_slope = 0.0;  // packets per time unit at the horizon
  bool stable = false;
};

BaselineOutcome run_baseline(int d, double lambda, std::uint64_t seed) {
  PipelinedBaselineConfig config;
  config.d = d;
  config.lambda = lambda;
  config.destinations = DestinationDistribution::uniform(d);
  config.seed = seed;
  PipelinedBaselineSim first(config), second(config);
  first.run(0.0, 8000.0);
  second.run(0.0, 16000.0);
  BaselineOutcome outcome;
  outcome.round_over_d = second.round_length().mean() / d;
  outcome.delay = second.delay().mean();
  outcome.backlog_slope = (static_cast<double>(second.backlog()) -
                           static_cast<double>(first.backlog())) /
                          8000.0;
  outcome.stable = outcome.backlog_slope < 0.01 * (1u << d);
  return outcome;
}

bool greedy_stable(int d, double lambda, std::uint64_t seed) {
  GreedyHypercubeConfig config;
  config.d = d;
  config.lambda = lambda;
  config.destinations = DestinationDistribution::uniform(d);
  config.seed = seed;
  GreedyHypercubeSim first(config), second(config);
  first.run(0.0, 8000.0);
  second.run(0.0, 16000.0);
  const double slope =
      (second.final_population() - first.final_population()) / 8000.0;
  return slope < 0.01 * (1u << d);
}

}  // namespace

int main() {
  std::cout << "X9: greedy vs pipelined baseline (§2.3), uniform destinations\n";
  std::cout << "baseline stability requires lambda < ~1/(R d); greedy needs "
               "only rho = lambda/2 < 1\n\n";

  benchtab::Checker checker;
  benchtab::Table table({"d", "lambda", "rho", "R (measured)", "baseline",
                         "baseline delay", "greedy"});

  for (const int d : {4, 6, 8}) {
    // lambda = 1.0 => rho = 0.5: trivially stable for greedy at every d,
    // hopeless for the baseline whose per-node service time is ~R*d.
    for (const double lambda : {1.0 / (6.0 * d), 1.0}) {
      const auto baseline = run_baseline(d, lambda, 11);
      const bool greedy_ok = greedy_stable(d, lambda, 11);
      table.add_row({std::to_string(d), benchtab::fmt(lambda, 4),
                     benchtab::fmt(lambda / 2, 3),
                     baseline.round_over_d > 0 ? benchtab::fmt(baseline.round_over_d, 2)
                                               : "-",
                     baseline.stable ? "stable" : "UNSTABLE",
                     baseline.stable ? benchtab::fmt(baseline.delay, 1) : "diverges",
                     greedy_ok ? "stable" : "UNSTABLE"});

      if (lambda < 0.1) {
        checker.require(baseline.stable,
                        "d=" + std::to_string(d) +
                            ": baseline stable at lambda ~ 1/(6d) (inside its region)");
      } else {
        checker.require(!baseline.stable,
                        "d=" + std::to_string(d) +
                            ": baseline UNSTABLE at rho = 0.5 (region shrinks ~1/d)");
      }
      checker.require(greedy_ok, "d=" + std::to_string(d) + " lambda=" +
                                     benchtab::fmt(lambda, 4) +
                                     ": greedy stable (rho < 1)");
    }
  }
  table.print();

  std::cout << "\nShape check: the baseline's usable load vanishes as d grows "
               "(~1/(Rd)); greedy keeps the whole region rho < 1 — the paper's "
               "§2.3 motivation for avoiding idling.\n";
  return checker.summarize();
}
