// Experiment X9 — §2.3: the non-greedy pipelined baseline (rounds of the
// Valiant-Brebner first phase) versus the greedy scheme.  The baseline's
// stability region shrinks like 1/(R d) while greedy holds the full
// rho < 1; R is *measured* (extra metric round_over_d).  Both schemes run
// as scenarios at two horizons; stability is the backlog slope.

#include "common/driver.hpp"

namespace {

routesim::Scenario scheme_at(const std::string& scheme, int d, double lambda,
                             double horizon) {
  routesim::Scenario scenario;
  scenario.scheme = scheme;
  scenario.d = d;
  scenario.workload = "uniform";
  scenario.lambda = lambda;
  scenario.window = {0.0, horizon};
  scenario.plan = {2, 11, 0};
  return scenario;
}

}  // namespace

int main(int argc, char** argv) {
  benchdrive::Suite suite(
      "tab_baseline_pipelined",
      "X9: greedy vs pipelined baseline (§2.3), uniform destinations\n"
      "baseline stability requires lambda < ~1/(R d); greedy needs only "
      "rho = lambda/2 < 1",
      {"round_over_d"});
  const double t1 = 8000.0, t2 = 16000.0;

  for (const int d : {4, 6, 8}) {
    // lambda = 1.0 => rho = 0.5: trivially stable for greedy at every d,
    // hopeless for the baseline whose per-node service time is ~R*d.
    for (const double lambda : {1.0 / (6.0 * d), 1.0}) {
      const std::string tag =
          "d=" + std::to_string(d) + " lambda=" + benchtab::fmt(lambda, 4);
      const auto& base1 = suite.add({tag + " baseline t1",
                                     scheme_at("pipelined_baseline", d, lambda, t1),
                                     false, false});
      const auto& base2 = suite.add({tag + " baseline t2",
                                     scheme_at("pipelined_baseline", d, lambda, t2),
                                     false, false});
      const auto& greedy1 = suite.add({tag + " greedy t1",
                                       scheme_at("hypercube_greedy", d, lambda, t1),
                                       false, false});
      const auto& greedy2 = suite.add({tag + " greedy t2",
                                       scheme_at("hypercube_greedy", d, lambda, t2),
                                       false, false});

      const double nodes = static_cast<double>(1u << d);
      const double baseline_slope =
          (base2.mean_final_backlog - base1.mean_final_backlog) / (t2 - t1);
      const double greedy_slope =
          (greedy2.mean_final_backlog - greedy1.mean_final_backlog) / (t2 - t1);
      const bool baseline_stable = baseline_slope < 0.01 * nodes;
      const bool greedy_stable = greedy_slope < 0.01 * nodes;

      if (lambda < 0.1) {
        suite.checker().require(baseline_stable,
                                "d=" + std::to_string(d) +
                                    ": baseline stable at lambda ~ 1/(6d) "
                                    "(inside its region)");
      } else {
        suite.checker().require(!baseline_stable,
                                "d=" + std::to_string(d) +
                                    ": baseline UNSTABLE at rho = 0.5 "
                                    "(region shrinks ~1/d)");
      }
      suite.checker().require(greedy_stable,
                              tag + ": greedy stable (rho < 1)");
    }
  }

  std::cout << "\nShape check: the baseline's usable load vanishes as d grows "
               "(~1/(Rd)); greedy keeps the whole region rho < 1 — the paper's "
               "§2.3 motivation for avoiding idling.\n";
  return suite.finish(argc, argv);
}
