// Experiment X8 — butterfly greedy routing (Props. 14-17): delay versus
// lambda for several p, bracketed by the universal lower bound (P14) and
// the product-form upper bound (P17); the p <-> 1-p symmetry and the
// bottleneck role of max{p, 1-p} are checked over the scenario results.

#include <cmath>

#include "common/driver.hpp"
#include "core/bounds.hpp"

namespace {

routesim::Scenario butterfly(int d, double lambda, double p) {
  routesim::Scenario scenario;
  scenario.scheme = "butterfly_greedy";
  scenario.d = d;
  scenario.lambda = lambda;
  scenario.p = p;
  scenario.measure = 5000.0;
  return scenario;
}

}  // namespace

int main(int argc, char** argv) {
  benchdrive::Suite suite(
      "tab_butterfly_delay",
      "X8: butterfly greedy delay vs lambda (d = 6)\n"
      "bounds: LB = Prop. 14, UB = Prop. 17; rho = lambda*max{p,1-p}");
  const int d = 6;

  for (const double p : {0.3, 0.5, 0.7}) {
    for (const double lambda : {0.3, 0.6, 0.9, 1.1, 1.3}) {
      const routesim::bounds::ButterflyParams params{d, lambda, p};
      if (routesim::bounds::bfly_load_factor(params) >= 0.99) continue;
      routesim::Scenario scenario = butterfly(d, lambda, p);
      scenario.plan = {6, 4242, 0};
      suite.add({"p=" + benchtab::fmt(p, 1) + " lambda=" + benchtab::fmt(lambda, 1),
                 scenario});
    }
  }

  // Symmetry p <-> 1-p: same scheme, mirrored bit-flip parameter, same seeds.
  {
    routesim::Scenario low = butterfly(d, 1.0, 0.3);
    routesim::Scenario high = butterfly(d, 1.0, 0.7);
    low.plan = high.plan = {6, 31, 0};
    const double t_low = suite.add({"symmetry p=0.3", low, false, false}).delay.mean;
    const double t_high =
        suite.add({"symmetry p=0.7", high, false, false}).delay.mean;
    suite.checker().require(
        std::abs(t_low / t_high - 1.0) < 0.03,
        "delay symmetric under p <-> 1-p (straight/vertical exchange)");
  }

  // Bottleneck: at fixed lambda, p = 1/2 minimises the delay (the load
  // rho = lambda*max{p,1-p} is smallest at p = 1/2).
  {
    routesim::Scenario balanced = butterfly(d, 1.3, 0.5);
    routesim::Scenario skewed = butterfly(d, 1.3, 0.7);
    balanced.plan = skewed.plan = {6, 17, 0};
    const double t_balanced =
        suite.add({"bottleneck p=0.5", balanced, false, false}).delay.mean;
    const double t_skewed =
        suite.add({"bottleneck p=0.7", skewed, false, false}).delay.mean;
    suite.checker().require(
        t_balanced < t_skewed,
        "p = 1/2 sustains a given lambda with the least delay (§4.2)");
  }

  std::cout << "\nShape check: delays sit inside [P14, P17]; the vertical arcs\n"
               "(p > 1/2) or straight arcs (p < 1/2) are the bottleneck.\n";
  return suite.finish(argc, argv);
}
