// Experiment X8 — butterfly greedy routing (Props. 14-17): delay versus
// lambda for several p, bracketed by the universal lower bound (P14) and
// the product-form upper bound (P17); the p <-> 1-p symmetry and the
// bottleneck role of max{p, 1-p} are checked explicitly.

#include <cmath>
#include <iostream>

#include "common/table.hpp"
#include "core/simulation.hpp"

using namespace routesim;

int main() {
  std::cout << "X8: butterfly greedy delay vs lambda (d = 6)\n";
  std::cout << "bounds: LB = Prop. 14, UB = Prop. 17; rho = lambda*max{p,1-p}\n\n";

  const int d = 6;
  benchtab::Checker checker;

  for (const double p : {0.3, 0.5, 0.7}) {
    std::cout << "p = " << p << ":\n";
    benchtab::Table table({"lambda", "rho", "LB (P14)", "T sim", "+/-", "UB (P17)",
                           "in bracket"});
    for (const double lambda : {0.3, 0.6, 0.9, 1.1, 1.3}) {
      const bounds::ButterflyParams params{d, lambda, p};
      const double rho = bounds::bfly_load_factor(params);
      if (rho >= 0.99) continue;
      const auto window = Window::for_load(d, rho, 5000.0);
      const auto estimate = estimate_butterfly_delay(params, window, {6, 4242, 0});
      const bool inside =
          estimate.delay.mean >= estimate.lower_bound - estimate.delay.half_width &&
          estimate.delay.mean <= estimate.upper_bound + estimate.delay.half_width;
      table.add_row({benchtab::fmt(lambda, 2), benchtab::fmt(rho, 2),
                     benchtab::fmt(estimate.lower_bound),
                     benchtab::fmt(estimate.delay.mean),
                     benchtab::fmt(estimate.delay.half_width),
                     benchtab::fmt(estimate.upper_bound), inside ? "yes" : "NO"});
      checker.require(inside, "p=" + benchtab::fmt(p, 1) +
                                  " lambda=" + benchtab::fmt(lambda, 1) +
                                  ": T within [P14, P17]");
    }
    table.print();
    std::cout << '\n';
  }

  // Symmetry p <-> 1-p.
  {
    const bounds::ButterflyParams low{d, 1.0, 0.3};
    const bounds::ButterflyParams high{d, 1.0, 0.7};
    const auto window = Window::for_load(d, 0.7, 5000.0);
    const auto estimate_low = estimate_butterfly_delay(low, window, {6, 31, 0});
    const auto estimate_high = estimate_butterfly_delay(high, window, {6, 31, 0});
    std::cout << "symmetry: T(p=0.3) = " << benchtab::fmt(estimate_low.delay.mean)
              << "  vs  T(p=0.7) = " << benchtab::fmt(estimate_high.delay.mean)
              << "\n";
    checker.require(
        std::abs(estimate_low.delay.mean / estimate_high.delay.mean - 1.0) < 0.03,
        "delay symmetric under p <-> 1-p (straight/vertical exchange)");
  }

  // Bottleneck: at fixed lambda, p = 1/2 minimises the delay bound and the
  // simulated delay (rho = lambda*max{p,1-p} is smallest at p = 1/2).
  {
    const double lambda = 1.3;
    const auto window = Window::for_load(d, 0.91, 5000.0);
    const auto balanced =
        estimate_butterfly_delay({d, lambda, 0.5}, window, {6, 17, 0});
    const auto skewed = estimate_butterfly_delay({d, lambda, 0.7}, window, {6, 17, 0});
    std::cout << "bottleneck: T(p=0.5) = " << benchtab::fmt(balanced.delay.mean)
              << "  vs  T(p=0.7) = " << benchtab::fmt(skewed.delay.mean)
              << "  at lambda = " << lambda << "\n";
    checker.require(balanced.delay.mean < skewed.delay.mean,
                    "p = 1/2 sustains a given lambda with the least delay (§4.2)");
  }

  std::cout << "\nShape check: delays sit inside [P14, P17]; the vertical arcs\n"
               "(p > 1/2) or straight arcs (p < 1/2) are the bottleneck.\n";
  return checker.summarize();
}
