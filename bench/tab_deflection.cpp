// Experiment X17 — related-work comparison [GrH89]: deflection (hot-potato)
// routing versus greedy store-and-forward, both slot-synchronous (tau = 1).
// Deflection needs no buffers but misroutes under contention; greedy queues
// instead.  Both schemes are scenarios sharing d, lambda, window and seeds;
// the deflection fraction arrives as a registry extra metric.

#include <cmath>

#include "common/driver.hpp"

namespace {

routesim::Scenario slotted(const std::string& scheme, double lambda) {
  routesim::Scenario scenario;
  scenario.scheme = scheme;
  scenario.d = 5;
  scenario.workload = "uniform";
  scenario.lambda = lambda;
  if (scheme == "hypercube_greedy") scenario.tau = 1.0;
  scenario.window = {500.0, 20500.0};  // slots for deflection
  scenario.plan = {2, 929, 0};
  return scenario;
}

}  // namespace

int main(int argc, char** argv) {
  benchdrive::Suite suite("tab_deflection",
                          "X17: greedy (slotted) vs deflection routing "
                          "(d = 5, p = 1/2)",
                          {"deflection_fraction"});

  double light_fraction = -1.0, heavy_fraction = -1.0;
  for (const double lambda : {0.05, 0.2, 0.4, 0.6}) {
    const std::string tag = "lambda=" + benchtab::fmt(lambda, 2);
    const auto& greedy =
        suite.add({tag + " greedy", slotted("hypercube_greedy", lambda), false});
    const auto& deflection =
        suite.add({tag + " deflection", slotted("deflection", lambda), false,
                   false});

    const double fraction = deflection.extra("deflection_fraction")->mean;
    if (lambda == 0.05) light_fraction = fraction;
    if (lambda == 0.6) heavy_fraction = fraction;

    suite.checker().require(
        deflection.mean_hops >= greedy.mean_hops - 0.1,
        tag + ": deflection never takes fewer hops than shortest path");
    if (lambda <= 0.05) {
      suite.checker().require(
          std::abs(deflection.delay.mean - greedy.delay.mean) < 1.5,
          "light load: deflection delay comparable to greedy");
    }
  }

  suite.checker().require(heavy_fraction > 4.0 * light_fraction,
                          "deflection fraction grows sharply with load");

  std::cout << "\nShape check: with buffers (greedy) contention becomes "
               "queueing;\nwithout (deflection) it becomes misrouting — the "
               "trade-off\nstudied approximately in [GrH89].\n";
  return suite.finish(argc, argv);
}
