// Experiment X17 — related-work comparison [GrH89]: deflection (hot-potato)
// routing versus greedy store-and-forward, both slot-synchronous (tau = 1).
// Deflection needs no buffers but misroutes under contention; greedy queues
// instead.  The shapes to see: comparable delay at light load, growing
// deflection fraction and extra hops as load rises.

#include <iostream>

#include "common/table.hpp"
#include "routing/deflection.hpp"
#include "routing/greedy_hypercube.hpp"

using namespace routesim;

int main() {
  std::cout << "X17: greedy (slotted) vs deflection routing (d = 5, p = 1/2)\n\n";

  const int d = 5;
  benchtab::Checker checker;
  benchtab::Table table({"lambda/slot", "rho", "T greedy", "T deflection",
                         "hops greedy", "hops deflect", "deflect frac"});

  double light_fraction = -1.0, heavy_fraction = -1.0;
  for (const double lambda : {0.05, 0.2, 0.4, 0.6}) {
    GreedyHypercubeConfig greedy_cfg;
    greedy_cfg.d = d;
    greedy_cfg.lambda = lambda;
    greedy_cfg.destinations = DestinationDistribution::uniform(d);
    greedy_cfg.seed = 929;
    greedy_cfg.slot = 1.0;
    GreedyHypercubeSim greedy(greedy_cfg);
    greedy.run(500.0, 20500.0);

    DeflectionConfig deflect_cfg;
    deflect_cfg.d = d;
    deflect_cfg.lambda = lambda;
    deflect_cfg.destinations = DestinationDistribution::uniform(d);
    deflect_cfg.seed = 929;
    DeflectionSim deflection(deflect_cfg);
    deflection.run(500, 20500);

    table.add_row({benchtab::fmt(lambda, 2), benchtab::fmt(lambda / 2, 2),
                   benchtab::fmt(greedy.delay().mean(), 2),
                   benchtab::fmt(deflection.delay().mean(), 2),
                   benchtab::fmt(greedy.hops().mean(), 2),
                   benchtab::fmt(deflection.hops().mean(), 2),
                   benchtab::fmt(deflection.deflection_fraction(), 4)});

    if (lambda == 0.05) light_fraction = deflection.deflection_fraction();
    if (lambda == 0.6) heavy_fraction = deflection.deflection_fraction();

    checker.require(deflection.hops().mean() >= greedy.hops().mean() - 0.1,
                    "lambda=" + benchtab::fmt(lambda, 2) +
                        ": deflection never takes fewer hops than shortest path");
    if (lambda <= 0.05) {
      checker.require(
          std::abs(deflection.delay().mean() - greedy.delay().mean()) < 1.5,
          "light load: deflection delay comparable to greedy");
    }
  }
  table.print();

  checker.require(heavy_fraction > 4.0 * light_fraction,
                  "deflection fraction grows sharply with load");

  std::cout << "\nShape check: with buffers (greedy) contention becomes queueing;\n"
               "without (deflection) it becomes misrouting — the trade-off\n"
               "studied approximately in [GrH89].\n";
  return checker.summarize();
}
