// Experiment X11 — the destination-locality knob of eq. (1): p < 1/2 makes
// traffic local, p = 1/2 uniform, p -> 1 antipodal.  Two sweeps:
//   (a) fixed load factor rho = lambda*p: smaller p means *more* packets
//       but shorter trips; T ~ dp/(1-rho) shrinks with p.
//   (b) fixed lambda: rho = lambda*p grows with p, compounding longer trips
//       with higher load.

#include <iostream>

#include "common/table.hpp"
#include "core/simulation.hpp"

using namespace routesim;

int main() {
  std::cout << "X11: effect of destination locality p (d = 8)\n\n";
  const int d = 8;
  benchtab::Checker checker;

  {
    std::cout << "(a) fixed load factor rho = 0.6 (lambda = rho/p adjusts):\n";
    benchtab::Table table({"p", "lambda", "LB (P13)", "T sim", "UB (P12)", "T/(dp)"});
    double previous = 0.0;
    for (const double p : {0.125, 0.25, 0.5, 0.75, 1.0}) {
      const double rho = 0.6;
      const bounds::HypercubeParams params{d, rho / p, p};
      const auto window = Window::for_load(d, rho, 4000.0);
      const auto estimate = estimate_hypercube_delay(params, window, {5, 808, 0});
      table.add_row({benchtab::fmt(p, 3), benchtab::fmt(rho / p, 2),
                     benchtab::fmt(estimate.lower_bound),
                     benchtab::fmt(estimate.delay.mean),
                     benchtab::fmt(estimate.upper_bound),
                     benchtab::fmt(estimate.delay.mean / (d * p), 2)});
      checker.require(estimate.delay.mean >= estimate.lower_bound * 0.97 &&
                          estimate.delay.mean <= estimate.upper_bound * 1.03,
                      "fixed-rho p=" + benchtab::fmt(p, 3) + ": T within bracket");
      checker.require(estimate.delay.mean > previous,
                      "fixed-rho p=" + benchtab::fmt(p, 3) +
                          ": delay increases with trip length dp");
      previous = estimate.delay.mean;
    }
    table.print();
    std::cout << '\n';
  }

  {
    std::cout << "(b) fixed lambda = 1.0 (rho = p grows with p):\n";
    benchtab::Table table({"p", "rho", "T sim", "UB (P12)"});
    double previous = 0.0;
    bool monotone = true;
    for (const double p : {0.2, 0.4, 0.6, 0.8, 0.9}) {
      const bounds::HypercubeParams params{d, 1.0, p};
      const double rho = p;
      const auto window = Window::for_load(d, rho, 5000.0);
      const auto estimate = estimate_hypercube_delay(params, window, {5, 909, 0});
      table.add_row({benchtab::fmt(p, 2), benchtab::fmt(rho, 2),
                     benchtab::fmt(estimate.delay.mean),
                     benchtab::fmt(estimate.upper_bound)});
      monotone = monotone && estimate.delay.mean > previous;
      previous = estimate.delay.mean;
      checker.require(estimate.delay.mean <= estimate.upper_bound * 1.03,
                      "fixed-lambda p=" + benchtab::fmt(p, 1) + ": T <= P12");
    }
    table.print();
    checker.require(monotone,
                    "fixed-lambda: delay strictly increases with p "
                    "(longer trips AND higher load)");
  }

  std::cout << "\nShape check: localised traffic (small p) is cheap; the "
               "uniform case p = 1/2 is the standard benchmark; antipodal "
               "traffic pays the full diameter.\n";
  return checker.summarize();
}
