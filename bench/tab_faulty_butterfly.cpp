// Experiment F2 — greedy routing on a *faulty* butterfly.  The butterfly
// has a unique path of exactly d arcs per origin/destination pair, so a
// static arc fault rate f gives a closed-form delivery ratio under the
// drop policy: P[all d required arcs alive] = (1 - f)^d.  The twin_detour
// policy keeps misrouted packets moving (measuring the capacity cost of
// deflection without path diversity) but cannot save them — the wrong row
// bit can never be fixed at a later level.

#include <cmath>

#include "common/driver.hpp"

int main(int argc, char** argv) {
  benchdrive::Suite suite(
      "tab_faulty_butterfly",
      "F2: greedy butterfly under static link faults (d = 5, p = 1/2)\n"
      "drop rows must match the unique-path closed form (1-f)^d",
      {"delivery_ratio", "mean_stretch", "delay_p99"});

  const int d = 5;
  const double rho = 0.5;

  for (const char* policy : {"drop", "twin_detour"}) {
    for (const double fault_rate : {0.0, 0.02, 0.05, 0.1}) {
      if (fault_rate == 0.0 && std::string(policy) != "drop") continue;
      routesim::Scenario scenario;
      scenario.scheme = "butterfly_greedy";
      scenario.d = d;
      scenario.p = 0.5;
      scenario.lambda = rho;  // rho = lambda * max{p, 1-p} = lambda here
      scenario.fault_rate = fault_rate;
      scenario.fault_policy = policy;
      scenario.measure = 1500.0;
      scenario.plan = {6, 777, 0};

      benchdrive::Case spec;
      spec.label = "f=" + benchtab::fmt(fault_rate, 2) + " " + policy;
      spec.scenario = scenario;
      spec.check_little = fault_rate == 0.0;
      suite.add(spec);
    }
  }

  auto& checker = suite.checker();
  for (const auto& outcome : suite.outcomes()) {
    const double f = outcome.spec.scenario.fault_rate;
    const auto* ratio = outcome.result.extra("delivery_ratio");
    const auto* stretch = outcome.result.extra("mean_stretch");
    checker.require(ratio != nullptr && stretch != nullptr,
                    outcome.spec.label + ": resilience extras present");
    if (ratio == nullptr || stretch == nullptr) continue;
    // Every delivered butterfly packet crosses exactly d arcs, detour or
    // not, so stretch is identically 1.
    checker.require(stretch->mean == 1.0,
                    outcome.spec.label + ": unique-path stretch == 1");
    if (f == 0.0) {
      checker.require(ratio->mean == 1.0,
                      outcome.spec.label + ": fault-free delivery ratio == 1");
      continue;
    }
    // Unique-path closed form, for both policies (the twin detour only
    // postpones the loss): (1-f)^d within CI half-width + slack.
    const double expected = std::pow(1.0 - f, d);
    checker.require(
        std::abs(ratio->mean - expected) <= ratio->half_width + 0.03,
        outcome.spec.label + ": delivery ratio ~ (1-f)^d = " +
            benchtab::fmt(expected, 3));
  }

  std::cout << "\nShape check: delivery ratio tracks (1-f)^d for both "
               "policies — the butterfly's unique path makes faults fatal; "
               "twin_detour only converts drops into wasted transmissions.\n";
  return suite.finish(argc, argv);
}
