// Experiment F1 — greedy routing on a *faulty* d-cube: delivery ratio,
// path stretch and tail delay as static link faults sweep across load
// levels, for the drop baseline and the skip_dim reroute policy.
//
// The paper's bracket applies only to the fault-free rows (shown first at
// each load); faulty rows trade the bracket for the resilience metrics.
// Expected shape: delivery ratio decays with fault_rate under drop (every
// dead required arc kills its packet) but stays near 1 under skip_dim as
// long as the surviving cube stays connected; skip_dim pays for that with
// stretch > 1 and a heavier delay tail.

#include "common/driver.hpp"

int main(int argc, char** argv) {
  benchdrive::Suite suite(
      "tab_faulty_hypercube",
      "F1: greedy d-cube under static link faults (d = 6, p = 1/2)\n"
      "fault-free rows carry the paper's bracket; faulty rows report\n"
      "delivery ratio / stretch / p99 instead",
      {"delivery_ratio", "mean_stretch", "delay_p99"});

  const double fault_rates[] = {0.0, 0.05, 0.1, 0.2};
  const char* policies[] = {"drop", "skip_dim"};

  for (const double rho : {0.3, 0.6}) {
    for (const char* policy : policies) {
      for (const double fault_rate : fault_rates) {
        if (fault_rate == 0.0 && std::string(policy) != "drop") {
          continue;  // fault-free baseline once per load
        }
        routesim::Scenario scenario;
        scenario.scheme = "hypercube_greedy";
        scenario.d = 6;
        scenario.p = 0.5;
        scenario.lambda = rho / scenario.p;
        scenario.fault_rate = fault_rate;
        scenario.fault_policy = policy;
        scenario.measure = 1500.0;
        scenario.plan = {4, 4242, 0};

        benchdrive::Case spec;
        spec.label = "rho=" + benchtab::fmt(rho, 1) + " f=" +
                     benchtab::fmt(fault_rate, 2) + " " + policy;
        spec.scenario = scenario;
        // Little's law compares sojourn against *all* arrivals, including
        // fault-dropped ones, so it only applies to fault-free rows.
        spec.check_little = fault_rate == 0.0;
        suite.add(spec);
      }
    }
  }

  // Shape checks on the harvested resilience metrics.
  auto& checker = suite.checker();
  for (const auto& outcome : suite.outcomes()) {
    const auto* ratio = outcome.result.extra("delivery_ratio");
    const auto* stretch = outcome.result.extra("mean_stretch");
    checker.require(ratio != nullptr && stretch != nullptr,
                    outcome.spec.label + ": resilience extras present");
    if (ratio == nullptr || stretch == nullptr) continue;
    checker.require(ratio->mean > 0.0 && ratio->mean <= 1.0 + 1e-12,
                    outcome.spec.label + ": delivery ratio in (0, 1]");
    checker.require(stretch->mean >= 1.0 - 1e-12,
                    outcome.spec.label + ": stretch >= 1");
    if (outcome.spec.scenario.fault_rate == 0.0) {
      checker.require(ratio->mean == 1.0,
                      outcome.spec.label + ": fault-free delivery ratio == 1");
      checker.require(stretch->mean == 1.0,
                      outcome.spec.label + ": fault-free stretch == 1");
    }
    if (outcome.spec.scenario.fault_policy == "drop") {
      // Drop never detours, so delivered packets took the greedy path.
      checker.require(stretch->mean == 1.0,
                      outcome.spec.label + ": drop policy stretch == 1");
    }
  }
  // At equal load and fault rate, rerouting must not deliver less than
  // dropping.
  for (std::size_t i = 0; i < suite.outcomes().size(); ++i) {
    const auto& drop = suite.outcomes()[i];
    if (drop.spec.scenario.fault_policy != "drop" ||
        drop.spec.scenario.fault_rate == 0.0) {
      continue;
    }
    for (const auto& other : suite.outcomes()) {
      if (other.spec.scenario.fault_policy == "skip_dim" &&
          other.spec.scenario.fault_rate == drop.spec.scenario.fault_rate &&
          other.spec.scenario.lambda == drop.spec.scenario.lambda) {
        const auto* skip_ratio = other.result.extra("delivery_ratio");
        const auto* drop_ratio = drop.result.extra("delivery_ratio");
        if (skip_ratio == nullptr || drop_ratio == nullptr) continue;
        checker.require(
            skip_ratio->mean + 1e-9 >= drop_ratio->mean,
            drop.spec.label + ": skip_dim delivers at least as much as drop");
      }
    }
  }

  std::cout << "\nShape check: delivery ratio decays with f under drop, "
               "stays ~1 under skip_dim; skip_dim pays in stretch and p99.\n";
  return suite.finish(argc, argv);
}
