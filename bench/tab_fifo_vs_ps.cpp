// Experiment X7 — the proof mechanism of Proposition 12 made visible:
// the hypercube network Q (FIFO) is coupled with Q~ (PS) on the same
// sample path; departures dominate (Lemma 10), populations are ordered
// (Prop. 11), and Q~'s population matches the product-form closed form,
// which yields T <= dp/(1-rho).

#include <cmath>
#include <iostream>

#include "common/table.hpp"
#include "core/equivalence.hpp"
#include "queueing/levelled_network.hpp"
#include "queueing/product_form.hpp"

using namespace routesim;

int main() {
  std::cout << "X7: coupled FIFO vs PS on the hypercube network Q (d = 5, p = 1/2)\n\n";
  benchtab::Checker checker;

  for (const double rho : {0.5, 0.8}) {
    const int d = 5;
    const double lambda = 2.0 * rho;
    std::cout << "rho = " << rho << ":\n";

    // Coupled departure counts over time (Lemma 10).
    std::vector<double> checkpoints;
    for (int i = 1; i <= 8; ++i) checkpoints.push_back(500.0 * i);
    LevelledNetwork fifo(
        make_hypercube_network_q(d, lambda, 0.5, Discipline::kFifo, 99));
    LevelledNetwork ps(make_hypercube_network_q(d, lambda, 0.5, Discipline::kPs, 99));
    fifo.set_checkpoints(checkpoints);
    ps.set_checkpoints(checkpoints);
    fifo.run(1000.0, 21000.0);
    ps.run(1000.0, 21000.0);

    benchtab::Table trajectory({"t", "B_FIFO(t)", "B_PS(t)", "dominates"});
    bool dominated = true;
    for (std::size_t i = 0; i < checkpoints.size(); ++i) {
      const auto bf = fifo.checkpoint_departures()[i];
      const auto bp = ps.checkpoint_departures()[i];
      dominated = dominated && bf >= bp;
      trajectory.add_row({benchtab::fmt(checkpoints[i], 0), benchtab::fmt_int(bf),
                          benchtab::fmt_int(bp), bf >= bp ? "yes" : "NO"});
    }
    trajectory.print();
    checker.require(dominated, "rho=" + benchtab::fmt(rho, 1) +
                                   ": Lemma 10 departure dominance on Q");

    // Steady-state comparison (Prop. 11 + product form).
    const double product_form = hypercube_ps_mean_population(d, rho);
    benchtab::Table steady({"quantity", "FIFO (Q)", "PS (Q~)", "product form"});
    steady.add_row({"time-avg population", benchtab::fmt(fifo.time_avg_population(), 1),
                    benchtab::fmt(ps.time_avg_population(), 1),
                    benchtab::fmt(product_form, 1)});
    steady.add_row({"mean sojourn", benchtab::fmt(fifo.delay().mean(), 3),
                    benchtab::fmt(ps.delay().mean(), 3), "-"});
    steady.print();

    checker.require(
        fifo.time_avg_population() <= ps.time_avg_population() * 1.03,
        "rho=" + benchtab::fmt(rho, 1) + ": N_FIFO <= N_PS (Prop. 11)");
    checker.require(
        std::abs(ps.time_avg_population() / product_form - 1.0) < 0.08,
        "rho=" + benchtab::fmt(rho, 1) +
            ": PS population matches d*2^d*rho/(1-rho) (product form)");
    checker.require(
        fifo.time_avg_population() <= product_form * 1.03,
        "rho=" + benchtab::fmt(rho, 1) +
            ": FIFO population below the Prop. 12 ceiling");
    std::cout << '\n';
  }

  std::cout << "Shape check: FIFO (the real scheme) is dominated by PS, whose\n"
               "closed form gives T <= dp/(1-rho) — exactly Prop. 12's proof.\n";
  return checker.summarize();
}
