// Experiment X20 — the §2.2 closing remark: Propositions 2/3 and the
// stability condition extend to ANY translation-invariant destination law
// f(x XOR z), with per-dimension load factors
//     rho_j = lambda * sum_{y: y_j = 1} f(y),   rho = max_j rho_j.
// This harness uses a deliberately skewed f, verifies the measured
// per-dimension arc rates against the rho_j formula, and shows that the
// bottleneck dimension alone decides stability.

#include <cmath>
#include <iostream>

#include "common/table.hpp"
#include "core/bounds.hpp"
#include "routing/greedy_hypercube.hpp"

using namespace routesim;

int main() {
  std::cout << "X20: general translation-invariant destinations (§2.2 end)\n";
  const int d = 4;
  // Skewed law: mask 0100 (dim 3 only) with weight .55; mask 0011
  // (dims 1+2) with weight .30; mask 1111 with weight .15.
  std::vector<double> pmf(16, 0.0);
  pmf[0b0100] = 0.55;
  pmf[0b0011] = 0.30;
  pmf[0b1111] = 0.15;
  std::cout << "f: P[0100]=.55 P[0011]=.30 P[1111]=.15  (bottleneck: dim 3)\n\n";

  benchtab::Checker checker;

  // Per-dimension flip probabilities: dim1 = dim2 = .45, dim3 = .70, dim4 = .15.
  const double lambda = 1.2;
  GreedyHypercubeConfig config;
  config.d = d;
  config.lambda = lambda;
  config.destinations = DestinationDistribution::general(d, pmf);
  config.seed = 1001;
  GreedyHypercubeSim sim(config);
  sim.run(500.0, 60500.0);
  const double window = 60000.0;

  benchtab::Table table({"dim j", "rho_j = lambda*flip_j", "arc rate measured",
                         "ratio"});
  for (int dim = 1; dim <= d; ++dim) {
    const double rho_j = bounds::dimension_load_factor(pmf, dim, lambda);
    double total = 0.0;
    for (NodeId x = 0; x < 16; ++x) {
      total += static_cast<double>(
          sim.arc_counters()[sim.topology().arc_index(x, dim)].total_arrivals);
    }
    const double measured = total / 16.0 / window;
    table.add_row({std::to_string(dim), benchtab::fmt(rho_j, 3),
                   benchtab::fmt(measured, 3), benchtab::fmt(measured / rho_j, 3)});
    checker.require(std::abs(measured / rho_j - 1.0) < 0.03,
                    "dim " + std::to_string(dim) +
                        ": measured arc rate equals lambda*sum_{y_j=1} f(y)");
  }
  table.print();

  const double rho = bounds::load_factor_general(pmf, d, lambda);
  std::cout << "\nload factor rho = max_j rho_j = " << benchtab::fmt(rho, 3)
            << " (dimension 3)\n";
  checker.require(std::abs(rho - lambda * 0.70) < 1e-9,
                  "rho equals the bottleneck dimension's load");

  // Stability governed by the bottleneck: lambda chosen so that only dim 3
  // crosses 1.
  {
    GreedyHypercubeConfig hot = config;
    hot.lambda = 1.55;  // rho_3 = 1.085 > 1, all other rho_j < 0.70
    GreedyHypercubeSim unstable(hot);
    unstable.run(0.0, 30000.0);
    checker.require(unstable.final_population() > 1500.0,
                    "rho_3 > 1 makes the system unstable even though every "
                    "other dimension is lightly loaded");

    GreedyHypercubeConfig cool = config;
    cool.lambda = 1.35;  // rho_3 = 0.945 < 1
    GreedyHypercubeSim stable(cool);
    stable.run(2000.0, 42000.0);
    checker.require(stable.final_population() < 1000.0,
                    "rho_3 < 1 keeps the system stable (bottleneck criterion)");
  }

  std::cout << "\nShape check: the necessary condition (2) holds per dimension\n"
               "for any translation-invariant law, exactly as §2.2 states.\n";
  return checker.summarize();
}
