// Experiment X6 — heavy-traffic behaviour (discussion after Prop. 13):
//   p/2  <=  lim_{rho->1} (1-rho) T  <=  d p ,
// and at p = 1 the limit is exactly p/2 = 1/2 (disjoint paths, closed form
// T = d + rho/(2(1-rho))).  Scenario sweeps of rho -> 1 with the band and
// closed-form post-checks.

#include <cmath>

#include "common/driver.hpp"
#include "core/bounds.hpp"

int main(int argc, char** argv) {
  using routesim::bounds::HypercubeParams;
  benchdrive::Suite suite("tab_heavy_traffic",
                          "X6: heavy-traffic scaling (1-rho)*T as rho -> 1 "
                          "(d = 5)");
  const int d = 5;

  // Uniform destinations: the scaled delay stays inside [p/2, dp].
  double last_scaled = 0.0;
  for (const double rho : {0.90, 0.95, 0.98, 0.99}) {
    routesim::Scenario scenario;
    scenario.scheme = "hypercube_greedy";
    scenario.d = d;
    scenario.p = 0.5;
    scenario.lambda = rho / scenario.p;
    scenario.measure = 20000.0 / (1 - rho) / 10.0;  // longer near 1
    scenario.plan = {6, 555, 0};
    const auto& result =
        suite.add({"p=0.5 rho=" + benchtab::fmt(rho, 2), scenario, false, false});
    const double scaled = (1 - rho) * result.delay.mean;
    last_scaled = scaled;
    const HypercubeParams params{d, scenario.lambda, scenario.p};
    suite.checker().require(
        scaled >= routesim::bounds::heavy_traffic_lower(params) * 0.9 &&
            scaled <= routesim::bounds::heavy_traffic_upper(params) * 1.1,
        "rho=" + benchtab::fmt(rho, 2) + ": (1-rho)T within [p/2, dp] band");
  }
  suite.checker().require(last_scaled > 0.0,
                          "scaled delay converges to a finite value");

  // p = 1: the lower bound is tight and the delay has a closed form.
  for (const double rho : {0.90, 0.95, 0.98}) {
    routesim::Scenario scenario;
    scenario.scheme = "hypercube_greedy";
    scenario.d = d;
    scenario.p = 1.0;
    scenario.lambda = rho;
    scenario.measure = 20000.0;
    scenario.plan = {6, 777, 0};
    const auto& result =
        suite.add({"p=1 rho=" + benchtab::fmt(rho, 2), scenario, false, false});
    const double exact = routesim::bounds::greedy_delay_exact_p1(d, rho);
    suite.checker().require(
        std::abs(result.delay.mean / exact - 1.0) < 0.03,
        "p=1 rho=" + benchtab::fmt(rho, 2) +
            ": simulation matches closed form d + rho/(2(1-rho))");
  }

  std::cout << "\nShape check: (1-rho)T is bounded and the p=1 case attains "
               "the lower-bound scaling p/2 (§3.3 end).\n";
  return suite.finish(argc, argv);
}
