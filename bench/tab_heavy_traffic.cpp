// Experiment X6 — heavy-traffic behaviour (discussion after Prop. 13):
//   p/2  <=  lim_{rho->1} (1-rho) T  <=  d p ,
// and at p = 1 the limit is exactly p/2 = 1/2 (disjoint paths, closed form
// T = d + rho/(2(1-rho))).  Tabulates (1-rho)*T as rho -> 1.

#include <iostream>

#include "common/table.hpp"
#include "core/simulation.hpp"

using namespace routesim;

int main() {
  std::cout << "X6: heavy-traffic scaling (1-rho)*T as rho -> 1\n\n";
  benchtab::Checker checker;

  // Uniform destinations, d = 5.
  {
    const int d = 5;
    const double p = 0.5;
    std::cout << "d = " << d << ", p = 1/2 (uniform destinations):\n";
    benchtab::Table table({"rho", "T sim", "(1-rho)T", "limit LB p/2", "limit UB dp"});
    double last_scaled = 0.0;
    for (const double rho : {0.90, 0.95, 0.98, 0.99}) {
      const bounds::HypercubeParams params{d, rho / p, p};
      const double measure = 20000.0 / (1 - rho) / 10.0;  // longer near 1
      const auto window = Window::for_load(d, rho, measure);
      const auto estimate = estimate_hypercube_delay(params, window, {6, 555, 0});
      const double scaled = (1 - rho) * estimate.delay.mean;
      last_scaled = scaled;
      table.add_row({benchtab::fmt(rho, 2), benchtab::fmt(estimate.delay.mean, 2),
                     benchtab::fmt(scaled, 3),
                     benchtab::fmt(bounds::heavy_traffic_lower(params), 3),
                     benchtab::fmt(bounds::heavy_traffic_upper(params), 3)});
      checker.require(scaled >= bounds::heavy_traffic_lower(params) * 0.9 &&
                          scaled <= bounds::heavy_traffic_upper(params) * 1.1,
                      "rho=" + benchtab::fmt(rho, 2) +
                          ": (1-rho)T within [p/2, dp] band");
    }
    table.print();
    checker.require(last_scaled > 0.0, "scaled delay converges to a finite value");
    std::cout << '\n';
  }

  // p = 1: the lower bound is tight and the delay has a closed form.
  {
    const int d = 5;
    std::cout << "d = " << d << ", p = 1 (antipodal traffic, disjoint paths):\n";
    benchtab::Table table({"rho", "T sim", "T exact", "(1-rho)T", "limit = 1/2"});
    for (const double rho : {0.90, 0.95, 0.98}) {
      const bounds::HypercubeParams params{d, rho, 1.0};
      const auto window = Window::for_load(d, rho, 20000.0);
      const auto estimate = estimate_hypercube_delay(params, window, {6, 777, 0});
      const double exact = bounds::greedy_delay_exact_p1(d, rho);
      table.add_row({benchtab::fmt(rho, 2), benchtab::fmt(estimate.delay.mean, 3),
                     benchtab::fmt(exact, 3),
                     benchtab::fmt((1 - rho) * estimate.delay.mean, 3),
                     "0.500"});
      checker.require(std::abs(estimate.delay.mean / exact - 1.0) < 0.03,
                      "p=1 rho=" + benchtab::fmt(rho, 2) +
                          ": simulation matches closed form d + rho/(2(1-rho))");
    }
    table.print();
  }

  std::cout << "\nShape check: (1-rho)T is bounded and the p=1 case attains the "
               "lower-bound scaling p/2 (§3.3 end).\n";
  return checker.summarize();
}
