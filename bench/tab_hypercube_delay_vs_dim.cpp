// Experiment X4 — the O(d) delay claim: for fixed rho < 1 the average
// delay grows linearly in the dimension d, with slope between the bounds'
// slopes p (LB) and p/(1-rho) (UB).  A scenario sweep of d at two loads
// with linearity post-checks over the collected results.

#include <cmath>

#include "common/driver.hpp"

int main(int argc, char** argv) {
  benchdrive::Suite suite("tab_hypercube_delay_vs_dim",
                          "X4: hypercube greedy delay vs dimension (p = 1/2)");
  const double p = 0.5;

  for (const double rho : {0.5, 0.8}) {
    std::vector<double> per_d;
    for (int d = 2; d <= 10; ++d) {
      routesim::Scenario scenario;
      scenario.scheme = "hypercube_greedy";
      scenario.d = d;
      scenario.p = p;
      scenario.lambda = rho / p;
      scenario.measure = 3000.0;
      scenario.plan = {5, 77, 0};
      const auto& result =
          suite.add({"rho=" + benchtab::fmt(rho, 1) + " d=" + std::to_string(d),
                     scenario, true, true, 0.05, 0.05});
      per_d.push_back(result.delay.mean);
    }

    // Linearity: T(d)/d settles to a constant — compare the last ratios.
    const double ratio_8 = per_d[6] / 8.0;
    const double ratio_10 = per_d[8] / 10.0;
    suite.checker().require(std::abs(ratio_10 / ratio_8 - 1.0) < 0.1,
                            "rho=" + benchtab::fmt(rho, 1) +
                                ": T/d approximately constant for large d "
                                "(O(d) delay)");
    suite.checker().require(ratio_10 >= p * 0.95 &&
                                ratio_10 <= p / (1 - rho) * 1.05,
                            "rho=" + benchtab::fmt(rho, 1) +
                                ": slope between p and p/(1-rho)");
  }
  return suite.finish(argc, argv);
}
