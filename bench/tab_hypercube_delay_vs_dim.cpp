// Experiment X4 — the O(d) delay claim: for fixed rho < 1 the average
// delay grows linearly in the dimension d, with slope between the bounds'
// slopes p (LB) and p/(1-rho) (UB).  Sweeps d at two loads.

#include <iostream>

#include "common/table.hpp"
#include "core/simulation.hpp"

using namespace routesim;

int main() {
  std::cout << "X4: hypercube greedy delay vs dimension (p = 1/2)\n\n";

  const double p = 0.5;
  benchtab::Checker checker;

  for (const double rho : {0.5, 0.8}) {
    std::cout << "load factor rho = " << rho << ":\n";
    benchtab::Table table({"d", "LB (P13)", "T sim", "+/-", "UB (P12)", "T/d"});
    std::vector<double> per_d;
    for (int d = 2; d <= 10; ++d) {
      const bounds::HypercubeParams params{d, rho / p, p};
      const auto window = Window::for_load(d, rho, 3000.0);
      const auto estimate = estimate_hypercube_delay(params, window, {5, 77, 0});
      per_d.push_back(estimate.delay.mean);
      table.add_row({std::to_string(d), benchtab::fmt(estimate.lower_bound),
                     benchtab::fmt(estimate.delay.mean),
                     benchtab::fmt(estimate.delay.half_width),
                     benchtab::fmt(estimate.upper_bound),
                     benchtab::fmt(estimate.delay.mean / d, 3)});
      checker.require(
          estimate.delay.mean >=
                  estimate.lower_bound - estimate.delay.half_width - 0.05 &&
              estimate.delay.mean <=
                  estimate.upper_bound + estimate.delay.half_width + 0.05,
          "rho=" + benchtab::fmt(rho, 1) + " d=" + std::to_string(d) +
              ": T within bracket");
    }
    table.print();

    // Linearity: T(d)/d settles to a constant — compare the last ratios.
    const double ratio_8 = per_d[6] / 8.0;
    const double ratio_10 = per_d[8] / 10.0;
    checker.require(std::abs(ratio_10 / ratio_8 - 1.0) < 0.1,
                    "rho=" + benchtab::fmt(rho, 1) +
                        ": T/d approximately constant for large d (O(d) delay)");
    // Slope within the bounds' slopes.
    checker.require(ratio_10 >= p * 0.95 && ratio_10 <= p / (1 - rho) * 1.05,
                    "rho=" + benchtab::fmt(rho, 1) +
                        ": slope between p and p/(1-rho)");
    std::cout << '\n';
  }
  return checker.summarize();
}
