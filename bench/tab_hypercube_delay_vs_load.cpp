// Experiment X3 — the paper's headline quantitative claim (Props. 12/13):
// for the greedy scheme on the d-cube with uniform destinations,
//   dp + p*rho/(2(1-rho))  <=  T  <=  dp/(1-rho)   for all rho < 1,
// and T grows like 1/(1-rho) under heavy traffic.  A pure scenario sweep
// of the load factor at fixed d.

#include "common/driver.hpp"

int main(int argc, char** argv) {
  benchdrive::Suite suite(
      "tab_hypercube_delay_vs_load",
      "X3: hypercube greedy delay vs load factor (d = 8, p = 1/2)\n"
      "bounds: LB = Prop. 13, UB = Prop. 12");

  for (const double rho : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}) {
    routesim::Scenario scenario;
    scenario.scheme = "hypercube_greedy";
    scenario.d = 8;
    scenario.p = 0.5;
    scenario.lambda = rho / scenario.p;
    scenario.measure = rho < 0.9 ? 4000.0 : 12000.0;
    scenario.plan = {6, 1234, 0};
    suite.add({"rho=" + benchtab::fmt(rho, 2), scenario});
  }

  std::cout << "\nShape check: T stays O(d) for fixed rho and blows up like "
               "1/(1-rho) as rho -> 1.\n";
  return suite.finish(argc, argv);
}
