// Experiment X3 — the paper's headline quantitative claim (Props. 12/13):
// for the greedy scheme on the d-cube with uniform destinations,
//   dp + p*rho/(2(1-rho))  <=  T  <=  dp/(1-rho)   for all rho < 1,
// and T grows like 1/(1-rho) under heavy traffic.  Sweeps the load factor
// at fixed d and prints simulated delay (with 95% CIs over replications)
// against both bounds.

#include <iostream>

#include "common/table.hpp"
#include "core/simulation.hpp"

using namespace routesim;

int main() {
  std::cout << "X3: hypercube greedy delay vs load factor (d = 8, p = 1/2)\n";
  std::cout << "bounds: LB = Prop. 13, UB = Prop. 12\n\n";

  const int d = 8;
  const double p = 0.5;
  benchtab::Table table(
      {"rho", "LB (P13)", "T sim", "+/-", "UB (P12)", "T/(dp)", "in bracket"});
  benchtab::Checker checker;

  for (const double rho : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}) {
    const bounds::HypercubeParams params{d, rho / p, p};
    const double measure = rho < 0.9 ? 4000.0 : 12000.0;
    const auto window = Window::for_load(d, rho, measure);
    const auto estimate = estimate_hypercube_delay(params, window, {6, 1234, 0});

    const bool inside =
        estimate.delay.mean >= estimate.lower_bound - estimate.delay.half_width &&
        estimate.delay.mean <= estimate.upper_bound + estimate.delay.half_width;
    table.add_row({benchtab::fmt(rho, 2), benchtab::fmt(estimate.lower_bound),
                   benchtab::fmt(estimate.delay.mean),
                   benchtab::fmt(estimate.delay.half_width),
                   benchtab::fmt(estimate.upper_bound),
                   benchtab::fmt(estimate.delay.mean / (d * p), 2),
                   inside ? "yes" : "NO"});
    checker.require(inside, "rho=" + benchtab::fmt(rho, 2) +
                                ": simulated T within [P13, P12] bracket");
    checker.require(estimate.max_little_error < 0.05,
                    "rho=" + benchtab::fmt(rho, 2) + ": Little's law consistent");
  }
  table.print();

  std::cout << "\nShape check: T stays O(d) for fixed rho and blows up like "
               "1/(1-rho) as rho -> 1.\n";
  return checker.summarize();
}
