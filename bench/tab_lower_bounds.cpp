// Experiment X13 — the lower-bound hierarchy (Props. 2 and 3): the
// universal bound (any scheme), the oblivious bound (any oblivious scheme)
// and the greedy-specific bound (Prop. 13) versus the simulated delay.
// The greedy scheme is oblivious, so all three must sit below it, in order.

#include <iostream>

#include "common/table.hpp"
#include "core/simulation.hpp"

using namespace routesim;

int main() {
  std::cout << "X13: lower-bound hierarchy vs simulated greedy delay (p = 1/2)\n\n";
  benchtab::Checker checker;

  benchtab::Table table({"d", "rho", "P2 universal", "P3 oblivious", "P13 greedy",
                         "T sim", "T/P3"});
  for (const int d : {4, 6, 8}) {
    for (const double rho : {0.5, 0.9}) {
      const bounds::HypercubeParams params{d, 2.0 * rho, 0.5};
      const double universal = bounds::universal_delay_lower_bound(params);
      const double oblivious = bounds::oblivious_delay_lower_bound(params);
      const double greedy_lb = bounds::greedy_delay_lower_bound(params);

      const auto window = Window::for_load(d, rho, rho < 0.9 ? 4000.0 : 10000.0);
      const auto estimate = estimate_hypercube_delay(params, window, {5, 606, 0});

      table.add_row({std::to_string(d), benchtab::fmt(rho, 1),
                     benchtab::fmt(universal), benchtab::fmt(oblivious),
                     benchtab::fmt(greedy_lb), benchtab::fmt(estimate.delay.mean),
                     benchtab::fmt(estimate.delay.mean / oblivious, 2)});

      const std::string tag =
          "d=" + std::to_string(d) + " rho=" + benchtab::fmt(rho, 1);
      checker.require(universal <= oblivious + 1e-9,
                      tag + ": P2 <= P3 (restricting to oblivious tightens)");
      checker.require(oblivious <= greedy_lb + 1e-9, tag + ": P3 <= P13");
      checker.require(estimate.delay.mean >= greedy_lb * 0.97,
                      tag + ": simulated T above the greedy LB");
      checker.require(estimate.delay.mean >= oblivious * 0.97,
                      tag + ": simulated T above the oblivious LB "
                            "(greedy is oblivious)");
    }
  }
  table.print();

  std::cout << "\nShape check: P2's queueing term carries the 1/2^d factor, so\n"
               "it is loose in d (as the paper remarks); P3 removes it for\n"
               "oblivious schemes and P13 sharpens it by a factor <= 2.\n";
  return checker.summarize();
}
