// Experiment X13 — the lower-bound hierarchy (Props. 2 and 3): the
// universal bound (any scheme), the oblivious bound (any oblivious scheme)
// and the greedy-specific bound (Prop. 13) versus the simulated delay.
// The greedy scheme is oblivious, so all three must sit below it, in order.

#include "common/driver.hpp"
#include "core/bounds.hpp"

int main(int argc, char** argv) {
  using namespace routesim::bounds;
  benchdrive::Suite suite(
      "tab_lower_bounds",
      "X13: lower-bound hierarchy vs simulated greedy delay (p = 1/2)");

  for (const int d : {4, 6, 8}) {
    for (const double rho : {0.5, 0.9}) {
      routesim::Scenario scenario;
      scenario.scheme = "hypercube_greedy";
      scenario.d = d;
      scenario.p = 0.5;
      scenario.lambda = 2.0 * rho;
      scenario.measure = rho < 0.9 ? 4000.0 : 10000.0;
      scenario.plan = {5, 606, 0};
      const std::string tag =
          "d=" + std::to_string(d) + " rho=" + benchtab::fmt(rho, 1);
      const auto& result = suite.add({tag, scenario});

      const HypercubeParams params{d, scenario.lambda, scenario.p};
      const double universal = universal_delay_lower_bound(params);
      const double oblivious = oblivious_delay_lower_bound(params);
      const double greedy_lb = greedy_delay_lower_bound(params);
      suite.checker().require(universal <= oblivious + 1e-9,
                              tag + ": P2 <= P3 (restricting to oblivious "
                                    "tightens)");
      suite.checker().require(oblivious <= greedy_lb + 1e-9, tag + ": P3 <= P13");
      suite.checker().require(result.delay.mean >= greedy_lb * 0.97,
                              tag + ": simulated T above the greedy LB");
      suite.checker().require(result.delay.mean >= oblivious * 0.97,
                              tag + ": simulated T above the oblivious LB "
                                    "(greedy is oblivious)");
    }
  }

  std::cout << "\nShape check: P2's queueing term carries the 1/2^d factor, so\n"
               "it is loose in d (as the paper remarks); P3 removes it for\n"
               "oblivious schemes and P13 sharpens it by a factor <= 2.\n";
  return suite.finish(argc, argv);
}
