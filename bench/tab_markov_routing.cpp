// Experiment X15 — Lemma 4 / Property C: routing in the equivalent network
// is Markovian with transition probabilities p(1-p)^(j-i-1) from dimension
// i to dimension j and exit probability (1-p)^(d-i).  Measured on the
// packet-level simulator by accounting arrivals per dimension.

#include <cmath>
#include <iostream>

#include "common/table.hpp"
#include "routing/greedy_hypercube.hpp"

using namespace routesim;

int main() {
  std::cout << "X15: Markov routing property (Lemma 4 / Property C)\n";
  const int d = 5;
  const double lambda = 1.0, p = 0.35;
  std::cout << "hypercube d=" << d << ", lambda=" << lambda << ", p=" << p << "\n\n";

  GreedyHypercubeConfig config;
  config.d = d;
  config.lambda = lambda;
  config.destinations = DestinationDistribution::bit_flip(d, p);
  config.seed = 83;
  GreedyHypercubeSim sim(config);
  sim.run(500.0, 120500.0);

  // Dimension-level arrival accounting.
  std::vector<double> external(d + 1, 0.0), total(d + 1, 0.0);
  for (int dim = 1; dim <= d; ++dim) {
    for (NodeId x = 0; x < 32; ++x) {
      const auto& counters = sim.arc_counters()[sim.topology().arc_index(x, dim)];
      external[dim] += static_cast<double>(counters.external_arrivals);
      total[dim] += static_cast<double>(counters.total_arrivals);
    }
  }

  benchtab::Checker checker;
  benchtab::Table table({"dim j", "internal arrivals sim",
                         "PropC prediction sum_i total_i*p(1-p)^(j-i-1)", "ratio"});
  for (int j = 2; j <= d; ++j) {
    double predicted = 0.0;
    for (int i = 1; i < j; ++i) predicted += total[i] * p * std::pow(1 - p, j - i - 1);
    const double internal = total[j] - external[j];
    table.add_row({std::to_string(j), benchtab::fmt(internal, 0),
                   benchtab::fmt(predicted, 0),
                   benchtab::fmt(internal / predicted, 4)});
    checker.require(std::abs(internal / predicted - 1.0) < 0.02,
                    "dim " + std::to_string(j) + ": internal flow matches Property C");
  }
  table.print();

  // Exit accounting: total departures from the network must equal
  // sum_i total_i * (1-p)^(d-i) (every completion either continues or exits).
  double predicted_exits = 0.0;
  for (int i = 1; i <= d; ++i) predicted_exits += total[i] * std::pow(1 - p, d - i);
  // Deliveries exclude self-addressed packets, which never enter any arc.
  const auto measured_exits = static_cast<double>(sim.deliveries_in_window()) -
                              static_cast<double>(sim.arrivals_in_window()) *
                                  std::pow(1 - p, d);
  std::cout << "\nexit flow: measured " << benchtab::fmt(measured_exits, 0)
            << " vs Property C prediction " << benchtab::fmt(predicted_exits, 0)
            << " (ratio " << benchtab::fmt(measured_exits / predicted_exits, 4)
            << ")\n";
  checker.require(std::abs(measured_exits / predicted_exits - 1.0) < 0.02,
                  "network exits match the (1-p)^(d-i) exit law");

  std::cout << "\nShape check: knowing a packet just crossed dimension i tells\n"
               "you nothing about its remaining dimensions beyond Bernoulli(p)\n"
               "coin flips (Lemma 1 independence) — routing is Markovian.\n";
  return checker.summarize();
}
