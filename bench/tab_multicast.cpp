// Experiment X19 — the §5 generalisation implemented: packets destined for
// a SUBSET of nodes, routed along dimension-ordered multicast trees.
// Tree vs k-unicast is one scenario pair per fanout (unicast_baseline=1
// disables tree sharing); transmissions and completion delay arrive as
// registry extra metrics.

#include <cmath>

#include "common/driver.hpp"

namespace {

routesim::Scenario multicast(int fanout, bool unicast_baseline) {
  routesim::Scenario scenario;
  scenario.scheme = "multicast";
  scenario.d = 6;
  scenario.lambda = 0.02;
  scenario.fanout = fanout;
  scenario.unicast_baseline = unicast_baseline;
  scenario.window = {500.0, 20500.0};
  scenario.plan = {2, 606, 0};
  return scenario;
}

}  // namespace

int main(int argc, char** argv) {
  benchdrive::Suite suite(
      "tab_multicast",
      "X19: greedy multicast trees vs k unicasts (d = 6, lambda = 0.02)",
      {"completion_delay", "transmissions_per_packet"});

  for (const int fanout : {1, 2, 4, 8, 16, 32}) {
    const std::string tag = "k=" + std::to_string(fanout);
    const auto& tree =
        suite.add({tag + " tree", multicast(fanout, false), false, false});
    const auto& unicast =
        suite.add({tag + " unicast", multicast(fanout, true), false, false});

    const double tree_tx = tree.extra("transmissions_per_packet")->mean;
    const double unicast_tx = unicast.extra("transmissions_per_packet")->mean;
    if (fanout == 1) {
      suite.checker().require(std::abs(tree_tx - unicast_tx) < 0.05,
                              "k=1: tree degenerates to unicast");
    } else {
      suite.checker().require(tree_tx < unicast_tx,
                              tag + ": tree uses fewer transmissions than k "
                                    "unicasts");
    }
    suite.checker().require(
        tree.extra("completion_delay")->mean >= tree.delay.mean - 1e-9,
        tag + ": completion (last dest) >= per-destination delay");
  }

  std::cout << "\nShape check: the saving grows with k (shared tree "
               "prefixes);\nat k = 2^d/2 the tree approaches the "
               "full-broadcast regime\nstudied in [StT90] (the paper's "
               "companion reference).\n";
  return suite.finish(argc, argv);
}
