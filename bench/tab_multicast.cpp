// Experiment X19 — the §5 generalisation implemented: packets destined for
// a SUBSET of nodes, routed along dimension-ordered multicast trees.
// Compares the tree against k independent unicasts on traffic and delay.

#include <iostream>

#include "common/table.hpp"
#include "routing/multicast.hpp"

using namespace routesim;

int main() {
  std::cout << "X19: greedy multicast trees vs k unicasts (d = 6, lambda = 0.02)\n\n";

  const int d = 6;
  benchtab::Checker checker;
  benchtab::Table table({"fanout k", "tree tx/packet", "unicast tx/packet",
                         "saving", "T per-dest", "T completion"});

  for (const int fanout : {1, 2, 4, 8, 16, 32}) {
    MulticastConfig tree_cfg;
    tree_cfg.d = d;
    tree_cfg.lambda = 0.02;
    tree_cfg.fanout = fanout;
    tree_cfg.seed = 606;
    GreedyMulticastSim tree(tree_cfg);
    tree.run(500.0, 20500.0);

    auto unicast_cfg = tree_cfg;
    unicast_cfg.unicast_baseline = true;
    GreedyMulticastSim unicast(unicast_cfg);
    unicast.run(500.0, 20500.0);

    const double tree_tx = tree.transmissions_per_packet().mean();
    const double unicast_tx = unicast.transmissions_per_packet().mean();
    table.add_row({std::to_string(fanout), benchtab::fmt(tree_tx, 2),
                   benchtab::fmt(unicast_tx, 2),
                   benchtab::fmt(100.0 * (1.0 - tree_tx / unicast_tx), 1) + "%",
                   benchtab::fmt(tree.delivery_delay().mean(), 2),
                   benchtab::fmt(tree.completion_delay().mean(), 2)});

    if (fanout == 1) {
      checker.require(std::abs(tree_tx - unicast_tx) < 0.05,
                      "k=1: tree degenerates to unicast");
    } else {
      checker.require(tree_tx < unicast_tx,
                      "k=" + std::to_string(fanout) +
                          ": tree uses fewer transmissions than k unicasts");
    }
    checker.require(tree.completion_delay().mean() >=
                        tree.delivery_delay().mean() - 1e-9,
                    "k=" + std::to_string(fanout) +
                        ": completion (last dest) >= per-destination delay");
  }
  table.print();

  std::cout << "\nShape check: the saving grows with k (shared tree prefixes);\n"
               "at k = 2^d/2 the tree approaches the full-broadcast regime\n"
               "studied in [StT90] (the paper's companion reference).\n";
  return checker.summarize();
}
