// Experiment F2 — percolation-scale fault storms on the d-cube (d = 10):
// delivery ratio and stretch as the static arc fault rate sweeps across
// the routing percolation knee, for the drop baseline, the skip_dim
// reroute policy and the adaptive (one-hop lookahead) policy.
//
// Alongside each fault rate the table reports the giant-component
// fraction of the *surviving* cube (largest connected component over
// bidirectionally-alive links, replication-0 fault set), computed here in
// the bench — structural percolation — next to the delivery ratio —
// *routing* percolation.  The two tell opposite stories depending on the
// policy: the drop baseline percolates out (delivery <= 0.5) while the
// giant component is still exactly whole — a single dead arc on the
// greedy path kills the packet long before the cube fragments — while
// the rerouting policies ride the cube's path diversity all the way to
// the structural transition and collapse with it.
//
// Checked shape (CI-enforced): delivery ratio >= 0.95 for the rerouting
// policies well below the knee, <= 0.5 for every policy well above it,
// drop already <= 0.5 at a rate where the giant fraction is still > 0.99,
// and adaptive strictly dominates skip_dim at two or more sweep points
// around criticality (the lookahead avoids dead-end detours exactly when
// dead arcs start to cluster).

#include <cstdio>
#include <vector>

#include "common/driver.hpp"
#include "fault/fault_model.hpp"
#include "topology/hypercube.hpp"
#include "util/rng.hpp"

namespace {

constexpr int kDim = 10;
constexpr std::uint64_t kBaseSeed = 4242;

/// Fraction of nodes in the largest component of the surviving cube,
/// where a link survives iff *both* directed arcs are alive (the
/// conservative, routing-usable notion) — replication-0 fault set.
double giant_component_fraction(double fault_rate) {
  const routesim::Hypercube cube(kDim);
  routesim::FaultModelConfig config;
  config.num_arcs = cube.num_arcs();
  config.num_nodes = cube.num_nodes();
  config.arc_fault_rate = fault_rate;
  config.seed = routesim::derive_stream(kBaseSeed, 0);
  routesim::FaultModel model;
  model.configure(config);

  const std::uint32_t n = cube.num_nodes();
  std::vector<std::uint8_t> seen(n, 0);
  std::vector<std::uint32_t> stack;
  std::uint32_t giant = 0;
  for (std::uint32_t root = 0; root < n; ++root) {
    if (seen[root]) continue;
    std::uint32_t size = 0;
    stack.assign(1, root);
    seen[root] = 1;
    while (!stack.empty()) {
      const std::uint32_t node = stack.back();
      stack.pop_back();
      ++size;
      for (int dim = 1; dim <= kDim; ++dim) {
        const auto next = routesim::flip_dimension(node, dim);
        if (seen[next]) continue;
        if (model.is_faulty(cube.arc_index(node, dim)) ||
            model.is_faulty(cube.arc_index(next, dim))) {
          continue;
        }
        seen[next] = 1;
        stack.push_back(next);
      }
    }
    giant = std::max(giant, size);
  }
  return static_cast<double>(giant) / static_cast<double>(n);
}

}  // namespace

int main(int argc, char** argv) {
  benchdrive::Suite suite(
      "tab_percolation",
      "F2: routing percolation on the faulty d-cube (d = 10, p = 1/2)\n"
      "arc fault rate sweeps across the routing knee; giant = largest\n"
      "surviving-component fraction (structural percolation, printed\n"
      "below): drop collapses with the giant still whole, rerouting\n"
      "rides path diversity to the structural transition",
      {"delivery_ratio", "mean_stretch", "delay_p99"});

  const double fault_rates[] = {0.02, 0.3, 0.45, 0.55, 0.65, 0.7};
  const char* policies[] = {"drop", "skip_dim", "adaptive"};
  const double rho = 0.3;

  for (const char* policy : policies) {
    for (const double fault_rate : fault_rates) {
      routesim::Scenario scenario;
      scenario.scheme = "hypercube_greedy";
      scenario.d = kDim;
      scenario.p = 0.5;
      scenario.lambda = rho / scenario.p;
      scenario.fault_rate = fault_rate;
      scenario.fault_policy = policy;
      scenario.measure = 200.0;
      scenario.plan = {3, kBaseSeed, 0};

      benchdrive::Case spec;
      spec.label = "f=" + benchtab::fmt(fault_rate, 2) + " " + policy;
      spec.scenario = scenario;
      // Little's law compares sojourn of delivered packets against *all*
      // arrivals; with fault drops it never applies here.
      spec.check_little = false;
      suite.add(spec);
    }
  }

  // Structural percolation next to the routing table: the giant component
  // barely notices fault rates that already killed the drop baseline.
  std::printf("\nstructural percolation (rep-0 fault set, bidirectional links):\n");
  std::printf("  %-6s %s\n", "f", "giant_frac");
  std::vector<double> giants;
  for (const double fault_rate : fault_rates) {
    giants.push_back(giant_component_fraction(fault_rate));
    std::printf("  %-6.2f %.4f\n", fault_rate, giants.back());
  }

  auto& checker = suite.checker();
  // The structural knee: essentially whole at the left edge of the sweep.
  checker.require(giants.front() > 0.99,
                  "giant component ~1 at the lowest fault rate");

  const auto ratio_of = [&](const char* policy,
                            double fault_rate) -> const routesim::ConfidenceInterval* {
    for (const auto& outcome : suite.outcomes()) {
      if (outcome.spec.scenario.fault_policy == policy &&
          outcome.spec.scenario.fault_rate == fault_rate) {
        return outcome.result.extra("delivery_ratio");
      }
    }
    return nullptr;
  };

  // Sanity on every row (ratio in (0, 1], stretch >= 1).
  for (const auto& outcome : suite.outcomes()) {
    const auto* ratio = outcome.result.extra("delivery_ratio");
    const auto* stretch = outcome.result.extra("mean_stretch");
    checker.require(ratio != nullptr && stretch != nullptr,
                    outcome.spec.label + ": resilience extras present");
    if (ratio == nullptr || stretch == nullptr) continue;
    checker.require(ratio->mean > 0.0 && ratio->mean <= 1.0 + 1e-12,
                    outcome.spec.label + ": delivery ratio in (0, 1]");
    checker.require(stretch->mean >= 1.0 - 1e-12,
                    outcome.spec.label + ": stretch >= 1");
  }

  // The routing knee, below: rerouting keeps delivery >= 0.95 at the low
  // end of the sweep...
  for (const char* policy : {"skip_dim", "adaptive"}) {
    const auto* low = ratio_of(policy, fault_rates[0]);
    checker.require(low != nullptr && low->mean >= 0.95,
                    std::string(policy) + ": delivery >= 0.95 below the knee");
  }
  // The baseline's knee sits far left of the structural one: drop is
  // already under water at a rate where the giant component is whole.
  {
    const auto* drop = ratio_of("drop", fault_rates[1]);
    checker.require(drop != nullptr && drop->mean <= 0.5 && giants[1] > 0.99,
                    "drop: delivery <= 0.5 while the giant component is whole");
  }
  // ... and above: every policy is under water at the high end.
  for (const char* policy : policies) {
    const auto* high = ratio_of(policy, fault_rates[5]);
    checker.require(high != nullptr && high->mean <= 0.5,
                    std::string(policy) + ": delivery <= 0.5 above the knee");
  }
  // Near criticality the one-hop lookahead must beat blind skipping at
  // two or more sweep points (strictly — this is the adaptive policy's
  // reason to exist).
  int adaptive_wins = 0;
  for (const double fault_rate : fault_rates) {
    const auto* skip = ratio_of("skip_dim", fault_rate);
    const auto* adaptive = ratio_of("adaptive", fault_rate);
    if (skip == nullptr || adaptive == nullptr) continue;
    if (adaptive->mean > skip->mean) ++adaptive_wins;
  }
  checker.require(adaptive_wins >= 2,
                  "adaptive strictly beats skip_dim at >= 2 sweep points "
                  "(got " + std::to_string(adaptive_wins) + ")");

  std::printf(
      "\nShape check: the drop baseline percolates out (delivery <= 0.5)\n"
      "while the giant component is still whole; rerouting rides the\n"
      "cube's path diversity to the structural transition, where\n"
      "adaptive's lookahead strictly beats blind dimension-skipping.\n");
  return suite.finish(argc, argv);
}
