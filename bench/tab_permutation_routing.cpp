// Experiment X20 — adversarial permutations: the worst-case counterpart of
// the paper's average-case efficiency results.
//
// Part 1 (static): per-arc load of the greedy path system for each
// permutation family.  The checked headline: greedy butterfly max arc
// congestion under bit_reversal equals the closed form 2^(ceil(d/2)-1)
// exactly and therefore *doubles* every time N quadruples — Theta(sqrt(N))
// — while a random permutation stays at O(d).
//
// Part 2 (dynamic): the same collapse in simulation, and the §5 remedy.
// At one rate lambda, greedy under bit_reversal is unstable (rho =
// lambda * 2^(ceil(d/2)-1) > 1: delay and queues blow up, throughput falls
// below the offered load), while valiant_mixing under the *same*
// bit-reversal workload stays within a small constant factor of the
// random-destination baseline — the two-sided story: greedy is efficient
// on average, mixing is the insurance against structured worst cases.

#include <cstdint>
#include <string>
#include <vector>

#include "common/driver.hpp"
#include "workload/permutation.hpp"

namespace {

routesim::Scenario perm_scenario(const std::string& scheme,
                                 const std::string& family, int d,
                                 double lambda) {
  routesim::Scenario s;
  s.scheme = scheme;
  s.d = d;
  s.lambda = lambda;
  s.workload = "permutation";
  s.permutation = family;
  s.plan = {2, 808, 0};
  s.measure = 2000.0;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using routesim::Permutation;
  benchdrive::Suite suite(
      "tab_permutation_routing",
      "X20: adversarial permutations — greedy collapse vs Valiant recovery\n"
      "(static greedy-path congestion, then d = 8, lambda = 0.2 dynamics)",
      {"delivery_ratio", "delay_p99", "max_queue"});

  // --- Part 1: static congestion of the greedy path system ---------------
  benchtab::Table congestion({"d", "N", "permutation", "bfly max", "bfly mean",
                              "closed form", "hcube max"});
  std::vector<std::uint64_t> bitrev_max;
  for (const int d : {4, 6, 8, 10}) {
    for (const auto& family : Permutation::names()) {
      const Permutation perm = Permutation::by_name(family, d, 0.1, 808);
      const auto bfly = routesim::butterfly_greedy_congestion(d, perm.table());
      const auto cube = routesim::hypercube_greedy_congestion(d, perm.table());
      const bool is_bitrev = family == "bit_reversal";
      if (is_bitrev) bitrev_max.push_back(bfly.max_load);
      congestion.add_row(
          {std::to_string(d), std::to_string(1u << d), family,
           std::to_string(bfly.max_load), benchtab::fmt(bfly.mean_load, 2),
           is_bitrev
               ? std::to_string(routesim::butterfly_bit_reversal_max_congestion(d))
               : "-",
           std::to_string(cube.max_load)});
      if (is_bitrev) {
        suite.checker().require(
            bfly.max_load == routesim::butterfly_bit_reversal_max_congestion(d),
            "d=" + std::to_string(d) +
                ": butterfly bit-reversal congestion matches the closed form "
                "2^(ceil(d/2)-1)");
      }
    }
  }
  congestion.print();
  suite.report().add_table("static_congestion", congestion);

  // Theta(sqrt(N)): quadrupling N (d -> d+2) doubles the max congestion.
  for (std::size_t i = 0; i + 1 < bitrev_max.size(); ++i) {
    suite.checker().require(bitrev_max[i + 1] == 2 * bitrev_max[i],
                            "bit-reversal congestion doubles from d=" +
                                std::to_string(4 + 2 * i) + " to d=" +
                                std::to_string(6 + 2 * i) +
                                " (Theta(sqrt(N)) growth)");
  }
  {
    // The in-family control: a random permutation's congestion stays far
    // below sqrt(N) (O(d) with high probability).
    const auto random10 = routesim::butterfly_greedy_congestion(
        10, Permutation::random(10, 808).table());
    suite.checker().require(
        2 * random10.max_load <= routesim::butterfly_bit_reversal_max_congestion(10),
        "d=10: random-permutation congestion is at most half the "
        "bit-reversal congestion");
  }
  std::cout << '\n';

  // --- Part 2: dynamic collapse and recovery (d = 8, lambda = 0.2) -------
  const int d = 8;
  const double lambda = 0.2;  // uniform rho = 0.1; bit-reversal rho = 1.6
  const double offered = lambda * 256.0;

  // Stable baselines.
  routesim::Scenario uniform_greedy;
  uniform_greedy.scheme = "hypercube_greedy";
  uniform_greedy.d = d;
  uniform_greedy.lambda = lambda;
  uniform_greedy.workload = "uniform";
  uniform_greedy.plan = {2, 808, 0};
  uniform_greedy.measure = 2000.0;
  const routesim::RunResult greedy_uniform = suite.add({"hcube greedy uniform", uniform_greedy});

  routesim::Scenario uniform_valiant = uniform_greedy;
  uniform_valiant.scheme = "valiant_mixing";
  const routesim::RunResult valiant_uniform =
      suite.add({"valiant uniform", uniform_valiant, false, true});

  auto random_perm = perm_scenario("butterfly_greedy", "random_permutation", d,
                                   lambda);  // rho = 0.8: loaded but stable
  const routesim::RunResult bfly_random = suite.add({"bfly random_permutation", random_perm});

  // The collapse: unstable, so the window is explicit and the standard
  // checks are off.
  auto bfly_bitrev = perm_scenario("butterfly_greedy", "bit_reversal", d, lambda);
  bfly_bitrev.window = {100.0, 700.0};
  const routesim::RunResult bfly_rev = suite.add({"bfly bit_reversal", bfly_bitrev, false, false});

  auto hcube_bitrev = perm_scenario("hypercube_greedy", "bit_reversal", d, lambda);
  hcube_bitrev.window = {100.0, 700.0};
  const routesim::RunResult hcube_rev =
      suite.add({"hcube bit_reversal", hcube_bitrev, false, false});

  // The recovery: same adversarial workload through two-phase mixing.
  const routesim::RunResult valiant_rev = suite.add(
      {"valiant bit_reversal",
       perm_scenario("valiant_mixing", "bit_reversal", d, lambda), false, true});

  // Collapse checks: greedy under bit reversal is not just slower — it has
  // stopped keeping up (throughput below the offered load, queues growing).
  suite.checker().require(
      bfly_rev.delay.mean > 5.0 * bfly_random.delay.mean,
      "butterfly: bit-reversal delay exceeds 5x the random-permutation delay");
  suite.checker().require(
      bfly_rev.throughput.mean < 0.8 * offered,
      "butterfly: bit-reversal throughput falls below 80% of the offered load");
  suite.checker().require(
      bfly_rev.extra("max_queue")->mean >
          5.0 * bfly_random.extra("max_queue")->mean,
      "butterfly: bit-reversal peak queue occupancy exceeds 5x the "
      "random-permutation peak");
  suite.checker().require(hcube_rev.mean_final_backlog > 1000.0,
                          "hypercube: bit-reversal backlog diverges");

  // Recovery checks: Valiant mixing under the adversarial permutation stays
  // within a constant factor of the random-destination baselines.
  suite.checker().require(
      valiant_rev.delay.mean < 3.0 * greedy_uniform.delay.mean,
      "valiant mixing under bit reversal stays within 3x the greedy "
      "random-destination baseline");
  suite.checker().require(
      valiant_rev.delay.mean < 1.5 * valiant_uniform.delay.mean,
      "valiant mixing under bit reversal stays within 1.5x valiant under "
      "random destinations");
  suite.checker().require(
      valiant_rev.throughput.mean > 0.95 * offered,
      "valiant mixing under bit reversal sustains the offered load");

  std::cout << "\nShape check: greedy routing is efficient for *random*\n"
               "destinations (the paper's regime) but collapses to\n"
               "Theta(sqrt(N)) congestion under structured permutations;\n"
               "Valiant's randomized first phase restores near-random\n"
               "behaviour at the price of ~2x hops and half the capacity.\n";
  return suite.finish(argc, argv);
}
