// Experiment X12 — queue-size results (§3.3 end, §4.3 end):
//   - hypercube: mean packets per node <= d*rho/(1-rho); the total network
//     population exceeds d*2^d*rho/(1-rho)*(1+eps) only with the tiny
//     probability bounded by the Chernoff estimate;
//   - butterfly: overall packets per node ~ eta, and the packets held by
//     levels 1..j stay near j*2^d*eta (the paper's per-level conjecture).

#include <algorithm>
#include <iostream>

#include "common/table.hpp"
#include "core/bounds.hpp"
#include "queueing/product_form.hpp"
#include "routing/greedy_butterfly.hpp"
#include "routing/greedy_hypercube.hpp"

using namespace routesim;

int main() {
  std::cout << "X12: queue occupancy per node / per level\n\n";
  benchtab::Checker checker;

  {
    std::cout << "hypercube (d = 6, p = 1/2):\n";
    benchtab::Table table({"rho", "mean/node sim", "bound d*rho/(1-rho)",
                           "peak/node", "P[N > bound*(1+0.5)] (Chernoff)"});
    for (const double rho : {0.5, 0.8}) {
      const int d = 6;
      GreedyHypercubeConfig config;
      config.d = d;
      config.lambda = 2.0 * rho;
      config.destinations = DestinationDistribution::uniform(d);
      config.seed = 303;
      config.track_node_occupancy = true;
      GreedyHypercubeSim sim(config);
      sim.run(1000.0, 31000.0);

      double mean_per_node = 0.0;
      for (const double occupancy : sim.node_mean_occupancy()) {
        mean_per_node += occupancy;
      }
      mean_per_node /= 64.0;
      const double bound = bounds::mean_packets_per_node_bound({d, 2.0 * rho, 0.5});
      const double chernoff =
          geometric_sum_chernoff_tail(d * 64.0, rho, 0.5);

      table.add_row({benchtab::fmt(rho, 1), benchtab::fmt(mean_per_node, 3),
                     benchtab::fmt(bound, 3),
                     benchtab::fmt(sim.max_node_occupancy(), 0),
                     benchtab::fmt(chernoff, 9)});
      checker.require(mean_per_node <= bound * 1.02,
                      "rho=" + benchtab::fmt(rho, 1) +
                          ": mean per-node occupancy below d*rho/(1-rho)");
      // Total population w.h.p. below the (1+eps) product-form ceiling.
      checker.require(sim.time_avg_population() <=
                          hypercube_ps_mean_population(d, rho) * 1.05,
                      "rho=" + benchtab::fmt(rho, 1) +
                          ": total population below product-form ceiling");
    }
    table.print();
    std::cout << '\n';
  }

  {
    std::cout << "butterfly (d = 6, lambda = 1.2, p = 1/2):\n";
    const int d = 6;
    const double lambda = 1.2, p = 0.5;
    GreedyButterflyConfig config;
    config.d = d;
    config.lambda = lambda;
    config.destinations = DestinationDistribution::bit_flip(d, p);
    config.seed = 404;
    config.track_level_occupancy = true;
    GreedyButterflySim sim(config);
    sim.run(1000.0, 41000.0);

    const double eta = bounds::bfly_mean_packets_per_node({d, lambda, p});
    benchtab::Table table({"level j", "mean packets level j", "cum levels 1..j",
                           "conjecture j*2^d*eta"});
    double cumulative = 0.0;
    bool conjecture_holds = true;
    for (int level = 1; level <= d; ++level) {
      const double at_level =
          sim.level_mean_occupancy()[static_cast<std::size_t>(level - 1)];
      cumulative += at_level;
      const double conjectured = level * 64.0 * eta;
      conjecture_holds = conjecture_holds && cumulative <= conjectured * 1.1;
      table.add_row({std::to_string(level), benchtab::fmt(at_level, 1),
                     benchtab::fmt(cumulative, 1), benchtab::fmt(conjectured, 1)});
    }
    table.print();
    checker.require(conjecture_holds,
                    "butterfly: levels 1..j hold <= j*2^d*eta*(1+eps) packets "
                    "(§4.3 conjecture evidence)");
    // eta is the product-form (PS) ceiling; FIFO sits below it (Prop. 11)
    // but above the Little's-law floor lambda*2^d*d (every packet spends at
    // least d time units in the network).
    const double floor = lambda * 64.0 * d;
    checker.require(sim.time_avg_population() >= floor * 0.98 &&
                        sim.time_avg_population() <= d * 64.0 * eta * 1.02,
                    "butterfly: total population between the Little floor "
                    "lambda*2^d*d and the eta ceiling d*2^d*eta");
  }

  std::cout << "\nShape check: occupancy per node is O(d) on the cube and O(1)\n"
               "per node on the butterfly for fixed rho, as the paper states.\n";
  return checker.summarize();
}
