// Experiment X10 — slotted time (§3.4): batch Poisson arrivals at slot
// boundaries k*tau.  The paper bounds the slotted delay by the continuous
// bound plus tau: T~ <= dp/(1-rho) + tau.

#include <iostream>

#include "common/table.hpp"
#include "core/simulation.hpp"

using namespace routesim;

int main() {
  std::cout << "X10: slotted-time greedy routing (d = 6, p = 1/2, rho = 0.6)\n\n";

  const int d = 6;
  const double p = 0.5;
  const double rho = 0.6;
  const bounds::HypercubeParams params{d, rho / p, p};
  const auto window = Window::for_load(d, rho, 6000.0);

  benchtab::Checker checker;
  benchtab::Table table(
      {"tau", "T sim", "+/-", "UB dp/(1-rho)+tau", "within bound"});

  // Continuous-time reference row (tau = 0).
  const auto continuous = estimate_hypercube_delay(params, window, {6, 3000, 0});
  table.add_row({"0 (continuous)", benchtab::fmt(continuous.delay.mean),
                 benchtab::fmt(continuous.delay.half_width),
                 benchtab::fmt(bounds::greedy_delay_upper_bound(params)),
                 continuous.delay.mean <=
                         bounds::greedy_delay_upper_bound(params) + 0.1
                     ? "yes"
                     : "NO"});

  for (const double tau : {0.125, 0.25, 0.5, 1.0}) {
    const auto estimate = estimate_hypercube_delay(params, window, {6, 3000, 0}, tau);
    const double bound = bounds::slotted_delay_upper_bound(params, tau);
    const bool within = estimate.delay.mean <= bound + estimate.delay.half_width;
    table.add_row({benchtab::fmt(tau, 3), benchtab::fmt(estimate.delay.mean),
                   benchtab::fmt(estimate.delay.half_width), benchtab::fmt(bound),
                   within ? "yes" : "NO"});
    checker.require(within, "tau=" + benchtab::fmt(tau, 3) +
                                ": T~ <= dp/(1-rho) + tau (§3.4)");
    checker.require(estimate.delay.mean >=
                        bounds::greedy_delay_lower_bound(params) * 0.95,
                    "tau=" + benchtab::fmt(tau, 3) +
                        ": slotted delay not below the continuous LB");
  }
  table.print();

  std::cout << "\nShape check: slotting perturbs the delay by at most about "
               "tau; stability is unaffected (§3.4).\n";
  return checker.summarize();
}
