// Experiment X10 — slotted time (§3.4): batch Poisson arrivals at slot
// boundaries k*tau.  The paper bounds the slotted delay by the continuous
// bound plus tau: T~ <= dp/(1-rho) + tau.  One scenario per tau (tau = 0
// is the continuous-time reference row); the registry picks the slotted
// upper bound automatically.

#include "common/driver.hpp"
#include "core/bounds.hpp"

int main(int argc, char** argv) {
  benchdrive::Suite suite(
      "tab_slotted_time",
      "X10: slotted-time greedy routing (d = 6, p = 1/2, rho = 0.6)");

  routesim::Scenario base;
  base.scheme = "hypercube_greedy";
  base.d = 6;
  base.p = 0.5;
  base.lambda = 0.6 / base.p;
  base.measure = 6000.0;
  base.plan = {6, 3000, 0};
  const double continuous_lb =
      routesim::bounds::greedy_delay_lower_bound(base.hypercube_params());

  for (const double tau : {0.0, 0.125, 0.25, 0.5, 1.0}) {
    routesim::Scenario scenario = base;
    scenario.tau = tau;
    const auto& result = suite.add(
        {tau == 0.0 ? "tau=0 (continuous)" : "tau=" + benchtab::fmt(tau, 3),
         scenario});
    if (tau > 0.0) {
      suite.checker().require(result.delay.mean >= continuous_lb * 0.95,
                              "tau=" + benchtab::fmt(tau, 3) +
                                  ": slotted delay not below the continuous LB");
    }
  }

  std::cout << "\nShape check: slotting perturbs the delay by at most about "
               "tau; stability is unaffected (§3.4).\n";
  return suite.finish(argc, argv);
}
