// Experiment X5 — the stability boundary: the necessary condition of §2.1
// (rho <= 1 for ANY scheme) is attained by the greedy scheme (Prop. 6).
// Below rho = 1 the backlog is flat in the horizon; above it grows
// linearly at rate ~ (rho - 1) * 2^d packets per unit time (the bottleneck
// dimension overflows).

#include <iostream>

#include "common/table.hpp"
#include "routing/greedy_hypercube.hpp"

using namespace routesim;

namespace {

double backlog_growth_rate(int d, double rho, std::uint64_t seed) {
  // Growth rate estimated from backlog at two horizons (slope of N(t)).
  GreedyHypercubeConfig config;
  config.d = d;
  config.lambda = 2.0 * rho;  // p = 1/2
  config.destinations = DestinationDistribution::uniform(d);
  config.seed = seed;
  const double t1 = 10000.0, t2 = 20000.0;
  GreedyHypercubeSim first(config), second(config);
  first.run(0.0, t1);
  second.run(0.0, t2);
  return (second.final_population() - first.final_population()) / (t2 - t1);
}

}  // namespace

int main() {
  std::cout << "X5: stability boundary of greedy routing (d = 5, p = 1/2)\n";
  std::cout << "growth rate = d/dt of network backlog, averaged over seeds\n\n";

  const int d = 5;
  benchtab::Table table({"rho", "backlog growth (pkt/unit)", "per-node",
                         "verdict", "paper"});
  benchtab::Checker checker;

  for (const double rho : {0.70, 0.90, 0.98, 1.02, 1.10, 1.30}) {
    double growth = 0.0;
    constexpr int kSeeds = 3;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      growth += backlog_growth_rate(d, rho, seed);
    }
    growth /= kSeeds;
    const double per_node = growth / 32.0;
    const bool stable_observed = per_node < 0.005;
    const bool stable_expected = rho < 1.0;
    table.add_row({benchtab::fmt(rho, 2), benchtab::fmt(growth, 3),
                   benchtab::fmt(per_node, 4),
                   stable_observed ? "stable" : "UNSTABLE",
                   stable_expected ? "stable (P6)" : "unstable (§2.1)"});
    checker.require(stable_observed == stable_expected,
                    "rho=" + benchtab::fmt(rho, 2) +
                        ": observed stability matches theory");
  }
  table.print();

  std::cout << "\nShape check: the boundary sits at rho = 1 exactly — the "
               "broadest region any scheme can achieve (§2.1 + Prop. 6).\n";
  return checker.summarize();
}
