// Experiment X5 — the stability boundary: the necessary condition of §2.1
// (rho <= 1 for ANY scheme) is attained by the greedy scheme (Prop. 6).
// Below rho = 1 the backlog is flat in the horizon; above it grows
// linearly (the bottleneck dimension overflows).  Each load is probed by
// the same scenario at two explicit horizons; the growth rate is the slope
// of the replication-mean backlog.

#include "common/driver.hpp"

namespace {

routesim::Scenario at_horizon(double rho, double horizon) {
  routesim::Scenario scenario;
  scenario.scheme = "hypercube_greedy";
  scenario.d = 5;
  scenario.workload = "uniform";
  scenario.lambda = 2.0 * rho;  // p = 1/2
  scenario.window = {0.0, horizon};
  scenario.plan = {3, 1, 0};
  return scenario;
}

}  // namespace

int main(int argc, char** argv) {
  benchdrive::Suite suite(
      "tab_stability_boundary",
      "X5: stability boundary of greedy routing (d = 5, p = 1/2)\n"
      "growth rate = d/dt of network backlog, averaged over replications");
  const double t1 = 10000.0, t2 = 20000.0;

  for (const double rho : {0.70, 0.90, 0.98, 1.02, 1.10, 1.30}) {
    // Same seeds at both horizons: the pair is sample-path coupled.
    const auto& first = suite.add(
        {"rho=" + benchtab::fmt(rho, 2) + " t=" + benchtab::fmt(t1, 0),
         at_horizon(rho, t1), false, false});
    const auto& second = suite.add(
        {"rho=" + benchtab::fmt(rho, 2) + " t=" + benchtab::fmt(t2, 0),
         at_horizon(rho, t2), false, false});
    const double growth =
        (second.mean_final_backlog - first.mean_final_backlog) / (t2 - t1);
    const bool stable_observed = growth / 32.0 < 0.005;
    const bool stable_expected = rho < 1.0;
    suite.checker().require(stable_observed == stable_expected,
                            "rho=" + benchtab::fmt(rho, 2) +
                                ": observed stability matches theory");
  }

  std::cout << "\nShape check: the boundary sits at rho = 1 exactly — the "
               "broadest region any scheme can achieve (§2.1 + Prop. 6).\n";
  return suite.finish(argc, argv);
}
