// Experiment X16 — the §5 concluding remark, implemented: two-phase
// Valiant "mixing" (greedy to a random intermediate node, then greedy to
// the destination) versus direct greedy routing, on the SAME packet trace:
// the "trace" workload regenerates an identical trace for equal-seed
// scenarios, so the two schemes are sample-path coupled declaratively.

#include "common/driver.hpp"

namespace {

routesim::Scenario traced(const std::string& scheme, double lambda,
                          double warmup, std::uint64_t seed) {
  routesim::Scenario scenario;
  scenario.scheme = scheme;
  scenario.d = 6;
  scenario.workload = "trace";  // uniform destinations: p = 1/2
  scenario.lambda = lambda;
  scenario.window = {warmup, 12000.0};
  scenario.plan = {2, seed, 0};
  return scenario;
}

}  // namespace

int main(int argc, char** argv) {
  benchdrive::Suite suite(
      "tab_valiant_mixing",
      "X16: direct greedy vs two-phase Valiant mixing (d = 6, p = 1/2)\n"
      "same trace replayed through both schemes");
  const int d = 6;

  for (const double lambda : {0.2, 0.6, 1.0, 1.4}) {
    const std::string tag = "lambda=" + benchtab::fmt(lambda, 1);
    const auto& greedy = suite.add(
        {tag + " greedy", traced("hypercube_greedy", lambda, 1000.0, 515),
         false, false});
    const auto& mixing = suite.add(
        {tag + " mixing", traced("valiant_mixing", lambda, 1000.0, 515),
         false, false});

    suite.checker().require(mixing.delay.mean > greedy.delay.mean,
                            tag + ": mixing slower than direct greedy "
                                  "(uniform traffic)");
    if (lambda <= 0.6) {
      suite.checker().require(mixing.mean_hops > greedy.mean_hops + d * 0.3,
                              tag + ": mixing pays ~d/2 extra hops");
    }
  }

  // Capacity: at lambda = 1.4 greedy is comfortably stable (rho = 0.7) but
  // mixing's effective per-arc load exceeds 1 — its backlog diverges.
  {
    const auto& mixing = suite.add(
        {"capacity mixing lambda=1.4", traced("valiant_mixing", 1.4, 0.0, 616),
         false, false});
    suite.checker().require(mixing.mean_final_backlog > 2000.0,
                            "lambda=1.4: mixing unstable while greedy "
                            "(rho=0.7) is stable — reduced maximum "
                            "sustainable traffic (§5)");
  }

  std::cout << "\nShape check: for translation-invariant traffic, mixing only\n"
               "adds ~d/2 hops and halves capacity — matching the paper's\n"
               "caveat that mixing trades maximum throughput for robustness\n"
               "against adversarial (non-translation-invariant) patterns.\n";
  return suite.finish(argc, argv);
}
