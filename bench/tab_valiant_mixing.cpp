// Experiment X16 — the §5 concluding remark, implemented: two-phase
// Valiant "mixing" (greedy to a random intermediate node, then greedy to
// the destination) versus direct greedy routing, on the SAME packet trace.
// For translation-invariant traffic the paper predicts mixing only costs:
// longer routes and a smaller maximum sustainable load.

#include <iostream>

#include "common/table.hpp"
#include "routing/greedy_hypercube.hpp"
#include "routing/valiant_mixing.hpp"
#include "workload/trace.hpp"

using namespace routesim;

int main() {
  std::cout << "X16: direct greedy vs two-phase Valiant mixing (d = 6, p = 1/2)\n";
  std::cout << "same trace replayed through both schemes\n\n";

  const int d = 6;
  const auto dist = DestinationDistribution::uniform(d);
  benchtab::Checker checker;
  benchtab::Table table({"lambda", "rho(greedy)", "T greedy", "T mixing",
                         "hops greedy", "hops mixing", "backlog greedy",
                         "backlog mixing"});

  for (const double lambda : {0.2, 0.6, 1.0, 1.4}) {
    const auto trace = generate_hypercube_trace(d, lambda, dist, 12000.0, 515);

    GreedyHypercubeConfig greedy_cfg;
    greedy_cfg.d = d;
    greedy_cfg.destinations = dist;
    greedy_cfg.trace = &trace;
    GreedyHypercubeSim greedy(greedy_cfg);
    greedy.run(1000.0, 12000.0);

    ValiantMixingConfig mixing_cfg;
    mixing_cfg.d = d;
    mixing_cfg.destinations = dist;
    mixing_cfg.trace = &trace;
    mixing_cfg.seed = 515;
    ValiantMixingSim mixing(mixing_cfg);
    mixing.run(1000.0, 12000.0);

    table.add_row({benchtab::fmt(lambda, 1), benchtab::fmt(lambda / 2, 2),
                   benchtab::fmt(greedy.delay().mean(), 2),
                   benchtab::fmt(mixing.delay().mean(), 2),
                   benchtab::fmt(greedy.hops().mean(), 2),
                   benchtab::fmt(mixing.hops().mean(), 2),
                   benchtab::fmt(greedy.final_population(), 0),
                   benchtab::fmt(mixing.final_population(), 0)});

    checker.require(mixing.delay().mean() > greedy.delay().mean(),
                    "lambda=" + benchtab::fmt(lambda, 1) +
                        ": mixing slower than direct greedy (uniform traffic)");
    if (lambda <= 0.6) {
      checker.require(mixing.hops().mean() > greedy.hops().mean() + d * 0.3,
                      "lambda=" + benchtab::fmt(lambda, 1) +
                          ": mixing pays ~d/2 extra hops");
    }
  }
  table.print();

  // Capacity: mixing saturates near rho ~ 1/2 * (d/(d/2+dp)) of greedy's —
  // at lambda = 1.4 (greedy rho = 0.7, fine) mixing has effective per-arc
  // load ~ lambda*(d/2 + d/2)/d = lambda > 1... check backlog divergence.
  {
    const auto trace = generate_hypercube_trace(d, 1.4, dist, 12000.0, 616);
    ValiantMixingConfig mixing_cfg;
    mixing_cfg.d = d;
    mixing_cfg.destinations = dist;
    mixing_cfg.trace = &trace;
    mixing_cfg.seed = 616;
    ValiantMixingSim mixing(mixing_cfg);
    mixing.run(0.0, 12000.0);
    checker.require(mixing.final_population() > 2000.0,
                    "lambda=1.4: mixing unstable while greedy (rho=0.7) is stable "
                    "— reduced maximum sustainable traffic (§5)");
  }

  std::cout << "\nShape check: for translation-invariant traffic, mixing only\n"
               "adds ~d/2 hops and halves capacity — matching the paper's\n"
               "caveat that mixing trades maximum throughput for robustness\n"
               "against adversarial (non-translation-invariant) patterns.\n";
  return checker.summarize();
}
