// Guided tour of the adversarial permutation workload: static congestion
// analysis of the greedy path system, then the dynamic collapse-vs-recovery
// comparison on the hypercube.
//
//   build/examples/example_adversarial_permutations
//
// See bench/tab_permutation_routing.cpp for the acceptance-checked version
// and docs/WORKLOADS.md for the closed forms.

#include <cstdio>

#include "core/scenario.hpp"
#include "workload/permutation.hpp"

int main() {
  using namespace routesim;

  // 1. Static analysis: how unevenly does the greedy path system load the
  // butterfly's arcs?  bit_reversal concentrates Theta(sqrt(N)) paths on
  // one arc; a random permutation stays at O(d).
  std::printf("static greedy-path congestion on the butterfly:\n");
  std::printf("%4s %6s %14s %14s %14s\n", "d", "N", "bit_reversal",
              "closed form", "random perm");
  for (const int d : {4, 6, 8, 10}) {
    const auto bitrev =
        butterfly_greedy_congestion(d, Permutation::bit_reversal(d).table());
    const auto random =
        butterfly_greedy_congestion(d, Permutation::random(d, 1).table());
    std::printf("%4d %6u %14llu %14llu %14llu\n", d, 1u << d,
                static_cast<unsigned long long>(bitrev.max_load),
                static_cast<unsigned long long>(
                    butterfly_bit_reversal_max_congestion(d)),
                static_cast<unsigned long long>(random.max_load));
  }

  // 2. Dynamics: the same lambda is comfortable for random destinations,
  // fatal for greedy-under-bit-reversal, and comfortable again for
  // valiant_mixing on the identical adversarial workload.
  const int d = 8;
  const double lambda = 0.2;

  Scenario base;
  base.d = d;
  base.lambda = lambda;
  base.plan = {2, 99, 0};
  base.measure = 1500.0;

  Scenario uniform = base;  // the paper's regime
  uniform.scheme = "hypercube_greedy";
  uniform.workload = "uniform";

  Scenario greedy_rev = base;  // the adversary
  greedy_rev.scheme = "hypercube_greedy";
  greedy_rev.workload = "permutation";
  greedy_rev.permutation = "bit_reversal";
  greedy_rev.window = {100.0, 600.0};  // unstable: explicit window

  Scenario valiant_rev = greedy_rev;  // the remedy
  valiant_rev.scheme = "valiant_mixing";
  valiant_rev.window = {};  // stable again: automatic window

  std::printf("\nd = %d, lambda = %.2f (offered load %.1f pkts/unit):\n", d,
              lambda, lambda * 256.0);
  for (const auto& [label, scenario] :
       {std::pair<const char*, const Scenario&>{"greedy, uniform", uniform},
        {"greedy, bit_reversal", greedy_rev},
        {"valiant, bit_reversal", valiant_rev}}) {
    const RunResult r = run(scenario);
    std::printf("  %-22s rho %-5.2f delay %8.2f   throughput %6.1f\n", label,
                r.rho, r.delay.mean, r.throughput.mean);
  }
  std::printf(
      "\ngreedy collapses on the permutation it cannot average away;\n"
      "valiant mixing pays ~2x hops and stays within a constant factor\n"
      "of the random-destination baseline (the paper's §5 remark).\n");
  return 0;
}
