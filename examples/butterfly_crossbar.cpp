// Scenario: the butterfly as a crossbar switching fabric (§4.1) — 64 input
// ports at level 1, 64 output ports at level 7 of a 6-dimensional
// butterfly.  The traffic skew p controls how often a cell needs to change
// rows; the fabric's bottleneck is whichever arc kind carries
// lambda*max{p, 1-p}.  This example maps the (lambda, p) operating region
// and validates it against the paper's bounds.
//
//   build/examples/example_butterfly_crossbar

#include <iomanip>
#include <iostream>

#include "core/simulation.hpp"

int main() {
  using namespace routesim;

  const int d = 6;
  std::cout << "Butterfly crossbar fabric, d = " << d << " (" << (1 << d)
            << " ports per side, " << (d + 1) * (1 << d) << " switch nodes)\n\n";

  std::cout << "operating region: lambda * max{p, 1-p} < 1 (eq. 17)\n\n";
  std::cout << std::setw(6) << "p" << std::setw(10) << "lambda*" << std::setw(24)
            << "T at 0.9*lambda* (sim)" << std::setw(14) << "UB (P17)" << '\n';

  for (const double p : {0.5, 0.6, 0.75, 0.9}) {
    // Capacity: the largest sustainable injection rate.
    const double lambda_star = 1.0 / std::max(p, 1.0 - p);
    const double lambda = 0.9 * lambda_star;
    const bounds::ButterflyParams params{d, lambda, p};
    const double rho = bounds::bfly_load_factor(params);
    const auto window = Window::for_load(d, rho, 6000.0);
    const auto estimate = estimate_butterfly_delay(params, window, {6, 11});
    std::cout << std::setw(6) << p << std::setw(10) << std::setprecision(3)
              << lambda_star << std::setw(21) << std::fixed << std::setprecision(2)
              << estimate.delay.mean << "   " << std::setw(11)
              << estimate.upper_bound << '\n';
    std::cout.unsetf(std::ios_base::fixed);
  }

  std::cout << "\nDesign take-aways (straight from Props. 14-17):\n"
               "  - balanced traffic (p = 1/2) doubles the sustainable rate\n"
               "    compared to p = 1 traffic;\n"
               "  - at 90% of the respective capacity, latency stays within the\n"
               "    d p/(1-lambda p) + d(1-p)/(1-lambda(1-p)) bound;\n"
               "  - every cell takes >= d hops: the fabric adds pipeline depth,\n"
               "    not head-of-line blocking, until rho -> 1.\n";
  return 0;
}
