// Fault resilience: how greedy routing on the 6-cube degrades as links
// fail, and what a fault-aware reroute policy buys back.
//
//   build/examples/example_fault_resilience
//
// Sweeps a static link fault rate at fixed load and compares the drop
// baseline (a packet whose required arc is dead is lost) with skip_dim
// (greedy over the surviving dimensions with a TTL-bounded detour).  The
// same sweep is reachable from the command line as
//
//   build/bench/routesim_bench --scenario hypercube_greedy --set d=6
//       --set rho=0.5 --set fault_policy=skip_dim --sweep fault_rate=0:0.2:0.05
//
// Metrics: delivery ratio (fraction of decided packets delivered), mean
// stretch (hops / Hamming distance over delivered packets), p99 delay.

#include <cstdio>

#include "core/scenario.hpp"

int main() {
  using namespace routesim;

  std::printf("Greedy 6-cube at rho = 0.5 under static link faults\n\n");
  std::printf("%-10s %-10s %12s %12s %10s %10s\n", "fault_rate", "policy",
              "delivery", "stretch", "T", "p99");

  for (const char* policy : {"drop", "skip_dim", "deflect"}) {
    for (const double fault_rate : {0.0, 0.05, 0.1, 0.2}) {
      Scenario scenario;
      scenario.scheme = "hypercube_greedy";
      scenario.d = 6;
      scenario.p = 0.5;
      scenario.lambda = 1.0;  // rho = lambda * p = 0.5
      scenario.fault_rate = fault_rate;
      scenario.fault_policy = policy;
      scenario.measure = 2000.0;
      scenario.plan = ReplicationPlan{4, /*seed=*/7};

      const RunResult result = run(scenario);
      std::printf("%-10.2f %-10s %12.4f %12.4f %10.3f %10.1f\n", fault_rate,
                  policy, result.extra("delivery_ratio")->mean,
                  result.extra("mean_stretch")->mean, result.delay.mean,
                  result.extra("delay_p99")->mean);
    }
    std::printf("\n");
  }

  std::printf(
      "Reading: drop loses packets in proportion to the dead arcs on their\n"
      "greedy path; skip_dim recovers nearly all of them (the surviving\n"
      "cube stays connected at these rates) at the price of stretch > 1\n"
      "and a heavier delay tail; deflect buys the same recovery at more\n"
      "stretch and delay because it reroutes blindly.\n");
  return 0;
}
