// Scenario: collective communication.  Iterative parallel algorithms
// (the §5 outlook: "packets destined for a different subset of nodes")
// frequently send the same datum to a worker group.  This example sizes
// the benefit of dimension-ordered multicast trees over repeated unicasts
// for group sizes from 2 to half the machine, on a 7-cube.
//
//   build/examples/example_multicast_collectives

#include <iomanip>
#include <iostream>

#include "routing/multicast.hpp"

int main() {
  using namespace routesim;

  const int d = 7;  // 128 nodes
  std::cout << "Group-multicast on the " << d << "-cube (" << (1 << d)
            << " nodes), lambda = 0.01 packets/node\n\n";
  std::cout << std::setw(8) << "group" << std::setw(14) << "tree tx/pkt"
            << std::setw(16) << "unicast tx/pkt" << std::setw(10) << "saving"
            << std::setw(14) << "T last-member" << '\n';

  for (const int group : {2, 8, 32, 64}) {
    MulticastConfig tree_cfg;
    tree_cfg.d = d;
    tree_cfg.lambda = 0.01;
    tree_cfg.fanout = group;
    tree_cfg.seed = 404;
    GreedyMulticastSim tree(tree_cfg);
    tree.run(300.0, 10300.0);

    auto unicast_cfg = tree_cfg;
    unicast_cfg.unicast_baseline = true;
    GreedyMulticastSim unicast(unicast_cfg);
    unicast.run(300.0, 10300.0);

    const double tree_tx = tree.transmissions_per_packet().mean();
    const double unicast_tx = unicast.transmissions_per_packet().mean();
    std::cout << std::setw(8) << group << std::setw(14) << std::fixed
              << std::setprecision(1) << tree_tx << std::setw(16) << unicast_tx
              << std::setw(9) << std::setprecision(0)
              << 100.0 * (1.0 - tree_tx / unicast_tx) << "%" << std::setw(14)
              << std::setprecision(2) << tree.completion_delay().mean() << '\n';
    std::cout.unsetf(std::ios_base::fixed);
  }

  std::cout << "\nTake-away: the tree's traffic grows like the covered subcube\n"
               "(~2^d at full broadcast) instead of k*d/2, so large collectives\n"
               "cost a fraction of repeated unicasts while the completion time\n"
               "grows only logarithmically in the group size — the regime the\n"
               "paper's companion work [StT90] analyses for full broadcasts.\n";
  return 0;
}
