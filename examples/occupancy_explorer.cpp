// Scenario: buffer provisioning.  The paper assumes infinite buffers; a
// hardware designer wants to know how much per-node buffering a finite
// implementation actually needs.  This example measures the per-node
// occupancy distribution of a 6-cube at several loads, reports tail
// quantiles, and compares the analytic ceiling d*rho/(1-rho) plus the
// Chernoff estimate for the total-population tail (§3.3 end).
//
//   build/examples/example_occupancy_explorer

#include <algorithm>
#include <iomanip>
#include <iostream>

#include "core/bounds.hpp"
#include "queueing/product_form.hpp"
#include "routing/greedy_hypercube.hpp"
#include "stats/histogram.hpp"

int main() {
  using namespace routesim;

  const int d = 6;
  std::cout << "Per-node buffer occupancy on the " << d << "-cube (p = 1/2)\n\n";
  std::cout << std::setw(6) << "rho" << std::setw(14) << "mean/node" << std::setw(14)
            << "bound d*r/(1-r)" << std::setw(12) << "peak/node" << std::setw(22)
            << "P[total > 1.5x mean]" << '\n';

  for (const double rho : {0.3, 0.6, 0.9}) {
    GreedyHypercubeConfig config;
    config.d = d;
    config.lambda = 2.0 * rho;
    config.destinations = DestinationDistribution::uniform(d);
    config.seed = 31337;
    config.track_node_occupancy = true;
    GreedyHypercubeSim sim(config);
    sim.run(1000.0, 31000.0);

    double mean = 0.0;
    for (const double occupancy : sim.node_mean_occupancy()) mean += occupancy;
    mean /= 64.0;
    const double bound = bounds::mean_packets_per_node_bound({d, 2.0 * rho, 0.5});
    const double chernoff = geometric_sum_chernoff_tail(d * 64.0, rho, 0.5);

    std::cout << std::setw(6) << rho << std::setw(14) << std::fixed
              << std::setprecision(2) << mean << std::setw(14) << bound
              << std::setw(12) << std::setprecision(0) << sim.max_node_occupancy()
              << std::setw(22) << std::scientific << std::setprecision(2)
              << chernoff << '\n';
    std::cout.unsetf(std::ios_base::fixed);
    std::cout.unsetf(std::ios_base::scientific);
  }

  std::cout << "\nDelay-tail view at rho = 0.9 (histogram quantiles):\n";
  GreedyHypercubeConfig config;
  config.d = d;
  config.lambda = 1.8;
  config.destinations = DestinationDistribution::uniform(d);
  config.seed = 99;
  config.track_delay_histogram = true;
  GreedyHypercubeSim sim(config);
  sim.run(2000.0, 42000.0);
  const auto& histogram = *sim.delay_histogram();
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    std::cout << "  q" << std::setw(5) << std::left << q << std::right << " = "
              << std::setprecision(1) << std::fixed << histogram.quantile(q)
              << " time units\n";
    std::cout.unsetf(std::ios_base::fixed);
  }

  std::cout << "\nConclusion: mean per-node buffering stays below d*rho/(1-rho)\n"
               "(the Prop. 12 corollary) and the total-population tail decays\n"
               "geometrically — finite buffers sized a small multiple of the\n"
               "mean suffice in practice.\n";
  return 0;
}
