// Quickstart: simulate greedy routing on a 6-cube at 60% load and compare
// the measured delay with the paper's closed-form bracket.
//
//   build/examples/example_quickstart
//
// This is the smallest end-to-end use of the library: one declarative
// Scenario, one run(), one pair of bounds.  The same experiment is
// reachable from the command line as
//
//   build/bench/routesim_bench --scenario hypercube_greedy --set d=6
//       --set rho=0.6 --set measure=5000 --set reps=8 --set seed=42

#include <iostream>

#include "core/scenario.hpp"

int main() {
  using namespace routesim;

  // d-cube with per-node Poisson rate lambda and bit-flip destinations
  // with parameter p; the load factor is rho = lambda * p.  Unset fields
  // keep their defaults; the measurement window is derived from the load.
  Scenario scenario;
  scenario.scheme = "hypercube_greedy";
  scenario.d = 6;
  scenario.lambda = 1.2;
  scenario.p = 0.5;
  scenario.measure = 5000.0;
  scenario.plan = ReplicationPlan{8, /*seed=*/42};

  std::cout << "Greedy routing on the " << scenario.d << "-cube\n";
  std::cout << "  lambda = " << scenario.lambda << " packets/node/unit, p = "
            << scenario.p << "  =>  rho = " << scenario.rho() << "\n";
  std::cout << "  scenario: " << scenario.to_string() << "\n\n";

  const RunResult result = run(scenario);

  std::cout << "  Prop. 13 lower bound : " << result.lower_bound << "\n";
  std::cout << "  simulated delay T    : " << result.delay.mean << "  (+/- "
            << result.delay.half_width << " at 95%)\n";
  std::cout << "  Prop. 12 upper bound : " << result.upper_bound << "\n\n";
  std::cout << "  mean hops (d*p)      : " << result.mean_hops << "\n";
  std::cout << "  throughput           : " << result.throughput.mean
            << " packets/unit (offered: " << scenario.lambda * 64 << ")\n";
  std::cout << "  Little's law error   : " << result.max_little_error << "\n";

  const bool inside = result.within_bracket();
  std::cout << "\n  delay inside the paper's bracket: " << (inside ? "yes" : "NO")
            << "\n";
  return inside ? 0 : 1;
}
