// Quickstart: simulate greedy routing on a 6-cube at 60% load and compare
// the measured delay with the paper's closed-form bracket.
//
//   build/examples/example_quickstart
//
// This is the smallest end-to-end use of the library: one config, one
// replicated estimate, one pair of bounds.

#include <iostream>

#include "core/simulation.hpp"

int main() {
  using namespace routesim;

  // d-cube with per-node Poisson rate lambda and bit-flip destinations
  // with parameter p; the load factor is rho = lambda * p.
  const bounds::HypercubeParams params{/*d=*/6, /*lambda=*/1.2, /*p=*/0.5};
  const double rho = bounds::load_factor(params);

  std::cout << "Greedy routing on the " << params.d << "-cube\n";
  std::cout << "  lambda = " << params.lambda << " packets/node/unit, p = "
            << params.p << "  =>  rho = " << rho << "\n\n";

  // A measurement window sized for this load, 8 independent replications
  // run in parallel, deterministic for the given base seed.
  const auto window = Window::for_load(params.d, rho, /*length=*/5000.0);
  const auto estimate =
      estimate_hypercube_delay(params, window, ReplicationPlan{8, /*seed=*/42});

  std::cout << "  Prop. 13 lower bound : " << estimate.lower_bound << "\n";
  std::cout << "  simulated delay T    : " << estimate.delay.mean << "  (+/- "
            << estimate.delay.half_width << " at 95%)\n";
  std::cout << "  Prop. 12 upper bound : " << estimate.upper_bound << "\n\n";
  std::cout << "  mean hops (d*p)      : " << estimate.mean_hops << "\n";
  std::cout << "  throughput           : " << estimate.throughput.mean
            << " packets/unit (offered: " << params.lambda * 64 << ")\n";
  std::cout << "  Little's law error   : " << estimate.max_little_error << "\n";

  const bool inside = estimate.delay.mean >= estimate.lower_bound &&
                      estimate.delay.mean <= estimate.upper_bound;
  std::cout << "\n  delay inside the paper's bracket: " << (inside ? "yes" : "NO")
            << "\n";
  return inside ? 0 : 1;
}
