// Scenario: choosing a routing scheme for a 6-cube interconnect.  Replays
// the SAME Poisson workload through four schemes —
//   1. greedy dimension-order (the paper's scheme, §3),
//   2. two-phase Valiant mixing (§5 / [Val82]),
//   3. the §2.3 pipelined-rounds baseline,
//   4. deflection routing ([GrH89], slot-synchronous),
// and prints a head-to-head comparison of delay, hops and backlog.
//
//   build/examples/example_scheme_comparison

#include <iomanip>
#include <iostream>

#include "routing/deflection.hpp"
#include "routing/greedy_hypercube.hpp"
#include "routing/pipelined_baseline.hpp"
#include "routing/valiant_mixing.hpp"
#include "workload/trace.hpp"

int main() {
  using namespace routesim;

  const int d = 6;
  const double lambda = 0.8;  // rho = 0.4 for the greedy scheme
  const auto dist = DestinationDistribution::uniform(d);
  const double horizon = 15000.0, warmup = 1000.0;

  std::cout << "Scheme comparison on the " << d << "-cube, lambda = " << lambda
            << " (rho = " << lambda * 0.5 << " for greedy), uniform traffic\n\n";

  const auto trace = generate_hypercube_trace(d, lambda, dist, horizon, 2025);

  // 1. Greedy (trace replay).
  GreedyHypercubeConfig greedy_cfg;
  greedy_cfg.d = d;
  greedy_cfg.destinations = dist;
  greedy_cfg.trace = &trace;
  GreedyHypercubeSim greedy(greedy_cfg);
  greedy.run(warmup, horizon);

  // 2. Valiant mixing (same trace).
  ValiantMixingConfig mixing_cfg;
  mixing_cfg.d = d;
  mixing_cfg.destinations = dist;
  mixing_cfg.trace = &trace;
  mixing_cfg.seed = 2025;
  ValiantMixingSim mixing(mixing_cfg);
  mixing.run(warmup, horizon);

  // 3. Pipelined baseline (same statistical workload; the scheme batches
  //    at round boundaries so a trace replay is not meaningful for it).
  PipelinedBaselineConfig baseline_cfg;
  baseline_cfg.d = d;
  baseline_cfg.lambda = lambda;
  baseline_cfg.destinations = dist;
  baseline_cfg.seed = 2025;
  PipelinedBaselineSim baseline(baseline_cfg);
  baseline.run(warmup, horizon);

  // 4. Deflection (slot-synchronous, same rate).
  DeflectionConfig deflect_cfg;
  deflect_cfg.d = d;
  deflect_cfg.lambda = lambda;
  deflect_cfg.destinations = dist;
  deflect_cfg.seed = 2025;
  DeflectionSim deflection(deflect_cfg);
  deflection.run(static_cast<std::uint64_t>(warmup),
                 static_cast<std::uint64_t>(horizon));

  const auto row = [](const std::string& name, double delay, double hops,
                      double backlog, const std::string& note) {
    std::cout << std::left << std::setw(22) << name << std::right << std::setw(10)
              << std::fixed << std::setprecision(2) << delay << std::setw(10)
              << hops << std::setw(12) << std::setprecision(0) << backlog
              << "   " << note << '\n';
    std::cout.unsetf(std::ios_base::fixed);
  };

  std::cout << std::left << std::setw(22) << "scheme" << std::right << std::setw(10)
            << "delay" << std::setw(10) << "hops" << std::setw(12) << "backlog"
            << "   notes\n";
  row("greedy (paper)", greedy.delay().mean(), greedy.hops().mean(),
      greedy.final_population(), "stable for all rho < 1");
  row("valiant mixing", mixing.delay().mean(), mixing.hops().mean(),
      mixing.final_population(), "~d/2 extra hops, capacity halved");
  row("pipelined rounds", baseline.delay().mean(), d * 0.5,
      static_cast<double>(baseline.backlog()), "stable only for rho ~ 1/(Rd)");
  row("deflection", deflection.delay().mean(), deflection.hops().mean(),
      static_cast<double>(deflection.injection_backlog()),
      "bufferless; misroutes under load");

  std::cout << "\nThe greedy scheme wins on every axis for this workload — the\n"
               "paper's point: no idling, no mixing overhead, full stability\n"
               "region, O(d) delay.\n";
  return 0;
}
