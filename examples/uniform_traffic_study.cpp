// Scenario: a message-passing multiprocessor (the paper's motivating
// setting, §1.1) — 256 processors on an 8-cube exchanging messages with
// uniformly random partners.  Question: how does the end-to-end message
// latency degrade as the per-processor injection rate grows, and how close
// to the capacity bound can the machine run with acceptable latency?
//
//   build/examples/example_uniform_traffic_study

#include <iomanip>
#include <iostream>

#include "core/simulation.hpp"

int main() {
  using namespace routesim;

  const int d = 8;  // 256 processors
  const double p = 0.5;

  std::cout << "Uniform-traffic latency study on the " << d << "-cube ("
            << (1 << d) << " processors)\n";
  std::cout << "necessary condition for ANY routing scheme: lambda < 1/p = 2\n\n";
  std::cout << std::setw(8) << "lambda" << std::setw(8) << "rho" << std::setw(12)
            << "T (sim)" << std::setw(10) << "+/-" << std::setw(12) << "UB P12"
            << std::setw(14) << "slowdown" << '\n';

  // Slowdown = T / (d*p): the factor contention adds over an empty network.
  for (const double lambda : {0.2, 0.6, 1.0, 1.4, 1.8, 1.9}) {
    const bounds::HypercubeParams params{d, lambda, p};
    const double rho = bounds::load_factor(params);
    const auto window = Window::for_load(d, rho, 4000.0);
    const auto estimate = estimate_hypercube_delay(params, window, {6, 7});
    std::cout << std::setw(8) << lambda << std::setw(8) << rho << std::setw(12)
              << std::fixed << std::setprecision(2) << estimate.delay.mean
              << std::setw(10) << std::setprecision(2) << estimate.delay.half_width
              << std::setw(12) << std::setprecision(2) << estimate.upper_bound
              << std::setw(13) << std::setprecision(2)
              << estimate.delay.mean / (d * p) << "x\n";
    std::cout.unsetf(std::ios_base::fixed);
  }

  std::cout << "\nReading the table: at 50% of capacity the messages take only\n"
               "~1.5x the zero-load latency; even at 95% of capacity the\n"
               "slowdown stays within the paper's dp/(1-rho) guarantee — the\n"
               "practical content of Propositions 6 and 12.\n";
  return 0;
}
