#include "core/bounds.hpp"

#include <algorithm>
#include <cmath>

#include "queueing/analytic.hpp"
#include "util/assert.hpp"
#include "util/bits.hpp"

namespace routesim::bounds {

namespace {

void check_hp(const HypercubeParams& hp) {
  RS_EXPECTS(hp.d >= 1 && hp.d <= 26);
  RS_EXPECTS(hp.lambda >= 0.0);
  RS_EXPECTS(hp.p >= 0.0 && hp.p <= 1.0);
}

void check_bp(const ButterflyParams& bp) {
  RS_EXPECTS(bp.d >= 1 && bp.d <= 25);
  RS_EXPECTS(bp.lambda >= 0.0);
  RS_EXPECTS(bp.p >= 0.0 && bp.p <= 1.0);
}

void check_stable(double rho) {
  RS_EXPECTS_MSG(rho < 1.0, "bound requires load factor < 1");
}

}  // namespace

double load_factor(const HypercubeParams& hp) {
  check_hp(hp);
  return hp.lambda * hp.p;
}

bool stability_possible(const HypercubeParams& hp) { return load_factor(hp) <= 1.0; }

double mean_hops(const HypercubeParams& hp) {
  check_hp(hp);
  return static_cast<double>(hp.d) * hp.p;
}

double universal_delay_lower_bound(const HypercubeParams& hp) {
  const double rho = load_factor(hp);
  check_stable(rho);
  const double servers = std::ldexp(1.0, hp.d);  // 2^d parallel arcs of dim 1
  const double queue_term = rho * mds_sojourn_lower_bound(servers, rho);
  return std::max(mean_hops(hp), queue_term);
}

double universal_delay_lower_bound_avg(const HypercubeParams& hp) {
  const double rho = load_factor(hp);
  check_stable(rho);
  const double servers = std::ldexp(1.0, hp.d);
  return 0.5 * (mean_hops(hp) + rho * mds_sojourn_lower_bound(servers, rho));
}

double oblivious_delay_lower_bound(const HypercubeParams& hp) {
  const double rho = load_factor(hp);
  check_stable(rho);
  return std::max(mean_hops(hp), hp.p * md1_sojourn_time(rho));
}

double greedy_delay_upper_bound(const HypercubeParams& hp) {
  const double rho = load_factor(hp);
  check_stable(rho);
  return static_cast<double>(hp.d) * hp.p / (1.0 - rho);
}

double greedy_delay_lower_bound(const HypercubeParams& hp) {
  const double rho = load_factor(hp);
  check_stable(rho);
  return mean_hops(hp) + hp.p * rho / (2.0 * (1.0 - rho));
}

double greedy_delay_exact_p1(int d, double lambda) {
  RS_EXPECTS(d >= 1);
  RS_EXPECTS(lambda >= 0.0);
  check_stable(lambda);
  return static_cast<double>(d) + lambda / (2.0 * (1.0 - lambda));
}

double slotted_delay_upper_bound(const HypercubeParams& hp, double tau) {
  RS_EXPECTS(tau > 0.0 && tau <= 1.0);
  return greedy_delay_upper_bound(hp) + tau;
}

double mean_packets_per_node_bound(const HypercubeParams& hp) {
  const double rho = load_factor(hp);
  check_stable(rho);
  return static_cast<double>(hp.d) * rho / (1.0 - rho);
}

double heavy_traffic_lower(const HypercubeParams& hp) {
  check_hp(hp);
  return hp.p / 2.0;
}

double heavy_traffic_upper(const HypercubeParams& hp) {
  check_hp(hp);
  return static_cast<double>(hp.d) * hp.p;
}

double dimension_load_factor(std::span<const double> mask_pmf, int dim,
                             double lambda) {
  RS_EXPECTS(dim >= 1);
  RS_EXPECTS(lambda >= 0.0);
  double flip = 0.0;
  for (std::size_t mask = 0; mask < mask_pmf.size(); ++mask) {
    if (has_dimension(static_cast<NodeId>(mask), dim)) flip += mask_pmf[mask];
  }
  return lambda * flip;
}

double load_factor_general(std::span<const double> mask_pmf, int d, double lambda) {
  RS_EXPECTS(d >= 1);
  RS_EXPECTS(mask_pmf.size() == (std::size_t{1} << d));
  double rho = 0.0;
  for (int dim = 1; dim <= d; ++dim) {
    rho = std::max(rho, dimension_load_factor(mask_pmf, dim, lambda));
  }
  return rho;
}

double bfly_load_factor(const ButterflyParams& bp) {
  check_bp(bp);
  return bp.lambda * std::max(bp.p, 1.0 - bp.p);
}

bool bfly_stability_possible(const ButterflyParams& bp) {
  return bfly_load_factor(bp) <= 1.0;
}

double bfly_universal_delay_lower_bound(const ButterflyParams& bp) {
  check_bp(bp);
  const double rho_v = bp.lambda * bp.p;
  const double rho_s = bp.lambda * (1.0 - bp.p);
  check_stable(rho_v);
  check_stable(rho_s);
  // T >= d - 1 + p W_v + (1-p) W_s with W the M/D/1 sojourn times (Prop. 14).
  return static_cast<double>(bp.d) - 1.0 + bp.p * md1_sojourn_time(rho_v) +
         (1.0 - bp.p) * md1_sojourn_time(rho_s);
}

double bfly_greedy_delay_upper_bound(const ButterflyParams& bp) {
  check_bp(bp);
  const double rho_v = bp.lambda * bp.p;
  const double rho_s = bp.lambda * (1.0 - bp.p);
  check_stable(rho_v);
  check_stable(rho_s);
  return static_cast<double>(bp.d) * bp.p / (1.0 - rho_v) +
         static_cast<double>(bp.d) * (1.0 - bp.p) / (1.0 - rho_s);
}

double bfly_mean_packets_per_node(const ButterflyParams& bp) {
  check_bp(bp);
  const double rho_v = bp.lambda * bp.p;
  const double rho_s = bp.lambda * (1.0 - bp.p);
  check_stable(rho_v);
  check_stable(rho_s);
  return mm1_mean_number(rho_v) + mm1_mean_number(rho_s);
}

double bfly_heavy_traffic_lower(const ButterflyParams& bp) {
  check_bp(bp);
  return std::max(bp.p, 1.0 - bp.p) / 2.0;
}

double bfly_heavy_traffic_upper(const ButterflyParams& bp) {
  check_bp(bp);
  return static_cast<double>(bp.d) * std::max(bp.p, 1.0 - bp.p);
}

}  // namespace routesim::bounds
