#pragma once
/// \file bounds.hpp
/// \brief Every closed-form bound and stability condition from the paper,
///        as directly callable functions.
///
/// Hypercube model parameters: dimension d, per-node Poisson rate lambda,
/// bit-flip probability p; load factor rho = lambda * p (§2.1).
/// Butterfly model parameters: dimension d, per-(level-1-)node rate lambda,
/// bit-flip probability p; load factor rho = lambda * max{p, 1-p} (§4.2).
///
/// Each function cites the proposition it implements.  Functions whose
/// formula requires rho < 1 check it as a precondition.

#include <span>

namespace routesim::bounds {

/// The hypercube model's parameter triple (d, lambda, p) of §1.1.
struct HypercubeParams {
  int d = 4;           ///< cube dimension
  double lambda = 0.1; ///< per-node Poisson generation rate
  double p = 0.5;      ///< bit-flip probability of destination law (1)
};

/// The butterfly model's parameter triple (d, lambda, p) of §4.1.
struct ButterflyParams {
  int d = 4;           ///< butterfly dimension (d+1 levels of 2^d rows)
  double lambda = 0.1; ///< per-(level-1)-node Poisson generation rate
  double p = 0.5;      ///< bit-flip probability applied to the rows
};

// ------------------------------------------------------------------ hypercube

/// rho = lambda * p (§2.1).
[[nodiscard]] double load_factor(const HypercubeParams& hp);

/// Necessary condition for stability of *any* scheme: rho <= 1 (eq. (2)).
[[nodiscard]] bool stability_possible(const HypercubeParams& hp);

/// Mean shortest-path length d*p: the zero-contention mean delay (§1.1).
[[nodiscard]] double mean_hops(const HypercubeParams& hp);

/// Proposition 2 (universal lower bound, exact max form):
/// T >= max{ dp, rho * D(2^d; rho) } with D lower-bounded by Brumelle's
/// M/D/s bound D >= 1 + rho / (2^(d+1) (1-rho)).
[[nodiscard]] double universal_delay_lower_bound(const HypercubeParams& hp);

/// Proposition 2, averaged form:
/// T >= (dp + rho(1 + rho/(2^(d+1)(1-rho)))) / 2.
[[nodiscard]] double universal_delay_lower_bound_avg(const HypercubeParams& hp);

/// Proposition 3 (oblivious schemes):
/// T >= max{ dp, p (1 + rho/(2(1-rho))) }.
[[nodiscard]] double oblivious_delay_lower_bound(const HypercubeParams& hp);

/// Proposition 12: T <= dp / (1 - rho) for the greedy scheme.
[[nodiscard]] double greedy_delay_upper_bound(const HypercubeParams& hp);

/// Proposition 13: T >= dp + p*rho / (2(1-rho)) for the greedy scheme.
[[nodiscard]] double greedy_delay_lower_bound(const HypercubeParams& hp);

/// Exact delay at p = 1 (end of §3.3): packets from different nodes follow
/// disjoint paths, so T = d + rho/(2(1-rho)) with rho = lambda.
[[nodiscard]] double greedy_delay_exact_p1(int d, double lambda);

/// §3.4: slotted-time upper bound T <= dp/(1-rho) + tau.
[[nodiscard]] double slotted_delay_upper_bound(const HypercubeParams& hp, double tau);

/// Mean packets per node bound N/2^d <= d*rho/(1-rho) (after Prop. 12).
[[nodiscard]] double mean_packets_per_node_bound(const HypercubeParams& hp);

/// Heavy-traffic limits of (1-rho) T as rho -> 1 (discussion after
/// Prop. 13): lower p/2, upper d*p.
[[nodiscard]] double heavy_traffic_lower(const HypercubeParams& hp);
[[nodiscard]] double heavy_traffic_upper(const HypercubeParams& hp);

// ---------------------------------------------------- general destination law

/// Load factor of dimension j for a translation-invariant destination law
/// f over XOR masks: rho_j = lambda * sum_{y: y_j = 1} f(y)  (§2.2 end).
[[nodiscard]] double dimension_load_factor(std::span<const double> mask_pmf, int dim,
                                           double lambda);

/// rho = max_j rho_j for a general translation-invariant law.
[[nodiscard]] double load_factor_general(std::span<const double> mask_pmf, int d,
                                         double lambda);

// ------------------------------------------------------------------ butterfly

/// rho = lambda * max{p, 1-p} (eq. (17)).
[[nodiscard]] double bfly_load_factor(const ButterflyParams& bp);

/// Necessary condition (17): lambda*p <= 1 and lambda*(1-p) <= 1.
[[nodiscard]] bool bfly_stability_possible(const ButterflyParams& bp);

/// Proposition 14 (universal lower bound):
/// T >= d + lambda p^2/(2(1-lambda p)) + lambda (1-p)^2/(2(1-lambda(1-p))).
[[nodiscard]] double bfly_universal_delay_lower_bound(const ButterflyParams& bp);

/// Proposition 17: T <= d p/(1-lambda p) + d (1-p)/(1-lambda(1-p)).
[[nodiscard]] double bfly_greedy_delay_upper_bound(const ButterflyParams& bp);

/// Overall mean packets per node eta = lambda p/(1-lambda p)
/// + lambda(1-p)/(1-lambda(1-p)) (§4.3).
[[nodiscard]] double bfly_mean_packets_per_node(const ButterflyParams& bp);

/// Butterfly heavy-traffic limits of (1-rho) T as rho -> 1 (§4.3 end):
/// lower max{p,1-p}/2, upper d*max{p,1-p}.
[[nodiscard]] double bfly_heavy_traffic_lower(const ButterflyParams& bp);
[[nodiscard]] double bfly_heavy_traffic_upper(const ButterflyParams& bp);

}  // namespace routesim::bounds
