#include "core/campaign.hpp"

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

#include "core/experiment.hpp"
#include "core/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "workload/trace.hpp"

namespace routesim {

Campaign& Campaign::add(Scenario scenario) {
  std::string label = scenario.scheme;
  return add(std::move(label), std::move(scenario));
}

Campaign& Campaign::add(std::string label, Scenario scenario) {
  cells_.push_back({std::move(label), std::move(scenario)});
  return *this;
}

namespace {

/// Display form for grid labels: short %g, so an index-generated
/// 0.6000000000000001 reads "0.6" (the cell's *scenario* keeps the exact
/// value — labels are presentation only).
std::string label_value(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.6g", value);
  return buffer;
}

}  // namespace

Campaign& Campaign::grid(const Scenario& base,
                         const std::vector<SweepSpec>& axes) {
  if (axes.empty()) return add(base);
  // rho and lambda set the same underlying quantity (rho is a deferred
  // lambda solve), so axes over both would silently cancel each other —
  // whichever applies last per cell wins and one whole axis becomes a
  // no-op of duplicate cells.  Reject the combination, and duplicate axes
  // over any single key for the same reason.
  for (std::size_t a = 0; a < axes.size(); ++a) {
    for (std::size_t b = a + 1; b < axes.size(); ++b) {
      const bool same_key = axes[a].key == axes[b].key;
      const bool load_clash =
          (axes[a].key == "rho" && axes[b].key == "lambda") ||
          (axes[a].key == "lambda" && axes[b].key == "rho");
      if (same_key || load_clash) {
        throw ScenarioError("conflicting grid axes '" + axes[a].key +
                            "' and '" + axes[b].key +
                            "' set the same quantity — one would silently "
                            "overwrite the other");
      }
    }
  }
  std::vector<std::vector<double>> values;
  values.reserve(axes.size());
  for (const SweepSpec& axis : axes) values.push_back(axis.values());

  // Odometer over the axes, last axis fastest (first slowest-varying).
  std::vector<std::size_t> index(axes.size(), 0);
  for (bool done = false; !done;) {
    Scenario cell = base;
    std::string label;
    for (std::size_t a = 0; a < axes.size(); ++a) {
      apply_sweep_value(cell, axes[a].key, values[a][index[a]]);
      if (!label.empty()) label += ' ';
      label += axes[a].key + "=" + label_value(values[a][index[a]]);
    }
    add(std::move(label), std::move(cell));
    done = true;
    for (std::size_t a = axes.size(); a-- > 0;) {
      if (++index[a] < values[a].size()) {
        done = false;
        break;
      }
      index[a] = 0;
    }
  }
  return *this;
}

// ------------------------------------------------------------------- cache

std::string ResultCache::key(const Scenario& scenario) {
  Scenario canonical = scenario.resolved();
  canonical.plan.threads = 0;  // thread count never changes results
  // The kernel backend is normalized out too: soa_batch is pinned
  // bit-identical to the scalar oracle (tests/test_kernel_parity.cpp,
  // tests/test_kernel_backend.cpp), so equal-scenario runs on different
  // backends share one cache entry.
  canonical.backend = "scalar";
  std::string key = canonical.to_string();
  if (!canonical.trace_file.empty()) {
    // A trace path names mutable content: hash the bytes into the key so
    // a rewritten file misses the cache instead of returning stale rows
    // (fingerprint 0 — unreadable — still keys consistently; the load
    // itself reports the real error at compile time).
    char fingerprint[32];
    std::snprintf(fingerprint, sizeof fingerprint, " trace_hash=%016llx",
                  static_cast<unsigned long long>(
                      trace_file_fingerprint(canonical.trace_file)));
    key += fingerprint;
  }
  return key;
}

bool ResultCache::lookup(const std::string& key, RunResult* out) const {
  RS_EXPECTS(out != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  *out = it->second;
  return true;
}

void ResultCache::insert(const std::string& key, const RunResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.insert_or_assign(key, result);
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

// -------------------------------------------------------------- JSONL sink

namespace {

/// JSON has no NaN/Inf literals; emit null for them.
void json_number(std::ostringstream& os, double value) {
  if (!std::isfinite(value)) {
    os << "null";
  } else {
    os << fmt_shortest(value);
  }
}

void json_interval(std::ostringstream& os, const char* name,
                   const ConfidenceInterval& interval) {
  os << "\"" << name << "_mean\":";
  json_number(os, interval.mean);
  os << ",\"" << name << "_half_width\":";
  json_number(os, interval.half_width);
}

}  // namespace

JsonlSink::JsonlSink(const std::string& path, FileOptions options)
    : file_(std::fopen(path.c_str(), options.append ? "ab" : "wb")),
      file_options_(options) {}

JsonlSink::~JsonlSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlSink::on_begin(const Campaign& campaign) {
  campaign_ = campaign.name();
}

void JsonlSink::on_cell(const CellResult& cell) {
  const std::string line = to_json(campaign_, cell);
  if (file_ != nullptr) {
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fputc('\n', file_);
    std::fflush(file_);
    // Durability, not just visibility: a record either survives a kill
    // entirely or is a truncated tail the store loader tolerates.
    if (file_options_.fsync_each) ::fsync(fileno(file_));
    return;
  }
  *out_ << line << '\n';
  out_->flush();  // the point of JSONL is incremental consumption
}

std::string JsonlSink::to_json(const std::string& campaign,
                               const CellResult& cell) {
  const RunResult& r = cell.result;
  std::ostringstream os;
  os << "{\"campaign\":\"" << json_escape(campaign) << "\",\"cell\":"
     << cell.index << ",\"label\":\"" << json_escape(cell.label)
     << "\",\"scenario\":\"" << json_escape(cell.scenario.to_string())
     << "\",\"from_cache\":" << (cell.from_cache ? "true" : "false")
     << ",\"from_store\":" << (cell.from_store ? "true" : "false")
     << ",\"tier\":\"" << cell.tier() << "\",\"wall_time_s\":";
  json_number(os, cell.wall_time_s);
  os << ",\"rho\":";
  json_number(os, r.rho);
  os << ',';
  json_interval(os, "delay", r.delay);
  os << ',';
  json_interval(os, "population", r.population);
  os << ',';
  json_interval(os, "throughput", r.throughput);
  os << ",\"mean_hops\":";
  json_number(os, r.mean_hops);
  os << ",\"max_little_error\":";
  json_number(os, r.max_little_error);
  os << ",\"mean_final_backlog\":";
  json_number(os, r.mean_final_backlog);
  os << ",\"has_bounds\":" << (r.has_bounds ? "true" : "false");
  if (r.has_bounds) {
    os << ",\"lower_bound\":";
    json_number(os, r.lower_bound);
    os << ",\"upper_bound\":";
    json_number(os, r.upper_bound);
  }
  os << ",\"extras\":{";
  for (std::size_t i = 0; i < r.extras.size(); ++i) {
    os << (i == 0 ? "" : ",") << "\"" << json_escape(r.extras[i].first)
       << "\":{\"mean\":";
    json_number(os, r.extras[i].second.mean);
    os << ",\"half_width\":";
    json_number(os, r.extras[i].second.half_width);
    os << '}';
  }
  os << "}}";
  return os.str();
}

// ------------------------------------------------------------------ engine

namespace {

/// One unit of compute: every cell sharing a cache key funnels into one
/// job, whose replication rows are filled by the shared pool and
/// aggregated exactly once.
struct CellJob {
  std::vector<std::size_t> cell_indices;  ///< front() computed, rest copies
  Scenario scenario;                      ///< resolved form
  std::string key;
  CompiledScenario compiled;
  std::vector<std::vector<double>> rows;
  std::atomic<int> remaining{0};
  /// Summed wall time of this job's replication tasks (telemetry only —
  /// reported as CellResult::wall_time_s, never part of the result).
  std::atomic<double> compute_seconds{0.0};
};

/// Handles into the process-wide registry, resolved once — engine
/// increments are then single relaxed RMWs on pre-registered metrics.
struct EngineMetrics {
  obs::Counter& cells_cache;
  obs::Counter& cells_store;
  obs::Counter& cells_computed;
  obs::Counter& tasks;
  obs::Counter& task_seconds;
  obs::Counter& worker_seconds;
  obs::Gauge& busy_workers;
  obs::Gauge& pool_workers;

  static EngineMetrics& get() {
    auto& registry = obs::global_metrics();
    static EngineMetrics metrics{
        registry.counter("routesim_engine_cells_cache_total"),
        registry.counter("routesim_engine_cells_store_total"),
        registry.counter("routesim_engine_cells_computed_total"),
        registry.counter("routesim_engine_tasks_total"),
        registry.counter("routesim_engine_task_seconds_total"),
        registry.counter("routesim_engine_worker_seconds_total"),
        registry.gauge("routesim_engine_busy_workers"),
        registry.gauge("routesim_engine_pool_workers")};
    return metrics;
  }
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// run()'s aggregation, replication order, one code path for the serial
/// and the campaign-scheduled case — hence bit-identical results.
RunResult assemble(const Scenario& resolved, const CompiledScenario& compiled,
                   const std::vector<std::vector<double>>& rows) {
  const std::size_t metrics = rows.front().size();
  for (const auto& row : rows) {
    RS_ENSURES(row.size() == metrics);
  }
  const auto intervals = replication_intervals(rows);
  const auto summaries = summarize_replications(rows);
  RS_ENSURES(intervals.size() == metric::kCount + compiled.extra_metrics.size());

  RunResult result;
  result.delay = intervals[metric::kDelay];
  result.population = intervals[metric::kPopulation];
  result.throughput = intervals[metric::kThroughput];
  result.mean_hops = summaries[metric::kHops].mean();
  result.max_little_error = summaries[metric::kLittle].max();
  result.mean_final_backlog = summaries[metric::kBacklog].mean();
  result.has_bounds = compiled.has_bounds;
  result.lower_bound = compiled.lower_bound;
  result.upper_bound = compiled.upper_bound;
  for (std::size_t i = 0; i < compiled.extra_metrics.size(); ++i) {
    result.extras.emplace_back(compiled.extra_metrics[i],
                               intervals[metric::kCount + i]);
  }
  result.rho = resolved.rho();
  return result;
}

const SchemeRegistry::SchemeInfo& find_scheme_or_throw(
    const std::string& name) {
  const auto* info = SchemeRegistry::instance().find(name);
  if (info == nullptr) {
    std::string known;
    for (const auto& candidate : SchemeRegistry::instance().names()) {
      known += known.empty() ? candidate : ", " + candidate;
    }
    throw ScenarioError("unknown scheme '" + name + "' (known: " + known + ")");
  }
  return *info;
}

}  // namespace

std::vector<CellResult> Engine::run(const Campaign& campaign) const {
  obs::TraceSession* const trace = options_.trace;
  EngineMetrics& metrics = EngineMetrics::get();
  obs::ThreadTraceScope run_trace_scope(trace);
  obs::TraceSpan campaign_span(
      trace, "campaign.run", "engine",
      "{\"campaign\":\"" + json_escape(campaign.name()) +
          "\",\"cells\":" + std::to_string(campaign.size()) + "}");

  for (ResultSink* sink : options_.sinks) {
    if (sink != nullptr) sink->on_begin(campaign);
  }

  std::vector<CellResult> out(campaign.size());
  enum class Slot : std::uint8_t { kCached, kDuplicate, kScheduled };
  std::vector<Slot> status(campaign.size(), Slot::kScheduled);

  // Phase 1 (this thread): resolve + compile every cell, so any
  // ScenarioError surfaces before a single worker starts; serve cache and
  // persistent-store hits and coalesce in-campaign duplicates into one job
  // per distinct key.  The store lookup is what makes a rerun of an
  // interrupted campaign a *resume*: finished cells never reschedule.
  std::vector<std::unique_ptr<CellJob>> jobs;
  std::unordered_map<std::string, CellJob*> job_by_key;
  std::optional<obs::TraceSpan> compile_span(std::in_place, trace,
                                             "campaign.compile", "engine");
  for (std::size_t i = 0; i < campaign.size(); ++i) {
    const CampaignCell& cell = campaign.cells()[i];
    Scenario resolved = cell.scenario.resolved();
    const std::string key = ResultCache::key(resolved);
    out[i].index = i;
    out[i].label = cell.label;
    out[i].scenario = resolved;

    if (options_.cache != nullptr && options_.cache->lookup(key, &out[i].result)) {
      out[i].from_cache = true;
      status[i] = Slot::kCached;
      metrics.cells_cache.add();
      if (trace != nullptr) {
        trace->instant("cache.hit", "engine",
                       "{\"cell\":" + std::to_string(i) + "}");
      }
      continue;
    }
    if (options_.store != nullptr && options_.store->fetch(key, &out[i].result)) {
      out[i].from_cache = true;
      out[i].from_store = true;
      status[i] = Slot::kCached;
      metrics.cells_store.add();
      if (trace != nullptr) {
        trace->instant("store.hit", "engine",
                       "{\"cell\":" + std::to_string(i) + "}");
      }
      // Promote into the in-process cache so repeated lookups in this
      // process skip the store's mutex.
      if (options_.cache != nullptr) options_.cache->insert(key, out[i].result);
      continue;
    }
    if (const auto it = job_by_key.find(key); it != job_by_key.end()) {
      it->second->cell_indices.push_back(i);
      out[i].from_cache = true;  // shares another cell's computation
      status[i] = Slot::kDuplicate;
      continue;
    }
    const auto& info = find_scheme_or_throw(resolved.scheme);
    RS_EXPECTS(resolved.plan.replications >= 1);
    auto job = std::make_unique<CellJob>();
    job->cell_indices = {i};
    job->scenario = std::move(resolved);
    job->key = key;
    job->compiled = info.compile(job->scenario);
    job->rows.resize(static_cast<std::size_t>(job->scenario.plan.replications));
    job->remaining.store(job->scenario.plan.replications,
                         std::memory_order_relaxed);
    job_by_key.emplace(job->key, job.get());
    jobs.push_back(std::move(job));
  }

  compile_span.reset();

  // Cache hits are final already: emit them up front, in cell order (no
  // worker is running yet, so no lock is needed).
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (status[i] != Slot::kCached) continue;
    for (ResultSink* sink : options_.sinks) {
      if (sink != nullptr) sink->on_cell(out[i]);
    }
  }

  // Phase 2: one flat (job, rep) task list for all remaining cells — the
  // shared pool crosses cell boundaries instead of draining per cell.
  struct Task {
    CellJob* job;
    int rep;
  };
  std::vector<Task> tasks;
  for (const auto& job : jobs) {
    for (int rep = 0; rep < job->scenario.plan.replications; ++rep) {
      tasks.push_back({job.get(), rep});
    }
  }

  std::mutex sink_mutex;
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::atomic<bool> abort{false};
  std::atomic<std::size_t> next{0};

  const auto finish_job = [&](CellJob& job) {
    // Last replication of this job: aggregate once (replication order),
    // publish durably (store first, so no sink ever reports a cell the
    // store could lose), then to the cache, then fan out to every cell
    // sharing the key.
    RunResult result;
    {
      obs::TraceSpan assemble_span(
          obs::thread_trace(), "cell.assemble", "engine",
          "{\"cell\":" + std::to_string(job.cell_indices.front()) + "}");
      result = assemble(job.scenario, job.compiled, job.rows);
    }
    if (options_.store != nullptr) {
      obs::TraceSpan persist_span(obs::thread_trace(), "store.persist",
                                  "engine");
      options_.store->persist(job.key, job.scenario, result);
    }
    if (options_.cache != nullptr) options_.cache->insert(job.key, result);
    metrics.cells_computed.add(static_cast<double>(job.cell_indices.size()));
    const double wall = job.compute_seconds.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(sink_mutex);
    obs::TraceSpan flush_span(obs::thread_trace(), "sink.flush", "engine");
    for (const std::size_t cell_index : job.cell_indices) {
      out[cell_index].result = result;
      out[cell_index].wall_time_s = wall;
      for (ResultSink* sink : options_.sinks) {
        if (sink != nullptr) sink->on_cell(out[cell_index]);
      }
    }
  };

  const auto work = [&]() {
    // Workers get the campaign's trace session as their ambient
    // thread_trace(), so replication spans and the kernel's drive spans
    // land in the same per-thread buffers.
    obs::ThreadTraceScope worker_trace_scope(trace);
    obs::TraceSpan worker_span(trace, "worker", "engine");
    const auto worker_start = std::chrono::steady_clock::now();
    for (;;) {
      if (abort.load(std::memory_order_relaxed)) break;
      // Cooperative stop: cease *admitting* replications (the one in
      // flight was allowed to finish), so every job either completes —
      // and flushes durably — or stays wholly pending for a resume.
      if (options_.stop != nullptr &&
          options_.stop->load(std::memory_order_relaxed)) {
        break;
      }
      const std::size_t t = next.fetch_add(1, std::memory_order_relaxed);
      if (t >= tasks.size()) break;
      CellJob& job = *tasks[t].job;
      const int rep = tasks[t].rep;
      metrics.busy_workers.add(1.0);
      const auto task_start = std::chrono::steady_clock::now();
      try {
        {
          obs::TraceSpan replication_span(
              trace, "replication", "engine",
              "{\"cell\":" + std::to_string(job.cell_indices.front()) +
                  ",\"rep\":" + std::to_string(rep) + "}");
          job.rows[static_cast<std::size_t>(rep)] = job.compiled.replicate(
              derive_stream(job.scenario.plan.base_seed,
                            static_cast<std::uint64_t>(rep)),
              rep);
        }
        const double task_seconds = seconds_since(task_start);
        obs::atomic_add(job.compute_seconds, task_seconds);
        metrics.tasks.add();
        metrics.task_seconds.add(task_seconds);
        metrics.busy_workers.add(-1.0);
        // acq_rel: the final decrement observes every worker's row writes.
        if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          finish_job(job);
        }
      } catch (...) {
        metrics.busy_workers.add(-1.0);
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
      }
    }
    metrics.worker_seconds.add(seconds_since(worker_start));
  };

  const int requested = options_.threads > 0
                            ? options_.threads
                            : static_cast<int>(std::thread::hardware_concurrency());
  const int workers = std::max(
      1, std::min<int>(requested, static_cast<int>(tasks.size())));
  metrics.pool_workers.set(static_cast<double>(workers));
  if (workers <= 1) {
    work();
  } else {
    std::vector<std::jthread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(work);
  }
  if (first_error) std::rethrow_exception(first_error);

  // A cooperative stop leaves jobs with unadmitted replications; their
  // cells (including duplicates funnelled into them) report
  // completed == false so callers can count checkpointed vs pending work.
  for (const auto& job : jobs) {
    if (job->remaining.load(std::memory_order_acquire) == 0) continue;
    for (const std::size_t cell_index : job->cell_indices) {
      out[cell_index].completed = false;
      out[cell_index].from_cache = false;
    }
  }

  for (ResultSink* sink : options_.sinks) {
    if (sink != nullptr) sink->on_end(campaign);
  }
  return out;
}

RunResult Engine::run_one(const Scenario& scenario) const {
  EngineOptions options = options_;
  if (options.threads == 0) options.threads = scenario.plan.threads;
  Campaign single("run");
  single.add(scenario);
  auto results = Engine(std::move(options)).run(single);
  RS_ENSURES(results.size() == 1);
  return std::move(results.front().result);
}

}  // namespace routesim
