#pragma once
/// \file campaign.hpp
/// \brief The batch execution API: a `Campaign` is a named set of cells
///        (labelled `Scenario`s, built one by one or as sweep-grid cross
///        products), executed by an `Engine` that schedules *replications*
///        from every cell onto one shared worker pool.
///
/// The paper's results are tables and curves — dozens of (scheme, d, rho,
/// workload) cells — and the single-shot `run(Scenario)` loop re-spins a
/// worker pool per cell, draining it at every cell boundary.  The Engine
/// instead flattens all cells into one replication-level task list, so
/// every core stays busy until the whole campaign's tail.  Per-cell
/// results stay bit-identical to `run()`: each cell still aggregates its
/// own `derive_stream(base_seed, rep)` replications in replication order,
/// regardless of which worker ran which replication (pinned by
/// tests/test_campaign.cpp).
///
/// Long campaigns report incrementally through `ResultSink`s (a progress
/// callback, a JSONL stream, an in-memory collector), and an optional
/// in-process `ResultCache` — keyed by the canonical textual form of the
/// resolved scenario — makes repeated cells free, within a campaign and
/// across campaigns sharing the cache.  `run(Scenario)` itself is a
/// one-cell campaign, so every existing bench binary and the legacy shim
/// get this scheduler without source changes.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/scenario.hpp"

namespace routesim {

namespace obs {
class TraceSession;  // obs/trace.hpp — EngineOptions::trace
}

/// One cell of a campaign: a labelled experiment point.
struct CampaignCell {
  std::string label;
  Scenario scenario;
};

/// A named, ordered set of cells.  Build with add() (one cell at a time)
/// and/or grid() (the cross product of sweep axes over a base scenario);
/// execute with Engine::run().
class Campaign {
 public:
  explicit Campaign(std::string name = "campaign") : name_(std::move(name)) {}

  /// Appends one cell; the label defaults to the scheme name.
  Campaign& add(Scenario scenario);
  Campaign& add(std::string label, Scenario scenario);

  /// Appends the full cross product of the axes' values applied to `base`
  /// (first axis slowest-varying, so rows group naturally in tables).
  /// Labels are "key=value key=value ..."; values are applied through
  /// apply_sweep_value(), so rho axes defer to compile-time lambda
  /// resolution like `--set rho=` does.  An empty axis list adds `base`
  /// itself as a single cell.  Throws ScenarioError on conflicting axes
  /// (two axes over one key, or rho with lambda) — they would silently
  /// overwrite each other per cell.
  Campaign& grid(const Scenario& base, const std::vector<SweepSpec>& axes);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<CampaignCell>& cells() const noexcept {
    return cells_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }

 private:
  std::string name_;
  std::vector<CampaignCell> cells_;
};

/// One finished cell: its index/label, the *resolved* scenario actually
/// executed (pending rho targets solved to lambda), its RunResult, and
/// whether it was served without computing (result cache, persistent
/// store, or a duplicate of another cell in the same campaign).
struct CellResult {
  std::size_t index = 0;
  std::string label;
  Scenario scenario;
  RunResult result;
  /// True when the cell was served without recomputation: an in-process
  /// cache hit, a persistent-store hit, or an in-campaign duplicate.
  bool from_cache = false;
  /// True when the serving tier was specifically the persistent store.
  bool from_store = false;
  /// False when a cooperative stop (EngineOptions::stop) cancelled this
  /// cell before all its replications ran — `result` is then default and
  /// no sink saw the cell; rerunning the campaign resumes it.
  bool completed = true;
  /// Wall-clock compute cost of this cell in seconds: the summed wall
  /// time of its replication tasks (across however many workers ran
  /// them).  0 for cells served from the cache or store — their cost was
  /// paid by an earlier run; in-campaign duplicates repeat the shared
  /// job's cost.  Telemetry only: never part of RunResult, the cache key,
  /// or store records, which stay bit-identical across runs.
  double wall_time_s = 0.0;
  /// Which tier served the cell: "store" (persistent), "cache"
  /// (in-process hit or in-campaign duplicate), or "computed".
  [[nodiscard]] const char* tier() const noexcept {
    return from_store ? "store" : from_cache ? "cache" : "computed";
  }
};

/// Streaming consumer of campaign progress.  The engine serialises all
/// sink calls (one mutex across every registered sink), so implementations
/// need no locking of their own.  on_cell() fires in *completion* order,
/// which is nondeterministic under parallel scheduling — use
/// CellResult::index to reorder; the vector Engine::run() returns is
/// always in cell order.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void on_begin(const Campaign& campaign) { (void)campaign; }
  virtual void on_cell(const CellResult& cell) = 0;
  virtual void on_end(const Campaign& campaign) { (void)campaign; }
};

/// Adapts a plain callback (progress bars, log lines) to the sink API.
class ProgressSink final : public ResultSink {
 public:
  explicit ProgressSink(std::function<void(const CellResult&)> callback)
      : callback_(std::move(callback)) {}
  void on_cell(const CellResult& cell) override { callback_(cell); }

 private:
  std::function<void(const CellResult&)> callback_;
};

/// Collects every CellResult as it completes (completion order).
class MemorySink final : public ResultSink {
 public:
  void on_cell(const CellResult& cell) override { results_.push_back(cell); }
  [[nodiscard]] const std::vector<CellResult>& results() const noexcept {
    return results_;
  }

 private:
  std::vector<CellResult> results_;
};

/// Streams one self-contained JSON object per finished cell — the
/// machine-readable incremental form behind `routesim_bench --jsonl PATH`.
/// Schema (tests/test_campaign.cpp round-trips it): campaign, cell, label,
/// scenario (Scenario::parse-able one-liner), from_cache, from_store,
/// tier ("cache"/"store"/"computed"), wall_time_s (per-cell compute cost;
/// both absent from v1 records, which readers tolerate), rho,
/// the three interval metrics as *_mean/*_half_width, mean_hops,
/// max_little_error, mean_final_backlog, has_bounds (+ lower_bound/
/// upper_bound), and an extras object of {mean, half_width} per
/// scheme-specific metric.  Non-finite numbers are emitted as null.
///
/// Two construction modes: an ostream (caller owns buffering/lifetime,
/// flushed per record), or a file path with durability options — append
/// instead of truncate, and fsync after every record so a killed process
/// always leaves a valid resumable prefix (`--resume` replays it).
class JsonlSink final : public ResultSink {
 public:
  struct FileOptions {
    bool append = false;      ///< open O_APPEND instead of truncating
    bool fsync_each = true;   ///< fsync(2) after every record
  };

  explicit JsonlSink(std::ostream& out) : out_(&out) {}
  JsonlSink(const std::string& path, FileOptions options);
  JsonlSink(const JsonlSink&) = delete;
  JsonlSink& operator=(const JsonlSink&) = delete;
  ~JsonlSink() override;

  /// False when the file-path constructor could not open its target.
  [[nodiscard]] bool ok() const noexcept { return out_ != nullptr || file_ != nullptr; }

  void on_begin(const Campaign& campaign) override;
  void on_cell(const CellResult& cell) override;

  /// One cell as a single JSON line (no trailing newline).
  [[nodiscard]] static std::string to_json(const std::string& campaign,
                                           const CellResult& cell);

 private:
  std::ostream* out_ = nullptr;   ///< ostream mode (not owned)
  std::FILE* file_ = nullptr;     ///< file mode (owned)
  FileOptions file_options_{};
  std::string campaign_ = "campaign";
};

/// In-process result memoisation, shared across campaigns (and across
/// Suite instances in a bench binary).  Thread-safe.  The key is the
/// canonical textual form of the resolved scenario with the worker-thread
/// count and the kernel backend normalised out — neither changes results
/// (backends are pinned bit-identical to the scalar oracle), so threads=1
/// and threads=8 runs, and scalar and soa_batch runs, share an entry;
/// seeds and replication counts stay in the key because they *do* change
/// results.
class ResultCache {
 public:
  [[nodiscard]] static std::string key(const Scenario& scenario);

  /// Copies the entry for `key` into `*out` and counts a hit; returns
  /// false (counting a miss) when absent.
  [[nodiscard]] bool lookup(const std::string& key, RunResult* out) const;
  void insert(const std::string& key, const RunResult& result);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, RunResult> entries_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

/// Durable key->result tier behind the in-process ResultCache: the engine
/// consults it (after the cache) before scheduling a cell and persists
/// every newly computed cell into it.  The disk implementation is
/// store/result_store.hpp's ResultStore; this seam keeps the core layer
/// free of file formats.  Implementations must be thread-safe — persist()
/// is called from worker threads.
class ResultBackend {
 public:
  virtual ~ResultBackend() = default;
  /// Copies the stored result for `key` into `*out`; false when absent.
  [[nodiscard]] virtual bool fetch(const std::string& key, RunResult* out) = 0;
  /// Durably records `result` under `key` (scenario is the resolved form,
  /// kept alongside for human/tooling consumption of the store file).
  virtual void persist(const std::string& key, const Scenario& scenario,
                       const RunResult& result) = 0;
};

struct EngineOptions {
  /// Width of the shared worker pool for a whole campaign; 0 = hardware
  /// concurrency.  (Per-cell `plan.threads` is ignored inside a campaign —
  /// the pool is shared — except by run_one(), which honours it when this
  /// is 0, preserving `run(Scenario)` semantics.)
  int threads = 0;
  ResultCache* cache = nullptr;        ///< optional, not owned
  ResultBackend* store = nullptr;      ///< optional durable tier, not owned
  std::vector<ResultSink*> sinks{};    ///< optional, not owned
  /// Cooperative cancellation: when set and it becomes true, workers stop
  /// *admitting* replications but drain the one in flight, finished cells
  /// flush to sinks/cache/store as usual, and unfinished cells come back
  /// with CellResult::completed == false — the checkpoint/resume
  /// contract behind `routesim_bench`'s SIGINT handling.
  const std::atomic<bool>* stop = nullptr;  ///< optional, not owned
  /// Optional execution tracer (obs/trace.hpp): the engine records
  /// campaign/replication/assemble/sink spans and cache/store instants
  /// into it, and installs it as the ambient thread_trace() on every
  /// worker so kernel-level spans land in the same file.  Tracing never
  /// perturbs results (no RNG, no reordering) — `routesim_bench --trace
  /// PATH` exports the session as Chrome trace-event JSON.
  obs::TraceSession* trace = nullptr;  ///< optional, not owned
};

/// The campaign executor.  Scheduling never changes numbers: results are
/// bit-identical to a serial `run()` per cell for equal seeds and plans,
/// for any thread count.
class Engine {
 public:
  Engine() = default;
  explicit Engine(EngineOptions options) : options_(std::move(options)) {}

  /// Resolves and compiles every cell (ScenarioError surfaces here, before
  /// any worker starts), serves cache hits and in-campaign duplicates
  /// without recomputation, then runs all remaining replications on one
  /// shared pool.  Returns the results in cell order.
  [[nodiscard]] std::vector<CellResult> run(const Campaign& campaign) const;

  /// One scenario as a one-cell campaign — the engine behind
  /// routesim::run().  When options().threads is 0 the scenario's own
  /// plan.threads picks the pool width, exactly as run() always has.
  [[nodiscard]] RunResult run_one(const Scenario& scenario) const;

  [[nodiscard]] const EngineOptions& options() const noexcept {
    return options_;
  }

 private:
  EngineOptions options_{};
};

}  // namespace routesim
