#include "core/catalog.hpp"

#include <sstream>

#include "core/registry.hpp"
#include "core/scenario.hpp"
#include "topology/topology.hpp"
#include "util/assert.hpp"
#include "util/json.hpp"
#include "workload/permutation.hpp"

namespace routesim {

namespace {

/// Documentation for every key Scenario::set() accepts.  scenario_catalog()
/// checks this table against Scenario::known_set_keys() one-to-one and in
/// order, so adding a key without documenting it here fails immediately.
const std::vector<KeyEntry>& key_docs() {
  static const std::vector<KeyEntry> keys{
      {"d", "int", "cube / butterfly dimension (N = 2^d nodes per level)"},
      {"topology", "string",
       "network family: native (the scheme's own) | hypercube | butterfly "
       "| ring | torus | mesh (see the topology table)"},
      {"ring_chords", "string",
       "topology=ring: '' (plain cycle), 'papillon' (doubling-ladder "
       "strides) or a CSV of distinct chord strides in [2, n/2 - 1]"},
      {"torus_dims", "string",
       "topology=torus|mesh: per-dimension extents 'AxB' or 'AxBxC', each "
       "in [2, 256] (d is ignored)"},
      {"lambda", "double", "per-node packet generation rate"},
      {"rho", "double",
       "target load factor; solves for the lambda giving that load under "
       "the current scheme/workload (set p/workload first)"},
      {"p", "double", "bit-flip probability of destination law (1)"},
      {"tau", "double", "> 0: slotted-time variant with this slot length (§3.4)"},
      {"discipline", "string",
       "service discipline of the equivalent-network schemes: fifo | ps"},
      {"workload", "string",
       "destination workload: bit_flip | uniform | general | trace | "
       "permutation"},
      {"trace_file", "string",
       "workload=trace: JSONL trace to replay (one "
       "{\"t\":...,\"src\":...,\"dst\":...} record per packet, time-sorted; "
       "record one with --record-trace); every replication replays the "
       "same stream"},
      {"mask_pmf", "list",
       "workload=general: inline CSV or @path of 2^d probabilities "
       "P[dest = origin XOR y], validated and normalised (set d first)"},
      {"permutation", "string",
       "workload=permutation: the family name (see the permutation table); "
       "validated immediately"},
      {"hotspot_frac", "double",
       "permutation=hotspot: fraction of sources sending to node 0, "
       "in [0, 1]"},
      {"fanout", "int",
       "multicast destinations per packet / batch_greedy packets per node"},
      {"unicast_baseline", "int",
       "multicast: 1 sends fanout independent unicasts instead of a tree"},
      {"buffers", "int",
       "per-arc buffer capacity including the packet in service; 0 = "
       "infinite (the paper's model)"},
      {"fault_rate", "double", "P[arc statically down], per replication"},
      {"node_fault_rate", "double",
       "P[node down]; a dead node takes all its incident arcs down"},
      {"fault_mtbf", "double",
       "mean link up-time; > 0 with fault_mttr => dynamic up/down process"},
      {"fault_mttr", "double", "mean link repair time"},
      {"storm_rate", "double",
       "correlated fault storms: Poisson storm arrivals per unit time "
       "(each downs the incidence ball around a random seed node); needs "
       "storm_duration"},
      {"storm_radius", "int",
       "hop radius of a storm's incidence ball around its seed node "
       "(0 = the seed's own arcs)"},
      {"storm_duration", "double",
       "storm lifetime; covered arcs are restored when the storm passes "
       "(overlapping storms stack)"},
      {"fault_policy", "string",
       "reroute policy at a dead arc: drop | skip_dim | deflect | "
       "twin_detour | adaptive (see the fault-policy table)"},
      {"ttl", "int",
       "max hops for detouring packets; 0 = scheme default (64*d)"},
      {"warmup", "double", "measurement-window start (with horizon)"},
      {"horizon", "double",
       "simulation end; {warmup=0, horizon=0} derives a window from the "
       "load"},
      {"measure", "double", "measurement length used by the automatic window"},
      {"reps", "int", "independent replications"},
      {"seed", "uint64",
       "base seed; replication r runs with derive_stream(seed, r)"},
      {"threads", "int", "worker threads for the replication fan-out; 0 = auto"},
      {"backend", "string",
       "kernel execution engine: scalar | soa_batch (see the backend table)"},
  };
  return keys;
}

const std::vector<CatalogEntry>& workload_docs() {
  static const std::vector<CatalogEntry> workloads{
      {"bit_flip",
       "law (1) with parameter p: each identity bit of the origin flips "
       "independently with probability p"},
      {"uniform", "uniform destinations over all 2^d nodes (p = 1/2)"},
      {"general",
       "arbitrary translation-invariant law P[dest = origin XOR y] = "
       "mask_pmf[y]"},
      {"trace",
       "equal-seed scenarios regenerate the identical packet trace — the "
       "coupled scheme-comparison workload; with trace_file= an external "
       "recorded JSONL trace is replayed verbatim instead"},
      {"permutation",
       "adversarial deterministic per-source destinations pi(x) (see the "
       "permutation table); greedy has no averaging to hide behind"},
  };
  return workloads;
}

/// The routesim_bench CLI surface, one line per flag.  Unlike set_keys and
/// sweep_keys (sourced from the live lists), this table is maintained by
/// hand: keep it in sync with the argument parser in
/// bench/routesim_bench.cpp when adding or renaming a flag.
const std::vector<CatalogEntry>& cli_flag_docs() {
  static const std::vector<CatalogEntry> flags{
      {"--scenario SCHEME", "the base scenario: any registered scheme name"},
      {"--set key=value",
       "apply one scenario setting to the base (repeatable; see the --set "
       "key table)"},
      {"--grid key=a:b[:s]",
       "one campaign axis (repeatable); all axes cross-multiply into a "
       "cell grid run on the shared scheduler"},
      {"--sweep key=a:b[:s]",
       "alias of --grid, kept for the historic one-axis sweep form"},
      {"--cells",
       "preview the campaign (index, label, scenario per cell) without "
       "running it"},
      {"--jsonl PATH",
       "stream one JSON line per finished cell (incremental results for "
       "long campaigns); fsync'd per record, so a killed run leaves a "
       "valid --resume prefix"},
      {"--append", "open the --jsonl stream in append mode instead of truncating"},
      {"--store PATH",
       "durable result store (JSONL): finished cells are appended + "
       "fsync'd, already-stored cells are served without recomputation, "
       "and SIGINT/SIGTERM checkpoint the campaign for a later rerun"},
      {"--resume PATH",
       "replay a prior --jsonl stream or store file into the in-process "
       "cache before scheduling, so finished cells never recompute"},
      {"--trace PATH",
       "record the run as Chrome trace-event JSON (campaign, replication "
       "and kernel spans; load in Perfetto) — written on normal exit and "
       "after a SIGINT checkpoint; never changes results "
       "(docs/OBSERVABILITY.md)"},
      {"--record-trace PATH",
       "write the base scenario's replication-0 packet trace as JSONL "
       "(the trace_file= format) and exit without simulating; captures "
       "any sampled workload for later workload=trace replay"},
      {"--progress",
       "rate-limited stderr heartbeat for long campaigns: cells "
       "done/total, worker utilization, ETA from completed-cell wall "
       "times; active only when stderr is a TTY (--progress=force: "
       "always, one line per beat)"},
      {"--json PATH", "write the final table + acceptance checks as JSON"},
      {"--list", "print this catalog (--list --json PATH: machine-readable)"},
  };
  return flags;
}

/// The routesim_serve daemon CLI surface (tools/routesim_serve.cpp) —
/// hand-maintained like cli_flag_docs; docs/SERVE.md documents the wire
/// protocol itself.
const std::vector<CatalogEntry>& serve_flag_docs() {
  static const std::vector<CatalogEntry> flags{
      {"--store PATH",
       "persistent result store shared with routesim_bench --store; "
       "answers survive daemon restarts"},
      {"--socket PATH", "serve a Unix-domain socket instead of stdin/stdout"},
      {"--port N",
       "serve TCP on 127.0.0.1:N (0 = pick a free port, printed on stderr)"},
      {"--threads N", "engine worker-pool width per computation (0 = auto)"},
      {"--compact",
       "fold duplicate store records (append-only history) before serving"},
  };
  return flags;
}

const std::vector<CatalogEntry>& backend_docs() {
  static const std::vector<CatalogEntry> backends{
      {"scalar",
       "event-driven scalar kernel — the default and the bit-exactness "
       "oracle; every scheme supports it"},
      {"soa_batch",
       "structure-of-arrays batch kernel for slotted-time scenarios "
       "(tau > 0): advances every busy arc per tick with vectorizable "
       "updates, bit-identical to scalar on adopting schemes "
       "(hypercube_greedy, butterfly_greedy, deflection); needs FIFO "
       "service and a static fault set, other schemes reject it"},
  };
  return backends;
}

const std::vector<CatalogEntry>& fault_policy_docs() {
  static const std::vector<CatalogEntry> policies{
      {"drop", "lose packets whose next arc is dead (all fault-aware schemes)"},
      {"skip_dim",
       "hypercube family: greedy over surviving unresolved dimensions, "
       "random resolved-dimension detour, TTL-bounded"},
      {"deflect", "hypercube family: uniformly random surviving out-arc"},
      {"twin_detour",
       "butterfly: cross the level on its other arc; the packet exits "
       "misrouted (counted as a fault drop)"},
      {"adaptive",
       "hypercube family: probe live unresolved out-arcs with one-hop "
       "lookahead, prefer metric-descending survivors with a live "
       "continuation, fall back to deflection; TTL-bounded"},
  };
  return policies;
}

}  // namespace

ScenarioCatalog scenario_catalog() {
  ScenarioCatalog catalog;

  const auto& registry = SchemeRegistry::instance();
  for (const auto& name : registry.names()) {
    catalog.schemes.push_back({name, registry.find(name)->summary});
  }

  catalog.set_keys = key_docs();
  const auto& known = Scenario::known_set_keys();
  RS_EXPECTS_MSG(catalog.set_keys.size() == known.size(),
                 "catalog key docs out of sync with Scenario::known_set_keys()");
  for (std::size_t i = 0; i < known.size(); ++i) {
    RS_EXPECTS_MSG(catalog.set_keys[i].name == known[i],
                   "catalog key docs out of order with known_set_keys()");
  }

  for (const auto& name : topology_names()) {
    catalog.topologies.push_back({name, topology_summary(name)});
  }
  catalog.workloads = workload_docs();
  for (const auto& name : Permutation::names()) {
    catalog.permutations.push_back({name, Permutation::summary(name)});
  }
  catalog.fault_policies = fault_policy_docs();
  catalog.backends = backend_docs();
  catalog.sweep_keys = SweepSpec::known_keys();
  catalog.cli_flags = cli_flag_docs();
  catalog.serve_flags = serve_flag_docs();
  return catalog;
}

namespace {

void json_entries(std::ostringstream& os, const char* section,
                  const std::vector<CatalogEntry>& entries) {
  os << "  \"" << section << "\": [";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    os << (i == 0 ? "" : ",") << "\n    {\"name\": \""
       << json_escape(entries[i].name) << "\", \"summary\": \""
       << json_escape(entries[i].summary) << "\"}";
  }
  os << (entries.empty() ? "]" : "\n  ]");
}

}  // namespace

std::string catalog_json(const ScenarioCatalog& catalog) {
  std::ostringstream os;
  os << "{\n";
  json_entries(os, "schemes", catalog.schemes);
  os << ",\n  \"set_keys\": [";
  for (std::size_t i = 0; i < catalog.set_keys.size(); ++i) {
    const KeyEntry& key = catalog.set_keys[i];
    os << (i == 0 ? "" : ",") << "\n    {\"name\": \"" << json_escape(key.name)
       << "\", \"type\": \"" << json_escape(key.type) << "\", \"doc\": \""
       << json_escape(key.doc) << "\"}";
  }
  os << "\n  ],\n";
  json_entries(os, "topologies", catalog.topologies);
  os << ",\n";
  json_entries(os, "workloads", catalog.workloads);
  os << ",\n";
  json_entries(os, "permutations", catalog.permutations);
  os << ",\n";
  json_entries(os, "fault_policies", catalog.fault_policies);
  os << ",\n";
  json_entries(os, "backends", catalog.backends);
  os << ",\n  \"sweep_keys\": [";
  for (std::size_t i = 0; i < catalog.sweep_keys.size(); ++i) {
    os << (i == 0 ? "" : ", ") << '"' << json_escape(catalog.sweep_keys[i])
       << '"';
  }
  os << "],\n";
  json_entries(os, "cli_flags", catalog.cli_flags);
  os << ",\n";
  json_entries(os, "serve_flags", catalog.serve_flags);
  os << "\n}\n";
  return os.str();
}

namespace {

/// Escapes '|' so free-text cells cannot break the table syntax.
std::string md_cell(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '|') out += '\\';
    out += c;
  }
  return out;
}

void markdown_table(std::ostringstream& os, const char* left,
                    const std::vector<CatalogEntry>& entries) {
  os << "| " << left << " | description |\n|---|---|\n";
  for (const auto& entry : entries) {
    os << "| `" << entry.name << "` | " << md_cell(entry.summary) << " |\n";
  }
  os << '\n';
}

}  // namespace

std::string catalog_markdown(const ScenarioCatalog& catalog) {
  std::ostringstream os;
  os << "# Scenario reference\n\n"
        "<!-- GENERATED FILE — do not edit by hand.\n"
        "     Regenerate with: build/tools/tool_gen_docs "
        "docs/SCENARIO_REFERENCE.md\n"
        "     CI and tests/test_catalog.cpp fail when this file drifts from\n"
        "     the registry (src/core/catalog.cpp). -->\n\n"
        "Every experiment is a `routesim::Scenario`: a scheme name plus\n"
        "`key=value` settings, runnable from C++ (`routesim::run`) or the\n"
        "CLI (`routesim_bench --scenario SCHEME --set key=value ...`).\n"
        "This catalog is generated from the live `SchemeRegistry` and\n"
        "`Scenario::known_set_keys()`.\n\n";

  os << "## Schemes\n\n";
  markdown_table(os, "scheme", catalog.schemes);

  os << "## `--set` keys\n\n| key | type | description |\n|---|---|---|\n";
  for (const auto& key : catalog.set_keys) {
    os << "| `" << key.name << "` | " << key.type << " | " << md_cell(key.doc)
       << " |\n";
  }
  os << '\n';

  os << "## Topologies (`topology=`)\n\n"
        "`hypercube_greedy`, `valiant_mixing` and `deflection` accept any\n"
        "of these; the hypercube stays on the specialised bit-exact path.\n"
        "`topology=native` (the default) means the scheme's own network.\n"
        "See docs/TOPOLOGIES.md for the concept contract and closed forms.\n\n";
  markdown_table(os, "topology", catalog.topologies);

  os << "## Workloads (`workload=`)\n\n";
  markdown_table(os, "workload", catalog.workloads);

  os << "## Permutation families (`permutation=`, with "
        "`workload=permutation`)\n\n";
  markdown_table(os, "permutation", catalog.permutations);

  os << "## Fault policies (`fault_policy=`)\n\n";
  markdown_table(os, "policy", catalog.fault_policies);

  os << "## Kernel backends (`backend=`)\n\n";
  markdown_table(os, "backend", catalog.backends);

  os << "## Sweep keys (`--grid` / `--sweep key=start:stop[:step]`)\n\n";
  for (std::size_t i = 0; i < catalog.sweep_keys.size(); ++i) {
    os << (i == 0 ? "`" : ", `") << catalog.sweep_keys[i] << '`';
  }
  os << "\n\n";

  os << "## Campaign CLI (`routesim_bench`)\n\n"
        "Repeatable `--grid` axes cross-multiply into a cell grid — a\n"
        "`routesim::Campaign` — whose replications are scheduled onto one\n"
        "shared worker pool (see docs/CAMPAIGNS.md for the C++ API).\n\n";
  markdown_table(os, "flag", catalog.cli_flags);

  os << "## Service daemon (`routesim_serve`)\n\n"
        "The long-running scenario-answering daemon: line-delimited JSON\n"
        "over stdio, a Unix socket, or loopback TCP, answering from the\n"
        "persistent store when it can and scheduling engine runs when it\n"
        "cannot (see docs/SERVE.md for the protocol and the store format).\n\n";
  markdown_table(os, "flag", catalog.serve_flags);
  return os.str();
}

std::string catalog_text(const ScenarioCatalog& catalog) {
  std::ostringstream os;
  os << "registered schemes:\n";
  for (const auto& scheme : catalog.schemes) {
    os << "  " << scheme.name << "\n      " << scheme.summary << '\n';
  }
  os << "\nrecognized --set keys:\n";
  for (const auto& key : catalog.set_keys) {
    os << "  " << key.name << " (" << key.type << "): " << key.doc << '\n';
  }
  os << "\ntopologies (topology=..., default native):\n";
  for (const auto& topology : catalog.topologies) {
    os << "  " << topology.name << ": " << topology.summary << '\n';
  }
  os << "\nworkloads:\n";
  for (const auto& workload : catalog.workloads) {
    os << "  " << workload.name << ": " << workload.summary << '\n';
  }
  os << "\npermutation families (workload=permutation, permutation=...):\n";
  for (const auto& perm : catalog.permutations) {
    os << "  " << perm.name << ": " << perm.summary << '\n';
  }
  os << "\nfault policies (fault_policy=..., active when fault_rate,\n"
        "node_fault_rate, fault_mtbf/fault_mttr or storm_rate is set):\n";
  for (const auto& policy : catalog.fault_policies) {
    os << "  " << policy.name << ": " << policy.summary << '\n';
  }
  os << "\nkernel backends (backend=...):\n";
  for (const auto& backend : catalog.backends) {
    os << "  " << backend.name << ": " << backend.summary << '\n';
  }
  os << "\nsweep keys (--grid / --sweep):";
  for (const auto& key : catalog.sweep_keys) os << ' ' << key;
  os << '\n';
  os << "\nroutesim_bench flags:\n";
  for (const auto& flag : catalog.cli_flags) {
    os << "  " << flag.name << ": " << flag.summary << '\n';
  }
  os << "\nroutesim_serve flags (daemon; protocol in docs/SERVE.md):\n";
  for (const auto& flag : catalog.serve_flags) {
    os << "  " << flag.name << ": " << flag.summary << '\n';
  }
  return os.str();
}

}  // namespace routesim
