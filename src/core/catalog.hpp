#pragma once
/// \file catalog.hpp
/// \brief The self-describing scenario catalog: every scheme, `--set` key,
///        workload, permutation family, fault policy and sweep key, with
///        one-line documentation, assembled *from the live registry* so
///        generated docs can never drift from the code.
///
/// Three renderers share one data source:
///   - `routesim_bench --list` prints the human-readable form;
///   - `routesim_bench --list --json PATH` writes catalog_json();
///   - `tools/gen_docs` writes catalog_markdown() to
///     docs/SCENARIO_REFERENCE.md (the CI docs job and
///     tests/test_catalog.cpp fail when the committed copy differs).
///
/// scenario_catalog() cross-checks itself against
/// Scenario::known_set_keys(): a key added to set() without a catalog
/// entry (or vice versa) is a contract violation, so the documentation is
/// forced complete at the first --list or test run.

#include <string>
#include <vector>

namespace routesim {

/// One documented name (a scheme, workload, permutation or policy).
struct CatalogEntry {
  std::string name;
  std::string summary;  ///< one line, no trailing period required
};

/// One documented `--set` key.
struct KeyEntry {
  std::string name;
  std::string type;  ///< "int", "double", "string", "list", "uint64"
  std::string doc;   ///< one line
};

/// The full catalog; see scenario_catalog().
struct ScenarioCatalog {
  std::vector<CatalogEntry> schemes;         ///< from SchemeRegistry (live)
  std::vector<KeyEntry> set_keys;            ///< Scenario::known_set_keys() order
  std::vector<CatalogEntry> topologies;      ///< topology= values (live)
  std::vector<CatalogEntry> workloads;       ///< workload= values
  std::vector<CatalogEntry> permutations;    ///< permutation= values (live)
  std::vector<CatalogEntry> fault_policies;  ///< fault_policy= values
  std::vector<CatalogEntry> backends;        ///< backend= values
  std::vector<std::string> sweep_keys;       ///< --sweep / --grid keys
  std::vector<CatalogEntry> cli_flags;       ///< routesim_bench flags
  std::vector<CatalogEntry> serve_flags;     ///< routesim_serve daemon flags
};

/// Assembles the catalog from the live registry, Scenario::known_set_keys()
/// and Permutation::names().  Postcondition (enforced): set_keys covers
/// known_set_keys() exactly, in order.
[[nodiscard]] ScenarioCatalog scenario_catalog();

/// The catalog as a JSON document (schemes/keys/workloads/permutations/
/// fault_policies/sweep_keys arrays of {name, ...} objects).
[[nodiscard]] std::string catalog_json(const ScenarioCatalog& catalog);

/// The catalog as the Markdown scenario reference
/// (docs/SCENARIO_REFERENCE.md) — regenerate with tools/gen_docs.
[[nodiscard]] std::string catalog_markdown(const ScenarioCatalog& catalog);

/// The human-readable --list text.
[[nodiscard]] std::string catalog_text(const ScenarioCatalog& catalog);

}  // namespace routesim
