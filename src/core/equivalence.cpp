#include "core/equivalence.hpp"

#include "core/registry.hpp"
#include "stats/little.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/bits.hpp"

namespace routesim {

std::uint32_t q_server_index(int d, NodeId x, int dim) {
  RS_EXPECTS(d >= 1 && dim >= 1 && dim <= d);
  RS_EXPECTS(x < (NodeId{1} << d));
  return static_cast<std::uint32_t>(dim - 1) * (std::uint32_t{1} << d) + x;
}

std::uint32_t r_server_index(int d, NodeId row, int level, Butterfly::ArcKind kind) {
  RS_EXPECTS(d >= 1 && level >= 1 && level <= d);
  RS_EXPECTS(row < (NodeId{1} << d));
  const auto rows = std::uint32_t{1} << d;
  const std::uint32_t kind_offset = kind == Butterfly::ArcKind::kStraight ? 0 : rows;
  return static_cast<std::uint32_t>(level - 1) * (2u * rows) + kind_offset + row;
}

LevelledNetworkConfig make_hypercube_network_q(int d, double lambda, double p,
                                               Discipline discipline,
                                               std::uint64_t seed,
                                               bool track_per_server) {
  RS_EXPECTS(d >= 1 && d <= 20);
  RS_EXPECTS(lambda >= 0.0);
  RS_EXPECTS(p >= 0.0 && p <= 1.0);

  const auto nodes = std::uint32_t{1} << d;
  LevelledNetworkConfig config;
  config.discipline = discipline;
  config.seed = seed;
  config.track_per_server = track_per_server;
  config.servers.resize(static_cast<std::size_t>(d) * nodes);

  for (int dim = 1; dim <= d; ++dim) {
    // Property A: external rate lambda * p * (1-p)^(dim-1).
    const double external = lambda * p * std::pow(1.0 - p, dim - 1);
    for (NodeId x = 0; x < nodes; ++x) {
      auto& spec = config.servers[q_server_index(d, x, dim)];
      spec.service_rate = 1.0;
      spec.external_rate = external;
      // Property C: after crossing (x, x^e_dim) the packet is at x^e_dim and
      // joins dimension j > dim with probability p (1-p)^(j-dim-1).
      const NodeId next_node = flip_dimension(x, dim);
      spec.routing.reserve(static_cast<std::size_t>(d - dim));
      for (int j = dim + 1; j <= d; ++j) {
        spec.routing.push_back(RoutingChoice{
            p * std::pow(1.0 - p, j - dim - 1), q_server_index(d, next_node, j)});
      }
    }
  }
  return config;
}

LevelledNetworkConfig make_butterfly_network_r(int d, double lambda, double p,
                                               Discipline discipline,
                                               std::uint64_t seed,
                                               bool track_per_server) {
  RS_EXPECTS(d >= 1 && d <= 20);
  RS_EXPECTS(lambda >= 0.0);
  RS_EXPECTS(p >= 0.0 && p <= 1.0);

  const auto rows = std::uint32_t{1} << d;
  LevelledNetworkConfig config;
  config.discipline = discipline;
  config.seed = seed;
  config.track_per_server = track_per_server;
  config.servers.resize(static_cast<std::size_t>(d) * 2 * rows);

  const auto fill = [&](int level, NodeId row, Butterfly::ArcKind kind) {
    auto& spec = config.servers[r_server_index(d, row, level, kind)];
    spec.service_rate = 1.0;
    // Packets enter the network only at level 1; the Poisson(lambda) stream
    // of node [row; 1] splits into rate lambda*p on the vertical arc and
    // lambda*(1-p) on the straight arc (§4.2).
    if (level == 1) {
      spec.external_rate =
          kind == Butterfly::ArcKind::kVertical ? lambda * p : lambda * (1.0 - p);
    }
    if (level < d) {
      // Property B (§4.3): straight next with probability 1-p, vertical next
      // with probability p, from the row reached by this arc.
      const NodeId next_row =
          kind == Butterfly::ArcKind::kVertical ? flip_dimension(row, level) : row;
      spec.routing = {
          RoutingChoice{1.0 - p, r_server_index(d, next_row, level + 1,
                                                Butterfly::ArcKind::kStraight)},
          RoutingChoice{p, r_server_index(d, next_row, level + 1,
                                          Butterfly::ArcKind::kVertical)}};
    }
  };

  for (int level = 1; level <= d; ++level) {
    for (NodeId row = 0; row < rows; ++row) {
      fill(level, row, Butterfly::ArcKind::kStraight);
      fill(level, row, Butterfly::ArcKind::kVertical);
    }
  }
  return config;
}

LevelledNetworkConfig make_lemma9_network(double rate1, double rate2, double rate3,
                                          double p1_to_3, double p2_to_3,
                                          Discipline discipline, std::uint64_t seed) {
  RS_EXPECTS(rate1 >= 0.0 && rate2 >= 0.0 && rate3 >= 0.0);
  RS_EXPECTS(p1_to_3 >= 0.0 && p1_to_3 <= 1.0);
  RS_EXPECTS(p2_to_3 >= 0.0 && p2_to_3 <= 1.0);

  LevelledNetworkConfig config;
  config.discipline = discipline;
  config.seed = seed;
  config.servers.resize(3);
  config.servers[0].external_rate = rate1;
  config.servers[0].routing = {RoutingChoice{p1_to_3, 2}};
  config.servers[1].external_rate = rate2;
  config.servers[1].routing = {RoutingChoice{p2_to_3, 2}};
  config.servers[2].external_rate = rate3;
  return config;
}

namespace {

CompiledScenario compile_network_q(const Scenario& s, Discipline discipline) {
  if (s.workload != "bit_flip" && s.workload != "uniform") {
    throw ScenarioError("network_q supports only bit_flip/uniform workloads");
  }
  const double p_eff = s.effective_p();
  CompiledScenario compiled;
  (void)s.resolved_topology({"hypercube"});  // hypercube-native
  (void)s.resolved_fault_policy({});  // no fault support: reject knobs
  (void)s.resolved_backend({});       // scalar-only: reject soa_batch
  const Window window = s.resolved_window();
  compiled.replicate = [s, window, discipline, p_eff](std::uint64_t seed, int) {
    LevelledNetwork net(
        make_hypercube_network_q(s.d, s.lambda, p_eff, discipline, seed));
    net.run(window.warmup, window.horizon);
    const double window_length = window.horizon - window.warmup;
    LittleCheck little;
    little.time_avg_population = net.time_avg_population();
    little.arrival_rate =
        window_length > 0.0
            ? static_cast<double>(net.arrivals_in_window()) / window_length
            : 0.0;
    little.mean_sojourn = net.delay().mean();
    // Packets whose destination equals their origin (probability (1-p)^d)
    // never enter Q; the paper's T averages over *all* packets, so the
    // in-network sojourn is scaled by the probability of entering.
    const double enter_prob = 1.0 - std::pow(1.0 - p_eff, s.d);
    return std::vector<double>{net.delay().mean() * enter_prob,
                               net.time_avg_population(),
                               net.throughput(),
                               0.0,
                               little.relative_error(),
                               net.final_population()};
  };
  const bounds::HypercubeParams params{s.d, s.lambda, p_eff};
  if (bounds::load_factor(params) < 1.0) {
    compiled.has_bounds = true;
    compiled.lower_bound = bounds::greedy_delay_lower_bound(params);
    compiled.upper_bound = bounds::greedy_delay_upper_bound(params);
  }
  return compiled;
}

}  // namespace

void register_network_q_schemes(SchemeRegistry& registry) {
  registry.add({"network_q",
                "equivalent Markovian network Q of §3.1 (discipline from the "
                "scenario: FIFO = Q, PS = Q~)",
                [](const Scenario& s) {
                  return compile_network_q(s, s.discipline);
                }});
  registry.add({"network_q_fifo",
                "network Q under FIFO (the real scheme's equivalent, §3.1)",
                [](const Scenario& s) {
                  return compile_network_q(s, Discipline::kFifo);
                }});
  registry.add({"network_q_ps",
                "network Q~ under processor sharing (the product-form "
                "majorant of Props. 11/12)",
                [](const Scenario& s) {
                  return compile_network_q(s, Discipline::kPs);
                }});
}

}  // namespace routesim
