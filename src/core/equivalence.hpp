#pragma once
/// \file equivalence.hpp
/// \brief Builders for the equivalent queueing networks of the paper:
///        Q for the hypercube (§3.1), R for the butterfly (§4.3), and the
///        three-server network G of Lemma 9 (Fig. 2).
///
/// Under greedy routing the d-cube *is* the levelled network Q whose
/// "servers" are the d*2^d arcs, with
///   - Property A: external Poisson arrivals of rate lambda*p*(1-p)^(i-1)
///     at arc (x, x XOR e_i), independent across arcs;
///   - Property B: levelled structure (dimension i feeds only dimensions
///     j > i);
///   - Property C: Markovian routing — after arc (y, y XOR e_i) a packet
///     joins (y XOR e_i, y XOR e_i XOR e_j) with probability
///     p (1-p)^(j-i-1) and exits with probability (1-p)^(d-i).
///
/// The builders return LevelledNetworkConfig objects runnable under FIFO
/// (network Q / R) or PS (network Q~ / R~, the product-form majorant of
/// Propositions 11/12/17).

#include <cstdint>

#include "queueing/levelled_network.hpp"
#include "topology/butterfly.hpp"
#include "topology/hypercube.hpp"

namespace routesim {

/// Server index of hypercube arc (x, x XOR e_dim) inside network Q.
/// Identical to Hypercube::arc_index (dimension-major = level-major).
[[nodiscard]] std::uint32_t q_server_index(int d, NodeId x, int dim);

/// Server index of butterfly arc (row; level; kind) inside network R.
/// Level-major so that the levelled (target > source) property holds:
///   (row; j; s) -> (j-1)*2^(d+1) + row
///   (row; j; v) -> (j-1)*2^(d+1) + 2^d + row
[[nodiscard]] std::uint32_t r_server_index(int d, NodeId row, int level,
                                           Butterfly::ArcKind kind);

/// Network Q for the d-cube with parameters (lambda, p).  Runs the paper's
/// Properties A-C literally.  `discipline` selects Q (FIFO) or Q~ (PS).
[[nodiscard]] LevelledNetworkConfig make_hypercube_network_q(
    int d, double lambda, double p, Discipline discipline, std::uint64_t seed,
    bool track_per_server = false);

/// Network R for the d-dimensional butterfly with parameters (lambda, p).
[[nodiscard]] LevelledNetworkConfig make_butterfly_network_r(
    int d, double lambda, double p, Discipline discipline, std::uint64_t seed,
    bool track_per_server = false);

/// The three-server network G of Lemma 9 (Fig. 2a): servers S1, S2 on
/// level 1, S3 on level 2; after S1 (resp. S2) a customer joins S3 with
/// probability p1_to_3 (resp. p2_to_3), otherwise departs.
[[nodiscard]] LevelledNetworkConfig make_lemma9_network(
    double rate1, double rate2, double rate3, double p1_to_3, double p2_to_3,
    Discipline discipline, std::uint64_t seed);

class SchemeRegistry;

/// core/registry.hpp hookup: registers "network_q" (discipline taken from
/// the scenario) plus the aliases "network_q_fifo" and "network_q_ps" that
/// force the discipline — the equivalent-network estimators of §3.1 used
/// for cross-validation and the FIFO-vs-PS experiments.
void register_network_q_schemes(SchemeRegistry& registry);

}  // namespace routesim
