#include "core/experiment.hpp"

#include <atomic>
#include <thread>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace routesim {

std::vector<std::vector<double>> run_replications(
    const ReplicationPlan& plan,
    const std::function<std::vector<double>(std::uint64_t seed, int rep)>& body) {
  RS_EXPECTS(plan.replications >= 1);
  RS_EXPECTS(static_cast<bool>(body));

  const int requested = plan.threads > 0
                            ? plan.threads
                            : static_cast<int>(std::thread::hardware_concurrency());
  const int workers = std::max(1, std::min(requested, plan.replications));

  std::vector<std::vector<double>> results(
      static_cast<std::size_t>(plan.replications));
  std::atomic<int> next{0};

  const auto work = [&]() {
    for (;;) {
      const int rep = next.fetch_add(1, std::memory_order_relaxed);
      if (rep >= plan.replications) return;
      results[static_cast<std::size_t>(rep)] =
          body(derive_stream(plan.base_seed, static_cast<std::uint64_t>(rep)), rep);
    }
  };

  if (workers == 1) {
    work();
  } else {
    std::vector<std::jthread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(work);
  }

  const std::size_t metrics = results.front().size();
  for (const auto& row : results) {
    RS_ENSURES(row.size() == metrics);
  }
  return results;
}

std::vector<Summary> summarize_replications(
    const std::vector<std::vector<double>>& per_replication) {
  RS_EXPECTS(!per_replication.empty());
  std::vector<Summary> summaries(per_replication.front().size());
  for (const auto& row : per_replication) {
    for (std::size_t m = 0; m < summaries.size(); ++m) summaries[m].add(row[m]);
  }
  return summaries;
}

std::vector<ConfidenceInterval> replication_intervals(
    const std::vector<std::vector<double>>& per_replication, double confidence) {
  const auto summaries = summarize_replications(per_replication);
  std::vector<ConfidenceInterval> intervals;
  intervals.reserve(summaries.size());
  for (const auto& summary : summaries) {
    intervals.push_back(t_confidence_interval(summary, confidence));
  }
  return intervals;
}

}  // namespace routesim
