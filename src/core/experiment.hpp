#pragma once
/// \file experiment.hpp
/// \brief Thread-parallel replication runner with deterministic results.
///
/// Steady-state estimates in this library come from independent
/// replications: the same model is simulated `replications` times with
/// per-replication seeds derive_stream(base_seed, rep), and each metric's
/// across-replication mean gets a Student-t confidence interval.
/// Replications execute on a pool of std::jthread workers (HPC guideline:
/// explicit, portable parallelism with no shared mutable state — each
/// replication owns its simulator; results land in a pre-sized vector slot
/// owned by that replication), so the aggregate is bit-identical for any
/// thread count.

#include <cstdint>
#include <functional>
#include <vector>

#include "stats/ci.hpp"
#include "stats/summary.hpp"

namespace routesim {

/// How many independent replications to run, from which base seed, on how
/// many worker threads (results are identical for any thread count).
struct ReplicationPlan {
  int replications = 8;        ///< independent replications (t intervals need >= 2)
  std::uint64_t base_seed = 1; ///< replication r uses derive_stream(base_seed, r)
  /// 0 = use std::thread::hardware_concurrency().
  int threads = 0;

  friend bool operator==(const ReplicationPlan&, const ReplicationPlan&) = default;
};

/// Runs body(seed, rep_index) once per replication (in parallel) and
/// returns each replication's metric vector, indexed by replication.
/// Every replication must return the same number of metrics.
[[nodiscard]] std::vector<std::vector<double>> run_replications(
    const ReplicationPlan& plan,
    const std::function<std::vector<double>(std::uint64_t seed, int rep)>& body);

/// Convenience: per-metric across-replication summaries (merged in
/// replication order, hence deterministic).
[[nodiscard]] std::vector<Summary> summarize_replications(
    const std::vector<std::vector<double>>& per_replication);

/// Convenience: per-metric t confidence intervals.
[[nodiscard]] std::vector<ConfidenceInterval> replication_intervals(
    const std::vector<std::vector<double>>& per_replication,
    double confidence = 0.95);

}  // namespace routesim
