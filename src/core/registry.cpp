#include "core/registry.hpp"

#include <utility>

#include "core/equivalence.hpp"
#include "routing/batch_router.hpp"
#include "routing/deflection.hpp"
#include "routing/greedy_butterfly.hpp"
#include "routing/greedy_hypercube.hpp"
#include "routing/multicast.hpp"
#include "routing/pipelined_baseline.hpp"
#include "routing/valiant_mixing.hpp"

namespace routesim {

SchemeRegistry& SchemeRegistry::instance() {
  static SchemeRegistry* registry = [] {
    auto* r = new SchemeRegistry();
    // Built-in schemes register themselves next to their simulators.
    register_hypercube_greedy_scheme(*r);
    register_butterfly_greedy_scheme(*r);
    register_network_q_schemes(*r);
    register_pipelined_baseline_scheme(*r);
    register_valiant_mixing_scheme(*r);
    register_deflection_scheme(*r);
    register_batch_greedy_scheme(*r);
    register_multicast_scheme(*r);
    return r;
  }();
  return *registry;
}

void SchemeRegistry::add(SchemeInfo info) {
  auto name = info.name;
  schemes_[std::move(name)] = std::move(info);
}

const SchemeRegistry::SchemeInfo* SchemeRegistry::find(
    const std::string& name) const {
  const auto it = schemes_.find(name);
  return it == schemes_.end() ? nullptr : &it->second;
}

std::vector<std::string> SchemeRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(schemes_.size());
  for (const auto& [name, info] : schemes_) out.push_back(name);
  return out;
}

}  // namespace routesim
