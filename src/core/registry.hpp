#pragma once
/// \file registry.hpp
/// \brief The scheme registry: name -> factory compiling a `Scenario` into
///        a runnable replication body plus its theoretical bracket.
///
/// Each routing scheme registers itself under one or more names (the
/// hookups live next to the simulators: register_*_scheme in
/// src/routing/*.cpp and core/equivalence.cpp for the equivalent
/// networks).  `run(scenario)` resolves the scenario's scheme name here,
/// so every consumer — the façade, the bench driver, the tests — goes
/// through one uniform path: compile -> replicate -> intervals -> bounds.
///
/// A compiled replication body returns the six standard metrics
/// (metric::kDelay .. metric::kBacklog) followed by one value per entry of
/// `extra_metrics`; the engine turns each column into an
/// across-replication confidence interval.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/scenario.hpp"

namespace routesim {

namespace metric {
/// Layout of the standard metric columns every scheme produces.
enum : std::size_t {
  kDelay = 0,     ///< per-packet delay (generation to delivery)
  kPopulation,    ///< time-average packets in the network
  kThroughput,    ///< deliveries per time unit
  kHops,          ///< arcs traversed per delivered packet
  kLittle,        ///< Little's-law relative error (0 when not applicable)
  kBacklog,       ///< packets left in the network at the horizon
  kCount
};
}  // namespace metric

/// A scenario bound to a concrete scheme: ready-to-run replication body,
/// the names of any extra metric columns, and the paper's bracket.
struct CompiledScenario {
  /// One replication: simulate with this seed, return metric::kCount
  /// standard metrics followed by extra_metrics.size() named extras.
  std::function<std::vector<double>(std::uint64_t seed, int rep)> replicate;
  std::vector<std::string> extra_metrics;
  bool has_bounds = false;
  double lower_bound = 0.0;
  double upper_bound = 0.0;
};

/// Per-thread cached simulator: replication bodies call this instead of
/// constructing a fresh simulator, so kernel storage (packet pool, arc
/// queues, event set) is reused across the replications a worker thread
/// executes instead of being reallocated per rep.  Safe because
/// Sim::reset() reinitialises *all* state from the config — results are
/// bit-identical to a fresh construction regardless of which thread runs
/// which replication.
template <typename Sim, typename Config>
[[nodiscard]] Sim& reusable_sim(Config config) {
  thread_local std::unique_ptr<Sim> sim;
  if (sim == nullptr) {
    sim = std::make_unique<Sim>(std::move(config));
  } else {
    sim->reset(std::move(config));
  }
  return *sim;
}

/// The process-wide name -> scheme map behind run(): each entry compiles a
/// `Scenario` into a replication body, and optionally overrides the load
/// factor rule Scenario::rho() applies.
class SchemeRegistry {
 public:
  /// One registered scheme: its name, --list summary, compile hook, and
  /// optional load-factor rule.
  struct SchemeInfo {
    std::string name;
    std::string summary;  ///< one line for --list and error messages
    std::function<CompiledScenario(const Scenario&)> compile;
    /// Scheme-specific load-factor rule consulted by Scenario::rho();
    /// null means the default lambda*max_j P[B_j] rule applies.
    std::function<double(const Scenario&)> load_factor = {};
  };

  /// The process-wide registry, with every built-in scheme registered.
  static SchemeRegistry& instance();

  /// Registers (or replaces) a scheme.  Callable at any time — downstream
  /// users can plug in their own schemes and drive them through run().
  void add(SchemeInfo info);

  [[nodiscard]] const SchemeInfo* find(const std::string& name) const;
  [[nodiscard]] bool contains(const std::string& name) const {
    return find(name) != nullptr;
  }

  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  SchemeRegistry() = default;

  std::map<std::string, SchemeInfo> schemes_;
};

}  // namespace routesim
