#include "core/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/campaign.hpp"
#include "core/registry.hpp"
#include "des/kernel_backend.hpp"
#include "fault/fault_model.hpp"
#include "topology/ring.hpp"
#include "topology/topology.hpp"
#include "util/assert.hpp"
#include "workload/permutation.hpp"
#include "workload/trace.hpp"

namespace routesim {

Window Window::for_load(int d, double rho, double length) {
  RS_EXPECTS(d >= 1);
  RS_EXPECTS(rho >= 0.0 && rho < 1.0);
  RS_EXPECTS(length > 0.0);
  const double slack = 1.0 - rho;
  const double warmup = 50.0 + 10.0 * static_cast<double>(d) + 5.0 / (slack * slack);
  return Window{warmup, warmup + length};
}

namespace {

/// mask_pmf is validated against 2^d when it is *set*, but d can change
/// afterwards (another --set d=, a d sweep); re-check at every use so the
/// mismatch surfaces as a ScenarioError, not an internal contract failure.
void check_mask_pmf_matches_d(const std::vector<double>& mask_pmf, int d) {
  const auto expected = std::size_t{1} << d;
  if (mask_pmf.size() != expected) {
    throw ScenarioError("mask_pmf has " + std::to_string(mask_pmf.size()) +
                        " entries but d=" + std::to_string(d) + " needs 2^d = " +
                        std::to_string(expected) +
                        " (d changed after mask_pmf was set?)");
  }
}

}  // namespace

double Scenario::rho() const {
  if (rho_target.has_value()) return resolved().rho();
  const auto* info = SchemeRegistry::instance().find(scheme);
  if (info != nullptr && info->load_factor) return info->load_factor(*this);
  return default_rho();
}

Scenario Scenario::resolved() const {
  if (!rho_target.has_value()) return *this;
  Scenario out = *this;
  out.rho_target.reset();
  // Every load factor is linear in lambda, so probe it at lambda = 1 and
  // solve; this stays correct for any registry load-factor rule.
  Scenario probe = out;
  probe.lambda = 1.0;
  const double per_unit_lambda = probe.rho();
  if (per_unit_lambda <= 0.0) {
    throw ScenarioError(
        "cannot resolve rho=" + std::to_string(*rho_target) +
        " while the load factor is zero (p=0 or a degenerate workload?)");
  }
  out.lambda = *rho_target / per_unit_lambda;
  return out;
}

double Scenario::default_rho() const {
  if (uses_generic_topology()) {
    const auto topo = compiled_topology();
    if (workload == "permutation") {
      const auto table = permutation_table();
      if (table.size() != topo->num_nodes()) {
        throw ScenarioError(
            "workload=permutation needs a topology with 2^d nodes; topology=" +
            topology + " has " + std::to_string(topo->num_nodes()) +
            " (permutation families index 2^d sources)");
      }
      return lambda * static_cast<double>(
                          topology_greedy_congestion(*topo, table).max_load);
    }
    // The stability condition of the uniform-destination experiment:
    // lambda times the heaviest per-arc utilisation per unit rate.
    return lambda * topo->uniform_load_per_lambda();
  }
  if (workload == "permutation") {
    // Every packet of source x follows the fixed greedy path to pi(x), so
    // the heaviest arc carries lambda * max_load — the exact utilisation
    // for hypercube_greedy and a worst-case proxy for the other schemes.
    const auto table = permutation_table();
    return lambda * static_cast<double>(
                        hypercube_greedy_congestion(d, table).max_load);
  }
  if (workload == "general" && !mask_pmf.empty()) {
    check_mask_pmf_matches_d(mask_pmf, d);
    return bounds::load_factor_general(mask_pmf, d, lambda);
  }
  return lambda * effective_p();
}

DestinationDistribution Scenario::make_destinations() const {
  if (workload == "uniform") return DestinationDistribution::uniform(d);
  if (workload == "bit_flip" || workload == "trace") {
    return DestinationDistribution::bit_flip(d, p);
  }
  if (workload == "general") {
    if (mask_pmf.empty()) {
      throw ScenarioError("workload 'general' requires a mask_pmf (2^d entries)");
    }
    check_mask_pmf_matches_d(mask_pmf, d);
    return DestinationDistribution::general(d, mask_pmf);
  }
  if (workload == "permutation") {
    // Placeholder law: per-source destinations come from the fixed table
    // (permutation_table()), which schemes consume through the packet
    // kernel's fixed-destination mode.
    return DestinationDistribution::uniform(d);
  }
  throw ScenarioError("unknown workload '" + workload +
                      "' (known: bit_flip, uniform, general, trace, "
                      "permutation)");
}

std::vector<NodeId> Scenario::permutation_table() const {
  if (workload != "permutation") {
    throw ScenarioError("permutation_table() requires workload=permutation "
                        "(current workload: '" + workload + "')");
  }
  try {
    return Permutation::by_name(permutation, d, hotspot_frac, plan.base_seed)
        .table();
  } catch (const std::invalid_argument& error) {
    throw ScenarioError(error.what());
  }
}

std::shared_ptr<const std::vector<NodeId>> Scenario::shared_permutation_table()
    const {
  if (workload != "permutation") return nullptr;
  return std::make_shared<const std::vector<NodeId>>(permutation_table());
}

std::shared_ptr<const PacketTrace> Scenario::shared_trace() const {
  if (trace_file.empty()) return nullptr;
  if (workload != "trace") {
    throw ScenarioError("trace_file requires workload=trace (current "
                        "workload: '" + workload + "')");
  }
  try {
    return std::make_shared<const PacketTrace>(load_trace_jsonl(trace_file, d));
  } catch (const std::invalid_argument& error) {
    throw ScenarioError(error.what());
  } catch (const std::runtime_error& error) {
    throw ScenarioError(error.what());
  }
}

FaultPolicy Scenario::resolved_fault_policy(
    std::initializer_list<FaultPolicy> supported) const {
  if (!faults_active()) return FaultPolicy::kNone;
  if (supported.size() == 0) {
    throw ScenarioError("scheme '" + scheme +
                        "' does not support fault injection (clear fault_rate,"
                        " node_fault_rate, fault_mtbf, fault_mttr, storm_rate"
                        " and storm_duration)");
  }
  if ((fault_mtbf > 0.0) != (fault_mttr > 0.0)) {
    throw ScenarioError(
        "dynamic faults need both fault_mtbf and fault_mttr > 0 (got mtbf=" +
        std::to_string(fault_mtbf) + ", mttr=" + std::to_string(fault_mttr) +
        ")");
  }
  if ((storm_rate > 0.0) != (storm_duration > 0.0)) {
    throw ScenarioError(
        "fault storms need both storm_rate and storm_duration > 0 (got "
        "storm_rate=" + fmt_shortest(storm_rate) + ", storm_duration=" +
        fmt_shortest(storm_duration) + ") — did you mean to also set " +
        (storm_rate > 0.0 ? "storm_duration" : "storm_rate") + "?");
  }
  FaultPolicy policy = FaultPolicy::kNone;
  try {
    policy = parse_fault_policy(fault_policy);
  } catch (const std::invalid_argument& error) {
    throw ScenarioError(error.what());
  }
  for (const FaultPolicy candidate : supported) {
    if (candidate == policy) return policy;
  }
  std::string names;
  for (const FaultPolicy candidate : supported) {
    if (!names.empty()) names += ", ";
    names += fault_policy_name(candidate);
  }
  throw ScenarioError("fault_policy '" + fault_policy +
                      "' is not supported by scheme '" + scheme +
                      "' (supported: " + names + ")");
}

KernelBackend Scenario::resolved_backend(
    std::initializer_list<KernelBackend> supported) const {
  KernelBackend parsed = KernelBackend::kScalar;
  try {
    parsed = parse_kernel_backend(backend);
  } catch (const std::invalid_argument& error) {
    throw ScenarioError(error.what());
  }
  // The scalar kernel is every scheme's oracle; only alternatives need to be
  // in the scheme's supported list.
  if (parsed == KernelBackend::kScalar) return parsed;
  for (const KernelBackend candidate : supported) {
    if (candidate == parsed) return parsed;
  }
  std::string names = "scalar";
  for (const KernelBackend candidate : supported) {
    if (candidate == KernelBackend::kScalar) continue;
    names += ", ";
    names += kernel_backend_name(candidate);
  }
  throw ScenarioError("scheme '" + scheme + "' does not support backend '" +
                      backend + "' (supported: " + names + ")");
}

Window Scenario::resolved_window() const {
  if (!window.is_auto()) {
    if (window.warmup < 0.0 || window.horizon < window.warmup) {
      throw ScenarioError("window horizon must be >= warmup >= 0 (got warmup=" +
                          std::to_string(window.warmup) + ", horizon=" +
                          std::to_string(window.horizon) + ")");
    }
    return window;
  }
  const double load = rho();
  if (load >= 1.0) {
    throw ScenarioError(
        "the automatic window needs rho < 1 (got rho = " + std::to_string(load) +
        "); set warmup/horizon explicitly for unstable runs");
  }
  // Warmup scales with the network diameter; for the generic topologies
  // that can exceed d (a 2^d-node ring has diameter 2^(d-1)).
  int effective_d = d;
  if (uses_generic_topology()) {
    effective_d = std::max(effective_d, compiled_topology()->diameter());
  }
  return Window::for_load(effective_d, load, measure);
}

std::string Scenario::resolved_topology(
    std::initializer_list<const char*> supported) const {
  RS_EXPECTS(supported.size() > 0);
  if (topology == "native") return *supported.begin();
  for (const char* candidate : supported) {
    if (topology == candidate) return topology;
  }
  std::string names;
  for (const char* candidate : supported) {
    if (!names.empty()) names += ", ";
    names += candidate;
  }
  throw ScenarioError("scheme '" + scheme + "' does not support topology '" +
                      topology + "' (supported: native, " + names + ")");
}

TopologySpec Scenario::topology_spec() const {
  TopologySpec spec;
  spec.name = topology == "native" ? "hypercube" : topology;
  spec.d = d;
  spec.ring_chords = ring_chords;
  spec.torus_dims = torus_dims;
  return spec;
}

std::shared_ptr<const Topology> Scenario::compiled_topology() const {
  try {
    return make_topology(topology_spec());
  } catch (const std::invalid_argument& error) {
    throw ScenarioError(error.what());
  }
}

namespace {

double parse_double(const std::string& key, const std::string& value) {
  std::size_t pos = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(value, &pos);
  } catch (const std::exception&) {
    throw ScenarioError("bad value '" + value + "' for key '" + key + "'");
  }
  if (pos != value.size()) {
    throw ScenarioError("bad value '" + value + "' for key '" + key + "'");
  }
  return parsed;
}

int parse_int(const std::string& key, const std::string& value) {
  const double parsed = parse_double(key, value);
  const int rounded = static_cast<int>(std::lround(parsed));
  if (static_cast<double>(rounded) != parsed) {
    throw ScenarioError("key '" + key + "' needs an integer, got '" + value + "'");
  }
  return rounded;
}

/// Levenshtein edit distance, for did-you-mean suggestions on unknown keys.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitution = diagonal + (a[i - 1] != b[j - 1] ? 1 : 0);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
    }
  }
  return row[b.size()];
}

}  // namespace

std::string fmt_shortest(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  double parsed = 0.0;
  for (const int precision : {1, 3, 6, 9, 12, 15}) {
    char candidate[32];
    std::snprintf(candidate, sizeof candidate, "%.*g", precision, value);
    if (std::sscanf(candidate, "%lf", &parsed) == 1 && parsed == value) {
      return candidate;
    }
  }
  return buffer;
}

void Scenario::set(const std::string& key, const std::string& value) {
  if (key == "d") {
    d = parse_int(key, value);
  } else if (key == "topology") {
    const auto& families = topology_names();
    const bool known =
        value == "native" ||
        std::find(families.begin(), families.end(), value) != families.end();
    if (!known) {
      std::vector<std::string> candidates = families;
      candidates.insert(candidates.begin(), "native");
      std::string suggestions;
      std::size_t best = 4;  // suggest only close matches
      for (const auto& candidate : candidates) {
        best = std::min(best, edit_distance(value, candidate));
      }
      for (const auto& candidate : candidates) {
        if (edit_distance(value, candidate) == best) {
          suggestions += suggestions.empty() ? candidate : ", " + candidate;
        }
      }
      std::string message = "unknown topology '" + value + "'";
      if (!suggestions.empty()) {
        message += " — did you mean: " + suggestions + "?";
      }
      message += " (known:";
      for (const auto& candidate : candidates) message += ' ' + candidate;
      message += ')';
      throw ScenarioError(message);
    }
    topology = value;
  } else if (key == "ring_chords") {
    // Format check now; the strides are re-validated against n = 2^d at
    // scenario-compile time, when d is final.  Parsing against the widest
    // supported ring keeps format errors (garbage, duplicates, stride < 2)
    // immediate.
    try {
      (void)parse_ring_chords(value, /*d=*/14);
    } catch (const std::invalid_argument& error) {
      throw ScenarioError(error.what());
    }
    ring_chords = value;
  } else if (key == "torus_dims") {
    try {
      (void)parse_torus_dims(value);
    } catch (const std::invalid_argument& error) {
      throw ScenarioError(error.what());
    }
    torus_dims = value;
  } else if (key == "lambda") {
    lambda = parse_double(key, value);
    rho_target.reset();  // an explicit lambda overrides any pending target
  } else if (key == "rho") {
    const double target = parse_double(key, value);
    if (target < 0.0) {
      throw ScenarioError("rho must be >= 0, got '" + value + "'");
    }
    // Deferred: resolved() solves target -> lambda once every other knob
    // (p, workload, d, scheme) is final, so `--set rho=0.6 --set p=0.7`
    // and the reverse order agree.
    rho_target = target;
  } else if (key == "p") {
    p = parse_double(key, value);
  } else if (key == "tau") {
    tau = parse_double(key, value);
  } else if (key == "discipline") {
    if (value == "fifo") {
      discipline = Discipline::kFifo;
    } else if (value == "ps") {
      discipline = Discipline::kPs;
    } else {
      throw ScenarioError("discipline must be 'fifo' or 'ps', got '" + value + "'");
    }
  } else if (key == "workload") {
    workload = value;
  } else if (key == "permutation") {
    // Validate the family name immediately (the table itself is built at
    // scenario-compile time, when d is final).
    try {
      (void)Permutation::summary(value);
    } catch (const std::invalid_argument& error) {
      throw ScenarioError(error.what());
    }
    permutation = value;
  } else if (key == "hotspot_frac") {
    const double parsed = parse_double(key, value);
    if (!(parsed >= 0.0 && parsed <= 1.0)) {
      throw ScenarioError("hotspot_frac must be in [0, 1], got '" + value + "'");
    }
    hotspot_frac = parsed;
  } else if (key == "fanout") {
    fanout = parse_int(key, value);
  } else if (key == "unicast_baseline") {
    unicast_baseline = parse_int(key, value) != 0;
  } else if (key == "buffers") {
    buffer_capacity = static_cast<std::uint32_t>(parse_int(key, value));
  } else if (key == "warmup") {
    window.warmup = parse_double(key, value);
  } else if (key == "horizon") {
    window.horizon = parse_double(key, value);
  } else if (key == "measure") {
    measure = parse_double(key, value);
  } else if (key == "reps") {
    plan.replications = parse_int(key, value);
  } else if (key == "seed") {
    // Full 64-bit parse: going through a double would corrupt seeds above
    // 2^53 and silently wrap negatives.
    std::size_t pos = 0;
    try {
      if (value.find('-') != std::string::npos) throw std::invalid_argument("");
      plan.base_seed = std::stoull(value, &pos);
    } catch (const std::exception&) {
      throw ScenarioError("bad value '" + value + "' for key 'seed'");
    }
    if (pos != value.size()) {
      throw ScenarioError("bad value '" + value + "' for key 'seed'");
    }
  } else if (key == "threads") {
    plan.threads = parse_int(key, value);
  } else if (key == "backend") {
    try {
      (void)parse_kernel_backend(value);
    } catch (const std::invalid_argument& error) {
      throw ScenarioError(error.what());
    }
    backend = value;
  } else if (key == "fault_rate") {
    fault_rate = parse_double(key, value);
    if (fault_rate < 0.0 || fault_rate > 1.0) {
      throw ScenarioError("fault_rate must be in [0, 1], got '" + value + "'");
    }
  } else if (key == "node_fault_rate") {
    node_fault_rate = parse_double(key, value);
    if (node_fault_rate < 0.0 || node_fault_rate > 1.0) {
      throw ScenarioError("node_fault_rate must be in [0, 1], got '" + value +
                          "'");
    }
  } else if (key == "fault_mtbf") {
    fault_mtbf = parse_double(key, value);
    if (fault_mtbf < 0.0) throw ScenarioError("fault_mtbf must be >= 0");
  } else if (key == "fault_mttr") {
    fault_mttr = parse_double(key, value);
    if (fault_mttr < 0.0) throw ScenarioError("fault_mttr must be >= 0");
  } else if (key == "storm_rate") {
    storm_rate = parse_double(key, value);
    if (!(storm_rate >= 0.0) || !std::isfinite(storm_rate)) {
      throw ScenarioError("storm_rate must be finite and >= 0, got '" + value +
                          "'");
    }
  } else if (key == "storm_radius") {
    storm_radius = parse_int(key, value);
    if (storm_radius < 0) throw ScenarioError("storm_radius must be >= 0");
  } else if (key == "storm_duration") {
    storm_duration = parse_double(key, value);
    if (!(storm_duration >= 0.0) || !std::isfinite(storm_duration)) {
      throw ScenarioError("storm_duration must be finite and >= 0, got '" +
                          value + "'");
    }
  } else if (key == "trace_file") {
    // The textual scenario form is space-delimited, so a path with
    // whitespace could never round-trip; reject it up front.
    for (const char c : value) {
      if (std::isspace(static_cast<unsigned char>(c))) {
        throw ScenarioError("trace_file path cannot contain whitespace, got '" +
                            value + "'");
      }
    }
    trace_file = value;
  } else if (key == "fault_policy") {
    try {
      (void)parse_fault_policy(value);
    } catch (const std::invalid_argument& error) {
      throw ScenarioError(error.what());
    }
    fault_policy = value;
  } else if (key == "ttl") {
    ttl = parse_int(key, value);
    if (ttl < 0) throw ScenarioError("ttl must be >= 0");
  } else if (key == "mask_pmf") {
    // Inline comma/whitespace-separated list, or @path to read the same
    // format from a file.  Needs 2^d entries: set d (and workload=general)
    // before mask_pmf.
    std::string text = value;
    if (!value.empty() && value.front() == '@') {
      std::ifstream file(value.substr(1));
      if (!file) {
        throw ScenarioError("cannot open mask_pmf file '" + value.substr(1) +
                            "'");
      }
      std::ostringstream contents;
      contents << file.rdbuf();
      text = contents.str();
    }
    for (char& c : text) {
      if (c == ',') c = ' ';
    }
    std::istringstream in(text);
    std::vector<double> pmf;
    double entry = 0.0;
    while (in >> entry) pmf.push_back(entry);
    if (!in.eof()) {
      throw ScenarioError("mask_pmf has a non-numeric entry (entry " +
                          std::to_string(pmf.size() + 1) + ")");
    }
    const auto expected = std::size_t{1} << d;
    if (pmf.size() != expected) {
      throw ScenarioError("mask_pmf needs 2^d = " + std::to_string(expected) +
                          " entries for d=" + std::to_string(d) + ", got " +
                          std::to_string(pmf.size()) +
                          " (set d before mask_pmf)");
    }
    double sum = 0.0;
    for (const double probability : pmf) {
      if (!std::isfinite(probability) || probability < 0.0) {
        throw ScenarioError("mask_pmf entries must be finite and >= 0");
      }
      sum += probability;
    }
    if (sum <= 0.0) throw ScenarioError("mask_pmf must have a positive sum");
    // Normalise, but only when the sum is meaningfully off 1: dividing an
    // already-normalised pmf by its 1-plus-rounding sum would perturb the
    // entries by an ulp on every parse and break the exact textual round
    // trip (to_key_values() emits the stored values exactly).
    if (std::abs(sum - 1.0) > 1e-9) {
      for (double& probability : pmf) probability /= sum;
    }
    mask_pmf = std::move(pmf);
  } else {
    const auto& known = known_set_keys();
    std::string suggestions;
    std::size_t best = 4;  // suggest only close matches
    for (const auto& candidate : known) {
      best = std::min(best, edit_distance(key, candidate));
    }
    for (const auto& candidate : known) {
      if (edit_distance(key, candidate) == best) {
        suggestions += suggestions.empty() ? candidate : ", " + candidate;
      }
    }
    std::string message = "unknown scenario key '" + key + "'";
    if (!suggestions.empty()) message += " — did you mean: " + suggestions + "?";
    message += " (known:";
    for (const auto& candidate : known) message += ' ' + candidate;
    message += ')';
    throw ScenarioError(message);
  }
}

const std::vector<std::string>& Scenario::known_set_keys() {
  static const std::vector<std::string> keys{
      "d",          "topology",       "ring_chords", "torus_dims",
      "lambda",     "rho",            "p",
      "tau",        "discipline",     "workload",   "trace_file",
      "mask_pmf",
      "permutation", "hotspot_frac",
      "fanout",     "unicast_baseline", "buffers",
      "fault_rate", "node_fault_rate", "fault_mtbf", "fault_mttr",
      "storm_rate", "storm_radius",   "storm_duration",
      "fault_policy", "ttl",
      "warmup",     "horizon",        "measure",    "reps",
      "seed",       "threads",        "backend"};
  return keys;
}

std::vector<std::pair<std::string, std::string>> Scenario::to_key_values() const {
  std::vector<std::pair<std::string, std::string>> pairs{
      {"d", std::to_string(d)},
      {"topology", topology},
      {"torus_dims", torus_dims},
      {"lambda", fmt_shortest(lambda)},
      {"p", fmt_shortest(p)},
      {"tau", fmt_shortest(tau)},
      {"discipline", discipline == Discipline::kPs ? "ps" : "fifo"},
      {"workload", workload},
  };
  if (!trace_file.empty()) {
    // Right after workload (the key it refines); omitted when empty so
    // generated-trace and non-trace scenarios stay uncluttered.
    pairs.emplace_back("trace_file", trace_file);
  }
  if (!ring_chords.empty()) {
    // After topology, before the load keys; omitted when empty (like
    // mask_pmf) so plain-ring and non-ring scenarios stay uncluttered.
    pairs.insert(pairs.begin() + 2, {"ring_chords", ring_chords});
  }
  if (rho_target.has_value()) {
    // After lambda, so parse() replays set("lambda") (clearing any stale
    // target) before set("rho") re-arms the deferred target — the pair
    // round-trips exactly.
    const auto lambda_at = std::find_if(
        pairs.begin(), pairs.end(),
        [](const auto& pair) { return pair.first == "lambda"; });
    pairs.insert(lambda_at + 1, {"rho", fmt_shortest(*rho_target)});
  }
  if (!mask_pmf.empty()) {
    // Inline CSV form; the entries are already normalised, so the round
    // trip through set() is exact.
    std::string csv;
    for (const double probability : mask_pmf) {
      if (!csv.empty()) csv += ',';
      csv += fmt_shortest(probability);
    }
    pairs.emplace_back("mask_pmf", std::move(csv));
  }
  const std::vector<std::pair<std::string, std::string>> rest{
      {"permutation", permutation},
      {"hotspot_frac", fmt_shortest(hotspot_frac)},
      {"fanout", std::to_string(fanout)},
      {"unicast_baseline", unicast_baseline ? "1" : "0"},
      {"buffers", std::to_string(buffer_capacity)},
      {"fault_rate", fmt_shortest(fault_rate)},
      {"node_fault_rate", fmt_shortest(node_fault_rate)},
      {"fault_mtbf", fmt_shortest(fault_mtbf)},
      {"fault_mttr", fmt_shortest(fault_mttr)},
      {"storm_rate", fmt_shortest(storm_rate)},
      {"storm_radius", std::to_string(storm_radius)},
      {"storm_duration", fmt_shortest(storm_duration)},
      {"fault_policy", fault_policy},
      {"ttl", std::to_string(ttl)},
      {"warmup", fmt_shortest(window.warmup)},
      {"horizon", fmt_shortest(window.horizon)},
      {"measure", fmt_shortest(measure)},
      {"reps", std::to_string(plan.replications)},
      {"seed", std::to_string(plan.base_seed)},
      {"threads", std::to_string(plan.threads)},
      {"backend", backend},
  };
  pairs.insert(pairs.end(), rest.begin(), rest.end());
  return pairs;
}

std::string Scenario::to_string() const {
  std::ostringstream os;
  os << scheme;
  for (const auto& [key, value] : to_key_values()) os << ' ' << key << '=' << value;
  return os.str();
}

Scenario Scenario::parse(const std::vector<std::string>& args) {
  if (args.empty()) throw ScenarioError("empty scenario: expected a scheme name");
  Scenario scenario;
  scenario.scheme = args.front();
  if (scenario.scheme.find('=') != std::string::npos) {
    throw ScenarioError("first scenario token must be the scheme name, got '" +
                        scenario.scheme + "'");
  }
  for (std::size_t i = 1; i < args.size(); ++i) {
    const auto eq = args[i].find('=');
    if (eq == std::string::npos) {
      throw ScenarioError("expected key=value, got '" + args[i] + "'");
    }
    scenario.set(args[i].substr(0, eq), args[i].substr(eq + 1));
  }
  return scenario;
}

const ConfidenceInterval* RunResult::extra(const std::string& name) const {
  for (const auto& [key, interval] : extras) {
    if (key == name) return &interval;
  }
  return nullptr;
}

bool RunResult::within_bracket(double slack) const {
  if (!has_bounds) return true;
  return delay.mean >= lower_bound - delay.half_width - slack &&
         delay.mean <= upper_bound + delay.half_width + slack;
}

RunResult run(const Scenario& scenario) {
  // A one-cell campaign: same compile -> replicate -> intervals -> bounds
  // pipeline, now scheduled by the shared engine (core/campaign.hpp).
  return Engine().run_one(scenario);
}

SweepSpec SweepSpec::parse(const std::string& text) {
  const auto eq = text.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw ScenarioError("sweep must look like key=start:stop[:step], got '" +
                        text + "'");
  }
  SweepSpec spec;
  spec.key = text.substr(0, eq);
  const std::string range = text.substr(eq + 1);
  const auto colon1 = range.find(':');
  if (colon1 == std::string::npos) {
    throw ScenarioError("sweep range needs start:stop, got '" + range + "'");
  }
  spec.start = parse_double(spec.key, range.substr(0, colon1));
  const auto colon2 = range.find(':', colon1 + 1);
  if (colon2 == std::string::npos) {
    spec.stop = parse_double(spec.key, range.substr(colon1 + 1));
  } else {
    spec.stop = parse_double(spec.key, range.substr(colon1 + 1, colon2 - colon1 - 1));
    spec.step = parse_double(spec.key, range.substr(colon2 + 1));
  }
  // Non-finite endpoints would otherwise fail *silently*: a NaN start or
  // step makes every loop comparison false (an empty sweep), and an
  // infinite step never advances past stop (an endless one).
  if (!std::isfinite(spec.start) || !std::isfinite(spec.stop) ||
      !std::isfinite(spec.step)) {
    throw ScenarioError("sweep start/stop/step must be finite, got '" + text +
                        "'");
  }
  if (spec.step <= 0.0) throw ScenarioError("sweep step must be positive");
  if (spec.stop < spec.start) {
    throw ScenarioError("sweep stop must be >= start");
  }
  return spec;
}

std::vector<double> SweepSpec::values() const {
  // Same validation as parse(), for directly-constructed specs: a bad spec
  // must throw, never degenerate into an empty or endless sweep.
  if (!std::isfinite(start) || !std::isfinite(stop) || !std::isfinite(step)) {
    throw ScenarioError("sweep start/stop/step must be finite");
  }
  if (step <= 0.0) throw ScenarioError("sweep step must be positive");
  if (stop < start) throw ScenarioError("sweep stop must be >= start");
  // Generate by index (start + i*step), not accumulation, so later points
  // carry no summed rounding error; include stop within a half-step
  // tolerance and clamp any overshoot onto it.
  const auto last =
      static_cast<long long>(std::floor((stop - start) / step + 0.5));
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(last) + 1);
  for (long long i = 0; i <= last; ++i) {
    out.push_back(std::min(start + static_cast<double>(i) * step, stop));
  }
  return out;
}

const std::vector<std::string>& SweepSpec::known_keys() {
  static const std::vector<std::string> keys{
      "rho",  "lambda",  "p",    "tau",        "d",
      "fanout", "measure", "reps", "seed",
      "fault_rate", "node_fault_rate", "storm_rate"};
  return keys;
}

void apply_sweep_value(Scenario& scenario, const std::string& key, double value) {
  if (key == "d" || key == "fanout" || key == "reps" || key == "seed") {
    scenario.set(key, std::to_string(std::llround(value)));
  } else {
    scenario.set(key, fmt_shortest(value));
  }
}

}  // namespace routesim
