#include "core/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "core/registry.hpp"
#include "util/assert.hpp"

namespace routesim {

Window Window::for_load(int d, double rho, double length) {
  RS_EXPECTS(d >= 1);
  RS_EXPECTS(rho >= 0.0 && rho < 1.0);
  RS_EXPECTS(length > 0.0);
  const double slack = 1.0 - rho;
  const double warmup = 50.0 + 10.0 * static_cast<double>(d) + 5.0 / (slack * slack);
  return Window{warmup, warmup + length};
}

double Scenario::rho() const {
  const auto* info = SchemeRegistry::instance().find(scheme);
  if (info != nullptr && info->load_factor) return info->load_factor(*this);
  if (workload == "general" && !mask_pmf.empty()) {
    return bounds::load_factor_general(mask_pmf, d, lambda);
  }
  return lambda * effective_p();
}

DestinationDistribution Scenario::make_destinations() const {
  if (workload == "uniform") return DestinationDistribution::uniform(d);
  if (workload == "bit_flip" || workload == "trace") {
    return DestinationDistribution::bit_flip(d, p);
  }
  if (workload == "general") {
    if (mask_pmf.empty()) {
      throw ScenarioError("workload 'general' requires a mask_pmf (2^d entries)");
    }
    return DestinationDistribution::general(d, mask_pmf);
  }
  throw ScenarioError("unknown workload '" + workload +
                      "' (known: bit_flip, uniform, general, trace)");
}

Window Scenario::resolved_window() const {
  if (!window.is_auto()) {
    if (window.warmup < 0.0 || window.horizon < window.warmup) {
      throw ScenarioError("window horizon must be >= warmup >= 0 (got warmup=" +
                          std::to_string(window.warmup) + ", horizon=" +
                          std::to_string(window.horizon) + ")");
    }
    return window;
  }
  const double load = rho();
  if (load >= 1.0) {
    throw ScenarioError(
        "the automatic window needs rho < 1 (got rho = " + std::to_string(load) +
        "); set warmup/horizon explicitly for unstable runs");
  }
  return Window::for_load(d, load, measure);
}

namespace {

double parse_double(const std::string& key, const std::string& value) {
  std::size_t pos = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(value, &pos);
  } catch (const std::exception&) {
    throw ScenarioError("bad value '" + value + "' for key '" + key + "'");
  }
  if (pos != value.size()) {
    throw ScenarioError("bad value '" + value + "' for key '" + key + "'");
  }
  return parsed;
}

int parse_int(const std::string& key, const std::string& value) {
  const double parsed = parse_double(key, value);
  const int rounded = static_cast<int>(std::lround(parsed));
  if (static_cast<double>(rounded) != parsed) {
    throw ScenarioError("key '" + key + "' needs an integer, got '" + value + "'");
  }
  return rounded;
}

/// Shortest decimal form that round-trips through stod.
std::string fmt_double(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  double parsed = 0.0;
  for (const int precision : {1, 3, 6, 9, 12, 15}) {
    char candidate[32];
    std::snprintf(candidate, sizeof candidate, "%.*g", precision, value);
    if (std::sscanf(candidate, "%lf", &parsed) == 1 && parsed == value) {
      return candidate;
    }
  }
  return buffer;
}

}  // namespace

void Scenario::set(const std::string& key, const std::string& value) {
  if (key == "d") {
    d = parse_int(key, value);
  } else if (key == "lambda") {
    lambda = parse_double(key, value);
  } else if (key == "rho") {
    const double target = parse_double(key, value);
    // Every load factor is linear in lambda, so probe it at lambda = 1 and
    // solve; this stays correct for any registry load-factor rule.
    Scenario probe = *this;
    probe.lambda = 1.0;
    const double per_unit_lambda = probe.rho();
    if (per_unit_lambda <= 0.0) {
      throw ScenarioError(
          "cannot set rho while the load factor is zero (set p/workload first)");
    }
    lambda = target / per_unit_lambda;
  } else if (key == "p") {
    p = parse_double(key, value);
  } else if (key == "tau") {
    tau = parse_double(key, value);
  } else if (key == "discipline") {
    if (value == "fifo") {
      discipline = Discipline::kFifo;
    } else if (value == "ps") {
      discipline = Discipline::kPs;
    } else {
      throw ScenarioError("discipline must be 'fifo' or 'ps', got '" + value + "'");
    }
  } else if (key == "workload") {
    workload = value;
  } else if (key == "fanout") {
    fanout = parse_int(key, value);
  } else if (key == "unicast_baseline") {
    unicast_baseline = parse_int(key, value) != 0;
  } else if (key == "buffers") {
    buffer_capacity = static_cast<std::uint32_t>(parse_int(key, value));
  } else if (key == "warmup") {
    window.warmup = parse_double(key, value);
  } else if (key == "horizon") {
    window.horizon = parse_double(key, value);
  } else if (key == "measure") {
    measure = parse_double(key, value);
  } else if (key == "reps") {
    plan.replications = parse_int(key, value);
  } else if (key == "seed") {
    // Full 64-bit parse: going through a double would corrupt seeds above
    // 2^53 and silently wrap negatives.
    std::size_t pos = 0;
    try {
      if (value.find('-') != std::string::npos) throw std::invalid_argument("");
      plan.base_seed = std::stoull(value, &pos);
    } catch (const std::exception&) {
      throw ScenarioError("bad value '" + value + "' for key 'seed'");
    }
    if (pos != value.size()) {
      throw ScenarioError("bad value '" + value + "' for key 'seed'");
    }
  } else if (key == "threads") {
    plan.threads = parse_int(key, value);
  } else {
    throw ScenarioError(
        "unknown scenario key '" + key +
        "' (known: d, lambda, rho, p, tau, discipline, workload, fanout, "
        "unicast_baseline, buffers, warmup, horizon, measure, reps, seed, "
        "threads)");
  }
}

std::vector<std::pair<std::string, std::string>> Scenario::to_key_values() const {
  return {
      {"d", std::to_string(d)},
      {"lambda", fmt_double(lambda)},
      {"p", fmt_double(p)},
      {"tau", fmt_double(tau)},
      {"discipline", discipline == Discipline::kPs ? "ps" : "fifo"},
      {"workload", workload},
      {"fanout", std::to_string(fanout)},
      {"unicast_baseline", unicast_baseline ? "1" : "0"},
      {"buffers", std::to_string(buffer_capacity)},
      {"warmup", fmt_double(window.warmup)},
      {"horizon", fmt_double(window.horizon)},
      {"measure", fmt_double(measure)},
      {"reps", std::to_string(plan.replications)},
      {"seed", std::to_string(plan.base_seed)},
      {"threads", std::to_string(plan.threads)},
  };
}

std::string Scenario::to_string() const {
  std::ostringstream os;
  os << scheme;
  for (const auto& [key, value] : to_key_values()) os << ' ' << key << '=' << value;
  return os.str();
}

Scenario Scenario::parse(const std::vector<std::string>& args) {
  if (args.empty()) throw ScenarioError("empty scenario: expected a scheme name");
  Scenario scenario;
  scenario.scheme = args.front();
  if (scenario.scheme.find('=') != std::string::npos) {
    throw ScenarioError("first scenario token must be the scheme name, got '" +
                        scenario.scheme + "'");
  }
  for (std::size_t i = 1; i < args.size(); ++i) {
    const auto eq = args[i].find('=');
    if (eq == std::string::npos) {
      throw ScenarioError("expected key=value, got '" + args[i] + "'");
    }
    scenario.set(args[i].substr(0, eq), args[i].substr(eq + 1));
  }
  return scenario;
}

const ConfidenceInterval* RunResult::extra(const std::string& name) const {
  for (const auto& [key, interval] : extras) {
    if (key == name) return &interval;
  }
  return nullptr;
}

bool RunResult::within_bracket(double slack) const {
  if (!has_bounds) return true;
  return delay.mean >= lower_bound - delay.half_width - slack &&
         delay.mean <= upper_bound + delay.half_width + slack;
}

RunResult run(const Scenario& scenario) {
  const auto* info = SchemeRegistry::instance().find(scenario.scheme);
  if (info == nullptr) {
    std::string known;
    for (const auto& name : SchemeRegistry::instance().names()) {
      known += known.empty() ? name : ", " + name;
    }
    throw ScenarioError("unknown scheme '" + scenario.scheme + "' (known: " +
                        known + ")");
  }
  const CompiledScenario compiled = info->compile(scenario);
  const auto rows = run_replications(scenario.plan, compiled.replicate);
  const auto intervals = replication_intervals(rows);
  const auto summaries = summarize_replications(rows);
  RS_ENSURES(intervals.size() == metric::kCount + compiled.extra_metrics.size());

  RunResult result;
  result.delay = intervals[metric::kDelay];
  result.population = intervals[metric::kPopulation];
  result.throughput = intervals[metric::kThroughput];
  result.mean_hops = summaries[metric::kHops].mean();
  result.max_little_error = summaries[metric::kLittle].max();
  result.mean_final_backlog = summaries[metric::kBacklog].mean();
  result.has_bounds = compiled.has_bounds;
  result.lower_bound = compiled.lower_bound;
  result.upper_bound = compiled.upper_bound;
  for (std::size_t i = 0; i < compiled.extra_metrics.size(); ++i) {
    result.extras.emplace_back(compiled.extra_metrics[i],
                               intervals[metric::kCount + i]);
  }
  result.rho = scenario.rho();
  return result;
}

SweepSpec SweepSpec::parse(const std::string& text) {
  const auto eq = text.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw ScenarioError("sweep must look like key=start:stop[:step], got '" +
                        text + "'");
  }
  SweepSpec spec;
  spec.key = text.substr(0, eq);
  const std::string range = text.substr(eq + 1);
  const auto colon1 = range.find(':');
  if (colon1 == std::string::npos) {
    throw ScenarioError("sweep range needs start:stop, got '" + range + "'");
  }
  spec.start = parse_double(spec.key, range.substr(0, colon1));
  const auto colon2 = range.find(':', colon1 + 1);
  if (colon2 == std::string::npos) {
    spec.stop = parse_double(spec.key, range.substr(colon1 + 1));
  } else {
    spec.stop = parse_double(spec.key, range.substr(colon1 + 1, colon2 - colon1 - 1));
    spec.step = parse_double(spec.key, range.substr(colon2 + 1));
  }
  // Non-finite endpoints would otherwise fail *silently*: a NaN start or
  // step makes every loop comparison false (an empty sweep), and an
  // infinite step never advances past stop (an endless one).
  if (!std::isfinite(spec.start) || !std::isfinite(spec.stop) ||
      !std::isfinite(spec.step)) {
    throw ScenarioError("sweep start/stop/step must be finite, got '" + text +
                        "'");
  }
  if (spec.step <= 0.0) throw ScenarioError("sweep step must be positive");
  if (spec.stop < spec.start) {
    throw ScenarioError("sweep stop must be >= start");
  }
  return spec;
}

std::vector<double> SweepSpec::values() const {
  std::vector<double> out;
  // Half-step tolerance so 0.1:0.9:0.1 includes 0.9 despite rounding.
  for (double v = start; v <= stop + step / 2.0; v += step) {
    out.push_back(std::min(v, stop));
  }
  return out;
}

void apply_sweep_value(Scenario& scenario, const std::string& key, double value) {
  if (key == "d" || key == "fanout" || key == "reps" || key == "seed") {
    scenario.set(key, std::to_string(std::llround(value)));
  } else {
    scenario.set(key, fmt_double(value));
  }
}

}  // namespace routesim
