#pragma once
/// \file scenario.hpp
/// \brief The declarative experiment API: a `Scenario` value names one
///        point of the experiment space *topology x scheme x workload x
///        load x window x replication plan*, and `run(scenario)` produces a
///        `RunResult` with confidence intervals and the paper's bounds.
///
/// Every experiment in this library — the paper's tables (Props. 12-17),
/// the ablations and the related-work comparators — is a `Scenario`;
/// schemes are looked up by name in the `SchemeRegistry`
/// (core/registry.hpp), so adding a sweep or a workload is a data change,
/// not a new binary.  Scenarios round-trip through the `key=value` textual
/// form used by the `routesim_bench` CLI (`--scenario NAME --set rho=0.6`).
///
/// The legacy façade (core/simulation.hpp) is a thin shim over this API
/// and produces bit-identical results for the same seed and plan.

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/bounds.hpp"
#include "core/experiment.hpp"
#include "queueing/levelled_network.hpp"
#include "stats/ci.hpp"
#include "workload/destination.hpp"

namespace routesim {

enum class FaultPolicy : std::uint8_t;     // fault/fault_model.hpp
enum class KernelBackend : std::uint8_t;   // des/kernel_backend.hpp
class Topology;                            // topology/topology.hpp
struct TopologySpec;
struct PacketTrace;                        // workload/trace.hpp

/// Thrown on malformed scenario text or an unknown scheme/key/value.
struct ScenarioError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Measurement window specification for steady-state estimation.
struct Window {
  double warmup = 0.0;
  double horizon = 0.0;

  /// A window heuristically matched to relaxation time ~ 1/(1-rho)^2 and
  /// diameter d, with `length` time units of measurement.
  static Window for_load(int d, double rho, double length);

  /// True when unset ({0, 0}): run() derives a window from the scenario's
  /// load via for_load(d, rho, measure).
  [[nodiscard]] bool is_auto() const noexcept {
    return warmup == 0.0 && horizon == 0.0;
  }

  friend bool operator==(const Window&, const Window&) = default;
};

/// One point of the experiment space.  Every field has a usable default;
/// scheme-specific fields (tau, fanout, ...) are ignored by schemes that do
/// not consume them.
struct Scenario {
  /// Registry key: hypercube_greedy, butterfly_greedy, network_q,
  /// network_q_fifo, network_q_ps, pipelined_baseline, valiant_mixing,
  /// deflection, batch_greedy, multicast (see SchemeRegistry::names()).
  std::string scheme = "hypercube_greedy";

  // --- model parameters -------------------------------------------------
  int d = 4;            ///< cube / butterfly dimension (ring: n = 2^d nodes)
  /// Network family: "native" (the scheme's own topology — the hypercube
  /// for the cube schemes, the butterfly for butterfly_greedy) or an
  /// explicit family from topology_names(): hypercube, butterfly, ring,
  /// torus, mesh.  The non-native families route through the
  /// topology-parametric sims (routing/topology_greedy.hpp).
  std::string topology = "native";
  /// topology=ring chord structure: "" (plain ring), "papillon" (the
  /// doubling-stride ladder) or a CSV of chord strides in [2, n/2 - 1].
  std::string ring_chords;
  /// topology=torus|mesh grid extents: "AxB" or "AxBxC", each in [2, 256].
  std::string torus_dims = "4x4";
  double lambda = 0.1;  ///< per-node generation rate
  /// A pending `--set rho=` target: resolved() solves it for lambda when
  /// every other knob (p, workload, d, scheme) is final, so the setting
  /// order cannot change the result.  Empty = lambda is authoritative;
  /// set("lambda") clears it.
  std::optional<double> rho_target;
  double p = 0.5;       ///< bit-flip probability of the destination law
  double tau = 0.0;     ///< > 0: slotted-time variant (§3.4)
  /// Service discipline for the equivalent-network schemes: network Q
  /// (FIFO) or Q~ (PS).  Packet-level schemes ignore it.
  Discipline discipline = Discipline::kFifo;

  // --- workload ---------------------------------------------------------
  /// "bit_flip" (law (1) with parameter p), "uniform" (p = 1/2),
  /// "general" (translation-invariant law mask_pmf), "trace"
  /// (pre-generated packet trace shared by equal-seed scenarios, the
  /// coupled-comparison workload; with `trace_file` set, an external
  /// recorded trace replayed verbatim), or "permutation" (adversarial
  /// deterministic per-source destinations — see the `permutation` key and
  /// workload/permutation.hpp).
  std::string workload = "bit_flip";
  /// For workload == "trace": path of a JSONL trace file (one
  /// {"t":...,"src":...,"dst":...} record per packet) to replay instead of
  /// regenerating a trace per replication seed.  Loaded and validated at
  /// compile time (shared_trace()); every replication replays the same
  /// recorded stream.  Record one with `routesim_bench --record-trace`.
  std::string trace_file;
  /// For workload == "general": P[dest = origin XOR y] for each mask y
  /// (2^d entries).  Not representable on the CLI.
  std::vector<double> mask_pmf;
  /// For workload == "permutation": the family name (bit_reversal,
  /// transpose, bit_complement, shuffle, tornado, random_permutation,
  /// hotspot — Permutation::names()).  Ignored by the other workloads.
  std::string permutation = "bit_reversal";
  /// For permutation == "hotspot": fraction of sources sending to the hot
  /// node (node 0); must be in [0, 1].
  double hotspot_frac = 0.1;

  // --- scheme-specific knobs -------------------------------------------
  int fanout = 4;                 ///< multicast destinations / batch packets per node
  bool unicast_baseline = false;  ///< multicast: k unicasts instead of a tree
  std::uint32_t buffer_capacity = 0;  ///< 0 = infinite (the paper's model)

  // --- fault injection (src/fault/fault_model.hpp) ---------------------
  double fault_rate = 0.0;       ///< P[arc statically down], per replication
  double node_fault_rate = 0.0;  ///< P[node down]; kills its incident arcs
  double fault_mtbf = 0.0;       ///< mean link up-time (> 0 with mttr => dynamic)
  double fault_mttr = 0.0;       ///< mean link repair time
  /// Correlated fault storms (src/fault/storm.hpp): Poisson storm arrivals
  /// of rate storm_rate, each taking down every arc incident to the
  /// radius-storm_radius ball around a random seed node for storm_duration
  /// time units.  storm_rate and storm_duration must be set together.
  double storm_rate = 0.0;
  int storm_radius = 1;
  double storm_duration = 0.0;
  /// Reroute policy when the desired arc is dead: "drop", "skip_dim",
  /// "deflect", "adaptive" (hypercube family) or "twin_detour"
  /// (butterfly).  Consulted only when faults_active().
  std::string fault_policy = "drop";
  int ttl = 0;  ///< max hops for detouring packets; 0 = scheme default (64*d)

  // --- measurement ------------------------------------------------------
  Window window{};          ///< {0,0} => auto window from load
  double measure = 4000.0;  ///< measurement length used by the auto window
  ReplicationPlan plan{};
  /// Kernel execution engine: "scalar" (event-driven oracle, every scheme)
  /// or "soa_batch" (SoA batch slotted stepping — adopting schemes only,
  /// bit-identical to scalar; see des/kernel_backend.hpp and docs/KERNEL.md).
  std::string backend = "scalar";

  // --- derived ----------------------------------------------------------

  /// The bit-flip parameter the workload actually simulates: 0.5 for
  /// "uniform" (which ignores the p field), p otherwise.
  [[nodiscard]] double effective_p() const noexcept {
    return workload == "uniform" ? 0.5 : p;
  }

  /// True when any fault source is configured; schemes attach a FaultModel
  /// (and drop the paper's bracket) exactly when this holds.  A lone
  /// fault_mttr counts as "configured" so resolved_fault_policy() can
  /// reject it instead of silently simulating a pristine network.
  [[nodiscard]] bool faults_active() const noexcept {
    return fault_rate > 0.0 || node_fault_rate > 0.0 || fault_mtbf > 0.0 ||
           fault_mttr > 0.0 || storm_rate > 0.0 || storm_duration > 0.0;
  }

  /// Validates the fault knobs against a scheme's supported policies and
  /// returns the parsed policy — kNone when faults_active() is false.
  /// Registry compile hooks call this *before* fanning replications out to
  /// worker threads, so a bad combination (unsupported policy, mtbf
  /// without mttr) surfaces as a catchable ScenarioError instead of a
  /// contract violation inside a worker.  An empty `supported` list means
  /// the scheme has no fault support at all: any active fault knob is
  /// rejected rather than silently simulating a pristine network.
  [[nodiscard]] FaultPolicy resolved_fault_policy(
      std::initializer_list<FaultPolicy> supported) const;

  /// Validates the backend knob against a scheme's supported backends and
  /// returns the parsed value.  "scalar" is every scheme's oracle and is
  /// always accepted, so a scheme with no alternative backend passes `{}`.
  /// Registry compile hooks call this before fanning replications out, so
  /// an unsupported backend surfaces as a catchable ScenarioError naming
  /// the backends the scheme does support.
  [[nodiscard]] KernelBackend resolved_backend(
      std::initializer_list<KernelBackend> supported) const;

  /// True when the scenario selects a topology the paper's specialised
  /// simulators do not implement directly (ring / torus / mesh); such
  /// scenarios route through the topology-parametric sims.
  [[nodiscard]] bool uses_generic_topology() const noexcept {
    return topology == "ring" || topology == "torus" || topology == "mesh";
  }

  /// Validates the topology knob against a scheme's supported families and
  /// returns the concrete family name — "native" resolves to the first
  /// entry, the scheme's own topology.  Registry compile hooks call this
  /// before fanning replications out, so a topology/scheme mismatch
  /// (butterfly_greedy on a torus) surfaces as a catchable ScenarioError
  /// naming the families the scheme does support.
  [[nodiscard]] std::string resolved_topology(
      std::initializer_list<const char*> supported) const;

  /// The TopologySpec these knobs describe ("native" maps to "hypercube",
  /// the engine-wide default family).
  [[nodiscard]] TopologySpec topology_spec() const;

  /// make_topology(topology_spec()) with size/format errors rethrown as
  /// catchable ScenarioError.
  [[nodiscard]] std::shared_ptr<const Topology> compiled_topology() const;

  /// This scenario with any pending rho target solved: lambda is set so
  /// the load factor under the *final* scheme/workload/p equals the target
  /// (every load rule is linear in lambda), and rho_target is cleared.
  /// Identity when no target is pending.  The engine resolves each cell
  /// before compiling it; call this yourself before reading `lambda` from
  /// a scenario configured via set("rho", ...).  Throws ScenarioError when
  /// the load factor is zero (the linear solve has no solution).
  [[nodiscard]] Scenario resolved() const;

  /// Scheme-aware load factor: the scheme's registry load_factor rule when
  /// one is installed (the butterfly uses lambda*max{p,1-p}), default_rho()
  /// otherwise.  A pending rho target is solved first.
  [[nodiscard]] double rho() const;

  /// The engine's default load-factor rule: lambda*max_j P[B_j] over the
  /// destination law (= lambda*p for the bit-flip law); for workload
  /// "permutation", lambda * (max arc congestion of the greedy hypercube
  /// path system) — exact for hypercube_greedy, a worst-case proxy
  /// otherwise.  Registry load-factor hooks call this as their fallback so
  /// future default-rule changes apply to them too.
  [[nodiscard]] double default_rho() const;

  [[nodiscard]] bounds::HypercubeParams hypercube_params() const {
    return {d, lambda, p};
  }
  [[nodiscard]] bounds::ButterflyParams butterfly_params() const {
    return {d, lambda, p};
  }

  /// Builds the destination law this scenario describes.  For workload
  /// "permutation" the law is a uniform placeholder satisfying the schemes'
  /// config preconditions: the per-source table from permutation_table()
  /// governs destinations, and schemes consume it through the packet
  /// kernel's fixed-destination mode.
  [[nodiscard]] DestinationDistribution make_destinations() const;

  /// For workload == "permutation": builds the per-source destination
  /// table (2^d entries; entry x is the fixed destination of every packet
  /// generated at source x).  Registry compile hooks call this *before*
  /// fanning replications out, so an unknown permutation name or an
  /// out-of-range hotspot_frac surfaces as a catchable ScenarioError.
  /// random_permutation derives from plan.base_seed, so the table is the
  /// same for every replication of the scenario.  Throws ScenarioError
  /// when the workload is not "permutation".
  [[nodiscard]] std::vector<NodeId> permutation_table() const;

  /// The compile-hook form of permutation_table(): the table wrapped for
  /// capture by the replication lambda (whose config points at it), or
  /// null when this scenario's workload is not "permutation".  Every
  /// scheme supporting the fixed-destination mode calls this one helper.
  [[nodiscard]] std::shared_ptr<const std::vector<NodeId>>
  shared_permutation_table() const;

  /// The compile-hook form of the external trace: when `trace_file` is
  /// set (workload must be "trace"), loads and validates the JSONL trace
  /// for this scenario's dimension, wrapped for capture by the
  /// replication lambdas — every replication replays the same stream.
  /// Null when trace_file is empty (schemes fall back to regenerating a
  /// trace per replication seed).  Loader failures (missing file,
  /// malformed or unsorted records) are rethrown as catchable
  /// ScenarioError naming the offending line, and trace_file with a
  /// non-"trace" workload is rejected the same way.
  [[nodiscard]] std::shared_ptr<const PacketTrace> shared_trace() const;

  /// The window actually simulated: `window` if set (horizon must exceed
  /// warmup), otherwise Window::for_load(d, rho(), measure) — which needs
  /// rho < 1; unstable runs must set the window explicitly.  Throws
  /// ScenarioError on either violation.
  [[nodiscard]] Window resolved_window() const;

  // --- textual form (CLI round trip) -----------------------------------

  /// Applies one `key=value` setting.  Keys (see known_set_keys()): d,
  /// topology (native|hypercube|butterfly|ring|torus|mesh, validated
  /// immediately with a did-you-mean suggestion), ring_chords (''
  /// | papillon | CSV of chord strides, format-validated immediately),
  /// torus_dims (AxB | AxBxC, validated immediately),
  /// lambda, rho (records a load-factor target; resolved() solves it for
  /// lambda once every other knob is final, so setting order is
  /// irrelevant), p, tau, discipline (fifo|ps),
  /// workload, trace_file (JSONL trace to replay; workload=trace only,
  /// whitespace-free path, validated at compile time),
  /// mask_pmf (inline comma/whitespace list of 2^d probabilities
  /// or `@path` to load them from a file — set d and workload=general
  /// first), permutation (a Permutation::names() family, validated
  /// immediately), hotspot_frac (in [0, 1]), fanout, unicast_baseline,
  /// buffers, fault_rate, node_fault_rate, fault_mtbf, fault_mttr,
  /// storm_rate, storm_radius, storm_duration,
  /// fault_policy, ttl, warmup, horizon, measure, reps, seed, threads,
  /// backend (scalar|soa_batch, validated immediately).  Throws
  /// ScenarioError on an unknown key (suggesting the nearest valid ones) or
  /// unparsable value.
  void set(const std::string& key, const std::string& value);

  /// Every key accepted by set(), in the order set() documents them.
  [[nodiscard]] static const std::vector<std::string>& known_set_keys();

  /// Every non-derived field as `key=value` pairs; parse(scheme + these)
  /// reconstructs the scenario exactly.  mask_pmf is emitted as an inline
  /// comma-separated list when non-empty (omitted when empty).
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> to_key_values()
      const;

  /// "scheme key=value ..." one-line form of to_key_values().
  [[nodiscard]] std::string to_string() const;

  /// Parses {"scheme", "key=value", ...} (the CLI argument form).
  static Scenario parse(const std::vector<std::string>& args);

  friend bool operator==(const Scenario&, const Scenario&) = default;
};

/// Aggregate of one run(): across-replication 95% t intervals for the
/// standard metrics, the paper's bracket when the scheme has one, plus any
/// scheme-specific extra metrics (deflection fraction, round length, ...).
struct RunResult {
  ConfidenceInterval delay;       ///< mean packet delay T
  ConfidenceInterval population;  ///< time-average packets in network
  ConfidenceInterval throughput;  ///< deliveries per time unit
  double mean_hops = 0.0;         ///< average arcs traversed
  double max_little_error = 0.0;  ///< worst Little's-law discrepancy seen
  double mean_final_backlog = 0.0;

  bool has_bounds = false;   ///< scheme provides a theoretical bracket
  double lower_bound = 0.0;  ///< paper lower bound for these parameters
  double upper_bound = 0.0;  ///< paper upper bound for these parameters

  /// Scheme-specific metrics by name, with across-replication intervals.
  std::vector<std::pair<std::string, ConfidenceInterval>> extras;

  double rho = 0.0;  ///< the scenario's load factor, echoed for tables

  /// Looks up an extra metric; nullptr when absent.
  [[nodiscard]] const ConfidenceInterval* extra(const std::string& name) const;

  /// Bracket containment with `slack` added on both sides (plus the CI
  /// half-width); true when the scheme has no bounds.
  [[nodiscard]] bool within_bracket(double slack = 0.0) const;
};

/// The single-shot entry point — now a one-cell campaign on the shared
/// scheduler (core/campaign.hpp): resolves the scenario, looks the scheme
/// up in the registry, compiles it, runs the replication plan, and
/// assembles intervals + bounds uniformly.  Bit-identical to the historic
/// per-run pool for equal seeds and plans.  Throws ScenarioError for an
/// unknown scheme.
[[nodiscard]] RunResult run(const Scenario& scenario);

/// Shortest decimal form of `value` that round-trips through stod — the
/// formatting used by the textual scenario forms, campaign cell labels and
/// the JSONL sink.
[[nodiscard]] std::string fmt_shortest(double value);

// ----------------------------------------------------------------- sweeps

/// A swept parameter: "rho=0.1:0.9" or "rho=0.1:0.9:0.05" (default step
/// 0.1).  Keys: see known_keys().
struct SweepSpec {
  std::string key;
  double start = 0.0;
  double stop = 0.0;
  double step = 0.1;

  static SweepSpec parse(const std::string& text);

  /// The swept values, generated by index (`start + i*step`, no
  /// accumulated rounding); `stop` is always included within a half-step
  /// tolerance (overshoot is clamped to `stop`).  Throws ScenarioError on
  /// a non-positive or non-finite spec (parse() already rejects those, but
  /// directly-constructed specs go through the same checks).
  [[nodiscard]] std::vector<double> values() const;

  /// The numeric keys meaningful to sweep (the catalog and --help render
  /// this list, so it cannot drift from the docs).
  [[nodiscard]] static const std::vector<std::string>& known_keys();
};

/// Applies one swept value to a scenario (rho adjusts lambda; d, fanout and
/// reps round to the nearest integer).
void apply_sweep_value(Scenario& scenario, const std::string& key, double value);

}  // namespace routesim
