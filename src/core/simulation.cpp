#include "core/simulation.hpp"

#include <algorithm>
#include <cmath>

#include "core/equivalence.hpp"
#include "queueing/levelled_network.hpp"
#include "routing/greedy_butterfly.hpp"
#include "routing/greedy_hypercube.hpp"
#include "util/assert.hpp"

namespace routesim {

Window Window::for_load(int d, double rho, double length) {
  RS_EXPECTS(d >= 1);
  RS_EXPECTS(rho >= 0.0 && rho < 1.0);
  RS_EXPECTS(length > 0.0);
  const double slack = 1.0 - rho;
  const double warmup = 50.0 + 10.0 * static_cast<double>(d) + 5.0 / (slack * slack);
  return Window{warmup, warmup + length};
}

namespace {

// Metric layout shared by all estimators.
enum : std::size_t {
  kDelay = 0,
  kPopulation,
  kThroughput,
  kHops,
  kLittle,
  kBacklog,
  kNumMetrics
};

DelayEstimate assemble(const std::vector<std::vector<double>>& rows, double lb,
                       double ub) {
  const auto intervals = replication_intervals(rows);
  const auto summaries = summarize_replications(rows);
  DelayEstimate estimate;
  estimate.delay = intervals[kDelay];
  estimate.population = intervals[kPopulation];
  estimate.throughput = intervals[kThroughput];
  estimate.mean_hops = summaries[kHops].mean();
  estimate.max_little_error = summaries[kLittle].max();
  estimate.mean_final_backlog = summaries[kBacklog].mean();
  estimate.lower_bound = lb;
  estimate.upper_bound = ub;
  return estimate;
}

}  // namespace

DelayEstimate estimate_hypercube_delay(const bounds::HypercubeParams& params,
                                       const Window& window,
                                       const ReplicationPlan& plan, double tau) {
  const auto rows = run_replications(plan, [&](std::uint64_t seed, int) {
    GreedyHypercubeConfig config;
    config.d = params.d;
    config.lambda = params.lambda;
    config.destinations = DestinationDistribution::bit_flip(params.d, params.p);
    config.seed = seed;
    config.slot = tau;
    GreedyHypercubeSim sim(config);
    sim.run(window.warmup, window.horizon);
    return std::vector<double>{
        sim.delay().mean(),          sim.time_avg_population(),
        sim.throughput(),            sim.hops().mean(),
        sim.little_check().relative_error(), sim.final_population()};
  });
  const double lb = bounds::greedy_delay_lower_bound(params);
  const double ub = tau > 0.0 ? bounds::slotted_delay_upper_bound(params, tau)
                              : bounds::greedy_delay_upper_bound(params);
  return assemble(rows, lb, ub);
}

DelayEstimate estimate_butterfly_delay(const bounds::ButterflyParams& params,
                                       const Window& window,
                                       const ReplicationPlan& plan) {
  const auto rows = run_replications(plan, [&](std::uint64_t seed, int) {
    GreedyButterflyConfig config;
    config.d = params.d;
    config.lambda = params.lambda;
    config.destinations = DestinationDistribution::bit_flip(params.d, params.p);
    config.seed = seed;
    GreedyButterflySim sim(config);
    sim.run(window.warmup, window.horizon);
    return std::vector<double>{
        sim.delay().mean(),          sim.time_avg_population(),
        sim.throughput(),            sim.vertical_hops().mean(),
        sim.little_check().relative_error(), sim.final_population()};
  });
  return assemble(rows, bounds::bfly_universal_delay_lower_bound(params),
                  bounds::bfly_greedy_delay_upper_bound(params));
}

DelayEstimate estimate_network_q_delay(const bounds::HypercubeParams& params,
                                       const Window& window,
                                       const ReplicationPlan& plan,
                                       bool processor_sharing) {
  const auto discipline = processor_sharing ? Discipline::kPs : Discipline::kFifo;
  const auto rows = run_replications(plan, [&](std::uint64_t seed, int) {
    LevelledNetwork net(make_hypercube_network_q(params.d, params.lambda, params.p,
                                                 discipline, seed));
    net.run(window.warmup, window.horizon);
    const double window_length = window.horizon - window.warmup;
    LittleCheck little;
    little.time_avg_population = net.time_avg_population();
    little.arrival_rate = window_length > 0.0
                              ? static_cast<double>(net.arrivals_in_window()) /
                                    window_length
                              : 0.0;
    little.mean_sojourn = net.delay().mean();
    // Packets whose destination equals their origin (probability (1-p)^d)
    // never enter Q; the paper's T averages over *all* packets, so the
    // in-network sojourn is scaled by the probability of entering.
    const double enter_prob = 1.0 - std::pow(1.0 - params.p, params.d);
    return std::vector<double>{net.delay().mean() * enter_prob,
                               net.time_avg_population(),
                               net.throughput(),
                               0.0,
                               little.relative_error(),
                               net.final_population()};
  });
  return assemble(rows, bounds::greedy_delay_lower_bound(params),
                  bounds::greedy_delay_upper_bound(params));
}

}  // namespace routesim
