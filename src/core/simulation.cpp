#include "core/simulation.hpp"

namespace routesim {

namespace {

DelayEstimate to_estimate(const RunResult& result) {
  DelayEstimate estimate;
  estimate.delay = result.delay;
  estimate.population = result.population;
  estimate.throughput = result.throughput;
  estimate.mean_hops = result.mean_hops;
  estimate.max_little_error = result.max_little_error;
  estimate.mean_final_backlog = result.mean_final_backlog;
  estimate.lower_bound = result.lower_bound;
  estimate.upper_bound = result.upper_bound;
  return estimate;
}

Scenario base_scenario(std::string scheme, int d, double lambda, double p,
                       const Window& window, const ReplicationPlan& plan) {
  Scenario scenario;
  scenario.scheme = std::move(scheme);
  scenario.d = d;
  scenario.lambda = lambda;
  scenario.p = p;
  scenario.window = window;
  scenario.plan = plan;
  return scenario;
}

}  // namespace

DelayEstimate estimate_hypercube_delay(const bounds::HypercubeParams& params,
                                       const Window& window,
                                       const ReplicationPlan& plan, double tau) {
  Scenario scenario = base_scenario("hypercube_greedy", params.d, params.lambda,
                                    params.p, window, plan);
  scenario.tau = tau;
  return to_estimate(run(scenario));
}

DelayEstimate estimate_butterfly_delay(const bounds::ButterflyParams& params,
                                       const Window& window,
                                       const ReplicationPlan& plan) {
  return to_estimate(run(base_scenario("butterfly_greedy", params.d,
                                       params.lambda, params.p, window, plan)));
}

DelayEstimate estimate_network_q_delay(const bounds::HypercubeParams& params,
                                       const Window& window,
                                       const ReplicationPlan& plan,
                                       bool processor_sharing) {
  Scenario scenario = base_scenario("network_q", params.d, params.lambda,
                                    params.p, window, plan);
  scenario.discipline = processor_sharing ? Discipline::kPs : Discipline::kFifo;
  return to_estimate(run(scenario));
}

}  // namespace routesim
