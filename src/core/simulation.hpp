#pragma once
/// \file simulation.hpp
/// \brief Legacy façade, now a thin compatibility shim over the Scenario
///        API (core/scenario.hpp).
///
/// The three estimator functions below predate `routesim::Scenario`; they
/// survive so existing callers keep compiling, and each simply builds the
/// equivalent Scenario and forwards to run() — producing bit-identical
/// results for the same window, seed and plan (the parity test in
/// tests/test_scenario.cpp pins this down).  New code should construct a
/// `Scenario` directly: it reaches every scheme (not just these three) and
/// returns the richer `RunResult`.

#include <cstdint>

#include "core/bounds.hpp"
#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "stats/ci.hpp"

namespace routesim {

/// Aggregated steady-state estimates across replications (95% t intervals).
/// The legacy shape of RunResult, kept for source compatibility.
struct DelayEstimate {
  ConfidenceInterval delay;       ///< mean packet delay T
  ConfidenceInterval population;  ///< time-average packets in network
  ConfidenceInterval throughput;  ///< deliveries per time unit
  double mean_hops = 0.0;         ///< average arcs traversed
  double max_little_error = 0.0;  ///< worst Little's-law discrepancy seen
  double mean_final_backlog = 0.0;
  double lower_bound = 0.0;  ///< paper lower bound for these parameters
  double upper_bound = 0.0;  ///< paper upper bound for these parameters
};

/// Greedy routing on the d-cube (§3): shim for the "hypercube_greedy"
/// scenario.  Set tau > 0 for the slotted-time variant of §3.4.
[[nodiscard]] DelayEstimate estimate_hypercube_delay(
    const bounds::HypercubeParams& params, const Window& window,
    const ReplicationPlan& plan, double tau = 0.0);

/// Greedy routing on the d-dimensional butterfly (§4): shim for
/// "butterfly_greedy".
[[nodiscard]] DelayEstimate estimate_butterfly_delay(
    const bounds::ButterflyParams& params, const Window& window,
    const ReplicationPlan& plan);

/// Equivalent-network estimate (§3.1): shim for "network_q" under FIFO
/// (network Q) or processor sharing (network Q~).
[[nodiscard]] DelayEstimate estimate_network_q_delay(
    const bounds::HypercubeParams& params, const Window& window,
    const ReplicationPlan& plan, bool processor_sharing);

}  // namespace routesim
