#pragma once
/// \file simulation.hpp
/// \brief High-level façade: configure -> replicate -> confidence intervals.
///
/// This is the public entry point most users want: it wires together the
/// packet-level simulators, the replication runner and the paper's bounds,
/// and returns delay estimates with confidence intervals next to the
/// corresponding theoretical brackets [Prop. 13, Prop. 12] (hypercube) or
/// [Prop. 14, Prop. 17] (butterfly).

#include <cstdint>

#include "core/bounds.hpp"
#include "core/experiment.hpp"
#include "stats/ci.hpp"

namespace routesim {

/// Measurement window specification for steady-state estimation.
struct Window {
  double warmup = 0.0;
  double horizon = 0.0;

  /// A window heuristically matched to relaxation time ~ 1/(1-rho)^2 and
  /// diameter d, with `length` time units of measurement.
  static Window for_load(int d, double rho, double length);
};

/// Aggregated steady-state estimates across replications (95% t intervals).
struct DelayEstimate {
  ConfidenceInterval delay;       ///< mean packet delay T
  ConfidenceInterval population;  ///< time-average packets in network
  ConfidenceInterval throughput;  ///< deliveries per time unit
  double mean_hops = 0.0;         ///< average arcs traversed
  double max_little_error = 0.0;  ///< worst Little's-law discrepancy seen
  double mean_final_backlog = 0.0;
  double lower_bound = 0.0;  ///< paper lower bound for these parameters
  double upper_bound = 0.0;  ///< paper upper bound for these parameters
};

/// Greedy routing on the d-cube (§3): simulate `plan.replications`
/// replications of the model with the given parameters and window.
/// Set tau > 0 for the slotted-time variant of §3.4.
[[nodiscard]] DelayEstimate estimate_hypercube_delay(
    const bounds::HypercubeParams& params, const Window& window,
    const ReplicationPlan& plan, double tau = 0.0);

/// Greedy routing on the d-dimensional butterfly (§4).
[[nodiscard]] DelayEstimate estimate_butterfly_delay(
    const bounds::ButterflyParams& params, const Window& window,
    const ReplicationPlan& plan);

/// Equivalent-network estimate: runs the Markovian network Q (FIFO) or Q~
/// (PS) instead of the packet-level hypercube; used for cross-validation
/// and the FIFO-vs-PS experiments.
[[nodiscard]] DelayEstimate estimate_network_q_delay(
    const bounds::HypercubeParams& params, const Window& window,
    const ReplicationPlan& plan, bool processor_sharing);

}  // namespace routesim
