#pragma once
/// \file event_queue.hpp
/// \brief Pending-event set for discrete-event simulation.
///
/// EventQueue<Payload> is a binary min-heap ordered by (time, insertion
/// sequence).  The sequence tie-break makes extraction order *stable*:
/// events scheduled earlier fire first among equal timestamps.  Stability
/// matters here because the greedy router resolves simultaneous contention
/// in FIFO order (§3), and because reproducibility requires a total order
/// independent of heap internals.
///
/// Payload must be cheaply movable; simulators use small POD payloads so no
/// allocation happens per event beyond the vector storage.

#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace routesim {

template <typename Payload>
class EventQueue {
 public:
  struct Event {
    double time = 0.0;
    std::uint64_t seq = 0;  ///< insertion sequence number (tie-break)
    Payload payload{};
  };

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Total number of events ever pushed (used by tests / microbenchmarks).
  [[nodiscard]] std::uint64_t pushed() const noexcept { return next_seq_; }

  void clear() noexcept {
    heap_.clear();
    next_seq_ = 0;
  }

  void reserve(std::size_t n) { heap_.reserve(n); }

  /// Schedules payload at the given time.  Time may equal (but must not
  /// precede) the time of the most recently popped event; the simulator
  /// loop enforces global monotonicity.
  void push(double time, Payload payload) {
    heap_.push_back(Event{time, next_seq_++, std::move(payload)});
    sift_up(heap_.size() - 1);
  }

  /// The earliest event (undefined when empty; checked in debug builds).
  [[nodiscard]] const Event& top() const {
    RS_DASSERT(!heap_.empty());
    return heap_.front();
  }

  /// Removes and returns the earliest event.
  Event pop() {
    RS_DASSERT(!heap_.empty());
    Event result = std::move(heap_.front());
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return result;
  }

 private:
  [[nodiscard]] static bool before(const Event& a, const Event& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i) noexcept {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) noexcept {
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t left = 2 * i + 1;
      const std::size_t right = left + 1;
      std::size_t smallest = i;
      if (left < n && before(heap_[left], heap_[smallest])) smallest = left;
      if (right < n && before(heap_[right], heap_[smallest])) smallest = right;
      if (smallest == i) return;
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace routesim
