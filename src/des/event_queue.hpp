#pragma once
/// \file event_queue.hpp
/// \brief Pending-event set for discrete-event simulation.
///
/// EventQueue<Payload> is a 4-ary min-heap ordered by (time, insertion
/// sequence).  The sequence tie-break makes extraction order *stable*:
/// events scheduled earlier fire first among equal timestamps.  Stability
/// matters here because the greedy router resolves simultaneous contention
/// in FIFO order (§3), and because reproducibility requires a total order
/// independent of heap internals — (time, seq) is a strict total order, so
/// the pop sequence is the same for any heap arity, and switching the
/// binary heap to a 4-ary layout is purely a speed change: half the levels
/// per sift and four children per cache line on the hot pop path.
///
/// Payload must be cheaply movable; simulators use small POD payloads so no
/// allocation happens per event beyond the vector storage.

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace routesim {

template <typename Payload>
class EventQueue {
 public:
  struct Event {
    double time = 0.0;
    std::uint64_t seq = 0;  ///< insertion sequence number (tie-break)
    Payload payload{};
  };

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Total number of events ever pushed (used by tests / microbenchmarks).
  [[nodiscard]] std::uint64_t pushed() const noexcept { return next_seq_; }

  void clear() noexcept {
    heap_.clear();
    next_seq_ = 0;
  }

  void reserve(std::size_t n) { heap_.reserve(n); }

  /// Schedules payload at the given time.  Time may equal (but must not
  /// precede) the time of the most recently popped event; the simulator
  /// loop enforces global monotonicity.
  void push(double time, Payload payload) {
    Event item{time, next_seq_++, std::move(payload)};
    std::size_t i = heap_.size();
    heap_.emplace_back();
    // Hole percolation: move parents down into the hole instead of swapping.
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!before(item, heap_[parent])) break;
      heap_[i] = std::move(heap_[parent]);
      i = parent;
    }
    heap_[i] = std::move(item);
  }

  /// The earliest event (undefined when empty; checked in debug builds).
  [[nodiscard]] const Event& top() const {
    RS_DASSERT(!heap_.empty());
    return heap_.front();
  }

  /// Removes and returns the earliest event.
  Event pop() {
    RS_DASSERT(!heap_.empty());
    Event result = std::move(heap_.front());
    Event last = std::move(heap_.back());
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n != 0) {
      std::size_t i = 0;
      for (;;) {
        const std::size_t first_child = kArity * i + 1;
        if (first_child >= n) break;
        const std::size_t limit = std::min(first_child + kArity, n);
        std::size_t best = first_child;
        for (std::size_t c = first_child + 1; c < limit; ++c) {
          if (before(heap_[c], heap_[best])) best = c;
        }
        if (!before(heap_[best], last)) break;
        heap_[i] = std::move(heap_[best]);
        i = best;
      }
      heap_[i] = std::move(last);
    }
    return result;
  }

 private:
  static constexpr std::size_t kArity = 4;

  [[nodiscard]] static bool before(const Event& a, const Event& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace routesim
