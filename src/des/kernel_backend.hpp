#pragma once
/// \file kernel_backend.hpp
/// \brief The kernel-backend seam: which execution engine advances a
///        scheme's packets.
///
/// Every scheme runs on the scalar event-driven kernel
/// (des/packet_kernel.hpp) by default — it is the bit-exactness oracle the
/// parity suite pins.  Schemes with slotted-time structure additionally
/// accept the `soa_batch` backend (des/slotted_batch.hpp): a
/// structure-of-arrays packet store advanced arc-batch by arc-batch, proven
/// bit-identical to the scalar oracle (tests/test_kernel_parity.cpp,
/// tests/test_kernel_backend.cpp) and substantially faster on heavy slotted
/// traffic (bench/micro_engine.cpp, BM_BackendSpeedup).
///
/// Backend selection is a first-class Scenario knob (`--set
/// backend=scalar|soa_batch`); schemes without a batch implementation
/// reject everything but `scalar` through Scenario::resolved_backend().  A
/// future GPU or partitioned-PDES engine is one more enumerator here plus
/// one more implementation behind the same seam (docs/KERNEL.md has the
/// add-a-backend recipe).

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace routesim {

/// The available kernel execution engines.
enum class KernelBackend : std::uint8_t {
  kScalar,    ///< event-driven scalar kernel (default; the parity oracle)
  kSoaBatch,  ///< SoA packet store + per-arc batch slotted stepping
};

/// Every backend's CLI name, in enumerator order (the catalog renders this).
[[nodiscard]] inline const std::vector<std::string>& kernel_backend_names() {
  static const std::vector<std::string> names{"scalar", "soa_batch"};
  return names;
}

/// The CLI name of a backend (inverse of parse_kernel_backend).
[[nodiscard]] inline const char* kernel_backend_name(
    KernelBackend backend) noexcept {
  switch (backend) {
    case KernelBackend::kScalar: return "scalar";
    case KernelBackend::kSoaBatch: return "soa_batch";
  }
  return "scalar";  // unreachable
}

/// Parses a backend name; throws std::invalid_argument listing the valid
/// backends (Scenario::set wraps this into a ScenarioError, so `--set
/// backend=soabatch` suggests the spelling it wanted).
[[nodiscard]] inline KernelBackend parse_kernel_backend(
    const std::string& name) {
  if (name == "scalar") return KernelBackend::kScalar;
  if (name == "soa_batch") return KernelBackend::kSoaBatch;
  std::string known;
  for (const auto& candidate : kernel_backend_names()) {
    if (!known.empty()) known += ", ";
    known += candidate;
  }
  throw std::invalid_argument("unknown kernel backend '" + name +
                              "' (valid backends: " + known + ")");
}

}  // namespace routesim
