#include "des/packet_kernel.hpp"

#include <algorithm>

namespace routesim {

void KernelStats::begin(double warmup, double horizon) {
  warmup_ = warmup;
  window_ = horizon - warmup;
  delay_ = Summary{};
  hops_ = Summary{};
  stretch_ = Summary{};
  population_ = TimeWeighted{};
  occupancy_.assign(config_.occupancy_trackers, TimeWeighted{});
  occupancy_means_.assign(config_.occupancy_trackers, 0.0);
  if (config_.delay_histogram) {
    // Reuse the existing bin storage when the shape is unchanged.
    if (delay_histogram_ &&
        delay_histogram_->num_bins() == config_.histogram_bins &&
        delay_histogram_->lower_bound() == config_.histogram_lo &&
        delay_histogram_->bin_width() == config_.histogram_bin_width) {
      delay_histogram_->clear();
    } else {
      delay_histogram_.emplace(config_.histogram_lo, config_.histogram_bin_width,
                               config_.histogram_bins);
    }
  } else {
    delay_histogram_.reset();
  }
  deliveries_window_ = 0;
  arrivals_window_ = 0;
  drops_window_ = 0;
  fault_drops_window_ = 0;
  time_avg_population_ = 0.0;
  peak_population_ = 0.0;
  final_population_ = 0.0;
  max_occupancy_ = 0.0;
  throughput_ = 0.0;
}

void KernelStats::finalize(double warmup, double horizon, bool pending_reset) {
  // When no event fired inside the window the population tracker never saw
  // its warmup reset; apply it now (occupancy trackers deliberately keep
  // their full-run integral in that case, matching the original harvest).
  if (pending_reset) population_.reset(warmup);
  time_avg_population_ = population_.mean(horizon);
  peak_population_ = population_.peak();
  final_population_ = population_.value();
  throughput_ =
      window_ > 0.0 ? static_cast<double>(deliveries_window_) / window_ : 0.0;
  for (std::size_t tracker = 0; tracker < occupancy_.size(); ++tracker) {
    occupancy_means_[tracker] = occupancy_[tracker].mean(horizon);
    max_occupancy_ = std::max(max_occupancy_, occupancy_[tracker].peak());
  }
}

}  // namespace routesim
