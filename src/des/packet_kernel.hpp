#pragma once
/// \file packet_kernel.hpp
/// \brief The shared packet-simulation kernel under every packet-level
///        routing simulator.
///
/// All six routing simulators (greedy hypercube, greedy butterfly,
/// deflection, multicast, pipelined baseline, Valiant mixing) used to carry
/// private copies of the same machinery: a packet store with a free list,
/// per-arc FIFO queues with windowed counters, the Poisson / slotted /
/// trace arrival process, warmup-window accounting, population / delay /
/// hops accumulators, optional occupancy and delay-histogram tracking, and
/// the Little's-law harvest.  The paper's coupled comparisons (Props.
/// 12-17) only mean something when every scheme runs on *identical*
/// arrival and measurement machinery, so that machinery lives here once:
///
///   - `Pool<T>`         — index-based object pool with a free list;
///   - `FifoRing`        — cache-friendly ring-buffer queue of packet ids
///                         (replaces one std::deque per arc);
///   - `KernelStats`     — measurement-window accounting and harvest;
///   - `PacketKernel<P>` — the event-driven core: event set, arc queues,
///                         arrival process and the drive() loop.
///
/// A scheme plugs in by implementing three hooks called by drive():
///   `on_spawn(t)`              sample origin/destination and inject;
///   `on_traced(t, org, dst)`   inject one replayed packet (optional);
///   `on_arc_done(t, arc)`      advance the head-of-line packet one hop.
///
/// Everything here preserves the exact event order, RNG consumption order
/// and floating-point arithmetic of the pre-kernel simulators, so results
/// are bit-identical (pinned by tests/test_kernel_parity.cpp).  The event
/// set is a 4-ary heap (des/event_queue.hpp); (time, seq) is a strict
/// total order, so heap internals cannot affect results.

#include <cmath>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "fault/fault_model.hpp"
#include "obs/trace.hpp"
#if defined(ROUTESIM_KERNEL_TRACE)
#include <string>

#include "obs/metrics.hpp"
#endif
#include "stats/histogram.hpp"
#include "stats/little.hpp"
#include "stats/summary.hpp"
#include "stats/timeavg.hpp"
#include "util/assert.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"
#include "workload/destination.hpp"
#include "workload/trace.hpp"

namespace routesim {

/// Which waiting packet an arc serves next.  The paper's scheme is FIFO
/// ("priority is given to the one that arrived first", §3); LIFO and random
/// are ablations.  All three are work-conserving and blind to service
/// times, so the *mean* delay is unchanged — only the delay distribution's
/// shape (variance, tails) differs.  The ablation bench verifies exactly
/// this insensitivity.
enum class ArcServiceOrder : std::uint8_t { kFifo, kLifo, kRandom };

/// Per-arc counters over the measurement window.  Schemes that only need
/// one arrival count (the butterfly) read total_arrivals.
struct ArcCounters {
  std::uint64_t external_arrivals = 0;  ///< packets starting their route here
  std::uint64_t total_arrivals = 0;     ///< all packets entering the queue
};

/// Index-based object pool with a free list.  allocate() returns an id whose
/// slot the caller assigns; release() recycles the id (most recently freed
/// first, preserving the allocation order of the pre-kernel free lists).
/// clear() forgets all objects but keeps the storage, so a kernel reused
/// across replications does not reallocate.
template <typename T>
class Pool {
 public:
  [[nodiscard]] std::uint32_t allocate() {
    std::uint32_t id;
    if (!free_.empty()) {
      id = free_.back();
      free_.pop_back();
    } else {
      id = static_cast<std::uint32_t>(items_.size());
      items_.emplace_back();
    }
    return id;
  }

  void release(std::uint32_t id) { free_.push_back(id); }

  [[nodiscard]] T& operator[](std::uint32_t id) {
    RS_DASSERT(id < items_.size());
    return items_[id];
  }
  [[nodiscard]] const T& operator[](std::uint32_t id) const {
    RS_DASSERT(id < items_.size());
    return items_[id];
  }

  /// Slots ever allocated (live + free).
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }

  void reserve(std::size_t n) {
    items_.reserve(n);
    free_.reserve(n);
  }

  void clear() noexcept {
    items_.clear();
    free_.clear();
  }

 private:
  std::vector<T> items_;
  std::vector<std::uint32_t> free_;
};

/// Ring-buffer FIFO with power-of-two capacity.  Supports the deque subset
/// the kernel needs — push_back/pop_front for FIFO service, push_front /
/// pop_back/erase for the LIFO and random ablations — in one contiguous
/// allocation instead of std::deque's chunk map.  An empty ring owns no
/// memory, which matters when a scenario instantiates one queue per arc
/// (d * 2^d of them) and most are idle.
template <typename T>
class Ring {
 public:
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }

  [[nodiscard]] const T& front() const {
    RS_DASSERT(count_ > 0);
    return buf_[head_];
  }
  [[nodiscard]] const T& back() const {
    RS_DASSERT(count_ > 0);
    return buf_[wrap(head_ + count_ - 1)];
  }
  /// i-th element counted from the front (deque-compatible indexing).
  [[nodiscard]] const T& operator[](std::size_t i) const {
    RS_DASSERT(i < count_);
    return buf_[wrap(head_ + i)];
  }

  void push_back(T value) {
    if (count_ == buf_.size()) grow();
    buf_[wrap(head_ + count_)] = value;
    ++count_;
  }

  void push_front(T value) {
    if (count_ == buf_.size()) grow();
    head_ = wrap(head_ + buf_.size() - 1);
    buf_[head_] = value;
    ++count_;
  }

  T pop_front() {
    RS_DASSERT(count_ > 0);
    const T value = buf_[head_];
    head_ = wrap(head_ + 1);
    --count_;
    return value;
  }

  void pop_back() {
    RS_DASSERT(count_ > 0);
    --count_;
  }

  /// Removes the i-th element from the front, shifting later elements
  /// toward the front (only the random-service ablation uses this).
  void erase(std::size_t i) {
    RS_DASSERT(i < count_);
    for (std::size_t j = i; j + 1 < count_; ++j) {
      buf_[wrap(head_ + j)] = buf_[wrap(head_ + j + 1)];
    }
    --count_;
  }

  void clear() noexcept {
    head_ = 0;
    count_ = 0;
  }

  void reserve(std::size_t n) {
    if (n <= buf_.size()) return;
    std::size_t cap = buf_.empty() ? 8 : buf_.size();
    while (cap < n) cap *= 2;
    rebuild(cap);
  }

 private:
  [[nodiscard]] std::size_t wrap(std::size_t i) const noexcept {
    return i & (buf_.size() - 1);
  }

  void grow() { rebuild(buf_.empty() ? 8 : 2 * buf_.size()); }

  void rebuild(std::size_t cap) {
    std::vector<T> bigger(cap);
    for (std::size_t i = 0; i < count_; ++i) bigger[i] = buf_[wrap(head_ + i)];
    buf_ = std::move(bigger);
    head_ = 0;
  }

  std::vector<T> buf_;  ///< power-of-two capacity (or empty)
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

/// Queue of packet ids (one per arc).
using FifoRing = Ring<std::uint32_t>;

/// Measurement-window accounting shared by every simulator: the delay /
/// hops / population accumulators, the windowed arrival / delivery / drop
/// counters, optional occupancy trackers and delay histogram, and the
/// end-of-run harvest (time averages, throughput, Little's-law check).
/// configure() fixes the static shape; begin() resets all values, so one
/// instance serves many replications without reallocating.
class KernelStats {
 public:
  struct Config {
    /// Number of time-weighted occupancy trackers (0 = tracking off).  The
    /// hypercube indexes them by node, the butterfly by level, the levelled
    /// network by server.
    std::size_t occupancy_trackers = 0;
    bool delay_histogram = false;
    double histogram_lo = 0.0;
    double histogram_bin_width = 1.0;
    std::size_t histogram_bins = 1;
  };

  void configure(const Config& config) { config_ = config; }

  /// Opens the measurement window [warmup, horizon] and resets every
  /// accumulator (keeping storage).
  void begin(double warmup, double horizon);

  [[nodiscard]] double warmup() const noexcept { return warmup_; }
  [[nodiscard]] double measurement_window() const noexcept { return window_; }

  // --- accounting (hot path) --------------------------------------------

  /// One packet entered the network: windowed arrival count + population.
  void count_arrival(double now) {
    if (now >= warmup_) ++arrivals_window_;
    population_.add(now, +1.0);
  }

  /// One packet reached its destination: delay / hops / histogram, counted
  /// iff it was generated inside the window (the paper's convention).
  /// `stretch` > 0 additionally feeds the path-stretch accumulator (hops
  /// divided by the packet's fault-free path length).
  void record_delivery(double now, double gen_time, double hops,
                       double stretch = 0.0) {
    if (gen_time >= warmup_) {
      ++deliveries_window_;
      const double delay = now - gen_time;
      delay_.add(delay);
      hops_.add(hops);
      if (stretch > 0.0) stretch_.add(stretch);
      if (delay_histogram_) delay_histogram_->add(delay);
    }
  }

  /// Windowed delivery count alone — for schemes (the levelled network)
  /// that count departures by departure time rather than generation time.
  void count_delivery() noexcept { ++deliveries_window_; }

  void count_drop(double now) {
    if (now >= warmup_) ++drops_window_;
  }

  /// A packet lost to a fault (dead arc / dead node / TTL exhaustion) —
  /// kept separate from finite-buffer drops so the two loss sources stay
  /// distinguishable in the harvested metrics.  Counted iff the packet was
  /// *generated* inside the window, the same convention record_delivery
  /// uses, so the delivery ratio compares like with like.
  void count_fault_drop(double gen_time) {
    if (gen_time >= warmup_) ++fault_drops_window_;
  }

  void occupancy_add(std::size_t tracker, double now, double delta) {
    if (!occupancy_.empty()) occupancy_[tracker].add(now, delta);
  }

  /// Whether occupancy trackers are configured — lets batch loops hoist the
  /// occupancy_add() no-op check out of their per-event path.
  [[nodiscard]] bool occupancy_enabled() const noexcept {
    return !occupancy_.empty();
  }

  /// Direct accumulator access for scheme-specific bookkeeping.
  [[nodiscard]] Summary& delay() noexcept { return delay_; }
  [[nodiscard]] const Summary& delay() const noexcept { return delay_; }
  [[nodiscard]] Summary& hops() noexcept { return hops_; }
  [[nodiscard]] const Summary& hops() const noexcept { return hops_; }
  [[nodiscard]] Summary& stretch() noexcept { return stretch_; }
  [[nodiscard]] const Summary& stretch() const noexcept { return stretch_; }
  [[nodiscard]] TimeWeighted& population() noexcept { return population_; }

  /// Restarts the time-weighted trackers when the window opens mid-run.
  void reset_at_warmup(double warmup) {
    population_.reset(warmup);
    for (auto& occ : occupancy_) occ.reset(warmup);
  }

  /// Harvests the derived results.  `pending_reset` is true when no event
  /// fired at or after the warmup time (the population tracker still needs
  /// its reset, exactly as the pre-kernel simulators did it).
  void finalize(double warmup, double horizon, bool pending_reset);

  // --- results (valid after finalize()) ---------------------------------

  [[nodiscard]] double time_avg_population() const noexcept { return time_avg_population_; }
  [[nodiscard]] double peak_population() const noexcept { return peak_population_; }
  [[nodiscard]] double final_population() const noexcept { return final_population_; }
  [[nodiscard]] double throughput() const noexcept { return throughput_; }
  [[nodiscard]] std::uint64_t deliveries_in_window() const noexcept { return deliveries_window_; }
  [[nodiscard]] std::uint64_t arrivals_in_window() const noexcept { return arrivals_window_; }
  [[nodiscard]] std::uint64_t drops_in_window() const noexcept { return drops_window_; }
  [[nodiscard]] std::uint64_t fault_drops_in_window() const noexcept {
    return fault_drops_window_;
  }

  /// Windowed delivery ratio: deliveries over every packet whose fate was
  /// decided (delivered, buffer-dropped or fault-dropped).  Deliveries and
  /// fault drops are windowed by generation time; buffer drops keep their
  /// pre-existing (pinned) drop-time windowing.  1 when nothing was
  /// decided; exactly 1 with no faults and infinite buffers.
  [[nodiscard]] double delivery_ratio() const noexcept {
    const double decided = static_cast<double>(deliveries_window_ +
                                               drops_window_ + fault_drops_window_);
    return decided == 0.0 ? 1.0
                          : static_cast<double>(deliveries_window_) / decided;
  }

  /// Mean path stretch (hops / fault-free path length) over delivered
  /// packets; 1 when no stretch observations were recorded (also the exact
  /// value on a fault-free network).
  [[nodiscard]] double mean_stretch() const noexcept {
    return stretch_.empty() ? 1.0 : stretch_.mean();
  }

  /// Delay quantile from the delay histogram; 0 when the histogram is off
  /// or empty.
  [[nodiscard]] double delay_quantile(double q) const {
    return delay_histogram_ && delay_histogram_->count() > 0
               ? delay_histogram_->quantile(q)
               : 0.0;
  }

  /// Mean occupancy per tracker (empty when tracking is off).
  [[nodiscard]] const std::vector<double>& occupancy_means() const noexcept {
    return occupancy_means_;
  }
  [[nodiscard]] double occupancy_mean(std::size_t tracker) const {
    return occupancy_means_.at(tracker);
  }
  /// Largest instantaneous tracker value seen in the window.
  [[nodiscard]] double max_occupancy() const noexcept { return max_occupancy_; }

  [[nodiscard]] const std::optional<Histogram>& delay_histogram() const noexcept {
    return delay_histogram_;
  }

  /// Little's-law self check over the window (L = lambda * W).
  [[nodiscard]] LittleCheck little_check() const noexcept {
    LittleCheck check;
    check.time_avg_population = time_avg_population_;
    check.arrival_rate =
        window_ > 0.0 ? static_cast<double>(arrivals_window_) / window_ : 0.0;
    check.mean_sojourn = delay_.mean();
    return check;
  }

 private:
  Config config_{};
  double warmup_ = 0.0;
  double window_ = 0.0;
  Summary delay_;
  Summary hops_;
  Summary stretch_;
  TimeWeighted population_;
  std::vector<TimeWeighted> occupancy_;
  std::vector<double> occupancy_means_;
  std::optional<Histogram> delay_histogram_;
  std::uint64_t deliveries_window_ = 0;
  std::uint64_t arrivals_window_ = 0;
  std::uint64_t drops_window_ = 0;
  std::uint64_t fault_drops_window_ = 0;
  double time_avg_population_ = 0.0;
  double peak_population_ = 0.0;
  double final_population_ = 0.0;
  double max_occupancy_ = 0.0;
  double throughput_ = 0.0;
};

/// Sentinel for "no occupancy tracker" in PacketKernel::enqueue/finish_arc.
inline constexpr std::size_t kNoTracker = static_cast<std::size_t>(-1);

/// The delay-tail tracking convention shared by the packet schemes:
/// unit-width bins over [0, 64*d] — the same 64*d that bounds the default
/// fault TTL, so a TTL-length walk still lands inside the histogram.
inline void enable_delay_tail_tracking(KernelStats::Config& config, int d) {
  config.delay_histogram = true;
  config.histogram_lo = 0.0;
  config.histogram_bin_width = 1.0;
  config.histogram_bins = static_cast<std::size_t>(64) * static_cast<std::size_t>(d);
}

/// Static description of one kernel instance; configure() may be called
/// repeatedly (replication reuse) — storage is kept, state is reset.
struct PacketKernelConfig {
  std::size_t num_arcs = 0;
  std::uint64_t seed = 1;
  std::uint64_t stream_salt = 0;  ///< scheme-specific RNG stream id
  /// Aggregate external arrival rate (sum over sources).  Continuous mode
  /// draws exponential gaps at this rate; slotted mode draws
  /// Poisson(birth_rate * slot) batch sizes.
  double birth_rate = 0.0;
  double slot = 0.0;  ///< > 0: slotted arrivals at k*slot (§3.4)
  const PacketTrace* trace = nullptr;  ///< replay instead of generating
  /// Per-source fixed-destination mode (workload = permutation): entry x is
  /// the destination of *every* packet generated at source x, instead of a
  /// draw from the destination law.  Non-owning; must stay valid through
  /// drive() and have one entry per source.  Null = sample destinations.
  const std::vector<NodeId>* fixed_destinations = nullptr;
  ArcServiceOrder service_order = ArcServiceOrder::kFifo;
  std::uint32_t buffer_capacity = 0;  ///< max per arc incl. in service; 0 = infinite
  /// Pre-reserve hint: expected peak number of packets in flight.
  std::size_t expected_packets = 0;
  /// Non-owning fault model (src/fault/fault_model.hpp); null = pristine
  /// network.  The owning scheme must configure it before drive(); when
  /// its dynamic process is on, the kernel drives up/down transitions
  /// through its control-event slot in global (time, seq) order.
  FaultModel* fault_model = nullptr;
  KernelStats::Config stats{};
};

/// The event-driven core: pending-event set, per-arc queues, arrival
/// process and statistics, generic over the scheme's packet type `Pkt`.
/// The scheme owns the routing decision; the kernel owns everything else.
///
/// **The fast event set.**  A general pending-event set needs a priority
/// queue, but the kernel's events have special structure: every service
/// completion is scheduled at now + 1.0 (unit-length packets), and the
/// simulation clock is nondecreasing, so service completions are *pushed
/// in nondecreasing (time, seq) order* — a plain FIFO ring already holds
/// them sorted.  The only competing events are the arrival-process control
/// events (next birth / next slot / next trace record), of which at most
/// one is outstanding at any moment.  The event set is therefore a
/// monotone ring plus a single control slot; each pop is one (time, seq)
/// comparison — O(1) instead of O(log n) heap sifts — and extraction
/// order is *identical* to the heap's strict (time, seq) total order.
template <typename Pkt>
class PacketKernel {
 public:
  enum class EventKind : std::uint8_t { kBirth, kSlot, kArcDone };

  void configure(const PacketKernelConfig& config) {
    config_ = config;
    rng_.reseed(derive_stream(config.seed, config.stream_salt));
    if (arc_queue_.size() != config.num_arcs) arc_queue_.resize(config.num_arcs);
    for (auto& queue : arc_queue_) queue.clear();
    arc_counters_.assign(config.num_arcs, ArcCounters{});
    service_events_.clear();
    // Pre-reserve from the expected load: the event set holds at most one
    // service completion per busy arc.
    service_events_.reserve(config.num_arcs / 2 + 16);
    has_control_ = false;
    has_fault_control_ = false;
    next_seq_ = 0;
    pool_.clear();
    // Default reserve hint for trace replay: a quarter of the trace is a
    // comfortable bound on simultaneously in-flight packets.
    std::size_t expected = config.expected_packets;
    if (expected == 0 && config.trace != nullptr) {
      expected = config.trace->packets.size() / 4 + 64;
    }
    if (expected > 0) pool_.reserve(expected);
    stats_.configure(config.stats);
  }

  [[nodiscard]] Rng& rng() noexcept { return rng_; }
  [[nodiscard]] KernelStats& stats() noexcept { return stats_; }
  [[nodiscard]] const KernelStats& stats() const noexcept { return stats_; }

  [[nodiscard]] Pkt& packet(std::uint32_t id) { return pool_[id]; }
  [[nodiscard]] const Pkt& packet(std::uint32_t id) const { return pool_[id]; }
  [[nodiscard]] std::uint32_t allocate_packet() { return pool_.allocate(); }

  [[nodiscard]] const std::vector<ArcCounters>& arc_counters() const noexcept {
    return arc_counters_;
  }

  /// Mutable arc counters: the borrow seam for the soa_batch backend
  /// (des/slotted_batch.hpp), which drives the kernel's own RNG, stats and
  /// counters so its results are bit-identical to this kernel's.
  [[nodiscard]] std::vector<ArcCounters>& arc_counters_mutable() noexcept {
    return arc_counters_;
  }

  [[nodiscard]] const FaultModel* fault_model() const noexcept {
    return config_.fault_model;
  }

  /// O(1): is the arc down right now?  Always false without a fault model.
  [[nodiscard]] bool arc_faulty(std::uint32_t arc) const noexcept {
    return config_.fault_model != nullptr && config_.fault_model->is_faulty(arc);
  }

  /// Windowed arrival accounting for a freshly injected packet.
  void count_arrival(double now) { stats_.count_arrival(now); }

  /// True when the per-source fixed-destination table is configured.
  [[nodiscard]] bool has_fixed_destinations() const noexcept {
    return config_.fixed_destinations != nullptr;
  }

  /// The fixed destination of packets generated at `origin` (precondition:
  /// has_fixed_destinations() and origin indexes the table).
  [[nodiscard]] NodeId fixed_destination(NodeId origin) const {
    RS_DASSERT(config_.fixed_destinations != nullptr &&
               origin < config_.fixed_destinations->size());
    return (*config_.fixed_destinations)[origin];
  }

  /// The shared arrival-sampling step of on_spawn: a uniform origin over
  /// `num_sources`, and its destination — the per-source fixed table when
  /// configured (consuming no destination randomness), a draw from `law`
  /// otherwise.  The origin draw and the law's consumption order are
  /// identical to the pre-refactor per-scheme code, so sampled workloads
  /// stay bit-identical (tests/test_kernel_parity.cpp).
  [[nodiscard]] std::pair<NodeId, NodeId> sample_spawn(
      std::uint64_t num_sources, const DestinationDistribution& law) {
    const auto origin = static_cast<NodeId>(rng_.uniform_below(num_sources));
    const NodeId dest = config_.fixed_destinations != nullptr
                            ? fixed_destination(origin)
                            : law.sample(rng_, origin);
    return {origin, dest};
  }

  /// Appends the packet to the arc's queue, schedules the arc's service
  /// completion if it was idle, and maintains counters / occupancy
  /// (`tracker` indexes the stats occupancy tracker; kNoTracker skips it).
  /// Returns false when a finite buffer was full and the packet dropped.
  bool enqueue(double now, std::uint32_t arc, std::uint32_t pkt, bool external,
               std::size_t tracker = kNoTracker) {
    auto& queue = arc_queue_[arc];
    if (config_.buffer_capacity > 0 && queue.size() >= config_.buffer_capacity) {
      drop(now, pkt);
      return false;
    }
    if (now >= stats_.warmup()) {
      auto& counters = arc_counters_[arc];
      ++counters.total_arrivals;
      if (external) ++counters.external_arrivals;
    }
    if (tracker != kNoTracker) stats_.occupancy_add(tracker, now, +1.0);
    queue.push_back(pkt);
    if (queue.size() == 1) schedule_service(now + 1.0, arc);
    return true;
  }

  /// Completes one unit service at the arc: dequeues the packet in service,
  /// applies the service-order ablation to pick the next one, reschedules
  /// the arc if packets wait, and returns the completed packet's id.
  std::uint32_t finish_arc(double now, std::uint32_t arc,
                           std::size_t tracker = kNoTracker) {
    auto& queue = arc_queue_[arc];
    RS_DASSERT(!queue.empty());
    const std::uint32_t pkt = queue.pop_front();
    if (!queue.empty()) {
      // Select the next packet to serve and rotate it to the head.  The
      // head is always the packet in service; the rest of the queue stays
      // in arrival order, so LIFO really serves the most recent arrival
      // and random picks uniformly among the waiting packets.
      if (config_.service_order == ArcServiceOrder::kLifo) {
        const std::uint32_t chosen = queue.back();
        queue.pop_back();
        queue.push_front(chosen);
      } else if (config_.service_order == ArcServiceOrder::kRandom) {
        const auto pick = static_cast<std::size_t>(rng_.uniform_below(queue.size()));
        const std::uint32_t chosen = queue[pick];
        queue.erase(pick);
        queue.push_front(chosen);
      }
      schedule_service(now + 1.0, arc);
    }
    if (tracker != kNoTracker) stats_.occupancy_add(tracker, now, -1.0);
    return pkt;
  }

  /// Full delivery: statistics + population + packet recycling.  `stretch`
  /// > 0 feeds the path-stretch accumulator (see KernelStats).
  void deliver(double now, std::uint32_t pkt, double gen_time, double hops,
               double stretch = 0.0) {
    stats_.record_delivery(now, gen_time, hops, stretch);
    stats_.population().add(now, -1.0);
    pool_.release(pkt);
  }

  /// Finite-buffer loss: drop statistics + population + recycling.
  void drop(double now, std::uint32_t pkt) {
    stats_.count_drop(now);
    stats_.population().add(now, -1.0);
    pool_.release(pkt);
  }

  /// Fault loss (dead arc / dead node / TTL): counted separately from
  /// finite-buffer drops, windowed by the packet's generation time (the
  /// delivery convention).  Requires Pkt to expose `gen_time`.
  void drop_faulty(double now, std::uint32_t pkt) {
    stats_.count_fault_drop(pool_[pkt].gen_time);
    stats_.population().add(now, -1.0);
    pool_.release(pkt);
  }

  /// Removes a packet from the network without delivery accounting
  /// (multicast copies that merged into another branch's statistics).
  void retire(double now, std::uint32_t pkt) {
    stats_.population().add(now, -1.0);
    pool_.release(pkt);
  }

  /// The main loop: seeds the arrival process, dispatches events on
  /// [0, horizon] to the scheme's hooks, and harvests the statistics over
  /// [warmup, horizon].
  template <typename Scheme>
  void drive(Scheme& scheme, double warmup, double horizon) {
    RS_EXPECTS(warmup >= 0.0 && warmup <= horizon);
    stats_.begin(warmup, horizon);
    // Observability (docs/OBSERVABILITY.md): one span per drive() call on
    // the ambient session — a single thread-local load plus branch when
    // tracing is off (BM_TraceOverhead pins the cost) — and per-event
    // counters only when the build opts into ROUTESIM_KERNEL_TRACE, so
    // the default dispatch loop is untouched.  Nothing here draws RNG or
    // reorders events; results stay bit-identical with tracing on
    // (tests/test_kernel_parity.cpp runs every pin under a live session).
    obs::TraceSpan drive_span(obs::thread_trace(), "kernel.drive", "kernel");
    RS_KERNEL_TRACE_ONLY(
        std::uint64_t ktrace_events = 0; std::uint64_t ktrace_service = 0;
        std::uint64_t ktrace_slot_ticks = 0;
        std::uint64_t ktrace_slot_packets = 0;
        std::uint64_t ktrace_slot_batch_max = 0;)

    if (config_.trace != nullptr) {
      trace_pos_ = 0;
      if (!config_.trace->packets.empty()) {
        schedule_control(config_.trace->packets.front().time, EventKind::kBirth);
      }
    } else if (config_.slot > 0.0) {
      schedule_control(0.0, EventKind::kSlot);
    } else if (config_.birth_rate > 0.0) {
      schedule_control(sample_exponential(rng_, config_.birth_rate),
                       EventKind::kBirth);
    }
    if (config_.fault_model != nullptr && config_.fault_model->dynamic()) {
      schedule_fault(config_.fault_model->next_transition_time());
    }

    bool stats_reset = warmup == 0.0;
    for (;;) {
      // Earliest of (single arrival control event, single fault control
      // event, front of the monotone service ring) under the strict
      // (time, seq) order — identical to a heap's extraction order,
      // without the heap.  The fault slot is empty for pristine networks,
      // so the fault-free pop reduces to the two-way comparison.
      enum class Source : std::uint8_t { kControl, kFault, kService };
      Source source = Source::kControl;
      bool found = has_control_;
      double t = control_time_;
      std::uint64_t seq = control_seq_;
      if (has_fault_control_ &&
          (!found || fault_time_ < t || (fault_time_ == t && fault_seq_ < seq))) {
        source = Source::kFault;
        found = true;
        t = fault_time_;
        seq = fault_seq_;
      }
      if (!service_events_.empty()) {
        const ServiceEvent& head = service_events_.front();
        if (!found || head.time < t || (head.time == t && head.seq < seq)) {
          source = Source::kService;
          found = true;
          t = head.time;
        }
      }
      if (!found || t > horizon) break;
      RS_KERNEL_TRACE_ONLY(++ktrace_events;)
      if (!stats_reset && t >= warmup) {
        stats_.reset_at_warmup(warmup);
        stats_reset = true;
      }

      if (source == Source::kService) {
        RS_KERNEL_TRACE_ONLY(++ktrace_service;)
        const std::uint32_t arc = service_events_.pop_front().arc;
        scheme.on_arc_done(t, arc);
        continue;
      }
      if (source == Source::kFault) {
        has_fault_control_ = false;
        config_.fault_model->advance_to(t);
        schedule_fault(config_.fault_model->next_transition_time());
        continue;
      }
      const EventKind kind = control_kind_;
      has_control_ = false;
      if (kind == EventKind::kBirth) {
        if (config_.trace != nullptr) {
          const auto& traced = config_.trace->packets[trace_pos_++];
          if constexpr (requires {
                          scheme.on_traced(t, traced.origin, traced.destination);
                        }) {
            scheme.on_traced(t, traced.origin, traced.destination);
          } else {
            RS_EXPECTS_MSG(false, "scheme has no trace-replay hook");
          }
          if (trace_pos_ < config_.trace->packets.size()) {
            schedule_control(config_.trace->packets[trace_pos_].time,
                             EventKind::kBirth);
          }
        } else {
          scheme.on_spawn(t);
          schedule_control(t + sample_exponential(rng_, config_.birth_rate),
                           EventKind::kBirth);
        }
      } else {  // kSlot
        const std::uint64_t batch =
            sample_poisson(rng_, config_.birth_rate * config_.slot);
        RS_KERNEL_TRACE_ONLY(
            ++ktrace_slot_ticks; ktrace_slot_packets += batch;
            if (batch > ktrace_slot_batch_max) ktrace_slot_batch_max = batch;)
        for (std::uint64_t i = 0; i < batch; ++i) scheme.on_spawn(t);
        schedule_control(t + config_.slot, EventKind::kSlot);
      }
    }

    stats_.finalize(warmup, horizon, !stats_reset);
    RS_KERNEL_TRACE_ONLY({
      if (obs::TraceSession* session = obs::thread_trace();
          session != nullptr) {
        session->instant(
            "kernel.summary", "kernel",
            "{\"events\":" + std::to_string(ktrace_events) +
                ",\"service\":" + std::to_string(ktrace_service) +
                ",\"slot_ticks\":" + std::to_string(ktrace_slot_ticks) +
                ",\"slot_packets\":" + std::to_string(ktrace_slot_packets) +
                ",\"slot_batch_max\":" +
                std::to_string(ktrace_slot_batch_max) + "}");
      }
      auto& registry = obs::global_metrics();
      registry.counter("routesim_kernel_events_total")
          .add(static_cast<double>(ktrace_events));
      registry.counter("routesim_kernel_slot_ticks_total")
          .add(static_cast<double>(ktrace_slot_ticks));
    });
  }

 private:
  struct ServiceEvent {
    double time = 0.0;
    std::uint64_t seq = 0;  ///< global insertion sequence (tie-break)
    std::uint32_t arc = 0;
  };

  /// Service completions are pushed with nondecreasing times (now + 1.0
  /// under a nondecreasing clock), so the ring stays sorted by (time, seq).
  void schedule_service(double time, std::uint32_t arc) {
    RS_DASSERT(service_events_.empty() || service_events_.back().time <= time);
    service_events_.push_back(ServiceEvent{time, next_seq_++, arc});
  }

  /// At most one arrival-process control event is outstanding at a time.
  void schedule_control(double time, EventKind kind) {
    RS_DASSERT(!has_control_);
    control_time_ = time;
    control_seq_ = next_seq_++;
    control_kind_ = kind;
    has_control_ = true;
  }

  /// At most one fault-transition control event is outstanding at a time;
  /// an infinite time (exhausted dynamic process) leaves the slot empty.
  void schedule_fault(double time) {
    RS_DASSERT(!has_fault_control_);
    if (!std::isfinite(time)) return;
    fault_time_ = time;
    fault_seq_ = next_seq_++;
    has_fault_control_ = true;
  }

  PacketKernelConfig config_{};
  Rng rng_;
  Pool<Pkt> pool_;
  std::vector<FifoRing> arc_queue_;
  std::vector<ArcCounters> arc_counters_;
  Ring<ServiceEvent> service_events_;
  bool has_control_ = false;
  double control_time_ = 0.0;
  std::uint64_t control_seq_ = 0;
  EventKind control_kind_ = EventKind::kBirth;
  bool has_fault_control_ = false;
  double fault_time_ = 0.0;
  std::uint64_t fault_seq_ = 0;
  std::uint64_t next_seq_ = 0;
  KernelStats stats_;
  std::size_t trace_pos_ = 0;
};

}  // namespace routesim
