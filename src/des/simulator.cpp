#include "des/simulator.hpp"

#include "util/assert.hpp"

namespace routesim {

CallbackSimulator::EventId CallbackSimulator::schedule_at(double when, Handler handler) {
  RS_EXPECTS_MSG(when >= now_, "cannot schedule into the past");
  const EventId id = next_id_++;
  queue_.push(when, Entry{id, std::move(handler)});
  return id;
}

bool CallbackSimulator::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  return cancelled_.insert(id).second;
}

bool CallbackSimulator::step() {
  while (!queue_.empty()) {
    auto event = queue_.pop();
    if (auto it = cancelled_.find(event.payload.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    RS_DASSERT(event.time >= now_);
    now_ = event.time;
    ++executed_;
    event.payload.handler();
    return true;
  }
  return false;
}

void CallbackSimulator::run_until(double horizon) {
  for (;;) {
    // Skip over cancelled entries without advancing the clock.
    while (!queue_.empty()) {
      if (auto it = cancelled_.find(queue_.top().payload.id); it != cancelled_.end()) {
        cancelled_.erase(it);
        queue_.pop();
      } else {
        break;
      }
    }
    if (queue_.empty()) return;
    if (queue_.top().time > horizon) {
      now_ = horizon;
      return;
    }
    step();
  }
}

}  // namespace routesim
