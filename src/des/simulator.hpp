#pragma once
/// \file simulator.hpp
/// \brief General-purpose callback discrete-event simulator.
///
/// The performance-critical simulators in src/routing and src/queueing manage
/// their own typed EventQueue directly; CallbackSimulator is the convenience
/// engine for tests, examples and ad-hoc models.  It supports scheduling,
/// lazy cancellation, and running until a horizon or event-count limit.

#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_set>

#include "des/event_queue.hpp"

namespace routesim {

class CallbackSimulator {
 public:
  using Handler = std::function<void()>;
  using EventId = std::uint64_t;

  /// Current simulation time.  Starts at 0.
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Number of events executed so far.
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

  /// Number of events currently pending (including cancelled-but-unpopped).
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  /// Schedules handler at absolute time `when` (>= now) and returns an id
  /// usable with cancel().
  EventId schedule_at(double when, Handler handler);

  /// Schedules handler `delay` (>= 0) after the current time.
  EventId schedule_in(double delay, Handler handler) {
    return schedule_at(now_ + delay, std::move(handler));
  }

  /// Lazily cancels a pending event.  Cancelling an already-executed or
  /// unknown id is a no-op and returns false.
  bool cancel(EventId id);

  /// Runs until the queue drains or the next event would exceed `horizon`.
  /// The clock is left at min(horizon, time of last executed event... ) —
  /// specifically, at `horizon` if stopped by it, else at the last event time.
  void run_until(double horizon = std::numeric_limits<double>::infinity());

  /// Executes exactly one event if any is pending; returns false otherwise.
  bool step();

 private:
  struct Entry {
    EventId id;
    Handler handler;
  };

  EventQueue<Entry> queue_;
  std::unordered_set<EventId> cancelled_;
  EventId next_id_ = 1;
  double now_ = 0.0;
  std::uint64_t executed_ = 0;
};

}  // namespace routesim
