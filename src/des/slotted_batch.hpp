#pragma once
/// \file slotted_batch.hpp
/// \brief The soa_batch kernel backend: per-arc batch processing of the
///        unit-time service ring, stepped slot by slot over a
///        structure-of-arrays packet store.
///
/// **Why batches are legal.**  In slotted mode every event time is a
/// multiple of the slot length: packets spawn at slot boundaries k*slot and
/// every service completes exactly 1.0 after it starts, so the whole event
/// population at one instant t is "every arc whose head-of-line service
/// completes at t", plus possibly the slot-control event.  The scalar
/// kernel pops these one by one through its (time, seq) total order; the
/// batch backend pops them as one *batch* — a vector of distinct arcs in
/// scheduling order — and replays the scalar per-event order inside the
/// batch:
///
///   - services precede the slot control at equal times: a completion at t
///     was scheduled at t - 1.0, the slot control at t - slot >= t - 1.0,
///     and at slot == 1.0 the scalar drive loop injects the slot's spawns
///     (scheduling their services) *before* re-arming the control — so the
///     control's seq always exceeds every service seq at a tie;
///   - appends during processing at time t always target t + 1.0, which is
///     >= every outstanding batch time (the clock is nondecreasing and
///     x -> x + 1.0 is monotone in floating point), so the batch wheel
///     stays sorted by construction — no priority queue, no per-event
///     (time, seq) records at all;
///   - two distinct times can round to the same t + 1.0; appending to the
///     back batch whenever the time matches preserves the scalar's seq
///     order within the shared batch.
///
/// **The two-phase step.**  Each batch is processed as
///   Phase A (route): gather the head-of-line packet of every arc in the
///     batch and compute its next arc (or a deliver / fault-drop sentinel)
///     from the SoA arrays.  Queue fronts are stable under Phase B's
///     pushes — a push lands at the *back* of a queue, and the batch's arcs
///     are distinct — so the gather is exact.  Scheme RNG draws (fault
///     reroutes) happen here in batch order, which is the scalar's event
///     order; the RNG stream is disjoint from the statistics state, so the
///     coarser interleaving is unobservable.  Without faults this loop is
///     branch-light, structure-of-arrays arithmetic — the auto-vectorizable
///     shape (no intrinsics).
///   Phase B (commit): replay the scalar bookkeeping exactly, packet by
///     packet in batch order — pop, reschedule the arc if busy, occupancy,
///     then deliver / drop / enqueue with the identical statistics calls.
///
/// The driver borrows the owning PacketKernel's Rng, KernelStats and arc
/// counters, so every draw and every accumulator update goes through the
/// same objects in the same order as the scalar path: results are
/// bit-identical, pinned by tests/test_kernel_parity.cpp.
///
/// Not every scalar feature batches: the backend requires slotted time
/// (slot > 0), FIFO arc service, and a static fault set (a dynamic up/down
/// process and continuous/trace arrivals put control events at arbitrary
/// times, where the services-first tie rule above does not hold).  Adopting
/// schemes validate those restrictions at scenario-compile time.

#include <algorithm>
#include <vector>

#include "des/packet_kernel.hpp"
#include "des/soa_store.hpp"
#include "util/assert.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"
#include "workload/destination.hpp"

namespace routesim {

/// Everything the batch driver borrows or needs to know; the owning scheme
/// fills this from its PacketKernelConfig after kernel.configure() (so the
/// Rng is already reseeded and the stats shape fixed).
struct SlottedBatchContext {
  std::size_t num_arcs = 0;
  double birth_rate = 0.0;  ///< aggregate external arrival rate
  double slot = 0.0;        ///< slot length; must be > 0
  std::uint32_t buffer_capacity = 0;  ///< max per arc incl. in service; 0 = inf
  std::size_t expected_packets = 0;   ///< pre-reserve hint for the store
  const std::vector<NodeId>* fixed_destinations = nullptr;  ///< permutation mode
  Rng* rng = nullptr;                        ///< the kernel's RNG (borrowed)
  KernelStats* stats = nullptr;              ///< the kernel's stats (borrowed)
  std::vector<ArcCounters>* arc_counters = nullptr;  ///< kernel's (borrowed)
};

/// The batch stepping engine.  A scheme plugs in with a Policy providing:
///   spawn(now)                          inject one packet (slot births);
///   route_batch(now, arcs, pkts, next, n)
///                                       Phase A: next[i] = next arc of the
///                                       packet completing arcs[i], or
///                                       kDeliver / kDropFault;
///   complete(now, pkt, next)            Phase B tail: deliver / fault-drop
///                                       / enqueue the routed packet;
///   finish_tracker(arc)                 occupancy tracker decremented when
///                                       a service at `arc` completes
///                                       (kNoTracker = none).
class SlottedBatchDriver {
 public:
  /// Phase A sentinel: the packet reached its destination.
  static constexpr std::uint32_t kDeliver = 0xFFFFFFFFu;
  /// Phase A sentinel: the packet is lost to a fault (dead arc / TTL).
  static constexpr std::uint32_t kDropFault = 0xFFFFFFFEu;

  void configure(const SlottedBatchContext& ctx) {
    RS_EXPECTS(ctx.rng != nullptr && ctx.stats != nullptr &&
               ctx.arc_counters != nullptr);
    RS_EXPECTS_MSG(ctx.slot > 0.0, "the soa_batch backend is slotted-only");
    ctx_ = ctx;
    if (queues_.size() != ctx.num_arcs) queues_.resize(ctx.num_arcs);
    for (auto& queue : queues_) queue.clear();
    recycle_wheel();
    store_.clear();
    if (ctx.expected_packets > 0) store_.reserve(ctx.expected_packets);
  }

  [[nodiscard]] SoaPacketStore& store() noexcept { return store_; }
  [[nodiscard]] Rng& rng() noexcept { return *ctx_.rng; }
  [[nodiscard]] KernelStats& stats() noexcept { return *ctx_.stats; }

  /// Mirror of PacketKernel::sample_spawn: identical draws in identical
  /// order (the RNG is the kernel's own).
  [[nodiscard]] std::pair<NodeId, NodeId> sample_spawn(
      std::uint64_t num_sources, const DestinationDistribution& law) {
    const auto origin = static_cast<NodeId>(ctx_.rng->uniform_below(num_sources));
    const NodeId dest = ctx_.fixed_destinations != nullptr
                            ? (*ctx_.fixed_destinations)[origin]
                            : law.sample(*ctx_.rng, origin);
    return {origin, dest};
  }

  void count_arrival(double now) { ctx_.stats->count_arrival(now); }

  /// Mirror of PacketKernel::enqueue (FIFO service only): same buffer
  /// check, counters, occupancy and scheduling decision, with the service
  /// ring replaced by a batch-wheel append.
  bool enqueue(double now, std::uint32_t arc, std::uint32_t pkt, bool external,
               std::size_t tracker = kNoTracker) {
    auto& queue = queues_[arc];
    if (ctx_.buffer_capacity > 0 && queue.size() >= ctx_.buffer_capacity) {
      drop(now, pkt);
      return false;
    }
    if (now >= ctx_.stats->warmup()) {
      auto& counters = (*ctx_.arc_counters)[arc];
      ++counters.total_arrivals;
      if (external) ++counters.external_arrivals;
    }
    if (occupancy_on_ && tracker != kNoTracker) {
      ctx_.stats->occupancy_add(tracker, now, +1.0);
    }
    queue.push_back(pkt);
    if (queue.size() == 1) wheel_push(now + 1.0, arc, pkt);
    return true;
  }

  /// Mirrors of PacketKernel::deliver / drop / drop_faulty, against the SoA
  /// store's free list.
  void deliver(double now, std::uint32_t pkt, double gen_time, double hops,
               double stretch = 0.0) {
    ctx_.stats->record_delivery(now, gen_time, hops, stretch);
    ctx_.stats->population().add(now, -1.0);
    store_.release(pkt);
  }

  void drop(double now, std::uint32_t pkt) {
    ctx_.stats->count_drop(now);
    ctx_.stats->population().add(now, -1.0);
    store_.release(pkt);
  }

  void drop_faulty(double now, std::uint32_t pkt) {
    ctx_.stats->count_fault_drop(store_.gen_time[pkt]);
    ctx_.stats->population().add(now, -1.0);
    store_.release(pkt);
  }

  /// The batch main loop; event-for-event equivalent to the scalar
  /// PacketKernel::drive over the same slotted scenario.
  template <typename Policy>
  void drive(Policy& policy, double warmup, double horizon) {
    RS_EXPECTS(warmup >= 0.0 && warmup <= horizon);
    ctx_.stats->begin(warmup, horizon);
    // Same observability contract as PacketKernel::drive: one ambient
    // span per drive() call, per-tick counters only under
    // ROUTESIM_KERNEL_TRACE, nothing that draws RNG or reorders events.
    obs::TraceSpan drive_span(obs::thread_trace(), "kernel.batch_drive",
                              "kernel");
    RS_KERNEL_TRACE_ONLY(
        std::uint64_t ktrace_wheel_ticks = 0;
        std::uint64_t ktrace_batch_events = 0;
        std::uint64_t ktrace_batch_max = 0;)
    // Hoisted occupancy_add() no-op check (the tracker vector is sized by
    // begin(), so the flag is only valid from here on).
    occupancy_on_ = ctx_.stats->occupancy_enabled();
    double slot_time = 0.0;  // accumulated exactly like the scalar control
    bool stats_reset = warmup == 0.0;
    for (;;) {
      // Services precede the slot control at equal times (header proof).
      if (wheel_head_ < wheel_.size() &&
          wheel_[wheel_head_].time <= slot_time) {
        const double t = wheel_[wheel_head_].time;
        if (t > horizon) break;
        if (!stats_reset && t >= warmup) {
          ctx_.stats->reset_at_warmup(warmup);
          stats_reset = true;
        }
        RS_KERNEL_TRACE_ONLY(
            ++ktrace_wheel_ticks;
            const std::uint64_t ktrace_batch = wheel_[wheel_head_].items.size();
            ktrace_batch_events += ktrace_batch;
            if (ktrace_batch > ktrace_batch_max) ktrace_batch_max =
                ktrace_batch;)
        process_batch(policy, t);
        continue;
      }
      if (slot_time > horizon) break;
      if (!stats_reset && slot_time >= warmup) {
        ctx_.stats->reset_at_warmup(warmup);
        stats_reset = true;
      }
      const std::uint64_t births =
          sample_poisson(*ctx_.rng, ctx_.birth_rate * ctx_.slot);
      for (std::uint64_t i = 0; i < births; ++i) policy.spawn(slot_time);
      slot_time += ctx_.slot;
    }
    ctx_.stats->finalize(warmup, horizon, !stats_reset);
    RS_KERNEL_TRACE_ONLY({
      if (obs::TraceSession* session = obs::thread_trace();
          session != nullptr) {
        session->instant(
            "kernel.batch_summary", "kernel",
            "{\"wheel_ticks\":" + std::to_string(ktrace_wheel_ticks) +
                ",\"batch_events\":" + std::to_string(ktrace_batch_events) +
                ",\"batch_max\":" + std::to_string(ktrace_batch_max) + "}");
      }
      auto& registry = obs::global_metrics();
      registry.counter("routesim_kernel_events_total")
          .add(static_cast<double>(ktrace_batch_events));
      registry.counter("routesim_kernel_wheel_ticks_total")
          .add(static_cast<double>(ktrace_wheel_ticks));
    });
  }

 private:
  /// Cache-prefetch hint (no-op where unsupported); purely a performance
  /// hint, never observable in results.
  static void prefetch(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p);
#else
    (void)p;
#endif
  }

  /// One service completion: the arc and the packet it is serving.  The
  /// packet is recorded at scheduling time — legal because an arc's
  /// in-service head is immutable while its completion is outstanding
  /// (pops happen only at completions, and an arc has at most one
  /// outstanding completion; pushes only append) — so processing a batch
  /// needs no queue access at all to know what completed.
  struct Item {
    std::uint32_t arc = 0;
    std::uint32_t pkt = 0;
  };

  /// One future instant's service completions, in scheduling (= scalar
  /// seq) order.  Arcs within a batch are distinct (one outstanding
  /// completion per arc).
  struct Batch {
    double time = 0.0;
    std::vector<Item> items;
  };

  void wheel_push(double time, std::uint32_t arc, std::uint32_t pkt) {
    // Hot path: almost every push within one instant targets the same
    // (already open) back batch — one compare against the cached back time
    // and a vector append.  The cache is refreshed whenever the back batch
    // changes (new batch below, recycle_wheel) and uses -1.0 as the
    // "no open batch" sentinel (every push time is >= 1.0).
    if (time == wheel_back_time_) {
      wheel_back_items_->push_back(Item{arc, pkt});
      return;
    }
    RS_DASSERT(wheel_head_ >= wheel_.size() || wheel_.back().time <= time);
    Batch batch;
    batch.time = time;
    if (!spare_.empty()) {
      batch.items = std::move(spare_.back());
      spare_.pop_back();
      batch.items.clear();
    }
    batch.items.push_back(Item{arc, pkt});
    wheel_.push_back(std::move(batch));
    wheel_back_time_ = time;
    wheel_back_items_ = &wheel_.back().items;
  }

  /// Returns every batch's storage to the spare pool and resets the wheel.
  void recycle_wheel() {
    for (auto& batch : wheel_) spare_.push_back(std::move(batch.items));
    wheel_.clear();
    wheel_head_ = 0;
    wheel_back_time_ = -1.0;
    wheel_back_items_ = nullptr;
  }

  template <typename Policy>
  void process_batch(Policy& policy, double now) {
    // Take the item list out first: Phase B pushes to the wheel, which may
    // reallocate it under a held reference.
    items_.swap(wheel_[wheel_head_].items);
    spare_.push_back(std::move(wheel_[wheel_head_].items));
    ++wheel_head_;
    if (wheel_head_ == wheel_.size()) recycle_wheel();

    const std::size_t n = items_.size();
    arcs_.resize(n);
    pkts_.resize(n);
    next_.resize(n);
    // Phase A needs no queue access at all: each item already carries its
    // in-service packet (recorded at scheduling time, immutable since).
    // This split is a straight sequential sweep, and the route call below
    // then runs over the whole batch at once.
    for (std::size_t i = 0; i < n; ++i) {
      arcs_[i] = items_[i].arc;
      pkts_[i] = items_[i].pkt;
    }
    policy.route_batch(now, arcs_.data(), pkts_.data(), next_.data(), n);
    // Phase B: the scalar per-event bookkeeping, in the scalar order.  The
    // loop software-pipelines its random accesses — the batch knows every
    // future pop and push target, the one thing the scalar event loop
    // cannot know — with ring headers requested kFar events ahead and
    // their storage lines (reachable only once the header is in cache)
    // kNear events ahead.  Prefetching is purely a hint: a stale target is
    // a wasted fetch, never a wrong result.
    constexpr std::size_t kFar = 16;
    constexpr std::size_t kNear = 8;
    for (std::size_t i = 0; i < n; ++i) {
      if (i + kFar < n) {
        prefetch(&queues_[arcs_[i + kFar]]);
        const std::uint32_t nx = next_[i + kFar];
        if (nx < kDropFault) {
          prefetch(&queues_[nx]);
          prefetch(&(*ctx_.arc_counters)[nx]);
        }
      }
      if (i + kNear < n) {
        // The in-service head of a not-yet-processed batch arc is still in
        // its queue, so front() is safe without an emptiness check.
        prefetch(&queues_[arcs_[i + kNear]].front());
        const std::uint32_t nx = next_[i + kNear];
        if (nx < kDropFault) {
          const FifoRing& push_queue = queues_[nx];
          if (!push_queue.empty()) prefetch(&push_queue.back());
        }
      }
      const std::uint32_t arc = arcs_[i];
      auto& queue = queues_[arc];
      queue.pop_front();
      // The new head (if any) starts service now; it is the packet this
      // arc's next completion will carry.
      if (!queue.empty()) wheel_push(now + 1.0, arc, queue.front());
      if (occupancy_on_) {
        const std::size_t tracker = policy.finish_tracker(arc);
        if (tracker != kNoTracker) {
          ctx_.stats->occupancy_add(tracker, now, -1.0);
        }
      }
      policy.complete(now, pkts_[i], next_[i]);
    }
    items_.clear();
  }

  SlottedBatchContext ctx_{};
  SoaPacketStore store_;
  std::vector<FifoRing> queues_;
  std::vector<Batch> wheel_;  ///< sorted by time; consumed from wheel_head_
  std::size_t wheel_head_ = 0;
  double wheel_back_time_ = -1.0;  ///< cached wheel_.back().time (-1 = none)
  std::vector<Item>* wheel_back_items_ = nullptr;  ///< its item list
  bool occupancy_on_ = false;  ///< stats have live occupancy trackers
  std::vector<std::vector<Item>> spare_;  ///< recycled batch storage
  std::vector<Item> items_;          ///< scratch: the batch being processed
  std::vector<std::uint32_t> arcs_;  ///< scratch: the batch's arcs
  std::vector<std::uint32_t> pkts_;  ///< scratch: their in-service packets
  std::vector<std::uint32_t> next_;  ///< scratch: Phase A routing decisions
};

}  // namespace routesim
