#pragma once
/// \file soa_store.hpp
/// \brief Structure-of-arrays packet store for the soa_batch backend.
///
/// The scalar kernel keeps packets as an array of scheme-defined structs
/// (Pool<Pkt>).  The batch backend instead keeps one contiguous array per
/// field, shared by every adopting scheme:
///
///   node      — current node / row of the packet;
///   dest      — destination node / row;
///   gen_time  — generation time (windowed statistics key);
///   hops      — arcs traversed so far (vertical arcs for the butterfly);
///   aux       — scheme-defined: Hamming distance at generation for the
///               hypercube family (the stretch baseline), unused by the
///               butterfly (its stretch is identically 1).
///
/// The routing phase of a batch step touches only node/dest/hops, so three
/// small arrays cover the hot loop's working set and the loop body is a
/// handful of same-shape array expressions — the layout the vectorizer
/// wants.  Ids are recycled through a LIFO free list exactly like Pool<T>;
/// packet ids are opaque to every metric, so the recycling order is
/// unobservable (what makes the backend's results bit-identical).

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace routesim {

/// The shared SoA packet store.  Fields are public parallel arrays indexed
/// by the id allocate() returns; release() recycles ids most recently freed
/// first; clear() forgets all packets but keeps the storage, so a store
/// reused across replications does not reallocate.
class SoaPacketStore {
 public:
  std::vector<std::uint32_t> node;
  std::vector<std::uint32_t> dest;
  std::vector<double> gen_time;
  std::vector<std::uint16_t> hops;
  std::vector<std::uint16_t> aux;

  [[nodiscard]] std::uint32_t allocate() {
    std::uint32_t id;
    if (!free_.empty()) {
      id = free_.back();
      free_.pop_back();
    } else {
      id = static_cast<std::uint32_t>(node.size());
      node.emplace_back();
      dest.emplace_back();
      gen_time.emplace_back();
      hops.emplace_back();
      aux.emplace_back();
    }
    return id;
  }

  void release(std::uint32_t id) {
    RS_DASSERT(id < node.size());
    free_.push_back(id);
  }

  /// Slots ever allocated (live + free).
  [[nodiscard]] std::size_t size() const noexcept { return node.size(); }

  void reserve(std::size_t n) {
    node.reserve(n);
    dest.reserve(n);
    gen_time.reserve(n);
    hops.reserve(n);
    aux.reserve(n);
    free_.reserve(n);
  }

  void clear() noexcept {
    node.clear();
    dest.clear();
    gen_time.clear();
    hops.clear();
    aux.clear();
    free_.clear();
  }

 private:
  std::vector<std::uint32_t> free_;
};

}  // namespace routesim
