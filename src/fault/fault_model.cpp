#include "fault/fault_model.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "util/assert.hpp"
#include "util/distributions.hpp"

namespace routesim {

FaultPolicy parse_fault_policy(const std::string& name) {
  if (name == "drop") return FaultPolicy::kDrop;
  if (name == "skip_dim") return FaultPolicy::kSkipDim;
  if (name == "deflect") return FaultPolicy::kDeflect;
  if (name == "twin_detour") return FaultPolicy::kTwinDetour;
  if (name == "adaptive") return FaultPolicy::kAdaptive;
  throw std::invalid_argument(
      "unknown fault policy '" + name +
      "' (known: drop, skip_dim, deflect, twin_detour, adaptive)");
}

const char* fault_policy_name(FaultPolicy policy) noexcept {
  switch (policy) {
    case FaultPolicy::kNone:
      return "none";
    case FaultPolicy::kDrop:
      return "drop";
    case FaultPolicy::kSkipDim:
      return "skip_dim";
    case FaultPolicy::kDeflect:
      return "deflect";
    case FaultPolicy::kTwinDetour:
      return "twin_detour";
    case FaultPolicy::kAdaptive:
      return "adaptive";
  }
  return "none";  // unreachable
}

void FaultModel::set_composite(std::uint32_t arc, bool down) noexcept {
  auto& word = arc_down_[arc >> 6];
  const std::uint64_t bit = std::uint64_t{1} << (arc & 63u);
  if (down && (word & bit) == 0) {
    word |= bit;
    ++faulty_arcs_;
  } else if (!down && (word & bit) != 0) {
    word &= ~bit;
    --faulty_arcs_;
  }
}

void FaultModel::set_arc(std::uint32_t arc, bool down) noexcept {
  if (!storms_on_) {
    // Storm-free replications keep the single-bitset fast path: the base
    // state *is* the composite state.
    set_composite(arc, down);
    return;
  }
  auto& word = base_down_[arc >> 6];
  const std::uint64_t bit = std::uint64_t{1} << (arc & 63u);
  if (down) {
    word |= bit;
  } else {
    word &= ~bit;
  }
  set_composite(arc, down || storm_count_[arc] > 0);
}

void FaultModel::storm_delta(std::uint32_t arc, int delta) noexcept {
  auto& count = storm_count_[arc];
  count = static_cast<std::uint16_t>(static_cast<int>(count) + delta);
  const bool base = (base_down_[arc >> 6] >> (arc & 63u)) & 1u;
  set_composite(arc, base || count > 0);
}

void FaultModel::configure(const FaultModelConfig& config,
                           const IncidentArcs& incident_arcs,
                           const Neighbours& neighbours) {
  RS_EXPECTS(config.arc_fault_rate >= 0.0 && config.arc_fault_rate <= 1.0);
  RS_EXPECTS(config.node_fault_rate >= 0.0 && config.node_fault_rate <= 1.0);
  RS_EXPECTS((config.mtbf > 0.0) == (config.mttr > 0.0));
  RS_EXPECTS(config.storm_rate >= 0.0);
  RS_EXPECTS((config.storm_rate > 0.0) == (config.storm_duration > 0.0));
  RS_EXPECTS(config.storm_radius >= 0);
  RS_EXPECTS_MSG(config.node_fault_rate == 0.0 || incident_arcs != nullptr,
                 "node faults need the topology's incident-arc enumeration");
  RS_EXPECTS_MSG(config.storm_rate == 0.0 ||
                     (incident_arcs != nullptr && neighbours != nullptr),
                 "storms need the topology's incident-arc and neighbour "
                 "enumerations");
  config_ = config;
  num_arcs_ = config.num_arcs;
  rng_.reseed(derive_stream(config.seed, config.stream_salt));

  arc_down_.assign((config.num_arcs + 63) / 64, 0);
  node_down_.assign((config.num_nodes + 63) / 64, 0);
  faulty_arcs_ = 0;
  faulty_nodes_ = 0;
  heap_.clear();
  dynamic_ = config.mtbf > 0.0;
  storms_on_ = config.storm_rate > 0.0;
  if (storms_on_) {
    // Storm composition state: the base (static + dynamic) bitset plus
    // per-arc coverage counts; the queried arc_down_ is their OR.
    base_down_.assign(arc_down_.size(), 0);
    storm_count_.assign(config.num_arcs, 0);
    StormConfig storm_config;
    storm_config.num_nodes = config.num_nodes;
    storm_config.rate = config.storm_rate;
    storm_config.radius = config.storm_radius;
    storm_config.duration = config.storm_duration;
    storm_config.seed = config.seed;
    storms_.configure(storm_config, incident_arcs, neighbours);
  }
  active_ = config.arc_fault_rate > 0.0 || config.node_fault_rate > 0.0 ||
            dynamic_ || storms_on_;
  next_transition_ = std::numeric_limits<double>::infinity();
  if (!active_) return;

  // Static arc faults, then node faults projected onto incident arcs — in
  // index order, so the sample depends only on the seed.
  if (config.arc_fault_rate > 0.0) {
    for (std::uint32_t arc = 0; arc < config.num_arcs; ++arc) {
      if (rng_.bernoulli(config.arc_fault_rate)) set_arc(arc, true);
    }
  }
  node_killed_.assign(arc_down_.size(), 0);
  if (config.node_fault_rate > 0.0) {
    for (std::uint32_t node = 0; node < config.num_nodes; ++node) {
      if (!rng_.bernoulli(config.node_fault_rate)) continue;
      node_down_[node >> 6] |= std::uint64_t{1} << (node & 63u);
      ++faulty_nodes_;
      scratch_.clear();
      incident_arcs(node, scratch_);
      for (const std::uint32_t arc : scratch_) {
        set_arc(arc, true);
        node_killed_[arc >> 6] |= std::uint64_t{1} << (arc & 63u);
      }
    }
  }

  if (dynamic_) {
    // Every arc gets an exponential first-transition time matched to its
    // initial state: an up arc fails after ~Exp(1/mtbf), a down arc is
    // repaired after ~Exp(1/mttr).  Arcs killed by a *node* fault stay
    // down permanently — the up/down process models link flapping, and a
    // dead node must not resume forwarding while is_node_faulty() still
    // reports it dead.
    heap_.reserve(config.num_arcs);
    for (std::uint32_t arc = 0; arc < config.num_arcs; ++arc) {
      if ((node_killed_[arc >> 6] >> (arc & 63u)) & 1u) continue;
      const double rate = is_faulty(arc) ? 1.0 / config.mttr : 1.0 / config.mtbf;
      heap_push({sample_exponential(rng_, rate), arc});
    }
  }
  refresh_next_transition();
}

void FaultModel::advance_to(double now) {
  RS_DASSERT(dynamic_ || storms_on_);
  while (!heap_.empty() && heap_.front().time <= now) {
    Transition t = heap_pop();
    // Under storms the up/down process flips the *base* state; a storm
    // covering the arc keeps the composite bit down regardless.
    const bool was_down =
        storms_on_ ? ((base_down_[t.arc >> 6] >> (t.arc & 63u)) & 1u) != 0
                   : is_faulty(t.arc);
    set_arc(t.arc, !was_down);
    const double rate = was_down ? 1.0 / config_.mtbf : 1.0 / config_.mttr;
    heap_push({t.time + sample_exponential(rng_, rate), t.arc});
  }
  if (storms_on_) {
    storms_.advance_to(
        now, [this](std::uint32_t arc, int delta) { storm_delta(arc, delta); });
  }
  refresh_next_transition();
}

void FaultModel::refresh_next_transition() noexcept {
  next_transition_ = heap_.empty() ? std::numeric_limits<double>::infinity()
                                   : heap_.front().time;
  if (storms_on_ && storms_.next_event_time() < next_transition_) {
    next_transition_ = storms_.next_event_time();
  }
}

void FaultModel::heap_push(Transition t) {
  heap_.push_back(t);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (heap_[parent].time <= heap_[i].time) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

FaultModel::Transition FaultModel::heap_pop() {
  RS_DASSERT(!heap_.empty());
  const Transition top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  std::size_t i = 0;
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t left = 2 * i + 1;
    if (left >= n) break;
    std::size_t child = left;
    if (left + 1 < n && heap_[left + 1].time < heap_[left].time) child = left + 1;
    if (heap_[i].time <= heap_[child].time) break;
    std::swap(heap_[i], heap_[child]);
    i = child;
  }
  return top;
}

}  // namespace routesim
