#include "fault/fault_model.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "util/assert.hpp"
#include "util/distributions.hpp"

namespace routesim {

FaultPolicy parse_fault_policy(const std::string& name) {
  if (name == "drop") return FaultPolicy::kDrop;
  if (name == "skip_dim") return FaultPolicy::kSkipDim;
  if (name == "deflect") return FaultPolicy::kDeflect;
  if (name == "twin_detour") return FaultPolicy::kTwinDetour;
  throw std::invalid_argument("unknown fault policy '" + name +
                              "' (known: drop, skip_dim, deflect, twin_detour)");
}

const char* fault_policy_name(FaultPolicy policy) noexcept {
  switch (policy) {
    case FaultPolicy::kNone:
      return "none";
    case FaultPolicy::kDrop:
      return "drop";
    case FaultPolicy::kSkipDim:
      return "skip_dim";
    case FaultPolicy::kDeflect:
      return "deflect";
    case FaultPolicy::kTwinDetour:
      return "twin_detour";
  }
  return "none";  // unreachable
}

void FaultModel::set_arc(std::uint32_t arc, bool down) noexcept {
  auto& word = arc_down_[arc >> 6];
  const std::uint64_t bit = std::uint64_t{1} << (arc & 63u);
  if (down && (word & bit) == 0) {
    word |= bit;
    ++faulty_arcs_;
  } else if (!down && (word & bit) != 0) {
    word &= ~bit;
    --faulty_arcs_;
  }
}

void FaultModel::configure(const FaultModelConfig& config,
                           const IncidentArcs& incident_arcs) {
  RS_EXPECTS(config.arc_fault_rate >= 0.0 && config.arc_fault_rate <= 1.0);
  RS_EXPECTS(config.node_fault_rate >= 0.0 && config.node_fault_rate <= 1.0);
  RS_EXPECTS((config.mtbf > 0.0) == (config.mttr > 0.0));
  RS_EXPECTS_MSG(config.node_fault_rate == 0.0 || incident_arcs != nullptr,
                 "node faults need the topology's incident-arc enumeration");
  config_ = config;
  num_arcs_ = config.num_arcs;
  rng_.reseed(derive_stream(config.seed, config.stream_salt));

  arc_down_.assign((config.num_arcs + 63) / 64, 0);
  node_down_.assign((config.num_nodes + 63) / 64, 0);
  faulty_arcs_ = 0;
  faulty_nodes_ = 0;
  heap_.clear();
  dynamic_ = config.mtbf > 0.0;
  active_ = config.arc_fault_rate > 0.0 || config.node_fault_rate > 0.0 ||
            dynamic_;
  next_transition_ = std::numeric_limits<double>::infinity();
  if (!active_) return;

  // Static arc faults, then node faults projected onto incident arcs — in
  // index order, so the sample depends only on the seed.
  if (config.arc_fault_rate > 0.0) {
    for (std::uint32_t arc = 0; arc < config.num_arcs; ++arc) {
      if (rng_.bernoulli(config.arc_fault_rate)) set_arc(arc, true);
    }
  }
  node_killed_.assign(arc_down_.size(), 0);
  if (config.node_fault_rate > 0.0) {
    for (std::uint32_t node = 0; node < config.num_nodes; ++node) {
      if (!rng_.bernoulli(config.node_fault_rate)) continue;
      node_down_[node >> 6] |= std::uint64_t{1} << (node & 63u);
      ++faulty_nodes_;
      scratch_.clear();
      incident_arcs(node, scratch_);
      for (const std::uint32_t arc : scratch_) {
        set_arc(arc, true);
        node_killed_[arc >> 6] |= std::uint64_t{1} << (arc & 63u);
      }
    }
  }

  if (dynamic_) {
    // Every arc gets an exponential first-transition time matched to its
    // initial state: an up arc fails after ~Exp(1/mtbf), a down arc is
    // repaired after ~Exp(1/mttr).  Arcs killed by a *node* fault stay
    // down permanently — the up/down process models link flapping, and a
    // dead node must not resume forwarding while is_node_faulty() still
    // reports it dead.
    heap_.reserve(config.num_arcs);
    for (std::uint32_t arc = 0; arc < config.num_arcs; ++arc) {
      if ((node_killed_[arc >> 6] >> (arc & 63u)) & 1u) continue;
      const double rate = is_faulty(arc) ? 1.0 / config.mttr : 1.0 / config.mtbf;
      heap_push({sample_exponential(rng_, rate), arc});
    }
    next_transition_ = heap_.empty()
                           ? std::numeric_limits<double>::infinity()
                           : heap_.front().time;
  }
}

void FaultModel::advance_to(double now) {
  RS_DASSERT(dynamic_);
  while (!heap_.empty() && heap_.front().time <= now) {
    Transition t = heap_pop();
    const bool was_down = is_faulty(t.arc);
    set_arc(t.arc, !was_down);
    const double rate = was_down ? 1.0 / config_.mtbf : 1.0 / config_.mttr;
    heap_push({t.time + sample_exponential(rng_, rate), t.arc});
  }
  next_transition_ = heap_.empty() ? std::numeric_limits<double>::infinity()
                                   : heap_.front().time;
}

void FaultModel::heap_push(Transition t) {
  heap_.push_back(t);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (heap_[parent].time <= heap_[i].time) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

FaultModel::Transition FaultModel::heap_pop() {
  RS_DASSERT(!heap_.empty());
  const Transition top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  std::size_t i = 0;
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t left = 2 * i + 1;
    if (left >= n) break;
    std::size_t child = left;
    if (left + 1 < n && heap_[left + 1].time < heap_[left].time) child = left + 1;
    if (heap_[i].time <= heap_[child].time) break;
    std::swap(heap_[i], heap_[child]);
    i = child;
  }
  return top;
}

}  // namespace routesim
