#pragma once
/// \file fault_model.hpp
/// \brief Fault injection for the routing simulators: static Bernoulli
///        arc/node fault sets plus a dynamic link up/down process.
///
/// The paper analyses greedy routing on pristine networks; this subsystem
/// asks how the same schemes degrade when arcs and nodes fail (cf. Angel,
/// Benjamini, Ofek & Wieder, "Routing Complexity of Faulty Networks",
/// PAPERS.md).  A `FaultModel` answers one question on the hot path —
/// `is_faulty(arc)` — in O(1) via a bitset over the topology's dense arc
/// indexing, and is fed from two sources:
///
///   - **Static faults.**  At configure() every arc fails independently
///     with probability `arc_fault_rate` and every node with probability
///     `node_fault_rate`; a faulty node takes all of its incident arcs
///     down (the topology supplies the incidence enumeration).  The fault
///     set is sampled from the model's own RNG stream (derived from the
///     replication seed), so the traffic process is untouched and every
///     replication sees an independent fault set.
///
///   - **Dynamic faults.**  When `mtbf > 0 && mttr > 0`, every arc
///     alternates between up and down states with independent exponential
///     sojourns (mean `mtbf` up, mean `mttr` down), starting from the
///     static sample.  Arcs killed by a *node* fault are excluded — a
///     dead node stays dead.  Transitions are kept in a binary heap; the packet
///     kernel drives them through its control-event slot by asking for
///     next_transition_time() and calling advance_to(t) when that event
///     fires, so fault flips interleave with traffic in global time order.
///
///   - **Storms.**  When `storm_rate > 0`, a `StormProcess` (storm.hpp)
///     layers spatially correlated, temporally bursty outages on top of
///     the base state: the queried bitset becomes base OR storm-covered,
///     driven through the same control-event slot.  Storm-free
///     replications never touch the composition state and stay
///     bit-identical.
///
/// Semantics at the queues: faults gate *admission* — a packet is never
/// routed onto an arc that is down at enqueue time, but a transmission in
/// progress completes even if the arc fails under it (the packet is
/// already in flight).  What happens to a packet whose desired arc is
/// down is the routing scheme's decision, named by `FaultPolicy`.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fault/storm.hpp"
#include "util/rng.hpp"

namespace routesim {

/// What a scheme does with a packet whose desired next arc is down.
/// Schemes support the subset that makes sense for their topology:
///   - kNone:       fault-unaware (the pristine code path; no model attached)
///   - kDrop:       drop the packet, counted as a fault drop (baseline);
///   - kSkipDim:    hypercube family — greedy over the surviving unresolved
///                  dimensions, falling back to a random *resolved*
///                  dimension as a detour when every unresolved arc is
///                  dead, bounded by a TTL;
///   - kDeflect:    hypercube family — when the greedy arc is dead, take a
///                  uniformly random surviving out-arc (TTL-bounded);
///   - kTwinDetour: butterfly — take the level's twin arc (straight for
///                  vertical and vice versa).  The butterfly has a unique
///                  path per origin/destination pair, so a detoured packet
///                  exits at the wrong row and is counted as misrouted —
///                  the policy measures the capacity cost of deflection in
///                  a network with no path diversity.
///   - kAdaptive:   hypercube family — bounded local exploration: probe the
///                  live unresolved out-arcs in increasing dimension order
///                  and take the first metric-descending survivor whose
///                  head node has a live continuation (one-hop lookahead);
///                  a survivor with only dead continuations is kept as a
///                  fallback, and when every unresolved arc is dead the
///                  policy degrades to deflection over the resolved
///                  dimensions.  TTL-bounded like skip_dim/deflect.
enum class FaultPolicy : std::uint8_t {
  kNone,
  kDrop,
  kSkipDim,
  kDeflect,
  kTwinDetour,
  kAdaptive,
};

/// Parses "drop" | "skip_dim" | "deflect" | "twin_detour" | "adaptive"
/// (the CLI names).
/// Throws std::invalid_argument listing the valid names otherwise.
[[nodiscard]] FaultPolicy parse_fault_policy(const std::string& name);

/// The CLI name of a policy (inverse of parse_fault_policy).
[[nodiscard]] const char* fault_policy_name(FaultPolicy policy) noexcept;

struct FaultModelConfig {
  std::uint32_t num_arcs = 0;
  std::uint32_t num_nodes = 0;
  double arc_fault_rate = 0.0;   ///< P[arc statically down], in [0, 1]
  double node_fault_rate = 0.0;  ///< P[node down]; kills its incident arcs
  double mtbf = 0.0;             ///< mean up-time; > 0 with mttr => dynamic
  double mttr = 0.0;             ///< mean down-time (repair)
  double storm_rate = 0.0;       ///< correlated storm arrivals (storm.hpp)
  int storm_radius = 1;          ///< incidence-ball radius of a storm
  double storm_duration = 0.0;   ///< storm lifetime; > 0 with storm_rate
  std::uint64_t seed = 1;        ///< replication seed (stream is derived)
  std::uint64_t stream_salt = 0xFA17;  ///< keeps fault draws off traffic streams
};

/// Maps the fault fields every fault-aware scheme config shares
/// (arc_fault_rate, node_fault_rate, fault_mtbf, fault_mttr, seed — plus
/// the storm knobs where the scheme has them) onto a FaultModelConfig, so
/// the wiring lives in one place.
template <typename SchemeConfig>
[[nodiscard]] FaultModelConfig make_fault_model_config(
    const SchemeConfig& config, std::uint32_t num_arcs,
    std::uint32_t num_nodes) {
  FaultModelConfig faults;
  faults.num_arcs = num_arcs;
  faults.num_nodes = num_nodes;
  faults.arc_fault_rate = config.arc_fault_rate;
  faults.node_fault_rate = config.node_fault_rate;
  faults.mtbf = config.fault_mtbf;
  faults.mttr = config.fault_mttr;
  if constexpr (requires { config.storm_rate; }) {
    faults.storm_rate = config.storm_rate;
    faults.storm_radius = config.storm_radius;
    faults.storm_duration = config.storm_duration;
  }
  faults.seed = config.seed;
  return faults;
}

class FaultModel {
 public:
  /// Enumerates the arcs taken down by a node fault; called once per
  /// faulty node with the node index and an output vector to append to.
  using IncidentArcs =
      std::function<void(std::uint32_t node, std::vector<std::uint32_t>&)>;
  /// Enumerates a node's neighbours; required only when storms are
  /// configured (the storm process grows its incidence ball with it).
  using Neighbours = StormProcess::Neighbours;

  FaultModel() = default;

  /// (Re)samples the fault set.  Storage is reused across replications;
  /// with all rates zero no RNG is consumed and every query returns false.
  /// `incident_arcs` is required when node_fault_rate > 0 or
  /// storm_rate > 0; `neighbours` when storm_rate > 0.
  void configure(const FaultModelConfig& config,
                 const IncidentArcs& incident_arcs = {},
                 const Neighbours& neighbours = {});

  /// O(1): is the arc down right now?  With a dynamic process the caller
  /// (the kernel's fault control event) is responsible for having advanced
  /// the model to the current time.
  [[nodiscard]] bool is_faulty(std::uint32_t arc) const noexcept {
    return (arc_down_[arc >> 6] >> (arc & 63u)) & 1u;
  }

  /// Convenience form of the query that first advances the dynamic
  /// process to `now` (O(1) amortised; identical to is_faulty(arc) when
  /// the process is static or already advanced).
  [[nodiscard]] bool is_faulty(std::uint32_t arc, double now) {
    if ((dynamic_ || storms_on_) && now >= next_transition_) advance_to(now);
    return is_faulty(arc);
  }

  [[nodiscard]] bool is_node_faulty(std::uint32_t node) const noexcept {
    return (node_down_[node >> 6] >> (node & 63u)) & 1u;
  }

  /// True when any fault source is configured (rates or a dynamic
  /// process); false means every query is trivially "up".
  [[nodiscard]] bool active() const noexcept { return active_; }

  /// True when any time-driven process is running (the exponential
  /// up/down process, a storm process, or both): the kernel schedules a
  /// fault control event exactly when this holds.
  [[nodiscard]] bool dynamic() const noexcept { return dynamic_ || storms_on_; }

  /// Time of the next up/down or storm transition (+infinity when static).
  [[nodiscard]] double next_transition_time() const noexcept {
    return next_transition_;
  }

  /// Processes every transition with time <= now (dynamic mode only).
  void advance_to(double now);

  /// Number of arcs currently down.
  [[nodiscard]] std::uint32_t faulty_arc_count() const noexcept {
    return faulty_arcs_;
  }
  [[nodiscard]] std::uint32_t faulty_node_count() const noexcept {
    return faulty_nodes_;
  }
  [[nodiscard]] std::uint32_t num_arcs() const noexcept { return num_arcs_; }

  /// The storm process (inert unless storm_rate > 0); exposed for tests
  /// and the percolation bench.
  [[nodiscard]] const StormProcess& storms() const noexcept { return storms_; }

 private:
  struct Transition {
    double time = 0.0;
    std::uint32_t arc = 0;
  };

  void set_arc(std::uint32_t arc, bool down) noexcept;
  void set_composite(std::uint32_t arc, bool down) noexcept;
  void storm_delta(std::uint32_t arc, int delta) noexcept;
  void refresh_next_transition() noexcept;
  void heap_push(Transition t);
  Transition heap_pop();

  FaultModelConfig config_{};
  Rng rng_;
  bool active_ = false;
  bool dynamic_ = false;
  bool storms_on_ = false;
  std::uint32_t num_arcs_ = 0;
  std::uint32_t faulty_arcs_ = 0;
  std::uint32_t faulty_nodes_ = 0;
  std::vector<std::uint64_t> arc_down_;   ///< one bit per arc (composite)
  std::vector<std::uint64_t> node_down_;  ///< one bit per node
  /// Arcs downed by a node fault: excluded from the dynamic process so a
  /// dead node never resumes forwarding.
  std::vector<std::uint64_t> node_killed_;
  /// Storm composition (allocated only when storms_on_): the base
  /// static/dynamic state, and per-arc active-storm coverage counts.
  /// The queried bitset is arc_down_ = base OR (coverage > 0).
  std::vector<std::uint64_t> base_down_;
  std::vector<std::uint16_t> storm_count_;
  StormProcess storms_;
  std::vector<Transition> heap_;          ///< min-heap on time (dynamic mode)
  double next_transition_ = 0.0;          ///< heap top (+inf when static)
  std::vector<std::uint32_t> scratch_;    ///< incident-arc buffer
};

}  // namespace routesim
