#pragma once
/// \file fault_routing.hpp
/// \brief The shared skip-dimension reroute machinery for hypercube-family
///        schemes (greedy hypercube, Valiant mixing).
///
/// Both schemes make the same decision when their preferred arc is dead:
/// under kSkipDim, greedy over the surviving unresolved dimensions in
/// increasing index order, falling back to a uniformly random surviving
/// *resolved* dimension as a detour (one step off the greedy path, paid
/// back later, TTL-bounded by the caller); under kDeflect, a uniformly
/// random surviving out-arc of any dimension.  Keeping the logic here
/// means a fix to the detour discipline cannot silently diverge between
/// the schemes.

#include "fault/fault_model.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace routesim {

/// Uniformly random dimension from `candidates` (bit mask of dims 1..d)
/// whose out-arc is alive; 0 when none is.  `arc_faulty(dim)` answers
/// whether the current node's out-arc in that dimension is down.
template <typename ArcFaultyByDim>
[[nodiscard]] int random_alive_dimension(NodeId candidates,
                                         ArcFaultyByDim&& arc_faulty,
                                         Rng& rng) {
  int alive[32];
  int count = 0;
  for (int dim = lowest_dimension(candidates); dim != 0;
       dim = next_dimension_after(candidates, dim)) {
    if (!arc_faulty(dim)) alive[count++] = dim;
  }
  if (count == 0) return 0;
  return alive[rng.uniform_below(static_cast<std::uint64_t>(count))];
}

/// The policy's reroute once the scheme's preferred arc is known to be
/// dead: the dimension to take next, or 0 to drop the packet.
/// `unresolved` is the XOR of the current node with the (phase) target.
template <typename ArcFaultyByDim>
[[nodiscard]] int fault_reroute_dimension(FaultPolicy policy, int d,
                                          NodeId unresolved,
                                          ArcFaultyByDim&& arc_faulty,
                                          Rng& rng) {
  const NodeId all_dims = static_cast<NodeId>((std::uint64_t{1} << d) - 1);
  switch (policy) {
    case FaultPolicy::kDrop:
      return 0;
    case FaultPolicy::kSkipDim: {
      for (int dim = lowest_dimension(unresolved); dim != 0;
           dim = next_dimension_after(unresolved, dim)) {
        if (!arc_faulty(dim)) return dim;
      }
      return random_alive_dimension(all_dims & ~unresolved, arc_faulty, rng);
    }
    case FaultPolicy::kDeflect:
      return random_alive_dimension(all_dims, arc_faulty, rng);
    case FaultPolicy::kNone:
    case FaultPolicy::kTwinDetour:
    case FaultPolicy::kAdaptive:  // handled by adaptive_reroute_dimension
      break;  // callers exclude these at configure time
  }
  return 0;  // unreachable
}

/// The kAdaptive reroute: bounded local exploration with one-hop
/// lookahead.  Probes the live unresolved out-arcs of `cur` in increasing
/// dimension order and takes the first metric-descending survivor whose
/// head node has a live out-arc toward one of the *remaining* unresolved
/// dimensions; the final hop (nothing left to continue to) is always
/// taken when alive.  A survivor with only dead probed continuations is
/// remembered as a fallback, and when every unresolved arc is dead the
/// policy degrades to deflection over the resolved dimensions (a detour,
/// TTL-bounded by the caller).  Returns the dimension to take, or 0 to
/// drop.  `arc_faulty_at(node, dim)` answers whether *node*'s out-arc in
/// `dim` is down — unlike the oblivious policies, adaptive inspects its
/// neighbours' arcs, which is exactly the locally-bounded probing budget.
/// RNG is consumed only on the deflection fallback, so pristine runs stay
/// bit-identical to skip_dim (neither invokes a reroute at all).
template <typename ArcFaultyAt>
[[nodiscard]] int adaptive_reroute_dimension(int d, NodeId cur,
                                             NodeId unresolved,
                                             ArcFaultyAt&& arc_faulty_at,
                                             Rng& rng) {
  const NodeId all_dims = static_cast<NodeId>((std::uint64_t{1} << d) - 1);
  int fallback = 0;
  for (int dim = lowest_dimension(unresolved); dim != 0;
       dim = next_dimension_after(unresolved, dim)) {
    if (arc_faulty_at(cur, dim)) continue;
    const NodeId remaining = flip_dimension(unresolved, dim);
    if (remaining == 0) return dim;  // final hop: nothing to look ahead to
    const NodeId next_node = flip_dimension(cur, dim);
    for (int probe = lowest_dimension(remaining); probe != 0;
         probe = next_dimension_after(remaining, probe)) {
      if (!arc_faulty_at(next_node, probe)) return dim;
    }
    if (fallback == 0) fallback = dim;
  }
  if (fallback != 0) return fallback;
  return random_alive_dimension(
      all_dims & ~unresolved, [&](int dim) { return arc_faulty_at(cur, dim); },
      rng);
}

}  // namespace routesim
