#include "fault/storm.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/assert.hpp"
#include "util/distributions.hpp"

namespace routesim {

void StormProcess::configure(const StormConfig& config,
                             IncidentArcs incident_arcs,
                             Neighbours neighbours) {
  RS_EXPECTS(config.rate >= 0.0);
  RS_EXPECTS(config.radius >= 0);
  RS_EXPECTS((config.rate > 0.0) == (config.duration > 0.0));
  RS_EXPECTS_MSG(config.rate == 0.0 ||
                     (incident_arcs != nullptr && neighbours != nullptr),
                 "storms need the topology's incidence and neighbour "
                 "enumerations");
  config_ = config;
  incident_arcs_ = std::move(incident_arcs);
  neighbours_ = std::move(neighbours);
  active_.clear();
  storms_started_ = 0;
  if (!active()) {
    next_arrival_ = std::numeric_limits<double>::infinity();
    next_event_ = next_arrival_;
    return;
  }
  RS_EXPECTS(config.num_nodes > 0);
  rng_.reseed(derive_stream(config.seed, config.stream_salt));
  visited_.assign((config.num_nodes + 63) / 64, 0);
  next_arrival_ = sample_exponential(rng_, config.rate);
  next_event_ = next_arrival_;
}

void StormProcess::compute_ball(std::uint32_t seed_node,
                                std::vector<std::uint32_t>& out) {
  // BFS to depth `radius` over the neighbour relation; the visited bitset
  // is cleared lazily (only the bits we set) so repeated storms stay
  // O(ball size), not O(network size).
  ball_nodes_.clear();
  ball_nodes_.push_back(seed_node);
  visited_[seed_node >> 6] |= std::uint64_t{1} << (seed_node & 63u);
  std::size_t level_begin = 0;
  for (int depth = 0; depth < config_.radius; ++depth) {
    const std::size_t level_end = ball_nodes_.size();
    for (std::size_t i = level_begin; i < level_end; ++i) {
      neighbour_scratch_.clear();
      neighbours_(ball_nodes_[i], neighbour_scratch_);
      for (const std::uint32_t next : neighbour_scratch_) {
        auto& word = visited_[next >> 6];
        const std::uint64_t bit = std::uint64_t{1} << (next & 63u);
        if ((word & bit) != 0) continue;
        word |= bit;
        ball_nodes_.push_back(next);
      }
    }
    level_begin = level_end;
  }
  out.clear();
  for (const std::uint32_t node : ball_nodes_) {
    visited_[node >> 6] &= ~(std::uint64_t{1} << (node & 63u));
    incident_arcs_(node, out);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

std::vector<std::uint32_t> StormProcess::ball_arcs(std::uint32_t seed_node) {
  std::vector<std::uint32_t> arcs;
  compute_ball(seed_node, arcs);
  return arcs;
}

void StormProcess::advance_to(double now, const ArcDelta& delta) {
  if (!active()) return;
  for (;;) {
    const double expiry = active_.empty()
                              ? std::numeric_limits<double>::infinity()
                              : active_.front().expiry;
    // Expiries and arrivals are interleaved in time order; on a tie the
    // expiry goes first so a zero-measure overlap does not double-count.
    if (expiry <= now && expiry <= next_arrival_) {
      for (const std::uint32_t arc : active_.front().arcs) delta(arc, -1);
      active_.pop_front();
      continue;
    }
    if (next_arrival_ <= now) {
      const auto seed_node = static_cast<std::uint32_t>(
          rng_.uniform_below(config_.num_nodes));
      ActiveStorm storm;
      storm.expiry = next_arrival_ + config_.duration;
      compute_ball(seed_node, storm.arcs);
      for (const std::uint32_t arc : storm.arcs) delta(arc, +1);
      active_.push_back(std::move(storm));
      ++storms_started_;
      next_arrival_ += sample_exponential(rng_, config_.rate);
      continue;
    }
    break;
  }
  refresh_next_event();
}

void StormProcess::refresh_next_event() noexcept {
  next_event_ = next_arrival_;
  if (!active_.empty() && active_.front().expiry < next_event_) {
    next_event_ = active_.front().expiry;
  }
}

}  // namespace routesim
