#pragma once
/// \file storm.hpp
/// \brief Correlated fault storms layered on the FaultModel: regional,
///        temporally bursty outages at percolation scale.
///
/// The static Bernoulli and per-arc exponential processes of
/// fault_model.hpp fail arcs *independently*; real outages are correlated
/// in space (a rack, a switch, a cable bundle) and time (a storm arrives,
/// lingers, passes).  A `StormProcess` models both:
///
///   - **Regional.**  Each storm picks a uniformly random seed node and
///     takes down every arc incident to the seed's *incidence ball* of
///     radius `radius` — the set of nodes within `radius` hops of the
///     seed under the topology's neighbour relation.  Radius 0 downs the
///     seed's own in/out arcs; radius 1 additionally downs its
///     neighbours' arcs, and so on.
///
///   - **Temporally bursty.**  Storm arrivals form a Poisson process of
///     rate `rate`; each storm lives for exactly `duration` and then
///     passes, restoring the arcs it (alone) covered.  Overlapping storms
///     stack: an arc is storm-covered while *any* active storm covers it,
///     tracked by a per-arc coverage count.
///
/// The process owns its RNG stream (salted off the replication seed), so
/// scenarios with `storm_rate=0` consume zero storm randomness and remain
/// bit-identical to their storm-free pins.  `FaultModel` composes storm
/// coverage with its own static/dynamic state by OR — see
/// FaultModel::configure — and drives the process through the kernel's
/// fault control-event slot, preserving the global (time, seq) order.
///
/// Because storm lifetimes are constant and arrivals are monotone in
/// time, expiries are monotone too: active storms form a FIFO queue and
/// no heap is needed.

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace routesim {

struct StormConfig {
  std::uint32_t num_nodes = 0;
  double rate = 0.0;      ///< storm arrivals per unit time (Poisson)
  int radius = 1;         ///< incidence-ball radius around the seed node
  double duration = 0.0;  ///< storm lifetime; > 0 whenever rate > 0
  std::uint64_t seed = 1; ///< replication seed (stream is derived)
  std::uint64_t stream_salt = 0x5709;  ///< keeps storm draws off other streams
};

class StormProcess {
 public:
  /// Enumerates the arcs incident to a node (appended to the vector);
  /// same contract as FaultModel::IncidentArcs.
  using IncidentArcs =
      std::function<void(std::uint32_t node, std::vector<std::uint32_t>&)>;
  /// Enumerates the neighbours of a node (appended to the vector); used
  /// to grow the incidence ball.
  using Neighbours =
      std::function<void(std::uint32_t node, std::vector<std::uint32_t>&)>;
  /// Coverage callback: +1 when a storm starts covering `arc`, -1 when
  /// it stops.  The consumer (FaultModel) keeps the per-arc counts.
  using ArcDelta = std::function<void(std::uint32_t arc, int delta)>;

  StormProcess() = default;

  /// (Re)starts the process at time 0 with no active storms.  Storage is
  /// reused across replications.  With rate == 0 the process is inert:
  /// no RNG is consumed and next_event_time() is +infinity.
  void configure(const StormConfig& config, IncidentArcs incident_arcs,
                 Neighbours neighbours);

  [[nodiscard]] bool active() const noexcept { return config_.rate > 0.0; }

  /// Time of the next arrival or expiry (+infinity when inert).
  [[nodiscard]] double next_event_time() const noexcept { return next_event_; }

  /// Processes every arrival and expiry with time <= now, in time order,
  /// reporting per-arc coverage changes through `delta`.
  void advance_to(double now, const ArcDelta& delta);

  /// The arcs a storm seeded at `seed_node` covers: the union of arcs
  /// incident to the ball of nodes within `radius` hops (sorted, unique).
  /// Exposed for tests and for the percolation bench.
  [[nodiscard]] std::vector<std::uint32_t> ball_arcs(std::uint32_t seed_node);

  /// Storms started since configure() (counts arrivals processed).
  [[nodiscard]] std::uint64_t storms_started() const noexcept {
    return storms_started_;
  }
  /// Storms currently in progress.
  [[nodiscard]] std::size_t active_storms() const noexcept {
    return active_.size();
  }

 private:
  struct ActiveStorm {
    double expiry = 0.0;
    std::vector<std::uint32_t> arcs;
  };

  void compute_ball(std::uint32_t seed_node, std::vector<std::uint32_t>& out);
  void refresh_next_event() noexcept;

  StormConfig config_{};
  Rng rng_;
  IncidentArcs incident_arcs_;
  Neighbours neighbours_;
  double next_arrival_ = 0.0;
  double next_event_ = 0.0;
  std::uint64_t storms_started_ = 0;
  std::deque<ActiveStorm> active_;  ///< expiries are monotone (FIFO)
  std::vector<std::uint32_t> ball_nodes_;   ///< BFS scratch
  std::vector<std::uint32_t> frontier_;     ///< BFS scratch
  std::vector<std::uint32_t> neighbour_scratch_;
  std::vector<std::uint64_t> visited_;      ///< one bit per node
};

}  // namespace routesim
