#include "obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <limits>

namespace routesim::obs {

namespace detail {

std::size_t shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t mine =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return mine;
}

}  // namespace detail

// ------------------------------------------------------------- histogram

HistogramMetric::HistogramMetric(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(kMetricShards * (bounds_.size() + 1)) {}

void HistogramMetric::observe(double value) noexcept {
  std::size_t bucket = 0;
  while (bucket < bounds_.size() && value > bounds_[bucket]) ++bucket;
  const std::size_t shard = detail::shard_index();
  counts_[shard * (bounds_.size() + 1) + bucket].fetch_add(
      1, std::memory_order_relaxed);
  atomic_add(sums_[shard].value, value);
}

HistogramMetric::Totals HistogramMetric::totals() const {
  Totals totals;
  const std::size_t buckets = bounds_.size() + 1;
  totals.bucket_counts.assign(buckets, 0);
  for (std::size_t shard = 0; shard < kMetricShards; ++shard) {
    for (std::size_t bucket = 0; bucket < buckets; ++bucket) {
      totals.bucket_counts[bucket] +=
          counts_[shard * buckets + bucket].load(std::memory_order_relaxed);
    }
    totals.sum += sums_[shard].value.load(std::memory_order_relaxed);
  }
  for (const std::uint64_t count : totals.bucket_counts) {
    totals.count += count;
  }
  return totals;
}

std::vector<double> default_latency_bounds() {
  return {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0,
          30.0, 100.0};
}

// -------------------------------------------------------------- snapshot

const MetricsSnapshot::Item* MetricsSnapshot::find(
    const std::string& name) const noexcept {
  for (const Item& item : items) {
    if (item.name == name) return &item;
  }
  return nullptr;
}

namespace {

/// Prometheus accepts any float literal; integral values render without a
/// fractional part so counters read naturally, everything else as %.17g
/// (round-trip exact).
std::string prom_number(double value) {
  char buffer[64];
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 9.007199254740992e15) {
    std::snprintf(buffer, sizeof buffer, "%.0f", value);
  } else {
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
  }
  return buffer;
}

}  // namespace

std::string MetricsSnapshot::prometheus_text() const {
  std::string out;
  for (const Item& item : items) {
    switch (item.kind) {
      case Kind::kCounter:
        out += "# TYPE " + item.name + " counter\n";
        out += item.name + " " + prom_number(item.value) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + item.name + " gauge\n";
        out += item.name + " " + prom_number(item.value) + "\n";
        break;
      case Kind::kHistogram: {
        out += "# TYPE " + item.name + " histogram\n";
        for (std::size_t b = 0; b < item.cumulative.size(); ++b) {
          const std::string le = b < item.bounds.size()
                                     ? prom_number(item.bounds[b])
                                     : std::string("+Inf");
          char line[160];
          std::snprintf(line, sizeof line, "%s_bucket{le=\"%s\"} %" PRIu64 "\n",
                        item.name.c_str(), le.c_str(), item.cumulative[b]);
          out += line;
        }
        out += item.name + "_sum " + prom_number(item.sum) + "\n";
        char count_line[128];
        std::snprintf(count_line, sizeof count_line, "%s_count %" PRIu64 "\n",
                      item.name.c_str(), item.count);
        out += count_line;
        break;
      }
    }
  }
  return out;
}

// -------------------------------------------------------------- registry

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name,
                                            std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    if (upper_bounds.empty()) upper_bounds = default_latency_bounds();
    slot = std::make_unique<HistogramMetric>(std::move(upper_bounds));
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  // std::map iteration gives the per-kind name order; merge the three
  // kinds into one name-sorted list.
  for (const auto& [name, counter] : counters_) {
    MetricsSnapshot::Item item;
    item.name = name;
    item.kind = MetricsSnapshot::Kind::kCounter;
    item.value = counter->value();
    snapshot.items.push_back(std::move(item));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricsSnapshot::Item item;
    item.name = name;
    item.kind = MetricsSnapshot::Kind::kGauge;
    item.value = gauge->value();
    snapshot.items.push_back(std::move(item));
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::Item item;
    item.name = name;
    item.kind = MetricsSnapshot::Kind::kHistogram;
    item.bounds = histogram->bounds();
    const HistogramMetric::Totals totals = histogram->totals();
    item.cumulative.reserve(totals.bucket_counts.size());
    std::uint64_t running = 0;
    for (const std::uint64_t count : totals.bucket_counts) {
      running += count;
      item.cumulative.push_back(running);
    }
    item.sum = totals.sum;
    item.count = totals.count;
    snapshot.items.push_back(std::move(item));
  }
  std::sort(snapshot.items.begin(), snapshot.items.end(),
            [](const MetricsSnapshot::Item& a, const MetricsSnapshot::Item& b) {
              return a.name < b.name;
            });
  return snapshot;
}

MetricsRegistry& global_metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace routesim::obs
