#pragma once
/// \file metrics.hpp
/// \brief Lock-cheap process-wide metrics: named counters, gauges, and
///        histograms with sharded atomic storage, a coherent snapshot
///        API, and Prometheus text exposition (the serve daemon's
///        `metrics` op).
///
/// The hot-path contract is "an increment is one relaxed atomic RMW on a
/// thread-striped cache line": `Counter`/`HistogramMetric` stripe their
/// storage across `kMetricShards` cache-line-aligned shards, and each
/// thread picks a shard once (round-robin at first touch) so concurrent
/// workers rarely contend.  Registration (`MetricsRegistry::counter()`
/// etc.) takes a mutex and is meant for cold paths — call sites cache the
/// returned reference (function-local static) and the reference stays
/// valid for the registry's lifetime.
///
/// Reading is snapshot-based: `MetricsRegistry::snapshot()` sums the
/// shards into a plain `MetricsSnapshot` that can be inspected
/// (`find()`) or rendered as Prometheus text exposition
/// (`prometheus_text()`).  Individual reads are relaxed, so a snapshot
/// taken concurrently with writers is per-metric accurate but not a
/// cross-metric atomic cut — exactly the Prometheus scrape model.
///
/// Observability must never perturb results (docs/OBSERVABILITY.md):
/// nothing in this file draws randomness, takes a lock on the increment
/// path, or changes any scheduling decision.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace routesim::obs {

/// Shard count for striped metrics.  A power of two a little above
/// typical worker-pool widths: enough stripes that a pool of hardware
/// threads rarely shares a cache line, small enough that summing a
/// snapshot stays trivial.
inline constexpr std::size_t kMetricShards = 16;

/// Relaxed atomic add for doubles via CAS — portable (works on toolchains
/// without std::atomic<double>::fetch_add) and exact: metric values are
/// sums, and each shard applies its own adds sequentially.
inline void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
}

namespace detail {
/// This thread's shard index, assigned round-robin at first use.
[[nodiscard]] std::size_t shard_index() noexcept;

struct alignas(64) PaddedAtomicDouble {
  std::atomic<double> value{0.0};
};
}  // namespace detail

/// Monotone sum.  add() is one relaxed RMW on this thread's shard.
class Counter {
 public:
  void add(double delta = 1.0) noexcept {
    atomic_add(shards_[detail::shard_index()].value, delta);
  }
  [[nodiscard]] double value() const noexcept {
    double total = 0.0;
    for (const auto& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  std::array<detail::PaddedAtomicDouble, kMetricShards> shards_{};
};

/// Last-writer-wins level (pool width, in-flight work).  Unsharded: a
/// gauge is set/adjusted, not accumulated per thread.
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(double delta) noexcept { atomic_add(value_, delta); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Prometheus-style histogram: fixed upper bounds chosen at registration,
/// one implicit +Inf overflow bucket, per-shard bucket counts and sums.
/// observe() is two relaxed RMWs (bucket count + sum) on this thread's
/// shard after a short linear bound scan.
class HistogramMetric {
 public:
  explicit HistogramMetric(std::vector<double> upper_bounds);
  HistogramMetric(const HistogramMetric&) = delete;
  HistogramMetric& operator=(const HistogramMetric&) = delete;

  void observe(double value) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket (non-cumulative) counts, bounds().size() + 1 entries (the
  /// last is the +Inf overflow bucket), plus total sum and count.
  struct Totals {
    std::vector<std::uint64_t> bucket_counts;
    double sum = 0.0;
    std::uint64_t count = 0;
  };
  [[nodiscard]] Totals totals() const;

 private:
  std::vector<double> bounds_;  ///< sorted ascending upper bounds
  /// kMetricShards x (bounds + 1) bucket counters, shard-major.
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::array<detail::PaddedAtomicDouble, kMetricShards> sums_{};
};

/// The latency bucket ladder used when a histogram is registered without
/// explicit bounds: 100 us .. ~100 s in half-decade steps.
[[nodiscard]] std::vector<double> default_latency_bounds();

/// A coherent, plain-data read of every registered metric, sorted by
/// name.  Histogram counts are cumulative (Prometheus `le` semantics);
/// the last entry is the +Inf bucket and equals `count`.
struct MetricsSnapshot {
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  struct Item {
    std::string name;
    Kind kind = Kind::kCounter;
    double value = 0.0;                       ///< counter / gauge
    std::vector<double> bounds;               ///< histogram upper bounds
    std::vector<std::uint64_t> cumulative;    ///< bounds + 1 entries
    double sum = 0.0;                         ///< histogram sum
    std::uint64_t count = 0;                  ///< histogram count
  };
  std::vector<Item> items;

  [[nodiscard]] const Item* find(const std::string& name) const noexcept;
  /// Prometheus text exposition format (# TYPE lines, `_bucket{le=...}` /
  /// `_sum` / `_count` expansion for histograms).
  [[nodiscard]] std::string prometheus_text() const;
};

/// Named metric directory.  Registration is mutex-guarded and idempotent
/// (same name returns the same instance); returned references stay valid
/// for the registry's lifetime.  One process-wide instance behind
/// global_metrics() serves the engine, the kernel guard, and the serve
/// daemon; tests may build private registries.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  /// `upper_bounds` empty means default_latency_bounds(); bounds are fixed
  /// by the first registration of `name`.
  [[nodiscard]] HistogramMetric& histogram(
      const std::string& name, std::vector<double> upper_bounds = {});

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

/// The process-wide registry every instrumented layer reports into.
[[nodiscard]] MetricsRegistry& global_metrics();

}  // namespace routesim::obs
