#include "obs/progress.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>

#include "obs/metrics.hpp"

namespace routesim::obs {

ProgressMeter::ProgressMeter(Options options) : options_(options) {
  tty_ = ::isatty(::fileno(stderr)) == 1;
  active_ = tty_ || options_.force;
}

ProgressMeter::~ProgressMeter() { stop_thread(); }

void ProgressMeter::on_begin(const Campaign& campaign) {
  if (!active_) return;
  stop_thread();  // a reused sink restarts its heartbeat per campaign
  name_ = campaign.name();
  total_ = campaign.size();
  done_.store(0, std::memory_order_relaxed);
  computed_.store(0, std::memory_order_relaxed);
  computed_wall_s_.store(0.0, std::memory_order_relaxed);
  start_ = std::chrono::steady_clock::now();
  heartbeat_ = std::jthread([this](std::stop_token token) {
    const auto period = std::chrono::duration<double>(
        std::max(options_.period_s, 0.05));
    std::unique_lock<std::mutex> lock(wake_mutex_);
    while (!wake_.wait_for(lock, token, period, [&] {
      return token.stop_requested();
    })) {
      print_heartbeat(false);
    }
  });
}

void ProgressMeter::on_cell(const CellResult& cell) {
  if (!active_) return;
  done_.fetch_add(1, std::memory_order_relaxed);
  if (!cell.from_cache && !cell.from_store) {
    computed_.fetch_add(1, std::memory_order_relaxed);
    atomic_add(computed_wall_s_, cell.wall_time_s);
  }
}

void ProgressMeter::on_end(const Campaign& campaign) {
  (void)campaign;
  if (!active_) return;
  stop_thread();
  print_heartbeat(true);
}

void ProgressMeter::stop_thread() {
  if (!heartbeat_.joinable()) return;
  heartbeat_.request_stop();
  wake_.notify_all();
  heartbeat_.join();
}

std::string ProgressMeter::render_line() const {
  const std::size_t done = done_.load(std::memory_order_relaxed);
  const std::size_t computed = computed_.load(std::memory_order_relaxed);
  const double wall = computed_wall_s_.load(std::memory_order_relaxed);
  const double busy =
      global_metrics().gauge("routesim_engine_busy_workers").value();
  const double pool =
      global_metrics().gauge("routesim_engine_pool_workers").value();
  const double percent =
      total_ == 0 ? 100.0 : 100.0 * static_cast<double>(done) /
                                static_cast<double>(total_);

  char piece[128];
  std::snprintf(piece, sizeof piece, "%zu/%zu cells (%.0f%%)", done, total_,
                percent);
  std::string line = "[" + name_ + "] " + piece;
  if (pool > 0.0) {
    std::snprintf(piece, sizeof piece, " | util %.1f/%.0f", busy, pool);
    line += piece;
  }
  // ETA from the mean wall time of cells already computed, spread over
  // the pool.  Cache/store hits resolve instantly, so only computed cells
  // inform the estimate; with none finished yet there is nothing to
  // extrapolate from.
  if (computed > 0 && done < total_) {
    const double mean_wall = wall / static_cast<double>(computed);
    const double eta_s = mean_wall * static_cast<double>(total_ - done) /
                         std::max(pool, 1.0);
    std::snprintf(piece, sizeof piece, " | eta %.1fs", eta_s);
    line += piece;
  }
  return line;
}

void ProgressMeter::print_heartbeat(bool final_line) {
  const std::string line = render_line();
  if (tty_) {
    // In-place rewrite; pad so a shorter line fully covers the previous.
    std::fprintf(stderr, "\r%-100s", line.c_str());
    if (final_line) std::fputc('\n', stderr);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
  std::fflush(stderr);
}

}  // namespace routesim::obs
