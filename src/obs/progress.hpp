#pragma once
/// \file progress.hpp
/// \brief Live campaign heartbeat behind `routesim_bench --progress`: a
///        `ResultSink` that counts finished cells and a background thread
///        that prints a rate-limited status line to stderr — cells
///        done/total, worker utilization (from the engine's gauges in the
///        global metrics registry), and an ETA extrapolated from the wall
///        time of the cells completed so far.
///
/// The meter is presentation only: it reads atomics the sink updates and
/// the engine's published gauges, and never touches scheduling, RNG, or
/// results.  By default it activates only when stderr is a TTY (so piped
/// or CI runs stay clean); `Options::force` overrides that, switching
/// from in-place `\r` rewriting to one full line per heartbeat so logs
/// stay readable.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <string>
#include <thread>

#include "core/campaign.hpp"

namespace routesim::obs {

class ProgressMeter final : public ResultSink {
 public:
  struct Options {
    bool force = false;     ///< heartbeat even when stderr is not a TTY
    double period_s = 0.5;  ///< rate limit between heartbeat lines
  };

  ProgressMeter() : ProgressMeter(Options()) {}
  explicit ProgressMeter(Options options);
  ~ProgressMeter() override;

  /// False when stderr is not a TTY and force is off — callers then skip
  /// registering the sink entirely (the on_* hooks are no-ops anyway).
  [[nodiscard]] bool active() const noexcept { return active_; }

  void on_begin(const Campaign& campaign) override;
  void on_cell(const CellResult& cell) override;
  void on_end(const Campaign& campaign) override;

 private:
  [[nodiscard]] std::string render_line() const;
  void print_heartbeat(bool final_line);
  void stop_thread();

  Options options_;
  bool active_ = false;
  bool tty_ = false;
  std::string name_ = "campaign";
  std::size_t total_ = 0;
  std::chrono::steady_clock::time_point start_{};
  std::atomic<std::size_t> done_{0};
  std::atomic<std::size_t> computed_{0};      ///< cells that actually ran
  std::atomic<double> computed_wall_s_{0.0};  ///< their summed wall time

  std::jthread heartbeat_;
  std::mutex wake_mutex_;
  std::condition_variable_any wake_;
};

}  // namespace routesim::obs
