#include "obs/trace.hpp"

#include <atomic>
#include <cstdio>

#include "util/atomic_file.hpp"
#include "util/json.hpp"

namespace routesim::obs {

TraceSession*& thread_trace() noexcept {
  thread_local TraceSession* session = nullptr;
  return session;
}

namespace {

std::uint64_t next_session_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

TraceSession::TraceSession()
    : id_(next_session_id()), origin_(std::chrono::steady_clock::now()) {}

TraceSession::ThreadBuffer& TraceSession::local() {
  // Cache keyed by session id, not pointer: a new session can reuse a
  // destroyed one's address, and the id comparison makes that safe.
  thread_local struct {
    std::uint64_t session_id = 0;
    ThreadBuffer* buffer = nullptr;
  } cache;
  if (cache.session_id == id_) return *cache.buffer;
  std::lock_guard<std::mutex> lock(mutex_);
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  buffers_.back()->tid = next_tid_++;
  cache = {id_, buffers_.back().get()};
  return *cache.buffer;
}

void TraceSession::begin(const char* name, const char* cat, std::string args) {
  local().events.push_back({name, cat, 'B', now_us(), std::move(args)});
}

void TraceSession::end(const char* name, const char* cat) {
  local().events.push_back({name, cat, 'E', now_us(), {}});
}

void TraceSession::instant(const char* name, const char* cat,
                           std::string args) {
  local().events.push_back({name, cat, 'i', now_us(), std::move(args)});
}

std::string TraceSession::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char ts[48];
  for (const auto& buffer : buffers_) {
    for (const Event& event : buffer->events) {
      if (!first) out += ',';
      first = false;
      std::snprintf(ts, sizeof ts, "%.3f", event.ts_us);
      out += "{\"name\":\"";
      out += json_escape(event.name);
      out += "\",\"cat\":\"";
      out += json_escape(event.cat);
      out += "\",\"ph\":\"";
      out += event.ph;
      out += "\",\"ts\":";
      out += ts;
      out += ",\"pid\":1,\"tid\":";
      out += std::to_string(buffer->tid);
      if (!event.args.empty()) {
        out += ",\"args\":";
        out += event.args;
      }
      // Instants need a scope; 't' (thread) matches the per-thread story.
      if (event.ph == 'i') out += ",\"s\":\"t\"";
      out += '}';
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool TraceSession::write_file(const std::string& path) const {
  return write_file_atomic(path, to_json());
}

std::size_t TraceSession::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t count = 0;
  for (const auto& buffer : buffers_) count += buffer->events.size();
  return count;
}

}  // namespace routesim::obs
