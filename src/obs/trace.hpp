#pragma once
/// \file trace.hpp
/// \brief Structured execution tracing: a `TraceSession` records spans
///        and instants (cell lifecycle, replication tasks, store/cache
///        lookups, sink flushes, kernel phase boundaries) into per-thread
///        buffers and exports Chrome trace-event JSON — load the file in
///        Perfetto (ui.perfetto.dev) or chrome://tracing.
///
/// Design constraints, in order:
///   1. *Never perturb results.*  Recording draws no randomness, takes no
///      lock on the span path, and changes no scheduling decision; the
///      hexfloat parity suites run bit-identically with tracing enabled
///      (tests/test_kernel_parity.cpp keeps a session active for every
///      pinned case).
///   2. *Near-zero cost when off.*  Instrumented code consults the
///      thread-local ambient pointer `thread_trace()`; with no session
///      installed that is one thread-local load and a branch
///      (BM_TraceOverhead pins the end-to-end cost under 1% on the
///      heavy-traffic kernel benchmark).
///   3. *No cross-thread contention when on.*  Each thread appends to its
///      own buffer; the session mutex guards only buffer registration
///      (first event of a thread) and export.
///
/// Timestamps are steady_clock microseconds relative to the session
/// start, so per-thread event order is monotone — `tools/check_trace.py`
/// verifies that plus B/E balance.  Export (`to_json`/`write_file`) is
/// meant for quiescence: call it after the traced work has joined.
///
/// Instrumented code uses the RAII helpers, which are no-ops on a null
/// session:
///
///   obs::TraceSpan span(obs::thread_trace(), "replication", "engine",
///                       "{\"cell\":3,\"rep\":1}");
///
/// Worker threads inherit nothing automatically; the engine installs its
/// session per worker with `ThreadTraceScope`.

#include <cstddef>
#include <cstdint>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace routesim::obs {

class TraceSession;

/// The calling thread's ambient session (nullptr = tracing off).  A plain
/// thread-local slot: reading it is the entire disabled-path cost.
[[nodiscard]] TraceSession*& thread_trace() noexcept;

/// One recording: spans (`begin`/`end`) and instants, per-thread buffers,
/// Chrome trace-event JSON out.  Event names and categories are expected
/// to be string literals (the buffer stores the pointers, not copies);
/// `args` is optional pre-rendered JSON object text (`{"cell":3}`).
class TraceSession {
 public:
  TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;
  ~TraceSession() = default;

  void begin(const char* name, const char* cat, std::string args = {});
  void end(const char* name, const char* cat);
  void instant(const char* name, const char* cat, std::string args = {});

  /// Microseconds since the session started (steady clock).
  [[nodiscard]] double now_us() const noexcept {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - origin_)
        .count();
  }

  /// Chrome trace-event JSON ({"traceEvents":[...]}).  Call after the
  /// traced work has quiesced (worker threads joined).
  [[nodiscard]] std::string to_json() const;
  /// to_json() through util/atomic_file.hpp; false when the write failed.
  [[nodiscard]] bool write_file(const std::string& path) const;
  [[nodiscard]] std::size_t event_count() const;

 private:
  struct Event {
    const char* name;
    const char* cat;
    char ph;  ///< 'B', 'E', or 'i'
    double ts_us;
    std::string args;  ///< rendered JSON object text, may be empty
  };
  struct ThreadBuffer {
    int tid = 0;
    std::vector<Event> events;
  };

  /// The calling thread's buffer, registered (under the mutex) on first
  /// touch and cached in a thread-local keyed by the session id — so a
  /// session outliving another on the same thread never reuses a stale
  /// pointer.
  [[nodiscard]] ThreadBuffer& local();

  const std::uint64_t id_;
  const std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  int next_tid_ = 0;
};

/// RAII install/restore of the ambient session on this thread.  The
/// engine wraps each worker's run in one of these; tests wrap whole
/// suites to replay pinned cases with tracing active.
class ThreadTraceScope {
 public:
  explicit ThreadTraceScope(TraceSession* session) noexcept
      : previous_(thread_trace()) {
    thread_trace() = session;
  }
  ThreadTraceScope(const ThreadTraceScope&) = delete;
  ThreadTraceScope& operator=(const ThreadTraceScope&) = delete;
  ~ThreadTraceScope() { thread_trace() = previous_; }

 private:
  TraceSession* previous_;
};

/// RAII B/E span, a no-op when `session` is null — the one-liner that
/// makes call sites safe whether tracing is on or off.
class TraceSpan {
 public:
  TraceSpan(TraceSession* session, const char* name, const char* cat,
            std::string args = {})
      : session_(session), name_(name), cat_(cat) {
    if (session_ != nullptr) session_->begin(name_, cat_, std::move(args));
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (session_ != nullptr) session_->end(name_, cat_);
  }

 private:
  TraceSession* session_;
  const char* name_;
  const char* cat_;
};

}  // namespace routesim::obs

/// Compile-out guard for per-event kernel instrumentation: per-event
/// counting in the packet kernel's dispatch loop only exists when the
/// build opts in (-DROUTESIM_KERNEL_TRACE, CMake option of the same
/// name), so the default hot path carries no per-event work at all.
#if defined(ROUTESIM_KERNEL_TRACE)
#define RS_KERNEL_TRACE_ONLY(...) __VA_ARGS__
#else
#define RS_KERNEL_TRACE_ONLY(...)
#endif
