#include "queueing/analytic.hpp"

#include "util/assert.hpp"

namespace routesim {

namespace {
void check_utilisation(double rho) {
  RS_EXPECTS_MSG(rho >= 0.0 && rho < 1.0, "utilisation must be in [0, 1)");
}
}  // namespace

double md1_waiting_time(double rho) {
  check_utilisation(rho);
  return rho / (2.0 * (1.0 - rho));
}

double md1_sojourn_time(double rho) { return 1.0 + md1_waiting_time(rho); }

double md1_mean_number(double rho) {
  check_utilisation(rho);
  return rho + rho * rho / (2.0 * (1.0 - rho));
}

double mm1_sojourn_time(double rho) {
  check_utilisation(rho);
  return 1.0 / (1.0 - rho);
}

double mm1_mean_number(double rho) {
  check_utilisation(rho);
  return rho / (1.0 - rho);
}

double mds_sojourn_lower_bound(double num_servers, double rho) {
  RS_EXPECTS(num_servers >= 1.0);
  check_utilisation(rho);
  return 1.0 + rho / (2.0 * num_servers * (1.0 - rho));
}

}  // namespace routesim
