#pragma once
/// \file analytic.hpp
/// \brief Closed-form queueing formulas used by the paper's bounds.
///
/// All formulas assume unit mean service time (the paper's unit packet
/// transmission time) and utilisation rho < 1 unless stated otherwise.
/// References: [Kle75] for M/D/1 and M/M/1; [Bru71] for the M/D/s lower
/// bound used in Proposition 2.

#include <cstdint>

namespace routesim {

/// Mean waiting time (queueing delay excluding service) in M/D/1 with unit
/// service: rho / (2(1-rho)).  Precondition: 0 <= rho < 1.
[[nodiscard]] double md1_waiting_time(double rho);

/// Mean sojourn time in M/D/1 with unit service: 1 + rho/(2(1-rho)).
[[nodiscard]] double md1_sojourn_time(double rho);

/// Mean number in system for M/D/1 with unit service:
/// rho + rho^2 / (2(1-rho))  (used in Proposition 13).
[[nodiscard]] double md1_mean_number(double rho);

/// Mean sojourn time in M/M/1 with unit-mean service: 1/(1-rho).
[[nodiscard]] double mm1_sojourn_time(double rho);

/// Mean number in system for M/M/1 (also the per-server occupancy of the
/// product-form PS network of Prop. 12): rho/(1-rho).
[[nodiscard]] double mm1_mean_number(double rho);

/// Brumelle's lower bound on the mean sojourn time of M/D/s with unit
/// service and per-server utilisation rho: 1 + rho / (2 s (1-rho)).
/// Used with s = 2^d in Proposition 2.
[[nodiscard]] double mds_sojourn_lower_bound(double num_servers, double rho);

}  // namespace routesim
