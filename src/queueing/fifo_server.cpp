#include "queueing/fifo_server.hpp"

#include "util/assert.hpp"

namespace routesim {

std::vector<double> fifo_departure_times(std::span<const double> arrivals,
                                         double service) {
  RS_EXPECTS(service > 0.0);
  std::vector<double> departures;
  departures.reserve(arrivals.size());
  double previous = -1e300;
  double last_arrival = -1e300;
  for (const double t : arrivals) {
    RS_EXPECTS_MSG(t >= last_arrival, "arrival times must be non-decreasing");
    last_arrival = t;
    const double start = t > previous ? t : previous;
    previous = start + service;
    departures.push_back(previous);
  }
  return departures;
}

}  // namespace routesim
