#pragma once
/// \file fifo_server.hpp
/// \brief Deterministic single FIFO server — sample-path utilities.
///
/// These are the objects of Lemmas 7 and 8: a deterministic server with
/// fixed service duration, fed by an arbitrary arrival-time sequence.
/// The recursion D_1 = t_1 + s, D_i = max(D_{i-1}, t_i) + s is exposed both
/// as an offline batch transform (for the property tests of the lemmas) and
/// as an incremental online object (used by simulators).

#include <span>
#include <vector>

namespace routesim {

/// Departure times of a deterministic FIFO server with service time
/// `service` fed by non-decreasing arrival times `arrivals`.
/// Precondition: service > 0 and arrivals sorted non-decreasingly.
[[nodiscard]] std::vector<double> fifo_departure_times(std::span<const double> arrivals,
                                                       double service);

/// Incremental FIFO departure-time computer (same recursion, online).
class FifoClock {
 public:
  explicit FifoClock(double service) : service_(service) {}

  /// Feeds the next arrival (>= all previous arrivals) and returns its
  /// departure time.
  double on_arrival(double t) {
    const double start = t > last_departure_ ? t : last_departure_;
    last_departure_ = start + service_;
    return last_departure_;
  }

  [[nodiscard]] double last_departure() const noexcept { return last_departure_; }

 private:
  double service_;
  double last_departure_ = -1e300;
};

}  // namespace routesim
