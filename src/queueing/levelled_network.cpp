#include "queueing/levelled_network.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/distributions.hpp"

namespace routesim {

LevelledNetwork::LevelledNetwork(LevelledNetworkConfig config)
    : config_(std::move(config)) {
  const auto n = config_.servers.size();
  RS_EXPECTS_MSG(n > 0, "network must have at least one server");
  servers_.resize(n);
  server_stats_.resize(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    const auto& spec = config_.servers[s];
    RS_EXPECTS_MSG(spec.service_rate > 0.0, "service rate must be positive");
    RS_EXPECTS_MSG(spec.external_rate >= 0.0, "external rate must be non-negative");
    double total_prob = 0.0;
    for (const auto& choice : spec.routing) {
      RS_EXPECTS_MSG(choice.target > s && choice.target < n,
                     "routing must go to a strictly higher-indexed server "
                     "(levelled-network property B)");
      RS_EXPECTS(choice.probability >= 0.0);
      total_prob += choice.probability;
    }
    RS_EXPECTS_MSG(total_prob <= 1.0 + 1e-9, "routing probabilities exceed 1");
    servers_[s].arrival_rng.reseed(derive_stream(config_.seed, s));
  }
  KernelStats::Config stats;
  if (config_.track_per_server) stats.occupancy_trackers = n;
  stats_.configure(stats);
}

void LevelledNetwork::set_checkpoints(std::vector<double> times) {
  for (std::size_t i = 1; i < times.size(); ++i) RS_EXPECTS(times[i] >= times[i - 1]);
  checkpoints_ = std::move(times);
  checkpoint_counts_.assign(checkpoints_.size(), 0);
  next_checkpoint_ = 0;
}

void LevelledNetwork::schedule_next_external(double now, std::uint32_t server) {
  const double rate = config_.servers[server].external_rate;
  RS_DASSERT(rate > 0.0);
  const double gap = sample_exponential(servers_[server].arrival_rng, rate);
  events_.push(now + gap, Ev{EventKind::kExternalArrival, server, 0});
}

void LevelledNetwork::enter_server(double now, std::uint32_t server,
                                   std::uint32_t customer) {
  auto& state = servers_[server];
  if (now >= warmup_) ++server_stats_[server].total_arrivals;
  stats_.occupancy_add(server, now, +1.0);
  if (config_.discipline == Discipline::kFifo) {
    state.fifo.push_back(customer);
    if (state.fifo.size() == 1) {
      events_.push(now + 1.0 / config_.servers[server].service_rate,
                   Ev{EventKind::kFifoDone, server, 0});
    }
  } else {
    ps_update_virtual(now, server);
    state.ps_active.emplace(state.virtual_time + 1.0, customer);
    ps_reschedule(now, server);
  }
}

void LevelledNetwork::ps_update_virtual(double now, std::uint32_t server) {
  auto& state = servers_[server];
  if (!state.ps_active.empty()) {
    state.virtual_time += (now - state.last_update) *
                          config_.servers[server].service_rate /
                          static_cast<double>(state.ps_active.size());
  }
  state.last_update = now;
}

void LevelledNetwork::ps_reschedule(double now, std::uint32_t server) {
  auto& state = servers_[server];
  ++state.ps_stamp;
  if (state.ps_active.empty()) return;
  const double gap = (state.ps_active.begin()->first - state.virtual_time) *
                     static_cast<double>(state.ps_active.size()) /
                     config_.servers[server].service_rate;
  events_.push(now + (gap > 0.0 ? gap : 0.0),
               Ev{EventKind::kPsDone, server, state.ps_stamp});
}

void LevelledNetwork::on_network_departure(double now, std::uint32_t customer) {
  ++departures_total_;
  if (now >= warmup_) {
    stats_.count_delivery();
    if (customers_[customer].arrival_time >= warmup_) {
      stats_.delay().add(now - customers_[customer].arrival_time);
    }
  }
  stats_.population().add(now, -1.0);
  customers_.release(customer);
}

void LevelledNetwork::complete_service(double now, std::uint32_t server,
                                       std::uint32_t customer) {
  auto& state = servers_[server];
  if (now >= warmup_) ++server_stats_[server].departures;
  stats_.occupancy_add(server, now, -1.0);

  // Routing decision k at server s is the *stateless* coupled uniform, so
  // FIFO and PS runs with the same seed make identical decisions (Lemma 10).
  const double u = coupled_uniform(config_.seed, server, state.completions++);
  double cumulative = 0.0;
  for (const auto& choice : config_.servers[server].routing) {
    cumulative += choice.probability;
    if (u < cumulative) {
      enter_server(now, choice.target, customer);
      return;
    }
  }
  on_network_departure(now, customer);
}

void LevelledNetwork::run(double warmup, double horizon) {
  RS_EXPECTS(warmup >= 0.0 && warmup <= horizon);
  warmup_ = warmup;
  now_ = 0.0;
  stats_.begin(warmup, horizon);

  for (std::uint32_t s = 0; s < servers_.size(); ++s) {
    if (config_.servers[s].external_rate > 0.0) schedule_next_external(0.0, s);
  }

  bool stats_reset = warmup == 0.0;
  while (!events_.empty() && events_.top().time <= horizon) {
    const auto event = events_.pop();
    const double t = event.time;

    // Checkpoints record B(t-) at times strictly before the next event.
    while (next_checkpoint_ < checkpoints_.size() &&
           checkpoints_[next_checkpoint_] < t) {
      checkpoint_counts_[next_checkpoint_++] = departures_total_;
    }
    if (!stats_reset && t >= warmup) {
      stats_.reset_at_warmup(warmup);
      stats_reset = true;
    }
    now_ = t;

    const auto& payload = event.payload;
    switch (payload.kind) {
      case EventKind::kExternalArrival: {
        schedule_next_external(t, payload.server);
        const std::uint32_t customer = customers_.allocate();
        customers_[customer].arrival_time = t;
        if (t >= warmup) ++server_stats_[payload.server].external_arrivals;
        stats_.count_arrival(t);
        enter_server(t, payload.server, customer);
        break;
      }
      case EventKind::kFifoDone: {
        auto& state = servers_[payload.server];
        RS_DASSERT(!state.fifo.empty());
        const std::uint32_t customer = state.fifo.pop_front();
        if (!state.fifo.empty()) {
          events_.push(t + 1.0 / config_.servers[payload.server].service_rate,
                       Ev{EventKind::kFifoDone, payload.server, 0});
        }
        complete_service(t, payload.server, customer);
        break;
      }
      case EventKind::kPsDone: {
        auto& state = servers_[payload.server];
        if (payload.stamp != state.ps_stamp) break;  // superseded schedule
        RS_DASSERT(!state.ps_active.empty());
        ps_update_virtual(t, payload.server);
        const auto it = state.ps_active.begin();
        const std::uint32_t customer = it->second;
        state.virtual_time = it->first;  // absorb rounding drift
        state.ps_active.erase(it);
        ps_reschedule(t, payload.server);
        complete_service(t, payload.server, customer);
        break;
      }
    }
  }

  while (next_checkpoint_ < checkpoints_.size() &&
         checkpoints_[next_checkpoint_] <= horizon) {
    checkpoint_counts_[next_checkpoint_++] = departures_total_;
  }

  stats_.finalize(warmup, horizon, !stats_reset);
  if (config_.track_per_server) {
    for (std::uint32_t s = 0; s < servers_.size(); ++s) {
      server_stats_[s].mean_occupancy = stats_.occupancy_mean(s);
    }
  }
}

}  // namespace routesim
