#pragma once
/// \file levelled_network.hpp
/// \brief Event-driven simulator of a *levelled* queueing network with
///        Markovian routing — the paper's networks Q (§3.1), R (§4.3) and
///        the three-server network G of Lemma 9.
///
/// A levelled network is a DAG of "servers" (one per hypercube/butterfly
/// arc) in which every customer moves to strictly higher-indexed servers,
/// each server is fed externally by a Poisson stream, and routing after a
/// service completion is by independent coin flips (Property C).  Servers
/// run either a deterministic FIFO discipline or deterministic Processor
/// Sharing; the networks Q and Q~ of Proposition 11 are the same config
/// run under the two disciplines.
///
/// Measurement accounting (delay, population, occupancy trackers, harvest)
/// is the shared KernelStats of des/packet_kernel.hpp — the same path the
/// packet-level simulators use — so Q's metrics are directly comparable
/// with the direct simulation's.  The customer pool and the FIFO queues
/// reuse the kernel's Pool/FifoRing storage as well; only the PS virtual
/// time and the coupled routing uniforms are specific to this class.
///
/// **Sample-path coupling.**  The dominance results (Lemmas 9-10, Prop. 11)
/// compare FIFO and PS *on the same sample path ω*: identical external
/// arrival times per server and identical routing decisions identified by
/// the order they are taken at each server.  The simulator realises exactly
/// this coupling: server s's external arrivals come from the dedicated
/// stream derive_stream(seed, s), and the k-th service completion at server
/// s consumes the *stateless* uniform U(seed, s, k) — so two runs with the
/// same seed but different disciplines see the same ω.

#include <cstdint>
#include <map>
#include <vector>

#include "des/event_queue.hpp"
#include "des/packet_kernel.hpp"
#include "stats/summary.hpp"
#include "util/rng.hpp"

namespace routesim {

/// Service discipline of every server in the network.
enum class Discipline : std::uint8_t { kFifo, kPs };

/// One routing alternative: with probability `probability`, go to server
/// `target` after completing service.  Unassigned probability mass exits
/// the network.
struct RoutingChoice {
  double probability = 0.0;
  std::uint32_t target = 0;
};

/// Static description of one server.
struct LevelledServerSpec {
  double service_rate = 1.0;   ///< FIFO service time and PS rate are 1/this and this
  double external_rate = 0.0;  ///< Poisson external arrival rate
  std::vector<RoutingChoice> routing;  ///< targets must have larger indices
};

struct LevelledNetworkConfig {
  std::vector<LevelledServerSpec> servers;
  Discipline discipline = Discipline::kFifo;
  std::uint64_t seed = 1;
  /// When true, keeps a time-weighted occupancy tracker per server
  /// (needed by the queue-occupancy experiments; costs memory).
  bool track_per_server = false;
};

/// Per-server counters over the measurement window.
struct ServerStats {
  std::uint64_t external_arrivals = 0;
  std::uint64_t total_arrivals = 0;  ///< external + internal
  std::uint64_t departures = 0;      ///< service completions
  double mean_occupancy = 0.0;       ///< time-avg number present (if tracked)
};

class LevelledNetwork {
 public:
  explicit LevelledNetwork(LevelledNetworkConfig config);

  /// Record the cumulative number of network departures at each of the given
  /// (sorted, ascending) times.  Must be called before run().  Departure
  /// counts start at time 0 regardless of warm-up, because the dominance
  /// statement B(t) >= B~(t) of Lemma 10 is about counts from the origin.
  void set_checkpoints(std::vector<double> times);

  /// Runs the simulation on [0, horizon]; statistics other than the
  /// checkpoint counts cover the window [warmup, horizon].
  /// Precondition: 0 <= warmup <= horizon.
  void run(double warmup, double horizon);

  // --- results (valid after run()) ---

  /// Delay (network sojourn time) of customers that arrived inside the
  /// measurement window and departed before the horizon.
  [[nodiscard]] const Summary& delay() const noexcept { return stats_.delay(); }

  /// Time-average number of customers in the network over the window.
  [[nodiscard]] double time_avg_population() const noexcept {
    return stats_.time_avg_population();
  }

  /// Peak population since warm-up.
  [[nodiscard]] double peak_population() const noexcept {
    return stats_.peak_population();
  }

  /// Population remaining at the horizon (backlog; grows linearly iff unstable).
  [[nodiscard]] double final_population() const noexcept {
    return stats_.final_population();
  }

  /// Customers that left the network inside the measurement window.
  [[nodiscard]] std::uint64_t departures_in_window() const noexcept {
    return stats_.deliveries_in_window();
  }

  /// External arrivals inside the measurement window.
  [[nodiscard]] std::uint64_t arrivals_in_window() const noexcept {
    return stats_.arrivals_in_window();
  }

  /// Observed departure throughput over the window.
  [[nodiscard]] double throughput() const noexcept { return stats_.throughput(); }

  /// Cumulative departure counts at the requested checkpoints.
  [[nodiscard]] const std::vector<std::uint64_t>& checkpoint_departures() const noexcept {
    return checkpoint_counts_;
  }

  [[nodiscard]] const std::vector<ServerStats>& server_stats() const noexcept {
    return server_stats_;
  }

  [[nodiscard]] std::size_t num_servers() const noexcept { return servers_.size(); }

  /// The stateless routing uniform consumed by the k-th completion at server
  /// s under master seed `seed`.  Exposed for tests of the coupling.
  [[nodiscard]] static double coupled_uniform(std::uint64_t seed, std::uint32_t server,
                                              std::uint64_t k) noexcept {
    std::uint64_t state = derive_stream(seed ^ 0x5bf03635ul, (static_cast<std::uint64_t>(server) << 32) ^ k);
    return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
  }

 private:
  enum class EventKind : std::uint8_t { kExternalArrival, kFifoDone, kPsDone };

  struct Ev {
    EventKind kind{};
    std::uint32_t server = 0;
    std::uint64_t stamp = 0;  ///< PS reschedule generation (stale-event filter)
  };

  struct Customer {
    double arrival_time = 0.0;
  };

  struct ServerState {
    // FIFO: customers in arrival order; front is in service.
    FifoRing fifo;
    // PS: active customers keyed by the virtual time at which they finish.
    std::multimap<double, std::uint32_t> ps_active;
    double virtual_time = 0.0;
    double last_update = 0.0;
    std::uint64_t ps_stamp = 0;
    std::uint64_t completions = 0;  ///< routing-decision counter (the "k")
    Rng arrival_rng{0};
  };

  void enter_server(double now, std::uint32_t server, std::uint32_t customer);
  void complete_service(double now, std::uint32_t server, std::uint32_t customer);
  void ps_update_virtual(double now, std::uint32_t server);
  void ps_reschedule(double now, std::uint32_t server);
  void schedule_next_external(double now, std::uint32_t server);
  void on_network_departure(double now, std::uint32_t customer);

  LevelledNetworkConfig config_;
  std::vector<ServerState> servers_;
  Pool<Customer> customers_;
  EventQueue<Ev> events_;

  double warmup_ = 0.0;
  double now_ = 0.0;
  KernelStats stats_;
  std::uint64_t departures_total_ = 0;   // from time 0 (checkpoints)

  std::vector<double> checkpoints_;
  std::vector<std::uint64_t> checkpoint_counts_;
  std::size_t next_checkpoint_ = 0;

  std::vector<ServerStats> server_stats_;
};

}  // namespace routesim
