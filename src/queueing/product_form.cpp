#include "queueing/product_form.hpp"

#include <cmath>

#include "queueing/analytic.hpp"
#include "util/assert.hpp"

namespace routesim {

double ps_network_mean_population(std::span<const double> rho) {
  double total = 0.0;
  for (const double r : rho) total += mm1_mean_number(r);
  return total;
}

double hypercube_ps_mean_population(int d, double rho) {
  RS_EXPECTS(d >= 1);
  const double servers = static_cast<double>(d) * std::ldexp(1.0, d);
  return servers * mm1_mean_number(rho);
}

double butterfly_ps_mean_population(int d, double lambda, double p) {
  RS_EXPECTS(d >= 1);
  RS_EXPECTS(p >= 0.0 && p <= 1.0);
  const double servers_per_kind = static_cast<double>(d) * std::ldexp(1.0, d);
  return servers_per_kind *
         (mm1_mean_number(lambda * p) + mm1_mean_number(lambda * (1.0 - p)));
}

double geometric_sum_chernoff_tail(double m, double rho, double eps) {
  RS_EXPECTS(m >= 1.0);
  RS_EXPECTS(rho > 0.0 && rho < 1.0);
  RS_EXPECTS(eps > 0.0);
  // Minimise exp{ m [ log mgf(theta) - theta a ] } over theta in
  // (0, -log rho), where mgf(theta) = (1-rho)/(1-rho e^theta) is the MGF of
  // geometric(rho) and a = (1+eps) rho/(1-rho) is the per-variable target.
  const double a = (1.0 + eps) * rho / (1.0 - rho);
  const double theta_max = -std::log(rho);
  const auto exponent = [&](double theta) {
    const double mgf = (1.0 - rho) / (1.0 - rho * std::exp(theta));
    return std::log(mgf) - theta * a;
  };
  // Golden-section minimisation: the exponent is convex in theta.
  constexpr double kGolden = 0.618033988749895;
  double lo = 1e-12, hi = theta_max * (1.0 - 1e-12);
  for (int i = 0; i < 200; ++i) {
    const double x1 = hi - kGolden * (hi - lo);
    const double x2 = lo + kGolden * (hi - lo);
    if (exponent(x1) < exponent(x2)) {
      hi = x2;
    } else {
      lo = x1;
    }
  }
  const double best = exponent(0.5 * (lo + hi));
  const double bound = std::exp(m * best);
  return bound < 1.0 ? bound : 1.0;
}

}  // namespace routesim
