#pragma once
/// \file product_form.hpp
/// \brief Closed-form steady-state quantities of the product-form PS
///        networks Q~ and R~ (Propositions 12 and 17).
///
/// When the service discipline of the levelled networks Q / R is changed to
/// Processor Sharing, the networks become product-form ([Wal88] pp. 93-94):
/// server i with total arrival rate rho_i hosts n customers with probability
/// (1-rho_i) rho_i^n, independently across servers.

#include <cstdint>
#include <span>

namespace routesim {

/// Mean total population of a product-form network: sum_i rho_i/(1-rho_i).
/// Precondition: every rho_i in [0, 1).
[[nodiscard]] double ps_network_mean_population(std::span<const double> rho);

/// Mean population of the hypercube PS network Q~: d 2^d rho/(1-rho)
/// (every one of the d*2^d servers has total arrival rate rho, Prop. 5).
[[nodiscard]] double hypercube_ps_mean_population(int d, double rho);

/// Mean population of the butterfly PS network R~:
/// d 2^d [ lambda p/(1-lambda p) + lambda(1-p)/(1-lambda(1-p)) ]  (eq. 21).
[[nodiscard]] double butterfly_ps_mean_population(int d, double lambda, double p);

/// Chernoff upper bound on P[ S > m * mu * (1+eps) ] where S is the sum of
/// m i.i.d. geometric(rho) variables with mean mu = rho/(1-rho) each — the
/// tail estimate behind the "O(d 2^d) packets with high probability"
/// statement at the end of §3.3.  Returns a value in (0, 1].
[[nodiscard]] double geometric_sum_chernoff_tail(double m, double rho, double eps);

}  // namespace routesim
