#include "queueing/ps_server.hpp"

#include <limits>
#include <map>

#include "util/assert.hpp"

namespace routesim {

std::vector<double> ps_departure_times(std::span<const PsArrival> arrivals,
                                       double rate) {
  RS_EXPECTS(rate > 0.0);
  std::vector<double> departures(arrivals.size(), 0.0);

  // Active customers keyed by the virtual time at which they complete.
  // std::multimap keeps them sorted; ties depart simultaneously in
  // insertion order (multimap preserves it), which matches FIFO-among-equals.
  std::multimap<double, std::size_t> active;
  double now = 0.0;
  double virtual_time = 0.0;

  // Advances real and virtual clocks up to `target` real time, emitting any
  // departures that occur strictly before it.
  const auto advance_to = [&](double target) {
    while (!active.empty()) {
      const auto next = active.begin();
      const double needed =
          (next->first - virtual_time) * static_cast<double>(active.size()) / rate;
      const double depart_at = now + needed;
      if (depart_at > target) break;
      now = depart_at;
      virtual_time = next->first;
      departures[next->second] = now;
      active.erase(next);
    }
    if (now < target) {
      if (!active.empty()) {
        virtual_time += (target - now) * rate / static_cast<double>(active.size());
      }
      now = target;
    }
  };

  double last_arrival = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const auto& [time, work] = arrivals[i];
    RS_EXPECTS_MSG(time >= last_arrival, "arrival times must be non-decreasing");
    RS_EXPECTS(work > 0.0);
    last_arrival = time;
    advance_to(time);
    active.emplace(virtual_time + work, i);
  }
  advance_to(std::numeric_limits<double>::infinity());
  RS_ENSURES(active.empty());
  return departures;
}

std::vector<double> ps_departure_times(std::span<const double> arrivals, double rate) {
  std::vector<PsArrival> unit;
  unit.reserve(arrivals.size());
  for (const double t : arrivals) unit.push_back(PsArrival{t, 1.0});
  return ps_departure_times(unit, rate);
}

}  // namespace routesim
