#pragma once
/// \file ps_server.hpp
/// \brief Deterministic Processor-Sharing server — sample-path utilities.
///
/// Under PS every customer present receives an equal share of the service
/// rate (§3.3).  The implementation uses fair-share *virtual time*: a clock
/// V(t) advancing at rate r / n(t); a customer arriving at time a with work
/// w departs when V reaches V(a) + w.  For equal works customers depart in
/// arrival order, exactly as the paper observes.
///
/// The paper's worked example (§3.3): unit-rate PS server, unit works,
/// arrivals at 0 and 1/2 => departures at 3/2 and 2.  This is a unit test.

#include <span>
#include <vector>

namespace routesim {

struct PsArrival {
  double time = 0.0;  ///< arrival instant (non-decreasing across the input)
  double work = 1.0;  ///< service requirement
};

/// Departure times (indexed like the input) of a deterministic PS server
/// with service rate `rate` fed by the given arrivals.
/// Preconditions: rate > 0; arrival times non-decreasing; works > 0.
[[nodiscard]] std::vector<double> ps_departure_times(std::span<const PsArrival> arrivals,
                                                     double rate);

/// Convenience overload for unit works.
[[nodiscard]] std::vector<double> ps_departure_times(std::span<const double> arrivals,
                                                     double rate);

}  // namespace routesim
