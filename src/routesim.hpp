#pragma once
/// \file routesim.hpp
/// \brief Umbrella header: the full public API of the greedy-routing
///        reproduction library.
///
/// The primary entry point is core/scenario.hpp: describe an experiment as
/// a declarative `Scenario` ({scheme, d, lambda, p, workload, window,
/// plan, ...}), then `run(scenario)` returns delay/population/throughput
/// intervals next to the paper's bounds.  Schemes are resolved by name in
/// the `SchemeRegistry` (core/registry.hpp) — greedy hypercube/butterfly,
/// the equivalent networks Q/Q~, and the baseline/related-work comparators
/// all go through the same engine, so new sweeps and workloads are a data
/// change, not new wiring.  core/bounds.hpp has every proposition as a
/// directly callable closed form; core/simulation.hpp is the legacy façade
/// (now a shim over the Scenario API).  This header pulls in everything
/// for explorative use.

#include "core/bounds.hpp"           // every proposition as a function
#include "core/campaign.hpp"         // batched campaigns: Engine, sinks, cache
#include "core/equivalence.hpp"      // networks Q, R, G builders
#include "core/experiment.hpp"       // parallel replication runner
#include "core/registry.hpp"         // scheme name -> factory registry
#include "core/scenario.hpp"         // declarative Scenario + run() engine
#include "core/simulation.hpp"       // legacy façade (shim over Scenario)

#include "des/event_queue.hpp"
#include "des/simulator.hpp"

#include "queueing/analytic.hpp"
#include "queueing/fifo_server.hpp"
#include "queueing/levelled_network.hpp"
#include "queueing/product_form.hpp"
#include "queueing/ps_server.hpp"

#include "routing/batch_router.hpp"
#include "routing/deflection.hpp"
#include "routing/greedy_butterfly.hpp"
#include "routing/greedy_hypercube.hpp"
#include "routing/multicast.hpp"
#include "routing/pipelined_baseline.hpp"
#include "routing/valiant_mixing.hpp"

#include "stats/ci.hpp"
#include "stats/histogram.hpp"
#include "stats/little.hpp"
#include "stats/summary.hpp"
#include "stats/timeavg.hpp"

#include "topology/butterfly.hpp"
#include "topology/hypercube.hpp"

#include "util/bits.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

#include "workload/destination.hpp"
#include "workload/trace.hpp"
#include "workload/traffic.hpp"
