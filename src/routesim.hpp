#pragma once
/// \file routesim.hpp
/// \brief Umbrella header: the full public API of the greedy-routing
///        reproduction library.
///
/// Most applications only need core/simulation.hpp (the configure ->
/// replicate -> confidence-interval façade) plus core/bounds.hpp (the
/// paper's closed forms).  This header pulls in everything for
/// explorative use.

#include "core/bounds.hpp"           // every proposition as a function
#include "core/equivalence.hpp"      // networks Q, R, G builders
#include "core/experiment.hpp"       // parallel replication runner
#include "core/simulation.hpp"       // top-level façade

#include "des/event_queue.hpp"
#include "des/simulator.hpp"

#include "queueing/analytic.hpp"
#include "queueing/fifo_server.hpp"
#include "queueing/levelled_network.hpp"
#include "queueing/product_form.hpp"
#include "queueing/ps_server.hpp"

#include "routing/batch_router.hpp"
#include "routing/deflection.hpp"
#include "routing/greedy_butterfly.hpp"
#include "routing/greedy_hypercube.hpp"
#include "routing/multicast.hpp"
#include "routing/pipelined_baseline.hpp"
#include "routing/valiant_mixing.hpp"

#include "stats/ci.hpp"
#include "stats/histogram.hpp"
#include "stats/little.hpp"
#include "stats/summary.hpp"
#include "stats/timeavg.hpp"

#include "topology/butterfly.hpp"
#include "topology/hypercube.hpp"

#include "util/bits.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

#include "workload/destination.hpp"
#include "workload/trace.hpp"
#include "workload/traffic.hpp"
