#include "routing/batch_router.hpp"

#include "core/registry.hpp"
#include "util/bits.hpp"

#include "des/event_queue.hpp"
#include "util/assert.hpp"

namespace routesim {

namespace {

struct BatchEv {
  ArcId arc = 0;
};

}  // namespace

BatchRoutingResult route_batch_greedy(const Hypercube& cube,
                                      std::span<const BatchPacket> batch,
                                      double start_time) {
  BatchRoutingResult result;
  result.completion_times.assign(batch.size(), start_time);
  result.makespan = start_time;

  struct Flight {
    NodeId cur;
    NodeId dest;
  };
  std::vector<Flight> flights(batch.size());
  std::vector<std::vector<std::uint32_t>> arc_queue(cube.num_arcs());
  std::vector<std::size_t> arc_head(cube.num_arcs(), 0);
  EventQueue<BatchEv> events;

  const auto enqueue = [&](double now, std::uint32_t idx) {
    const auto& flight = flights[idx];
    const int dim = lowest_dimension(flight.cur ^ flight.dest);
    const ArcId arc = cube.arc_index(flight.cur, dim);
    arc_queue[arc].push_back(idx);
    if (arc_queue[arc].size() - arc_head[arc] == 1) {
      events.push(now + 1.0, BatchEv{arc});
    }
  };

  for (std::uint32_t i = 0; i < batch.size(); ++i) {
    RS_EXPECTS(cube.valid_node(batch[i].origin) && cube.valid_node(batch[i].destination));
    flights[i] = Flight{batch[i].origin, batch[i].destination};
    if (batch[i].origin != batch[i].destination) enqueue(start_time, i);
  }

  while (!events.empty()) {
    const auto event = events.pop();
    const double t = event.time;
    const ArcId arc = event.payload.arc;
    const std::uint32_t idx = arc_queue[arc][arc_head[arc]++];
    if (arc_queue[arc].size() > arc_head[arc]) {
      events.push(t + 1.0, BatchEv{arc});
    }
    Flight& flight = flights[idx];
    flight.cur = flip_dimension(flight.cur, cube.arc_dimension(arc));
    if (flight.cur == flight.dest) {
      result.completion_times[idx] = t;
      if (t > result.makespan) result.makespan = t;
    } else {
      enqueue(t, idx);
    }
  }
  return result;
}

void register_batch_greedy_scheme(SchemeRegistry& registry) {
  registry.add(
      {"batch_greedy",
       "one synchronous greedy round: fanout packets per node, all present "
       "at t = 0 (the §2.3 round primitive)",
       [](const Scenario& s) {
         CompiledScenario compiled;
         (void)s.resolved_topology({"hypercube"});  // hypercube-native
         (void)s.resolved_fault_policy({});  // no fault support: reject knobs
         (void)s.resolved_backend({});       // scalar-only: reject soa_batch
         // Permutation workload: all fanout packets of source x target
         // pi(x) — one synchronous greedy round of the permutation.
         const auto perm = s.shared_permutation_table();
         compiled.replicate = [s, perm, destinations = s.make_destinations()](
                                  std::uint64_t seed, int) {
           const Hypercube cube(s.d);
           Rng rng(seed);
           std::vector<BatchPacket> batch;
           batch.reserve(cube.num_nodes() * static_cast<std::size_t>(s.fanout));
           double hops_total = 0.0;
           for (NodeId origin = 0; origin < cube.num_nodes(); ++origin) {
             for (int k = 0; k < s.fanout; ++k) {
               const NodeId dest = perm != nullptr
                                       ? (*perm)[origin]
                                       : destinations.sample(rng, origin);
               batch.push_back({origin, dest});
               hops_total += static_cast<double>(hamming_distance(origin, dest));
             }
           }
           const auto result = route_batch_greedy(cube, batch, 0.0);
           double completion_total = 0.0;
           for (const double t : result.completion_times) completion_total += t;
           const double n = static_cast<double>(batch.size());
           return std::vector<double>{
               n > 0.0 ? completion_total / n : 0.0,
               0.0,
               result.makespan > 0.0 ? n / result.makespan : 0.0,
               n > 0.0 ? hops_total / n : 0.0,
               0.0,
               0.0,
               result.makespan};
         };
         compiled.extra_metrics = {"makespan"};
         return compiled;
       }});
}

}  // namespace routesim
