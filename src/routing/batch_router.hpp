#pragma once
/// \file batch_router.hpp
/// \brief Static greedy routing of a batch of packets on the d-cube.
///
/// Routes a set of packets that are all present at their origins at the
/// same start time, using the greedy increasing-index-order scheme with
/// FIFO arc queues, and returns each packet's completion time.  This is the
/// "one round" primitive of the §2.3 pipelined baseline (the first phase of
/// the Valiant-Brebner permutation algorithm applied to the packets'
/// actual destinations) and is also used by the static-routing tests.

#include <cstdint>
#include <span>
#include <vector>

#include "topology/hypercube.hpp"

namespace routesim {

struct BatchPacket {
  NodeId origin = 0;
  NodeId destination = 0;
};

struct BatchRoutingResult {
  /// Completion time of each packet (same order as the input); packets with
  /// origin == destination complete at start_time.
  std::vector<double> completion_times;
  /// Time at which the last packet is delivered (== start_time for an
  /// empty batch).
  double makespan = 0.0;
};

/// Runs one synchronous greedy round starting at start_time on an otherwise
/// empty network.  Ties at an arc at the same instant are served in input
/// order (the batch analogue of FIFO priority).
[[nodiscard]] BatchRoutingResult route_batch_greedy(const Hypercube& cube,
                                                    std::span<const BatchPacket> batch,
                                                    double start_time);

class SchemeRegistry;

/// core/registry.hpp hookup: registers "batch_greedy" — one synchronous
/// round per replication with `fanout` packets per node, extra metric
/// makespan.
void register_batch_greedy_scheme(SchemeRegistry& registry);

}  // namespace routesim
