#include "routing/deflection.hpp"

#include "core/registry.hpp"

#include <algorithm>
#include <utility>

#include "routing/topology_greedy.hpp"
#include "util/assert.hpp"
#include "util/distributions.hpp"

namespace routesim {

DeflectionSim::DeflectionSim(DeflectionConfig config) { reset(std::move(config)); }

void DeflectionSim::reset(DeflectionConfig config) {
  config_ = std::move(config);
  RS_EXPECTS(config_.lambda > 0.0);
  RS_EXPECTS(config_.destinations.dimension() == config_.d);
  cube_ = Hypercube(config_.d);
  RS_EXPECTS_MSG(config_.fixed_destinations == nullptr ||
                     config_.fixed_destinations->size() == cube_.num_nodes(),
                 "fixed-destination table must have 2^d entries");
  rng_.reseed(derive_stream(config_.seed, 0xDEF1));
  resident_.resize(cube_.num_nodes());
  injection_.resize(cube_.num_nodes());
  for (auto& residents : resident_) residents.clear();
  for (auto& waiting : injection_) waiting.clear();
  soa_store_.clear();
  resident_ids_.resize(cube_.num_nodes());
  injection_ids_.resize(cube_.num_nodes());
  for (auto& residents : resident_ids_) residents.clear();
  for (auto& waiting : injection_ids_) waiting.clear();
  productive_ = deflected_ = backlog_ = 0;

  ttl_ = config_.ttl > 0 ? config_.ttl : 64 * config_.d;
  // Hop counters are 16-bit; a larger TTL could never fire (wraparound).
  ttl_ = std::min(ttl_, 65535);
  fault_model_.configure(
      make_fault_model_config(config_, cube_.num_arcs(), cube_.num_nodes()),
      [this](std::uint32_t node, std::vector<ArcId>& out) {
        cube_.append_incident_arcs(node, out);
      });
  fault_active_ = fault_model_.active();

  // With a static fault set, per-node port liveness never changes: cache
  // it once instead of querying every arc every slot.
  live_ports_.clear();
  dead_ports_.clear();
  if (fault_active_ && !fault_model_.dynamic()) {
    live_ports_.assign(cube_.num_nodes(), 0);
    dead_ports_.assign(cube_.num_nodes(), 0);
    for (NodeId node = 0; node < cube_.num_nodes(); ++node) {
      for (int dim = 1; dim <= config_.d; ++dim) {
        if (fault_model_.is_faulty(cube_.arc_index(node, dim))) {
          dead_ports_[node] |= std::uint32_t{1} << (dim - 1);
        } else {
          ++live_ports_[node];
        }
      }
    }
  }

  // Tail metrics (delay_p50/p99) come from the delay histogram.
  KernelStats::Config stats;
  enable_delay_tail_tracking(stats, config_.d);
  stats_.configure(stats);
}

void DeflectionSim::run(std::uint64_t warmup_slots, std::uint64_t num_slots) {
  if (config_.backend == KernelBackend::kSoaBatch) {
    run_soa(warmup_slots, num_slots);
    return;
  }
  run_scalar(warmup_slots, num_slots);
}

void DeflectionSim::run_scalar(std::uint64_t warmup_slots,
                               std::uint64_t num_slots) {
  RS_EXPECTS(warmup_slots <= num_slots);
  const auto d = static_cast<std::size_t>(config_.d);
  const double warmup_time = static_cast<double>(warmup_slots);
  stats_.begin(warmup_time, static_cast<double>(num_slots));

  // Next-slot buffers, reused across slots.
  std::vector<std::vector<Pkt>> incoming(cube_.num_nodes());
  std::vector<int> port_used(d);

  for (std::uint64_t slot = 0; slot < num_slots; ++slot) {
    const double now = static_cast<double>(slot);
    if (fault_active_ && fault_model_.dynamic()) fault_model_.advance_to(now);

    // 1. New packets join their origin's injection queue.
    for (NodeId node = 0; node < cube_.num_nodes(); ++node) {
      const std::uint64_t births = sample_poisson(rng_, config_.lambda);
      const bool node_dead = fault_active_ && fault_model_.is_node_faulty(node);
      for (std::uint64_t b = 0; b < births; ++b) {
        const NodeId dest = config_.fixed_destinations != nullptr
                                ? (*config_.fixed_destinations)[node]
                                : config_.destinations.sample(rng_, node);
        if (node_dead) {
          // A dead node offers no deliverable traffic; count its load as
          // fault-dropped so the delivery ratio reflects the offered load.
          stats_.count_fault_drop(now);
          continue;
        }
        if (dest == node) {
          // Delivered in place, delay 0 (consistent with the greedy model).
          stats_.record_delivery(now, now, 0.0);
          continue;
        }
        injection_.at(node).push_back(
            Pkt{dest, now, 0,
                static_cast<std::uint16_t>(hamming_distance(node, dest))});
      }
    }

    // 2. Admission: a node may hold at most one packet per live out-port.
    for (NodeId node = 0; node < cube_.num_nodes(); ++node) {
      auto& residents = resident_[node];
      auto& waiting = injection_[node];
      std::size_t capacity = d;
      if (fault_active_) {
        if (!live_ports_.empty()) {
          capacity = live_ports_[node];
        } else {
          capacity = 0;
          for (int dim = 1; dim <= config_.d; ++dim) {
            if (!fault_model_.is_faulty(cube_.arc_index(node, dim))) ++capacity;
          }
        }
      }
      while (residents.size() < capacity && !waiting.empty()) {
        residents.push_back(waiting.front());
        waiting.pop_front();
      }
    }

    // 3. Port assignment and synchronous transmission.  A dead arc is a
    // port that is never free, so the existing productive-then-deflect
    // rule routes around faults by construction.
    for (NodeId node = 0; node < cube_.num_nodes(); ++node) {
      auto& residents = resident_[node];
      if (residents.empty()) continue;
      // Oldest packets pick first.
      std::stable_sort(residents.begin(), residents.end(),
                       [](const Pkt& a, const Pkt& b) { return a.gen_time < b.gen_time; });
      std::fill(port_used.begin(), port_used.end(), 0);
      if (fault_active_) {
        if (!dead_ports_.empty()) {
          for (std::uint32_t mask = dead_ports_[node]; mask != 0;
               mask &= mask - 1u) {
            port_used[lowest_dimension(mask) - 1] = 1;
          }
        } else {
          for (int dim = 1; dim <= config_.d; ++dim) {
            if (fault_model_.is_faulty(cube_.arc_index(node, dim))) {
              port_used[dim - 1] = 1;
            }
          }
        }
      }
      for (auto& packet : residents) {
        const NodeId needed = node ^ packet.dest;
        int chosen = 0;
        for (int dim = 1; dim <= config_.d; ++dim) {
          if (has_dimension(needed, dim) && port_used[dim - 1] == 0) {
            chosen = dim;
            break;
          }
        }
        bool productive = chosen != 0;
        if (!productive) {
          for (int dim = 1; dim <= config_.d; ++dim) {
            if (port_used[dim - 1] == 0) {
              chosen = dim;
              break;
            }
          }
        }
        if (chosen == 0) {
          // Fault-only dead end: more packets than live ports this slot
          // (a burst arriving over live in-arcs of a nearly cut-off node).
          RS_DASSERT(fault_active_);
          stats_.count_fault_drop(packet.gen_time);
          continue;
        }
        port_used[chosen - 1] = 1;
        productive ? ++productive_ : ++deflected_;
        ++packet.hops;
        const NodeId next = flip_dimension(node, chosen);
        if (productive && next == packet.dest) {
          const double stretch =
              packet.min_hops > 0
                  ? static_cast<double>(packet.hops) / packet.min_hops
                  : 0.0;
          stats_.record_delivery(now + 1.0, packet.gen_time,
                                 static_cast<double>(packet.hops), stretch);
        } else if (fault_active_ && packet.hops >= ttl_) {
          stats_.count_fault_drop(packet.gen_time);
        } else {
          incoming[next].push_back(packet);
        }
      }
      residents.clear();
    }
    for (NodeId node = 0; node < cube_.num_nodes(); ++node) {
      resident_[node].swap(incoming[node]);
      incoming[node].clear();
    }
  }

  stats_.finalize(warmup_time, static_cast<double>(num_slots),
                  /*pending_reset=*/false);
  backlog_ = 0;
  for (const auto& queue : injection_) backlog_ += queue.size();
  for (const auto& residents : resident_) backlog_ += residents.size();
}

void DeflectionSim::run_soa(std::uint64_t warmup_slots,
                            std::uint64_t num_slots) {
  RS_EXPECTS(warmup_slots <= num_slots);
  const auto d = static_cast<std::size_t>(config_.d);
  const double warmup_time = static_cast<double>(warmup_slots);
  stats_.begin(warmup_time, static_cast<double>(num_slots));
  soa_store_.reserve(static_cast<std::size_t>(
      config_.lambda * static_cast<double>(cube_.num_nodes()) *
          static_cast<double>(config_.d) +
      64.0));

  // Next-slot buffers, reused across slots.
  std::vector<std::vector<std::uint32_t>> incoming(cube_.num_nodes());
  std::vector<int> port_used(d);

  for (std::uint64_t slot = 0; slot < num_slots; ++slot) {
    const double now = static_cast<double>(slot);
    if (fault_active_ && fault_model_.dynamic()) fault_model_.advance_to(now);

    // 1. New packets join their origin's injection queue (draws and stats
    // calls in the exact scalar order).
    for (NodeId node = 0; node < cube_.num_nodes(); ++node) {
      const std::uint64_t births = sample_poisson(rng_, config_.lambda);
      const bool node_dead = fault_active_ && fault_model_.is_node_faulty(node);
      for (std::uint64_t b = 0; b < births; ++b) {
        const NodeId dest = config_.fixed_destinations != nullptr
                                ? (*config_.fixed_destinations)[node]
                                : config_.destinations.sample(rng_, node);
        if (node_dead) {
          stats_.count_fault_drop(now);
          continue;
        }
        if (dest == node) {
          stats_.record_delivery(now, now, 0.0);
          continue;
        }
        const std::uint32_t pkt = soa_store_.allocate();
        soa_store_.node[pkt] = node;
        soa_store_.dest[pkt] = dest;
        soa_store_.gen_time[pkt] = now;
        soa_store_.hops[pkt] = 0;
        soa_store_.aux[pkt] =
            static_cast<std::uint16_t>(hamming_distance(node, dest));
        injection_ids_.at(node).push_back(pkt);
      }
    }

    // 2. Admission: a node may hold at most one packet per live out-port.
    for (NodeId node = 0; node < cube_.num_nodes(); ++node) {
      auto& residents = resident_ids_[node];
      auto& waiting = injection_ids_[node];
      std::size_t capacity = d;
      if (fault_active_) {
        if (!live_ports_.empty()) {
          capacity = live_ports_[node];
        } else {
          capacity = 0;
          for (int dim = 1; dim <= config_.d; ++dim) {
            if (!fault_model_.is_faulty(cube_.arc_index(node, dim))) ++capacity;
          }
        }
      }
      while (residents.size() < capacity && !waiting.empty()) {
        residents.push_back(waiting.front());
        waiting.pop_front();
      }
    }

    // 3. Port assignment and synchronous transmission.
    for (NodeId node = 0; node < cube_.num_nodes(); ++node) {
      auto& residents = resident_ids_[node];
      if (residents.empty()) continue;
      // Oldest packets pick first: a stable sort on ids keyed by gen_time
      // gives the same permutation as the scalar stable sort on values.
      std::stable_sort(residents.begin(), residents.end(),
                       [this](std::uint32_t a, std::uint32_t b) {
                         return soa_store_.gen_time[a] < soa_store_.gen_time[b];
                       });
      std::fill(port_used.begin(), port_used.end(), 0);
      if (fault_active_) {
        if (!dead_ports_.empty()) {
          for (std::uint32_t mask = dead_ports_[node]; mask != 0;
               mask &= mask - 1u) {
            port_used[lowest_dimension(mask) - 1] = 1;
          }
        } else {
          for (int dim = 1; dim <= config_.d; ++dim) {
            if (fault_model_.is_faulty(cube_.arc_index(node, dim))) {
              port_used[dim - 1] = 1;
            }
          }
        }
      }
      for (const std::uint32_t pkt : residents) {
        const NodeId needed = node ^ soa_store_.dest[pkt];
        int chosen = 0;
        for (int dim = 1; dim <= config_.d; ++dim) {
          if (has_dimension(needed, dim) && port_used[dim - 1] == 0) {
            chosen = dim;
            break;
          }
        }
        bool productive = chosen != 0;
        if (!productive) {
          for (int dim = 1; dim <= config_.d; ++dim) {
            if (port_used[dim - 1] == 0) {
              chosen = dim;
              break;
            }
          }
        }
        if (chosen == 0) {
          RS_DASSERT(fault_active_);
          stats_.count_fault_drop(soa_store_.gen_time[pkt]);
          soa_store_.release(pkt);
          continue;
        }
        port_used[chosen - 1] = 1;
        productive ? ++productive_ : ++deflected_;
        soa_store_.hops[pkt] = static_cast<std::uint16_t>(soa_store_.hops[pkt] + 1);
        const NodeId next = flip_dimension(node, chosen);
        if (productive && next == soa_store_.dest[pkt]) {
          const std::uint16_t min_hops = soa_store_.aux[pkt];
          const double stretch =
              min_hops > 0
                  ? static_cast<double>(soa_store_.hops[pkt]) / min_hops
                  : 0.0;
          stats_.record_delivery(now + 1.0, soa_store_.gen_time[pkt],
                                 static_cast<double>(soa_store_.hops[pkt]),
                                 stretch);
          soa_store_.release(pkt);
        } else if (fault_active_ && soa_store_.hops[pkt] >= ttl_) {
          stats_.count_fault_drop(soa_store_.gen_time[pkt]);
          soa_store_.release(pkt);
        } else {
          incoming[next].push_back(pkt);
        }
      }
      residents.clear();
    }
    for (NodeId node = 0; node < cube_.num_nodes(); ++node) {
      resident_ids_[node].swap(incoming[node]);
      incoming[node].clear();
    }
  }

  stats_.finalize(warmup_time, static_cast<double>(num_slots),
                  /*pending_reset=*/false);
  backlog_ = 0;
  for (const auto& queue : injection_ids_) backlog_ += queue.size();
  for (const auto& residents : resident_ids_) backlog_ += residents.size();
}

void register_deflection_scheme(SchemeRegistry& registry) {
  registry.add(
      {"deflection",
       "bufferless hot-potato routing on the d-cube ([GrH89]; window in "
       "slots, lambda in packets per node per slot)",
       [](const Scenario& s) {
         // Non-native topologies route through the topology-parametric
         // hot-potato loop (ports = out-arcs, same oldest-first rule).
         if (s.resolved_topology({"hypercube", "ring", "torus", "mesh"}) !=
             "hypercube") {
           return compile_topology_deflection(s);
         }
         CompiledScenario compiled;
         // Validated before the worker fan-out (see below for faults).
         const auto perm = s.shared_permutation_table();
         const Window window = s.resolved_window();
         // Deflection is natively fault-aware (dead arcs are permanently
         // busy ports): any fault_policy is accepted and ignored, but the
         // knob combination is still validated before the worker fan-out.
         const FaultPolicy fault_policy = s.resolved_fault_policy(
             {FaultPolicy::kDrop, FaultPolicy::kSkipDim, FaultPolicy::kDeflect,
              FaultPolicy::kTwinDetour});
         if (s.storm_rate > 0.0 || s.storm_duration > 0.0) {
           throw ScenarioError(
               "scheme 'deflection' does not support fault storms "
               "(clear storm_rate/storm_duration; storms are available on "
               "hypercube_greedy and valiant_mixing)");
         }
         // Natively slotted, so soa_batch has no extra restrictions here.
         const KernelBackend backend = s.resolved_backend(
             {KernelBackend::kScalar, KernelBackend::kSoaBatch});
         compiled.replicate = [s, window, fault_policy, perm, backend,
                               dist = s.make_destinations()](
                                  std::uint64_t seed, int) {
           DeflectionConfig config;
           config.d = s.d;
           config.lambda = s.lambda;
           config.destinations = dist;
           config.fixed_destinations = perm ? perm.get() : nullptr;
           config.seed = seed;
           config.backend = backend;
           if (fault_policy != FaultPolicy::kNone) {
             config.arc_fault_rate = s.fault_rate;
             config.node_fault_rate = s.node_fault_rate;
             config.fault_mtbf = s.fault_mtbf;
             config.fault_mttr = s.fault_mttr;
             config.ttl = s.ttl;
           }
           DeflectionSim& sim = reusable_sim<DeflectionSim>(std::move(config));
           const auto warmup_slots = static_cast<std::uint64_t>(window.warmup);
           const auto num_slots = static_cast<std::uint64_t>(window.horizon);
           sim.run(warmup_slots, num_slots);
           const KernelStats& stats = sim.kernel_stats();
           return std::vector<double>{
               sim.delay().mean(),
               0.0,
               sim.throughput(),
               sim.hops().mean(),
               0.0,
               static_cast<double>(sim.injection_backlog()),
               sim.deflection_fraction(),
               stats.delivery_ratio(),
               stats.mean_stretch(),
               stats.delay_quantile(0.5),
               stats.delay_quantile(0.99),
               static_cast<double>(stats.fault_drops_in_window())};
         };
         compiled.extra_metrics = {"deflection_fraction", "delivery_ratio",
                                   "mean_stretch",        "delay_p50",
                                   "delay_p99",           "fault_drops"};
         return compiled;
       }});
}

}  // namespace routesim
