#include "routing/deflection.hpp"

#include "core/registry.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"
#include "util/distributions.hpp"

namespace routesim {

DeflectionSim::DeflectionSim(DeflectionConfig config) { reset(std::move(config)); }

void DeflectionSim::reset(DeflectionConfig config) {
  config_ = std::move(config);
  RS_EXPECTS(config_.lambda > 0.0);
  RS_EXPECTS(config_.destinations.dimension() == config_.d);
  cube_ = Hypercube(config_.d);
  rng_.reseed(derive_stream(config_.seed, 0xDEF1));
  resident_.resize(cube_.num_nodes());
  injection_.resize(cube_.num_nodes());
  for (auto& residents : resident_) residents.clear();
  for (auto& waiting : injection_) waiting.clear();
  productive_ = deflected_ = backlog_ = 0;
}

void DeflectionSim::run(std::uint64_t warmup_slots, std::uint64_t num_slots) {
  RS_EXPECTS(warmup_slots <= num_slots);
  const auto d = static_cast<std::size_t>(config_.d);
  const double warmup_time = static_cast<double>(warmup_slots);
  stats_.begin(warmup_time, static_cast<double>(num_slots));

  // Next-slot buffers, reused across slots.
  std::vector<std::vector<Pkt>> incoming(cube_.num_nodes());
  std::vector<int> port_used(d);

  for (std::uint64_t slot = 0; slot < num_slots; ++slot) {
    const double now = static_cast<double>(slot);

    // 1. New packets join their origin's injection queue.
    for (NodeId node = 0; node < cube_.num_nodes(); ++node) {
      const std::uint64_t births = sample_poisson(rng_, config_.lambda);
      for (std::uint64_t b = 0; b < births; ++b) {
        const NodeId dest = config_.destinations.sample(rng_, node);
        if (dest == node) {
          // Delivered in place, delay 0 (consistent with the greedy model).
          stats_.record_delivery(now, now, 0.0);
          continue;
        }
        injection_.at(node).push_back(Pkt{dest, now, 0});
      }
    }

    // 2. Admission: a node may hold at most d packets.
    for (NodeId node = 0; node < cube_.num_nodes(); ++node) {
      auto& residents = resident_[node];
      auto& waiting = injection_[node];
      while (residents.size() < d && !waiting.empty()) {
        residents.push_back(waiting.front());
        waiting.pop_front();
      }
    }

    // 3. Port assignment and synchronous transmission.
    for (NodeId node = 0; node < cube_.num_nodes(); ++node) {
      auto& residents = resident_[node];
      if (residents.empty()) continue;
      // Oldest packets pick first.
      std::stable_sort(residents.begin(), residents.end(),
                       [](const Pkt& a, const Pkt& b) { return a.gen_time < b.gen_time; });
      std::fill(port_used.begin(), port_used.end(), 0);
      for (auto& packet : residents) {
        const NodeId needed = node ^ packet.dest;
        int chosen = 0;
        for (int dim = 1; dim <= config_.d; ++dim) {
          if (has_dimension(needed, dim) && port_used[dim - 1] == 0) {
            chosen = dim;
            break;
          }
        }
        bool productive = chosen != 0;
        if (!productive) {
          for (int dim = 1; dim <= config_.d; ++dim) {
            if (port_used[dim - 1] == 0) {
              chosen = dim;
              break;
            }
          }
        }
        RS_DASSERT(chosen != 0);  // residents.size() <= d guarantees a port
        port_used[chosen - 1] = 1;
        productive ? ++productive_ : ++deflected_;
        ++packet.hops;
        const NodeId next = flip_dimension(node, chosen);
        if (productive && next == packet.dest) {
          stats_.record_delivery(now + 1.0, packet.gen_time,
                                 static_cast<double>(packet.hops));
        } else {
          incoming[next].push_back(packet);
        }
      }
      residents.clear();
    }
    for (NodeId node = 0; node < cube_.num_nodes(); ++node) {
      resident_[node].swap(incoming[node]);
      incoming[node].clear();
    }
  }

  stats_.finalize(warmup_time, static_cast<double>(num_slots),
                  /*pending_reset=*/false);
  backlog_ = 0;
  for (const auto& queue : injection_) backlog_ += queue.size();
  for (const auto& residents : resident_) backlog_ += residents.size();
}

void register_deflection_scheme(SchemeRegistry& registry) {
  registry.add(
      {"deflection",
       "bufferless hot-potato routing on the d-cube ([GrH89]; window in "
       "slots, lambda in packets per node per slot)",
       [](const Scenario& s) {
         CompiledScenario compiled;
         const Window window = s.resolved_window();
         compiled.replicate = [s, window, dist = s.make_destinations()](
                                  std::uint64_t seed, int) {
           DeflectionConfig config;
           config.d = s.d;
           config.lambda = s.lambda;
           config.destinations = dist;
           config.seed = seed;
           DeflectionSim& sim = reusable_sim<DeflectionSim>(std::move(config));
           const auto warmup_slots = static_cast<std::uint64_t>(window.warmup);
           const auto num_slots = static_cast<std::uint64_t>(window.horizon);
           sim.run(warmup_slots, num_slots);
           return std::vector<double>{
               sim.delay().mean(),
               0.0,
               sim.throughput(),
               sim.hops().mean(),
               0.0,
               static_cast<double>(sim.injection_backlog()),
               sim.deflection_fraction()};
         };
         compiled.extra_metrics = {"deflection_fraction"};
         return compiled;
       }});
}

}  // namespace routesim
