#pragma once
/// \file deflection.hpp
/// \brief Deflection ("hot-potato") routing on the hypercube — the
///        bufferless alternative analysed approximately by Greenberg &
///        Hajek [GrH89], included here as the related-work comparator.
///
/// Time is slotted (slot = one packet transmission).  Each node holds at
/// most d packets (one per input port).  In every slot each node assigns
/// each resident packet an output dimension: packets are considered oldest
/// first; a packet prefers its lowest *productive* dimension (one that
/// reduces its Hamming distance to the destination) that is still free,
/// and otherwise is *deflected* onto the lowest free non-productive
/// dimension.  Freshly generated packets wait in a per-node injection
/// queue and are admitted whenever the node holds fewer than d packets.
///
/// The slot-stepped dynamics need no event set, but the measurement-window
/// accounting (delay / hops / deliveries / throughput) is the shared
/// KernelStats of des/packet_kernel.hpp — the same harvest every other
/// scheme uses, which is what makes the cross-scheme comparisons coupled.

#include <cstdint>
#include <deque>
#include <vector>

#include "des/kernel_backend.hpp"
#include "des/packet_kernel.hpp"
#include "des/soa_store.hpp"
#include "stats/summary.hpp"
#include "topology/hypercube.hpp"
#include "util/rng.hpp"
#include "workload/destination.hpp"

namespace routesim {

struct DeflectionConfig {
  int d = 4;
  double lambda = 0.05;  ///< per-node generation rate (packets per slot)
  DestinationDistribution destinations = DestinationDistribution::uniform(4);
  /// Per-source fixed destinations (workload = permutation); non-owning,
  /// 2^d entries, null = sample from `destinations`.
  const std::vector<NodeId>* fixed_destinations = nullptr;
  std::uint64_t seed = 1;

  // --- fault injection (src/fault/fault_model.hpp) ----------------------
  // Deflection is *natively* fault-aware: a dead arc is simply a port that
  // is never free, so resident packets route around it with the existing
  // productive-then-deflect rule (the skip-dimension machinery of the
  // greedy scheme, expressed in slots).  Packets are fault-dropped when
  // their node has no free live port in a slot, when they are generated at
  // a dead node, or when their hop count exceeds the TTL.
  double arc_fault_rate = 0.0;
  double node_fault_rate = 0.0;
  double fault_mtbf = 0.0;  ///< mean link up-time (> 0 with mttr => dynamic)
  double fault_mttr = 0.0;  ///< mean link repair time
  int ttl = 0;              ///< max hops before a packet is dropped; 0 = 64*d

  /// Execution engine.  Deflection is natively slotted, so kSoaBatch is
  /// accepted unconditionally: the same slot loop over a structure-of-
  /// arrays packet store (ids in the per-node containers, fields in
  /// SoaPacketStore) — bit-identical draws, sorts and statistics.
  KernelBackend backend = KernelBackend::kScalar;
};

class DeflectionSim {
 public:
  explicit DeflectionSim(DeflectionConfig config);

  /// Reconfigures for another replication, reusing storage.
  void reset(DeflectionConfig config);

  /// Simulates `num_slots` unit slots; statistics cover slots >= warmup_slots.
  void run(std::uint64_t warmup_slots, std::uint64_t num_slots);

  /// Delay: generation slot to delivery slot (includes injection waiting).
  [[nodiscard]] const Summary& delay() const noexcept { return stats_.delay(); }

  /// Hops actually taken per delivered packet (>= Hamming distance;
  /// the excess counts deflections).
  [[nodiscard]] const Summary& hops() const noexcept { return stats_.hops(); }

  /// Fraction of transmissions that were deflections (non-productive).
  [[nodiscard]] double deflection_fraction() const noexcept {
    const double total = static_cast<double>(productive_ + deflected_);
    return total == 0.0 ? 0.0 : static_cast<double>(deflected_) / total;
  }

  /// Packets waiting in injection queues at the end of the run.
  [[nodiscard]] std::uint64_t injection_backlog() const noexcept { return backlog_; }

  [[nodiscard]] std::uint64_t deliveries_in_window() const noexcept {
    return stats_.deliveries_in_window();
  }

  /// Deliveries per slot over the measurement window.
  [[nodiscard]] double throughput() const noexcept { return stats_.throughput(); }

  /// Packets lost to faults (dead node, no live port, TTL) in the window.
  [[nodiscard]] std::uint64_t fault_drops_in_window() const noexcept {
    return stats_.fault_drops_in_window();
  }
  [[nodiscard]] double delivery_ratio() const noexcept {
    return stats_.delivery_ratio();
  }
  /// The attached fault model (inactive without fault rates).
  [[nodiscard]] const FaultModel& fault_model() const noexcept {
    return fault_model_;
  }
  /// The full measurement harvest (delivery ratio, stretch, quantiles, ...).
  [[nodiscard]] const KernelStats& kernel_stats() const noexcept {
    return stats_;
  }

 private:
  struct Pkt {
    NodeId dest;
    double gen_time;
    std::uint16_t hops;
    std::uint16_t min_hops;  ///< Hamming distance at generation (stretch)
  };

  void run_scalar(std::uint64_t warmup_slots, std::uint64_t num_slots);
  /// The backend == kSoaBatch variant of the slot loop: packet ids flow
  /// through the per-node containers while the fields live in soa_store_
  /// (dest/gen_time/hops/aux = min_hops).  The stable sort on ids by
  /// gen_time yields the same permutation as the scalar sort on values, so
  /// draws, transmissions and statistics are bit-identical.
  void run_soa(std::uint64_t warmup_slots, std::uint64_t num_slots);

  DeflectionConfig config_;
  Hypercube cube_{1};  ///< placeholder; reset() installs the real topology
  Rng rng_;
  FaultModel fault_model_;
  bool fault_active_ = false;
  int ttl_ = 0;
  /// Per-node live-out-port count and dead-port dimension mask, cached in
  /// reset() when the fault set is static (empty in dynamic mode, where
  /// liveness is recomputed per slot).
  std::vector<std::uint8_t> live_ports_;
  std::vector<std::uint32_t> dead_ports_;

  std::vector<std::vector<Pkt>> resident_;           // packets at each node
  std::vector<std::deque<Pkt>> injection_;           // waiting to be admitted

  // --- soa_batch backend state (unused by kScalar) ----------------------
  SoaPacketStore soa_store_;
  std::vector<std::vector<std::uint32_t>> resident_ids_;
  std::vector<std::deque<std::uint32_t>> injection_ids_;

  KernelStats stats_;
  std::uint64_t productive_ = 0;
  std::uint64_t deflected_ = 0;
  std::uint64_t backlog_ = 0;
};

class SchemeRegistry;

/// core/registry.hpp hookup: registers "deflection" ([GrH89] hot-potato
/// comparator; window interpreted in slots) with extra metrics
/// deflection_fraction plus the resilience extras (delivery_ratio,
/// mean_stretch, delay_p50/p99, fault_drops).  Natively fault-aware:
/// fault_rate / node_fault_rate / fault_mtbf / fault_mttr apply,
/// fault_policy does not.
void register_deflection_scheme(SchemeRegistry& registry);

}  // namespace routesim
