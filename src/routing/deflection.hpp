#pragma once
/// \file deflection.hpp
/// \brief Deflection ("hot-potato") routing on the hypercube — the
///        bufferless alternative analysed approximately by Greenberg &
///        Hajek [GrH89], included here as the related-work comparator.
///
/// Time is slotted (slot = one packet transmission).  Each node holds at
/// most d packets (one per input port).  In every slot each node assigns
/// each resident packet an output dimension: packets are considered oldest
/// first; a packet prefers its lowest *productive* dimension (one that
/// reduces its Hamming distance to the destination) that is still free,
/// and otherwise is *deflected* onto the lowest free non-productive
/// dimension.  Freshly generated packets wait in a per-node injection
/// queue and are admitted whenever the node holds fewer than d packets.
///
/// The slot-stepped dynamics need no event set, but the measurement-window
/// accounting (delay / hops / deliveries / throughput) is the shared
/// KernelStats of des/packet_kernel.hpp — the same harvest every other
/// scheme uses, which is what makes the cross-scheme comparisons coupled.

#include <cstdint>
#include <deque>
#include <vector>

#include "des/packet_kernel.hpp"
#include "stats/summary.hpp"
#include "topology/hypercube.hpp"
#include "util/rng.hpp"
#include "workload/destination.hpp"

namespace routesim {

struct DeflectionConfig {
  int d = 4;
  double lambda = 0.05;  ///< per-node generation rate (packets per slot)
  DestinationDistribution destinations = DestinationDistribution::uniform(4);
  std::uint64_t seed = 1;
};

class DeflectionSim {
 public:
  explicit DeflectionSim(DeflectionConfig config);

  /// Reconfigures for another replication, reusing storage.
  void reset(DeflectionConfig config);

  /// Simulates `num_slots` unit slots; statistics cover slots >= warmup_slots.
  void run(std::uint64_t warmup_slots, std::uint64_t num_slots);

  /// Delay: generation slot to delivery slot (includes injection waiting).
  [[nodiscard]] const Summary& delay() const noexcept { return stats_.delay(); }

  /// Hops actually taken per delivered packet (>= Hamming distance;
  /// the excess counts deflections).
  [[nodiscard]] const Summary& hops() const noexcept { return stats_.hops(); }

  /// Fraction of transmissions that were deflections (non-productive).
  [[nodiscard]] double deflection_fraction() const noexcept {
    const double total = static_cast<double>(productive_ + deflected_);
    return total == 0.0 ? 0.0 : static_cast<double>(deflected_) / total;
  }

  /// Packets waiting in injection queues at the end of the run.
  [[nodiscard]] std::uint64_t injection_backlog() const noexcept { return backlog_; }

  [[nodiscard]] std::uint64_t deliveries_in_window() const noexcept {
    return stats_.deliveries_in_window();
  }

  /// Deliveries per slot over the measurement window.
  [[nodiscard]] double throughput() const noexcept { return stats_.throughput(); }

 private:
  struct Pkt {
    NodeId dest;
    double gen_time;
    std::uint16_t hops;
  };

  DeflectionConfig config_;
  Hypercube cube_{1};  ///< placeholder; reset() installs the real topology
  Rng rng_;

  std::vector<std::vector<Pkt>> resident_;           // packets at each node
  std::vector<std::deque<Pkt>> injection_;           // waiting to be admitted

  KernelStats stats_;
  std::uint64_t productive_ = 0;
  std::uint64_t deflected_ = 0;
  std::uint64_t backlog_ = 0;
};

class SchemeRegistry;

/// core/registry.hpp hookup: registers "deflection" ([GrH89] hot-potato
/// comparator; window interpreted in slots) with extra metric
/// deflection_fraction.
void register_deflection_scheme(SchemeRegistry& registry);

}  // namespace routesim
