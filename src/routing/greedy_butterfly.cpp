#include "routing/greedy_butterfly.hpp"

#include "core/registry.hpp"

#include <cmath>
#include <utility>

#include "util/assert.hpp"
#include "util/distributions.hpp"
#include "workload/permutation.hpp"

namespace routesim {

GreedyButterflySim::GreedyButterflySim(GreedyButterflyConfig config)
    : config_(std::move(config)), bfly_(config_.d) {
  configure_kernel();
}

void GreedyButterflySim::reset(GreedyButterflyConfig config) {
  config_ = std::move(config);
  bfly_ = Butterfly(config_.d);
  configure_kernel();
}

void GreedyButterflySim::configure_kernel() {
  RS_EXPECTS_MSG(config_.destinations.dimension() == config_.d,
                 "destination distribution dimension must match d");
  if (config_.trace == nullptr) {
    RS_EXPECTS(config_.lambda > 0.0);
  } else {
    RS_EXPECTS(config_.trace->dimension == config_.d);
  }
  if (config_.slot > 0.0) {
    const double inv = 1.0 / config_.slot;
    RS_EXPECTS_MSG(config_.slot <= 1.0 && std::abs(inv - std::round(inv)) < 1e-9,
                   "slot length must satisfy: 1/slot integer, slot <= 1");
  }

  fault_active_ = config_.fault_policy != FaultPolicy::kNone;
  RS_EXPECTS_MSG(fault_active_ || (config_.arc_fault_rate == 0.0 &&
                                   config_.node_fault_rate == 0.0 &&
                                   config_.fault_mtbf == 0.0 &&
                                   config_.fault_mttr == 0.0),
                 "fault rates need a fault_policy");
  RS_EXPECTS_MSG(config_.fault_policy == FaultPolicy::kNone ||
                     config_.fault_policy == FaultPolicy::kDrop ||
                     config_.fault_policy == FaultPolicy::kTwinDetour,
                 "the butterfly supports fault policies drop and twin_detour");

  PacketKernelConfig kernel;
  kernel.num_arcs = bfly_.num_arcs();
  kernel.seed = config_.seed;
  kernel.stream_salt = 0xBF17;
  if (config_.fixed_destinations != nullptr) {
    RS_EXPECTS_MSG(config_.fixed_destinations->size() == bfly_.rows(),
                   "fixed-destination table must have 2^d entries");
  }
  kernel.birth_rate = config_.lambda * static_cast<double>(bfly_.rows());
  kernel.slot = config_.slot;
  kernel.trace = config_.trace;
  kernel.fixed_destinations = config_.fixed_destinations;
  if (config_.trace == nullptr) {
    kernel.expected_packets =
        static_cast<std::size_t>(kernel.birth_rate * config_.d) + 64;
  }
  if (config_.track_level_occupancy) {
    kernel.stats.occupancy_trackers = static_cast<std::size_t>(config_.d);
  }
  if (config_.track_delay_histogram) {
    enable_delay_tail_tracking(kernel.stats, config_.d);
  }
  if (fault_active_) {
    fault_model_.configure(
        make_fault_model_config(config_, bfly_.num_arcs(),
                                static_cast<std::uint32_t>(bfly_.num_nodes())),
        [this](std::uint32_t node, std::vector<BflyArcId>& out) {
          bfly_.append_incident_arcs(node, out);
        });
    kernel.fault_model = &fault_model_;
  }
  kernel_.configure(kernel);
}

void GreedyButterflySim::inject(double now, NodeId origin_row, NodeId dest_row) {
  kernel_.count_arrival(now);
  const std::uint32_t pkt = kernel_.allocate_packet();
  kernel_.packet(pkt) = Pkt{origin_row, dest_row, now, 0, 1};
  if (fault_active_ &&
      fault_model_.is_node_faulty(bfly_.node_index(origin_row, 1))) {
    // A dead entry node offers no deliverable traffic; count its load as
    // fault-dropped so the delivery ratio reflects the offered load.
    kernel_.drop_faulty(now, pkt);
    return;
  }
  // Every packet crosses exactly d arcs (one per level), even when the rows
  // agree everywhere (all-straight path): the butterfly is a crossbar, and
  // "delivery" means reaching level d+1.
  enqueue(now, pkt);
}

void GreedyButterflySim::on_spawn(double now) {
  const auto [origin, dest] =
      kernel_.sample_spawn(bfly_.rows(), config_.destinations);
  inject(now, origin, dest);
}

void GreedyButterflySim::on_traced(double now, NodeId origin_row, NodeId dest_row) {
  inject(now, origin_row, dest_row);
}

void GreedyButterflySim::enqueue(double now, std::uint32_t pkt) {
  Pkt& packet = kernel_.packet(pkt);
  const int level = packet.level;
  const auto kind = has_dimension(packet.row ^ packet.dest_row, level)
                        ? Butterfly::ArcKind::kVertical
                        : Butterfly::ArcKind::kStraight;
  BflyArcId arc = bfly_.arc_index(packet.row, level, kind);
  if (fault_active_ && kernel_.arc_faulty(arc)) {
    if (config_.fault_policy == FaultPolicy::kDrop) {
      kernel_.drop_faulty(now, pkt);
      return;
    }
    // kTwinDetour: cross the level on its other arc.  The row bit of this
    // level then stays wrong forever (each level is crossed exactly once),
    // so the packet exits misrouted — on_arc_done counts it as a fault
    // drop at level d+1.
    const auto twin = kind == Butterfly::ArcKind::kStraight
                          ? Butterfly::ArcKind::kVertical
                          : Butterfly::ArcKind::kStraight;
    arc = bfly_.arc_index(packet.row, level, twin);
    if (kernel_.arc_faulty(arc)) {
      kernel_.drop_faulty(now, pkt);
      return;
    }
  }
  kernel_.enqueue(now, arc, pkt, /*external=*/false,
                  static_cast<std::size_t>(level - 1));
}

void GreedyButterflySim::on_arc_done(double now, BflyArcId arc) {
  const int level = bfly_.arc_level(arc);
  const std::uint32_t pkt =
      kernel_.finish_arc(now, arc, static_cast<std::size_t>(level - 1));

  Pkt& packet = kernel_.packet(pkt);
  if (bfly_.arc_kind(arc) == Butterfly::ArcKind::kVertical) {
    packet.row = flip_dimension(packet.row, level);
    ++packet.vertical_count;
  }
  if (level == config_.d) {
    if (fault_active_ && packet.row != packet.dest_row) {
      // A twin detour misrouted the packet; it exits at the wrong row.
      kernel_.drop_faulty(now, pkt);
      return;
    }
    RS_DASSERT(packet.row == packet.dest_row);
    // Every delivered packet crossed exactly d arcs (the unique-path
    // property), so its stretch is identically 1.
    kernel_.deliver(now, pkt, packet.gen_time,
                    static_cast<double>(packet.vertical_count), 1.0);
    return;
  }
  packet.level = static_cast<std::uint16_t>(level + 1);
  enqueue(now, pkt);
}

void GreedyButterflySim::run(double warmup, double horizon) {
  kernel_.drive(*this, warmup, horizon);
}

void register_butterfly_greedy_scheme(SchemeRegistry& registry) {
  registry.add(
      {"butterfly_greedy",
       "greedy routing on the d-dimensional butterfly (§4; Props. 14/17)",
       [](const Scenario& s) {
         CompiledScenario compiled;
         // Validated here so a bad workload, permutation or fault
         // combination fails at compile time, not inside a replication
         // worker thread.
         const auto perm = s.shared_permutation_table();
         const Window window = s.resolved_window();
         const FaultPolicy fault_policy = s.resolved_fault_policy(
             {FaultPolicy::kDrop, FaultPolicy::kTwinDetour});
         compiled.replicate = [s, window, fault_policy, perm,
                               dist = s.make_destinations()](
                                  std::uint64_t seed, int) {
           GreedyButterflyConfig config;
           config.d = s.d;
           config.lambda = s.lambda;
           config.destinations = dist;
           config.seed = seed;
           config.slot = s.tau;
           config.fixed_destinations = perm ? perm.get() : nullptr;
           // Permutation runs track per-level occupancy for the max_queue
           // extra (the congestion collapse is visible in queue peaks).
           config.track_level_occupancy = perm != nullptr;
           // Tail metrics (delay_p50/p99) come from the delay histogram.
           config.track_delay_histogram = true;
           if (fault_policy != FaultPolicy::kNone) {
             config.fault_policy = fault_policy;
             config.arc_fault_rate = s.fault_rate;
             config.node_fault_rate = s.node_fault_rate;
             config.fault_mtbf = s.fault_mtbf;
             config.fault_mttr = s.fault_mttr;
           }
           // Thread-local so the cached sim's trace pointer stays valid for
           // the sim's whole lifetime (and the buffers are reused per rep).
           thread_local PacketTrace trace;
           if (s.workload == "trace") {
             trace = generate_butterfly_trace(s.d, s.lambda, config.destinations,
                                              window.horizon, seed);
             config.trace = &trace;
           }
           GreedyButterflySim& sim =
               reusable_sim<GreedyButterflySim>(std::move(config));
           sim.run(window.warmup, window.horizon);
           const KernelStats& stats = sim.kernel_stats();
           std::vector<double> metrics{
               sim.delay().mean(),          sim.time_avg_population(),
               sim.throughput(),            sim.vertical_hops().mean(),
               sim.little_check().relative_error(), sim.final_population(),
               stats.delivery_ratio(),      stats.mean_stretch(),
               stats.delay_quantile(0.5),   stats.delay_quantile(0.99),
               static_cast<double>(stats.fault_drops_in_window()),
               static_cast<double>(stats.drops_in_window())};
           if (perm) metrics.push_back(stats.max_occupancy());
           return metrics;
         };
         compiled.extra_metrics = {"delivery_ratio", "mean_stretch",
                                   "delay_p50",      "delay_p99",
                                   "fault_drops",    "buffer_drops"};
         if (perm) compiled.extra_metrics.emplace_back("max_queue");
         // Unstable points (rho >= 1) run fine — only the bracket is gone.
         // Faulty, general-law and permutation scenarios have no
         // closed-form bracket.
         if (s.workload != "general" && s.workload != "permutation" &&
             !s.faults_active()) {
           const bounds::ButterflyParams params{s.d, s.lambda, s.effective_p()};
           if (bounds::bfly_load_factor(params) < 1.0) {
             compiled.has_bounds = true;
             compiled.lower_bound =
                 bounds::bfly_universal_delay_lower_bound(params);
             compiled.upper_bound = bounds::bfly_greedy_delay_upper_bound(params);
           }
         }
         return compiled;
       },
       [](const Scenario& s) {
         if (s.workload == "permutation") {
           // Exact: every source row emits rate lambda down one fixed
           // path, so the heaviest arc carries lambda * max_load.
           const auto table = s.permutation_table();
           return s.lambda *
                  static_cast<double>(
                      butterfly_greedy_congestion(s.d, table).max_load);
         }
         return bounds::bfly_load_factor({s.d, s.lambda, s.effective_p()});
       }});
}

}  // namespace routesim
