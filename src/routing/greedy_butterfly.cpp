#include "routing/greedy_butterfly.hpp"

#include "core/registry.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/distributions.hpp"

namespace routesim {

GreedyButterflySim::GreedyButterflySim(GreedyButterflyConfig config)
    : config_(std::move(config)),
      bfly_(config_.d),
      rng_(derive_stream(config_.seed, 0xBF17)) {
  RS_EXPECTS_MSG(config_.destinations.dimension() == config_.d,
                 "destination distribution dimension must match d");
  if (config_.trace == nullptr) {
    RS_EXPECTS(config_.lambda > 0.0);
  } else {
    RS_EXPECTS(config_.trace->dimension == config_.d);
  }
  if (config_.slot > 0.0) {
    const double inv = 1.0 / config_.slot;
    RS_EXPECTS_MSG(config_.slot <= 1.0 && std::abs(inv - std::round(inv)) < 1e-9,
                   "slot length must satisfy: 1/slot integer, slot <= 1");
  }
  arc_queue_.resize(bfly_.num_arcs());
  arc_counters_.resize(bfly_.num_arcs());
  if (config_.track_level_occupancy) {
    level_occupancy_.resize(static_cast<std::size_t>(config_.d));
    level_mean_occupancy_.resize(static_cast<std::size_t>(config_.d), 0.0);
  }
}

std::uint32_t GreedyButterflySim::allocate_packet(double gen_time, NodeId origin,
                                                  NodeId dest) {
  std::uint32_t id;
  if (!free_packets_.empty()) {
    id = free_packets_.back();
    free_packets_.pop_back();
  } else {
    id = static_cast<std::uint32_t>(packets_.size());
    packets_.emplace_back();
  }
  packets_[id] = Pkt{origin, dest, gen_time, 0, 1};
  return id;
}

void GreedyButterflySim::inject(double now, NodeId origin_row, NodeId dest_row) {
  if (now >= warmup_) ++arrivals_window_;
  population_.add(now, +1.0);
  const std::uint32_t pkt = allocate_packet(now, origin_row, dest_row);
  // Every packet crosses exactly d arcs (one per level), even when the rows
  // agree everywhere (all-straight path): the butterfly is a crossbar, and
  // "delivery" means reaching level d+1.
  enqueue(now, pkt);
}

void GreedyButterflySim::enqueue(double now, std::uint32_t pkt) {
  Pkt& packet = packets_[pkt];
  const int level = packet.level;
  const auto kind = has_dimension(packet.row ^ packet.dest_row, level)
                        ? Butterfly::ArcKind::kVertical
                        : Butterfly::ArcKind::kStraight;
  const BflyArcId arc = bfly_.arc_index(packet.row, level, kind);
  if (now >= warmup_) ++arc_counters_[arc].arrivals;
  if (config_.track_level_occupancy) {
    level_occupancy_[static_cast<std::size_t>(level - 1)].add(now, +1.0);
  }
  auto& queue = arc_queue_[arc];
  queue.push_back(pkt);
  if (queue.size() == 1) {
    events_.push(now + 1.0, Ev{EventKind::kArcDone, arc});
  }
}

void GreedyButterflySim::on_arc_done(double now, BflyArcId arc) {
  auto& queue = arc_queue_[arc];
  RS_DASSERT(!queue.empty());
  const std::uint32_t pkt = queue.front();
  queue.pop_front();
  if (!queue.empty()) {
    events_.push(now + 1.0, Ev{EventKind::kArcDone, arc});
  }
  const int level = bfly_.arc_level(arc);
  if (config_.track_level_occupancy) {
    level_occupancy_[static_cast<std::size_t>(level - 1)].add(now, -1.0);
  }

  Pkt& packet = packets_[pkt];
  if (bfly_.arc_kind(arc) == Butterfly::ArcKind::kVertical) {
    packet.row = flip_dimension(packet.row, level);
    ++packet.vertical_count;
  }
  if (level == config_.d) {
    RS_DASSERT(packet.row == packet.dest_row);
    if (packet.gen_time >= warmup_) {
      ++deliveries_window_;
      delay_.add(now - packet.gen_time);
      vertical_hops_.add(static_cast<double>(packet.vertical_count));
    }
    population_.add(now, -1.0);
    free_packets_.push_back(pkt);
    return;
  }
  packet.level = static_cast<std::uint16_t>(level + 1);
  enqueue(now, pkt);
}

void GreedyButterflySim::run(double warmup, double horizon) {
  RS_EXPECTS(warmup >= 0.0 && warmup <= horizon);
  warmup_ = warmup;
  window_ = horizon - warmup;

  if (config_.trace != nullptr) {
    trace_pos_ = 0;
    if (!config_.trace->packets.empty()) {
      events_.push(config_.trace->packets.front().time, Ev{EventKind::kBirth, 0});
    }
  } else if (config_.slot > 0.0) {
    events_.push(0.0, Ev{EventKind::kSlot, 0});
  } else {
    const double total_rate = config_.lambda * static_cast<double>(bfly_.rows());
    events_.push(sample_exponential(rng_, total_rate), Ev{EventKind::kBirth, 0});
  }

  bool stats_reset = warmup == 0.0;
  while (!events_.empty() && events_.top().time <= horizon) {
    const auto event = events_.pop();
    const double t = event.time;
    if (!stats_reset && t >= warmup) {
      population_.reset(warmup);
      for (auto& occ : level_occupancy_) occ.reset(warmup);
      stats_reset = true;
    }

    switch (event.payload.kind) {
      case EventKind::kBirth: {
        if (config_.trace != nullptr) {
          const auto& traced = config_.trace->packets[trace_pos_++];
          inject(t, traced.origin, traced.destination);
          if (trace_pos_ < config_.trace->packets.size()) {
            events_.push(config_.trace->packets[trace_pos_].time,
                         Ev{EventKind::kBirth, 0});
          }
        } else {
          const auto origin = static_cast<NodeId>(rng_.uniform_below(bfly_.rows()));
          inject(t, origin, config_.destinations.sample(rng_, origin));
          const double total_rate = config_.lambda * static_cast<double>(bfly_.rows());
          events_.push(t + sample_exponential(rng_, total_rate),
                       Ev{EventKind::kBirth, 0});
        }
        break;
      }
      case EventKind::kSlot: {
        const double batch_mean =
            config_.lambda * static_cast<double>(bfly_.rows()) * config_.slot;
        const std::uint64_t batch = sample_poisson(rng_, batch_mean);
        for (std::uint64_t i = 0; i < batch; ++i) {
          const auto origin = static_cast<NodeId>(rng_.uniform_below(bfly_.rows()));
          inject(t, origin, config_.destinations.sample(rng_, origin));
        }
        events_.push(t + config_.slot, Ev{EventKind::kSlot, 0});
        break;
      }
      case EventKind::kArcDone:
        on_arc_done(t, event.payload.arc);
        break;
    }
  }

  if (!stats_reset) population_.reset(warmup);
  time_avg_population_ = population_.mean(horizon);
  final_population_ = population_.value();
  throughput_ = window_ > 0.0 ? static_cast<double>(deliveries_window_) / window_ : 0.0;
  if (config_.track_level_occupancy) {
    for (std::size_t level = 0; level < level_occupancy_.size(); ++level) {
      level_mean_occupancy_[level] = level_occupancy_[level].mean(horizon);
    }
  }
}

LittleCheck GreedyButterflySim::little_check() const noexcept {
  LittleCheck check;
  check.time_avg_population = time_avg_population_;
  check.arrival_rate =
      window_ > 0.0 ? static_cast<double>(arrivals_window_) / window_ : 0.0;
  check.mean_sojourn = delay_.mean();
  return check;
}

void register_butterfly_greedy_scheme(SchemeRegistry& registry) {
  registry.add(
      {"butterfly_greedy",
       "greedy routing on the d-dimensional butterfly (§4; Props. 14/17)",
       [](const Scenario& s) {
         CompiledScenario compiled;
         const Window window = s.resolved_window();
         // Built here so a bad workload fails at compile time, not inside a
         // replication worker thread.
         compiled.replicate = [s, window, dist = s.make_destinations()](
                                  std::uint64_t seed, int) {
           GreedyButterflyConfig config;
           config.d = s.d;
           config.lambda = s.lambda;
           config.destinations = dist;
           config.seed = seed;
           config.slot = s.tau;
           PacketTrace trace;
           if (s.workload == "trace") {
             trace = generate_butterfly_trace(s.d, s.lambda, config.destinations,
                                              window.horizon, seed);
             config.trace = &trace;
           }
           GreedyButterflySim sim(config);
           sim.run(window.warmup, window.horizon);
           return std::vector<double>{
               sim.delay().mean(),          sim.time_avg_population(),
               sim.throughput(),            sim.vertical_hops().mean(),
               sim.little_check().relative_error(), sim.final_population()};
         };
         // Unstable points (rho >= 1) run fine — only the bracket is gone.
         if (s.workload != "general") {
           const bounds::ButterflyParams params{s.d, s.lambda, s.effective_p()};
           if (bounds::bfly_load_factor(params) < 1.0) {
             compiled.has_bounds = true;
             compiled.lower_bound =
                 bounds::bfly_universal_delay_lower_bound(params);
             compiled.upper_bound = bounds::bfly_greedy_delay_upper_bound(params);
           }
         }
         return compiled;
       },
       [](const Scenario& s) {
         return bounds::bfly_load_factor({s.d, s.lambda, s.effective_p()});
       }});
}

}  // namespace routesim
