#include "routing/greedy_butterfly.hpp"

#include "core/registry.hpp"

#include <cmath>
#include <utility>

#include "util/assert.hpp"
#include "util/distributions.hpp"

namespace routesim {

GreedyButterflySim::GreedyButterflySim(GreedyButterflyConfig config)
    : config_(std::move(config)), bfly_(config_.d) {
  configure_kernel();
}

void GreedyButterflySim::reset(GreedyButterflyConfig config) {
  config_ = std::move(config);
  bfly_ = Butterfly(config_.d);
  configure_kernel();
}

void GreedyButterflySim::configure_kernel() {
  RS_EXPECTS_MSG(config_.destinations.dimension() == config_.d,
                 "destination distribution dimension must match d");
  if (config_.trace == nullptr) {
    RS_EXPECTS(config_.lambda > 0.0);
  } else {
    RS_EXPECTS(config_.trace->dimension == config_.d);
  }
  if (config_.slot > 0.0) {
    const double inv = 1.0 / config_.slot;
    RS_EXPECTS_MSG(config_.slot <= 1.0 && std::abs(inv - std::round(inv)) < 1e-9,
                   "slot length must satisfy: 1/slot integer, slot <= 1");
  }

  PacketKernelConfig kernel;
  kernel.num_arcs = bfly_.num_arcs();
  kernel.seed = config_.seed;
  kernel.stream_salt = 0xBF17;
  kernel.birth_rate = config_.lambda * static_cast<double>(bfly_.rows());
  kernel.slot = config_.slot;
  kernel.trace = config_.trace;
  if (config_.trace == nullptr) {
    kernel.expected_packets =
        static_cast<std::size_t>(kernel.birth_rate * config_.d) + 64;
  }
  if (config_.track_level_occupancy) {
    kernel.stats.occupancy_trackers = static_cast<std::size_t>(config_.d);
  }
  kernel_.configure(kernel);
}

void GreedyButterflySim::inject(double now, NodeId origin_row, NodeId dest_row) {
  kernel_.count_arrival(now);
  const std::uint32_t pkt = kernel_.allocate_packet();
  kernel_.packet(pkt) = Pkt{origin_row, dest_row, now, 0, 1};
  // Every packet crosses exactly d arcs (one per level), even when the rows
  // agree everywhere (all-straight path): the butterfly is a crossbar, and
  // "delivery" means reaching level d+1.
  enqueue(now, pkt);
}

void GreedyButterflySim::on_spawn(double now) {
  const auto origin = static_cast<NodeId>(kernel_.rng().uniform_below(bfly_.rows()));
  inject(now, origin, config_.destinations.sample(kernel_.rng(), origin));
}

void GreedyButterflySim::on_traced(double now, NodeId origin_row, NodeId dest_row) {
  inject(now, origin_row, dest_row);
}

void GreedyButterflySim::enqueue(double now, std::uint32_t pkt) {
  Pkt& packet = kernel_.packet(pkt);
  const int level = packet.level;
  const auto kind = has_dimension(packet.row ^ packet.dest_row, level)
                        ? Butterfly::ArcKind::kVertical
                        : Butterfly::ArcKind::kStraight;
  const BflyArcId arc = bfly_.arc_index(packet.row, level, kind);
  kernel_.enqueue(now, arc, pkt, /*external=*/false,
                  static_cast<std::size_t>(level - 1));
}

void GreedyButterflySim::on_arc_done(double now, BflyArcId arc) {
  const int level = bfly_.arc_level(arc);
  const std::uint32_t pkt =
      kernel_.finish_arc(now, arc, static_cast<std::size_t>(level - 1));

  Pkt& packet = kernel_.packet(pkt);
  if (bfly_.arc_kind(arc) == Butterfly::ArcKind::kVertical) {
    packet.row = flip_dimension(packet.row, level);
    ++packet.vertical_count;
  }
  if (level == config_.d) {
    RS_DASSERT(packet.row == packet.dest_row);
    kernel_.deliver(now, pkt, packet.gen_time,
                    static_cast<double>(packet.vertical_count));
    return;
  }
  packet.level = static_cast<std::uint16_t>(level + 1);
  enqueue(now, pkt);
}

void GreedyButterflySim::run(double warmup, double horizon) {
  kernel_.drive(*this, warmup, horizon);
}

void register_butterfly_greedy_scheme(SchemeRegistry& registry) {
  registry.add(
      {"butterfly_greedy",
       "greedy routing on the d-dimensional butterfly (§4; Props. 14/17)",
       [](const Scenario& s) {
         CompiledScenario compiled;
         const Window window = s.resolved_window();
         // Built here so a bad workload fails at compile time, not inside a
         // replication worker thread.
         compiled.replicate = [s, window, dist = s.make_destinations()](
                                  std::uint64_t seed, int) {
           GreedyButterflyConfig config;
           config.d = s.d;
           config.lambda = s.lambda;
           config.destinations = dist;
           config.seed = seed;
           config.slot = s.tau;
           // Thread-local so the cached sim's trace pointer stays valid for
           // the sim's whole lifetime (and the buffers are reused per rep).
           thread_local PacketTrace trace;
           if (s.workload == "trace") {
             trace = generate_butterfly_trace(s.d, s.lambda, config.destinations,
                                              window.horizon, seed);
             config.trace = &trace;
           }
           GreedyButterflySim& sim =
               reusable_sim<GreedyButterflySim>(std::move(config));
           sim.run(window.warmup, window.horizon);
           return std::vector<double>{
               sim.delay().mean(),          sim.time_avg_population(),
               sim.throughput(),            sim.vertical_hops().mean(),
               sim.little_check().relative_error(), sim.final_population()};
         };
         // Unstable points (rho >= 1) run fine — only the bracket is gone.
         if (s.workload != "general") {
           const bounds::ButterflyParams params{s.d, s.lambda, s.effective_p()};
           if (bounds::bfly_load_factor(params) < 1.0) {
             compiled.has_bounds = true;
             compiled.lower_bound =
                 bounds::bfly_universal_delay_lower_bound(params);
             compiled.upper_bound = bounds::bfly_greedy_delay_upper_bound(params);
           }
         }
         return compiled;
       },
       [](const Scenario& s) {
         return bounds::bfly_load_factor({s.d, s.lambda, s.effective_p()});
       }});
}

}  // namespace routesim
