#include "routing/greedy_butterfly.hpp"

#include "core/registry.hpp"

#include <cmath>
#include <utility>

#include "util/assert.hpp"
#include "util/distributions.hpp"
#include "workload/permutation.hpp"

namespace routesim {

GreedyButterflySim::GreedyButterflySim(GreedyButterflyConfig config)
    : config_(std::move(config)), bfly_(config_.d) {
  configure_kernel();
}

void GreedyButterflySim::reset(GreedyButterflyConfig config) {
  config_ = std::move(config);
  bfly_ = Butterfly(config_.d);
  configure_kernel();
}

void GreedyButterflySim::configure_kernel() {
  RS_EXPECTS_MSG(config_.destinations.dimension() == config_.d,
                 "destination distribution dimension must match d");
  if (config_.trace == nullptr) {
    RS_EXPECTS(config_.lambda > 0.0);
  } else {
    RS_EXPECTS(config_.trace->dimension == config_.d);
  }
  if (config_.slot > 0.0) {
    const double inv = 1.0 / config_.slot;
    RS_EXPECTS_MSG(config_.slot <= 1.0 && std::abs(inv - std::round(inv)) < 1e-9,
                   "slot length must satisfy: 1/slot integer, slot <= 1");
  }

  fault_active_ = config_.fault_policy != FaultPolicy::kNone;
  RS_EXPECTS_MSG(fault_active_ || (config_.arc_fault_rate == 0.0 &&
                                   config_.node_fault_rate == 0.0 &&
                                   config_.fault_mtbf == 0.0 &&
                                   config_.fault_mttr == 0.0),
                 "fault rates need a fault_policy");
  RS_EXPECTS_MSG(config_.fault_policy == FaultPolicy::kNone ||
                     config_.fault_policy == FaultPolicy::kDrop ||
                     config_.fault_policy == FaultPolicy::kTwinDetour,
                 "the butterfly supports fault policies drop and twin_detour");

  PacketKernelConfig kernel;
  kernel.num_arcs = bfly_.num_arcs();
  kernel.seed = config_.seed;
  kernel.stream_salt = 0xBF17;
  if (config_.fixed_destinations != nullptr) {
    RS_EXPECTS_MSG(config_.fixed_destinations->size() == bfly_.rows(),
                   "fixed-destination table must have 2^d entries");
  }
  kernel.birth_rate = config_.lambda * static_cast<double>(bfly_.rows());
  kernel.slot = config_.slot;
  kernel.trace = config_.trace;
  kernel.fixed_destinations = config_.fixed_destinations;
  if (config_.trace == nullptr) {
    kernel.expected_packets =
        static_cast<std::size_t>(kernel.birth_rate * config_.d) + 64;
  }
  if (config_.track_level_occupancy) {
    kernel.stats.occupancy_trackers = static_cast<std::size_t>(config_.d);
  }
  if (config_.track_delay_histogram) {
    enable_delay_tail_tracking(kernel.stats, config_.d);
  }
  if (fault_active_) {
    fault_model_.configure(
        make_fault_model_config(config_, bfly_.num_arcs(),
                                static_cast<std::uint32_t>(bfly_.num_nodes())),
        [this](std::uint32_t node, std::vector<BflyArcId>& out) {
          bfly_.append_incident_arcs(node, out);
        });
    kernel.fault_model = &fault_model_;
  }
  kernel_.configure(kernel);

  if (config_.backend == KernelBackend::kSoaBatch) {
    RS_EXPECTS_MSG(config_.slot > 0.0,
                   "the soa_batch backend needs slotted time (tau > 0)");
    RS_EXPECTS_MSG(config_.trace == nullptr,
                   "the soa_batch backend cannot replay traces");
    RS_EXPECTS_MSG(config_.fault_mtbf == 0.0 && config_.fault_mttr == 0.0,
                   "the soa_batch backend needs a static fault set");
    SlottedBatchContext ctx;
    ctx.num_arcs = bfly_.num_arcs();
    ctx.birth_rate = kernel.birth_rate;
    ctx.slot = config_.slot;
    ctx.expected_packets = kernel.expected_packets;
    ctx.fixed_destinations = config_.fixed_destinations;
    // Borrow the kernel's RNG, stats and counters so every draw and every
    // accumulator update matches the scalar path bit for bit.
    ctx.rng = &kernel_.rng();
    ctx.stats = &kernel_.stats();
    ctx.arc_counters = &kernel_.arc_counters_mutable();
    batch_.configure(ctx);
  }
}

void GreedyButterflySim::inject(double now, NodeId origin_row, NodeId dest_row) {
  kernel_.count_arrival(now);
  const std::uint32_t pkt = kernel_.allocate_packet();
  kernel_.packet(pkt) = Pkt{origin_row, dest_row, now, 0, 1};
  if (fault_active_ &&
      fault_model_.is_node_faulty(bfly_.node_index(origin_row, 1))) {
    // A dead entry node offers no deliverable traffic; count its load as
    // fault-dropped so the delivery ratio reflects the offered load.
    kernel_.drop_faulty(now, pkt);
    return;
  }
  // Every packet crosses exactly d arcs (one per level), even when the rows
  // agree everywhere (all-straight path): the butterfly is a crossbar, and
  // "delivery" means reaching level d+1.
  enqueue(now, pkt);
}

void GreedyButterflySim::on_spawn(double now) {
  const auto [origin, dest] =
      kernel_.sample_spawn(bfly_.rows(), config_.destinations);
  inject(now, origin, dest);
}

void GreedyButterflySim::on_traced(double now, NodeId origin_row, NodeId dest_row) {
  inject(now, origin_row, dest_row);
}

void GreedyButterflySim::enqueue(double now, std::uint32_t pkt) {
  Pkt& packet = kernel_.packet(pkt);
  const int level = packet.level;
  const auto kind = has_dimension(packet.row ^ packet.dest_row, level)
                        ? Butterfly::ArcKind::kVertical
                        : Butterfly::ArcKind::kStraight;
  BflyArcId arc = bfly_.arc_index(packet.row, level, kind);
  if (fault_active_ && kernel_.arc_faulty(arc)) {
    if (config_.fault_policy == FaultPolicy::kDrop) {
      kernel_.drop_faulty(now, pkt);
      return;
    }
    // kTwinDetour: cross the level on its other arc.  The row bit of this
    // level then stays wrong forever (each level is crossed exactly once),
    // so the packet exits misrouted — on_arc_done counts it as a fault
    // drop at level d+1.
    const auto twin = kind == Butterfly::ArcKind::kStraight
                          ? Butterfly::ArcKind::kVertical
                          : Butterfly::ArcKind::kStraight;
    arc = bfly_.arc_index(packet.row, level, twin);
    if (kernel_.arc_faulty(arc)) {
      kernel_.drop_faulty(now, pkt);
      return;
    }
  }
  kernel_.enqueue(now, arc, pkt, /*external=*/false,
                  static_cast<std::size_t>(level - 1));
}

void GreedyButterflySim::on_arc_done(double now, BflyArcId arc) {
  const int level = bfly_.arc_level(arc);
  const std::uint32_t pkt =
      kernel_.finish_arc(now, arc, static_cast<std::size_t>(level - 1));

  Pkt& packet = kernel_.packet(pkt);
  if (bfly_.arc_kind(arc) == Butterfly::ArcKind::kVertical) {
    packet.row = flip_dimension(packet.row, level);
    ++packet.vertical_count;
  }
  if (level == config_.d) {
    if (fault_active_ && packet.row != packet.dest_row) {
      // A twin detour misrouted the packet; it exits at the wrong row.
      kernel_.drop_faulty(now, pkt);
      return;
    }
    RS_DASSERT(packet.row == packet.dest_row);
    // Every delivered packet crossed exactly d arcs (the unique-path
    // property), so its stretch is identically 1.
    kernel_.deliver(now, pkt, packet.gen_time,
                    static_cast<double>(packet.vertical_count), 1.0);
    return;
  }
  packet.level = static_cast<std::uint16_t>(level + 1);
  enqueue(now, pkt);
}

/// The level-by-level butterfly path over the SoA store.  No per-packet
/// level field is needed: the completed arc's id encodes its level, and
/// packets enter at level 1 — so route_batch derives everything from the
/// arc id and the node/dest rows.
struct GreedyButterflySim::BatchPolicy {
  GreedyButterflySim& sim;

  /// Mirror of on_spawn + inject for the batch store.
  void spawn(double now) {
    SlottedBatchDriver& batch = sim.batch_;
    const auto [origin, dest] =
        batch.sample_spawn(sim.bfly_.rows(), sim.config_.destinations);
    batch.count_arrival(now);
    SoaPacketStore& store = batch.store();
    const std::uint32_t pkt = store.allocate();
    store.node[pkt] = origin;
    store.dest[pkt] = dest;
    store.gen_time[pkt] = now;
    store.hops[pkt] = 0;  // vertical arcs crossed
    store.aux[pkt] = 0;   // unused: butterfly stretch is identically 1
    if (sim.fault_active_ &&
        sim.fault_model_.is_node_faulty(sim.bfly_.node_index(origin, 1))) {
      batch.drop_faulty(now, pkt);
      return;
    }
    const std::uint32_t arc = next_arc(origin, dest, 1);
    if (arc == SlottedBatchDriver::kDropFault) {
      batch.drop_faulty(now, pkt);
      return;
    }
    batch.enqueue(now, arc, pkt, /*external=*/false, /*tracker=*/0);
  }

  /// Phase A: cross the completed arc (flip the row on a vertical) and
  /// pick the next level's arc.  The pristine loop is branch-light masked
  /// arithmetic over node/dest/hops — the auto-vectorizable hot path; the
  /// fault loop stays sequential and reuses the twin-detour logic.
  void route_batch(double /*now*/, const std::uint32_t* arcs,
                   const std::uint32_t* pkts, std::uint32_t* next,
                   std::size_t n) {
    SoaPacketStore& store = sim.batch_.store();
    const int d = sim.config_.d;
    const std::uint32_t straight = static_cast<std::uint32_t>(d) << d;
    if (!sim.fault_active_) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t arc = arcs[i];
        const std::uint32_t pkt = pkts[i];
        const std::uint32_t vertical = arc >= straight ? 1u : 0u;
        const std::uint32_t within = arc - vertical * straight;
        const std::uint32_t lvl0 = within >> d;  // completed level - 1
        const std::uint32_t row = store.node[pkt] ^ (vertical << lvl0);
        store.node[pkt] = row;
        store.hops[pkt] = static_cast<std::uint16_t>(store.hops[pkt] + vertical);
        const std::uint32_t vert2 =
            ((row ^ store.dest[pkt]) >> (lvl0 + 1)) & 1u;
        const std::uint32_t advance =
            vert2 * straight + ((lvl0 + 1) << d) + row;
        next[i] = lvl0 + 1 == static_cast<std::uint32_t>(d)
                      ? SlottedBatchDriver::kDeliver
                      : advance;
      }
      return;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t arc = arcs[i];
      const std::uint32_t pkt = pkts[i];
      const int level = sim.bfly_.arc_level(arc);
      if (sim.bfly_.arc_kind(arc) == Butterfly::ArcKind::kVertical) {
        store.node[pkt] = flip_dimension(store.node[pkt], level);
        store.hops[pkt] = static_cast<std::uint16_t>(store.hops[pkt] + 1);
      }
      if (level == d) {
        // A twin detour leaves the packet at the wrong exit row: misrouted.
        next[i] = store.node[pkt] != store.dest[pkt]
                      ? SlottedBatchDriver::kDropFault
                      : SlottedBatchDriver::kDeliver;
        continue;
      }
      next[i] = next_arc(store.node[pkt], store.dest[pkt], level + 1);
    }
  }

  /// Mirror of the scalar enqueue()'s arc choice: the unique-path arc at
  /// `level`, the twin when it is dead under kTwinDetour, kDropFault when
  /// the packet is lost.
  [[nodiscard]] std::uint32_t next_arc(NodeId row, NodeId dest_row,
                                       int level) const {
    const auto kind = has_dimension(row ^ dest_row, level)
                          ? Butterfly::ArcKind::kVertical
                          : Butterfly::ArcKind::kStraight;
    BflyArcId arc = sim.bfly_.arc_index(row, level, kind);
    if (sim.fault_active_ && sim.fault_model_.is_faulty(arc)) {
      if (sim.config_.fault_policy == FaultPolicy::kDrop) {
        return SlottedBatchDriver::kDropFault;
      }
      const auto twin = kind == Butterfly::ArcKind::kStraight
                            ? Butterfly::ArcKind::kVertical
                            : Butterfly::ArcKind::kStraight;
      arc = sim.bfly_.arc_index(row, level, twin);
      if (sim.fault_model_.is_faulty(arc)) {
        return SlottedBatchDriver::kDropFault;
      }
    }
    return arc;
  }

  /// Phase B tail: deliver at the exit level, drop misrouted/faulted
  /// packets, or enqueue at the next level.
  void complete(double now, std::uint32_t pkt, std::uint32_t next) {
    SlottedBatchDriver& batch = sim.batch_;
    SoaPacketStore& store = batch.store();
    if (next == SlottedBatchDriver::kDeliver) {
      batch.deliver(now, pkt, store.gen_time[pkt],
                    static_cast<double>(store.hops[pkt]), 1.0);
      return;
    }
    if (next == SlottedBatchDriver::kDropFault) {
      batch.drop_faulty(now, pkt);
      return;
    }
    batch.enqueue(now, next, pkt, /*external=*/false, level_tracker(next));
  }

  /// Occupancy tracker of an arc: its level - 1 (levels are the butterfly's
  /// tracked unit, as in the scalar finish_arc/enqueue calls).
  [[nodiscard]] std::size_t level_tracker(std::uint32_t arc) const {
    const std::uint32_t straight =
        static_cast<std::uint32_t>(sim.config_.d) << sim.config_.d;
    const std::uint32_t within = arc < straight ? arc : arc - straight;
    return static_cast<std::size_t>(within >> sim.config_.d);
  }

  [[nodiscard]] std::size_t finish_tracker(std::uint32_t arc) const {
    return level_tracker(arc);
  }
};

void GreedyButterflySim::run(double warmup, double horizon) {
  if (config_.backend == KernelBackend::kSoaBatch) {
    BatchPolicy policy{*this};
    batch_.drive(policy, warmup, horizon);
    return;
  }
  kernel_.drive(*this, warmup, horizon);
}

void register_butterfly_greedy_scheme(SchemeRegistry& registry) {
  registry.add(
      {"butterfly_greedy",
       "greedy routing on the d-dimensional butterfly (§4; Props. 14/17)",
       [](const Scenario& s) {
         CompiledScenario compiled;
         // Validated here so a bad workload, permutation or fault
         // combination fails at compile time, not inside a replication
         // worker thread.
         (void)s.resolved_topology({"butterfly"});  // butterfly-native
         const auto perm = s.shared_permutation_table();
         const auto replay = s.shared_trace();
         const Window window = s.resolved_window();
         const FaultPolicy fault_policy = s.resolved_fault_policy(
             {FaultPolicy::kDrop, FaultPolicy::kTwinDetour});
         if (s.storm_rate > 0.0 || s.storm_duration > 0.0) {
           throw ScenarioError(
               "scheme 'butterfly_greedy' does not support fault storms "
               "(clear storm_rate/storm_duration; storms are available on "
               "hypercube_greedy and valiant_mixing)");
         }
         const KernelBackend backend = s.resolved_backend(
             {KernelBackend::kScalar, KernelBackend::kSoaBatch});
         if (backend == KernelBackend::kSoaBatch) {
           if (s.tau <= 0.0) {
             throw ScenarioError(
                 "backend=soa_batch needs slotted time: set tau > 0");
           }
           if (s.workload == "trace") {
             throw ScenarioError(
                 "backend=soa_batch cannot replay traces (use backend=scalar)");
           }
           if (s.fault_mtbf > 0.0 || s.fault_mttr > 0.0) {
             throw ScenarioError(
                 "backend=soa_batch needs a static fault set (clear "
                 "fault_mtbf/fault_mttr or use backend=scalar)");
           }
         }
         compiled.replicate = [s, window, fault_policy, perm, replay, backend,
                               dist = s.make_destinations()](
                                  std::uint64_t seed, int) {
           GreedyButterflyConfig config;
           config.d = s.d;
           config.lambda = s.lambda;
           config.destinations = dist;
           config.seed = seed;
           config.slot = s.tau;
           config.backend = backend;
           config.fixed_destinations = perm ? perm.get() : nullptr;
           // Permutation runs track per-level occupancy for the max_queue
           // extra (the congestion collapse is visible in queue peaks).
           config.track_level_occupancy = perm != nullptr;
           // Tail metrics (delay_p50/p99) come from the delay histogram.
           config.track_delay_histogram = true;
           if (fault_policy != FaultPolicy::kNone) {
             config.fault_policy = fault_policy;
             config.arc_fault_rate = s.fault_rate;
             config.node_fault_rate = s.node_fault_rate;
             config.fault_mtbf = s.fault_mtbf;
             config.fault_mttr = s.fault_mttr;
           }
           // Thread-local so the cached sim's trace pointer stays valid for
           // the sim's whole lifetime (and the buffers are reused per rep).
           thread_local PacketTrace trace;
           if (replay != nullptr) {
             // External trace file: every replication replays the same
             // recorded row stream (the shared_ptr outlives the sims).
             config.trace = replay.get();
           } else if (s.workload == "trace") {
             trace = generate_butterfly_trace(s.d, s.lambda, config.destinations,
                                              window.horizon, seed);
             config.trace = &trace;
           }
           GreedyButterflySim& sim =
               reusable_sim<GreedyButterflySim>(std::move(config));
           sim.run(window.warmup, window.horizon);
           const KernelStats& stats = sim.kernel_stats();
           std::vector<double> metrics{
               sim.delay().mean(),          sim.time_avg_population(),
               sim.throughput(),            sim.vertical_hops().mean(),
               sim.little_check().relative_error(), sim.final_population(),
               stats.delivery_ratio(),      stats.mean_stretch(),
               stats.delay_quantile(0.5),   stats.delay_quantile(0.99),
               static_cast<double>(stats.fault_drops_in_window()),
               static_cast<double>(stats.drops_in_window())};
           if (perm) metrics.push_back(stats.max_occupancy());
           return metrics;
         };
         compiled.extra_metrics = {"delivery_ratio", "mean_stretch",
                                   "delay_p50",      "delay_p99",
                                   "fault_drops",    "buffer_drops"};
         if (perm) compiled.extra_metrics.emplace_back("max_queue");
         // Unstable points (rho >= 1) run fine — only the bracket is gone.
         // Faulty, general-law and permutation scenarios have no
         // closed-form bracket; neither does an external trace_file, whose
         // load the scenario's lambda/p do not describe.
         if (s.workload != "general" && s.workload != "permutation" &&
             !s.faults_active() && replay == nullptr) {
           const bounds::ButterflyParams params{s.d, s.lambda, s.effective_p()};
           if (bounds::bfly_load_factor(params) < 1.0) {
             compiled.has_bounds = true;
             compiled.lower_bound =
                 bounds::bfly_universal_delay_lower_bound(params);
             compiled.upper_bound = bounds::bfly_greedy_delay_upper_bound(params);
           }
         }
         return compiled;
       },
       [](const Scenario& s) {
         if (s.workload == "permutation") {
           // Exact: every source row emits rate lambda down one fixed
           // path, so the heaviest arc carries lambda * max_load.
           const auto table = s.permutation_table();
           return s.lambda *
                  static_cast<double>(
                      butterfly_greedy_congestion(s.d, table).max_load);
         }
         return bounds::bfly_load_factor({s.d, s.lambda, s.effective_p()});
       }});
}

}  // namespace routesim
