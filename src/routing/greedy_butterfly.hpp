#pragma once
/// \file greedy_butterfly.hpp
/// \brief Packet-level simulator of greedy routing on the d-dimensional
///        butterfly (§4), built on the shared packet kernel.
///
/// Packets are generated at the 2^d nodes of level 1 (independent Poisson
/// processes of rate lambda) and destined for a random node of level d+1,
/// with the bit-flip destination law of eq. (1) applied to the rows.  The
/// path of every packet is unique (d arcs, one per level); greedy routing
/// advances packets as fast as possible with FIFO priority per arc.
///
/// The event set, arc queues, arrival process and measurement accounting
/// live in des/packet_kernel.hpp; this class contributes the butterfly's
/// level-by-level path (straight or vertical arc per level).

#include <cstdint>
#include <vector>

#include "des/kernel_backend.hpp"
#include "des/packet_kernel.hpp"
#include "des/slotted_batch.hpp"
#include "stats/little.hpp"
#include "stats/summary.hpp"
#include "topology/butterfly.hpp"
#include "workload/destination.hpp"
#include "workload/trace.hpp"

namespace routesim {

struct GreedyButterflyConfig {
  int d = 4;
  double lambda = 0.1;  ///< generation rate per level-1 node
  DestinationDistribution destinations = DestinationDistribution::uniform(4);
  std::uint64_t seed = 1;
  double slot = 0.0;                  ///< 0 => continuous; > 0 => slotted (§3.4 analogue)
  const PacketTrace* trace = nullptr; ///< replay instead of generating
  /// Per-source fixed destination rows (workload = permutation): entry x
  /// is the destination row of every packet entering at level-1 row x.
  /// Non-owning; 2^d entries; null = sample from `destinations`.
  const std::vector<NodeId>* fixed_destinations = nullptr;
  bool track_level_occupancy = false; ///< time-avg packets stored per level
  /// Collect a delay histogram (bin width 1, range [0, 64*d]) for tails.
  bool track_delay_histogram = false;

  // --- fault injection (src/fault/fault_model.hpp) ----------------------
  /// kNone = pristine path.  kDrop drops packets whose required arc is
  /// dead; kTwinDetour takes the level's other arc instead — the butterfly
  /// has a *unique* path per origin/destination pair, so a detoured packet
  /// exits at the wrong row and is counted as misrouted (a fault drop):
  /// the policy measures what deflection costs in a network with no path
  /// diversity.
  FaultPolicy fault_policy = FaultPolicy::kNone;
  double arc_fault_rate = 0.0;   ///< P[arc statically down]
  double node_fault_rate = 0.0;  ///< P[node down] (kills incident arcs)
  double fault_mtbf = 0.0;       ///< mean link up-time (> 0 with mttr => dynamic)
  double fault_mttr = 0.0;       ///< mean link repair time

  /// Execution engine.  kSoaBatch requires slotted time (slot > 0), no
  /// trace and a static fault set; its results are bit-identical to
  /// kScalar (pinned by tests/test_kernel_parity.cpp).
  KernelBackend backend = KernelBackend::kScalar;
};

class GreedyButterflySim {
 public:
  explicit GreedyButterflySim(GreedyButterflyConfig config);

  /// Reconfigures for another replication, reusing kernel storage.
  void reset(GreedyButterflyConfig config);

  void run(double warmup, double horizon);

  [[nodiscard]] const Summary& delay() const noexcept { return kernel_.stats().delay(); }
  /// Vertical arcs crossed per packet (Hamming distance of rows).
  [[nodiscard]] const Summary& vertical_hops() const noexcept {
    return kernel_.stats().hops();
  }
  [[nodiscard]] double time_avg_population() const noexcept {
    return kernel_.stats().time_avg_population();
  }
  [[nodiscard]] double final_population() const noexcept {
    return kernel_.stats().final_population();
  }
  [[nodiscard]] std::uint64_t deliveries_in_window() const noexcept {
    return kernel_.stats().deliveries_in_window();
  }
  [[nodiscard]] std::uint64_t arrivals_in_window() const noexcept {
    return kernel_.stats().arrivals_in_window();
  }
  [[nodiscard]] double throughput() const noexcept {
    return kernel_.stats().throughput();
  }
  [[nodiscard]] LittleCheck little_check() const noexcept {
    return kernel_.stats().little_check();
  }

  /// Windowed per-arc arrival counters (read total_arrivals; every arrival
  /// at a butterfly arc is counted there), for Proposition 15 checks.
  [[nodiscard]] const std::vector<ArcCounters>& arc_counters() const noexcept {
    return kernel_.arc_counters();
  }

  /// Mean number of packets stored by all nodes of each level 1..d
  /// (packets queued on the level's out-arcs), when tracked.
  [[nodiscard]] const std::vector<double>& level_mean_occupancy() const noexcept {
    return kernel_.stats().occupancy_means();
  }

  [[nodiscard]] const Butterfly& topology() const noexcept { return bfly_; }
  [[nodiscard]] double measurement_window() const noexcept {
    return kernel_.stats().measurement_window();
  }

  /// Packets lost to faults (dead arc, dead node, or misrouted by a twin
  /// detour) within the window.
  [[nodiscard]] std::uint64_t fault_drops_in_window() const noexcept {
    return kernel_.stats().fault_drops_in_window();
  }
  [[nodiscard]] double delivery_ratio() const noexcept {
    return kernel_.stats().delivery_ratio();
  }
  /// The attached fault model (inactive when fault_policy is kNone).
  [[nodiscard]] const FaultModel& fault_model() const noexcept {
    return fault_model_;
  }
  /// The full measurement harvest (delivery ratio, stretch, quantiles, ...).
  [[nodiscard]] const KernelStats& kernel_stats() const noexcept {
    return kernel_.stats();
  }

  // --- kernel hooks (called by PacketKernel::drive) ---

  void on_spawn(double now);
  void on_traced(double now, NodeId origin_row, NodeId dest_row);
  void on_arc_done(double now, BflyArcId arc);

 private:
  struct Pkt {
    NodeId row = 0;
    NodeId dest_row = 0;
    double gen_time = 0.0;
    std::uint16_t vertical_count = 0;
    std::uint16_t level = 1;  ///< level of the next arc to cross
  };

  /// The soa_batch policy (routing/greedy_butterfly.cpp): the level-by-
  /// level path over the SoA store, driven by SlottedBatchDriver against
  /// the kernel's own RNG/stats — bit-identical to the scalar path.
  struct BatchPolicy;

  void configure_kernel();
  void inject(double now, NodeId origin_row, NodeId dest_row);
  void enqueue(double now, std::uint32_t pkt);

  GreedyButterflyConfig config_;
  Butterfly bfly_;
  FaultModel fault_model_;
  bool fault_active_ = false;
  PacketKernel<Pkt> kernel_;
  SlottedBatchDriver batch_;  ///< engaged when backend == kSoaBatch
};

class SchemeRegistry;

/// core/registry.hpp hookup: registers "butterfly_greedy" (§4, Props.
/// 14/17; workloads bit_flip, uniform, trace and permutation — the latter
/// adds a max_queue extra and an exact lambda*max_congestion load factor;
/// fault injection with fault_policy drop | twin_detour, reported through
/// the resilience extras).
void register_butterfly_greedy_scheme(SchemeRegistry& registry);

}  // namespace routesim
