#pragma once
/// \file greedy_butterfly.hpp
/// \brief Packet-level simulator of greedy routing on the d-dimensional
///        butterfly (§4).
///
/// Packets are generated at the 2^d nodes of level 1 (independent Poisson
/// processes of rate lambda) and destined for a random node of level d+1,
/// with the bit-flip destination law of eq. (1) applied to the rows.  The
/// path of every packet is unique (d arcs, one per level); greedy routing
/// advances packets as fast as possible with FIFO priority per arc.

#include <cstdint>
#include <deque>
#include <vector>

#include "des/event_queue.hpp"
#include "stats/little.hpp"
#include "stats/summary.hpp"
#include "stats/timeavg.hpp"
#include "topology/butterfly.hpp"
#include "util/rng.hpp"
#include "workload/destination.hpp"
#include "workload/trace.hpp"

namespace routesim {

struct GreedyButterflyConfig {
  int d = 4;
  double lambda = 0.1;  ///< generation rate per level-1 node
  DestinationDistribution destinations = DestinationDistribution::uniform(4);
  std::uint64_t seed = 1;
  double slot = 0.0;                  ///< 0 => continuous; > 0 => slotted (§3.4 analogue)
  const PacketTrace* trace = nullptr; ///< replay instead of generating
  bool track_level_occupancy = false; ///< time-avg packets stored per level
};

/// Windowed per-arc counters, split by arc kind for Proposition 15 checks.
struct BflyArcCounters {
  std::uint64_t arrivals = 0;
};

class GreedyButterflySim {
 public:
  explicit GreedyButterflySim(GreedyButterflyConfig config);

  void run(double warmup, double horizon);

  [[nodiscard]] const Summary& delay() const noexcept { return delay_; }
  /// Vertical arcs crossed per packet (Hamming distance of rows).
  [[nodiscard]] const Summary& vertical_hops() const noexcept { return vertical_hops_; }
  [[nodiscard]] double time_avg_population() const noexcept { return time_avg_population_; }
  [[nodiscard]] double final_population() const noexcept { return final_population_; }
  [[nodiscard]] std::uint64_t deliveries_in_window() const noexcept { return deliveries_window_; }
  [[nodiscard]] std::uint64_t arrivals_in_window() const noexcept { return arrivals_window_; }
  [[nodiscard]] double throughput() const noexcept { return throughput_; }
  [[nodiscard]] LittleCheck little_check() const noexcept;

  [[nodiscard]] const std::vector<BflyArcCounters>& arc_counters() const noexcept {
    return arc_counters_;
  }

  /// Mean number of packets stored by all nodes of each level 1..d
  /// (packets queued on the level's out-arcs), when tracked.
  [[nodiscard]] const std::vector<double>& level_mean_occupancy() const noexcept {
    return level_mean_occupancy_;
  }

  [[nodiscard]] const Butterfly& topology() const noexcept { return bfly_; }
  [[nodiscard]] double measurement_window() const noexcept { return window_; }

 private:
  enum class EventKind : std::uint8_t { kBirth, kSlot, kArcDone };

  struct Ev {
    EventKind kind{};
    BflyArcId arc = 0;
  };

  struct Pkt {
    NodeId row = 0;
    NodeId dest_row = 0;
    double gen_time = 0.0;
    std::uint16_t vertical_count = 0;
    std::uint16_t level = 1;  ///< level of the next arc to cross
  };

  std::uint32_t allocate_packet(double gen_time, NodeId origin, NodeId dest);
  void inject(double now, NodeId origin_row, NodeId dest_row);
  void enqueue(double now, std::uint32_t pkt);
  void on_arc_done(double now, BflyArcId arc);

  GreedyButterflyConfig config_;
  Butterfly bfly_;
  Rng rng_;

  std::vector<std::deque<std::uint32_t>> arc_queue_;
  std::vector<Pkt> packets_;
  std::vector<std::uint32_t> free_packets_;
  EventQueue<Ev> events_;
  std::size_t trace_pos_ = 0;

  double warmup_ = 0.0;
  double window_ = 0.0;
  Summary delay_;
  Summary vertical_hops_;
  TimeWeighted population_;
  std::vector<BflyArcCounters> arc_counters_;
  std::vector<TimeWeighted> level_occupancy_;
  std::vector<double> level_mean_occupancy_;
  std::uint64_t deliveries_window_ = 0;
  std::uint64_t arrivals_window_ = 0;
  double time_avg_population_ = 0.0;
  double final_population_ = 0.0;
  double throughput_ = 0.0;
};

class SchemeRegistry;

/// core/registry.hpp hookup: registers "butterfly_greedy" (§4, Props.
/// 14/17; workloads bit_flip, uniform and trace).
void register_butterfly_greedy_scheme(SchemeRegistry& registry);

}  // namespace routesim
