#include "routing/greedy_hypercube.hpp"

#include "core/registry.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/distributions.hpp"

namespace routesim {

GreedyHypercubeSim::GreedyHypercubeSim(GreedyHypercubeConfig config)
    : config_(std::move(config)),
      cube_(config_.d),
      rng_(derive_stream(config_.seed, 0xC0BE)) {
  RS_EXPECTS_MSG(config_.destinations.dimension() == config_.d,
                 "destination distribution dimension must match d");
  if (config_.trace == nullptr) {
    RS_EXPECTS(config_.lambda > 0.0);
  } else {
    RS_EXPECTS(config_.trace->dimension == config_.d);
  }
  if (config_.slot > 0.0) {
    const double inv = 1.0 / config_.slot;
    RS_EXPECTS_MSG(config_.slot <= 1.0 && std::abs(inv - std::round(inv)) < 1e-9,
                   "slot length must satisfy: 1/slot integer, slot <= 1 (§3.4)");
  }
  arc_queue_.resize(cube_.num_arcs());
  arc_counters_.resize(cube_.num_arcs());
  if (config_.track_node_occupancy) {
    node_occupancy_.resize(cube_.num_nodes());
    node_mean_occupancy_.resize(cube_.num_nodes(), 0.0);
  }
  if (config_.track_delay_histogram) {
    delay_histogram_.emplace(0.0, 1.0, static_cast<std::size_t>(64) * config_.d);
  }
}

std::uint32_t GreedyHypercubeSim::allocate_packet(double gen_time, NodeId origin,
                                                  NodeId dest) {
  std::uint32_t id;
  if (!free_packets_.empty()) {
    id = free_packets_.back();
    free_packets_.pop_back();
  } else {
    id = static_cast<std::uint32_t>(packets_.size());
    packets_.emplace_back();
  }
  packets_[id] = Pkt{origin, dest, gen_time, 0};
  return id;
}

void GreedyHypercubeSim::node_occupancy_add(double now, NodeId node, double delta) {
  if (!config_.track_node_occupancy) return;
  auto& occ = node_occupancy_[node];
  occ.add(now, delta);
}

void GreedyHypercubeSim::deliver(double now, std::uint32_t pkt) {
  const Pkt& packet = packets_[pkt];
  if (packet.gen_time >= warmup_) {
    ++deliveries_window_;
    const double delay = now - packet.gen_time;
    delay_.add(delay);
    hops_.add(static_cast<double>(packet.hop_count));
    if (delay_histogram_) delay_histogram_->add(delay);
  }
  population_.add(now, -1.0);
  free_packets_.push_back(pkt);
}

void GreedyHypercubeSim::drop(double now, std::uint32_t pkt) {
  if (now >= warmup_) ++drops_window_;
  population_.add(now, -1.0);
  free_packets_.push_back(pkt);
}

void GreedyHypercubeSim::enqueue(double now, ArcId arc, std::uint32_t pkt,
                                 bool external) {
  auto& queue = arc_queue_[arc];
  if (config_.buffer_capacity > 0 && queue.size() >= config_.buffer_capacity) {
    drop(now, pkt);
    return;
  }
  if (now >= warmup_) {
    auto& counters = arc_counters_[arc];
    ++counters.total_arrivals;
    if (external) ++counters.external_arrivals;
  }
  node_occupancy_add(now, cube_.arc_source(arc), +1.0);
  queue.push_back(pkt);
  if (queue.size() == 1) {
    events_.push(now + 1.0, Ev{EventKind::kArcDone, arc});
  }
}

void GreedyHypercubeSim::inject(double now, NodeId origin, NodeId dest) {
  if (now >= warmup_) ++arrivals_window_;
  population_.add(now, +1.0);
  const std::uint32_t pkt = allocate_packet(now, origin, dest);
  if (origin == dest) {
    // A packet that selects its own origin (probability (1-p)^d) needs no
    // transmission at all; it is delivered instantly with delay 0.
    deliver(now, pkt);
    return;
  }
  const int dim = next_dimension(packets_[pkt]);
  enqueue(now, cube_.arc_index(origin, dim), pkt, /*external=*/true);
}

int GreedyHypercubeSim::next_dimension(const Pkt& packet) {
  const NodeId remaining = packet.cur ^ packet.dest;
  RS_DASSERT(remaining != 0);
  switch (config_.dimension_order) {
    case DimensionOrder::kIncreasing:
      return lowest_dimension(remaining);
    case DimensionOrder::kDecreasing:
      return highest_dimension(remaining);
    case DimensionOrder::kRandomPerHop: {
      const int count = std::popcount(remaining);
      return nth_dimension(remaining,
                           static_cast<int>(rng_.uniform_below(
                               static_cast<std::uint64_t>(count))));
    }
  }
  return lowest_dimension(remaining);  // unreachable
}

void GreedyHypercubeSim::on_arc_done(double now, ArcId arc) {
  auto& queue = arc_queue_[arc];
  RS_DASSERT(!queue.empty());
  const std::uint32_t pkt = queue.front();
  queue.pop_front();
  if (!queue.empty()) {
    // Select the next packet to serve and rotate it to the head.  The head
    // is always the packet in service; the rest of the deque stays in
    // arrival order, so LIFO really serves the most recent arrival and
    // random picks uniformly among the waiting packets.
    if (config_.arc_service_order == ArcServiceOrder::kLifo) {
      const std::uint32_t chosen = queue.back();
      queue.pop_back();
      queue.push_front(chosen);
    } else if (config_.arc_service_order == ArcServiceOrder::kRandom) {
      const auto pick = static_cast<std::size_t>(rng_.uniform_below(queue.size()));
      const std::uint32_t chosen = queue[pick];
      queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(pick));
      queue.push_front(chosen);
    }
    events_.push(now + 1.0, Ev{EventKind::kArcDone, arc});
  }
  node_occupancy_add(now, cube_.arc_source(arc), -1.0);

  Pkt& packet = packets_[pkt];
  const int dim = cube_.arc_dimension(arc);
  packet.cur = flip_dimension(packet.cur, dim);
  ++packet.hop_count;
  if (packet.cur == packet.dest) {
    deliver(now, pkt);
    return;
  }
  // Under the paper's increasing-index order the next required dimension is
  // necessarily above `dim` (the levelled property B); the ablation orders
  // may revisit lower dimensions.
  const int next_dim = next_dimension(packet);
  RS_DASSERT(config_.dimension_order != DimensionOrder::kIncreasing ||
             next_dim > dim);
  enqueue(now, cube_.arc_index(packet.cur, next_dim), pkt, /*external=*/false);
}

void GreedyHypercubeSim::run(double warmup, double horizon) {
  RS_EXPECTS(warmup >= 0.0 && warmup <= horizon);
  warmup_ = warmup;
  window_ = horizon - warmup;

  // Seed the traffic process.
  if (config_.trace != nullptr) {
    trace_pos_ = 0;
    if (!config_.trace->packets.empty()) {
      events_.push(config_.trace->packets.front().time, Ev{EventKind::kBirth, 0});
    }
  } else if (config_.slot > 0.0) {
    events_.push(0.0, Ev{EventKind::kSlot, 0});
  } else {
    next_birth_time_ = sample_exponential(rng_, config_.lambda *
                                                    static_cast<double>(cube_.num_nodes()));
    events_.push(next_birth_time_, Ev{EventKind::kBirth, 0});
  }

  bool stats_reset = warmup == 0.0;
  while (!events_.empty() && events_.top().time <= horizon) {
    const auto event = events_.pop();
    const double t = event.time;
    if (!stats_reset && t >= warmup) {
      population_.reset(warmup);
      for (auto& occ : node_occupancy_) occ.reset(warmup);
      stats_reset = true;
    }

    switch (event.payload.kind) {
      case EventKind::kBirth: {
        if (config_.trace != nullptr) {
          const auto& traced = config_.trace->packets[trace_pos_++];
          inject(t, traced.origin, traced.destination);
          if (trace_pos_ < config_.trace->packets.size()) {
            events_.push(config_.trace->packets[trace_pos_].time,
                         Ev{EventKind::kBirth, 0});
          }
        } else {
          const auto origin = static_cast<NodeId>(rng_.uniform_below(cube_.num_nodes()));
          const NodeId dest = config_.destinations.sample(rng_, origin);
          inject(t, origin, dest);
          next_birth_time_ =
              t + sample_exponential(rng_, config_.lambda *
                                               static_cast<double>(cube_.num_nodes()));
          events_.push(next_birth_time_, Ev{EventKind::kBirth, 0});
        }
        break;
      }
      case EventKind::kSlot: {
        const auto batch_mean = config_.lambda *
                                static_cast<double>(cube_.num_nodes()) * config_.slot;
        const std::uint64_t batch = sample_poisson(rng_, batch_mean);
        for (std::uint64_t i = 0; i < batch; ++i) {
          const auto origin = static_cast<NodeId>(rng_.uniform_below(cube_.num_nodes()));
          inject(t, origin, config_.destinations.sample(rng_, origin));
        }
        events_.push(t + config_.slot, Ev{EventKind::kSlot, 0});
        break;
      }
      case EventKind::kArcDone:
        on_arc_done(t, event.payload.arc);
        break;
    }
  }

  if (!stats_reset) population_.reset(warmup);
  time_avg_population_ = population_.mean(horizon);
  peak_population_ = population_.peak();
  final_population_ = population_.value();
  throughput_ = window_ > 0.0 ? static_cast<double>(deliveries_window_) / window_ : 0.0;
  if (config_.track_node_occupancy) {
    for (std::uint32_t node = 0; node < cube_.num_nodes(); ++node) {
      node_mean_occupancy_[node] = node_occupancy_[node].mean(horizon);
      max_node_occupancy_ = std::max(max_node_occupancy_, node_occupancy_[node].peak());
    }
  }
}

LittleCheck GreedyHypercubeSim::little_check() const noexcept {
  LittleCheck check;
  check.time_avg_population = time_avg_population_;
  check.arrival_rate = window_ > 0.0
                           ? static_cast<double>(arrivals_window_) / window_
                           : 0.0;
  check.mean_sojourn = delay_.mean();
  return check;
}

void register_hypercube_greedy_scheme(SchemeRegistry& registry) {
  registry.add(
      {"hypercube_greedy",
       "greedy dimension-order routing on the d-cube (§3; Props. 12/13, "
       "slotted §3.4 when tau > 0)",
       [](const Scenario& s) {
         CompiledScenario compiled;
         const Window window = s.resolved_window();
         // Built here so a bad workload fails at compile time, not inside a
         // replication worker thread.
         compiled.replicate = [s, window, dist = s.make_destinations()](
                                  std::uint64_t seed, int) {
           GreedyHypercubeConfig config;
           config.d = s.d;
           config.lambda = s.lambda;
           config.destinations = dist;
           config.seed = seed;
           config.slot = s.tau;
           config.buffer_capacity = s.buffer_capacity;
           PacketTrace trace;
           if (s.workload == "trace") {
             trace = generate_hypercube_trace(s.d, s.lambda, config.destinations,
                                              window.horizon, seed);
             config.trace = &trace;
           }
           GreedyHypercubeSim sim(config);
           sim.run(window.warmup, window.horizon);
           return std::vector<double>{
               sim.delay().mean(),          sim.time_avg_population(),
               sim.throughput(),            sim.hops().mean(),
               sim.little_check().relative_error(), sim.final_population()};
         };
         // Unstable points (rho >= 1) run fine — only the bracket is gone.
         if (s.workload != "general") {
           const bounds::HypercubeParams params{s.d, s.lambda, s.effective_p()};
           if (bounds::load_factor(params) < 1.0) {
             compiled.has_bounds = true;
             compiled.lower_bound = bounds::greedy_delay_lower_bound(params);
             compiled.upper_bound =
                 s.tau > 0.0 ? bounds::slotted_delay_upper_bound(params, s.tau)
                             : bounds::greedy_delay_upper_bound(params);
           }
         }
         return compiled;
       }});
}

}  // namespace routesim
