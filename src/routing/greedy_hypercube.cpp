#include "routing/greedy_hypercube.hpp"

#include "core/registry.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>

#include "fault/fault_routing.hpp"
#include "routing/topology_greedy.hpp"
#include "util/assert.hpp"
#include "util/distributions.hpp"

namespace routesim {

GreedyHypercubeSim::GreedyHypercubeSim(GreedyHypercubeConfig config)
    : config_(std::move(config)), cube_(config_.d) {
  configure_kernel();
}

void GreedyHypercubeSim::reset(GreedyHypercubeConfig config) {
  config_ = std::move(config);
  cube_ = Hypercube(config_.d);
  configure_kernel();
}

void GreedyHypercubeSim::configure_kernel() {
  RS_EXPECTS_MSG(config_.destinations.dimension() == config_.d,
                 "destination distribution dimension must match d");
  if (config_.trace == nullptr) {
    RS_EXPECTS(config_.lambda > 0.0);
  } else {
    RS_EXPECTS(config_.trace->dimension == config_.d);
  }
  if (config_.slot > 0.0) {
    const double inv = 1.0 / config_.slot;
    RS_EXPECTS_MSG(config_.slot <= 1.0 && std::abs(inv - std::round(inv)) < 1e-9,
                   "slot length must satisfy: 1/slot integer, slot <= 1 (§3.4)");
  }

  fault_active_ = config_.fault_policy != FaultPolicy::kNone;
  RS_EXPECTS_MSG(fault_active_ || (config_.arc_fault_rate == 0.0 &&
                                   config_.node_fault_rate == 0.0 &&
                                   config_.fault_mtbf == 0.0 &&
                                   config_.fault_mttr == 0.0 &&
                                   config_.storm_rate == 0.0 &&
                                   config_.storm_duration == 0.0),
                 "fault rates need a fault_policy");
  RS_EXPECTS_MSG(config_.fault_policy != FaultPolicy::kTwinDetour,
                 "twin_detour is a butterfly policy; the hypercube supports "
                 "drop, skip_dim, deflect and adaptive");
  ttl_ = config_.ttl > 0 ? config_.ttl : 64 * config_.d;
  // Hop counters are 16-bit; a larger TTL could never fire (wraparound).
  ttl_ = std::min(ttl_, 65535);

  PacketKernelConfig kernel;
  kernel.num_arcs = cube_.num_arcs();
  kernel.seed = config_.seed;
  kernel.stream_salt = 0xC0BE;
  if (fault_active_) {
    fault_model_.configure(
        make_fault_model_config(config_, cube_.num_arcs(), cube_.num_nodes()),
        [this](std::uint32_t node, std::vector<ArcId>& out) {
          cube_.append_incident_arcs(node, out);
        },
        [this](std::uint32_t node, std::vector<std::uint32_t>& out) {
          for (int dim = 1; dim <= config_.d; ++dim) {
            out.push_back(flip_dimension(node, dim));
          }
        });
    kernel.fault_model = &fault_model_;
  }
  if (config_.fixed_destinations != nullptr) {
    RS_EXPECTS_MSG(config_.fixed_destinations->size() == cube_.num_nodes(),
                   "fixed-destination table must have 2^d entries");
  }
  kernel.birth_rate = config_.lambda * static_cast<double>(cube_.num_nodes());
  kernel.slot = config_.slot;
  kernel.trace = config_.trace;
  kernel.fixed_destinations = config_.fixed_destinations;
  kernel.service_order = config_.arc_service_order;
  kernel.buffer_capacity = config_.buffer_capacity;
  // In-flight packets ~ (aggregate rate) x (delay ~ O(d)) at moderate load;
  // trace replay leaves the default (the kernel derives it from the trace).
  if (config_.trace == nullptr) {
    kernel.expected_packets =
        static_cast<std::size_t>(kernel.birth_rate * config_.d) + 64;
  }
  if (config_.track_node_occupancy) {
    kernel.stats.occupancy_trackers = cube_.num_nodes();
  }
  if (config_.track_delay_histogram) {
    enable_delay_tail_tracking(kernel.stats, config_.d);
  }
  kernel_.configure(kernel);

  if (config_.backend == KernelBackend::kSoaBatch) {
    // The batch backend advances whole service batches per tick; that needs
    // the slotted structure (every event time a multiple of the slot) and
    // the paper's canonical discipline — the ablation orders and dynamic
    // faults stay on the scalar oracle.
    RS_EXPECTS_MSG(config_.slot > 0.0,
                   "the soa_batch backend needs slotted time (tau > 0)");
    RS_EXPECTS_MSG(config_.trace == nullptr,
                   "the soa_batch backend cannot replay traces");
    RS_EXPECTS_MSG(config_.arc_service_order == ArcServiceOrder::kFifo,
                   "the soa_batch backend needs FIFO arc service");
    RS_EXPECTS_MSG(config_.dimension_order == DimensionOrder::kIncreasing,
                   "the soa_batch backend needs increasing dimension order");
    RS_EXPECTS_MSG(config_.fault_mtbf == 0.0 && config_.fault_mttr == 0.0 &&
                       config_.storm_rate == 0.0,
                   "the soa_batch backend needs a static fault set");
    SlottedBatchContext ctx;
    ctx.num_arcs = cube_.num_arcs();
    ctx.birth_rate = kernel.birth_rate;
    ctx.slot = config_.slot;
    ctx.buffer_capacity = config_.buffer_capacity;
    ctx.expected_packets = kernel.expected_packets;
    ctx.fixed_destinations = config_.fixed_destinations;
    // Borrow the kernel's RNG, stats and counters: every draw and every
    // accumulator update goes through the same objects in the same order,
    // which is what makes the backends bit-identical.
    ctx.rng = &kernel_.rng();
    ctx.stats = &kernel_.stats();
    ctx.arc_counters = &kernel_.arc_counters_mutable();
    batch_.configure(ctx);
  }
}

void GreedyHypercubeSim::inject(double now, NodeId origin, NodeId dest) {
  kernel_.count_arrival(now);
  const std::uint32_t pkt = kernel_.allocate_packet();
  kernel_.packet(pkt) =
      Pkt{origin, dest, now, 0,
          static_cast<std::uint16_t>(hamming_distance(origin, dest))};
  if (fault_active_ && fault_model_.is_node_faulty(origin)) {
    // A dead node offers no deliverable traffic; its load is counted as
    // fault-dropped so the delivery ratio reflects the offered load.
    kernel_.drop_faulty(now, pkt);
    return;
  }
  if (origin == dest) {
    // A packet that selects its own origin (probability (1-p)^d) needs no
    // transmission at all; it is delivered instantly with delay 0.
    kernel_.deliver(now, pkt, now, 0.0);
    return;
  }
  const int dim = fault_active_ ? next_dimension_faulty(kernel_.packet(pkt))
                                : next_dimension(kernel_.packet(pkt));
  if (dim == 0) {
    kernel_.drop_faulty(now, pkt);
    return;
  }
  kernel_.enqueue(now, cube_.arc_index(origin, dim), pkt, /*external=*/true,
                  origin);
}

void GreedyHypercubeSim::on_spawn(double now) {
  const auto [origin, dest] =
      kernel_.sample_spawn(cube_.num_nodes(), config_.destinations);
  inject(now, origin, dest);
}

void GreedyHypercubeSim::on_traced(double now, NodeId origin, NodeId dest) {
  inject(now, origin, dest);
}

int GreedyHypercubeSim::next_dimension(const Pkt& packet) {
  const NodeId remaining = packet.cur ^ packet.dest;
  RS_DASSERT(remaining != 0);
  switch (config_.dimension_order) {
    case DimensionOrder::kIncreasing:
      return lowest_dimension(remaining);
    case DimensionOrder::kDecreasing:
      return highest_dimension(remaining);
    case DimensionOrder::kRandomPerHop: {
      const int count = std::popcount(remaining);
      return nth_dimension(remaining,
                           static_cast<int>(kernel_.rng().uniform_below(
                               static_cast<std::uint64_t>(count))));
    }
  }
  return lowest_dimension(remaining);  // unreachable
}

int GreedyHypercubeSim::next_dimension_faulty(const Pkt& packet) {
  // The scheme's normal pick first: when its arc is alive — always, at
  // zero fault rates — routing and RNG consumption are identical to the
  // pristine path.  Otherwise the shared skip-dimension machinery
  // (fault/fault_routing.hpp) applies the policy.
  const int preferred = next_dimension(packet);
  if (!kernel_.arc_faulty(cube_.arc_index(packet.cur, preferred))) {
    return preferred;
  }
  if (config_.fault_policy == FaultPolicy::kAdaptive) {
    return adaptive_reroute_dimension(
        config_.d, packet.cur, packet.cur ^ packet.dest,
        [&](NodeId node, int dim) {
          return kernel_.arc_faulty(cube_.arc_index(node, dim));
        },
        kernel_.rng());
  }
  return fault_reroute_dimension(
      config_.fault_policy, config_.d, packet.cur ^ packet.dest,
      [&](int dim) { return kernel_.arc_faulty(cube_.arc_index(packet.cur, dim)); },
      kernel_.rng());
}

void GreedyHypercubeSim::on_arc_done(double now, ArcId arc) {
  const std::uint32_t pkt = kernel_.finish_arc(now, arc, cube_.arc_source(arc));

  Pkt& packet = kernel_.packet(pkt);
  const int dim = cube_.arc_dimension(arc);
  packet.cur = flip_dimension(packet.cur, dim);
  ++packet.hop_count;
  if (packet.cur == packet.dest) {
    const double stretch =
        packet.min_hops > 0
            ? static_cast<double>(packet.hop_count) / packet.min_hops
            : 0.0;
    kernel_.deliver(now, pkt, packet.gen_time,
                    static_cast<double>(packet.hop_count), stretch);
    return;
  }
  if (fault_active_) {
    if (packet.hop_count >= ttl_) {
      kernel_.drop_faulty(now, pkt);
      return;
    }
    const int next_dim = next_dimension_faulty(packet);
    if (next_dim == 0) {
      kernel_.drop_faulty(now, pkt);
      return;
    }
    kernel_.enqueue(now, cube_.arc_index(packet.cur, next_dim), pkt,
                    /*external=*/false, packet.cur);
    return;
  }
  // Under the paper's increasing-index order the next required dimension is
  // necessarily above `dim` (the levelled property B); the ablation orders
  // may revisit lower dimensions.
  const int next_dim = next_dimension(packet);
  RS_DASSERT(config_.dimension_order != DimensionOrder::kIncreasing ||
             next_dim > dim);
  kernel_.enqueue(now, cube_.arc_index(packet.cur, next_dim), pkt,
                  /*external=*/false, packet.cur);
}

/// The greedy routing decision over the SoA store.  route_batch is Phase A
/// of SlottedBatchDriver::process_batch; spawn/complete replay the scalar
/// inject/on_arc_done bookkeeping against the batch driver's mirrors.
struct GreedyHypercubeSim::BatchPolicy {
  GreedyHypercubeSim& sim;

  /// Mirror of on_spawn + inject for the batch store.
  void spawn(double now) {
    SlottedBatchDriver& batch = sim.batch_;
    const auto [origin, dest] = batch.sample_spawn(
        sim.cube_.num_nodes(), sim.config_.destinations);
    batch.count_arrival(now);
    SoaPacketStore& store = batch.store();
    const std::uint32_t pkt = store.allocate();
    store.node[pkt] = origin;
    store.dest[pkt] = dest;
    store.gen_time[pkt] = now;
    store.hops[pkt] = 0;
    store.aux[pkt] =
        static_cast<std::uint16_t>(hamming_distance(origin, dest));
    if (sim.fault_active_ && sim.fault_model_.is_node_faulty(origin)) {
      batch.drop_faulty(now, pkt);
      return;
    }
    if (origin == dest) {
      batch.deliver(now, pkt, now, 0.0);
      return;
    }
    int dim = lowest_dimension(origin ^ dest);
    if (sim.fault_active_) {
      dim = faulty_dimension(origin, origin ^ dest, dim);
      if (dim == 0) {
        batch.drop_faulty(now, pkt);
        return;
      }
    }
    batch.enqueue(now, sim.cube_.arc_index(origin, dim), pkt,
                  /*external=*/true, origin);
  }

  /// Phase A: advance every packet one hop and pick its next arc.  The
  /// pristine loop is pure same-shape array arithmetic over node/dest/hops
  /// — the auto-vectorizable hot path; the fault loop stays sequential so
  /// reroute RNG draws keep the scalar order.
  void route_batch(double /*now*/, const std::uint32_t* arcs,
                   const std::uint32_t* pkts, std::uint32_t* next,
                   std::size_t n) {
    SoaPacketStore& store = sim.batch_.store();
    const int d = sim.config_.d;
    if (!sim.fault_active_) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t arc = arcs[i];
        const std::uint32_t pkt = pkts[i];
        const std::uint32_t cur = store.node[pkt] ^ (1u << (arc >> d));
        store.node[pkt] = cur;
        store.hops[pkt] = static_cast<std::uint16_t>(store.hops[pkt] + 1);
        const std::uint32_t rem = cur ^ store.dest[pkt];
        const std::uint32_t advance =
            (static_cast<std::uint32_t>(std::countr_zero(rem)) << d) + cur;
        next[i] = rem == 0 ? SlottedBatchDriver::kDeliver : advance;
      }
      return;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t arc = arcs[i];
      const std::uint32_t pkt = pkts[i];
      const std::uint32_t cur = store.node[pkt] ^ (1u << (arc >> d));
      store.node[pkt] = cur;
      store.hops[pkt] = static_cast<std::uint16_t>(store.hops[pkt] + 1);
      const std::uint32_t rem = cur ^ store.dest[pkt];
      if (rem == 0) {
        next[i] = SlottedBatchDriver::kDeliver;
        continue;
      }
      if (store.hops[pkt] >= sim.ttl_) {
        next[i] = SlottedBatchDriver::kDropFault;
        continue;
      }
      const int dim = faulty_dimension(cur, rem, lowest_dimension(rem));
      next[i] = dim == 0 ? SlottedBatchDriver::kDropFault
                         : sim.cube_.arc_index(cur, dim);
    }
  }

  /// Mirror of next_dimension_faulty (increasing order only): the normal
  /// pick when its arc is alive, the shared reroute machinery otherwise.
  [[nodiscard]] int faulty_dimension(NodeId cur, NodeId rem, int preferred) {
    if (!sim.fault_model_.is_faulty(sim.cube_.arc_index(cur, preferred))) {
      return preferred;
    }
    if (sim.config_.fault_policy == FaultPolicy::kAdaptive) {
      return adaptive_reroute_dimension(
          sim.config_.d, cur, rem,
          [&](NodeId node, int dim) {
            return sim.fault_model_.is_faulty(sim.cube_.arc_index(node, dim));
          },
          sim.batch_.rng());
    }
    return fault_reroute_dimension(
        sim.config_.fault_policy, sim.config_.d, rem,
        [&](int dim) {
          return sim.fault_model_.is_faulty(sim.cube_.arc_index(cur, dim));
        },
        sim.batch_.rng());
  }

  /// Phase B tail: the scalar on_arc_done outcome for one routed packet.
  void complete(double now, std::uint32_t pkt, std::uint32_t next) {
    SlottedBatchDriver& batch = sim.batch_;
    SoaPacketStore& store = batch.store();
    if (next == SlottedBatchDriver::kDeliver) {
      const std::uint16_t hops = store.hops[pkt];
      const std::uint16_t min_hops = store.aux[pkt];
      const double stretch =
          min_hops > 0 ? static_cast<double>(hops) / min_hops : 0.0;
      batch.deliver(now, pkt, store.gen_time[pkt],
                    static_cast<double>(hops), stretch);
      return;
    }
    if (next == SlottedBatchDriver::kDropFault) {
      batch.drop_faulty(now, pkt);
      return;
    }
    batch.enqueue(now, next, pkt, /*external=*/false, store.node[pkt]);
  }

  /// Occupancy tracker decremented when a service at `arc` completes —
  /// the arc's source node, as in the scalar finish_arc call.
  [[nodiscard]] std::size_t finish_tracker(std::uint32_t arc) const {
    return sim.cube_.arc_source(arc);
  }
};

void GreedyHypercubeSim::run(double warmup, double horizon) {
  if (config_.backend == KernelBackend::kSoaBatch) {
    BatchPolicy policy{*this};
    batch_.drive(policy, warmup, horizon);
    return;
  }
  kernel_.drive(*this, warmup, horizon);
}

void register_hypercube_greedy_scheme(SchemeRegistry& registry) {
  registry.add(
      {"hypercube_greedy",
       "greedy dimension-order routing on the d-cube (§3; Props. 12/13, "
       "slotted §3.4 when tau > 0)",
       [](const Scenario& s) {
         // Non-native topologies (ring / torus / mesh) route through the
         // topology-parametric simulator; the hypercube keeps its
         // bit-exact specialised path.
         if (s.resolved_topology({"hypercube", "ring", "torus", "mesh"}) !=
             "hypercube") {
           return compile_topology_greedy(s);
         }
         CompiledScenario compiled;
         // Validated here so a bad workload, permutation or fault
         // combination fails at compile time, not inside a replication
         // worker thread.
         const auto perm = s.shared_permutation_table();
         const auto replay = s.shared_trace();
         const Window window = s.resolved_window();
         const FaultPolicy fault_policy = s.resolved_fault_policy(
             {FaultPolicy::kDrop, FaultPolicy::kSkipDim, FaultPolicy::kDeflect,
              FaultPolicy::kAdaptive});
         const KernelBackend backend = s.resolved_backend(
             {KernelBackend::kScalar, KernelBackend::kSoaBatch});
         if (backend == KernelBackend::kSoaBatch) {
           if (s.tau <= 0.0) {
             throw ScenarioError(
                 "backend=soa_batch needs slotted time: set tau > 0");
           }
           if (s.workload == "trace") {
             throw ScenarioError(
                 "backend=soa_batch cannot replay traces (use backend=scalar)");
           }
           if (s.fault_mtbf > 0.0 || s.fault_mttr > 0.0 || s.storm_rate > 0.0) {
             throw ScenarioError(
                 "backend=soa_batch needs a static fault set (clear "
                 "fault_mtbf/fault_mttr/storm_rate or use backend=scalar)");
           }
         }
         compiled.replicate = [s, window, fault_policy, perm, replay, backend,
                               dist = s.make_destinations()](
                                  std::uint64_t seed, int) {
           GreedyHypercubeConfig config;
           config.d = s.d;
           config.lambda = s.lambda;
           config.destinations = dist;
           config.seed = seed;
           config.slot = s.tau;
           config.backend = backend;
           config.buffer_capacity = s.buffer_capacity;
           config.fixed_destinations = perm ? perm.get() : nullptr;
           // Permutation runs track per-node occupancy for the max_queue
           // extra (the congestion collapse is visible in queue peaks).
           config.track_node_occupancy = perm != nullptr;
           // Tail metrics (delay_p50/p99) come from the delay histogram.
           config.track_delay_histogram = true;
           if (fault_policy != FaultPolicy::kNone) {
             config.fault_policy = fault_policy;
             config.arc_fault_rate = s.fault_rate;
             config.node_fault_rate = s.node_fault_rate;
             config.fault_mtbf = s.fault_mtbf;
             config.fault_mttr = s.fault_mttr;
             config.storm_rate = s.storm_rate;
             config.storm_radius = s.storm_radius;
             config.storm_duration = s.storm_duration;
             config.ttl = s.ttl;
           }
           // Thread-local so the cached sim's trace pointer stays valid for
           // the sim's whole lifetime (and the buffers are reused per rep).
           thread_local PacketTrace trace;
           if (replay != nullptr) {
             // External recorded trace: every replication replays the same
             // stream (the shared_ptr keeps it alive past this lambda).
             config.trace = replay.get();
           } else if (s.workload == "trace") {
             trace = generate_hypercube_trace(s.d, s.lambda, config.destinations,
                                              window.horizon, seed);
             config.trace = &trace;
           }
           GreedyHypercubeSim& sim =
               reusable_sim<GreedyHypercubeSim>(std::move(config));
           sim.run(window.warmup, window.horizon);
           const KernelStats& stats = sim.kernel_stats();
           std::vector<double> metrics{
               sim.delay().mean(),          sim.time_avg_population(),
               sim.throughput(),            sim.hops().mean(),
               sim.little_check().relative_error(), sim.final_population(),
               stats.delivery_ratio(),      stats.mean_stretch(),
               stats.delay_quantile(0.5),   stats.delay_quantile(0.99),
               static_cast<double>(stats.fault_drops_in_window()),
               static_cast<double>(stats.drops_in_window())};
           if (perm) metrics.push_back(stats.max_occupancy());
           return metrics;
         };
         compiled.extra_metrics = {"delivery_ratio", "mean_stretch",
                                   "delay_p50",      "delay_p99",
                                   "fault_drops",    "buffer_drops"};
         if (perm) compiled.extra_metrics.emplace_back("max_queue");
         // Unstable points (rho >= 1) run fine — only the bracket is gone.
         // Faulty, general-law and permutation scenarios have no
         // closed-form bracket; neither does an external trace_file, whose
         // load the scenario's lambda/p do not describe.
         if (s.workload != "general" && s.workload != "permutation" &&
             !s.faults_active() && replay == nullptr) {
           const bounds::HypercubeParams params{s.d, s.lambda, s.effective_p()};
           if (bounds::load_factor(params) < 1.0) {
             compiled.has_bounds = true;
             compiled.lower_bound = bounds::greedy_delay_lower_bound(params);
             compiled.upper_bound =
                 s.tau > 0.0 ? bounds::slotted_delay_upper_bound(params, s.tau)
                             : bounds::greedy_delay_upper_bound(params);
           }
         }
         return compiled;
       }});
}

}  // namespace routesim
