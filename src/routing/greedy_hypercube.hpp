#pragma once
/// \file greedy_hypercube.hpp
/// \brief Packet-level simulator of the paper's greedy routing scheme on the
///        d-cube (§3), built on the shared packet kernel.
///
/// Every packet crosses the hypercube dimensions it needs in increasing
/// index order, advancing as fast as possible (no idling) with FIFO
/// priority at every arc; arcs transmit one unit-length packet at a time.
/// This class is the *direct* simulation of the model in §1.1; the
/// Markovian equivalent network Q of §3.1 is implemented independently in
/// queueing/levelled_network.hpp + core/equivalence.hpp, and the test suite
/// checks that the two agree.
///
/// The event set, arc queues, arrival process and measurement accounting
/// live in des/packet_kernel.hpp; this class contributes the greedy routing
/// decision (next_dimension) and the dimension-order ablations.
///
/// Three arrival modes:
///   - continuous (default): per-node Poisson(lambda), simulated exactly via
///     the superposition property;
///   - slotted (§3.4): batches of Poisson(lambda*tau) packets per node at
///     slot boundaries k*tau (1/tau integer);
///   - trace replay: a fixed PacketTrace, for coupled scheme comparisons.

#include <cstdint>
#include <optional>
#include <vector>

#include "des/kernel_backend.hpp"
#include "des/packet_kernel.hpp"
#include "des/slotted_batch.hpp"
#include "stats/histogram.hpp"
#include "stats/little.hpp"
#include "stats/summary.hpp"
#include "topology/hypercube.hpp"
#include "workload/destination.hpp"
#include "workload/trace.hpp"

namespace routesim {

/// The order in which a packet crosses its required dimensions.  The paper
/// fixes increasing index order (the canonical path), which makes the
/// equivalent network levelled and the analysis tractable; decreasing and
/// random-per-hop orders are ablations showing the *choice of order* is an
/// analytical convenience, not a performance trick — by symmetry every
/// order gives the same per-arc load rho.
enum class DimensionOrder : std::uint8_t { kIncreasing, kDecreasing, kRandomPerHop };

struct GreedyHypercubeConfig {
  int d = 4;
  double lambda = 0.1;  ///< packet generation rate per node
  DestinationDistribution destinations = DestinationDistribution::uniform(4);
  std::uint64_t seed = 1;
  /// 0 => continuous time; > 0 => slotted arrivals with this slot length
  /// (must satisfy: 1/slot is an integer, slot <= 1; see §3.4).
  double slot = 0.0;
  /// Replay this trace instead of generating traffic (lambda/slot ignored).
  const PacketTrace* trace = nullptr;
  /// Per-source fixed destinations (workload = permutation): entry x is
  /// the destination of every packet generated at node x; `destinations`
  /// is then only a placeholder.  Non-owning; 2^d entries; null = sample
  /// from `destinations`.
  const std::vector<NodeId>* fixed_destinations = nullptr;
  /// Track a time-weighted occupancy per node (2^d trackers).
  bool track_node_occupancy = false;
  /// Collect a delay histogram (bin width 1, range [0, 64*d]).
  bool track_delay_histogram = false;
  /// Arc scheduling ablation (paper: FIFO).
  ArcServiceOrder arc_service_order = ArcServiceOrder::kFifo;
  /// Dimension-order ablation (paper: increasing).
  DimensionOrder dimension_order = DimensionOrder::kIncreasing;
  /// Finite-buffer ablation: maximum packets per arc queue including the
  /// one in service; arriving packets finding a full queue are dropped.
  /// 0 means infinite buffers (the paper's model).
  std::uint32_t buffer_capacity = 0;

  // --- fault injection (src/fault/fault_model.hpp) ----------------------
  /// kNone = the pristine code path (bit-identical to the paper's model).
  /// kDrop / kSkipDim / kDeflect / kAdaptive attach a FaultModel and route
  /// around (or drop at) dead arcs; with all fault rates zero the routing
  /// decisions and RNG consumption are identical to kNone.
  FaultPolicy fault_policy = FaultPolicy::kNone;
  double arc_fault_rate = 0.0;   ///< P[arc statically down]
  double node_fault_rate = 0.0;  ///< P[node down] (kills incident arcs)
  double fault_mtbf = 0.0;       ///< mean link up-time (> 0 with mttr => dynamic)
  double fault_mttr = 0.0;       ///< mean link repair time
  /// Correlated fault storms (src/fault/storm.hpp): Poisson arrivals of
  /// rate storm_rate, each downing the radius-storm_radius incidence ball
  /// around a random seed node for storm_duration time units.
  double storm_rate = 0.0;
  int storm_radius = 1;
  double storm_duration = 0.0;
  /// Max hops before a detouring packet is dropped; 0 = 64 * d.
  int ttl = 0;

  /// Execution engine.  kSoaBatch requires slotted time (slot > 0), no
  /// trace, FIFO arc service, increasing dimension order and a static
  /// fault set; its results are bit-identical to kScalar (pinned by
  /// tests/test_kernel_parity.cpp).
  KernelBackend backend = KernelBackend::kScalar;
};

class GreedyHypercubeSim {
 public:
  explicit GreedyHypercubeSim(GreedyHypercubeConfig config);

  /// Reconfigures for another replication, reusing kernel storage instead
  /// of reallocating (results are identical to a fresh construction).
  void reset(GreedyHypercubeConfig config);

  /// Simulates [0, horizon]; statistics cover [warmup, horizon].
  void run(double warmup, double horizon);

  // --- results (valid after run()) ---

  /// Per-packet delay (generation to delivery) for packets generated in the
  /// window and delivered by the horizon.  Packets whose destination equals
  /// their origin are delivered instantly with delay 0, as in the paper.
  [[nodiscard]] const Summary& delay() const noexcept { return kernel_.stats().delay(); }

  /// Number of arcs traversed per delivered packet (Hamming distance).
  [[nodiscard]] const Summary& hops() const noexcept { return kernel_.stats().hops(); }

  [[nodiscard]] double time_avg_population() const noexcept {
    return kernel_.stats().time_avg_population();
  }
  [[nodiscard]] double peak_population() const noexcept {
    return kernel_.stats().peak_population();
  }
  [[nodiscard]] double final_population() const noexcept {
    return kernel_.stats().final_population();
  }
  [[nodiscard]] std::uint64_t deliveries_in_window() const noexcept {
    return kernel_.stats().deliveries_in_window();
  }
  [[nodiscard]] std::uint64_t arrivals_in_window() const noexcept {
    return kernel_.stats().arrivals_in_window();
  }
  [[nodiscard]] double throughput() const noexcept {
    return kernel_.stats().throughput();
  }

  /// Little's-law self check over the window.
  [[nodiscard]] LittleCheck little_check() const noexcept {
    return kernel_.stats().little_check();
  }

  [[nodiscard]] const std::vector<ArcCounters>& arc_counters() const noexcept {
    return kernel_.arc_counters();
  }

  /// Mean occupancy (packets queued on out-arcs) of each node, if tracked.
  [[nodiscard]] const std::vector<double>& node_mean_occupancy() const noexcept {
    return kernel_.stats().occupancy_means();
  }

  /// Largest instantaneous per-node occupancy seen in the window, if tracked.
  [[nodiscard]] double max_node_occupancy() const noexcept {
    return kernel_.stats().max_occupancy();
  }

  [[nodiscard]] const std::optional<Histogram>& delay_histogram() const noexcept {
    return kernel_.stats().delay_histogram();
  }

  /// Packets dropped at full buffers within the window (finite-buffer mode).
  [[nodiscard]] std::uint64_t drops_in_window() const noexcept {
    return kernel_.stats().drops_in_window();
  }

  /// Packets lost to faults (dead arc / dead node / TTL) within the window.
  [[nodiscard]] std::uint64_t fault_drops_in_window() const noexcept {
    return kernel_.stats().fault_drops_in_window();
  }

  /// Windowed delivery ratio (see KernelStats::delivery_ratio).
  [[nodiscard]] double delivery_ratio() const noexcept {
    return kernel_.stats().delivery_ratio();
  }

  /// Mean path stretch, hops / Hamming distance, over delivered packets
  /// with distinct origin and destination; exactly 1 on a fault-free cube.
  [[nodiscard]] double mean_stretch() const noexcept {
    return kernel_.stats().mean_stretch();
  }

  /// The attached fault model (inactive when fault_policy is kNone).
  [[nodiscard]] const FaultModel& fault_model() const noexcept {
    return fault_model_;
  }

  /// The full measurement harvest (delivery ratio, stretch, quantiles, ...).
  [[nodiscard]] const KernelStats& kernel_stats() const noexcept {
    return kernel_.stats();
  }

  [[nodiscard]] const Hypercube& topology() const noexcept { return cube_; }
  [[nodiscard]] double measurement_window() const noexcept {
    return kernel_.stats().measurement_window();
  }

  // --- kernel hooks (called by PacketKernel::drive) ---

  void on_spawn(double now);
  void on_traced(double now, NodeId origin, NodeId dest);
  void on_arc_done(double now, ArcId arc);

 private:
  struct Pkt {
    NodeId cur = 0;
    NodeId dest = 0;
    double gen_time = 0.0;
    std::uint16_t hop_count = 0;
    std::uint16_t min_hops = 0;  ///< Hamming(origin, dest) — stretch baseline
  };

  /// The soa_batch policy (routing/greedy_hypercube.cpp): the greedy
  /// decision over the SoA store, driven by SlottedBatchDriver against the
  /// kernel's own RNG/stats, so results match the scalar path bit for bit.
  struct BatchPolicy;

  void configure_kernel();
  void inject(double now, NodeId origin, NodeId dest);
  [[nodiscard]] int next_dimension(const Pkt& packet);
  /// Fault-aware dimension choice: the scheme's normal pick when its arc
  /// is alive, the policy's reroute (fault/fault_routing.hpp) otherwise;
  /// 0 means drop the packet.
  [[nodiscard]] int next_dimension_faulty(const Pkt& packet);

  GreedyHypercubeConfig config_;
  Hypercube cube_;
  FaultModel fault_model_;
  bool fault_active_ = false;
  int ttl_ = 0;
  PacketKernel<Pkt> kernel_;
  SlottedBatchDriver batch_;  ///< engaged when backend == kSoaBatch
};

class SchemeRegistry;

/// core/registry.hpp hookup: registers "hypercube_greedy" (continuous or,
/// with tau > 0, the slotted variant of §3.4; workloads bit_flip, uniform,
/// general, trace and permutation — the latter adds a max_queue extra;
/// trace replay of an external file via trace_file; finite buffers via
/// buffer_capacity; fault injection via fault_rate / node_fault_rate /
/// fault_mtbf / fault_mttr / storm_rate / storm_radius / storm_duration
/// with fault_policy drop | skip_dim | deflect | adaptive, reported
/// through the delivery_ratio / mean_stretch / delay_p50 / delay_p99 /
/// fault_drops / buffer_drops extras).
void register_hypercube_greedy_scheme(SchemeRegistry& registry);

}  // namespace routesim
