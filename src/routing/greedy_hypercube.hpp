#pragma once
/// \file greedy_hypercube.hpp
/// \brief Packet-level simulator of the paper's greedy routing scheme on the
///        d-cube (§3).
///
/// Every packet crosses the hypercube dimensions it needs in increasing
/// index order, advancing as fast as possible (no idling) with FIFO
/// priority at every arc; arcs transmit one unit-length packet at a time.
/// This class is the *direct* simulation of the model in §1.1; the
/// Markovian equivalent network Q of §3.1 is implemented independently in
/// queueing/levelled_network.hpp + core/equivalence.hpp, and the test suite
/// checks that the two agree.
///
/// Three arrival modes:
///   - continuous (default): per-node Poisson(lambda), simulated exactly via
///     the superposition property;
///   - slotted (§3.4): batches of Poisson(lambda*tau) packets per node at
///     slot boundaries k*tau (1/tau integer);
///   - trace replay: a fixed PacketTrace, for coupled scheme comparisons.

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "des/event_queue.hpp"
#include "stats/histogram.hpp"
#include "stats/little.hpp"
#include "stats/summary.hpp"
#include "stats/timeavg.hpp"
#include "topology/hypercube.hpp"
#include "util/rng.hpp"
#include "workload/destination.hpp"
#include "workload/trace.hpp"

namespace routesim {

/// Which waiting packet an arc serves next.  The paper's scheme is FIFO
/// ("priority is given to the one that arrived first", §3); LIFO and random
/// are ablations.  All three are work-conserving and blind to service
/// times, so the *mean* delay is unchanged — only the delay distribution's
/// shape (variance, tails) differs.  The ablation bench verifies exactly
/// this insensitivity.
enum class ArcServiceOrder : std::uint8_t { kFifo, kLifo, kRandom };

/// The order in which a packet crosses its required dimensions.  The paper
/// fixes increasing index order (the canonical path), which makes the
/// equivalent network levelled and the analysis tractable; decreasing and
/// random-per-hop orders are ablations showing the *choice of order* is an
/// analytical convenience, not a performance trick — by symmetry every
/// order gives the same per-arc load rho.
enum class DimensionOrder : std::uint8_t { kIncreasing, kDecreasing, kRandomPerHop };

struct GreedyHypercubeConfig {
  int d = 4;
  double lambda = 0.1;  ///< packet generation rate per node
  DestinationDistribution destinations = DestinationDistribution::uniform(4);
  std::uint64_t seed = 1;
  /// 0 => continuous time; > 0 => slotted arrivals with this slot length
  /// (must satisfy: 1/slot is an integer, slot <= 1; see §3.4).
  double slot = 0.0;
  /// Replay this trace instead of generating traffic (lambda/slot ignored).
  const PacketTrace* trace = nullptr;
  /// Track a time-weighted occupancy per node (2^d trackers).
  bool track_node_occupancy = false;
  /// Collect a delay histogram (bin width 1, range [0, 64*d]).
  bool track_delay_histogram = false;
  /// Arc scheduling ablation (paper: FIFO).
  ArcServiceOrder arc_service_order = ArcServiceOrder::kFifo;
  /// Dimension-order ablation (paper: increasing).
  DimensionOrder dimension_order = DimensionOrder::kIncreasing;
  /// Finite-buffer ablation: maximum packets per arc queue including the
  /// one in service; arriving packets finding a full queue are dropped.
  /// 0 means infinite buffers (the paper's model).
  std::uint32_t buffer_capacity = 0;
};

/// Per-arc counters over the measurement window.
struct ArcCounters {
  std::uint64_t external_arrivals = 0;  ///< packets starting their route here
  std::uint64_t total_arrivals = 0;     ///< all packets entering the queue
};

class GreedyHypercubeSim {
 public:
  explicit GreedyHypercubeSim(GreedyHypercubeConfig config);

  /// Simulates [0, horizon]; statistics cover [warmup, horizon].
  void run(double warmup, double horizon);

  // --- results (valid after run()) ---

  /// Per-packet delay (generation to delivery) for packets generated in the
  /// window and delivered by the horizon.  Packets whose destination equals
  /// their origin are delivered instantly with delay 0, as in the paper.
  [[nodiscard]] const Summary& delay() const noexcept { return delay_; }

  /// Number of arcs traversed per delivered packet (Hamming distance).
  [[nodiscard]] const Summary& hops() const noexcept { return hops_; }

  [[nodiscard]] double time_avg_population() const noexcept { return time_avg_population_; }
  [[nodiscard]] double peak_population() const noexcept { return peak_population_; }
  [[nodiscard]] double final_population() const noexcept { return final_population_; }
  [[nodiscard]] std::uint64_t deliveries_in_window() const noexcept { return deliveries_window_; }
  [[nodiscard]] std::uint64_t arrivals_in_window() const noexcept { return arrivals_window_; }
  [[nodiscard]] double throughput() const noexcept { return throughput_; }

  /// Little's-law self check over the window.
  [[nodiscard]] LittleCheck little_check() const noexcept;

  [[nodiscard]] const std::vector<ArcCounters>& arc_counters() const noexcept {
    return arc_counters_;
  }

  /// Mean occupancy (packets queued on out-arcs) of each node, if tracked.
  [[nodiscard]] const std::vector<double>& node_mean_occupancy() const noexcept {
    return node_mean_occupancy_;
  }

  /// Largest instantaneous per-node occupancy seen in the window, if tracked.
  [[nodiscard]] double max_node_occupancy() const noexcept { return max_node_occupancy_; }

  [[nodiscard]] const std::optional<Histogram>& delay_histogram() const noexcept {
    return delay_histogram_;
  }

  /// Packets dropped at full buffers within the window (finite-buffer mode).
  [[nodiscard]] std::uint64_t drops_in_window() const noexcept { return drops_window_; }

  [[nodiscard]] const Hypercube& topology() const noexcept { return cube_; }
  [[nodiscard]] double measurement_window() const noexcept { return window_; }

 private:
  enum class EventKind : std::uint8_t { kBirth, kSlot, kArcDone };

  struct Ev {
    EventKind kind{};
    ArcId arc = 0;
  };

  struct Pkt {
    NodeId cur = 0;
    NodeId dest = 0;
    double gen_time = 0.0;
    std::uint16_t hop_count = 0;
  };

  std::uint32_t allocate_packet(double gen_time, NodeId origin, NodeId dest);
  void inject(double now, NodeId origin, NodeId dest);
  void enqueue(double now, ArcId arc, std::uint32_t pkt, bool external);
  void deliver(double now, std::uint32_t pkt);
  void drop(double now, std::uint32_t pkt);
  void on_arc_done(double now, ArcId arc);
  void node_occupancy_add(double now, NodeId node, double delta);
  [[nodiscard]] int next_dimension(const Pkt& packet);

  GreedyHypercubeConfig config_;
  Hypercube cube_;
  Rng rng_;

  std::vector<std::deque<std::uint32_t>> arc_queue_;
  std::vector<Pkt> packets_;
  std::vector<std::uint32_t> free_packets_;
  EventQueue<Ev> events_;

  // traffic state
  double next_birth_time_ = 0.0;
  std::size_t trace_pos_ = 0;

  // statistics
  double warmup_ = 0.0;
  double window_ = 0.0;
  Summary delay_;
  Summary hops_;
  TimeWeighted population_;
  std::vector<ArcCounters> arc_counters_;
  std::vector<TimeWeighted> node_occupancy_;
  std::vector<double> node_mean_occupancy_;
  double max_node_occupancy_ = 0.0;
  std::optional<Histogram> delay_histogram_;
  std::uint64_t deliveries_window_ = 0;
  std::uint64_t arrivals_window_ = 0;
  std::uint64_t drops_window_ = 0;
  double time_avg_population_ = 0.0;
  double peak_population_ = 0.0;
  double final_population_ = 0.0;
  double throughput_ = 0.0;
};

class SchemeRegistry;

/// core/registry.hpp hookup: registers "hypercube_greedy" (continuous or,
/// with tau > 0, the slotted variant of §3.4; workloads bit_flip, uniform,
/// general and trace; finite buffers via buffer_capacity).
void register_hypercube_greedy_scheme(SchemeRegistry& registry);

}  // namespace routesim
