#include "routing/multicast.hpp"

#include "core/registry.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/distributions.hpp"

namespace routesim {

GreedyMulticastSim::GreedyMulticastSim(MulticastConfig config)
    : config_(std::move(config)),
      cube_(config_.d),
      rng_(derive_stream(config_.seed, 0x3CA5)) {
  RS_EXPECTS(config_.lambda > 0.0);
  RS_EXPECTS_MSG(config_.fanout >= 1 &&
                     static_cast<std::uint64_t>(config_.fanout) <= cube_.num_nodes(),
                 "fanout must be between 1 and 2^d");
  arc_queue_.resize(cube_.num_arcs());
}

void GreedyMulticastSim::inject(double now) {
  const auto origin = static_cast<NodeId>(rng_.uniform_below(cube_.num_nodes()));

  // Sample `fanout` distinct uniform destinations by rejection (fanout is
  // small relative to 2^d in all experiments).
  std::vector<NodeId> dests;
  dests.reserve(static_cast<std::size_t>(config_.fanout));
  while (dests.size() < static_cast<std::size_t>(config_.fanout)) {
    const auto candidate = static_cast<NodeId>(rng_.uniform_below(cube_.num_nodes()));
    if (std::find(dests.begin(), dests.end(), candidate) == dests.end()) {
      dests.push_back(candidate);
    }
  }

  std::uint32_t packet;
  if (!free_packets_.empty()) {
    packet = free_packets_.back();
    free_packets_.pop_back();
  } else {
    packet = static_cast<std::uint32_t>(packets_.size());
    packets_.emplace_back();
  }
  packets_[packet] =
      PacketState{now, config_.fanout, 0, now, now >= warmup_};
  if (now >= warmup_) ++packets_window_;

  const auto make_copy = [&](std::vector<NodeId> subset) {
    std::uint32_t copy;
    if (!free_copies_.empty()) {
      copy = free_copies_.back();
      free_copies_.pop_back();
    } else {
      copy = static_cast<std::uint32_t>(copies_.size());
      copies_.emplace_back();
    }
    copies_[copy] = Copy{origin, std::move(subset), packet};
    population_.add(now, +1.0);
    process_at_node(now, copy);
  };

  if (config_.unicast_baseline) {
    for (const NodeId dest : dests) make_copy({dest});
  } else {
    make_copy(std::move(dests));
  }
}

void GreedyMulticastSim::finish_packet_if_done(double /*now*/, std::uint32_t packet) {
  PacketState& state = packets_[packet];
  if (state.undelivered > 0) return;
  if (state.counted) {
    completion_.add(state.last_delivery - state.gen_time);
    transmissions_.add(static_cast<double>(state.transmissions));
  }
  free_packets_.push_back(packet);
}

void GreedyMulticastSim::process_at_node(double now, std::uint32_t copy_index) {
  // Move the copy's state out first: forwarding below may allocate new
  // copies (invalidating references into copies_).
  const NodeId cur = copies_[copy_index].cur;
  const std::uint32_t packet = copies_[copy_index].packet;
  std::vector<NodeId> dests = std::move(copies_[copy_index].dests);
  PacketState& state = packets_[packet];

  // Deliver locally if this node is one of the copy's destinations.
  const auto here = std::find(dests.begin(), dests.end(), cur);
  if (here != dests.end()) {
    if (state.counted) delay_.add(now - state.gen_time);
    state.last_delivery = now;
    --state.undelivered;
    dests.erase(here);
  }

  if (dests.empty()) {
    population_.add(now, -1.0);
    free_copies_.push_back(copy_index);
    finish_packet_if_done(now, packet);
    return;
  }

  // Partition the remaining destinations by their next (lowest differing)
  // dimension — the dimension-order multicast tree branches.
  std::vector<std::pair<int, std::vector<NodeId>>> branches;
  for (const NodeId dest : dests) {
    const int dim = lowest_dimension(cur ^ dest);
    auto it = std::find_if(branches.begin(), branches.end(),
                           [dim](const auto& branch) { return branch.first == dim; });
    if (it == branches.end()) {
      branches.emplace_back(dim, std::vector<NodeId>{dest});
    } else {
      it->second.push_back(dest);
    }
  }

  // Forward one copy per branch; the first branch reuses this copy object.
  for (std::size_t b = 0; b < branches.size(); ++b) {
    std::uint32_t forwarded;
    if (b == 0) {
      forwarded = copy_index;
    } else if (!free_copies_.empty()) {
      forwarded = free_copies_.back();
      free_copies_.pop_back();
    } else {
      forwarded = static_cast<std::uint32_t>(copies_.size());
      copies_.emplace_back();
    }
    copies_[forwarded] = Copy{cur, std::move(branches[b].second), packet};
    if (b > 0) population_.add(now, +1.0);

    const ArcId arc = cube_.arc_index(cur, branches[b].first);
    auto& queue = arc_queue_[arc];
    queue.push_back(forwarded);
    if (queue.size() == 1) {
      events_.push(now + 1.0, Ev{false, arc});
    }
  }
}

void GreedyMulticastSim::run(double warmup, double horizon) {
  RS_EXPECTS(warmup >= 0.0 && warmup <= horizon);
  warmup_ = warmup;

  const double total_rate = config_.lambda * static_cast<double>(cube_.num_nodes());
  events_.push(sample_exponential(rng_, total_rate), Ev{true, 0});

  bool stats_reset = warmup == 0.0;
  while (!events_.empty() && events_.top().time <= horizon) {
    const auto event = events_.pop();
    const double t = event.time;
    if (!stats_reset && t >= warmup) {
      population_.reset(warmup);
      stats_reset = true;
    }
    if (event.payload.is_birth) {
      inject(t);
      events_.push(t + sample_exponential(rng_, total_rate), Ev{true, 0});
    } else {
      const ArcId arc = event.payload.arc;
      auto& queue = arc_queue_[arc];
      RS_DASSERT(!queue.empty());
      const std::uint32_t copy_index = queue.front();
      queue.pop_front();
      if (!queue.empty()) events_.push(t + 1.0, Ev{false, arc});

      Copy& copy = copies_[copy_index];
      copy.cur = flip_dimension(copy.cur, cube_.arc_dimension(arc));
      PacketState& state = packets_[copy.packet];
      if (state.counted) ++state.transmissions;
      process_at_node(t, copy_index);
    }
  }

  if (!stats_reset) population_.reset(warmup);
  time_avg_population_ = population_.mean(horizon);
}

void register_multicast_scheme(SchemeRegistry& registry) {
  registry.add(
      {"multicast",
       "greedy dimension-order multicast trees, fanout destinations per "
       "packet (§5; unicast_baseline=1 sends fanout independent unicasts)",
       [](const Scenario& s) {
         CompiledScenario compiled;
         const Window window = s.resolved_window();
         compiled.replicate = [s, window](std::uint64_t seed, int) {
           MulticastConfig config;
           config.d = s.d;
           config.lambda = s.lambda;
           config.fanout = s.fanout;
           config.seed = seed;
           config.unicast_baseline = s.unicast_baseline;
           GreedyMulticastSim sim(config);
           sim.run(window.warmup, window.horizon);
           const double window_length = window.horizon - window.warmup;
           return std::vector<double>{
               sim.delivery_delay().mean(),
               sim.time_avg_copies_in_network(),
               window_length > 0.0
                   ? static_cast<double>(sim.packets_in_window()) / window_length
                   : 0.0,
               0.0,
               0.0,
               0.0,
               sim.completion_delay().mean(),
               sim.transmissions_per_packet().mean()};
         };
         compiled.extra_metrics = {"completion_delay", "transmissions_per_packet"};
         return compiled;
       }});
}

}  // namespace routesim
