#include "routing/multicast.hpp"

#include "core/registry.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"
#include "util/distributions.hpp"

namespace routesim {

GreedyMulticastSim::GreedyMulticastSim(MulticastConfig config)
    : config_(std::move(config)), cube_(config_.d) {
  configure_kernel();
}

void GreedyMulticastSim::reset(MulticastConfig config) {
  config_ = std::move(config);
  cube_ = Hypercube(config_.d);
  configure_kernel();
}

void GreedyMulticastSim::configure_kernel() {
  RS_EXPECTS(config_.lambda > 0.0);
  RS_EXPECTS_MSG(config_.fanout >= 1 &&
                     static_cast<std::uint64_t>(config_.fanout) <= cube_.num_nodes(),
                 "fanout must be between 1 and 2^d");
  RS_EXPECTS_MSG(config_.fixed_destinations == nullptr ||
                     config_.fixed_destinations->size() == cube_.num_nodes(),
                 "fixed-destination table must have 2^d entries");

  PacketKernelConfig kernel;
  kernel.num_arcs = cube_.num_arcs();
  kernel.seed = config_.seed;
  kernel.stream_salt = 0x3CA5;
  kernel.birth_rate = config_.lambda * static_cast<double>(cube_.num_nodes());
  kernel.expected_packets =
      static_cast<std::size_t>(kernel.birth_rate * config_.fanout * config_.d) + 64;
  kernel_.configure(kernel);
  packet_pool_.clear();
  completion_ = Summary{};
  transmissions_ = Summary{};
  packets_window_ = 0;
}

void GreedyMulticastSim::on_spawn(double now) { inject(now); }

void GreedyMulticastSim::inject(double now) {
  Rng& rng = kernel_.rng();
  const auto origin = static_cast<NodeId>(rng.uniform_below(cube_.num_nodes()));

  std::vector<NodeId> dests;
  dests.reserve(static_cast<std::size_t>(config_.fanout));
  if (config_.fixed_destinations != nullptr) {
    // Permutation workload: the destination set is the forward orbit of
    // the map — deterministic per source, distinct by construction, and
    // truncated early when the orbit closes.
    NodeId cur = origin;
    for (int k = 0; k < config_.fanout; ++k) {
      cur = (*config_.fixed_destinations)[cur];
      if (std::find(dests.begin(), dests.end(), cur) != dests.end()) break;
      dests.push_back(cur);
    }
  } else {
    // Sample `fanout` distinct uniform destinations by rejection (fanout
    // is small relative to 2^d in all experiments).
    while (dests.size() < static_cast<std::size_t>(config_.fanout)) {
      const auto candidate =
          static_cast<NodeId>(rng.uniform_below(cube_.num_nodes()));
      if (std::find(dests.begin(), dests.end(), candidate) == dests.end()) {
        dests.push_back(candidate);
      }
    }
  }

  const std::uint32_t packet = packet_pool_.allocate();
  const double warmup = kernel_.stats().warmup();
  packet_pool_[packet] = PacketState{now, static_cast<int>(dests.size()), 0, now,
                                     now >= warmup};
  if (now >= warmup) ++packets_window_;

  const auto make_copy = [&](std::vector<NodeId> subset) {
    const std::uint32_t copy = kernel_.allocate_packet();
    kernel_.packet(copy) = Copy{origin, std::move(subset), packet};
    kernel_.stats().population().add(now, +1.0);
    process_at_node(now, copy);
  };

  if (config_.unicast_baseline) {
    for (const NodeId dest : dests) make_copy({dest});
  } else {
    make_copy(std::move(dests));
  }
}

void GreedyMulticastSim::finish_packet_if_done(double /*now*/, std::uint32_t packet) {
  PacketState& state = packet_pool_[packet];
  if (state.undelivered > 0) return;
  if (state.counted) {
    completion_.add(state.last_delivery - state.gen_time);
    transmissions_.add(static_cast<double>(state.transmissions));
  }
  packet_pool_.release(packet);
}

void GreedyMulticastSim::process_at_node(double now, std::uint32_t copy_index) {
  // Move the copy's state out first: forwarding below may allocate new
  // copies (invalidating references into the kernel's copy pool).
  const NodeId cur = kernel_.packet(copy_index).cur;
  const std::uint32_t packet = kernel_.packet(copy_index).packet;
  std::vector<NodeId> dests = std::move(kernel_.packet(copy_index).dests);
  PacketState& state = packet_pool_[packet];

  // Deliver locally if this node is one of the copy's destinations.
  const auto here = std::find(dests.begin(), dests.end(), cur);
  if (here != dests.end()) {
    if (state.counted) kernel_.stats().delay().add(now - state.gen_time);
    state.last_delivery = now;
    --state.undelivered;
    dests.erase(here);
  }

  if (dests.empty()) {
    kernel_.retire(now, copy_index);
    finish_packet_if_done(now, packet);
    return;
  }

  // Partition the remaining destinations by their next (lowest differing)
  // dimension — the dimension-order multicast tree branches.
  std::vector<std::pair<int, std::vector<NodeId>>> branches;
  for (const NodeId dest : dests) {
    const int dim = lowest_dimension(cur ^ dest);
    auto it = std::find_if(branches.begin(), branches.end(),
                           [dim](const auto& branch) { return branch.first == dim; });
    if (it == branches.end()) {
      branches.emplace_back(dim, std::vector<NodeId>{dest});
    } else {
      it->second.push_back(dest);
    }
  }

  // Forward one copy per branch; the first branch reuses this copy object.
  for (std::size_t b = 0; b < branches.size(); ++b) {
    const std::uint32_t forwarded = b == 0 ? copy_index : kernel_.allocate_packet();
    kernel_.packet(forwarded) = Copy{cur, std::move(branches[b].second), packet};
    if (b > 0) kernel_.stats().population().add(now, +1.0);
    kernel_.enqueue(now, cube_.arc_index(cur, branches[b].first), forwarded,
                    /*external=*/false);
  }
}

void GreedyMulticastSim::on_arc_done(double now, ArcId arc) {
  const std::uint32_t copy_index = kernel_.finish_arc(now, arc);
  Copy& copy = kernel_.packet(copy_index);
  copy.cur = flip_dimension(copy.cur, cube_.arc_dimension(arc));
  PacketState& state = packet_pool_[copy.packet];
  if (state.counted) ++state.transmissions;
  process_at_node(now, copy_index);
}

void GreedyMulticastSim::run(double warmup, double horizon) {
  kernel_.drive(*this, warmup, horizon);
}

void register_multicast_scheme(SchemeRegistry& registry) {
  registry.add(
      {"multicast",
       "greedy dimension-order multicast trees, fanout destinations per "
       "packet (§5; unicast_baseline=1 sends fanout independent unicasts)",
       [](const Scenario& s) {
         CompiledScenario compiled;
         (void)s.resolved_topology({"hypercube"});  // hypercube-native
         (void)s.resolved_fault_policy({});  // no fault support: reject knobs
         (void)s.resolved_backend({});       // scalar-only: reject soa_batch
         const auto perm = s.shared_permutation_table();
         const Window window = s.resolved_window();
         compiled.replicate = [s, window, perm](std::uint64_t seed, int) {
           MulticastConfig config;
           config.d = s.d;
           config.lambda = s.lambda;
           config.fanout = s.fanout;
           config.seed = seed;
           config.unicast_baseline = s.unicast_baseline;
           config.fixed_destinations = perm ? perm.get() : nullptr;
           GreedyMulticastSim& sim = reusable_sim<GreedyMulticastSim>(config);
           sim.run(window.warmup, window.horizon);
           const double window_length = window.horizon - window.warmup;
           return std::vector<double>{
               sim.delivery_delay().mean(),
               sim.time_avg_copies_in_network(),
               window_length > 0.0
                   ? static_cast<double>(sim.packets_in_window()) / window_length
                   : 0.0,
               0.0,
               0.0,
               0.0,
               sim.completion_delay().mean(),
               sim.transmissions_per_packet().mean()};
         };
         compiled.extra_metrics = {"completion_delay", "transmissions_per_packet"};
         return compiled;
       }});
}

}  // namespace routesim
