#pragma once
/// \file multicast.hpp
/// \brief Greedy dimension-order multicast — the first generalisation
///        suggested in the paper's concluding remarks (§5): "it may be
///        assumed that each packet is destined for a different subset of
///        nodes".  Built on the shared packet kernel.
///
/// A packet carries a destination *set*.  At a node y holding destination
/// set S, the scheme delivers the copy addressed to y (if y in S), splits
/// the remainder by the lowest differing dimension of each destination
/// (increasing index order, as in the unicast scheme), and forwards one
/// copy per required outgoing arc carrying the matching subset.  The union
/// of the copies' trajectories is exactly the union of the canonical
/// unicast paths — a dimension-ordered multicast tree — so a k-destination
/// packet uses |tree| <= k * E[H] arcs, strictly fewer than k unicasts
/// whenever paths share prefixes.
///
/// The kernel's pooled unit here is the *copy* (the object that occupies
/// arc queues); the logical packets live in a second Pool owned by this
/// class.  This simulator measures (a) per-destination delay and (b) the
/// traffic saving of tree forwarding versus k independent unicast packets.

#include <cstdint>
#include <vector>

#include "des/packet_kernel.hpp"
#include "stats/summary.hpp"
#include "topology/hypercube.hpp"
#include "util/rng.hpp"

namespace routesim {

struct MulticastConfig {
  int d = 4;
  double lambda = 0.02;  ///< packet-generation rate per node (each packet has k dests)
  int fanout = 4;        ///< destinations per packet (k), sampled distinct uniform
  std::uint64_t seed = 1;
  /// When true, disable tree sharing: send k independent unicast copies
  /// (the baseline the tree is compared against).
  bool unicast_baseline = false;
  /// Per-source fixed-destination mode (workload = permutation): the
  /// destination set of a packet generated at x is the first `fanout`
  /// distinct nodes of the forward orbit pi(x), pi(pi(x)), ... (fewer when
  /// the orbit closes first), so the multicast tree itself is
  /// deterministic per source.  Non-owning; 2^d entries; null = sample
  /// distinct uniform destinations.
  const std::vector<NodeId>* fixed_destinations = nullptr;
};

class GreedyMulticastSim {
 public:
  explicit GreedyMulticastSim(MulticastConfig config);

  /// Reconfigures for another replication, reusing kernel storage.
  void reset(MulticastConfig config);

  void run(double warmup, double horizon);

  /// Delay from packet generation to the delivery at each destination
  /// (k observations per generated packet).
  [[nodiscard]] const Summary& delivery_delay() const noexcept {
    return kernel_.stats().delay();
  }

  /// Delay until the *last* destination of a packet is reached
  /// (the multicast completion time).
  [[nodiscard]] const Summary& completion_delay() const noexcept { return completion_; }

  /// Arc transmissions consumed per generated packet (tree size).
  [[nodiscard]] const Summary& transmissions_per_packet() const noexcept {
    return transmissions_;
  }

  [[nodiscard]] double time_avg_copies_in_network() const noexcept {
    return kernel_.stats().time_avg_population();
  }

  [[nodiscard]] std::uint64_t packets_in_window() const noexcept {
    return packets_window_;
  }

  // --- kernel hooks (called by PacketKernel::drive) ---

  void on_spawn(double now);
  void on_arc_done(double now, ArcId arc);

 private:
  struct Copy {
    NodeId cur = 0;
    std::vector<NodeId> dests;   ///< destinations this copy still serves
    std::uint32_t packet = 0;    ///< owning logical packet
  };

  struct PacketState {
    double gen_time = 0.0;
    int undelivered = 0;
    int transmissions = 0;
    double last_delivery = 0.0;
    bool counted = false;  ///< generated inside the measurement window
  };

  void configure_kernel();
  void inject(double now);
  void process_at_node(double now, std::uint32_t copy_index);
  void finish_packet_if_done(double now, std::uint32_t packet);

  MulticastConfig config_;
  Hypercube cube_;
  PacketKernel<Copy> kernel_;
  Pool<PacketState> packet_pool_;

  Summary completion_;
  Summary transmissions_;
  std::uint64_t packets_window_ = 0;
};

class SchemeRegistry;

/// core/registry.hpp hookup: registers "multicast" (§5 destination-set
/// generalisation; `fanout` destinations per packet, unicast_baseline
/// disables tree sharing) with extra metrics completion_delay and
/// transmissions_per_packet.
void register_multicast_scheme(SchemeRegistry& registry);

}  // namespace routesim
