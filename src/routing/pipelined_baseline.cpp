#include "routing/pipelined_baseline.hpp"

#include "core/registry.hpp"

#include "routing/batch_router.hpp"
#include "util/assert.hpp"
#include "util/distributions.hpp"

namespace routesim {

PipelinedBaselineSim::PipelinedBaselineSim(PipelinedBaselineConfig config)
    : config_(std::move(config)),
      cube_(config_.d),
      rng_(derive_stream(config_.seed, 0xBA5E)) {
  RS_EXPECTS(config_.lambda > 0.0);
  RS_EXPECTS(config_.destinations.dimension() == config_.d);
  node_queue_.resize(cube_.num_nodes());
  const double total_rate = config_.lambda * static_cast<double>(cube_.num_nodes());
  next_birth_ = sample_exponential(rng_, total_rate);
}

void PipelinedBaselineSim::generate_until(double t) {
  const double total_rate = config_.lambda * static_cast<double>(cube_.num_nodes());
  while (next_birth_ <= t) {
    const auto origin = static_cast<NodeId>(rng_.uniform_below(cube_.num_nodes()));
    const NodeId dest = config_.destinations.sample(rng_, origin);
    node_queue_[origin].push_back(Waiting{next_birth_, dest});
    next_birth_ += sample_exponential(rng_, total_rate);
  }
  gen_clock_ = t;
}

void PipelinedBaselineSim::run(double warmup, double horizon) {
  RS_EXPECTS(warmup >= 0.0 && warmup <= horizon);
  double now = 0.0;

  while (now < horizon) {
    generate_until(now);

    // Select one waiting packet per node (§2.3: "each node selects one of
    // its packets"); record who waits.
    std::vector<BatchPacket> batch;
    std::vector<double> gen_times;
    batch.reserve(cube_.num_nodes());
    for (NodeId node = 0; node < cube_.num_nodes(); ++node) {
      auto& queue = node_queue_[node];
      if (queue.empty()) continue;
      const Waiting packet = queue.front();
      queue.pop_front();
      batch.push_back(BatchPacket{node, packet.destination});
      gen_times.push_back(packet.gen_time);
    }

    if (batch.empty()) {
      // Idle until the next packet appears anywhere.
      now = next_birth_;
      continue;
    }

    const BatchRoutingResult routed = route_batch_greedy(cube_, batch, now);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (gen_times[i] >= warmup && routed.completion_times[i] <= horizon) {
        delay_.add(routed.completion_times[i] - gen_times[i]);
        ++deliveries_window_;
      }
    }
    const double length = routed.makespan - now;
    if (length > 0.0) round_length_.add(length);
    now = routed.makespan > now ? routed.makespan : now + 1.0;

    if (now >= warmup) {
      std::uint64_t waiting = 0;
      for (const auto& queue : node_queue_) waiting += queue.size();
      backlog_samples_.add(static_cast<double>(waiting));
    }
  }

  backlog_ = 0;
  for (const auto& queue : node_queue_) backlog_ += queue.size();
}

void register_pipelined_baseline_scheme(SchemeRegistry& registry) {
  registry.add(
      {"pipelined_baseline",
       "non-greedy pipelined rounds of the Valiant-Brebner first phase "
       "(§2.3; stable only for lambda*R*d < 1)",
       [](const Scenario& s) {
         CompiledScenario compiled;
         const Window window = s.resolved_window();
         compiled.replicate = [s, window, dist = s.make_destinations()](
                                  std::uint64_t seed, int) {
           PipelinedBaselineConfig config;
           config.d = s.d;
           config.lambda = s.lambda;
           config.destinations = dist;
           config.seed = seed;
           PipelinedBaselineSim sim(config);
           sim.run(window.warmup, window.horizon);
           const double window_length = window.horizon - window.warmup;
           return std::vector<double>{
               sim.delay().mean(),
               sim.backlog_at_rounds().mean(),
               window_length > 0.0
                   ? static_cast<double>(sim.deliveries_in_window()) / window_length
                   : 0.0,
               0.0,
               0.0,
               static_cast<double>(sim.backlog()),
               sim.round_length().mean() / static_cast<double>(s.d)};
         };
         compiled.extra_metrics = {"round_over_d"};
         return compiled;
       }});
}

}  // namespace routesim
