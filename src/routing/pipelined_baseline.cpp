#include "routing/pipelined_baseline.hpp"

#include "core/registry.hpp"

#include "routing/batch_router.hpp"
#include "util/assert.hpp"
#include "util/distributions.hpp"

namespace routesim {

PipelinedBaselineSim::PipelinedBaselineSim(PipelinedBaselineConfig config) {
  reset(std::move(config));
}

void PipelinedBaselineSim::reset(PipelinedBaselineConfig config) {
  config_ = std::move(config);
  RS_EXPECTS(config_.lambda > 0.0);
  RS_EXPECTS(config_.destinations.dimension() == config_.d);
  cube_ = Hypercube(config_.d);
  RS_EXPECTS_MSG(config_.fixed_destinations == nullptr ||
                     config_.fixed_destinations->size() == cube_.num_nodes(),
                 "fixed-destination table must have 2^d entries");
  rng_.reseed(derive_stream(config_.seed, 0xBA5E));
  node_queue_.resize(cube_.num_nodes());
  for (auto& queue : node_queue_) queue.clear();
  round_length_ = backlog_samples_ = Summary{};
  backlog_ = 0;
  next_birth_ = sample_exponential(
      rng_, config_.lambda * static_cast<double>(cube_.num_nodes()));
}

void PipelinedBaselineSim::generate_until(double t) {
  const double total_rate = config_.lambda * static_cast<double>(cube_.num_nodes());
  while (next_birth_ <= t) {
    const auto origin = static_cast<NodeId>(rng_.uniform_below(cube_.num_nodes()));
    const NodeId dest = config_.fixed_destinations != nullptr
                            ? (*config_.fixed_destinations)[origin]
                            : config_.destinations.sample(rng_, origin);
    node_queue_[origin].push_back(Waiting{next_birth_, dest});
    next_birth_ += sample_exponential(rng_, total_rate);
  }
}

void PipelinedBaselineSim::run(double warmup, double horizon) {
  RS_EXPECTS(warmup >= 0.0 && warmup <= horizon);
  stats_.begin(warmup, horizon);
  double now = 0.0;

  while (now < horizon) {
    generate_until(now);

    // Select one waiting packet per node (§2.3); record who waits.
    std::vector<BatchPacket> batch;
    std::vector<double> gen_times;
    batch.reserve(cube_.num_nodes());
    for (NodeId node = 0; node < cube_.num_nodes(); ++node) {
      auto& queue = node_queue_[node];
      if (queue.empty()) continue;
      const Waiting packet = queue.front();
      queue.pop_front();
      batch.push_back(BatchPacket{node, packet.destination});
      gen_times.push_back(packet.gen_time);
    }

    if (batch.empty()) {
      now = next_birth_;  // idle until the next packet appears anywhere
      continue;
    }

    const BatchRoutingResult routed = route_batch_greedy(cube_, batch, now);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (routed.completion_times[i] <= horizon) {
        stats_.record_delivery(routed.completion_times[i], gen_times[i], 0.0);
      }
    }
    if (routed.makespan > now) round_length_.add(routed.makespan - now);
    now = routed.makespan > now ? routed.makespan : now + 1.0;

    if (now >= warmup) {
      std::uint64_t waiting = 0;
      for (const auto& queue : node_queue_) waiting += queue.size();
      backlog_samples_.add(static_cast<double>(waiting));
    }
  }

  stats_.finalize(warmup, horizon, /*pending_reset=*/false);
  backlog_ = 0;
  for (const auto& queue : node_queue_) backlog_ += queue.size();
}

void register_pipelined_baseline_scheme(SchemeRegistry& registry) {
  registry.add(
      {"pipelined_baseline",
       "non-greedy pipelined rounds of the Valiant-Brebner first phase "
       "(§2.3; stable only for lambda*R*d < 1)",
       [](const Scenario& s) {
         CompiledScenario compiled;
         (void)s.resolved_topology({"hypercube"});  // hypercube-native
         (void)s.resolved_fault_policy({});  // no fault support: reject knobs
         (void)s.resolved_backend({});       // scalar-only: reject soa_batch
         const auto perm = s.shared_permutation_table();
         const Window window = s.resolved_window();
         compiled.replicate = [s, window, perm, dist = s.make_destinations()](
                                  std::uint64_t seed, int) {
           PipelinedBaselineConfig config;
           config.d = s.d;
           config.lambda = s.lambda;
           config.destinations = dist;
           config.fixed_destinations = perm ? perm.get() : nullptr;
           config.seed = seed;
           PipelinedBaselineSim& sim =
               reusable_sim<PipelinedBaselineSim>(std::move(config));
           sim.run(window.warmup, window.horizon);
           return std::vector<double>{
               sim.delay().mean(), sim.backlog_at_rounds().mean(),
               sim.throughput(), 0.0, 0.0,
               static_cast<double>(sim.backlog()),
               sim.round_length().mean() / static_cast<double>(s.d)};
         };
         compiled.extra_metrics = {"round_over_d"};
         return compiled;
       }});
}

}  // namespace routesim
