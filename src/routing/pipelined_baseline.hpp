#pragma once
/// \file pipelined_baseline.hpp
/// \brief The non-greedy baseline of §2.3: pipelined rounds of the
///        Valiant-Brebner first phase.
///
/// At each round boundary every node selects (at most) one of its waiting
/// packets; all selected packets are routed greedily to their destinations
/// on an otherwise idle network, and the next round starts only when the
/// previous round has completely finished (global synchronisation; the
/// termination-detection overhead is ignored, as in the paper).  Each node
/// therefore behaves like an M/G/1 queue whose service time is the round
/// length (~ R*d), so the scheme is stable only for lambda * R * d < 1 —
/// i.e. the stability region shrinks like 1/d, in stark contrast with the
/// greedy scheme's full region rho < 1.  This class measures both the delay
/// and the empirical round length (the paper's constant R is *measured*,
/// not assumed).
///
/// Round-stepped, so no event set is needed; delay / delivery accounting
/// goes through the shared KernelStats of des/packet_kernel.hpp.

#include <cstdint>
#include <deque>
#include <vector>

#include "des/packet_kernel.hpp"
#include "stats/summary.hpp"
#include "topology/hypercube.hpp"
#include "util/rng.hpp"
#include "workload/destination.hpp"

namespace routesim {

struct PipelinedBaselineConfig {
  int d = 4;
  double lambda = 0.01;  ///< per-node Poisson generation rate
  DestinationDistribution destinations = DestinationDistribution::uniform(4);
  /// Per-source fixed destinations (workload = permutation); non-owning,
  /// 2^d entries, null = sample from `destinations`.
  const std::vector<NodeId>* fixed_destinations = nullptr;
  std::uint64_t seed = 1;
};

class PipelinedBaselineSim {
 public:
  explicit PipelinedBaselineSim(PipelinedBaselineConfig config);

  /// Reconfigures for another replication, reusing storage.
  void reset(PipelinedBaselineConfig config);

  /// Simulates rounds until the round clock passes `horizon`; delay
  /// statistics cover packets generated in [warmup, horizon].
  void run(double warmup, double horizon);

  /// Per-packet delay: generation to delivery (includes waiting through
  /// whole rounds at the origin).
  [[nodiscard]] const Summary& delay() const noexcept { return stats_.delay(); }

  /// Length of each executed (non-empty) round; mean/d estimates R.
  [[nodiscard]] const Summary& round_length() const noexcept { return round_length_; }

  /// Packets still waiting at their origins when the horizon was reached.
  [[nodiscard]] std::uint64_t backlog() const noexcept { return backlog_; }

  /// Number of packets delivered within the measurement window.
  [[nodiscard]] std::uint64_t deliveries_in_window() const noexcept {
    return stats_.deliveries_in_window();
  }

  /// Deliveries per time unit over the measurement window.
  [[nodiscard]] double throughput() const noexcept { return stats_.throughput(); }

  /// Mean backlog sampled at round boundaries after warm-up.
  [[nodiscard]] const Summary& backlog_at_rounds() const noexcept {
    return backlog_samples_;
  }

 private:
  struct Waiting {
    double gen_time;
    NodeId destination;
  };

  void generate_until(double t);

  PipelinedBaselineConfig config_;
  Hypercube cube_{1};  ///< placeholder; reset() installs the real topology
  Rng rng_;
  std::vector<std::deque<Waiting>> node_queue_;
  double next_birth_ = 0.0;

  KernelStats stats_;
  Summary round_length_;
  Summary backlog_samples_;
  std::uint64_t backlog_ = 0;
};

class SchemeRegistry;

/// core/registry.hpp hookup: registers "pipelined_baseline" (§2.3) with
/// extra metric round_over_d (the measured constant R).
void register_pipelined_baseline_scheme(SchemeRegistry& registry);

}  // namespace routesim
