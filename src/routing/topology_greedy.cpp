#include "routing/topology_greedy.hpp"

#include "core/registry.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/assert.hpp"
#include "util/distributions.hpp"
#include "workload/permutation.hpp"

namespace routesim {

namespace {

/// Per-scheme RNG stream salts, mirroring the native schemes' 0xC0BE /
/// 0x3A1A / 0xDEF1 (a different topology must not replay the hypercube's
/// draw sequence).
constexpr std::uint64_t kGreedySalt = 0x7090;
constexpr std::uint64_t kValiantSalt = 0x7091;
constexpr std::uint64_t kDeflectionSalt = 0xDEF2;

}  // namespace

TopologyGreedySim::TopologyGreedySim(TopologyRoutingConfig config)
    : config_(std::move(config)) {
  configure_kernel();
}

void TopologyGreedySim::reset(TopologyRoutingConfig config) {
  config_ = std::move(config);
  configure_kernel();
}

void TopologyGreedySim::configure_kernel() {
  topo_ = make_topology(config_.spec);
  RS_EXPECTS(config_.lambda > 0.0);
  if (config_.slot > 0.0) {
    const double inv = 1.0 / config_.slot;
    RS_EXPECTS_MSG(config_.slot <= 1.0 && std::abs(inv - std::round(inv)) < 1e-9,
                   "slot length must satisfy: 1/slot integer, slot <= 1 (§3.4)");
  }
  if (config_.fixed_destinations != nullptr) {
    RS_EXPECTS_MSG(config_.fixed_destinations->size() == topo_->num_nodes(),
                   "fixed-destination table must have num_nodes entries");
  }

  const int diameter = std::max(1, topo_->diameter());
  PacketKernelConfig kernel;
  kernel.num_arcs = topo_->num_arcs();
  kernel.seed = config_.seed;
  kernel.stream_salt = config_.valiant ? kValiantSalt : kGreedySalt;
  kernel.birth_rate =
      config_.lambda * static_cast<double>(topo_->num_nodes());
  kernel.slot = config_.slot;
  kernel.fixed_destinations = config_.fixed_destinations;
  kernel.buffer_capacity = config_.buffer_capacity;
  // In-flight packets ~ (aggregate rate) x (delay ~ O(diameter)) at
  // moderate load; mixing doubles the path length.
  kernel.expected_packets = static_cast<std::size_t>(
      kernel.birth_rate * (config_.valiant ? 2.0 : 1.0) *
          static_cast<double>(diameter)) + 64;
  if (config_.track_node_occupancy) {
    kernel.stats.occupancy_trackers = topo_->num_nodes();
  }
  if (config_.track_delay_histogram) {
    enable_delay_tail_tracking(kernel.stats, diameter);
  }
  kernel_.configure(kernel);
}

void TopologyGreedySim::on_spawn(double now) {
  const auto origin =
      static_cast<NodeId>(kernel_.rng().uniform_below(topo_->num_nodes()));
  const NodeId dest =
      kernel_.has_fixed_destinations()
          ? kernel_.fixed_destination(origin)
          : static_cast<NodeId>(kernel_.rng().uniform_below(topo_->num_nodes()));
  inject(now, origin, dest);
}

void TopologyGreedySim::on_traced(double now, NodeId origin, NodeId dest) {
  inject(now, origin, dest);
}

void TopologyGreedySim::inject(double now, NodeId origin, NodeId dest) {
  kernel_.count_arrival(now);
  const std::uint32_t id = kernel_.allocate_packet();
  NodeId target = dest;
  std::uint8_t phase = 1;
  int min_hops = 0;
  if (config_.valiant) {
    const auto intermediate =
        static_cast<NodeId>(kernel_.rng().uniform_below(topo_->num_nodes()));
    min_hops = topo_->metric(origin, intermediate) +
               topo_->metric(intermediate, dest);
    if (intermediate != origin) {
      target = intermediate;
      phase = 0;
    }
  } else {
    min_hops = topo_->metric(origin, dest);
  }
  kernel_.packet(id) = Pkt{origin,   target, dest, now, 0, phase,
                           static_cast<std::uint16_t>(min_hops)};
  if (phase == 1 && origin == target) {
    // A packet for its own origin needs no transmission (delay 0).
    kernel_.deliver(now, id, now, 0.0);
    return;
  }
  kernel_.enqueue(now, topo_->greedy_next_arc(origin, target), id,
                  /*external=*/true, origin);
}

void TopologyGreedySim::on_arc_done(double now, ArcId arc) {
  const std::uint32_t pkt = kernel_.finish_arc(now, arc, topo_->arc_source(arc));

  Pkt& packet = kernel_.packet(pkt);
  packet.cur = topo_->arc_target(arc);
  ++packet.hop_count;
  if (packet.cur == packet.target) {
    if (packet.phase == 1) {
      deliver(now, pkt);
      return;
    }
    // Reached the random intermediate node: head for the destination.
    packet.phase = 1;
    packet.target = packet.final_dest;
    if (packet.cur == packet.target) {
      deliver(now, pkt);
      return;
    }
  }
  kernel_.enqueue(now, topo_->greedy_next_arc(packet.cur, packet.target), pkt,
                  /*external=*/false, packet.cur);
}

void TopologyGreedySim::deliver(double now, std::uint32_t pkt) {
  const Pkt& packet = kernel_.packet(pkt);
  const double stretch =
      packet.min_hops > 0
          ? static_cast<double>(packet.hop_count) / packet.min_hops
          : 0.0;
  kernel_.deliver(now, pkt, packet.gen_time,
                  static_cast<double>(packet.hop_count), stretch);
}

void TopologyGreedySim::run(double warmup, double horizon) {
  kernel_.drive(*this, warmup, horizon);
}

TopologyDeflectionSim::TopologyDeflectionSim(TopologyRoutingConfig config) {
  reset(std::move(config));
}

void TopologyDeflectionSim::reset(TopologyRoutingConfig config) {
  config_ = std::move(config);
  topo_ = make_topology(config_.spec);
  RS_EXPECTS(config_.lambda > 0.0);
  RS_EXPECTS_MSG(config_.fixed_destinations == nullptr ||
                     config_.fixed_destinations->size() == topo_->num_nodes(),
                 "fixed-destination table must have num_nodes entries");
  rng_.reseed(derive_stream(config_.seed, kDeflectionSalt));
  resident_.assign(topo_->num_nodes(), {});
  injection_.assign(topo_->num_nodes(), {});
  productive_ = deflected_ = backlog_ = 0;

  // Tail metrics (delay_p50/p99) come from the delay histogram.
  KernelStats::Config stats;
  enable_delay_tail_tracking(stats, std::max(1, topo_->diameter()));
  stats_.configure(stats);
}

void TopologyDeflectionSim::run(std::uint64_t warmup_slots,
                                std::uint64_t num_slots) {
  RS_EXPECTS(warmup_slots <= num_slots);
  const double warmup_time = static_cast<double>(warmup_slots);
  stats_.begin(warmup_time, static_cast<double>(num_slots));

  int max_degree = 0;
  for (NodeId node = 0; node < topo_->num_nodes(); ++node) {
    max_degree = std::max(max_degree, topo_->out_degree(node));
  }

  // Next-slot buffers, reused across slots.
  std::vector<std::vector<Pkt>> incoming(topo_->num_nodes());
  std::vector<int> port_used(static_cast<std::size_t>(max_degree));

  for (std::uint64_t slot = 0; slot < num_slots; ++slot) {
    const double now = static_cast<double>(slot);

    // 1. New packets join their origin's injection queue.
    for (NodeId node = 0; node < topo_->num_nodes(); ++node) {
      const std::uint64_t births = sample_poisson(rng_, config_.lambda);
      for (std::uint64_t b = 0; b < births; ++b) {
        const NodeId dest =
            config_.fixed_destinations != nullptr
                ? (*config_.fixed_destinations)[node]
                : static_cast<NodeId>(rng_.uniform_below(topo_->num_nodes()));
        if (dest == node) {
          // Delivered in place, delay 0 (consistent with the greedy model).
          stats_.record_delivery(now, now, 0.0);
          continue;
        }
        injection_.at(node).push_back(
            Pkt{dest, now, 0,
                static_cast<std::uint16_t>(topo_->metric(node, dest))});
      }
    }

    // 2. Admission: a node may hold at most one packet per out-port.
    for (NodeId node = 0; node < topo_->num_nodes(); ++node) {
      auto& residents = resident_[node];
      auto& waiting = injection_[node];
      const auto capacity = static_cast<std::size_t>(topo_->out_degree(node));
      while (residents.size() < capacity && !waiting.empty()) {
        residents.push_back(waiting.front());
        waiting.pop_front();
      }
    }

    // 3. Port assignment and synchronous transmission: oldest packets pick
    // first, preferring the lowest metric-decreasing free port, else the
    // lowest free port (a deflection).
    for (NodeId node = 0; node < topo_->num_nodes(); ++node) {
      auto& residents = resident_[node];
      if (residents.empty()) continue;
      std::stable_sort(residents.begin(), residents.end(),
                       [](const Pkt& a, const Pkt& b) { return a.gen_time < b.gen_time; });
      const int degree = topo_->out_degree(node);
      std::fill(port_used.begin(), port_used.begin() + degree, 0);
      for (auto& packet : residents) {
        const int here = topo_->metric(node, packet.dest);
        int chosen = -1;
        for (int k = 0; k < degree; ++k) {
          if (port_used[k] == 0 &&
              topo_->metric(topo_->arc_target(topo_->out_arc(node, k)),
                            packet.dest) < here) {
            chosen = k;
            break;
          }
        }
        const bool productive = chosen >= 0;
        if (!productive) {
          for (int k = 0; k < degree; ++k) {
            if (port_used[k] == 0) {
              chosen = k;
              break;
            }
          }
        }
        // Admission caps residents at the port count, so a port is free.
        RS_DASSERT(chosen >= 0);
        port_used[chosen] = 1;
        productive ? ++productive_ : ++deflected_;
        ++packet.hops;
        const NodeId next = topo_->arc_target(topo_->out_arc(node, chosen));
        if (productive && next == packet.dest) {
          const double stretch =
              packet.min_hops > 0
                  ? static_cast<double>(packet.hops) / packet.min_hops
                  : 0.0;
          stats_.record_delivery(now + 1.0, packet.gen_time,
                                 static_cast<double>(packet.hops), stretch);
        } else {
          incoming[next].push_back(packet);
        }
      }
      residents.clear();
    }
    for (NodeId node = 0; node < topo_->num_nodes(); ++node) {
      resident_[node].swap(incoming[node]);
      incoming[node].clear();
    }
  }

  stats_.finalize(warmup_time, static_cast<double>(num_slots),
                  /*pending_reset=*/false);
  backlog_ = 0;
  for (const auto& queue : injection_) backlog_ += queue.size();
  for (const auto& residents : resident_) backlog_ += residents.size();
}

namespace {

TopologySpec generic_spec(const Scenario& s, const std::string& name) {
  TopologySpec spec;
  spec.name = name;
  spec.d = s.d;
  spec.ring_chords = s.ring_chords;
  spec.torus_dims = s.torus_dims;
  return spec;
}

/// Shared compile-time validation for the topology-parametric paths: the
/// dispatching scheme has already resolved the topology name; here the
/// hypercube-native knobs (faults, traces, XOR-mask workloads, soa_batch)
/// are rejected as catchable ScenarioErrors and the topology itself is
/// built once so size errors surface before the worker fan-out.
std::string validated_generic_name(const Scenario& s) {
  const std::string name =
      s.resolved_topology({"hypercube", "ring", "torus", "mesh"});
  (void)s.resolved_fault_policy({});  // faults are native-only
  (void)s.resolved_backend({});       // scalar-only: reject soa_batch
  if (s.workload == "permutation") {
    if (name != "ring") {
      throw ScenarioError(
          "workload=permutation needs 2^d nodes; among the generic "
          "topologies only the ring has them (topology=" + name + ")");
    }
  } else if (s.workload != "uniform") {
    throw ScenarioError(
        "workload '" + s.workload + "' is hypercube-native; topology=" +
        name + " supports workload=uniform (and permutation on the ring)");
  }
  try {
    (void)make_topology(generic_spec(s, name));
  } catch (const std::invalid_argument& error) {
    throw ScenarioError(error.what());
  }
  return name;
}

}  // namespace

CompiledScenario compile_topology_greedy(const Scenario& s) {
  CompiledScenario compiled;
  const std::string name = validated_generic_name(s);
  const auto perm = s.shared_permutation_table();
  const Window window = s.resolved_window();
  compiled.replicate = [s, name, window, perm](std::uint64_t seed, int) {
    TopologyRoutingConfig config;
    config.spec = generic_spec(s, name);
    config.lambda = s.lambda;
    config.seed = seed;
    config.slot = s.tau;
    config.buffer_capacity = s.buffer_capacity;
    config.fixed_destinations = perm ? perm.get() : nullptr;
    // Permutation runs track per-node occupancy for the max_queue extra.
    config.track_node_occupancy = perm != nullptr;
    // Tail metrics (delay_p50/p99) come from the delay histogram.
    config.track_delay_histogram = true;
    TopologyGreedySim& sim =
        reusable_sim<TopologyGreedySim>(std::move(config));
    sim.run(window.warmup, window.horizon);
    const KernelStats& stats = sim.kernel_stats();
    std::vector<double> metrics{
        sim.delay().mean(),          sim.time_avg_population(),
        sim.throughput(),            sim.hops().mean(),
        sim.little_check().relative_error(), sim.final_population(),
        stats.delivery_ratio(),      stats.mean_stretch(),
        stats.delay_quantile(0.5),   stats.delay_quantile(0.99),
        static_cast<double>(stats.fault_drops_in_window()),
        static_cast<double>(stats.drops_in_window())};
    if (perm) metrics.push_back(stats.max_occupancy());
    return metrics;
  };
  compiled.extra_metrics = {"delivery_ratio", "mean_stretch",
                            "delay_p50",      "delay_p99",
                            "fault_drops",    "buffer_drops"};
  if (perm) compiled.extra_metrics.emplace_back("max_queue");
  // No closed-form bracket: the paper's delay bounds are hypercube and
  // butterfly theorems.
  return compiled;
}

CompiledScenario compile_topology_valiant(const Scenario& s) {
  CompiledScenario compiled;
  const std::string name = validated_generic_name(s);
  const auto perm = s.shared_permutation_table();
  const Window window = s.resolved_window();
  compiled.replicate = [s, name, window, perm](std::uint64_t seed, int) {
    TopologyRoutingConfig config;
    config.spec = generic_spec(s, name);
    config.lambda = s.lambda;
    config.seed = seed;
    config.valiant = true;
    config.fixed_destinations = perm ? perm.get() : nullptr;
    config.track_delay_histogram = true;
    TopologyGreedySim& sim =
        reusable_sim<TopologyGreedySim>(std::move(config));
    sim.run(window.warmup, window.horizon);
    const KernelStats& stats = sim.kernel_stats();
    return std::vector<double>{
        sim.delay().mean(),          sim.time_avg_population(),
        sim.throughput(),            sim.hops().mean(),
        sim.little_check().relative_error(), sim.final_population(),
        stats.delivery_ratio(),      stats.mean_stretch(),
        stats.delay_quantile(0.5),   stats.delay_quantile(0.99),
        static_cast<double>(stats.fault_drops_in_window()),
        static_cast<double>(stats.drops_in_window())};
  };
  compiled.extra_metrics = {"delivery_ratio", "mean_stretch",
                            "delay_p50",      "delay_p99",
                            "fault_drops",    "buffer_drops"};
  return compiled;
}

CompiledScenario compile_topology_deflection(const Scenario& s) {
  CompiledScenario compiled;
  const std::string name = validated_generic_name(s);
  const auto perm = s.shared_permutation_table();
  const Window window = s.resolved_window();
  compiled.replicate = [s, name, window, perm](std::uint64_t seed, int) {
    TopologyRoutingConfig config;
    config.spec = generic_spec(s, name);
    config.lambda = s.lambda;
    config.seed = seed;
    config.fixed_destinations = perm ? perm.get() : nullptr;
    TopologyDeflectionSim& sim =
        reusable_sim<TopologyDeflectionSim>(std::move(config));
    const auto warmup_slots = static_cast<std::uint64_t>(window.warmup);
    const auto num_slots = static_cast<std::uint64_t>(window.horizon);
    sim.run(warmup_slots, num_slots);
    const KernelStats& stats = sim.kernel_stats();
    return std::vector<double>{
        sim.delay().mean(),
        0.0,
        sim.throughput(),
        sim.hops().mean(),
        0.0,
        static_cast<double>(sim.injection_backlog()),
        sim.deflection_fraction(),
        stats.delivery_ratio(),
        stats.mean_stretch(),
        stats.delay_quantile(0.5),
        stats.delay_quantile(0.99),
        static_cast<double>(stats.fault_drops_in_window())};
  };
  compiled.extra_metrics = {"deflection_fraction", "delivery_ratio",
                            "mean_stretch",        "delay_p50",
                            "delay_p99",           "fault_drops"};
  return compiled;
}

}  // namespace routesim
