#pragma once
/// \file topology_greedy.hpp
/// \brief Topology-parametric routing simulators: greedy metric descent and
///        its Valiant-mixing / deflection variants over any `Topology`.
///
/// These sims are what `hypercube_greedy`, `valiant_mixing` and
/// `deflection` dispatch to when a scenario selects a non-native topology
/// (topology=ring / torus / mesh).  They reuse the shared packet kernel
/// (des/packet_kernel.hpp) and the deflection slot loop wholesale; the only
/// scheme-specific ingredient is `Topology::greedy_next_arc`, so one
/// implementation serves every family the concept admits.
///
/// The hypercube and butterfly keep their specialised simulators — those
/// are the paper's bit-exactness oracle (tests/test_kernel_parity.cpp) and
/// the conformance kit certifies the concept adapters agree with them.
///
/// Workloads: uniform destinations over all nodes (sampled directly from
/// the kernel RNG — the XOR-mask DestinationDistribution is a hypercube
/// notion), plus fixed-destination permutation tables on the ring (whose
/// 2^d nodes match the permutation families).  Faults, traces and the
/// soa_batch backend stay native-only; the compile helpers below reject
/// them with catchable ScenarioErrors.

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "des/packet_kernel.hpp"
#include "stats/histogram.hpp"
#include "stats/little.hpp"
#include "stats/summary.hpp"
#include "topology/topology.hpp"

namespace routesim {

struct TopologyRoutingConfig {
  TopologySpec spec;
  double lambda = 0.1;  ///< packet generation rate per node
  std::uint64_t seed = 1;
  /// 0 => continuous time; > 0 => slotted arrivals (greedy mode only).
  double slot = 0.0;
  /// Route via a uniform random intermediate node (Valiant's trick) before
  /// heading to the destination; evens out adversarial workloads such as
  /// the ring's tornado permutation.
  bool valiant = false;
  /// Per-source fixed destinations (workload = permutation); entry x is the
  /// destination of packets generated at node x.  Non-owning; num_nodes()
  /// entries; null = uniform destinations.
  const std::vector<NodeId>* fixed_destinations = nullptr;
  /// Finite-buffer ablation; 0 = infinite buffers.
  std::uint32_t buffer_capacity = 0;
  /// Track a time-weighted occupancy per node.
  bool track_node_occupancy = false;
  /// Collect a delay histogram (bin width 1, range [0, 64*diameter]).
  bool track_delay_histogram = false;
};

/// Greedy metric descent (optionally via a Valiant intermediate) over any
/// Topology, on the shared packet kernel: store-and-forward, one packet per
/// arc at a time, FIFO queues, unit transmission times.
class TopologyGreedySim {
 public:
  explicit TopologyGreedySim(TopologyRoutingConfig config);

  /// Reconfigures for another replication, reusing kernel storage.
  void reset(TopologyRoutingConfig config);

  /// Simulates [0, horizon]; statistics cover [warmup, horizon].
  void run(double warmup, double horizon);

  // --- results (valid after run()) ---

  [[nodiscard]] const Summary& delay() const noexcept { return kernel_.stats().delay(); }
  [[nodiscard]] const Summary& hops() const noexcept { return kernel_.stats().hops(); }
  [[nodiscard]] double time_avg_population() const noexcept {
    return kernel_.stats().time_avg_population();
  }
  [[nodiscard]] double final_population() const noexcept {
    return kernel_.stats().final_population();
  }
  [[nodiscard]] double throughput() const noexcept {
    return kernel_.stats().throughput();
  }
  [[nodiscard]] LittleCheck little_check() const noexcept {
    return kernel_.stats().little_check();
  }
  [[nodiscard]] double max_node_occupancy() const noexcept {
    return kernel_.stats().max_occupancy();
  }
  [[nodiscard]] const KernelStats& kernel_stats() const noexcept {
    return kernel_.stats();
  }
  [[nodiscard]] const std::vector<ArcCounters>& arc_counters() const noexcept {
    return kernel_.arc_counters();
  }
  [[nodiscard]] const Topology& topology() const noexcept { return *topo_; }

  // --- kernel hooks (called by PacketKernel::drive) ---

  void on_spawn(double now);
  void on_traced(double now, NodeId origin, NodeId dest);
  void on_arc_done(double now, ArcId arc);

 private:
  struct Pkt {
    NodeId cur = 0;
    NodeId target = 0;      ///< current phase's goal (intermediate, then dest)
    NodeId final_dest = 0;
    double gen_time = 0.0;
    std::uint16_t hop_count = 0;
    std::uint8_t phase = 0;  ///< 0 = toward intermediate, 1 = toward dest
    std::uint16_t min_hops = 0;  ///< metric along the routed path — stretch baseline
  };

  void configure_kernel();
  void inject(double now, NodeId origin, NodeId dest);
  void deliver(double now, std::uint32_t pkt);

  TopologyRoutingConfig config_;
  std::unique_ptr<const Topology> topo_;
  PacketKernel<Pkt> kernel_;
};

/// Bufferless hot-potato routing over any Topology: the topology-parametric
/// mirror of DeflectionSim (routing/deflection.hpp).  Each node owns one
/// port per out-arc; per slot, oldest packets pick first, preferring the
/// lowest-index metric-decreasing port, else the lowest free port.
class TopologyDeflectionSim {
 public:
  explicit TopologyDeflectionSim(TopologyRoutingConfig config);

  void reset(TopologyRoutingConfig config);

  /// Runs slots [0, num_slots); statistics cover [warmup_slots, num_slots).
  void run(std::uint64_t warmup_slots, std::uint64_t num_slots);

  [[nodiscard]] const Summary& delay() const noexcept { return stats_.delay(); }
  [[nodiscard]] const Summary& hops() const noexcept { return stats_.hops(); }
  [[nodiscard]] double throughput() const noexcept { return stats_.throughput(); }
  [[nodiscard]] const KernelStats& kernel_stats() const noexcept { return stats_; }
  /// Fraction of transmissions that were deflections (metric went up).
  [[nodiscard]] double deflection_fraction() const noexcept {
    const double total = static_cast<double>(productive_ + deflected_);
    return total > 0.0 ? static_cast<double>(deflected_) / total : 0.0;
  }
  /// Packets still waiting in injection queues (or in flight) at the end.
  [[nodiscard]] std::uint64_t injection_backlog() const noexcept {
    return backlog_;
  }
  [[nodiscard]] const Topology& topology() const noexcept { return *topo_; }

 private:
  struct Pkt {
    NodeId dest = 0;
    double gen_time = 0.0;
    std::uint16_t hops = 0;
    std::uint16_t min_hops = 0;
  };

  TopologyRoutingConfig config_;
  std::unique_ptr<const Topology> topo_;
  Rng rng_;
  std::vector<std::vector<Pkt>> resident_;
  std::vector<std::deque<Pkt>> injection_;
  KernelStats stats_;
  std::uint64_t productive_ = 0;
  std::uint64_t deflected_ = 0;
  std::uint64_t backlog_ = 0;
};

struct CompiledScenario;
class Scenario;

/// Compile hooks the native schemes dispatch to for non-native topologies
/// (defined in topology_greedy.cpp).  Each validates the scenario's knob
/// combination — faults, traces and backend=soa_batch are rejected with
/// catchable ScenarioErrors; workload must be uniform (or a permutation on
/// the ring) — and mirrors the native scheme's metric layout and extras.
[[nodiscard]] CompiledScenario compile_topology_greedy(const Scenario& s);
[[nodiscard]] CompiledScenario compile_topology_valiant(const Scenario& s);
[[nodiscard]] CompiledScenario compile_topology_deflection(const Scenario& s);

}  // namespace routesim
