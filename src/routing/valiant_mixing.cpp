#include "routing/valiant_mixing.hpp"

#include "core/registry.hpp"

#include <algorithm>
#include <utility>

#include "fault/fault_routing.hpp"
#include "routing/topology_greedy.hpp"
#include "util/assert.hpp"
#include "util/distributions.hpp"
#include "workload/permutation.hpp"

namespace routesim {

ValiantMixingSim::ValiantMixingSim(ValiantMixingConfig config)
    : config_(std::move(config)), cube_(config_.d) {
  configure_kernel();
}

void ValiantMixingSim::reset(ValiantMixingConfig config) {
  config_ = std::move(config);
  cube_ = Hypercube(config_.d);
  configure_kernel();
}

void ValiantMixingSim::configure_kernel() {
  RS_EXPECTS(config_.destinations.dimension() == config_.d);
  if (config_.trace == nullptr) RS_EXPECTS(config_.lambda > 0.0);
  fault_active_ = config_.fault_policy != FaultPolicy::kNone;
  RS_EXPECTS_MSG(fault_active_ || (config_.arc_fault_rate == 0.0 &&
                                   config_.node_fault_rate == 0.0 &&
                                   config_.fault_mtbf == 0.0 &&
                                   config_.fault_mttr == 0.0 &&
                                   config_.storm_rate == 0.0 &&
                                   config_.storm_duration == 0.0),
                 "fault rates need a fault_policy");
  RS_EXPECTS_MSG(config_.fault_policy != FaultPolicy::kTwinDetour,
                 "twin_detour is a butterfly policy; valiant_mixing supports "
                 "drop, skip_dim, deflect and adaptive");
  ttl_ = config_.ttl > 0 ? config_.ttl : 64 * config_.d;
  // Hop counters are 16-bit; a larger TTL could never fire (wraparound).
  ttl_ = std::min(ttl_, 65535);

  PacketKernelConfig kernel;
  kernel.num_arcs = cube_.num_arcs();
  kernel.seed = config_.seed;
  kernel.stream_salt = 0x3A1A;
  if (config_.fixed_destinations != nullptr) {
    RS_EXPECTS_MSG(config_.fixed_destinations->size() == cube_.num_nodes(),
                   "fixed-destination table must have 2^d entries");
  }
  kernel.birth_rate = config_.lambda * static_cast<double>(cube_.num_nodes());
  kernel.trace = config_.trace;
  kernel.fixed_destinations = config_.fixed_destinations;
  // Mixing doubles the path length, so roughly twice the packets in flight.
  if (config_.trace == nullptr) {
    kernel.expected_packets =
        static_cast<std::size_t>(kernel.birth_rate * 2.0 * config_.d) + 64;
  }
  if (config_.track_delay_histogram) {
    enable_delay_tail_tracking(kernel.stats, config_.d);
  }
  if (fault_active_) {
    fault_model_.configure(
        make_fault_model_config(config_, cube_.num_arcs(), cube_.num_nodes()),
        [this](std::uint32_t node, std::vector<ArcId>& out) {
          cube_.append_incident_arcs(node, out);
        },
        [this](std::uint32_t node, std::vector<std::uint32_t>& out) {
          for (int dim = 1; dim <= config_.d; ++dim) {
            out.push_back(flip_dimension(node, dim));
          }
        });
    kernel.fault_model = &fault_model_;
  }
  kernel_.configure(kernel);
}

void ValiantMixingSim::on_spawn(double now) {
  const auto [origin, dest] =
      kernel_.sample_spawn(cube_.num_nodes(), config_.destinations);
  inject(now, origin, dest);
}

void ValiantMixingSim::on_traced(double now, NodeId origin, NodeId dest) {
  inject(now, origin, dest);
}

void ValiantMixingSim::inject(double now, NodeId origin, NodeId dest) {
  kernel_.count_arrival(now);
  const std::uint32_t id = kernel_.allocate_packet();
  const auto intermediate =
      static_cast<NodeId>(kernel_.rng().uniform_below(cube_.num_nodes()));
  const auto min_hops = static_cast<std::uint16_t>(
      hamming_distance(origin, intermediate) + hamming_distance(intermediate, dest));
  kernel_.packet(id) = Pkt{origin, intermediate, dest, now, 0, 0, min_hops};

  if (fault_active_ && fault_model_.is_node_faulty(origin)) {
    kernel_.drop_faulty(now, id);
    return;
  }
  Pkt& packet = kernel_.packet(id);
  if (origin == intermediate) {
    packet.phase = 1;
    packet.target = dest;
    if (origin == dest) {
      kernel_.deliver(now, id, now, 0.0);
      return;
    }
  }
  enqueue(now, id);
}

int ValiantMixingSim::next_dimension_faulty(const Pkt& packet) {
  // The greedy pick toward the phase target first; at zero fault rates the
  // chosen arc is always alive and the pristine path is reproduced.
  // Otherwise the shared skip-dimension machinery
  // (fault/fault_routing.hpp) applies the policy against the phase target.
  const NodeId unresolved = packet.cur ^ packet.target;
  const int preferred = lowest_dimension(unresolved);
  if (!kernel_.arc_faulty(cube_.arc_index(packet.cur, preferred))) {
    return preferred;
  }
  if (config_.fault_policy == FaultPolicy::kAdaptive) {
    return adaptive_reroute_dimension(
        config_.d, packet.cur, unresolved,
        [&](NodeId node, int dim) {
          return kernel_.arc_faulty(cube_.arc_index(node, dim));
        },
        kernel_.rng());
  }
  return fault_reroute_dimension(
      config_.fault_policy, config_.d, unresolved,
      [&](int dim) { return kernel_.arc_faulty(cube_.arc_index(packet.cur, dim)); },
      kernel_.rng());
}

void ValiantMixingSim::enqueue(double now, std::uint32_t pkt) {
  const Pkt& packet = kernel_.packet(pkt);
  if (fault_active_) {
    const int dim = next_dimension_faulty(packet);
    if (dim == 0) {
      kernel_.drop_faulty(now, pkt);
      return;
    }
    kernel_.enqueue(now, cube_.arc_index(packet.cur, dim), pkt,
                    /*external=*/false);
    return;
  }
  const int dim = lowest_dimension(packet.cur ^ packet.target);
  RS_DASSERT(dim >= 1);
  kernel_.enqueue(now, cube_.arc_index(packet.cur, dim), pkt, /*external=*/false);
}

void ValiantMixingSim::on_arc_done(double now, ArcId arc) {
  const std::uint32_t pkt = kernel_.finish_arc(now, arc);

  Pkt& packet = kernel_.packet(pkt);
  packet.cur = flip_dimension(packet.cur, cube_.arc_dimension(arc));
  ++packet.hop_count;
  if (packet.cur == packet.target) {
    if (packet.phase == 1) {
      const double stretch =
          packet.min_hops > 0
              ? static_cast<double>(packet.hop_count) / packet.min_hops
              : 0.0;
      kernel_.deliver(now, pkt, packet.gen_time,
                      static_cast<double>(packet.hop_count), stretch);
      return;
    }
    // Reached the random intermediate node: start phase 2 from dimension 1.
    packet.phase = 1;
    packet.target = packet.final_dest;
    if (packet.cur == packet.target) {
      const double stretch =
          packet.min_hops > 0
              ? static_cast<double>(packet.hop_count) / packet.min_hops
              : 0.0;
      kernel_.deliver(now, pkt, packet.gen_time,
                      static_cast<double>(packet.hop_count), stretch);
      return;
    }
  }
  if (fault_active_ && packet.hop_count >= ttl_) {
    kernel_.drop_faulty(now, pkt);
    return;
  }
  enqueue(now, pkt);
}

void ValiantMixingSim::run(double warmup, double horizon) {
  kernel_.drive(*this, warmup, horizon);
}

void register_valiant_mixing_scheme(SchemeRegistry& registry) {
  registry.add(
      {"valiant_mixing",
       "two-phase Valiant mixing: greedy to a random intermediate, then "
       "greedy to the destination (§5)",
       [](const Scenario& s) {
         // Non-native topologies route through the topology-parametric
         // simulator (same two-phase mixing over greedy_next_arc).
         if (s.resolved_topology({"hypercube", "ring", "torus", "mesh"}) !=
             "hypercube") {
           return compile_topology_valiant(s);
         }
         CompiledScenario compiled;
         // Validated here so a bad permutation or fault combination fails
         // at compile time, not inside a replication worker thread.
         const auto perm = s.shared_permutation_table();
         const auto replay = s.shared_trace();
         const Window window = s.resolved_window();
         const FaultPolicy fault_policy = s.resolved_fault_policy(
             {FaultPolicy::kDrop, FaultPolicy::kSkipDim, FaultPolicy::kDeflect,
              FaultPolicy::kAdaptive});
         (void)s.resolved_backend({});  // scalar-only: reject soa_batch
         compiled.replicate = [s, window, fault_policy, perm, replay,
                               dist = s.make_destinations()](
                                  std::uint64_t seed, int) {
           ValiantMixingConfig config;
           config.d = s.d;
           config.lambda = s.lambda;
           config.destinations = dist;
           config.seed = seed;
           config.fixed_destinations = perm ? perm.get() : nullptr;
           // Tail metrics (delay_p50/p99) come from the delay histogram.
           config.track_delay_histogram = true;
           if (fault_policy != FaultPolicy::kNone) {
             config.fault_policy = fault_policy;
             config.arc_fault_rate = s.fault_rate;
             config.node_fault_rate = s.node_fault_rate;
             config.fault_mtbf = s.fault_mtbf;
             config.fault_mttr = s.fault_mttr;
             config.storm_rate = s.storm_rate;
             config.storm_radius = s.storm_radius;
             config.storm_duration = s.storm_duration;
             config.ttl = s.ttl;
           }
           // Thread-local so the cached sim's trace pointer stays valid for
           // the sim's whole lifetime (and the buffers are reused per rep).
           thread_local PacketTrace trace;
           if (replay != nullptr) {
             // External trace file: every replication replays the same
             // recorded packet stream (the shared_ptr outlives the sims).
             config.trace = replay.get();
           } else if (s.workload == "trace") {
             trace = generate_hypercube_trace(s.d, s.lambda, config.destinations,
                                              window.horizon, seed);
             config.trace = &trace;
           }
           ValiantMixingSim& sim =
               reusable_sim<ValiantMixingSim>(std::move(config));
           sim.run(window.warmup, window.horizon);
           const KernelStats& stats = sim.kernel_stats();
           return std::vector<double>{
               sim.delay().mean(),          sim.time_avg_population(),
               sim.throughput(),            sim.hops().mean(),
               sim.little_check().relative_error(), sim.final_population(),
               stats.delivery_ratio(),      stats.mean_stretch(),
               stats.delay_quantile(0.5),   stats.delay_quantile(0.99),
               static_cast<double>(stats.fault_drops_in_window()),
               static_cast<double>(stats.drops_in_window())};
         };
         compiled.extra_metrics = {"delivery_ratio", "mean_stretch",
                                   "delay_p50",      "delay_p99",
                                   "fault_drops",    "buffer_drops"};
         // No closed-form bracket: the mixed network is not levelled, which
         // is the point of the comparison.
         return compiled;
       },
       [](const Scenario& s) {
         if (s.uses_generic_topology()) {
           // Mixing doubles the traffic over greedy arcs: each phase loads
           // the heaviest arc at ~lambda * uniform_load_per_lambda.
           return 2.0 * s.lambda *
                  s.compiled_topology()->uniform_load_per_lambda();
         }
         if (s.workload == "permutation") {
           // Mixing spreads any bijection uniformly: both phases load
           // every arc at ~lambda/2, so rho ~ lambda.  A non-bijective
           // map (hotspot) keeps its inherent fan-in bottleneck — the
           // hot node's d in-arcs must carry lambda * max_fan_in.  The
           // table comes from permutation_table() so bad knobs surface
           // as the same catchable ScenarioError every scheme throws.
           const double fan_in =
               static_cast<double>(max_fan_in(s.permutation_table()));
           return s.lambda * std::max(1.0, fan_in / static_cast<double>(s.d));
         }
         // Other workloads keep the engine's default rule.
         return s.default_rho();
       }});
}

}  // namespace routesim
