#include "routing/valiant_mixing.hpp"

#include "core/registry.hpp"

#include <utility>

#include "util/assert.hpp"
#include "util/distributions.hpp"

namespace routesim {

ValiantMixingSim::ValiantMixingSim(ValiantMixingConfig config)
    : config_(std::move(config)), cube_(config_.d) {
  configure_kernel();
}

void ValiantMixingSim::reset(ValiantMixingConfig config) {
  config_ = std::move(config);
  cube_ = Hypercube(config_.d);
  configure_kernel();
}

void ValiantMixingSim::configure_kernel() {
  RS_EXPECTS(config_.destinations.dimension() == config_.d);
  if (config_.trace == nullptr) RS_EXPECTS(config_.lambda > 0.0);

  PacketKernelConfig kernel;
  kernel.num_arcs = cube_.num_arcs();
  kernel.seed = config_.seed;
  kernel.stream_salt = 0x3A1A;
  kernel.birth_rate = config_.lambda * static_cast<double>(cube_.num_nodes());
  kernel.trace = config_.trace;
  // Mixing doubles the path length, so roughly twice the packets in flight.
  if (config_.trace == nullptr) {
    kernel.expected_packets =
        static_cast<std::size_t>(kernel.birth_rate * 2.0 * config_.d) + 64;
  }
  kernel_.configure(kernel);
}

void ValiantMixingSim::on_spawn(double now) {
  const auto origin = static_cast<NodeId>(kernel_.rng().uniform_below(cube_.num_nodes()));
  inject(now, origin, config_.destinations.sample(kernel_.rng(), origin));
}

void ValiantMixingSim::on_traced(double now, NodeId origin, NodeId dest) {
  inject(now, origin, dest);
}

void ValiantMixingSim::inject(double now, NodeId origin, NodeId dest) {
  kernel_.count_arrival(now);
  const std::uint32_t id = kernel_.allocate_packet();
  const auto intermediate =
      static_cast<NodeId>(kernel_.rng().uniform_below(cube_.num_nodes()));
  kernel_.packet(id) = Pkt{origin, intermediate, dest, now, 0, 0};

  Pkt& packet = kernel_.packet(id);
  if (origin == intermediate) {
    packet.phase = 1;
    packet.target = dest;
    if (origin == dest) {
      kernel_.deliver(now, id, now, 0.0);
      return;
    }
  }
  enqueue(now, id);
}

void ValiantMixingSim::enqueue(double now, std::uint32_t pkt) {
  const Pkt& packet = kernel_.packet(pkt);
  const int dim = lowest_dimension(packet.cur ^ packet.target);
  RS_DASSERT(dim >= 1);
  kernel_.enqueue(now, cube_.arc_index(packet.cur, dim), pkt, /*external=*/false);
}

void ValiantMixingSim::on_arc_done(double now, ArcId arc) {
  const std::uint32_t pkt = kernel_.finish_arc(now, arc);

  Pkt& packet = kernel_.packet(pkt);
  packet.cur = flip_dimension(packet.cur, cube_.arc_dimension(arc));
  ++packet.hop_count;
  if (packet.cur == packet.target) {
    if (packet.phase == 1) {
      kernel_.deliver(now, pkt, packet.gen_time,
                      static_cast<double>(packet.hop_count));
      return;
    }
    // Reached the random intermediate node: start phase 2 from dimension 1.
    packet.phase = 1;
    packet.target = packet.final_dest;
    if (packet.cur == packet.target) {
      kernel_.deliver(now, pkt, packet.gen_time,
                      static_cast<double>(packet.hop_count));
      return;
    }
  }
  enqueue(now, pkt);
}

void ValiantMixingSim::run(double warmup, double horizon) {
  kernel_.drive(*this, warmup, horizon);
}

void register_valiant_mixing_scheme(SchemeRegistry& registry) {
  registry.add(
      {"valiant_mixing",
       "two-phase Valiant mixing: greedy to a random intermediate, then "
       "greedy to the destination (§5)",
       [](const Scenario& s) {
         CompiledScenario compiled;
         const Window window = s.resolved_window();
         compiled.replicate = [s, window, dist = s.make_destinations()](
                                  std::uint64_t seed, int) {
           ValiantMixingConfig config;
           config.d = s.d;
           config.lambda = s.lambda;
           config.destinations = dist;
           config.seed = seed;
           // Thread-local so the cached sim's trace pointer stays valid for
           // the sim's whole lifetime (and the buffers are reused per rep).
           thread_local PacketTrace trace;
           if (s.workload == "trace") {
             trace = generate_hypercube_trace(s.d, s.lambda, config.destinations,
                                              window.horizon, seed);
             config.trace = &trace;
           }
           ValiantMixingSim& sim =
               reusable_sim<ValiantMixingSim>(std::move(config));
           sim.run(window.warmup, window.horizon);
           return std::vector<double>{
               sim.delay().mean(),          sim.time_avg_population(),
               sim.throughput(),            sim.hops().mean(),
               sim.little_check().relative_error(), sim.final_population()};
         };
         // No closed-form bracket: the mixed network is not levelled, which
         // is the point of the comparison.
         return compiled;
       }});
}

}  // namespace routesim
