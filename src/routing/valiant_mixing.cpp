#include "routing/valiant_mixing.hpp"

#include "core/registry.hpp"

#include "util/assert.hpp"
#include "util/distributions.hpp"

namespace routesim {

ValiantMixingSim::ValiantMixingSim(ValiantMixingConfig config)
    : config_(std::move(config)),
      cube_(config_.d),
      rng_(derive_stream(config_.seed, 0x3A1A)) {
  RS_EXPECTS(config_.destinations.dimension() == config_.d);
  if (config_.trace == nullptr) RS_EXPECTS(config_.lambda > 0.0);
  arc_queue_.resize(cube_.num_arcs());
}

void ValiantMixingSim::inject(double now, NodeId origin, NodeId dest) {
  if (now >= warmup_) ++arrivals_window_;
  population_.add(now, +1.0);

  std::uint32_t id;
  if (!free_packets_.empty()) {
    id = free_packets_.back();
    free_packets_.pop_back();
  } else {
    id = static_cast<std::uint32_t>(packets_.size());
    packets_.emplace_back();
  }
  const auto intermediate = static_cast<NodeId>(rng_.uniform_below(cube_.num_nodes()));
  packets_[id] = Pkt{origin, intermediate, dest, now, 0, 0};

  if (origin == intermediate) {
    packets_[id].phase = 1;
    packets_[id].target = dest;
    if (origin == dest) {
      deliver(now, id);
      return;
    }
  }
  enqueue(now, id);
}

void ValiantMixingSim::enqueue(double now, std::uint32_t pkt) {
  const Pkt& packet = packets_[pkt];
  const int dim = lowest_dimension(packet.cur ^ packet.target);
  RS_DASSERT(dim >= 1);
  const ArcId arc = cube_.arc_index(packet.cur, dim);
  auto& queue = arc_queue_[arc];
  queue.push_back(pkt);
  if (queue.size() == 1) {
    events_.push(now + 1.0, Ev{EventKind::kArcDone, arc});
  }
}

void ValiantMixingSim::deliver(double now, std::uint32_t pkt) {
  const Pkt& packet = packets_[pkt];
  if (packet.gen_time >= warmup_) {
    ++deliveries_window_;
    delay_.add(now - packet.gen_time);
    hops_.add(static_cast<double>(packet.hop_count));
  }
  population_.add(now, -1.0);
  free_packets_.push_back(pkt);
}

void ValiantMixingSim::on_arc_done(double now, ArcId arc) {
  auto& queue = arc_queue_[arc];
  RS_DASSERT(!queue.empty());
  const std::uint32_t pkt = queue.front();
  queue.pop_front();
  if (!queue.empty()) {
    events_.push(now + 1.0, Ev{EventKind::kArcDone, arc});
  }

  Pkt& packet = packets_[pkt];
  packet.cur = flip_dimension(packet.cur, cube_.arc_dimension(arc));
  ++packet.hop_count;
  if (packet.cur == packet.target) {
    if (packet.phase == 1) {
      deliver(now, pkt);
      return;
    }
    // Reached the random intermediate node: start phase 2 from dimension 1.
    packet.phase = 1;
    packet.target = packet.final_dest;
    if (packet.cur == packet.target) {
      deliver(now, pkt);
      return;
    }
  }
  enqueue(now, pkt);
}

void ValiantMixingSim::run(double warmup, double horizon) {
  RS_EXPECTS(warmup >= 0.0 && warmup <= horizon);
  warmup_ = warmup;
  window_ = horizon - warmup;

  if (config_.trace != nullptr) {
    trace_pos_ = 0;
    if (!config_.trace->packets.empty()) {
      events_.push(config_.trace->packets.front().time, Ev{EventKind::kBirth, 0});
    }
  } else {
    const double total_rate = config_.lambda * static_cast<double>(cube_.num_nodes());
    events_.push(sample_exponential(rng_, total_rate), Ev{EventKind::kBirth, 0});
  }

  bool stats_reset = warmup == 0.0;
  while (!events_.empty() && events_.top().time <= horizon) {
    const auto event = events_.pop();
    const double t = event.time;
    if (!stats_reset && t >= warmup) {
      population_.reset(warmup);
      stats_reset = true;
    }
    if (event.payload.kind == EventKind::kBirth) {
      if (config_.trace != nullptr) {
        const auto& traced = config_.trace->packets[trace_pos_++];
        inject(t, traced.origin, traced.destination);
        if (trace_pos_ < config_.trace->packets.size()) {
          events_.push(config_.trace->packets[trace_pos_].time,
                       Ev{EventKind::kBirth, 0});
        }
      } else {
        const auto origin = static_cast<NodeId>(rng_.uniform_below(cube_.num_nodes()));
        inject(t, origin, config_.destinations.sample(rng_, origin));
        const double total_rate = config_.lambda * static_cast<double>(cube_.num_nodes());
        events_.push(t + sample_exponential(rng_, total_rate), Ev{EventKind::kBirth, 0});
      }
    } else {
      on_arc_done(t, event.payload.arc);
    }
  }

  if (!stats_reset) population_.reset(warmup);
  time_avg_population_ = population_.mean(horizon);
  final_population_ = population_.value();
  throughput_ = window_ > 0.0 ? static_cast<double>(deliveries_window_) / window_ : 0.0;
}

LittleCheck ValiantMixingSim::little_check() const noexcept {
  LittleCheck check;
  check.time_avg_population = time_avg_population_;
  check.arrival_rate =
      window_ > 0.0 ? static_cast<double>(arrivals_window_) / window_ : 0.0;
  check.mean_sojourn = delay_.mean();
  return check;
}

void register_valiant_mixing_scheme(SchemeRegistry& registry) {
  registry.add(
      {"valiant_mixing",
       "two-phase Valiant mixing: greedy to a random intermediate, then "
       "greedy to the destination (§5)",
       [](const Scenario& s) {
         CompiledScenario compiled;
         const Window window = s.resolved_window();
         compiled.replicate = [s, window, dist = s.make_destinations()](
                                  std::uint64_t seed, int) {
           ValiantMixingConfig config;
           config.d = s.d;
           config.lambda = s.lambda;
           config.destinations = dist;
           config.seed = seed;
           PacketTrace trace;
           if (s.workload == "trace") {
             trace = generate_hypercube_trace(s.d, s.lambda, config.destinations,
                                              window.horizon, seed);
             config.trace = &trace;
           }
           ValiantMixingSim sim(config);
           sim.run(window.warmup, window.horizon);
           return std::vector<double>{
               sim.delay().mean(),          sim.time_avg_population(),
               sim.throughput(),            sim.hops().mean(),
               sim.little_check().relative_error(), sim.final_population()};
         };
         // No closed-form bracket: the mixed network is not levelled, which
         // is the point of the comparison.
         return compiled;
       }});
}

}  // namespace routesim
