#pragma once
/// \file valiant_mixing.hpp
/// \brief Two-phase "mixing" routing (§5, concluding remarks; [Val82],
///        [VaB81]), built on the shared packet kernel.
///
/// Each packet is first routed greedily (increasing index order) to a
/// uniformly random intermediate node, and from there — again greedily,
/// restarting from dimension 1 — to its true destination.  The paper notes
/// that such mixing can improve delay under adversarial destination
/// distributions at the price of a smaller maximum sustainable load (every
/// packet now crosses about d/2 extra arcs).  This simulator quantifies
/// both effects; it runs on the same packet kernel as GreedyHypercubeSim
/// but the network is no longer levelled (dimensions are revisited in the
/// second phase), so none of the levelled-network theory applies — which
/// is exactly the point of the comparison.

#include <cstdint>
#include <vector>

#include "des/packet_kernel.hpp"
#include "stats/little.hpp"
#include "stats/summary.hpp"
#include "topology/hypercube.hpp"
#include "workload/destination.hpp"
#include "workload/trace.hpp"

namespace routesim {

struct ValiantMixingConfig {
  int d = 4;
  double lambda = 0.05;
  DestinationDistribution destinations = DestinationDistribution::uniform(4);
  std::uint64_t seed = 1;
  const PacketTrace* trace = nullptr;  ///< replay (same workload as greedy runs)
  /// Per-source fixed destinations (workload = permutation): entry x is
  /// the final destination of every packet generated at node x — exactly
  /// the adversarial pattern the random intermediate phase neutralises.
  /// Non-owning; 2^d entries; null = sample from `destinations`.
  const std::vector<NodeId>* fixed_destinations = nullptr;
  /// Collect a delay histogram (bin width 1, range [0, 64*d]) for tails.
  bool track_delay_histogram = false;

  // --- fault injection (src/fault/fault_model.hpp) ----------------------
  /// kNone = pristine path; kDrop / kSkipDim / kDeflect / kAdaptive reuse
  /// the greedy hypercube's rerouting machinery within the current phase
  /// (the unresolved set is taken against the phase target).
  FaultPolicy fault_policy = FaultPolicy::kNone;
  double arc_fault_rate = 0.0;
  double node_fault_rate = 0.0;
  double fault_mtbf = 0.0;
  double fault_mttr = 0.0;
  /// Correlated fault storms (src/fault/storm.hpp): Poisson arrivals of
  /// rate storm_rate, each downing the radius-storm_radius incidence ball
  /// around a random seed node for storm_duration time units.
  double storm_rate = 0.0;
  int storm_radius = 1;
  double storm_duration = 0.0;
  int ttl = 0;  ///< max hops for detouring packets; 0 = 64 * d
};

class ValiantMixingSim {
 public:
  explicit ValiantMixingSim(ValiantMixingConfig config);

  /// Reconfigures for another replication, reusing kernel storage.
  void reset(ValiantMixingConfig config);

  void run(double warmup, double horizon);

  [[nodiscard]] const Summary& delay() const noexcept { return kernel_.stats().delay(); }
  [[nodiscard]] const Summary& hops() const noexcept { return kernel_.stats().hops(); }
  [[nodiscard]] double time_avg_population() const noexcept {
    return kernel_.stats().time_avg_population();
  }
  [[nodiscard]] double final_population() const noexcept {
    return kernel_.stats().final_population();
  }
  [[nodiscard]] double throughput() const noexcept {
    return kernel_.stats().throughput();
  }
  [[nodiscard]] std::uint64_t arrivals_in_window() const noexcept {
    return kernel_.stats().arrivals_in_window();
  }
  [[nodiscard]] LittleCheck little_check() const noexcept {
    return kernel_.stats().little_check();
  }

  /// The attached fault model (inactive when fault_policy is kNone).
  [[nodiscard]] const FaultModel& fault_model() const noexcept {
    return fault_model_;
  }
  /// The full measurement harvest (delivery ratio, stretch, quantiles, ...).
  [[nodiscard]] const KernelStats& kernel_stats() const noexcept {
    return kernel_.stats();
  }

  // --- kernel hooks (called by PacketKernel::drive) ---

  void on_spawn(double now);
  void on_traced(double now, NodeId origin, NodeId dest);
  void on_arc_done(double now, ArcId arc);

 private:
  struct Pkt {
    NodeId cur = 0;
    NodeId target = 0;  ///< current phase's goal (intermediate, then final)
    NodeId final_dest = 0;
    double gen_time = 0.0;
    std::uint16_t hop_count = 0;
    std::uint8_t phase = 0;  ///< 0: toward intermediate; 1: toward destination
    /// Fault-free path length H(origin, intermediate) + H(intermediate,
    /// dest) — the stretch baseline.
    std::uint16_t min_hops = 0;
  };

  void configure_kernel();
  void inject(double now, NodeId origin, NodeId dest);
  void enqueue(double now, std::uint32_t pkt);
  /// Fault-aware dimension choice toward the phase target (0 = drop),
  /// via the shared machinery in fault/fault_routing.hpp.
  [[nodiscard]] int next_dimension_faulty(const Pkt& packet);

  ValiantMixingConfig config_;
  Hypercube cube_;
  FaultModel fault_model_;
  bool fault_active_ = false;
  int ttl_ = 0;
  PacketKernel<Pkt> kernel_;
};

class SchemeRegistry;

/// core/registry.hpp hookup: registers "valiant_mixing" (§5 two-phase
/// mixing; workload "trace" couples it to an equal-seed greedy scenario;
/// workload "permutation" is the scheme's raison d'etre — mixing keeps
/// rho ~ lambda where greedy collapses to lambda * Theta(sqrt(N)), and the
/// scheme installs a matching load-factor rule; trace replay of an
/// external file via trace_file; fault injection with fault_policy
/// drop | skip_dim | deflect | adaptive plus correlated storms via
/// storm_rate / storm_radius / storm_duration, reported through the
/// resilience extras).
void register_valiant_mixing_scheme(SchemeRegistry& registry);

}  // namespace routesim
