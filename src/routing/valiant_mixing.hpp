#pragma once
/// \file valiant_mixing.hpp
/// \brief Two-phase "mixing" routing (§5, concluding remarks; [Val82],
///        [VaB81]).
///
/// Each packet is first routed greedily (increasing index order) to a
/// uniformly random intermediate node, and from there — again greedily,
/// restarting from dimension 1 — to its true destination.  The paper notes
/// that such mixing can improve delay under adversarial destination
/// distributions at the price of a smaller maximum sustainable load (every
/// packet now crosses about d/2 extra arcs).  This simulator quantifies
/// both effects; it shares the arc-queue mechanics of GreedyHypercubeSim
/// but the network is no longer levelled (dimensions are revisited in the
/// second phase), so none of the levelled-network theory applies — which
/// is exactly the point of the comparison.

#include <cstdint>
#include <deque>
#include <vector>

#include "des/event_queue.hpp"
#include "stats/little.hpp"
#include "stats/summary.hpp"
#include "stats/timeavg.hpp"
#include "topology/hypercube.hpp"
#include "util/rng.hpp"
#include "workload/destination.hpp"
#include "workload/trace.hpp"

namespace routesim {

struct ValiantMixingConfig {
  int d = 4;
  double lambda = 0.05;
  DestinationDistribution destinations = DestinationDistribution::uniform(4);
  std::uint64_t seed = 1;
  const PacketTrace* trace = nullptr;  ///< replay (same workload as greedy runs)
};

class ValiantMixingSim {
 public:
  explicit ValiantMixingSim(ValiantMixingConfig config);

  void run(double warmup, double horizon);

  [[nodiscard]] const Summary& delay() const noexcept { return delay_; }
  [[nodiscard]] const Summary& hops() const noexcept { return hops_; }
  [[nodiscard]] double time_avg_population() const noexcept { return time_avg_population_; }
  [[nodiscard]] double final_population() const noexcept { return final_population_; }
  [[nodiscard]] double throughput() const noexcept { return throughput_; }
  [[nodiscard]] std::uint64_t arrivals_in_window() const noexcept { return arrivals_window_; }
  [[nodiscard]] LittleCheck little_check() const noexcept;

 private:
  enum class EventKind : std::uint8_t { kBirth, kArcDone };

  struct Ev {
    EventKind kind{};
    ArcId arc = 0;
  };

  struct Pkt {
    NodeId cur = 0;
    NodeId target = 0;  ///< current phase's goal (intermediate, then final)
    NodeId final_dest = 0;
    double gen_time = 0.0;
    std::uint16_t hop_count = 0;
    std::uint8_t phase = 0;  ///< 0: toward intermediate; 1: toward destination
  };

  void inject(double now, NodeId origin, NodeId dest);
  void enqueue(double now, std::uint32_t pkt);
  void deliver(double now, std::uint32_t pkt);
  void on_arc_done(double now, ArcId arc);

  ValiantMixingConfig config_;
  Hypercube cube_;
  Rng rng_;
  std::vector<std::deque<std::uint32_t>> arc_queue_;
  std::vector<Pkt> packets_;
  std::vector<std::uint32_t> free_packets_;
  EventQueue<Ev> events_;
  std::size_t trace_pos_ = 0;

  double warmup_ = 0.0;
  double window_ = 0.0;
  Summary delay_;
  Summary hops_;
  TimeWeighted population_;
  std::uint64_t deliveries_window_ = 0;
  std::uint64_t arrivals_window_ = 0;
  double time_avg_population_ = 0.0;
  double final_population_ = 0.0;
  double throughput_ = 0.0;
};

class SchemeRegistry;

/// core/registry.hpp hookup: registers "valiant_mixing" (§5 two-phase
/// mixing; workload "trace" couples it to an equal-seed greedy scenario).
void register_valiant_mixing_scheme(SchemeRegistry& registry);

}  // namespace routesim
