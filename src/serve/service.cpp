#include "serve/service.hpp"

#include <chrono>
#include <exception>
#include <sstream>
#include <vector>

#include "obs/metrics.hpp"
#include "util/json.hpp"
#include "util/json_parse.hpp"

namespace routesim::serve {

namespace {

/// Handles into the process-wide registry (obs/metrics.hpp), resolved
/// once.  Touching get() registers every serve metric, so a `metrics`
/// scrape shows all tiers (zero-valued) even before the first query.
struct ServeMetrics {
  obs::Counter& queries;
  obs::Counter& cache_hits;
  obs::Counter& store_hits;
  obs::Counter& computed;
  obs::Counter& coalesced;
  obs::Counter& errors;
  obs::HistogramMetric& cache_seconds;
  obs::HistogramMetric& store_seconds;
  obs::HistogramMetric& computed_seconds;
  obs::HistogramMetric& inflight_seconds;

  static ServeMetrics& get() {
    auto& registry = obs::global_metrics();
    static ServeMetrics metrics{
        registry.counter("routesim_serve_queries_total"),
        registry.counter("routesim_serve_cache_hits_total"),
        registry.counter("routesim_serve_store_hits_total"),
        registry.counter("routesim_serve_computed_total"),
        registry.counter("routesim_serve_coalesced_total"),
        registry.counter("routesim_serve_errors_total"),
        registry.histogram("routesim_serve_query_seconds_cache"),
        registry.histogram("routesim_serve_query_seconds_store"),
        registry.histogram("routesim_serve_query_seconds_computed"),
        registry.histogram("routesim_serve_query_seconds_inflight")};
    return metrics;
  }
};

Scenario scenario_from_text_or_throw(const std::string& text) {
  std::istringstream words(text);
  std::vector<std::string> tokens;
  for (std::string token; words >> token;) tokens.push_back(token);
  if (tokens.empty()) throw ScenarioError("empty scenario string");
  return Scenario::parse(tokens);
}

}  // namespace

EngineOptions QueryService::engine_options() {
  EngineOptions options;
  options.threads = options_.threads;
  options.cache = &cache_;
  options.store = options_.store;
  return options;
}

QueryService::QueryResult QueryService::query_text(
    const std::string& scenario_text) {
  try {
    return query(scenario_from_text_or_throw(scenario_text));
  } catch (const std::exception& error) {
    ServeMetrics& metrics = ServeMetrics::get();
    metrics.queries.add();
    metrics.errors.add();
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.queries;
    ++stats_.errors;
    QueryResult result;
    result.error = error.what();
    return result;
  }
}

QueryService::QueryResult QueryService::query(const Scenario& scenario) {
  ServeMetrics& metrics = ServeMetrics::get();
  const auto start = std::chrono::steady_clock::now();
  QueryResult qr = query_impl(scenario);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  metrics.queries.add();
  if (!qr.ok) {
    metrics.errors.add();
  } else if (qr.source == "cache") {
    metrics.cache_hits.add();
    metrics.cache_seconds.observe(seconds);
  } else if (qr.source == "store") {
    metrics.store_hits.add();
    metrics.store_seconds.observe(seconds);
  } else if (qr.source == "inflight") {
    metrics.coalesced.add();
    metrics.inflight_seconds.observe(seconds);
  } else {
    metrics.computed.add();
    metrics.computed_seconds.observe(seconds);
  }
  return qr;
}

QueryService::QueryResult QueryService::query_impl(const Scenario& scenario) {
  QueryResult qr;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.queries;
  }
  try {
    qr.scenario = scenario.resolved();
  } catch (const std::exception& error) {
    qr.error = error.what();
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.errors;
    return qr;
  }
  qr.key = ResultCache::key(qr.scenario);

  if (cache_.lookup(qr.key, &qr.result)) {
    qr.ok = true;
    qr.source = "cache";
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.cache_hits;
    return qr;
  }
  if (options_.store != nullptr && options_.store->fetch(qr.key, &qr.result)) {
    cache_.insert(qr.key, qr.result);
    qr.ok = true;
    qr.source = "store";
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.store_hits;
    return qr;
  }

  // Miss on both tiers: join (or become) the one in-flight computation for
  // this key, so N concurrent clients asking the same scenario fund one
  // engine run.
  std::shared_ptr<Inflight> entry;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    const auto it = inflight_.find(qr.key);
    if (it != inflight_.end()) {
      entry = it->second;
    } else {
      entry = std::make_shared<Inflight>();
      inflight_.emplace(qr.key, entry);
      leader = true;
    }
  }

  if (!leader) {
    std::unique_lock<std::mutex> wait_lock(entry->mutex);
    entry->cv.wait(wait_lock, [&] { return entry->done; });
    qr.ok = entry->ok;
    qr.error = entry->error;
    qr.result = entry->result;
    qr.source = "inflight";
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.coalesced;
    if (!qr.ok) ++stats_.errors;
    return qr;
  }

  bool ok = false;
  std::string error;
  RunResult result;
  try {
    // run_one inserts into the cache and persists to the store itself
    // (finish_job), so followers and future processes see the result.
    result = Engine(engine_options()).run_one(qr.scenario);
    ok = true;
  } catch (const std::exception& compute_error) {
    error = compute_error.what();
  }
  {
    std::lock_guard<std::mutex> publish_lock(entry->mutex);
    entry->done = true;
    entry->ok = ok;
    entry->error = error;
    entry->result = result;
  }
  entry->cv.notify_all();
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    inflight_.erase(qr.key);
  }
  qr.ok = ok;
  qr.error = error;
  qr.result = result;
  qr.source = "computed";
  std::lock_guard<std::mutex> lock(stats_mutex_);
  if (ok) {
    ++stats_.computed;
  } else {
    ++stats_.errors;
  }
  return qr;
}

QueryService::Stats QueryService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

// ---------------------------------------------------------------- protocol

namespace {

/// The request's "id" member re-serialised for echoing (numbers and
/// strings supported; anything else is omitted).  Returns ',"id":<...>'
/// or an empty string.
std::string id_echo(const json::Value& request) {
  const json::Value* id = request.find("id");
  if (id == nullptr) return "";
  if (id->is_number()) return ",\"id\":" + fmt_shortest(id->number);
  if (id->is_string()) return ",\"id\":\"" + json_escape(id->string) + "\"";
  return "";
}

std::string error_response(const std::string& op, const std::string& id,
                           const std::string& message) {
  return "{\"op\":\"" + json_escape(op) + "\"" + id +
         ",\"ok\":false,\"error\":\"" + json_escape(message) + "\"}";
}

std::string query_response(const std::string& id,
                           const QueryService::QueryResult& qr) {
  if (!qr.ok) return error_response("query", id, qr.error);
  std::ostringstream os;
  os << "{\"op\":\"query\"" << id << ",\"ok\":true,\"source\":\"" << qr.source
     << "\",\"key\":\"" << json_escape(qr.key) << "\",\"scenario\":\""
     << json_escape(qr.scenario.to_string())
     << "\",\"result\":" << result_to_json(qr.result) << '}';
  return os.str();
}

void handle_grid(QueryService& service, const json::Value& request,
                 const std::string& id,
                 const std::function<void(const std::string&)>& emit) {
  const json::Value* scenario_text = request.find("scenario");
  if (scenario_text == nullptr || !scenario_text->is_string()) {
    emit(error_response("grid", id, "grid request needs a \"scenario\" string"));
    return;
  }
  try {
    const Scenario base = scenario_from_text_or_throw(scenario_text->string);
    std::vector<SweepSpec> axes;
    if (const json::Value* axis_list = request.find("axes");
        axis_list != nullptr) {
      if (!axis_list->is_array()) {
        throw ScenarioError("\"axes\" must be an array of key=a:b[:s] strings");
      }
      for (const json::Value& axis : axis_list->array) {
        if (!axis.is_string()) {
          throw ScenarioError("\"axes\" must be an array of key=a:b[:s] strings");
        }
        axes.push_back(SweepSpec::parse(axis.string));
      }
    }
    Campaign campaign("serve_grid");
    campaign.grid(base, axes);

    std::size_t computed = 0;
    std::size_t from_store = 0;
    std::size_t from_cache = 0;
    ProgressSink stream([&](const CellResult& cell) {
      if (cell.from_store) {
        ++from_store;
      } else if (cell.from_cache) {
        ++from_cache;
      } else {
        ++computed;
      }
      std::ostringstream os;
      os << "{\"op\":\"cell\"" << id << ",\"cell\":" << cell.index
         << ",\"label\":\"" << json_escape(cell.label) << "\",\"source\":\""
         << (cell.from_store ? "store" : cell.from_cache ? "cache" : "computed")
         << "\",\"scenario\":\"" << json_escape(cell.scenario.to_string())
         << "\",\"result\":" << result_to_json(cell.result) << '}';
      emit(os.str());
    });
    EngineOptions options = service.engine_options();
    options.sinks.push_back(&stream);
    const auto cells = Engine(options).run(campaign);
    std::ostringstream os;
    os << "{\"op\":\"grid\"" << id << ",\"ok\":true,\"cells\":" << cells.size()
       << ",\"computed\":" << computed << ",\"from_cache\":" << from_cache
       << ",\"from_store\":" << from_store << '}';
    emit(os.str());
  } catch (const std::exception& error) {
    emit(error_response("grid", id, error.what()));
  }
}

}  // namespace

bool handle_request(QueryService& service, const std::string& line,
                    const std::function<void(const std::string&)>& emit) {
  if (line.find_first_not_of(" \t\r") == std::string::npos) return true;
  json::Value request;
  std::string parse_error;
  if (!json::parse(line, &request, &parse_error) || !request.is_object()) {
    emit(error_response("", "", "malformed request: " + parse_error));
    return true;
  }
  const std::string id = id_echo(request);
  const json::Value* op = request.find("op");
  if (op == nullptr || !op->is_string()) {
    emit(error_response("", id, "request needs an \"op\" string"));
    return true;
  }

  if (op->string == "ping") {
    emit("{\"op\":\"ping\"" + id + ",\"ok\":true}");
    return true;
  }
  if (op->string == "shutdown") {
    emit("{\"op\":\"shutdown\"" + id + ",\"ok\":true}");
    return false;
  }
  if (op->string == "stats") {
    const QueryService::Stats stats = service.stats();
    std::ostringstream os;
    os << "{\"op\":\"stats\"" << id << ",\"ok\":true,\"queries\":"
       << stats.queries << ",\"cache_hits\":" << stats.cache_hits
       << ",\"store_hits\":" << stats.store_hits << ",\"computed\":"
       << stats.computed << ",\"coalesced\":" << stats.coalesced
       << ",\"errors\":" << stats.errors;
    if (const ResultStore* store = service.options().store; store != nullptr) {
      os << ",\"store_records\":" << store->size() << ",\"store_path\":\""
         << json_escape(store->path()) << '"';
    }
    os << '}';
    emit(os.str());
    return true;
  }
  if (op->string == "metrics") {
    // Prometheus text exposition of the process-wide registry, JSON-
    // escaped into one field — a scraper unescapes "metrics" and has the
    // standard format.  Touching the handles first guarantees every serve
    // metric (all tiers) is present even on a fresh daemon.
    ServeMetrics::get();
    const std::string text = obs::global_metrics().snapshot().prometheus_text();
    emit("{\"op\":\"metrics\"" + id +
         ",\"ok\":true,\"format\":\"prometheus\",\"metrics\":\"" +
         json_escape(text) + "\"}");
    return true;
  }
  if (op->string == "query") {
    const json::Value* scenario_text = request.find("scenario");
    if (scenario_text == nullptr || !scenario_text->is_string()) {
      emit(error_response("query", id,
                          "query request needs a \"scenario\" string"));
      return true;
    }
    emit(query_response(id, service.query_text(scenario_text->string)));
    return true;
  }
  if (op->string == "grid") {
    handle_grid(service, request, id, emit);
    return true;
  }
  emit(error_response(
      op->string, id,
      "unknown op (known: query, grid, stats, metrics, ping, shutdown)"));
  return true;
}

}  // namespace routesim::serve
