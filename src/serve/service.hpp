#pragma once
/// \file service.hpp
/// \brief The query service behind the `routesim_serve` daemon: many
///        concurrent clients against one warm engine, with a three-tier
///        answer path (in-process cache -> persistent store -> compute)
///        and in-flight deduplication so identical concurrent queries
///        fund exactly one computation.
///
/// This is the "millions of users" story of the ROADMAP made concrete:
/// the daemon process stays warm, the `ResultStore` makes its answers
/// durable across restarts, and `QueryService::query()` is safe to call
/// from any number of transport threads (stdio, Unix socket, TCP — see
/// tools/routesim_serve.cpp).  The wire protocol is line-delimited JSON;
/// handle_request() implements it transport-agnostically so tests can
/// drive the protocol without a socket (tests/test_serve.cpp) and the
/// production harness can drive it black-box (tools/production_test.py).
///
/// Protocol (one JSON object per line, documented in docs/SERVE.md):
///   {"op":"query","scenario":"hypercube_greedy d=6 ...","id":1}
///   {"op":"grid","scenario":"<base>","axes":["rho=0.1:0.9:0.2"],"id":2}
///   {"op":"stats"} | {"op":"metrics"} | {"op":"ping"} | {"op":"shutdown"}
/// Responses echo `id` and carry ok/source/result; grid streams one
/// "cell" line per finished cell before its summary line.  "metrics"
/// returns the process-wide registry (obs/metrics.hpp) as Prometheus text
/// exposition — per-tier query counters and latency histograms
/// (routesim_serve_*) plus the engine/kernel metrics; docs/OBSERVABILITY.md
/// catalogs the names.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/campaign.hpp"
#include "core/scenario.hpp"
#include "store/result_store.hpp"

namespace routesim::serve {

struct ServiceOptions {
  /// Worker-pool width per computation; 0 = scenario plan / hardware.
  int threads = 0;
  /// Durable tier, shared with other processes via its file; optional.
  ResultStore* store = nullptr;
};

/// Thread-safe scenario-query front end over the campaign engine.
class QueryService {
 public:
  explicit QueryService(ServiceOptions options) : options_(options) {}

  struct QueryResult {
    bool ok = false;
    std::string error;        ///< set when !ok
    /// Which tier answered: "cache" (in-process), "store" (persistent,
    /// incl. records another process wrote), "computed" (this call ran
    /// the engine), "inflight" (coalesced onto a concurrent identical
    /// computation).
    std::string source;
    std::string key;          ///< canonical threads-normalized store key
    Scenario scenario;        ///< resolved form actually answered
    RunResult result;
  };

  /// Answers one scenario; never throws (errors come back in the result).
  /// Also feeds the serve metrics (routesim_serve_* counters and the
  /// per-tier latency histogram matching QueryResult::source).
  [[nodiscard]] QueryResult query(const Scenario& scenario);
  /// Same, from the textual "scheme key=value ..." form.
  [[nodiscard]] QueryResult query_text(const std::string& scenario_text);

  struct Stats {
    std::uint64_t queries = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t store_hits = 0;
    std::uint64_t computed = 0;
    std::uint64_t coalesced = 0;  ///< waited on another client's computation
    std::uint64_t errors = 0;
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] const ServiceOptions& options() const noexcept {
    return options_;
  }
  /// Engine options wired to this service's cache + store, for campaign
  /// (grid) requests that bypass the single-query path.
  [[nodiscard]] EngineOptions engine_options();

 private:
  /// The tier-resolution path, shared by query() (which wraps it with
  /// timing + metrics).
  [[nodiscard]] QueryResult query_impl(const Scenario& scenario);

  struct Inflight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    bool ok = false;
    std::string error;
    RunResult result;
  };

  ServiceOptions options_;
  ResultCache cache_;
  mutable std::mutex stats_mutex_;
  Stats stats_{};
  std::mutex inflight_mutex_;
  std::unordered_map<std::string, std::shared_ptr<Inflight>> inflight_;
};

/// Executes one protocol line against `service`, emitting zero or more
/// response lines (without trailing newline) through `emit`.  Returns
/// false exactly when the request was a valid "shutdown" — the transport
/// should stop its loop.  Malformed requests produce one ok:false
/// response and return true.
bool handle_request(QueryService& service, const std::string& line,
                    const std::function<void(const std::string&)>& emit);

}  // namespace routesim::serve
