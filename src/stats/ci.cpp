#include "stats/ci.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace routesim {

namespace {

// Continued-fraction evaluation for the incomplete beta function
// (Numerical-Recipes-style modified Lentz algorithm).
double beta_cont_frac(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 1e-15;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  RS_EXPECTS(a > 0.0 && b > 0.0);
  RS_EXPECTS(x >= 0.0 && x <= 1.0);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                          a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(ln_front);
  // Use the continued fraction directly where it converges fast, else the
  // symmetry I_x(a,b) = 1 - I_{1-x}(b,a).
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cont_frac(a, b, x) / a;
  }
  return 1.0 - front * beta_cont_frac(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, double df) {
  RS_EXPECTS(df > 0.0);
  if (t == 0.0) return 0.5;
  const double x = df / (df + t * t);
  const double tail = 0.5 * incomplete_beta(df / 2.0, 0.5, x);
  return t > 0.0 ? 1.0 - tail : tail;
}

double student_t_quantile(double prob, double df) {
  RS_EXPECTS(prob > 0.0 && prob < 1.0);
  RS_EXPECTS(df >= 1.0);
  if (prob == 0.5) return 0.0;
  // Bisection on the CDF: monotone, so this is robust; 200 iterations give
  // full double precision on any realistic bracket.
  double lo = -1e3, hi = 1e3;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (student_t_cdf(mid, df) < prob) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * (1.0 + std::abs(lo))) break;
  }
  return 0.5 * (lo + hi);
}

ConfidenceInterval t_confidence_interval(const Summary& s, double confidence) {
  RS_EXPECTS(confidence > 0.0 && confidence < 1.0);
  ConfidenceInterval ci;
  ci.mean = s.mean();
  ci.confidence = confidence;
  if (s.count() < 2) {
    ci.half_width = 0.0;
    return ci;
  }
  const double df = static_cast<double>(s.count() - 1);
  const double t = student_t_quantile(0.5 + confidence / 2.0, df);
  ci.half_width = t * s.std_error();
  return ci;
}

ConfidenceInterval batch_means_interval(const double* values, std::size_t count,
                                        std::size_t num_batches, double confidence) {
  RS_EXPECTS(values != nullptr || count == 0);
  RS_EXPECTS(num_batches >= 2);
  Summary batches;
  if (count >= num_batches) {
    const std::size_t per_batch = count / num_batches;
    for (std::size_t b = 0; b < num_batches; ++b) {
      double sum = 0.0;
      for (std::size_t i = b * per_batch; i < (b + 1) * per_batch; ++i) sum += values[i];
      batches.add(sum / static_cast<double>(per_batch));
    }
  } else {
    for (std::size_t i = 0; i < count; ++i) batches.add(values[i]);
  }
  return t_confidence_interval(batches, confidence);
}

}  // namespace routesim
