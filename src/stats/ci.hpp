#pragma once
/// \file ci.hpp
/// \brief Student-t confidence intervals and the special functions they need.
///
/// The t quantile is computed from scratch (regularised incomplete beta via
/// Lentz's continued fraction + bisection) so the library has no external
/// numeric dependencies; accuracy is ~1e-10, verified against standard
/// tables in the test suite.

#include <cstdint>

#include "stats/summary.hpp"

namespace routesim {

/// Regularised incomplete beta function I_x(a, b), 0 <= x <= 1.
[[nodiscard]] double incomplete_beta(double a, double b, double x);

/// CDF of Student's t distribution with `df` degrees of freedom.
[[nodiscard]] double student_t_cdf(double t, double df);

/// Quantile (inverse CDF) of Student's t distribution.
/// Precondition: 0 < prob < 1, df >= 1.
[[nodiscard]] double student_t_quantile(double prob, double df);

/// A symmetric confidence interval for a mean.
struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;
  double confidence = 0.95;

  [[nodiscard]] double lower() const noexcept { return mean - half_width; }
  [[nodiscard]] double upper() const noexcept { return mean + half_width; }
  [[nodiscard]] bool contains(double x) const noexcept {
    return x >= lower() && x <= upper();
  }
};

/// Two-sided t confidence interval for the mean of the observations in `s`.
/// With fewer than two observations the half-width is 0.
[[nodiscard]] ConfidenceInterval t_confidence_interval(const Summary& s,
                                                       double confidence = 0.95);

/// Batch-means interval: splits a single long run of `values.size()`
/// correlated observations into `num_batches` contiguous batches and applies
/// the t interval to the batch averages — the standard single-run output
/// analysis for steady-state simulations.
[[nodiscard]] ConfidenceInterval batch_means_interval(const double* values,
                                                      std::size_t count,
                                                      std::size_t num_batches,
                                                      double confidence = 0.95);

}  // namespace routesim
