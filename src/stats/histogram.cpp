#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace routesim {

Histogram::Histogram(double lo, double bin_width, std::size_t num_bins)
    : lo_(lo), width_(bin_width), bins_(num_bins, 0) {
  RS_EXPECTS(bin_width > 0.0);
  RS_EXPECTS(num_bins >= 1);
}

void Histogram::clear() noexcept {
  std::fill(bins_.begin(), bins_.end(), 0);
  underflow_ = 0;
  overflow_ = 0;
  total_ = 0;
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= bins_.size()) {
    ++overflow_;
    return;
  }
  ++bins_[idx];
}

double Histogram::tail_probability(double x) const noexcept {
  if (total_ == 0) return 0.0;
  std::uint64_t above = overflow_;
  for (std::size_t i = bins_.size(); i-- > 0;) {
    if (bin_lower(i) + width_ <= x) break;
    above += bins_[i];
  }
  return static_cast<double>(above) / static_cast<double>(total_);
}

double Histogram::quantile(double q) const {
  RS_EXPECTS(q >= 0.0 && q <= 1.0);
  RS_EXPECTS(total_ > 0);
  const double target = q * static_cast<double>(total_);
  double cumulative = static_cast<double>(underflow_);
  if (cumulative >= target) return lo_;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const double next = cumulative + static_cast<double>(bins_[i]);
    if (next >= target && bins_[i] > 0) {
      const double frac = (target - cumulative) / static_cast<double>(bins_[i]);
      return bin_lower(i) + frac * width_;
    }
    cumulative = next;
  }
  return bin_lower(bins_.size());  // target falls in the overflow bin
}

}  // namespace routesim
