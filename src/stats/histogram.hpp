#pragma once
/// \file histogram.hpp
/// \brief Fixed-width histogram with overflow bin and quantile estimation.
///
/// Used for packet-delay distributions and queue-occupancy tails (the
/// "with high probability" statements at the end of §3.3 and §4.3).

#include <cstdint>
#include <vector>

namespace routesim {

class Histogram {
 public:
  /// Bins [lo, lo+w), [lo+w, lo+2w), ..., plus an underflow and an overflow
  /// bin.  Precondition: bin_width > 0, num_bins >= 1.
  Histogram(double lo, double bin_width, std::size_t num_bins);

  void add(double x) noexcept;

  /// Zeroes every bin, keeping the shape and storage.
  void clear() noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t num_bins() const noexcept { return bins_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const { return bins_.at(i); }

  /// Left edge of bin i.
  [[nodiscard]] double bin_lower(std::size_t i) const noexcept {
    return lo_ + static_cast<double>(i) * width_;
  }

  [[nodiscard]] double lower_bound() const noexcept { return lo_; }
  [[nodiscard]] double bin_width() const noexcept { return width_; }

  /// Empirical P[X > x] using bin upper edges (conservative for tails).
  [[nodiscard]] double tail_probability(double x) const noexcept;

  /// Approximate quantile by linear interpolation inside the bin.
  /// Precondition: 0 <= q <= 1 and count() > 0.
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace routesim
