#pragma once
/// \file little.hpp
/// \brief Little's-law consistency check: L = lambda * W.
///
/// Every steady-state simulation in this library reports (time-average
/// population, observed throughput, mean sojourn time); this helper decides
/// whether the triple is self-consistent, which is the cheapest and most
/// sensitive end-to-end sanity check a queueing simulation can run on itself.

#include <cmath>

namespace routesim {

struct LittleCheck {
  double time_avg_population = 0.0;  ///< L: time-averaged number in system
  double arrival_rate = 0.0;         ///< lambda: observed departures / time
  double mean_sojourn = 0.0;         ///< W: mean delay of departed customers

  /// Relative discrepancy |L - lambda*W| / max(L, lambda*W); 0 when both 0.
  [[nodiscard]] double relative_error() const noexcept {
    const double lhs = time_avg_population;
    const double rhs = arrival_rate * mean_sojourn;
    const double scale = std::fmax(std::fabs(lhs), std::fabs(rhs));
    return scale == 0.0 ? 0.0 : std::fabs(lhs - rhs) / scale;
  }

  [[nodiscard]] bool consistent(double tolerance = 0.05) const noexcept {
    return relative_error() <= tolerance;
  }
};

}  // namespace routesim
