#pragma once
/// \file summary.hpp
/// \brief Streaming moment accumulator (Welford) for point observations.
///
/// Used for per-packet delays, per-round completion times, etc.  Supports
/// O(1) merge so replication results can be combined deterministically.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "util/assert.hpp"

namespace routesim {

class Summary {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  /// Merges another accumulator (Chan et al. parallel update).
  void merge(const Summary& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  /// Sample mean; 0 when empty.
  [[nodiscard]] double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }

  /// Unbiased sample variance; 0 when fewer than two observations.
  [[nodiscard]] double variance() const noexcept {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }

  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

  /// Standard error of the mean; 0 when fewer than two observations.
  [[nodiscard]] double std_error() const noexcept {
    return count_ < 2 ? 0.0 : stddev() / std::sqrt(static_cast<double>(count_));
  }

  [[nodiscard]] double min() const noexcept {
    return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
  }
  [[nodiscard]] double max() const noexcept {
    return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
  }

  [[nodiscard]] double sum() const noexcept {
    return mean_ * static_cast<double>(count_);
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace routesim
