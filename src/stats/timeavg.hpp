#pragma once
/// \file timeavg.hpp
/// \brief Time-weighted average of a piecewise-constant process.
///
/// Tracks integral(value dt) for processes such as "number of packets in the
/// network at time t".  Supports a reset-at-warmup workflow: call reset(t)
/// when the measurement window opens, then mean(t_end) gives the time
/// average over [t_warm, t_end].  This is the estimator behind every
/// Little's-law check (L = lambda * W) in the test suite.

#include <cmath>

#include "util/assert.hpp"

namespace routesim {

class TimeWeighted {
 public:
  /// Registers that the tracked value changes to `value` at time `t`.
  /// Times must be non-decreasing.
  void update(double t, double value) {
    RS_EXPECTS_MSG(t >= last_time_, "time must be non-decreasing");
    integral_ += value_ * (t - last_time_);
    peak_ = value > peak_ ? value : peak_;
    last_time_ = t;
    value_ = value;
  }

  /// Adds `delta` to the tracked value at time `t` (convenience for counters).
  void add(double t, double delta) { update(t, value_ + delta); }

  /// Restarts the integral at time `t`, keeping the current value.
  /// Call at the end of the warm-up period.
  void reset(double t) {
    RS_EXPECTS(t >= last_time_);
    last_time_ = t;
    start_time_ = t;
    integral_ = 0.0;
    peak_ = value_;
  }

  /// Current (instantaneous) value of the process.
  [[nodiscard]] double value() const noexcept { return value_; }

  /// Largest value seen since the last reset.
  [[nodiscard]] double peak() const noexcept { return peak_; }

  /// Integral of the process over [reset time, t_end].
  [[nodiscard]] double integral(double t_end) const {
    RS_EXPECTS(t_end >= last_time_);
    return integral_ + value_ * (t_end - last_time_);
  }

  /// Time average over [reset time, t_end]; 0 for an empty window.
  [[nodiscard]] double mean(double t_end) const {
    const double span = t_end - start_time_;
    return span <= 0.0 ? 0.0 : integral(t_end) / span;
  }

 private:
  double value_ = 0.0;
  double integral_ = 0.0;
  double last_time_ = 0.0;
  double start_time_ = 0.0;
  double peak_ = 0.0;
};

}  // namespace routesim
