#include "store/result_store.hpp"

#include <unistd.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"
#include "util/assert.hpp"
#include "util/atomic_file.hpp"
#include "util/json.hpp"

namespace routesim {

namespace {

/// Exact-round-trip number emission: fmt_shortest for finite values (its
/// contract is strtod-identity), string literals for the values JSON
/// cannot spell.
void exact_number(std::ostringstream& os, double value) {
  if (std::isnan(value)) {
    os << "\"nan\"";
  } else if (std::isinf(value)) {
    os << (value > 0 ? "\"inf\"" : "\"-inf\"");
  } else {
    os << fmt_shortest(value);
  }
}

void exact_interval(std::ostringstream& os, const char* name,
                    const ConfidenceInterval& interval) {
  os << '"' << name << "_mean\":";
  exact_number(os, interval.mean);
  os << ",\"" << name << "_half_width\":";
  exact_number(os, interval.half_width);
}

/// Reads one double back: a JSON number, one of the non-finite string
/// spellings, or null (the campaign sink's lossy non-finite form).
bool read_double(const json::Value* value, double* out) {
  if (value == nullptr) return false;
  if (value->is_number()) {
    *out = value->number;
    return true;
  }
  if (value->is_null()) {
    *out = std::nan("");
    return true;
  }
  if (value->is_string()) {
    if (value->string == "nan") {
      *out = std::nan("");
      return true;
    }
    if (value->string == "inf") {
      *out = std::numeric_limits<double>::infinity();
      return true;
    }
    if (value->string == "-inf") {
      *out = -std::numeric_limits<double>::infinity();
      return true;
    }
  }
  return false;
}

bool read_interval(const json::Value& object, const std::string& name,
                   ConfidenceInterval* out) {
  return read_double(object.find(name + "_mean"), &out->mean) &&
         read_double(object.find(name + "_half_width"), &out->half_width);
}

/// "scheme key=value ..." -> Scenario, via the CLI token form.
bool scenario_from_text(const std::string& text, Scenario* out) {
  std::istringstream words(text);
  std::vector<std::string> tokens;
  for (std::string token; words >> token;) tokens.push_back(token);
  if (tokens.empty()) return false;
  try {
    *out = Scenario::parse(tokens);
  } catch (const ScenarioError&) {
    return false;
  }
  return true;
}

}  // namespace

std::string result_to_json(const RunResult& result) {
  std::ostringstream os;
  os << "{\"rho\":";
  exact_number(os, result.rho);
  os << ',';
  exact_interval(os, "delay", result.delay);
  os << ',';
  exact_interval(os, "population", result.population);
  os << ',';
  exact_interval(os, "throughput", result.throughput);
  os << ",\"mean_hops\":";
  exact_number(os, result.mean_hops);
  os << ",\"max_little_error\":";
  exact_number(os, result.max_little_error);
  os << ",\"mean_final_backlog\":";
  exact_number(os, result.mean_final_backlog);
  os << ",\"has_bounds\":" << (result.has_bounds ? "true" : "false")
     << ",\"lower_bound\":";
  exact_number(os, result.lower_bound);
  os << ",\"upper_bound\":";
  exact_number(os, result.upper_bound);
  os << ",\"extras\":{";
  for (std::size_t i = 0; i < result.extras.size(); ++i) {
    os << (i == 0 ? "" : ",") << '"' << json_escape(result.extras[i].first)
       << "\":{\"mean\":";
    exact_number(os, result.extras[i].second.mean);
    os << ",\"half_width\":";
    exact_number(os, result.extras[i].second.half_width);
    os << '}';
  }
  os << "}}";
  return os.str();
}

bool result_from_json(const json::Value& value, RunResult* out) {
  if (!value.is_object()) return false;
  RunResult result;
  if (!read_interval(value, "delay", &result.delay) ||
      !read_interval(value, "population", &result.population) ||
      !read_interval(value, "throughput", &result.throughput)) {
    return false;
  }
  if (!read_double(value.find("rho"), &result.rho) ||
      !read_double(value.find("mean_hops"), &result.mean_hops) ||
      !read_double(value.find("max_little_error"), &result.max_little_error) ||
      !read_double(value.find("mean_final_backlog"),
                   &result.mean_final_backlog)) {
    return false;
  }
  if (const json::Value* bounds = value.find("has_bounds");
      bounds != nullptr && bounds->is_bool()) {
    result.has_bounds = bounds->boolean;
  }
  if (result.has_bounds) {
    if (!read_double(value.find("lower_bound"), &result.lower_bound) ||
        !read_double(value.find("upper_bound"), &result.upper_bound)) {
      return false;
    }
  } else {
    // Store records always carry the fields; sink lines omit them when
    // has_bounds is false.  Absent reads back as the default 0.
    read_double(value.find("lower_bound"), &result.lower_bound);
    read_double(value.find("upper_bound"), &result.upper_bound);
  }
  if (const json::Value* extras = value.find("extras"); extras != nullptr) {
    if (!extras->is_object()) return false;
    for (const auto& [name, entry] : extras->object) {
      ConfidenceInterval interval;
      if (!read_double(entry.find("mean"), &interval.mean) ||
          !read_double(entry.find("half_width"), &interval.half_width)) {
        return false;
      }
      result.extras.emplace_back(name, interval);
    }
  }
  *out = std::move(result);
  return true;
}

std::string store_record_json(const std::string& key, const Scenario& scenario,
                              const RunResult& result) {
  std::ostringstream os;
  os << "{\"v\":" << kResultStoreVersion << ",\"key\":\"" << json_escape(key)
     << "\",\"scenario\":\"" << json_escape(scenario.to_string())
     << "\",\"result\":" << result_to_json(result) << '}';
  return os.str();
}

// ------------------------------------------------------------------- store

ResultStore::ResultStore(std::string path) : path_(std::move(path)) {
  load_existing();
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    error_ = "cannot open result store '" + path_ + "' for append";
    return;
  }
  if (tail_unterminated_) {
    // The file ends mid-line (a kill between write and newline).  Start
    // appends on a fresh line — otherwise the next record would merge
    // into the damaged fragment and take it down with itself on reload.
    std::fputc('\n', file_);
    std::fflush(file_);
    ::fsync(fileno(file_));
  }
}

ResultStore::~ResultStore() {
  if (file_ != nullptr) std::fclose(file_);
}

bool ResultStore::apply_record(const json::Value& record) {
  if (!record.is_object()) return false;
  const json::Value* version = record.find("v");
  const json::Value* key = record.find("key");
  const json::Value* result_value = record.find("result");
  if (version == nullptr || !version->is_number() || key == nullptr ||
      !key->is_string() || key->string.empty() || result_value == nullptr) {
    return false;
  }
  if (static_cast<int>(version->number) != kResultStoreVersion ||
      version->number != static_cast<int>(version->number)) {
    ++stats_.skipped_version;
    return true;  // a well-formed record we must not interpret — not garbage
  }
  Entry entry;
  if (!result_from_json(*result_value, &entry.result)) return false;
  if (const json::Value* scenario = record.find("scenario");
      scenario != nullptr && scenario->is_string()) {
    entry.scenario_text = scenario->string;
  }
  const auto [it, inserted] = index_.insert_or_assign(key->string, std::move(entry));
  (void)it;
  if (inserted) {
    order_.push_back(key->string);
  } else {
    ++stats_.duplicate_keys;  // append-only history: last record wins
  }
  ++stats_.records_loaded;
  return true;
}

void ResultStore::load_existing() {
  std::ifstream in(path_, std::ios::binary);
  if (!in) return;  // no file yet: an empty store
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  std::size_t begin = 0;
  while (begin < content.size()) {
    std::size_t end = content.find('\n', begin);
    const bool has_newline = end != std::string::npos;
    if (!has_newline) end = content.size();
    const std::string line = content.substr(begin, end - begin);
    begin = end + (has_newline ? 1 : 0);
    if (!has_newline) tail_unterminated_ = true;

    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    json::Value record;
    const bool parsed = json::parse(line, &record) && apply_record(record);
    if (!parsed) {
      // A cut final record (kill mid-append, no newline written) is the
      // expected crash shape; anything else is interleaved garbage.
      if (!has_newline) {
        stats_.truncated_tail = true;
      } else {
        ++stats_.skipped_garbage;
      }
    }
  }
}

ResultStore::LoadStats ResultStore::load_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

namespace {

/// Process-wide store telemetry (obs/metrics.hpp), resolved once.
struct StoreMetrics {
  obs::Counter& fetch_hits;
  obs::Counter& fetch_misses;
  obs::Counter& persists;

  static StoreMetrics& get() {
    auto& registry = obs::global_metrics();
    static StoreMetrics metrics{
        registry.counter("routesim_store_fetch_hits_total"),
        registry.counter("routesim_store_fetch_misses_total"),
        registry.counter("routesim_store_persist_total")};
    return metrics;
  }
};

}  // namespace

bool ResultStore::fetch(const std::string& key, RunResult* out) {
  RS_EXPECTS(out != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    StoreMetrics::get().fetch_misses.add();
    return false;
  }
  ++hits_;
  StoreMetrics::get().fetch_hits.add();
  *out = it->second.result;
  return true;
}

void ResultStore::persist(const std::string& key, const Scenario& scenario,
                          const RunResult& result) {
  StoreMetrics::get().persists.add();
  const std::string line = store_record_json(key, scenario, result) + "\n";
  std::lock_guard<std::mutex> lock(mutex_);
  if (index_.find(key) == index_.end()) order_.push_back(key);
  index_.insert_or_assign(key, Entry{scenario.to_string(), result});
  if (file_ == nullptr) return;  // unopenable store: in-memory tier only
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
  // Flush-per-record durability: after this returns, the record survives
  // a kill; a kill *during* it leaves at worst a truncated tail the
  // loader drops.
  ::fsync(fileno(file_));
}

void ResultStore::put(const Scenario& scenario, const RunResult& result) {
  const Scenario resolved = scenario.resolved();
  persist(ResultCache::key(resolved), resolved, result);
}

bool ResultStore::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.find(key) != index_.end();
}

std::size_t ResultStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

std::vector<std::string> ResultStore::keys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return order_;
}

std::uint64_t ResultStore::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t ResultStore::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

bool ResultStore::compact() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string content;
  for (const std::string& key : order_) {
    const Entry& entry = index_.at(key);
    std::ostringstream os;
    os << "{\"v\":" << kResultStoreVersion << ",\"key\":\"" << json_escape(key)
       << "\",\"scenario\":\"" << json_escape(entry.scenario_text)
       << "\",\"result\":" << result_to_json(entry.result) << "}\n";
    content += os.str();
  }
  if (!write_file_atomic(path_, content)) return false;
  if (file_ != nullptr) std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    error_ = "cannot reopen result store '" + path_ + "' after compaction";
    return false;
  }
  stats_.duplicate_keys = 0;
  stats_.skipped_garbage = 0;
  stats_.skipped_version = 0;
  stats_.truncated_tail = false;
  return true;
}

// ------------------------------------------------------------------ replay

std::size_t replay_results(
    const std::string& path,
    const std::function<void(const std::string& key, const Scenario& scenario,
                             const RunResult& result)>& consume) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0;
  std::size_t consumed = 0;
  for (std::string line; std::getline(in, line);) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    json::Value record;
    if (!json::parse(line, &record) || !record.is_object()) continue;

    // Store record: {"v":..,"key":..,"scenario":..,"result":{...}}.
    if (const json::Value* result_value = record.find("result");
        result_value != nullptr) {
      const json::Value* version = record.find("v");
      const json::Value* key = record.find("key");
      const json::Value* scenario_text = record.find("scenario");
      if (version == nullptr || !version->is_number() ||
          static_cast<int>(version->number) != kResultStoreVersion ||
          key == nullptr || !key->is_string() || scenario_text == nullptr ||
          !scenario_text->is_string()) {
        continue;
      }
      RunResult result;
      Scenario scenario;
      if (!result_from_json(*result_value, &result) ||
          !scenario_from_text(scenario_text->string, &scenario)) {
        continue;
      }
      consume(key->string, scenario, result);
      ++consumed;
      continue;
    }

    // Campaign sink line: the same metric fields at top level plus the
    // resolved scenario one-liner; the key is re-derived from it.
    const json::Value* scenario_text = record.find("scenario");
    if (scenario_text == nullptr || !scenario_text->is_string()) continue;
    Scenario scenario;
    RunResult result;
    if (!scenario_from_text(scenario_text->string, &scenario) ||
        !result_from_json(record, &result)) {
      continue;
    }
    const Scenario resolved = scenario.resolved();
    consume(ResultCache::key(resolved), resolved, result);
    ++consumed;
  }
  return consumed;
}

}  // namespace routesim
