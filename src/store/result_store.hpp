#pragma once
/// \file result_store.hpp
/// \brief The persistent result tier: a disk-backed, append-only store of
///        finished `RunResult`s keyed by the canonical threads-normalized
///        resolved-scenario string, surviving restarts and mid-write kills.
///
/// The Campaign engine's `ResultCache` dies with the process, so every
/// long sweep started cold and a killed campaign lost all finished cells.
/// `ResultStore` is the durable tier behind it: one JSONL file of
/// self-contained records
///
///   {"v":1,"key":"<canonical scenario>","scenario":"<resolved form>",
///    "result":{...exact round-trip RunResult...}}
///
/// appended (and fsync'd) per finished cell, with an in-memory index
/// rebuilt on open.  The loader is crash-tolerant by construction:
///   - a truncated final record (kill between write and newline) is
///     dropped, everything before it stays valid;
///   - an interleaved garbage line is skipped and counted;
///   - duplicate keys resolve last-wins (an append-only file never
///     rewrites history — compact() folds it);
///   - records whose "v" field mismatches kStoreVersion are skipped, so a
///     future format change cannot be misread as data.
///
/// Numbers round-trip *bit-identically*: finite doubles are written in
/// fmt_shortest() form (shortest decimal that strtod's back to the same
/// bits) and non-finite values as the strings "nan"/"inf"/"-inf" (JSON
/// has no literals for them; the campaign sink's lossy `null` is accepted
/// on read as NaN).  That exactness is what lets a resumed campaign
/// reproduce a cold run's results to the last bit (tests/test_campaign.cpp
/// pins it).
///
/// `ResultStore` implements the engine's `ResultBackend` seam, so wiring
/// one into `EngineOptions::store` gives any campaign checkpoint/resume
/// for free; `routesim_bench --store PATH` and the `routesim_serve`
/// daemon are the two CLI front ends.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/campaign.hpp"
#include "core/scenario.hpp"
#include "util/json_parse.hpp"

namespace routesim {

/// Current on-disk record version ("v" field); bump on schema change.
inline constexpr int kResultStoreVersion = 1;

/// Serialises one RunResult as the store's exact-round-trip JSON object
/// (no surrounding record envelope).  Two results are bit-identical iff
/// their serialisations are byte-identical — tests lean on this.
[[nodiscard]] std::string result_to_json(const RunResult& result);

/// Reconstructs a RunResult from result_to_json() output *or* from a
/// campaign JSONL sink line (same field names at top level; its `null`
/// non-finites read back as NaN).  Returns false when the core metric
/// fields are absent or malformed.
[[nodiscard]] bool result_from_json(const json::Value& value, RunResult* out);

/// One full store record as a single JSON line (no trailing newline).
[[nodiscard]] std::string store_record_json(const std::string& key,
                                            const Scenario& scenario,
                                            const RunResult& result);

/// The disk-backed result store.  Thread-safe; all state guarded by one
/// mutex (the store is consulted once per cell, never per packet).
class ResultStore final : public ResultBackend {
 public:
  struct LoadStats {
    std::size_t records_loaded = 0;    ///< valid records applied (incl. overwrites)
    std::size_t duplicate_keys = 0;    ///< overwrites resolved last-wins
    std::size_t skipped_garbage = 0;   ///< unparseable / non-record lines
    std::size_t skipped_version = 0;   ///< "v" mismatch records
    bool truncated_tail = false;       ///< final record cut mid-write, dropped
  };

  /// Opens (creating if absent) the store at `path`: loads every valid
  /// record into the index, then holds the file open in append mode.
  /// Check ok() — an unopenable path leaves a store that fetches nothing
  /// and persists nowhere, with error() explaining why.
  explicit ResultStore(std::string path);
  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;
  ~ResultStore() override;

  [[nodiscard]] bool ok() const noexcept { return file_ != nullptr; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] LoadStats load_stats() const;

  // --- ResultBackend -----------------------------------------------------
  [[nodiscard]] bool fetch(const std::string& key, RunResult* out) override;
  void persist(const std::string& key, const Scenario& scenario,
               const RunResult& result) override;

  /// persist() with the key derived from the scenario (ResultCache::key).
  void put(const Scenario& scenario, const RunResult& result);

  /// Key-presence probe without copying the result (no hit/miss counting).
  [[nodiscard]] bool contains(const std::string& key) const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::vector<std::string> keys() const;  ///< first-seen order
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;

  /// Rewrites the file with exactly one record per key (current values,
  /// first-seen key order) via temp-file + rename, then reopens the append
  /// handle.  A kill during compaction leaves either the old or the new
  /// file, never a prefix.  Returns false (store unchanged) on I/O error.
  bool compact();

 private:
  struct Entry {
    std::string scenario_text;
    RunResult result;
  };

  void load_existing();  ///< constructor helper; fills index_ + stats_
  bool apply_record(const json::Value& record);

  mutable std::mutex mutex_;
  std::string path_;
  std::string error_;
  /// Loader saw a final line with no '\n' (parseable or not): the ctor
  /// terminates it so appends never merge into the existing tail.
  bool tail_unterminated_ = false;
  std::FILE* file_ = nullptr;
  std::unordered_map<std::string, Entry> index_;
  std::vector<std::string> order_;  ///< keys in first-seen order
  LoadStats stats_{};
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Replays previously written results from `path` — either a store file
/// or a campaign `--jsonl` sink stream (both are recognised per line) —
/// invoking `consume(key, scenario, result)` for each valid record, in
/// file order (so last-wins falls out of insertion order).  Unparseable
/// lines are skipped, like the store loader.  Returns the number of
/// records consumed.  This is the `--resume PATH` engine: replayed
/// records pre-populate an in-process cache so finished cells never
/// reschedule.
std::size_t replay_results(
    const std::string& path,
    const std::function<void(const std::string& key, const Scenario& scenario,
                             const RunResult& result)>& consume);

}  // namespace routesim
