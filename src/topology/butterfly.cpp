#include "topology/butterfly.hpp"

namespace routesim {

Butterfly::Butterfly(int d) : d_(d) {
  RS_EXPECTS_MSG(d >= 1 && d <= 25, "butterfly dimension must be in [1, 25]");
  rows_ = std::uint32_t{1} << d;
  straight_count_ = static_cast<std::uint32_t>(d) << d;
  num_arcs_ = 2u * straight_count_;
}

std::vector<BflyArcId> Butterfly::path(NodeId origin_row, NodeId dest_row) const {
  RS_EXPECTS(origin_row < rows_ && dest_row < rows_);
  std::vector<BflyArcId> arcs;
  arcs.reserve(static_cast<std::size_t>(d_));
  NodeId row = origin_row;
  for (int level = 1; level <= d_; ++level) {
    if (has_dimension(row ^ dest_row, level)) {
      arcs.push_back(arc_index(row, level, ArcKind::kVertical));
      row = flip_dimension(row, level);
    } else {
      arcs.push_back(arc_index(row, level, ArcKind::kStraight));
    }
  }
  RS_ENSURES(row == dest_row);
  return arcs;
}

}  // namespace routesim
