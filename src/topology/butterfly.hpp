#pragma once
/// \file butterfly.hpp
/// \brief The d-dimensional butterfly network (§4.1 of the paper).
///
/// The butterfly is the "unfolded" d-cube: (d+1) levels of 2^d nodes each.
/// Node [x; j] of level j (j = 1 .. d+1) connects to [x; j+1] via a
/// *straight* arc (x; j; s) and to [x XOR e_j; j+1] via a *vertical* arc
/// (x; j; v).  Packets enter at level 1 and exit at level d+1; for each
/// origin-destination pair there is a unique path of exactly d arcs, whose
/// vertical arcs correspond to the dimensions crossed by the hypercube
/// greedy scheme in increasing index order.

#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "util/bits.hpp"

namespace routesim {

/// Dense identifier of a butterfly arc; see Butterfly::arc_index.
using BflyArcId = std::uint32_t;

class Butterfly {
 public:
  enum class ArcKind : std::uint8_t { kStraight, kVertical };

  /// Constructs the d-dimensional butterfly.  Precondition: 1 <= d <= 25.
  explicit Butterfly(int d);

  [[nodiscard]] int dimension() const noexcept { return d_; }
  [[nodiscard]] std::uint32_t rows() const noexcept { return rows_; }
  [[nodiscard]] int num_levels() const noexcept { return d_ + 1; }
  [[nodiscard]] std::uint64_t num_nodes() const noexcept {
    return static_cast<std::uint64_t>(d_ + 1) * rows_;
  }
  /// d * 2^(d+1) arcs: d levels of 2^d straight plus 2^d vertical arcs.
  [[nodiscard]] std::uint32_t num_arcs() const noexcept { return num_arcs_; }

  /// Arc indexing: all straight arcs first (grouped by level), then all
  /// vertical arcs (grouped by level):
  ///   (x; j; s) -> (j-1) * 2^d + x
  ///   (x; j; v) -> d * 2^d + (j-1) * 2^d + x
  [[nodiscard]] BflyArcId arc_index(NodeId row, int level, ArcKind kind) const {
    RS_DASSERT(row < rows_ && level >= 1 && level <= d_);
    const auto base = kind == ArcKind::kStraight ? 0u : straight_count_;
    return base + static_cast<BflyArcId>(level - 1) * rows_ + row;
  }

  [[nodiscard]] ArcKind arc_kind(BflyArcId a) const {
    RS_DASSERT(a < num_arcs_);
    return a < straight_count_ ? ArcKind::kStraight : ArcKind::kVertical;
  }

  /// Level (1-based) of the arc's tail node.
  [[nodiscard]] int arc_level(BflyArcId a) const {
    RS_DASSERT(a < num_arcs_);
    const BflyArcId within = a < straight_count_ ? a : a - straight_count_;
    return static_cast<int>(within / rows_) + 1;
  }

  /// Row of the arc's tail node.
  [[nodiscard]] NodeId arc_row(BflyArcId a) const {
    RS_DASSERT(a < num_arcs_);
    const BflyArcId within = a < straight_count_ ? a : a - straight_count_;
    return within & (rows_ - 1u);
  }

  /// Row of the arc's head node (level arc_level(a) + 1).
  [[nodiscard]] NodeId arc_target_row(BflyArcId a) const {
    const NodeId row = arc_row(a);
    return arc_kind(a) == ArcKind::kStraight ? row
                                             : flip_dimension(row, arc_level(a));
  }

  /// The unique path from [origin_row; 1] to [dest_row; d+1]: d arcs, one
  /// per level, vertical exactly at the levels where origin and destination
  /// rows differ.
  [[nodiscard]] std::vector<BflyArcId> path(NodeId origin_row, NodeId dest_row) const;

  /// Dense node index of [row; level] (level 1 .. d+1): nodes are grouped
  /// by level, so node_index = (level-1) * 2^d + row.  Bijection onto
  /// [0, (d+1)*2^d); used by the fault model's node bitset.
  [[nodiscard]] std::uint32_t node_index(NodeId row, int level) const {
    RS_DASSERT(row < rows_ && level >= 1 && level <= d_ + 1);
    return static_cast<std::uint32_t>(level - 1) * rows_ + row;
  }

  /// Appends every arc incident to the node with dense index `node` — its
  /// out-arcs (levels 1..d have a straight and a vertical one) and its
  /// in-arcs (levels 2..d+1: the straight arc from the same row and the
  /// vertical arc from the row differing in bit level-1) — to `out`.
  void append_incident_arcs(std::uint32_t node, std::vector<BflyArcId>& out) const {
    const int level = static_cast<int>(node / rows_) + 1;
    const NodeId row = node & (rows_ - 1u);
    if (level <= d_) {
      out.push_back(arc_index(row, level, ArcKind::kStraight));
      out.push_back(arc_index(row, level, ArcKind::kVertical));
    }
    if (level >= 2) {
      out.push_back(arc_index(row, level - 1, ArcKind::kStraight));
      out.push_back(arc_index(flip_dimension(row, level - 1), level - 1,
                              ArcKind::kVertical));
    }
  }

 private:
  int d_;
  std::uint32_t rows_;
  std::uint32_t straight_count_;
  std::uint32_t num_arcs_;
};

}  // namespace routesim
