#include "topology/hypercube.hpp"

namespace routesim {

Hypercube::Hypercube(int d) : d_(d) {
  RS_EXPECTS_MSG(d >= 1 && d <= 26, "hypercube dimension must be in [1, 26]");
  num_nodes_ = std::uint32_t{1} << d;
  num_arcs_ = static_cast<std::uint32_t>(d) << d;
}

std::vector<ArcId> Hypercube::canonical_path(NodeId x, NodeId z) const {
  RS_EXPECTS(valid_node(x) && valid_node(z));
  std::vector<ArcId> path;
  path.reserve(static_cast<std::size_t>(hamming_distance(x, z)));
  NodeId cur = x;
  NodeId remaining = x ^ z;
  while (remaining != 0) {
    const int dim = lowest_dimension(remaining);
    path.push_back(arc_index(cur, dim));
    cur = flip_dimension(cur, dim);
    remaining &= remaining - 1;  // clear the lowest set bit
  }
  RS_ENSURES(cur == z);
  return path;
}

std::vector<int> Hypercube::required_dimensions(NodeId x, NodeId z) const {
  RS_EXPECTS(valid_node(x) && valid_node(z));
  std::vector<int> dims;
  NodeId remaining = x ^ z;
  while (remaining != 0) {
    dims.push_back(lowest_dimension(remaining));
    remaining &= remaining - 1;
  }
  return dims;
}

std::vector<NodeId> Hypercube::neighbours(NodeId x) const {
  RS_EXPECTS(valid_node(x));
  std::vector<NodeId> result;
  result.reserve(static_cast<std::size_t>(d_));
  for (int m = 1; m <= d_; ++m) result.push_back(flip_dimension(x, m));
  return result;
}

}  // namespace routesim
