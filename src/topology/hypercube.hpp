#pragma once
/// \file hypercube.hpp
/// \brief The d-dimensional binary hypercube (§1.1 of the paper).
///
/// Nodes are numbered 0 .. 2^d - 1; the binary identity of node z is its
/// binary representation (z_d, ..., z_1).  Every arc is directed and connects
/// two nodes differing in exactly one identity bit; the arc (x, x XOR e_m)
/// is "of the m-th type", and the set of all arcs of type m is the m-th
/// *dimension*.  The class provides a dense arc indexing used by all
/// simulators: arcs of dimension 1 come first, then dimension 2, etc., so
/// the index doubles as the level index of the equivalent network Q (§3.1).

#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "util/bits.hpp"

namespace routesim {

/// Dense identifier of a directed hypercube arc; see Hypercube::arc_index.
using ArcId = std::uint32_t;

class Hypercube {
 public:
  /// Constructs the d-cube.  Precondition: 1 <= d <= 26 (arc ids must fit
  /// in 32 bits; simulations use d <= 12).
  explicit Hypercube(int d);

  [[nodiscard]] int dimension() const noexcept { return d_; }
  [[nodiscard]] std::uint32_t num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] std::uint32_t num_arcs() const noexcept { return num_arcs_; }

  /// Index of arc (x, x XOR e_dim): arcs are grouped by dimension, so
  /// arc_index = (dim-1) * 2^d + x.  This is a bijection onto [0, d*2^d).
  [[nodiscard]] ArcId arc_index(NodeId x, int dim) const {
    RS_DASSERT(valid_node(x) && dim >= 1 && dim <= d_);
    return static_cast<ArcId>(dim - 1) * num_nodes_ + x;
  }

  /// Source node of an arc.
  [[nodiscard]] NodeId arc_source(ArcId a) const {
    RS_DASSERT(a < num_arcs_);
    return a & (num_nodes_ - 1u);
  }

  /// Dimension (1-based) of an arc.
  [[nodiscard]] int arc_dimension(ArcId a) const {
    RS_DASSERT(a < num_arcs_);
    return static_cast<int>(a / num_nodes_) + 1;
  }

  /// Head node of an arc: source XOR e_dimension.
  [[nodiscard]] NodeId arc_target(ArcId a) const {
    return flip_dimension(arc_source(a), arc_dimension(a));
  }

  [[nodiscard]] bool valid_node(NodeId x) const noexcept { return x < num_nodes_; }

  /// Hamming distance between two nodes (shortest-path length).
  [[nodiscard]] int distance(NodeId x, NodeId z) const {
    RS_DASSERT(valid_node(x) && valid_node(z));
    return hamming_distance(x, z);
  }

  /// The canonical (greedy) path from x to z: the unique shortest path that
  /// crosses the required dimensions in increasing index order (§3).
  /// Returns the sequence of arcs traversed; empty when x == z.
  [[nodiscard]] std::vector<ArcId> canonical_path(NodeId x, NodeId z) const;

  /// The dimensions a packet from x to z must cross, in increasing order.
  [[nodiscard]] std::vector<int> required_dimensions(NodeId x, NodeId z) const;

  /// All d out-neighbours of x, ordered by dimension.
  [[nodiscard]] std::vector<NodeId> neighbours(NodeId x) const;

  /// Appends every arc incident to x — the d out-arcs (x, dim) and the d
  /// in-arcs (x XOR e_dim, dim) — to `out`, in dimension order.  This is
  /// the enumeration a node fault uses to take its arcs down
  /// (fault/fault_model.hpp).
  void append_incident_arcs(NodeId x, std::vector<ArcId>& out) const {
    RS_DASSERT(valid_node(x));
    for (int dim = 1; dim <= d_; ++dim) {
      out.push_back(arc_index(x, dim));
      out.push_back(arc_index(flip_dimension(x, dim), dim));
    }
  }

 private:
  int d_;
  std::uint32_t num_nodes_;
  std::uint32_t num_arcs_;
};

}  // namespace routesim
