#include "topology/ring.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <string>

#include "util/assert.hpp"

namespace routesim {

namespace {

constexpr int kMinRingD = 2;
constexpr int kMaxRingD = 14;

[[noreturn]] void bad_chords(const std::string& text, const std::string& why) {
  throw std::invalid_argument("bad ring_chords '" + text + "': " + why +
                              " (expected '', 'papillon', or a CSV of "
                              "distinct strides in [2, n/2 - 1])");
}

}  // namespace

std::vector<std::uint32_t> papillon_strides(int d) {
  RS_EXPECTS_MSG(d >= kMinRingD && d <= kMaxRingD,
             "papillon_strides: d out of range");
  std::vector<std::uint32_t> strides;
  for (int j = 0; j <= d - 2; ++j) {
    strides.push_back(std::uint32_t{1} << j);
  }
  return strides;
}

std::vector<std::uint32_t> parse_ring_chords(const std::string& text, int d) {
  if (d < kMinRingD || d > kMaxRingD) {
    throw std::invalid_argument(
        "topology=ring needs d in [" + std::to_string(kMinRingD) + ", " +
        std::to_string(kMaxRingD) + "] (n = 2^d nodes), got d=" +
        std::to_string(d));
  }
  if (text.empty()) {
    return {1};
  }
  if (text == "papillon") {
    return papillon_strides(d);
  }
  const std::uint32_t n = std::uint32_t{1} << d;
  std::vector<std::uint32_t> strides = {1};
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    const std::string item = text.substr(pos, comma - pos);
    std::size_t used = 0;
    unsigned long value = 0;
    try {
      value = std::stoul(item, &used);
    } catch (const std::exception&) {
      bad_chords(text, "'" + item + "' is not a stride");
    }
    if (used != item.size() || item.empty()) {
      bad_chords(text, "'" + item + "' is not a stride");
    }
    if (value < 2 || value > n / 2 - 1) {
      bad_chords(text, "stride " + item + " outside [2, " +
                           std::to_string(n / 2 - 1) + "] for n=" +
                           std::to_string(n));
    }
    strides.push_back(static_cast<std::uint32_t>(value));
    pos = comma + 1;
  }
  std::sort(strides.begin(), strides.end());
  if (std::adjacent_find(strides.begin(), strides.end()) != strides.end()) {
    bad_chords(text, "duplicate stride");
  }
  return strides;
}

RingTopology::RingTopology(int d, std::vector<std::uint32_t> strides)
    : d_(d), n_(std::uint32_t{1} << d), strides_(std::move(strides)) {
  RS_EXPECTS_MSG(d_ >= kMinRingD && d_ <= kMaxRingD, "RingTopology: d out of range");
  RS_EXPECTS_MSG(!strides_.empty() && strides_[0] == 1,
             "RingTopology: stride set must start with 1");
  RS_EXPECTS_MSG(std::is_sorted(strides_.begin(), strides_.end()),
             "RingTopology: strides must be ascending");
  for (std::size_t j = 1; j < strides_.size(); ++j) {
    RS_EXPECTS_MSG(strides_[j] >= 2 && strides_[j] <= n_ / 2 - 1,
               "RingTopology: chord stride out of [2, n/2 - 1]");
    RS_EXPECTS_MSG(strides_[j] != strides_[j - 1], "RingTopology: duplicate stride");
  }

  // Graph distance from node 0 to every offset, by BFS; rotation symmetry
  // makes this one table serve metric() for every source.
  dist0_.assign(n_, -1);
  dist0_[0] = 0;
  std::deque<std::uint32_t> frontier = {0};
  while (!frontier.empty()) {
    const std::uint32_t at = frontier.front();
    frontier.pop_front();
    for (const std::uint32_t s : strides_) {
      for (const std::uint32_t next : {(at + s) & (n_ - 1), (at - s) & (n_ - 1)}) {
        if (dist0_[next] < 0) {
          dist0_[next] = dist0_[at] + 1;
          frontier.push_back(next);
        }
      }
    }
  }
  diameter_ = *std::max_element(dist0_.begin(), dist0_.end());
  RS_EXPECTS_MSG(diameter_ > 0, "RingTopology: disconnected stride set");

  if (is_plain()) {
    // Clockwise arcs carry offsets 1..n/2 (cw tie-break at the antipodal
    // offset), so the heaviest uniform load per unit rate is
    // (1 + 2 + ... + n/2) / n = (n + 2) / 8.
    uniform_load_ = (static_cast<double>(n_) + 2.0) / 8.0;
  } else {
    // Rotation equivariance: per-class arc loads under uniform traffic
    // equal (usages of that class over greedy paths from node 0) / n.
    std::vector<double> usage(2 * strides_.size(), 0.0);
    for (std::uint32_t dest = 1; dest < n_; ++dest) {
      NodeId at = 0;
      while (at != dest) {
        const ArcId arc = greedy_next_arc(at, dest);
        usage[arc >> d_] += 1.0;
        at = arc_target(arc);
      }
    }
    uniform_load_ =
        *std::max_element(usage.begin(), usage.end()) / static_cast<double>(n_);
  }
}

const std::string& RingTopology::name() const noexcept {
  static const std::string kName = "ring";
  return kName;
}

NodeId RingTopology::arc_target(ArcId a) const {
  RS_DASSERT(a < num_arcs());
  const std::uint32_t cls = a >> d_;
  const std::uint32_t s = strides_[cls >> 1];
  const NodeId src = a & (n_ - 1);
  return ((cls & 1) == 0 ? src + s : src - s) & (n_ - 1);
}

void RingTopology::append_incident_arcs(NodeId x, std::vector<ArcId>& out) const {
  const int degree = out_degree(x);
  for (int k = 0; k < degree; ++k) {
    out.push_back(out_arc(x, k));
  }
  // The in-arc of class c at x leaves the node whose class-c arc lands on
  // x: +s arcs arrive from x - s, -s arcs from x + s.
  for (std::uint32_t cls = 0; cls < static_cast<std::uint32_t>(degree); ++cls) {
    const std::uint32_t s = strides_[cls >> 1];
    const NodeId src = ((cls & 1) == 0 ? x - s : x + s) & (n_ - 1);
    out.push_back(cls * n_ + src);
  }
}

ArcId RingTopology::greedy_next_arc(NodeId cur, NodeId dest) const {
  RS_DASSERT(metric(cur, dest) > 0);
  ArcId best = 0;
  int best_dist = -1;
  const int degree = out_degree(cur);
  for (int k = 0; k < degree; ++k) {
    const ArcId arc = out_arc(cur, k);
    const int dist = metric(arc_target(arc), dest);
    if (best_dist < 0 || dist < best_dist) {
      best = arc;
      best_dist = dist;
    }
  }
  RS_DASSERT(best_dist < metric(cur, dest));
  return best;
}

}  // namespace routesim
