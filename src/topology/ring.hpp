#pragma once
/// \file ring.hpp
/// \brief Ring topologies with optional symmetric chord strides.
///
/// `RingTopology` puts n = 2^d nodes on a bidirectional cycle and
/// optionally adds symmetric chords: for each stride s in the stride set,
/// every node x gains arcs x -> x+s and x -> x-s (mod n).  Three flavours
/// ride on the one class, selected by the `ring_chords=` scenario key:
///
///   - ""          plain ring, strides {1};
///   - "a,b,..."   degree-k chord ring, strides {1, a, b, ...} with each
///                 chord stride in [2, n/2 - 1];
///   - "papillon"  the doubling ladder {1, 2, 4, ..., 2^(d-2)}, a
///                 chordal-ring rendering of the butterfly-emulating
///                 Papillon construction (PAPERS.md): greedy ring-distance
///                 descent reaches any destination in O(d) hops.
///
/// Arcs are indexed class-major: class 2j is +strides[j] (clockwise),
/// class 2j+1 is -strides[j], and arc (class c, source x) has index
/// c * n + x.  Greedy descends the exact graph distance (a BFS table of
/// distances-from-node-0, valid for every node by rotation symmetry),
/// breaking ties toward the lowest arc class, i.e. clockwise-first and
/// short-stride-first.
///
/// Closed forms pinned by tests/test_topology_conformance.cpp:
///   - plain ring, uniform destinations: heaviest per-arc load per unit
///     rate is (n + 2) / 8 on clockwise arcs (cw tie-break at distance
///     n/2 makes cw strictly heavier than ccw's (n - 2) / 8);
///   - plain ring, tornado permutation x -> x + n/2 - 1: greedy sends all
///     traffic clockwise and max per-arc load is n/2 - 1 = Theta(n);
///   - chord rings: the constructor computes the uniform load by a
///     single-source sweep (rotation equivariance), and the conformance
///     tests cross-check it against an all-pairs brute force.

#include <cstdint>
#include <string>
#include <vector>

#include "topology/topology.hpp"
#include "util/assert.hpp"

namespace routesim {

/// Parses a `ring_chords=` value into the full ascending stride set
/// (always including stride 1).  `text` is "", "papillon", or a CSV of
/// distinct chord strides; each chord stride must lie in [2, n/2 - 1]
/// for n = 2^d.  Throws std::invalid_argument with a precise message.
[[nodiscard]] std::vector<std::uint32_t> parse_ring_chords(
    const std::string& text, int d);

/// The Papillon doubling ladder for n = 2^d nodes: {1, 2, 4, ..., 2^(d-2)}.
[[nodiscard]] std::vector<std::uint32_t> papillon_strides(int d);

class RingTopology final : public Topology {
 public:
  /// n = 2^d nodes, d in [2, 14]; `strides` ascending, strides[0] == 1,
  /// chord strides in [2, n/2 - 1] (as produced by parse_ring_chords).
  RingTopology(int d, std::vector<std::uint32_t> strides);

  [[nodiscard]] const std::string& name() const noexcept override;
  [[nodiscard]] std::uint32_t num_nodes() const noexcept override { return n_; }
  [[nodiscard]] std::uint32_t num_arcs() const noexcept override {
    return static_cast<std::uint32_t>(2 * strides_.size()) * n_;
  }
  [[nodiscard]] NodeId arc_source(ArcId a) const override { return a & (n_ - 1); }
  [[nodiscard]] NodeId arc_target(ArcId a) const override;
  [[nodiscard]] int out_degree(NodeId) const override {
    return static_cast<int>(2 * strides_.size());
  }
  [[nodiscard]] ArcId out_arc(NodeId x, int k) const override {
    RS_DASSERT(k >= 0 && k < out_degree(x));
    return static_cast<ArcId>(k) * n_ + x;
  }
  void append_incident_arcs(NodeId x, std::vector<ArcId>& out) const override;
  [[nodiscard]] int metric(NodeId from, NodeId to) const override {
    return dist0_[(to - from) & (n_ - 1)];
  }
  [[nodiscard]] int diameter() const override { return diameter_; }
  [[nodiscard]] ArcId greedy_next_arc(NodeId cur, NodeId dest) const override;
  [[nodiscard]] double uniform_load_per_lambda() const override {
    return uniform_load_;
  }

  [[nodiscard]] int d() const noexcept { return d_; }
  [[nodiscard]] const std::vector<std::uint32_t>& strides() const noexcept {
    return strides_;
  }
  [[nodiscard]] bool is_plain() const noexcept { return strides_.size() == 1; }

 private:
  int d_;
  std::uint32_t n_;
  std::vector<std::uint32_t> strides_;
  std::vector<int> dist0_;  ///< graph distance from node 0 to each offset
  int diameter_ = 0;
  double uniform_load_ = 0.0;
};

}  // namespace routesim
