#include "topology/topology.hpp"

#include <algorithm>
#include <stdexcept>

#include "topology/butterfly.hpp"
#include "topology/ring.hpp"
#include "topology/torus.hpp"
#include "util/assert.hpp"

namespace routesim {

namespace {

/// Adapter over the paper's Hypercube: greedy descent crosses the lowest
/// required dimension first (the canonical path of §3), matching the
/// specialised HypercubeGreedySim step for step.
class HypercubeTopology final : public Topology {
 public:
  explicit HypercubeTopology(int d) : cube_(d) {}

  [[nodiscard]] const std::string& name() const noexcept override {
    static const std::string kName = "hypercube";
    return kName;
  }
  [[nodiscard]] std::uint32_t num_nodes() const noexcept override {
    return cube_.num_nodes();
  }
  [[nodiscard]] std::uint32_t num_arcs() const noexcept override {
    return cube_.num_arcs();
  }
  [[nodiscard]] NodeId arc_source(ArcId a) const override {
    return cube_.arc_source(a);
  }
  [[nodiscard]] NodeId arc_target(ArcId a) const override {
    return cube_.arc_target(a);
  }
  [[nodiscard]] int out_degree(NodeId) const override {
    return cube_.dimension();
  }
  [[nodiscard]] ArcId out_arc(NodeId x, int k) const override {
    RS_DASSERT(k >= 0 && k < cube_.dimension());
    return cube_.arc_index(x, k + 1);
  }
  void append_incident_arcs(NodeId x, std::vector<ArcId>& out) const override {
    cube_.append_incident_arcs(x, out);
  }
  [[nodiscard]] int metric(NodeId from, NodeId to) const override {
    return cube_.distance(from, to);
  }
  [[nodiscard]] int diameter() const override { return cube_.dimension(); }
  [[nodiscard]] ArcId greedy_next_arc(NodeId cur, NodeId dest) const override {
    RS_DASSERT(metric(cur, dest) > 0);
    return cube_.arc_index(cur, lowest_dimension(cur ^ dest));
  }
  /// Each of the d*2^d arcs is crossed by a uniform-destination packet with
  /// probability 1/2 per dimension, so the per-arc load is lambda/2.
  [[nodiscard]] double uniform_load_per_lambda() const override { return 0.5; }

 private:
  Hypercube cube_;
};

/// Adapter over the paper's Butterfly.  Nodes are the dense
/// (level-1)*2^d + row indexing of Butterfly::node_index; the graph is a
/// DAG (packets only descend levels), so metric() is partial: (r1, l1)
/// reaches (r2, l2) iff l2 >= l1 and the rows agree outside the crossed
/// levels l1..l2-1, in which case the distance is exactly l2 - l1.
class ButterflyTopology final : public Topology {
 public:
  explicit ButterflyTopology(int d) : bfly_(d) {}

  [[nodiscard]] const std::string& name() const noexcept override {
    static const std::string kName = "butterfly";
    return kName;
  }
  [[nodiscard]] std::uint32_t num_nodes() const noexcept override {
    return static_cast<std::uint32_t>(bfly_.num_levels()) * bfly_.rows();
  }
  [[nodiscard]] std::uint32_t num_arcs() const noexcept override {
    return bfly_.num_arcs();
  }
  [[nodiscard]] NodeId arc_source(ArcId a) const override {
    return bfly_.node_index(bfly_.arc_row(a), bfly_.arc_level(a));
  }
  [[nodiscard]] NodeId arc_target(ArcId a) const override {
    return bfly_.node_index(bfly_.arc_target_row(a), bfly_.arc_level(a) + 1);
  }
  [[nodiscard]] int out_degree(NodeId x) const override {
    return level_of(x) <= bfly_.dimension() ? 2 : 0;
  }
  [[nodiscard]] ArcId out_arc(NodeId x, int k) const override {
    RS_DASSERT(k >= 0 && k < out_degree(x));
    return bfly_.arc_index(row_of(x), level_of(x),
                           k == 0 ? Butterfly::ArcKind::kStraight
                                  : Butterfly::ArcKind::kVertical);
  }
  void append_incident_arcs(NodeId x, std::vector<ArcId>& out) const override {
    bfly_.append_incident_arcs(x, out);
  }
  [[nodiscard]] int metric(NodeId from, NodeId to) const override {
    const int l1 = level_of(from);
    const int l2 = level_of(to);
    if (l2 < l1) {
      return -1;
    }
    // Crossing levels l1..l2-1 can flip exactly the identity bits l1..l2-1
    // of the row; every other bit must already agree.
    const NodeId diff = row_of(from) ^ row_of(to);
    const NodeId crossable =
        ((NodeId{1} << (l2 - 1)) - 1u) ^ ((NodeId{1} << (l1 - 1)) - 1u);
    return (diff & ~crossable) == 0 ? l2 - l1 : -1;
  }
  [[nodiscard]] int diameter() const override { return bfly_.dimension(); }
  [[nodiscard]] ArcId greedy_next_arc(NodeId cur, NodeId dest) const override {
    RS_DASSERT(metric(cur, dest) > 0);
    const int level = level_of(cur);
    const bool vertical = has_dimension(row_of(cur) ^ row_of(dest), level);
    return bfly_.arc_index(row_of(cur), level,
                           vertical ? Butterfly::ArcKind::kVertical
                                    : Butterfly::ArcKind::kStraight);
  }
  /// Level-1 injection to a uniform exit row crosses each level once and
  /// picks straight or vertical with probability 1/2 each (Lemma 3.1's
  /// uniformity), so every arc carries lambda/2.
  [[nodiscard]] double uniform_load_per_lambda() const override { return 0.5; }

 private:
  [[nodiscard]] int level_of(NodeId x) const { return static_cast<int>(x / bfly_.rows()) + 1; }
  [[nodiscard]] NodeId row_of(NodeId x) const { return x & (bfly_.rows() - 1u); }

  Butterfly bfly_;
};

constexpr int kMinCubeD = 1;
constexpr int kMaxCubeD = 20;

[[noreturn]] void unknown_topology(const std::string& name) {
  std::string known;
  for (const std::string& candidate : topology_names()) {
    known += known.empty() ? candidate : ", " + candidate;
  }
  throw std::invalid_argument("unknown topology '" + name +
                              "' (known: " + known + ")");
}

}  // namespace

const std::vector<std::string>& topology_names() {
  static const std::vector<std::string> kNames = {"hypercube", "butterfly",
                                                  "ring", "torus", "mesh"};
  return kNames;
}

const std::string& topology_summary(const std::string& name) {
  static const std::vector<std::string> kSummaries = {
      "the paper's d-cube: 2^d nodes, d*2^d arcs, greedy crosses required "
      "dimensions lowest-first",
      "the unfolded d-cube: (d+1) levels of 2^d rows; packets descend "
      "levels (a DAG, so metric() is partial)",
      "2^d nodes on a bidirectional cycle; ring_chords= adds symmetric "
      "chord strides or the papillon doubling ladder",
      "k-ary torus from torus_dims= (2 or 3 wrapped dimensions); "
      "dimension-ordered greedy takes the shorter way around",
      "torus_dims= grid without wraparound; dimension-ordered greedy "
      "moves straight toward the destination"};
  const std::vector<std::string>& names = topology_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) {
      return kSummaries[i];
    }
  }
  unknown_topology(name);
}

std::unique_ptr<const Topology> make_topology(const TopologySpec& spec) {
  if (spec.name == "hypercube" || spec.name == "butterfly") {
    if (spec.d < kMinCubeD || spec.d > kMaxCubeD) {
      throw std::invalid_argument(
          "topology=" + spec.name + " needs d in [" +
          std::to_string(kMinCubeD) + ", " + std::to_string(kMaxCubeD) +
          "], got d=" + std::to_string(spec.d));
    }
    if (spec.name == "hypercube") {
      return std::make_unique<HypercubeTopology>(spec.d);
    }
    return std::make_unique<ButterflyTopology>(spec.d);
  }
  if (spec.name == "ring") {
    return std::make_unique<RingTopology>(
        spec.d, parse_ring_chords(spec.ring_chords, spec.d));
  }
  if (spec.name == "torus" || spec.name == "mesh") {
    return std::make_unique<TorusTopology>(parse_torus_dims(spec.torus_dims),
                                           /*wrap=*/spec.name == "torus");
  }
  unknown_topology(spec.name);
}

}  // namespace routesim
