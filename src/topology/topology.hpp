#pragma once
/// \file topology.hpp
/// \brief The topology concept: the abstract network interface the
///        topology-parametric routing schemes (routing/topology_greedy.hpp)
///        and the conformance kit (tests/test_topology_conformance.cpp)
///        program against.
///
/// A `Topology` is a finite directed multigraph with a dense arc indexing
/// plus the two ingredients greedy routing needs: a *metric* (the
/// shortest-path potential a packet descends) and a *greedy next arc*
/// (the out-arc whose head is metric-closest to the destination).  The
/// contract, checked exhaustively by the conformance kit:
///
///   - arcs are indexed densely and bijectively in [0, num_arcs());
///     out_arc(x, 0..out_degree(x)) enumerates exactly the arcs with
///     arc_source == x;
///   - append_incident_arcs(x) lists exactly the arcs with source or
///     target x (the enumeration a node fault uses to take its arcs down,
///     fault/fault_model.hpp);
///   - metric(u, v) is the directed shortest-path length, -1 when v is
///     unreachable from u (the butterfly is a DAG);
///   - greedy_next_arc(u, v) (precondition: metric(u, v) > 0) returns an
///     out-arc of u whose head strictly decreases the metric, so greedy
///     delivery takes exactly metric(u, v) <= diameter() hops;
///   - diameter() is the maximum metric over reachable pairs;
///   - uniform_load_per_lambda() is the heaviest per-arc utilisation per
///     unit per-node rate under uniform destinations and greedy routing
///     (the load-factor rule for topology-parametric scenarios; the
///     closed forms per family are pinned in the conformance tests and
///     documented in docs/TOPOLOGIES.md).
///
/// Families: "hypercube" and "butterfly" (adapters over the paper's
/// classes — the specialised simulators remain the bit-exactness oracle),
/// "ring" (with chord strides / the papillon ladder, topology/ring.hpp)
/// and "torus" / "mesh" (topology/torus.hpp).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "topology/hypercube.hpp"  // ArcId, NodeId
#include "util/bits.hpp"

namespace routesim {

class Topology {
 public:
  virtual ~Topology() = default;

  /// Family name as registered with make_topology (see topology_names()).
  [[nodiscard]] virtual const std::string& name() const noexcept = 0;

  [[nodiscard]] virtual std::uint32_t num_nodes() const noexcept = 0;
  [[nodiscard]] virtual std::uint32_t num_arcs() const noexcept = 0;

  [[nodiscard]] virtual NodeId arc_source(ArcId a) const = 0;
  [[nodiscard]] virtual NodeId arc_target(ArcId a) const = 0;

  /// Number of out-arcs of x (constant for vertex-transitive families,
  /// position-dependent on the mesh boundary and the butterfly exit level).
  [[nodiscard]] virtual int out_degree(NodeId x) const = 0;

  /// The k-th out-arc of x, k in [0, out_degree(x)).  The order is the
  /// family's canonical one and doubles as the greedy tie-break order.
  [[nodiscard]] virtual ArcId out_arc(NodeId x, int k) const = 0;

  /// Appends every arc incident to x (out-arcs then in-arcs).
  virtual void append_incident_arcs(NodeId x, std::vector<ArcId>& out) const = 0;

  /// Directed shortest-path length from `from` to `to`; -1 = unreachable.
  [[nodiscard]] virtual int metric(NodeId from, NodeId to) const = 0;

  /// max metric over reachable pairs.
  [[nodiscard]] virtual int diameter() const = 0;

  /// The greedy routing decision: an out-arc of `cur` whose head strictly
  /// decreases metric(., dest).  Precondition: metric(cur, dest) > 0.
  [[nodiscard]] virtual ArcId greedy_next_arc(NodeId cur, NodeId dest) const = 0;

  /// Heaviest per-arc utilisation per unit per-node generation rate under
  /// uniform destinations: lambda * uniform_load_per_lambda() < 1 is the
  /// stability condition of the corresponding dynamic experiment.
  [[nodiscard]] virtual double uniform_load_per_lambda() const = 0;
};

/// Everything make_topology needs: the family name plus the per-family
/// size knobs, mirroring the Scenario keys topology= / d= / ring_chords= /
/// torus_dims= (core/scenario.hpp).
struct TopologySpec {
  std::string name = "hypercube";
  int d = 4;                      ///< hypercube/butterfly dimension; ring has 2^d nodes
  std::string ring_chords;        ///< "", "papillon", or a CSV of strides >= 2
  std::string torus_dims = "4x4"; ///< "AxB" or "AxBxC", each extent >= 2
};

/// Every family name make_topology accepts, in catalog order:
/// hypercube, butterfly, ring, torus, mesh.
[[nodiscard]] const std::vector<std::string>& topology_names();

/// One-line description of a family (for --list and the generated scenario
/// reference); throws std::invalid_argument for unknown names.
[[nodiscard]] const std::string& topology_summary(const std::string& name);

/// Builds the topology a spec describes.  Throws std::invalid_argument on
/// an unknown family name (with a did-you-mean suggestion), a malformed
/// ring_chords / torus_dims string, or an out-of-range size.
[[nodiscard]] std::unique_ptr<const Topology> make_topology(
    const TopologySpec& spec);

/// Parses "AxB" / "AxBxC" into per-dimension extents.  Throws
/// std::invalid_argument unless there are 2 or 3 extents, each in
/// [2, 256], with at most 2^20 nodes in total.
[[nodiscard]] std::vector<std::uint32_t> parse_torus_dims(
    const std::string& text);

}  // namespace routesim
