#include "topology/torus.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace routesim {

namespace {

constexpr std::uint32_t kMinExtent = 2;
constexpr std::uint32_t kMaxExtent = 256;
constexpr std::uint32_t kMaxNodes = std::uint32_t{1} << 20;

/// Distance along one dimension's ring (wrap) or line (no wrap).
int dim_distance(std::uint32_t from, std::uint32_t to, std::uint32_t extent,
                 bool wrap) {
  const std::uint32_t forward = (to + extent - from) % extent;
  if (!wrap) {
    return static_cast<int>(from <= to ? to - from : from - to);
  }
  return static_cast<int>(std::min(forward, extent - forward));
}

/// Heaviest per-arc load per unit rate contributed by one dimension under
/// uniform traffic (see the closed forms in torus.hpp).
double dim_uniform_load(std::uint32_t extent, bool wrap) {
  const double n = static_cast<double>(extent);
  if (!wrap) {
    return static_cast<double>(extent / 2) *
           static_cast<double>((extent + 1) / 2) / n;
  }
  if (extent % 2 == 0) {
    return (n + 2.0) / 8.0;
  }
  return (n * n - 1.0) / (8.0 * n);
}

}  // namespace

std::vector<std::uint32_t> parse_torus_dims(const std::string& text) {
  std::vector<std::uint32_t> dims;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t sep = std::min(text.find('x', pos), text.size());
    const std::string item = text.substr(pos, sep - pos);
    std::size_t used = 0;
    unsigned long value = 0;
    try {
      value = std::stoul(item, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != item.size() || item.empty() || value < kMinExtent ||
        value > kMaxExtent) {
      throw std::invalid_argument(
          "bad torus_dims '" + text + "': expected 'AxB' or 'AxBxC' with "
          "each extent in [" + std::to_string(kMinExtent) + ", " +
          std::to_string(kMaxExtent) + "]");
    }
    dims.push_back(static_cast<std::uint32_t>(value));
    pos = sep + 1;
  }
  if (dims.size() < 2 || dims.size() > 3) {
    throw std::invalid_argument("bad torus_dims '" + text +
                                "': expected 2 or 3 'x'-separated extents");
  }
  std::uint64_t nodes = 1;
  for (const std::uint32_t extent : dims) {
    nodes *= extent;
  }
  if (nodes > kMaxNodes) {
    throw std::invalid_argument("bad torus_dims '" + text + "': " +
                                std::to_string(nodes) + " nodes exceeds the " +
                                std::to_string(kMaxNodes) + "-node cap");
  }
  return dims;
}

TorusTopology::TorusTopology(std::vector<std::uint32_t> dims, bool wrap)
    : dims_(std::move(dims)), wrap_(wrap) {
  RS_EXPECTS_MSG(dims_.size() >= 2 && dims_.size() <= 3,
             "TorusTopology: need 2 or 3 dimensions");
  radix_.resize(dims_.size());
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    RS_EXPECTS_MSG(dims_[i] >= kMinExtent && dims_[i] <= kMaxExtent,
               "TorusTopology: extent out of range");
    radix_[i] = n_;
    n_ *= dims_[i];
  }
  RS_EXPECTS_MSG(n_ <= kMaxNodes, "TorusTopology: too many nodes");

  const std::size_t slots = 2 * dims_.size();
  arc_at_.assign(static_cast<std::size_t>(n_) * slots, kNoArc);
  out_begin_.resize(n_);
  out_end_.resize(n_);
  for (NodeId x = 0; x < n_; ++x) {
    out_begin_[x] = static_cast<std::uint32_t>(out_arcs_.size());
    for (std::size_t i = 0; i < dims_.size(); ++i) {
      const std::uint32_t c = coordinate(x, static_cast<int>(i));
      for (const int dir : {+1, -1}) {
        if (!wrap_ && ((dir > 0 && c + 1 == dims_[i]) || (dir < 0 && c == 0))) {
          continue;  // mesh boundary: no wrap arc
        }
        const std::uint32_t next_c =
            (c + dims_[i] + static_cast<std::uint32_t>(dir)) % dims_[i];
        const NodeId dst = x + (next_c - c) * radix_[i];
        const ArcId arc = static_cast<ArcId>(arcs_.size());
        arcs_.push_back({x, dst});
        out_arcs_.push_back(arc);
        arc_at_[static_cast<std::size_t>(x) * slots + 2 * i +
                (dir < 0 ? 1u : 0u)] = arc;
      }
    }
    out_end_[x] = static_cast<std::uint32_t>(out_arcs_.size());
  }

  // In-arc slices, grouped per target node in arc-id order.
  in_begin_.assign(n_, 0);
  in_end_.assign(n_, 0);
  std::vector<std::uint32_t> in_count(n_, 0);
  for (const Arc& arc : arcs_) {
    ++in_count[arc.dst];
  }
  std::uint32_t offset = 0;
  for (NodeId x = 0; x < n_; ++x) {
    in_begin_[x] = offset;
    in_end_[x] = offset;
    offset += in_count[x];
  }
  in_arcs_.resize(arcs_.size());
  for (ArcId a = 0; a < num_arcs(); ++a) {
    in_arcs_[in_end_[arcs_[a].dst]++] = a;
  }

  diameter_ = 0;
  uniform_load_ = 0.0;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    diameter_ += wrap_ ? static_cast<int>(dims_[i] / 2)
                       : static_cast<int>(dims_[i] - 1);
    uniform_load_ = std::max(uniform_load_, dim_uniform_load(dims_[i], wrap_));
  }
}

const std::string& TorusTopology::name() const noexcept {
  static const std::string kTorus = "torus";
  static const std::string kMesh = "mesh";
  return wrap_ ? kTorus : kMesh;
}

void TorusTopology::append_incident_arcs(NodeId x, std::vector<ArcId>& out) const {
  RS_DASSERT(x < n_);
  for (std::uint32_t k = out_begin_[x]; k < out_end_[x]; ++k) {
    out.push_back(out_arcs_[k]);
  }
  for (std::uint32_t k = in_begin_[x]; k < in_end_[x]; ++k) {
    out.push_back(in_arcs_[k]);
  }
}

int TorusTopology::metric(NodeId from, NodeId to) const {
  RS_DASSERT(from < n_ && to < n_);
  int total = 0;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    total += dim_distance(coordinate(from, static_cast<int>(i)),
                          coordinate(to, static_cast<int>(i)), dims_[i], wrap_);
  }
  return total;
}

ArcId TorusTopology::greedy_next_arc(NodeId cur, NodeId dest) const {
  RS_DASSERT(metric(cur, dest) > 0);
  const std::size_t slots = 2 * dims_.size();
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    const std::uint32_t c = coordinate(cur, static_cast<int>(i));
    const std::uint32_t t = coordinate(dest, static_cast<int>(i));
    if (c == t) {
      continue;
    }
    bool clockwise;
    if (wrap_) {
      // Shorter way around dimension i's ring; the antipodal tie breaks +.
      const std::uint32_t forward = (t + dims_[i] - c) % dims_[i];
      clockwise = forward <= dims_[i] - forward;
    } else {
      clockwise = t > c;
    }
    const ArcId arc = arc_at_[static_cast<std::size_t>(cur) * slots + 2 * i +
                              (clockwise ? 0u : 1u)];
    RS_DASSERT(arc != kNoArc);
    return arc;
  }
  RS_EXPECTS_MSG(false, "greedy_next_arc called with cur == dest");
}

}  // namespace routesim
