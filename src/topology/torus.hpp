#pragma once
/// \file torus.hpp
/// \brief 2D/3D torus and mesh topologies with dimension-ordered greedy.
///
/// `TorusTopology` lays nodes on a 2- or 3-dimensional grid described by
/// the `torus_dims=` scenario key ("AxB" or "AxBxC"); with wraparound the
/// family is a k-ary torus, without it a mesh.  Node ids are mixed-radix
/// with dimension 0 least significant; arcs are materialised explicitly
/// (the mesh boundary punches holes in any formulaic indexing) and each
/// node's out-arcs are ordered dim0+, dim0-, dim1+, dim1-, ...
///
/// Greedy is dimension-ordered: correct the lowest unresolved dimension
/// first, moving the shorter way around that dimension's ring (ties at the
/// antipodal offset break clockwise, i.e. toward +), or straight toward
/// the target on a mesh line.  The metric is the sum of per-dimension
/// ring/line distances, so every hop strictly decreases it.
///
/// Closed forms pinned by tests/test_topology_conformance.cpp
/// (per-dimension loads are independent under uniform traffic, so the
/// heaviest arc sits on the heaviest dimension):
///   - torus, extent n even: (n + 2) / 8 per unit rate (cw tie-break, as
///     on the plain ring); n odd: (n^2 - 1) / (8n);
///   - mesh, extent n: the central line arc carries
///     floor(n/2) * ceil(n/2) / n.

#include <cstdint>
#include <string>
#include <vector>

#include "topology/topology.hpp"
#include "util/assert.hpp"

namespace routesim {

class TorusTopology final : public Topology {
 public:
  /// `dims` as produced by parse_torus_dims (2 or 3 extents, each >= 2);
  /// `wrap` selects torus (true) vs mesh (false).
  TorusTopology(std::vector<std::uint32_t> dims, bool wrap);

  [[nodiscard]] const std::string& name() const noexcept override;
  [[nodiscard]] std::uint32_t num_nodes() const noexcept override { return n_; }
  [[nodiscard]] std::uint32_t num_arcs() const noexcept override {
    return static_cast<std::uint32_t>(arcs_.size());
  }
  [[nodiscard]] NodeId arc_source(ArcId a) const override {
    RS_DASSERT(a < num_arcs());
    return arcs_[a].src;
  }
  [[nodiscard]] NodeId arc_target(ArcId a) const override {
    RS_DASSERT(a < num_arcs());
    return arcs_[a].dst;
  }
  [[nodiscard]] int out_degree(NodeId x) const override {
    RS_DASSERT(x < n_);
    return static_cast<int>(out_end_[x] - out_begin_[x]);
  }
  [[nodiscard]] ArcId out_arc(NodeId x, int k) const override {
    RS_DASSERT(k >= 0 && k < out_degree(x));
    return out_arcs_[out_begin_[x] + static_cast<std::uint32_t>(k)];
  }
  void append_incident_arcs(NodeId x, std::vector<ArcId>& out) const override;
  [[nodiscard]] int metric(NodeId from, NodeId to) const override;
  [[nodiscard]] int diameter() const override { return diameter_; }
  [[nodiscard]] ArcId greedy_next_arc(NodeId cur, NodeId dest) const override;
  [[nodiscard]] double uniform_load_per_lambda() const override {
    return uniform_load_;
  }

  [[nodiscard]] const std::vector<std::uint32_t>& dims() const noexcept {
    return dims_;
  }
  [[nodiscard]] bool wraps() const noexcept { return wrap_; }
  [[nodiscard]] std::uint32_t coordinate(NodeId x, int dim) const {
    return (x / radix_[static_cast<std::size_t>(dim)]) %
           dims_[static_cast<std::size_t>(dim)];
  }

 private:
  struct Arc {
    NodeId src;
    NodeId dst;
  };

  std::vector<std::uint32_t> dims_;
  bool wrap_;
  std::uint32_t n_ = 1;
  std::vector<std::uint32_t> radix_;  ///< stride of each dimension in the id
  std::vector<Arc> arcs_;
  std::vector<std::uint32_t> out_begin_;  ///< per-node slice of out_arcs_
  std::vector<std::uint32_t> out_end_;
  std::vector<ArcId> out_arcs_;
  std::vector<std::uint32_t> in_begin_;  ///< per-node slice of in_arcs_
  std::vector<std::uint32_t> in_end_;
  std::vector<ArcId> in_arcs_;
  /// Direct (dim, direction) -> out-arc lookup for greedy; kNoArc where the
  /// mesh boundary removes the arc.  Slot = x * 2 * dims + 2 * dim + (dir<0).
  std::vector<ArcId> arc_at_;
  int diameter_ = 0;
  double uniform_load_ = 0.0;

  static constexpr ArcId kNoArc = ~ArcId{0};
};

}  // namespace routesim
