#pragma once
/// \file assert.hpp
/// \brief Contract-checking macros used throughout the library.
///
/// Following the C++ Core Guidelines (I.6/I.8), public-API preconditions are
/// checked with RS_EXPECTS and postconditions with RS_ENSURES.  Violations
/// throw routesim::ContractViolation so tests can verify the contracts
/// directly.  RS_DASSERT is a debug-only internal invariant check that
/// compiles away under NDEBUG and is meant for simulation hot loops.

#include <sstream>
#include <stdexcept>
#include <string>

namespace routesim {

/// Thrown when a precondition / postcondition / invariant stated by the
/// public API is violated.  Deriving from std::logic_error signals that the
/// *caller* (not the environment) is at fault.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace routesim

/// Precondition check; always active.
#define RS_EXPECTS(cond)                                                        \
  do {                                                                          \
    if (!(cond))                                                                \
      ::routesim::detail::contract_fail("precondition", #cond, __FILE__,        \
                                        __LINE__, "");                          \
  } while (false)

/// Precondition check with an explanatory message; always active.
#define RS_EXPECTS_MSG(cond, msg)                                               \
  do {                                                                          \
    if (!(cond))                                                                \
      ::routesim::detail::contract_fail("precondition", #cond, __FILE__,        \
                                        __LINE__, (msg));                       \
  } while (false)

/// Postcondition check; always active.
#define RS_ENSURES(cond)                                                        \
  do {                                                                          \
    if (!(cond))                                                                \
      ::routesim::detail::contract_fail("postcondition", #cond, __FILE__,       \
                                        __LINE__, "");                          \
  } while (false)

/// Internal invariant check for hot paths; removed when NDEBUG is defined.
#ifdef NDEBUG
#define RS_DASSERT(cond) ((void)0)
#else
#define RS_DASSERT(cond)                                                        \
  do {                                                                          \
    if (!(cond))                                                                \
      ::routesim::detail::contract_fail("invariant", #cond, __FILE__,           \
                                        __LINE__, "");                          \
  } while (false)
#endif
