#pragma once
/// \file atomic_file.hpp
/// \brief Crash-safe whole-file replacement: write to a temporary sibling,
///        fsync, then rename over the destination.
///
/// Whole-file outputs (`--list --json` catalogs, `--json` bench reports,
/// regenerated docs) were written in place, so a process killed mid-write
/// left a half file that later *parses* — the worst failure mode for
/// anything feeding the result store or CI assertions.  rename(2) on the
/// same filesystem is atomic: readers see either the old complete file or
/// the new complete file, never a prefix.

#include <cstdio>
#include <string>

#include <unistd.h>

namespace routesim {

/// Replaces `path` with `content` atomically (temp sibling + fsync +
/// rename).  Returns false — leaving any previous file untouched — when
/// the temporary cannot be written or the rename fails.
inline bool write_file_atomic(const std::string& path,
                              const std::string& content) {
  const std::string temp = path + ".tmp." + std::to_string(::getpid());
  std::FILE* file = std::fopen(temp.c_str(), "wb");
  if (file == nullptr) return false;
  const bool written =
      content.empty() ||
      std::fwrite(content.data(), 1, content.size(), file) == content.size();
  const bool flushed = std::fflush(file) == 0 && ::fsync(fileno(file)) == 0;
  const bool closed = std::fclose(file) == 0;
  if (!(written && flushed && closed)) {
    std::remove(temp.c_str());
    return false;
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    return false;
  }
  return true;
}

}  // namespace routesim
