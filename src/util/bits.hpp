#pragma once
/// \file bits.hpp
/// \brief Bit-manipulation helpers for hypercube node identities.
///
/// Hypercube nodes are identified by the integer whose binary representation
/// is the node's identity (z_d, ..., z_1), exactly as in the paper (§1.1).
/// Dimensions are numbered 1..d; dimension m corresponds to bit (m-1) of the
/// identity, i.e. the basis node e_m = 2^(m-1).

#include <bit>
#include <cstdint>

#include "util/assert.hpp"

namespace routesim {

/// Integer type used for hypercube / butterfly row identities (d <= 30).
using NodeId = std::uint32_t;

/// The basis node e_m (all-zero identity except bit m), m in 1..d.
[[nodiscard]] constexpr NodeId basis_node(int m) noexcept {
  return NodeId{1} << (m - 1);
}

/// Hamming distance H(x, z): the number of differing identity bits.
[[nodiscard]] constexpr int hamming_distance(NodeId x, NodeId z) noexcept {
  return std::popcount(x ^ z);
}

/// True iff dimension m (1-based) is set in the identity of x.
[[nodiscard]] constexpr bool has_dimension(NodeId x, int m) noexcept {
  return ((x >> (m - 1)) & 1u) != 0;
}

/// The lowest set dimension (1-based) of mask, or 0 when mask == 0.
///
/// For a packet at node x with destination z, the next dimension crossed by
/// the greedy increasing-index-order scheme is lowest_dimension(x ^ z).
[[nodiscard]] constexpr int lowest_dimension(NodeId mask) noexcept {
  return mask == 0 ? 0 : std::countr_zero(mask) + 1;
}

/// The lowest set dimension of mask that is strictly greater than m
/// (all 1-based), or 0 when no such dimension exists.
[[nodiscard]] constexpr int next_dimension_after(NodeId mask, int m) noexcept {
  const NodeId higher = mask & ~((NodeId{1} << m) - 1u);
  return lowest_dimension(higher);
}

/// The highest set dimension (1-based) of mask, or 0 when mask == 0.
/// Used by the decreasing-index-order ablation of the greedy scheme.
[[nodiscard]] constexpr int highest_dimension(NodeId mask) noexcept {
  return mask == 0 ? 0 : 32 - std::countl_zero(mask);
}

/// The n-th (0-based) set dimension of mask, counting from the lowest.
/// Precondition: n < popcount(mask).
[[nodiscard]] constexpr int nth_dimension(NodeId mask, int n) noexcept {
  for (int skip = 0; skip < n; ++skip) mask &= mask - 1u;
  return lowest_dimension(mask);
}

/// Flip dimension m (1-based) of x: the neighbour x XOR e_m.
[[nodiscard]] constexpr NodeId flip_dimension(NodeId x, int m) noexcept {
  return x ^ basis_node(m);
}

/// Number of nodes of the d-cube.
[[nodiscard]] constexpr std::uint64_t num_hypercube_nodes(int d) noexcept {
  return std::uint64_t{1} << d;
}

/// Number of directed arcs of the d-cube (d * 2^d).
[[nodiscard]] constexpr std::uint64_t num_hypercube_arcs(int d) noexcept {
  return static_cast<std::uint64_t>(d) << d;
}

/// The bitwise complement of x restricted to the low d bits
/// (the antipodal node; the destination of every packet when p = 1).
[[nodiscard]] constexpr NodeId antipode(NodeId x, int d) noexcept {
  return ~x & ((NodeId{1} << d) - 1u);
}

}  // namespace routesim
