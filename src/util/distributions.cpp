#include "util/distributions.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace routesim {

double sample_exponential(Rng& rng, double rate) {
  RS_EXPECTS(rate > 0.0);
  return -std::log(rng.uniform_pos()) / rate;
}

namespace {

std::uint64_t poisson_knuth(Rng& rng, double mean) {
  // Multiply uniforms until the product drops below e^-mean.
  const double limit = std::exp(-mean);
  std::uint64_t n = 0;
  double prod = rng.uniform_pos();
  while (prod > limit) {
    ++n;
    prod *= rng.uniform_pos();
  }
  return n;
}

// PTRS: transformed rejection with squeeze (W. Hörmann, "The transformed
// rejection method for generating Poisson random variables", 1993).
// Exact for mean >= 10; we switch at 30 to stay deep in its valid range.
std::uint64_t poisson_ptrs(Rng& rng, double mean) {
  const double b = 0.931 + 2.53 * std::sqrt(mean);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double v_r = 0.9277 - 3.6224 / (b - 2.0);
  const double log_mean = std::log(mean);

  for (;;) {
    const double u = rng.uniform() - 0.5;
    const double v = rng.uniform_pos();
    const double us = 0.5 - std::abs(u);
    const double k = std::floor((2.0 * a / us + b) * u + mean + 0.43);
    if (us >= 0.07 && v <= v_r) return static_cast<std::uint64_t>(k);
    if (k < 0.0 || (us < 0.013 && v > us)) continue;
    if (std::log(v * inv_alpha / (a / (us * us) + b)) <=
        k * log_mean - mean - std::lgamma(k + 1.0)) {
      return static_cast<std::uint64_t>(k);
    }
  }
}

}  // namespace

std::uint64_t sample_poisson(Rng& rng, double mean) {
  RS_EXPECTS(mean >= 0.0);
  if (mean == 0.0) return 0;
  return mean <= 30.0 ? poisson_knuth(rng, mean) : poisson_ptrs(rng, mean);
}

std::uint64_t sample_geometric(Rng& rng, double q) {
  RS_EXPECTS(q >= 0.0 && q < 1.0);
  if (q == 0.0) return 0;
  // Inversion: floor(log(U) / log(q)) has the failures-before-success law.
  return static_cast<std::uint64_t>(std::floor(std::log(rng.uniform_pos()) / std::log(q)));
}

int sample_binomial_small(Rng& rng, int n, double prob) {
  RS_EXPECTS(n >= 0);
  RS_EXPECTS(prob >= 0.0 && prob <= 1.0);
  int successes = 0;
  for (int i = 0; i < n; ++i) successes += rng.bernoulli(prob) ? 1 : 0;
  return successes;
}

}  // namespace routesim
