#pragma once
/// \file distributions.hpp
/// \brief Random-variate generators used by the traffic and queueing models.
///
/// Everything is implemented from first principles (no <random> distributions)
/// so results are identical across standard libraries and platforms.

#include <cstdint>

#include "util/rng.hpp"

namespace routesim {

/// Exponential variate with the given rate (mean 1/rate).
/// Precondition: rate > 0.
[[nodiscard]] double sample_exponential(Rng& rng, double rate);

/// Poisson variate with the given mean.
///
/// Uses Knuth's product method for mean <= 30 and the PTRS transformed-
/// rejection method of Hörmann (1993) for larger means; both are exact.
/// Precondition: mean >= 0.
[[nodiscard]] std::uint64_t sample_poisson(Rng& rng, double mean);

/// Geometric variate counting failures before the first success:
/// P[X = n] = (1-q) q^n, n = 0, 1, ...  This is the stationary per-server
/// occupancy law of the product-form network of Proposition 12.
/// Precondition: 0 <= q < 1.
[[nodiscard]] std::uint64_t sample_geometric(Rng& rng, double q);

/// Binomial variate: number of successes in n Bernoulli(prob) trials,
/// by direct simulation (n is small — at most the cube dimension d).
[[nodiscard]] int sample_binomial_small(Rng& rng, int n, double prob);

}  // namespace routesim
