#pragma once
/// \file json.hpp
/// \brief Minimal JSON string escaping, shared by every hand-rolled JSON
///        emitter (core/catalog.cpp, the campaign JSONL sink).

#include <cstdio>
#include <string>

namespace routesim {

/// Escapes `text` for inclusion inside a JSON string literal: quotes,
/// backslashes, and *all* control characters below 0x20 (strict parsers
/// reject raw control bytes, not just unescaped newlines).
inline std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\t') {
      out += "\\t";
    } else if (c == '\r') {
      out += "\\r";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof buffer, "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buffer;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace routesim
