#include "util/json_parse.hpp"

#include <cstdio>
#include <cstdlib>

namespace routesim::json {

const Value* Value::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  const Value* found = nullptr;
  for (const auto& member : object) {
    if (member.first == key) found = &member.second;
  }
  return found;
}

namespace {

/// Recursive-descent parser state over one immutable text buffer.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool parse_document(Value* out, std::string* error) {
    skip_whitespace();
    if (!parse_value(out)) {
      report(error);
      return false;
    }
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing characters after the JSON value");
      report(error);
      return false;
    }
    return true;
  }

 private:
  static constexpr std::size_t kMaxDepth = 64;  // nesting bound, not a limit
                                                // any emitter here approaches

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool fail(const char* reason) {
    if (reason_ == nullptr) {  // keep the innermost (first) failure
      reason_ = reason;
      error_pos_ = pos_;
    }
    return false;
  }

  void report(std::string* error) const {
    if (error == nullptr) return;
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "offset %zu: ", error_pos_);
    *error = buffer;
    *error += reason_ == nullptr ? "malformed JSON" : reason_;
  }

  bool literal(const char* word, std::size_t length) {
    if (text_.compare(pos_, length, word) != 0) return false;
    pos_ += length;
    return true;
  }

  bool parse_value(Value* out) {
    if (++depth_ > kMaxDepth) return fail("nesting too deep");
    bool ok = parse_value_inner(out);
    --depth_;
    return ok;
  }

  bool parse_value_inner(Value* out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        if (!literal("null", 4)) return fail("expected 'null'");
        out->type = Value::Type::kNull;
        return true;
      case 't':
        if (!literal("true", 4)) return fail("expected 'true'");
        out->type = Value::Type::kBool;
        out->boolean = true;
        return true;
      case 'f':
        if (!literal("false", 5)) return fail("expected 'false'");
        out->type = Value::Type::kBool;
        out->boolean = false;
        return true;
      case '"':
        out->type = Value::Type::kString;
        return parse_string(&out->string);
      case '[':
        return parse_array(out);
      case '{':
        return parse_object(out);
      default:
        return parse_number(out);
    }
  }

  bool parse_number(Value* out) {
    // Validate the JSON number grammar first (strtod accepts more: hex,
    // "inf", leading '+', ...), then convert the exact same span with
    // strtod so fmt_shortest() emissions round-trip bit-identically.
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    std::size_t digits = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
      ++digits;
    }
    if (digits == 0) {
      pos_ = start;
      return fail("expected a value");
    }
    if (digits > 1 && text_[start + (text_[start] == '-' ? 1u : 0u)] == '0') {
      pos_ = start;
      return fail("leading zero in number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      std::size_t fraction = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++fraction;
      }
      if (fraction == 0) return fail("digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      std::size_t exponent = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++exponent;
      }
      if (exponent == 0) return fail("digits required in exponent");
    }
    const std::string span = text_.substr(start, pos_ - start);
    out->type = Value::Type::kNumber;
    out->number = std::strtod(span.c_str(), nullptr);
    return true;
  }

  static int hex_digit(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  }

  /// Appends the UTF-8 encoding of `code` (already surrogate-combined).
  static void append_utf8(std::string* out, unsigned code) {
    if (code < 0x80) {
      *out += static_cast<char>(code);
    } else if (code < 0x800) {
      *out += static_cast<char>(0xC0 | (code >> 6));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      *out += static_cast<char>(0xE0 | (code >> 12));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (code >> 18));
      *out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  bool parse_hex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const int digit = hex_digit(text_[pos_ + static_cast<std::size_t>(i)]);
      if (digit < 0) return fail("invalid \\u escape");
      code = code * 16 + static_cast<unsigned>(digit);
    }
    pos_ += 4;
    *out = code;
    return true;
  }

  bool parse_string(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        *out += c;
        ++pos_;
        continue;
      }
      if (++pos_ >= text_.size()) return fail("truncated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          if (!parse_hex4(&code)) return false;
          if (code >= 0xD800 && code <= 0xDBFF) {  // high surrogate pair half
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return fail("unpaired surrogate in \\u escape");
            }
            pos_ += 2;
            unsigned low = 0;
            if (!parse_hex4(&low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return fail("invalid low surrogate in \\u escape");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return fail("unpaired surrogate in \\u escape");
          }
          append_utf8(out, code);
          break;
        }
        default:
          return fail("unknown escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parse_array(Value* out) {
    ++pos_;  // '['
    out->type = Value::Type::kArray;
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      Value element;
      skip_whitespace();
      if (!parse_value(&element)) return false;
      out->array.push_back(std::move(element));
      skip_whitespace();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_object(Value* out) {
    ++pos_;  // '{'
    out->type = Value::Type::kObject;
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_whitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected string key in object");
      }
      std::string key;
      if (!parse_string(&key)) return false;
      skip_whitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':' after object key");
      }
      ++pos_;
      skip_whitespace();
      Value member;
      if (!parse_value(&member)) return false;
      out->object.emplace_back(std::move(key), std::move(member));
      skip_whitespace();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
  const char* reason_ = nullptr;
  std::size_t error_pos_ = 0;
};

}  // namespace

bool parse(const std::string& text, Value* out, std::string* error) {
  *out = Value{};
  return Parser(text).parse_document(out, error);
}

}  // namespace routesim::json
