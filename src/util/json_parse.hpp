#pragma once
/// \file json_parse.hpp
/// \brief Minimal strict JSON reader for the line-delimited record formats
///        this library emits itself (the persistent result store, campaign
///        JSONL sinks, and the `routesim_serve` request protocol).
///
/// The library writes JSON with hand-rolled emitters (util/json.hpp does
/// the escaping); this is the matching reader.  It is a small
/// recursive-descent parser over the full JSON grammar — objects preserve
/// key order (the store round-trips extras vectors in order), numbers are
/// parsed with strtod so every fmt_shortest() emission round-trips to the
/// identical double, and any syntax error is reported with a character
/// offset instead of throwing.  It is *not* a general-purpose JSON API:
/// no DOM mutation, no serialisation (the emitters own that side).

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace routesim::json {

/// One parsed JSON value.  A tagged struct rather than a std::variant so
/// lookups stay cheap and the recursion in the parser stays simple.
struct Value {
  enum class Type : unsigned char { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  /// Insertion-ordered members; duplicate keys keep both entries and
  /// find() returns the *last* (matching the store's last-wins rule).
  std::vector<std::pair<std::string, Value>> object;

  [[nodiscard]] bool is_null() const noexcept { return type == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept { return type == Type::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return type == Type::kString; }
  [[nodiscard]] bool is_array() const noexcept { return type == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return type == Type::kObject; }

  /// Member lookup (objects only); nullptr when absent or not an object.
  /// Duplicate keys resolve to the last occurrence.
  [[nodiscard]] const Value* find(const std::string& key) const;
};

/// Parses one complete JSON document from `text` (leading/trailing
/// whitespace allowed, nothing else may follow).  Returns false and fills
/// `*error` (when given) with "offset N: reason" on malformed input.
[[nodiscard]] bool parse(const std::string& text, Value* out,
                         std::string* error = nullptr);

}  // namespace routesim::json
