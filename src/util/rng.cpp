#include "util/rng.hpp"

namespace routesim {

std::uint64_t Rng::uniform_below(std::uint64_t bound) noexcept {
  if (bound <= 1) return 0;
  // Lemire's multiply-shift method with rejection to remove modulo bias.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace routesim
