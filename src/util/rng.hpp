#pragma once
/// \file rng.hpp
/// \brief Deterministic pseudo-random number generation.
///
/// The library uses xoshiro256** (Blackman & Vigna) seeded through SplitMix64.
/// All stochastic components draw from explicitly passed Rng instances, and
/// independent logical streams (per node, per replication, per server) are
/// derived deterministically with derive_stream(), so every experiment is
/// reproducible bit-for-bit regardless of scheduling or thread count.

#include <array>
#include <cstdint>

namespace routesim {

/// SplitMix64 step: used for seeding and for stateless hashing of stream ids.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Stateless mix of a master seed and a stream identifier, producing the
/// seed of an (empirically) independent stream.  Used to give every node,
/// server and replication its own generator.
[[nodiscard]] constexpr std::uint64_t derive_stream(std::uint64_t master,
                                                    std::uint64_t stream) noexcept {
  std::uint64_t s = master ^ (0x9e3779b97f4a7c15ull * (stream + 1));
  std::uint64_t a = splitmix64(s);
  std::uint64_t b = splitmix64(s);
  return a ^ (b << 1);
}

/// xoshiro256** 1.0 — fast, 256-bit state, passes BigCrush.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from SplitMix64(seed), per the authors'
  /// recommendation; the all-zero state is unreachable this way.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bull) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    for (auto& word : state_) word = splitmix64(seed);
  }

  /// Next 64 uniformly distributed bits.
  result_type next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  result_type operator()() noexcept { return next(); }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Uniform double in [0, 1) with 53 random mantissa bits.
  double uniform() noexcept { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in (0, 1]; safe as the argument of a logarithm.
  double uniform_pos() noexcept {
    return (static_cast<double>(next() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Unbiased uniform integer in [0, bound) (Lemire's rejection method).
  std::uint64_t uniform_below(std::uint64_t bound) noexcept;

  /// Bernoulli(prob) draw.
  bool bernoulli(double prob) noexcept { return uniform() < prob; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace routesim
