#include "workload/destination.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace routesim {

DestinationDistribution DestinationDistribution::bit_flip(int d, double p) {
  RS_EXPECTS(d >= 1 && d <= 26);
  RS_EXPECTS_MSG(p >= 0.0 && p <= 1.0, "flip probability must be in [0, 1]");
  return DestinationDistribution(d, p);
}

DestinationDistribution DestinationDistribution::uniform(int d) {
  return bit_flip(d, 0.5);
}

DestinationDistribution DestinationDistribution::general(int d,
                                                         std::vector<double> mask_pmf) {
  RS_EXPECTS(d >= 1 && d <= 26);
  RS_EXPECTS_MSG(mask_pmf.size() == (std::size_t{1} << d),
                 "pmf must have exactly 2^d entries");
  double total = 0.0;
  for (const double w : mask_pmf) {
    RS_EXPECTS_MSG(w >= 0.0, "pmf entries must be non-negative");
    total += w;
  }
  RS_EXPECTS_MSG(total > 0.0, "pmf must have positive mass");

  DestinationDistribution dist(d, 0.0);
  dist.general_pmf_.resize(mask_pmf.size());
  dist.general_cdf_.resize(mask_pmf.size());
  double cumulative = 0.0;
  for (std::size_t i = 0; i < mask_pmf.size(); ++i) {
    dist.general_pmf_[i] = mask_pmf[i] / total;
    cumulative += dist.general_pmf_[i];
    dist.general_cdf_[i] = cumulative;
  }
  dist.general_cdf_.back() = 1.0;  // guard against rounding
  return dist;
}

NodeId DestinationDistribution::sample_mask(Rng& rng) const {
  if (!is_bit_flip()) {
    const double u = rng.uniform();
    const auto it = std::upper_bound(general_cdf_.begin(), general_cdf_.end(), u);
    return static_cast<NodeId>(it - general_cdf_.begin());
  }
  if (p_ == 0.5) {
    // Uniform destinations: d independent fair bits at once.
    return static_cast<NodeId>(rng.next()) & ((NodeId{1} << d_) - 1u);
  }
  NodeId mask = 0;
  for (int bit = 0; bit < d_; ++bit) {
    if (rng.bernoulli(p_)) mask |= NodeId{1} << bit;
  }
  return mask;
}

double DestinationDistribution::mask_probability(NodeId mask) const {
  RS_EXPECTS(mask < (NodeId{1} << d_));
  if (!is_bit_flip()) return general_pmf_[mask];
  const int k = std::popcount(mask);
  return std::pow(p_, k) * std::pow(1.0 - p_, d_ - k);
}

double DestinationDistribution::flip_probability(int dim) const {
  RS_EXPECTS(dim >= 1 && dim <= d_);
  if (is_bit_flip()) return p_;
  double total = 0.0;
  for (NodeId mask = 0; mask < general_pmf_.size(); ++mask) {
    if (has_dimension(mask, dim)) total += general_pmf_[mask];
  }
  return total;
}

double DestinationDistribution::max_flip_probability() const {
  double best = 0.0;
  for (int dim = 1; dim <= d_; ++dim) best = std::max(best, flip_probability(dim));
  return best;
}

double DestinationDistribution::mean_hops() const {
  double total = 0.0;
  for (int dim = 1; dim <= d_; ++dim) total += flip_probability(dim);
  return total;
}

}  // namespace routesim
