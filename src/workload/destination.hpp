#pragma once
/// \file destination.hpp
/// \brief Random destination selection (equation (1) of the paper).
///
/// A packet generated at node x selects destination z with probability
/// p^H(x,z) (1-p)^(d-H(x,z)) — equivalently (Lemma 1), each identity bit of
/// x is flipped independently with probability p.  The class also supports
/// an arbitrary *translation-invariant* distribution f(x XOR z) (§2.2,
/// closing remark), which is what Propositions 2 and 3 require.

#include <cstdint>
#include <vector>

#include "util/bits.hpp"
#include "util/rng.hpp"

namespace routesim {

/// A random destination law on the 2^d node identities: the paper's
/// bit-flip law (1), its uniform special case, or an arbitrary
/// translation-invariant mask law.  Deterministic per-source destinations
/// (the adversarial counterpart these laws are averaged over) live in
/// workload/permutation.hpp instead and bypass sampling entirely.
class DestinationDistribution {
 public:
  /// The paper's bit-flip law with parameter p in [0, 1].
  static DestinationDistribution bit_flip(int d, double p);

  /// Uniform over all 2^d nodes (bit-flip with p = 1/2).
  static DestinationDistribution uniform(int d);

  /// General translation-invariant law: `mask_pmf[y]` is the probability
  /// that the destination is origin XOR y.  Must have 2^d non-negative
  /// entries summing to 1 (normalised internally; sum must be positive).
  static DestinationDistribution general(int d, std::vector<double> mask_pmf);

  [[nodiscard]] int dimension() const noexcept { return d_; }

  /// Draws the XOR mask x XOR z.
  [[nodiscard]] NodeId sample_mask(Rng& rng) const;

  /// Draws a destination for the given origin.
  [[nodiscard]] NodeId sample(Rng& rng, NodeId origin) const {
    return origin ^ sample_mask(rng);
  }

  /// P[mask = y] (i.e. P[dest = origin XOR y]).
  [[nodiscard]] double mask_probability(NodeId mask) const;

  /// P[B_j]: the probability that a packet must cross dimension j
  /// (1-based).  Equals p for the bit-flip law (Lemma 1); in general it is
  /// sum over masks with bit j set.  rho_j = lambda * flip_probability(j).
  [[nodiscard]] double flip_probability(int dim) const;

  /// max_j P[B_j] — multiplied by lambda this is the general load factor.
  [[nodiscard]] double max_flip_probability() const;

  /// Expected number of dimensions crossed per packet (mean of H(x, z)).
  [[nodiscard]] double mean_hops() const;

  /// True when this is the bit-flip law (sampling is O(d) without tables).
  [[nodiscard]] bool is_bit_flip() const noexcept { return general_cdf_.empty(); }

  /// The bit-flip parameter p (only meaningful when is_bit_flip()).
  [[nodiscard]] double flip_parameter() const noexcept { return p_; }

 private:
  DestinationDistribution(int d, double p) : d_(d), p_(p) {}

  int d_;
  double p_ = 0.5;
  // For the general law: cumulative distribution over masks 0..2^d-1
  // (empty for the bit-flip law) and the raw pmf.
  std::vector<double> general_cdf_;
  std::vector<double> general_pmf_;
};

}  // namespace routesim
