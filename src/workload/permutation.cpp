#include "workload/permutation.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "topology/butterfly.hpp"
#include "topology/hypercube.hpp"
#include "topology/topology.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace routesim {

namespace {

constexpr int kMaxDimension = 20;  // 2^20 table entries; simulations use d <= 12

void check_dimension(int d) {
  RS_EXPECTS_MSG(d >= 1 && d <= kMaxDimension,
                 "permutation dimension must satisfy 1 <= d <= 20");
}

std::vector<NodeId> make_table(int d, NodeId (*f)(NodeId, int)) {
  const auto n = static_cast<NodeId>(NodeId{1} << d);
  std::vector<NodeId> table(n);
  for (NodeId x = 0; x < n; ++x) table[x] = f(x, d);
  return table;
}

NodeId reverse_bits(NodeId x, int d) {
  NodeId out = 0;
  for (int m = 1; m <= d; ++m) {
    if (has_dimension(x, m)) out |= basis_node(d + 1 - m);
  }
  return out;
}

NodeId transpose_bits(NodeId x, int d) {
  const int h = d / 2;
  const NodeId low_mask = (NodeId{1} << h) - 1u;
  const NodeId low = x & low_mask;
  const NodeId high = (x >> (d - h)) & low_mask;
  const NodeId middle = x & ~(low_mask | (low_mask << (d - h)));
  return middle | (low << (d - h)) | high;
}

NodeId complement_bits(NodeId x, int d) {
  return x ^ static_cast<NodeId>((NodeId{1} << d) - 1u);
}

NodeId shuffle_bits(NodeId x, int d) {
  const NodeId mask = (NodeId{1} << d) - 1u;
  if (d == 1) return x;
  return ((x << 1) | (x >> (d - 1))) & mask;
}

NodeId tornado_shift(NodeId x, int d) {
  const NodeId n = NodeId{1} << d;
  return static_cast<NodeId>((static_cast<std::uint64_t>(x) + n / 2 - 1) % n);
}

}  // namespace

Permutation::Permutation(int d, std::string name, std::vector<NodeId> table)
    : d_(d), name_(std::move(name)), table_(std::move(table)) {
  RS_ENSURES(table_.size() == (std::size_t{1} << d_));
}

Permutation Permutation::bit_reversal(int d) {
  check_dimension(d);
  return {d, "bit_reversal", make_table(d, reverse_bits)};
}

Permutation Permutation::transpose(int d) {
  check_dimension(d);
  return {d, "transpose", make_table(d, transpose_bits)};
}

Permutation Permutation::bit_complement(int d) {
  check_dimension(d);
  return {d, "bit_complement", make_table(d, complement_bits)};
}

Permutation Permutation::shuffle(int d) {
  check_dimension(d);
  return {d, "shuffle", make_table(d, shuffle_bits)};
}

Permutation Permutation::tornado(int d) {
  check_dimension(d);
  return {d, "tornado", make_table(d, tornado_shift)};
}

Permutation Permutation::random(int d, std::uint64_t seed) {
  check_dimension(d);
  const auto n = static_cast<NodeId>(NodeId{1} << d);
  std::vector<NodeId> table(n);
  std::iota(table.begin(), table.end(), NodeId{0});
  // Dedicated stream so the permutation is independent of every simulation
  // stream derived from the same master seed.
  Rng rng(derive_stream(seed, 0x9E47));
  for (NodeId i = n; i > 1; --i) {
    const auto j = static_cast<NodeId>(rng.uniform_below(i));
    std::swap(table[i - 1], table[j]);
  }
  return {d, "random_permutation", std::move(table)};
}

Permutation Permutation::hotspot(int d, double hot_fraction) {
  check_dimension(d);
  if (!(hot_fraction >= 0.0 && hot_fraction <= 1.0)) {
    throw std::invalid_argument("hotspot fraction must be in [0, 1], got " +
                                std::to_string(hot_fraction));
  }
  const auto n = static_cast<NodeId>(NodeId{1} << d);
  const auto hot = static_cast<NodeId>(
      std::llround(hot_fraction * static_cast<double>(n)));
  std::vector<NodeId> table(n);
  for (NodeId x = 0; x < n; ++x) {
    table[x] = x < hot ? NodeId{0} : complement_bits(x, d);
  }
  return {d, "hotspot", std::move(table)};
}

Permutation Permutation::by_name(const std::string& name, int d,
                                 double hotspot_frac, std::uint64_t seed) {
  if (name == "bit_reversal") return bit_reversal(d);
  if (name == "transpose") return transpose(d);
  if (name == "bit_complement") return bit_complement(d);
  if (name == "shuffle") return shuffle(d);
  if (name == "tornado") return tornado(d);
  if (name == "random_permutation") return random(d, seed);
  if (name == "hotspot") return hotspot(d, hotspot_frac);
  std::string known;
  for (const auto& candidate : names()) {
    known += known.empty() ? candidate : ", " + candidate;
  }
  throw std::invalid_argument("unknown permutation '" + name +
                              "' (known: " + known + ")");
}

const std::vector<std::string>& Permutation::names() {
  static const std::vector<std::string> all{
      "bit_reversal", "transpose", "bit_complement", "shuffle",
      "tornado",      "random_permutation", "hotspot"};
  return all;
}

const std::string& Permutation::summary(const std::string& name) {
  static const std::vector<std::pair<std::string, std::string>> summaries{
      {"bit_reversal",
       "reverse the d identity bits; greedy butterfly congestion "
       "2^(ceil(d/2)-1) = Theta(sqrt(N))"},
      {"transpose",
       "swap the low and high floor(d/2)-bit halves (matrix transpose); "
       "Theta(sqrt(N)) greedy congestion"},
      {"bit_complement",
       "send to the antipodal node; every packet crosses all d dimensions"},
      {"shuffle", "rotate the identity left by one bit (perfect shuffle)"},
      {"tornado",
       "x -> x + 2^(d-1) - 1 (mod 2^d), just under half way around the "
       "node ring"},
      {"random_permutation",
       "uniformly random bijection (Fisher-Yates from the scenario seed); "
       "the O(d)-congestion control case"},
      {"hotspot",
       "round(hotspot_frac * 2^d) lowest sources send to node 0, the rest "
       "to their complement; deterministic but not bijective"},
  };
  for (const auto& [key, text] : summaries) {
    if (key == name) return text;
  }
  throw std::invalid_argument("unknown permutation '" + name + "'");
}

bool Permutation::is_bijective() const {
  std::vector<bool> seen(table_.size(), false);
  for (const NodeId dest : table_) {
    if (dest >= table_.size() || seen[dest]) return false;
    seen[dest] = true;
  }
  return true;
}

double Permutation::mean_distance() const {
  std::uint64_t total = 0;
  for (NodeId x = 0; x < table_.size(); ++x) {
    total += static_cast<std::uint64_t>(hamming_distance(x, table_[x]));
  }
  return static_cast<double>(total) / static_cast<double>(table_.size());
}

std::uint64_t Permutation::max_fan_in() const { return routesim::max_fan_in(table_); }

std::uint64_t max_fan_in(std::span<const NodeId> destination) {
  std::vector<std::uint64_t> fan_in(destination.size(), 0);
  std::uint64_t max = 0;
  for (const NodeId dest : destination) {
    RS_DASSERT(dest < destination.size());
    max = std::max(max, ++fan_in[dest]);
  }
  return max;
}

namespace {

CongestionReport summarize_loads(const std::vector<std::uint64_t>& load) {
  CongestionReport report;
  report.num_arcs = load.size();
  std::uint64_t total = 0;
  for (const std::uint64_t l : load) {
    report.max_load = std::max(report.max_load, l);
    total += l;
    if (l > 0) ++report.arcs_used;
  }
  report.mean_load = load.empty()
                         ? 0.0
                         : static_cast<double>(total) / static_cast<double>(load.size());
  return report;
}

}  // namespace

CongestionReport hypercube_greedy_congestion(int d,
                                             std::span<const NodeId> destination) {
  const Hypercube cube(d);
  RS_EXPECTS_MSG(destination.size() == cube.num_nodes(),
                 "destination table must have 2^d entries");
  std::vector<std::uint64_t> load(cube.num_arcs(), 0);
  for (NodeId x = 0; x < cube.num_nodes(); ++x) {
    NodeId cur = x;
    const NodeId dest = destination[x];
    while (cur != dest) {
      const int dim = lowest_dimension(cur ^ dest);
      ++load[cube.arc_index(cur, dim)];
      cur = flip_dimension(cur, dim);
    }
  }
  return summarize_loads(load);
}

CongestionReport butterfly_greedy_congestion(int d,
                                             std::span<const NodeId> destination) {
  const Butterfly bfly(d);
  RS_EXPECTS_MSG(destination.size() == bfly.rows(),
                 "destination table must have 2^d entries");
  std::vector<std::uint64_t> load(bfly.num_arcs(), 0);
  for (NodeId x = 0; x < bfly.rows(); ++x) {
    NodeId row = x;
    const NodeId dest = destination[x];
    for (int level = 1; level <= d; ++level) {
      const bool vertical = has_dimension(row ^ dest, level);
      ++load[bfly.arc_index(row, level,
                            vertical ? Butterfly::ArcKind::kVertical
                                     : Butterfly::ArcKind::kStraight)];
      if (vertical) row = flip_dimension(row, level);
    }
  }
  return summarize_loads(load);
}

CongestionReport topology_greedy_congestion(const Topology& topo,
                                            std::span<const NodeId> destination) {
  RS_EXPECTS_MSG(destination.size() == topo.num_nodes(),
                 "destination table must have num_nodes entries");
  std::vector<std::uint64_t> load(topo.num_arcs(), 0);
  for (NodeId x = 0; x < topo.num_nodes(); ++x) {
    NodeId cur = x;
    const NodeId dest = destination[x];
    RS_EXPECTS_MSG(topo.metric(cur, dest) >= 0,
                   "destination unreachable from its source");
    while (cur != dest) {
      const ArcId arc = topo.greedy_next_arc(cur, dest);
      ++load[arc];
      cur = topo.arc_target(arc);
    }
  }
  return summarize_loads(load);
}

std::uint64_t butterfly_bit_reversal_max_congestion(int d) {
  RS_EXPECTS(d >= 1);
  return std::uint64_t{1} << ((d + 1) / 2 - 1);
}

}  // namespace routesim
