#pragma once
/// \file permutation.hpp
/// \brief Adversarial permutation workloads and static congestion analysis
///        of the greedy path system.
///
/// The paper's efficiency results hold for *random* destinations (law (1));
/// the classic failure mode of greedy routing is a *structured permutation*
/// — every source x sends all of its traffic to one fixed destination
/// pi(x).  For bad permutations (bit reversal, transpose) the greedy path
/// system concentrates Theta(sqrt(N)) paths on single arcs of the
/// butterfly, so greedy congestion blows up while Valiant's randomized
/// first phase (valiant_mixing) restores near-random behaviour.  This file
/// provides the permutation generator family, plus *static* congestion
/// analysis: route one packet per source along its greedy path and count
/// per-arc loads, which multiplied by lambda gives the exact per-arc
/// utilisation of the corresponding dynamic experiment.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/bits.hpp"

namespace routesim {

/// A deterministic per-source destination map pi on the 2^d node (or
/// butterfly row) identities.  All named families except `hotspot` are
/// bijections; `hotspot` deliberately concentrates traffic and is the one
/// non-bijective member (see hotspot()).
class Permutation {
 public:
  /// pi(x) reverses the d identity bits: bit m of pi(x) is bit d+1-m of x.
  /// Self-inverse; the canonical worst case for the butterfly (its greedy
  /// path system has max arc congestion 2^(ceil(d/2)-1) = Theta(sqrt(N)),
  /// see butterfly_bit_reversal_max_congestion()).
  static Permutation bit_reversal(int d);

  /// Matrix-transpose traffic: the low floor(d/2) bits swap with the high
  /// floor(d/2) bits (the middle bit of an odd d stays).  Self-inverse;
  /// Theta(sqrt(N)) greedy congestion like bit reversal.
  static Permutation transpose(int d);

  /// pi(x) = complement of x (the antipodal node): every packet crosses
  /// all d dimensions, the maximum-distance permutation.  Self-inverse.
  static Permutation bit_complement(int d);

  /// Perfect shuffle: rotate the identity left by one bit.
  static Permutation shuffle(int d);

  /// Tornado traffic: pi(x) = x + 2^(d-1) - 1 (mod 2^d) — just under half
  /// way around the node ring, the classic adversary of ring schemes.
  static Permutation tornado(int d);

  /// A uniformly random permutation (Fisher-Yates from a dedicated RNG
  /// stream of `seed`); the control case — with high probability its
  /// greedy congestion is O(d), like random destinations.
  static Permutation random(int d, std::uint64_t seed);

  /// Hotspot map with a concentration knob: the round(hot_fraction * 2^d)
  /// lowest-numbered sources all send to node 0 (the hot spot); every
  /// other source sends to its bit complement (background traffic).
  /// Deterministic but NOT bijective for hot_fraction > 0 — the inherent
  /// in-arc congestion of the hot node, ~hot_fraction*2^d/d, binds every
  /// routing scheme.  Precondition: hot_fraction in [0, 1].
  static Permutation hotspot(int d, double hot_fraction);

  /// Looks a family up by its catalog name (see names()); `hotspot_frac`
  /// and `seed` are consumed only by the families that need them.  Throws
  /// std::invalid_argument for an unknown name or hot_fraction outside
  /// [0, 1].
  static Permutation by_name(const std::string& name, int d,
                             double hotspot_frac = 0.1, std::uint64_t seed = 1);

  /// Every name by_name() accepts, in catalog order.
  static const std::vector<std::string>& names();

  /// One-line description of a family (for --list and the generated
  /// scenario reference); throws std::invalid_argument for unknown names.
  static const std::string& summary(const std::string& name);

  [[nodiscard]] int dimension() const noexcept { return d_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// pi(x).  Precondition: x < 2^d.
  [[nodiscard]] NodeId map(NodeId x) const {
    RS_DASSERT(x < table_.size());
    return table_[x];
  }

  /// The full destination table, indexed by source.
  [[nodiscard]] const std::vector<NodeId>& table() const noexcept { return table_; }

  /// True when pi is a bijection (every family except hotspot).
  [[nodiscard]] bool is_bijective() const;

  /// Mean Hamming distance H(x, pi(x)) over all sources — the mean hops of
  /// the corresponding greedy hypercube experiment.
  [[nodiscard]] double mean_distance() const;

  /// max_v |pi^-1(v)|: 1 for a bijection; the hot-spot fan-in otherwise.
  [[nodiscard]] std::uint64_t max_fan_in() const;

 private:
  Permutation(int d, std::string name, std::vector<NodeId> table);

  int d_;
  std::string name_;
  std::vector<NodeId> table_;
};

/// Per-arc load of a greedy path system: route one packet per source along
/// its canonical greedy path to `destination[source]` and count how many
/// paths use each arc.  Multiplying a load by the per-source rate lambda
/// gives the exact utilisation of that arc in the dynamic experiment, so
/// `lambda * max_load < 1` is the stability condition.
struct CongestionReport {
  std::uint64_t max_load = 0;   ///< heaviest arc (the congestion)
  double mean_load = 0.0;       ///< mean over all arcs of the topology
  std::uint64_t arcs_used = 0;  ///< arcs carrying at least one path
  std::uint64_t num_arcs = 0;   ///< arcs in the topology
};

/// Greedy (increasing dimension order) path system on the d-cube.
/// `destination` must have 2^d entries; a source with destination == source
/// contributes no arcs (delivered in place, as in the simulator).
[[nodiscard]] CongestionReport hypercube_greedy_congestion(
    int d, std::span<const NodeId> destination);

/// The unique-path system on the d-dimensional butterfly: every source row
/// crosses one arc per level (vertical exactly where source and destination
/// rows differ), so each source contributes d arcs.
[[nodiscard]] CongestionReport butterfly_greedy_congestion(
    int d, std::span<const NodeId> destination);

class Topology;

/// The greedy path system of an arbitrary Topology (topology/topology.hpp):
/// walk greedy_next_arc from every source to `destination[source]` and
/// count per-arc path loads.  `destination` must have num_nodes() entries,
/// each reachable from its source.  The ring's tornado permutation makes
/// this Theta(n) while uniform traffic stays Theta(1) per unit rate — the
/// generic-topology analogue of the hypercube's transpose collapse.
[[nodiscard]] CongestionReport topology_greedy_congestion(
    const Topology& topo, std::span<const NodeId> destination);

/// Closed form for the butterfly + bit reversal: the greedy path system has
/// max arc congestion exactly 2^(ceil(d/2) - 1) = Theta(sqrt(N)).  At
/// level j <= (d+1)/2, the arc crossed by source row r is determined by
/// bits j..d of r alone, so the 2^(j-1) sources agreeing on them collide;
/// the count peaks at the middle level.  Pinned against the brute-force
/// analysis in tests/test_permutation.cpp.
[[nodiscard]] std::uint64_t butterfly_bit_reversal_max_congestion(int d);

/// max_v |pi^-1(v)| of a destination table: 1 for a bijection, the hot-spot
/// fan-in otherwise.  The one definition behind Permutation::max_fan_in()
/// and the valiant_mixing load-factor rule.  Precondition: every entry
/// indexes the table.
[[nodiscard]] std::uint64_t max_fan_in(std::span<const NodeId> destination);

}  // namespace routesim
