#include "workload/trace.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"
#include "util/json_parse.hpp"
#include "workload/traffic.hpp"

namespace routesim {

namespace {

PacketTrace generate_trace(int d, double lambda, const DestinationDistribution& dist,
                           double horizon, std::uint64_t seed) {
  RS_EXPECTS(d >= 1 && d <= 26);
  RS_EXPECTS(lambda > 0.0);
  RS_EXPECTS(horizon > 0.0);
  RS_EXPECTS(dist.dimension() == d);

  PacketTrace trace;
  trace.dimension = d;
  trace.rate_per_node = lambda;

  const auto nodes = static_cast<std::uint32_t>(std::uint64_t{1} << d);
  MergedPoissonSource source(nodes, lambda, Rng(derive_stream(seed, 0x7A11)));
  Rng dest_rng(derive_stream(seed, 0xDE57));

  for (;;) {
    const PacketBirth birth = source.next();
    if (birth.time > horizon) break;
    trace.packets.push_back(TracedPacket{
        birth.time, birth.origin, dist.sample(dest_rng, birth.origin)});
  }
  return trace;
}

}  // namespace

PacketTrace generate_hypercube_trace(int d, double lambda,
                                     const DestinationDistribution& dist,
                                     double horizon, std::uint64_t seed) {
  return generate_trace(d, lambda, dist, horizon, seed);
}

PacketTrace generate_butterfly_trace(int d, double lambda,
                                     const DestinationDistribution& dist,
                                     double horizon, std::uint64_t seed) {
  return generate_trace(d, lambda, dist, horizon, seed);
}

PacketTrace generate_fixed_destination_trace(int d, double lambda,
                                             const std::vector<NodeId>& table,
                                             double horizon,
                                             std::uint64_t seed) {
  RS_EXPECTS(d >= 1 && d <= 26);
  RS_EXPECTS(lambda > 0.0);
  RS_EXPECTS(horizon > 0.0);
  const auto nodes = static_cast<std::uint32_t>(std::uint64_t{1} << d);
  RS_EXPECTS(table.size() == nodes);

  PacketTrace trace;
  trace.dimension = d;
  trace.rate_per_node = lambda;
  MergedPoissonSource source(nodes, lambda, Rng(derive_stream(seed, 0x7A11)));
  for (;;) {
    const PacketBirth birth = source.next();
    if (birth.time > horizon) break;
    trace.packets.push_back(
        TracedPacket{birth.time, birth.origin, table[birth.origin]});
  }
  return trace;
}

namespace {

/// Shortest decimal form that strtod's back to the identical double
/// (same contract as core's fmt_shortest; duplicated here so the
/// workload layer does not depend on core).
std::string shortest_double(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  double parsed = 0.0;
  for (const int precision : {1, 3, 6, 9, 12, 15}) {
    char candidate[32];
    std::snprintf(candidate, sizeof candidate, "%.*g", precision, value);
    if (std::sscanf(candidate, "%lf", &parsed) == 1 && parsed == value) {
      return candidate;
    }
  }
  return buffer;
}

[[noreturn]] void trace_line_error(const std::string& path, std::size_t line,
                                   const std::string& reason) {
  std::ostringstream os;
  os << "trace file '" << path << "' line " << line << ": " << reason;
  throw std::invalid_argument(os.str());
}

/// Extracts a required numeric field, rejecting non-finite values.
double trace_number(const std::string& path, std::size_t line,
                    const json::Value& record, const char* key) {
  const json::Value* field = record.find(key);
  if (field == nullptr) {
    trace_line_error(path, line, std::string("missing field \"") + key + "\"");
  }
  if (!field->is_number()) {
    trace_line_error(path, line,
                     std::string("field \"") + key + "\" is not a number");
  }
  if (!std::isfinite(field->number)) {
    trace_line_error(path, line,
                     std::string("field \"") + key + "\" is not finite");
  }
  return field->number;
}

NodeId trace_identity(const std::string& path, std::size_t line,
                      const json::Value& record, const char* key,
                      std::uint64_t nodes) {
  const double value = trace_number(path, line, record, key);
  if (value < 0.0 || value != std::floor(value) ||
      value >= static_cast<double>(nodes)) {
    std::ostringstream os;
    os << "field \"" << key << "\" must be an integer in [0, " << nodes
       << "), got " << shortest_double(value);
    trace_line_error(path, line, os.str());
  }
  return static_cast<NodeId>(value);
}

}  // namespace

void save_trace_jsonl(const PacketTrace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("trace file '" + path + "': cannot open for writing");
  }
  for (const TracedPacket& packet : trace.packets) {
    out << "{\"t\":" << shortest_double(packet.time)
        << ",\"src\":" << packet.origin << ",\"dst\":" << packet.destination
        << "}\n";
  }
  out.flush();
  if (!out) {
    throw std::runtime_error("trace file '" + path + "': write failed");
  }
}

PacketTrace load_trace_jsonl(const std::string& path, int d) {
  RS_EXPECTS(d >= 1 && d <= 26);
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("trace file '" + path + "': cannot open");
  }
  const std::uint64_t nodes = std::uint64_t{1} << d;
  PacketTrace trace;
  trace.dimension = d;
  std::string line;
  std::size_t line_number = 0;
  double previous_time = 0.0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    json::Value record;
    std::string error;
    if (!json::parse(line, &record, &error)) {
      trace_line_error(path, line_number, error);
    }
    if (!record.is_object()) {
      trace_line_error(path, line_number, "expected a JSON object");
    }
    const double time = trace_number(path, line_number, record, "t");
    if (time < 0.0) {
      trace_line_error(path, line_number, "time is negative");
    }
    if (time < previous_time) {
      std::ostringstream os;
      os << "times must be non-decreasing (" << shortest_double(time)
         << " after " << shortest_double(previous_time) << ")";
      trace_line_error(path, line_number, os.str());
    }
    previous_time = time;
    trace.packets.push_back(TracedPacket{
        time, trace_identity(path, line_number, record, "src", nodes),
        trace_identity(path, line_number, record, "dst", nodes)});
  }
  if (in.bad()) {
    throw std::runtime_error("trace file '" + path + "': read failed");
  }
  return trace;
}

std::uint64_t trace_file_fingerprint(const std::string& path) noexcept {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0;
  std::uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a 64 offset basis
  char buffer[4096];
  while (in.read(buffer, sizeof buffer) || in.gcount() > 0) {
    const std::streamsize got = in.gcount();
    for (std::streamsize i = 0; i < got; ++i) {
      hash ^= static_cast<unsigned char>(buffer[i]);
      hash *= 0x100000001b3ull;  // FNV prime
    }
    if (got < static_cast<std::streamsize>(sizeof buffer)) break;
  }
  return hash;
}

}  // namespace routesim
