#include "workload/trace.hpp"

#include "util/assert.hpp"
#include "workload/traffic.hpp"

namespace routesim {

namespace {

PacketTrace generate_trace(int d, double lambda, const DestinationDistribution& dist,
                           double horizon, std::uint64_t seed) {
  RS_EXPECTS(d >= 1 && d <= 26);
  RS_EXPECTS(lambda > 0.0);
  RS_EXPECTS(horizon > 0.0);
  RS_EXPECTS(dist.dimension() == d);

  PacketTrace trace;
  trace.dimension = d;
  trace.rate_per_node = lambda;

  const auto nodes = static_cast<std::uint32_t>(std::uint64_t{1} << d);
  MergedPoissonSource source(nodes, lambda, Rng(derive_stream(seed, 0x7A11)));
  Rng dest_rng(derive_stream(seed, 0xDE57));

  for (;;) {
    const PacketBirth birth = source.next();
    if (birth.time > horizon) break;
    trace.packets.push_back(TracedPacket{
        birth.time, birth.origin, dist.sample(dest_rng, birth.origin)});
  }
  return trace;
}

}  // namespace

PacketTrace generate_hypercube_trace(int d, double lambda,
                                     const DestinationDistribution& dist,
                                     double horizon, std::uint64_t seed) {
  return generate_trace(d, lambda, dist, horizon, seed);
}

PacketTrace generate_butterfly_trace(int d, double lambda,
                                     const DestinationDistribution& dist,
                                     double horizon, std::uint64_t seed) {
  return generate_trace(d, lambda, dist, horizon, seed);
}

}  // namespace routesim
