#pragma once
/// \file trace.hpp
/// \brief Recorded packet traces for replay and coupled experiments.
///
/// A trace fixes the exogenous randomness of a routing experiment — packet
/// generation times, origins and destinations — so that different schemes
/// (greedy vs. baseline vs. mixing) can be compared on the *same* workload,
/// mirroring the sample-path arguments of §3.3.

#include <cstdint>
#include <vector>

#include "util/bits.hpp"
#include "workload/destination.hpp"

namespace routesim {

/// One recorded packet: generation time, origin and destination identity
/// (a destination *row* for butterfly traces).
struct TracedPacket {
  double time = 0.0;
  NodeId origin = 0;
  NodeId destination = 0;
};

/// A time-sorted packet trace plus the model parameters it was generated
/// with; replaying it fixes the exogenous randomness of an experiment.
struct PacketTrace {
  int dimension = 0;         ///< cube dimension d (or butterfly d)
  double rate_per_node = 0;  ///< lambda used to generate the trace
  std::vector<TracedPacket> packets;  ///< sorted by time

  [[nodiscard]] std::size_t size() const noexcept { return packets.size(); }
  [[nodiscard]] double horizon() const noexcept {
    return packets.empty() ? 0.0 : packets.back().time;
  }
};

/// Generates a Poisson trace on the d-cube (origins uniform over nodes,
/// destinations from `dist`) up to the given horizon.
[[nodiscard]] PacketTrace generate_hypercube_trace(int d, double lambda,
                                                   const DestinationDistribution& dist,
                                                   double horizon, std::uint64_t seed);

/// Generates a trace for the butterfly: origins are level-1 rows, and
/// `destination` holds the destination *row* at level d+1.
[[nodiscard]] PacketTrace generate_butterfly_trace(int d, double lambda,
                                                   const DestinationDistribution& dist,
                                                   double horizon, std::uint64_t seed);

}  // namespace routesim
