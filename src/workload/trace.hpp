#pragma once
/// \file trace.hpp
/// \brief Recorded packet traces for replay and coupled experiments.
///
/// A trace fixes the exogenous randomness of a routing experiment — packet
/// generation times, origins and destinations — so that different schemes
/// (greedy vs. baseline vs. mixing) can be compared on the *same* workload,
/// mirroring the sample-path arguments of §3.3.

#include <cstdint>
#include <string>
#include <vector>

#include "util/bits.hpp"
#include "workload/destination.hpp"

namespace routesim {

/// One recorded packet: generation time, origin and destination identity
/// (a destination *row* for butterfly traces).
struct TracedPacket {
  double time = 0.0;
  NodeId origin = 0;
  NodeId destination = 0;
};

/// A time-sorted packet trace plus the model parameters it was generated
/// with; replaying it fixes the exogenous randomness of an experiment.
struct PacketTrace {
  int dimension = 0;         ///< cube dimension d (or butterfly d)
  double rate_per_node = 0;  ///< lambda used to generate the trace
  std::vector<TracedPacket> packets;  ///< sorted by time

  [[nodiscard]] std::size_t size() const noexcept { return packets.size(); }
  [[nodiscard]] double horizon() const noexcept {
    return packets.empty() ? 0.0 : packets.back().time;
  }
};

/// Generates a Poisson trace on the d-cube (origins uniform over nodes,
/// destinations from `dist`) up to the given horizon.
[[nodiscard]] PacketTrace generate_hypercube_trace(int d, double lambda,
                                                   const DestinationDistribution& dist,
                                                   double horizon, std::uint64_t seed);

/// Generates a trace for the butterfly: origins are level-1 rows, and
/// `destination` holds the destination *row* at level d+1.
[[nodiscard]] PacketTrace generate_butterfly_trace(int d, double lambda,
                                                   const DestinationDistribution& dist,
                                                   double horizon, std::uint64_t seed);

/// Generates a Poisson trace with per-origin fixed destinations (the
/// permutation workload): origins arrive as in generate_hypercube_trace
/// and the destination is table[origin].  No destination randomness is
/// consumed, matching the kernel's fixed-destination mode.
[[nodiscard]] PacketTrace generate_fixed_destination_trace(
    int d, double lambda, const std::vector<NodeId>& table, double horizon,
    std::uint64_t seed);

/// Writes the trace as JSONL — one {"t":...,"src":...,"dst":...} object
/// per packet, times in shortest exact-round-trip decimal form, so a
/// saved trace loads back bit-identically.  Throws std::runtime_error
/// when the file cannot be written.
void save_trace_jsonl(const PacketTrace& trace, const std::string& path);

/// Loads a JSONL trace recorded by save_trace_jsonl (or produced by any
/// tool emitting the same records) and validates it for a d-dimensional
/// network: every line must be a JSON object with finite numeric "t"
/// (non-negative, non-decreasing across lines) and integer "src"/"dst"
/// in [0, 2^d).  Throws std::runtime_error when the file cannot be read
/// and std::invalid_argument naming the offending line otherwise.
[[nodiscard]] PacketTrace load_trace_jsonl(const std::string& path, int d);

/// FNV-1a 64-bit hash of the file's raw bytes; 0 when the file cannot be
/// read.  Never throws — used to salt result-store keys so a changed
/// trace file can never hit a stale record (the load path reports the
/// real error).
[[nodiscard]] std::uint64_t trace_file_fingerprint(
    const std::string& path) noexcept;

}  // namespace routesim
