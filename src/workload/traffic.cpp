#include "workload/traffic.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace routesim {

MergedPoissonSource::MergedPoissonSource(std::uint32_t num_nodes,
                                         double rate_per_node, Rng rng)
    : num_nodes_(num_nodes),
      total_rate_(rate_per_node * static_cast<double>(num_nodes)),
      rng_(rng) {
  RS_EXPECTS(num_nodes >= 1);
  RS_EXPECTS(rate_per_node > 0.0);
}

PacketBirth MergedPoissonSource::next() {
  now_ += sample_exponential(rng_, total_rate_);
  return PacketBirth{now_, static_cast<NodeId>(rng_.uniform_below(num_nodes_))};
}

PerNodePoissonSource::PerNodePoissonSource(std::uint32_t num_nodes,
                                           double rate_per_node, std::uint64_t seed)
    : rate_(rate_per_node) {
  RS_EXPECTS(num_nodes >= 1);
  RS_EXPECTS(rate_per_node > 0.0);
  rngs_.reserve(num_nodes);
  heap_.reserve(num_nodes);
  for (std::uint32_t node = 0; node < num_nodes; ++node) {
    rngs_.emplace_back(derive_stream(seed, node));
    heap_.push_back(NodeClock{sample_exponential(rngs_.back(), rate_), node});
  }
  std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
}

PacketBirth PerNodePoissonSource::next() {
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  NodeClock& clock = heap_.back();
  const PacketBirth birth{clock.next_time, clock.node};
  clock.next_time += sample_exponential(rngs_[clock.node], rate_);
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  return birth;
}

SlottedBatchSource::SlottedBatchSource(std::uint32_t num_nodes, double rate_per_node,
                                       double slot, Rng rng)
    : num_nodes_(num_nodes),
      mean_batch_(rate_per_node * static_cast<double>(num_nodes) * slot),
      slot_(slot),
      rng_(rng) {
  RS_EXPECTS(num_nodes >= 1);
  RS_EXPECTS(rate_per_node > 0.0);
  RS_EXPECTS_MSG(slot > 0.0 && slot <= 1.0, "slot duration must be in (0, 1]");
}

std::vector<NodeId> SlottedBatchSource::next_batch() {
  ++slot_index_;
  const std::uint64_t size = sample_poisson(rng_, mean_batch_);
  std::vector<NodeId> origins(size);
  for (auto& origin : origins) {
    origin = static_cast<NodeId>(rng_.uniform_below(num_nodes_));
  }
  return origins;
}

}  // namespace routesim
