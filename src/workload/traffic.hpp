#pragma once
/// \file traffic.hpp
/// \brief Packet-generation processes.
///
/// The paper's model: every one of the 2^d nodes generates packets as an
/// independent Poisson process of rate lambda.  The superposition of these
/// processes is a single Poisson process of rate lambda * 2^d whose points
/// carry independent uniformly distributed origins — MergedPoissonSource
/// exploits this (it is an exact, not approximate, representation and keeps
/// the pending-event set small).  PerNodePoissonSource keeps one stream per
/// node and is used by the tests to cross-validate the superposition.
///
/// SlottedBatchSource implements §3.4: at every slot boundary k*tau each
/// node generates a Poisson(lambda*tau)-sized batch; equivalently the total
/// batch is Poisson(lambda*2^d*tau) with uniform origins.

#include <cstdint>
#include <vector>

#include "util/bits.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace routesim {

/// A packet birth: time and origin (destination is sampled separately).
struct PacketBirth {
  double time = 0.0;
  NodeId origin = 0;
};

/// Exact superposition of num_nodes independent Poisson(rate_per_node)
/// sources.
class MergedPoissonSource {
 public:
  MergedPoissonSource(std::uint32_t num_nodes, double rate_per_node, Rng rng);

  /// Time and origin of the next packet (strictly increasing times).
  [[nodiscard]] PacketBirth next();

  [[nodiscard]] double total_rate() const noexcept { return total_rate_; }

 private:
  std::uint32_t num_nodes_;
  double total_rate_;
  double now_ = 0.0;
  Rng rng_;
};

/// Literal per-node Poisson streams (test/cross-validation implementation).
class PerNodePoissonSource {
 public:
  PerNodePoissonSource(std::uint32_t num_nodes, double rate_per_node,
                       std::uint64_t seed);

  /// Next packet over all nodes, in global time order.
  [[nodiscard]] PacketBirth next();

 private:
  struct NodeClock {
    double next_time;
    NodeId node;
    bool operator>(const NodeClock& other) const noexcept {
      return next_time > other.next_time ||
             (next_time == other.next_time && node > other.node);
    }
  };

  double rate_;
  std::vector<Rng> rngs_;
  std::vector<NodeClock> heap_;  // binary min-heap via std::*_heap with greater
};

/// §3.4 slotted arrivals: batches at slot boundaries.
class SlottedBatchSource {
 public:
  SlottedBatchSource(std::uint32_t num_nodes, double rate_per_node, double slot,
                     Rng rng);

  /// Origins of the batch generated at the k-th slot boundary (time k*slot).
  /// Sizes are Poisson(rate*num_nodes*slot); origins i.i.d. uniform.
  [[nodiscard]] std::vector<NodeId> next_batch();

  [[nodiscard]] double slot() const noexcept { return slot_; }
  [[nodiscard]] std::uint64_t slots_emitted() const noexcept { return slot_index_; }
  [[nodiscard]] double current_time() const noexcept {
    return static_cast<double>(slot_index_) * slot_;
  }

 private:
  std::uint32_t num_nodes_;
  double mean_batch_;
  double slot_;
  std::uint64_t slot_index_ = 0;
  Rng rng_;
};

}  // namespace routesim
