// Tests for the ablation knobs of the greedy hypercube simulator:
// arc service order (FIFO / LIFO / random), dimension order (increasing /
// decreasing / random-per-hop) and finite buffers.

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "routing/greedy_hypercube.hpp"

namespace routesim {
namespace {

GreedyHypercubeConfig base_config(int d, double lambda, std::uint64_t seed) {
  GreedyHypercubeConfig config;
  config.d = d;
  config.lambda = lambda;
  config.destinations = DestinationDistribution::uniform(d);
  config.seed = seed;
  return config;
}

TEST(ServiceOrderAblation, MeanDelayInsensitive) {
  // All three orders are work-conserving and blind to service times, so
  // the mean delay must agree (classic M/G/1 insensitivity).
  auto config = base_config(5, 1.4, 21);  // rho = 0.7
  config.arc_service_order = ArcServiceOrder::kFifo;
  GreedyHypercubeSim fifo(config);
  config.arc_service_order = ArcServiceOrder::kLifo;
  GreedyHypercubeSim lifo(config);
  config.arc_service_order = ArcServiceOrder::kRandom;
  GreedyHypercubeSim random(config);
  fifo.run(1000.0, 41000.0);
  lifo.run(1000.0, 41000.0);
  random.run(1000.0, 41000.0);
  EXPECT_NEAR(lifo.delay().mean() / fifo.delay().mean(), 1.0, 0.03);
  EXPECT_NEAR(random.delay().mean() / fifo.delay().mean(), 1.0, 0.03);
}

TEST(ServiceOrderAblation, LifoHasHeavierTail) {
  // LIFO trades tail for head: higher delay variance than FIFO.
  auto config = base_config(5, 1.4, 23);
  config.arc_service_order = ArcServiceOrder::kFifo;
  GreedyHypercubeSim fifo(config);
  config.arc_service_order = ArcServiceOrder::kLifo;
  GreedyHypercubeSim lifo(config);
  fifo.run(1000.0, 41000.0);
  lifo.run(1000.0, 41000.0);
  EXPECT_GT(lifo.delay().variance(), fifo.delay().variance() * 1.3);
  EXPECT_GT(lifo.delay().max(), fifo.delay().max());
}

TEST(DimensionOrderAblation, AllOrdersDeliverWithSameMeanHops) {
  // Every order crosses exactly the required dimensions: hops = H(x, z).
  for (const auto order : {DimensionOrder::kIncreasing, DimensionOrder::kDecreasing,
                           DimensionOrder::kRandomPerHop}) {
    auto config = base_config(6, 0.8, 29);
    config.dimension_order = order;
    GreedyHypercubeSim sim(config);
    sim.run(500.0, 20500.0);
    EXPECT_NEAR(sim.hops().mean(), 3.0, 0.05);
    EXPECT_TRUE(sim.little_check().consistent(0.03));
  }
}

TEST(DimensionOrderAblation, FixedOrdersStatisticallyEquivalent) {
  // Relabelling symmetry: decreasing order is the increasing order on the
  // reversed dimension labels, so the delay statistics must agree.
  auto config = base_config(6, 1.4, 31);  // rho = 0.7
  config.dimension_order = DimensionOrder::kIncreasing;
  GreedyHypercubeSim increasing(config);
  config.dimension_order = DimensionOrder::kDecreasing;
  GreedyHypercubeSim decreasing(config);
  increasing.run(1000.0, 31000.0);
  decreasing.run(1000.0, 31000.0);
  EXPECT_NEAR(decreasing.delay().mean() / increasing.delay().mean(), 1.0, 0.05);
}

TEST(DimensionOrderAblation, RandomPerHopSlightlyWorseButBounded) {
  // Randomising the order per hop breaks the levelled structure; measured
  // delay is a few percent higher (stream mixing) yet still within the
  // Prop. 12 value for these parameters.
  auto config = base_config(6, 1.4, 31);  // rho = 0.7
  config.dimension_order = DimensionOrder::kIncreasing;
  GreedyHypercubeSim increasing(config);
  config.dimension_order = DimensionOrder::kRandomPerHop;
  GreedyHypercubeSim random(config);
  increasing.run(1000.0, 31000.0);
  random.run(1000.0, 31000.0);
  EXPECT_GE(random.delay().mean(), increasing.delay().mean() * 0.99);
  EXPECT_LE(random.delay().mean(), increasing.delay().mean() * 1.2);
  EXPECT_LE(random.delay().mean(),
            bounds::greedy_delay_upper_bound({6, 1.4, 0.5}) * 1.03);
}

TEST(DimensionOrderAblation, StableNearCapacityForAllOrders) {
  for (const auto order : {DimensionOrder::kDecreasing,
                           DimensionOrder::kRandomPerHop}) {
    auto config = base_config(4, 1.8, 37);  // rho = 0.9
    config.dimension_order = order;
    GreedyHypercubeSim sim(config);
    sim.run(2000.0, 32000.0);
    EXPECT_LT(sim.final_population(), 3.0 * 4 * 16.0 * 9.0);
  }
}

TEST(FiniteBuffers, NoDropsWhenBuffersAmple) {
  auto config = base_config(5, 1.0, 41);  // rho = 0.5
  config.buffer_capacity = 200;
  GreedyHypercubeSim sim(config);
  sim.run(500.0, 20500.0);
  EXPECT_EQ(sim.drops_in_window(), 0u);
}

TEST(FiniteBuffers, TinyBuffersDropUnderLoad) {
  auto config = base_config(5, 1.8, 43);  // rho = 0.9
  config.buffer_capacity = 2;
  GreedyHypercubeSim sim(config);
  sim.run(500.0, 20500.0);
  EXPECT_GT(sim.drops_in_window(), 100u);
  // Conservation: every injected packet is eventually delivered, dropped
  // or still in flight; loss rate strictly below 1.
  const double loss = static_cast<double>(sim.drops_in_window()) /
                      static_cast<double>(sim.arrivals_in_window());
  EXPECT_GT(loss, 0.001);
  EXPECT_LT(loss, 0.5);
}

TEST(FiniteBuffers, LossRateDecreasesWithCapacity) {
  double previous_loss = 1.0;
  for (const std::uint32_t capacity : {1u, 2u, 4u, 8u, 16u}) {
    auto config = base_config(4, 1.6, 47);  // rho = 0.8
    config.buffer_capacity = capacity;
    GreedyHypercubeSim sim(config);
    sim.run(500.0, 40500.0);
    const double loss = static_cast<double>(sim.drops_in_window()) /
                        static_cast<double>(sim.arrivals_in_window());
    EXPECT_LE(loss, previous_loss + 1e-6) << "capacity " << capacity;
    previous_loss = loss;
  }
  EXPECT_LT(previous_loss, 0.01);  // 16 slots nearly lossless at rho = 0.8
}

TEST(FiniteBuffers, OccupancyNeverExceedsCapacity) {
  auto config = base_config(4, 1.8, 53);
  config.buffer_capacity = 3;
  config.track_node_occupancy = true;
  GreedyHypercubeSim sim(config);
  sim.run(500.0, 10500.0);
  // Each node has d out-arcs of capacity 3 each.
  EXPECT_LE(sim.max_node_occupancy(), 3.0 * 4.0 + 1e-9);
}

}  // namespace
}  // namespace routesim
