// Tests for the closed-form queueing formulas ([Kle75], [Bru71]).

#include "queueing/analytic.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace routesim {
namespace {

TEST(Md1, WaitingTimeKnownValues) {
  EXPECT_DOUBLE_EQ(md1_waiting_time(0.0), 0.0);
  EXPECT_DOUBLE_EQ(md1_waiting_time(0.5), 0.5);         // 0.5/(2*0.5)
  EXPECT_DOUBLE_EQ(md1_waiting_time(0.8), 0.8 / 0.4);   // = 2
}

TEST(Md1, SojournIsServicePlusWait) {
  for (const double rho : {0.1, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(md1_sojourn_time(rho), 1.0 + md1_waiting_time(rho));
  }
}

TEST(Md1, MeanNumberViaLittle) {
  // L = rho * sojourn must equal rho + rho^2/(2(1-rho)).
  for (const double rho : {0.2, 0.5, 0.7, 0.95}) {
    EXPECT_NEAR(md1_mean_number(rho), rho * md1_sojourn_time(rho), 1e-12);
  }
}

TEST(Md1, HalfTheMm1Wait) {
  // Deterministic service halves the M/M/1 queueing delay.
  for (const double rho : {0.3, 0.6, 0.9}) {
    EXPECT_NEAR(md1_waiting_time(rho), 0.5 * (mm1_sojourn_time(rho) - 1.0), 1e-12);
  }
}

TEST(Mm1, KnownValues) {
  EXPECT_DOUBLE_EQ(mm1_sojourn_time(0.5), 2.0);
  EXPECT_DOUBLE_EQ(mm1_mean_number(0.5), 1.0);
  EXPECT_DOUBLE_EQ(mm1_mean_number(0.9), 9.0);
}

TEST(Mm1, LittleConsistency) {
  for (const double rho : {0.1, 0.4, 0.8}) {
    EXPECT_NEAR(mm1_mean_number(rho), rho * mm1_sojourn_time(rho), 1e-12);
  }
}

TEST(Mds, LowerBoundReducesTowardOneAsServersGrow) {
  const double rho = 0.9;
  double previous = mds_sojourn_lower_bound(1.0, rho);
  for (const double s : {2.0, 8.0, 64.0, 1024.0}) {
    const double current = mds_sojourn_lower_bound(s, rho);
    EXPECT_LT(current, previous);
    EXPECT_GT(current, 1.0);
    previous = current;
  }
}

TEST(Mds, SingleServerCaseIsMd1Wait) {
  // s = 1: 1 + rho/(2(1-rho)) = M/D/1 sojourn.
  for (const double rho : {0.2, 0.6, 0.9}) {
    EXPECT_NEAR(mds_sojourn_lower_bound(1.0, rho), md1_sojourn_time(rho), 1e-12);
  }
}

TEST(Analytic, DivergesAsRhoApproachesOne) {
  EXPECT_GT(md1_waiting_time(0.999), 400.0);
  EXPECT_GT(mm1_mean_number(0.999), 900.0);
}

TEST(Analytic, RejectsUnstableUtilisation) {
  EXPECT_THROW((void)md1_waiting_time(1.0), ContractViolation);
  EXPECT_THROW((void)md1_mean_number(1.5), ContractViolation);
  EXPECT_THROW((void)mm1_sojourn_time(-0.1), ContractViolation);
  EXPECT_THROW((void)mds_sojourn_lower_bound(0.5, 0.5), ContractViolation);
}

TEST(Analytic, MonotoneInLoad) {
  double last_md1 = 0.0, last_mm1 = 0.0;
  for (double rho = 0.05; rho < 0.99; rho += 0.05) {
    EXPECT_GT(md1_mean_number(rho), last_md1);
    EXPECT_GT(mm1_mean_number(rho), last_mm1);
    last_md1 = md1_mean_number(rho);
    last_mm1 = mm1_mean_number(rho);
  }
}

}  // namespace
}  // namespace routesim
