// Tests for the static batch router (one round of the §2.3 baseline /
// Valiant-Brebner phase 1).

#include "routing/batch_router.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"

namespace routesim {
namespace {

TEST(BatchRouter, EmptyBatch) {
  const Hypercube cube(4);
  const auto result = route_batch_greedy(cube, std::vector<BatchPacket>{}, 5.0);
  EXPECT_TRUE(result.completion_times.empty());
  EXPECT_DOUBLE_EQ(result.makespan, 5.0);
}

TEST(BatchRouter, SinglePacketDeliversAtHammingDistance) {
  const Hypercube cube(4);
  const std::vector<BatchPacket> batch{{0b0000, 0b1011}};
  const auto result = route_batch_greedy(cube, batch, 10.0);
  EXPECT_DOUBLE_EQ(result.completion_times[0], 13.0);
  EXPECT_DOUBLE_EQ(result.makespan, 13.0);
}

TEST(BatchRouter, SelfAddressedCompletesImmediately) {
  const Hypercube cube(3);
  const std::vector<BatchPacket> batch{{4, 4}};
  const auto result = route_batch_greedy(cube, batch, 2.0);
  EXPECT_DOUBLE_EQ(result.completion_times[0], 2.0);
}

TEST(BatchRouter, SharedFirstArcSerialises) {
  const Hypercube cube(3);
  // Both need arc (000 -> 001) first.
  const std::vector<BatchPacket> batch{{0b000, 0b001}, {0b000, 0b011}};
  const auto result = route_batch_greedy(cube, batch, 0.0);
  EXPECT_DOUBLE_EQ(result.completion_times[0], 1.0);
  // Second starts its first hop at t=1, then one more hop: 3.
  EXPECT_DOUBLE_EQ(result.completion_times[1], 3.0);
}

TEST(BatchRouter, AntipodalPermutationIsContentionFree) {
  // p=1 pattern: every node sends to its complement; canonical paths are
  // arc-disjoint, so every packet finishes in exactly d steps.
  const int d = 6;
  const Hypercube cube(d);
  std::vector<BatchPacket> batch;
  for (NodeId x = 0; x < cube.num_nodes(); ++x) {
    batch.push_back(BatchPacket{x, antipode(x, d)});
  }
  const auto result = route_batch_greedy(cube, batch, 0.0);
  for (const double t : result.completion_times) EXPECT_DOUBLE_EQ(t, d);
  EXPECT_DOUBLE_EQ(result.makespan, d);
}

TEST(BatchRouter, IdentityPermutationInstant) {
  const Hypercube cube(5);
  std::vector<BatchPacket> batch;
  for (NodeId x = 0; x < cube.num_nodes(); ++x) batch.push_back(BatchPacket{x, x});
  const auto result = route_batch_greedy(cube, batch, 7.0);
  EXPECT_DOUBLE_EQ(result.makespan, 7.0);
}

TEST(BatchRouter, CompletionNeverBeforeHamming) {
  const int d = 7;
  const Hypercube cube(d);
  Rng rng(3);
  std::vector<BatchPacket> batch;
  for (NodeId x = 0; x < cube.num_nodes(); ++x) {
    batch.push_back(
        BatchPacket{x, static_cast<NodeId>(rng.uniform_below(cube.num_nodes()))});
  }
  const auto result = route_batch_greedy(cube, batch, 0.0);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_GE(result.completion_times[i],
              cube.distance(batch[i].origin, batch[i].destination));
  }
}

TEST(BatchRouter, RandomDestinationRoundIsOrderD) {
  // [VaB81]: a random-destination round completes in O(d) time w.h.p.;
  // empirically the makespan/d ratio is a small constant.
  const int d = 8;
  const Hypercube cube(d);
  Rng rng(5);
  double worst_ratio = 0.0;
  for (int round = 0; round < 20; ++round) {
    std::vector<BatchPacket> batch;
    for (NodeId x = 0; x < cube.num_nodes(); ++x) {
      batch.push_back(
          BatchPacket{x, static_cast<NodeId>(rng.uniform_below(cube.num_nodes()))});
    }
    const auto result = route_batch_greedy(cube, batch, 0.0);
    worst_ratio = std::max(worst_ratio, result.makespan / d);
  }
  EXPECT_GE(worst_ratio, 1.0);
  EXPECT_LE(worst_ratio, 4.0);  // R is a small constant (paper: "R > 1")
}

TEST(BatchRouter, MakespanIsMaxCompletion) {
  const Hypercube cube(4);
  Rng rng(7);
  std::vector<BatchPacket> batch;
  for (int i = 0; i < 40; ++i) {
    batch.push_back(BatchPacket{
        static_cast<NodeId>(rng.uniform_below(16)),
        static_cast<NodeId>(rng.uniform_below(16))});
  }
  const auto result = route_batch_greedy(cube, batch, 3.0);
  const double max_completion =
      *std::max_element(result.completion_times.begin(), result.completion_times.end());
  EXPECT_DOUBLE_EQ(result.makespan, max_completion);
}

}  // namespace
}  // namespace routesim
