// Unit tests for util/bits.hpp: the hypercube identity arithmetic that every
// other module builds on.

#include "util/bits.hpp"

#include <gtest/gtest.h>

namespace routesim {
namespace {

TEST(Bits, BasisNodeMatchesPaperDefinition) {
  // e_j is the node numbered 2^(j-1) (§1.1).
  EXPECT_EQ(basis_node(1), 1u);
  EXPECT_EQ(basis_node(2), 2u);
  EXPECT_EQ(basis_node(3), 4u);
  EXPECT_EQ(basis_node(10), 512u);
}

TEST(Bits, HammingDistanceIsSymmetric) {
  EXPECT_EQ(hamming_distance(0b0000, 0b1011), 3);
  EXPECT_EQ(hamming_distance(0b1011, 0b0000), 3);
  EXPECT_EQ(hamming_distance(0b1011, 0b1011), 0);
}

TEST(Bits, HammingDistanceOfComplementIsD) {
  constexpr int d = 7;
  const NodeId x = 0b1010101;
  EXPECT_EQ(hamming_distance(x, antipode(x, d)), d);
}

TEST(Bits, HammingTriangleInequality) {
  for (NodeId x = 0; x < 16; ++x) {
    for (NodeId y = 0; y < 16; ++y) {
      for (NodeId z = 0; z < 16; ++z) {
        EXPECT_LE(hamming_distance(x, z),
                  hamming_distance(x, y) + hamming_distance(y, z));
      }
    }
  }
}

TEST(Bits, HasDimensionReadsOneBasedBits) {
  const NodeId x = 0b0101;
  EXPECT_TRUE(has_dimension(x, 1));
  EXPECT_FALSE(has_dimension(x, 2));
  EXPECT_TRUE(has_dimension(x, 3));
  EXPECT_FALSE(has_dimension(x, 4));
}

TEST(Bits, LowestDimensionZeroMask) { EXPECT_EQ(lowest_dimension(0), 0); }

TEST(Bits, LowestDimensionFindsFirstSetBit) {
  EXPECT_EQ(lowest_dimension(0b0001), 1);
  EXPECT_EQ(lowest_dimension(0b0110), 2);
  EXPECT_EQ(lowest_dimension(0b1000), 4);
}

TEST(Bits, NextDimensionAfterSkipsLowBits) {
  const NodeId mask = 0b10110;  // dimensions 2, 3, 5
  EXPECT_EQ(next_dimension_after(mask, 0), 2);
  EXPECT_EQ(next_dimension_after(mask, 2), 3);
  EXPECT_EQ(next_dimension_after(mask, 3), 5);
  EXPECT_EQ(next_dimension_after(mask, 5), 0);
}

TEST(Bits, HighestDimensionFindsLastSetBit) {
  EXPECT_EQ(highest_dimension(0), 0);
  EXPECT_EQ(highest_dimension(0b0001), 1);
  EXPECT_EQ(highest_dimension(0b0110), 3);
  EXPECT_EQ(highest_dimension(0b1000), 4);
  EXPECT_EQ(highest_dimension(0xFFFFFFFFu), 32);
}

TEST(Bits, NthDimensionEnumeratesSetBits) {
  const NodeId mask = 0b101101;  // dimensions 1, 3, 4, 6
  EXPECT_EQ(nth_dimension(mask, 0), 1);
  EXPECT_EQ(nth_dimension(mask, 1), 3);
  EXPECT_EQ(nth_dimension(mask, 2), 4);
  EXPECT_EQ(nth_dimension(mask, 3), 6);
}

TEST(Bits, NthDimensionCoversAllBitsExactlyOnce) {
  const NodeId mask = 0b11010110;
  const int bits = std::popcount(mask);
  NodeId reconstructed = 0;
  for (int n = 0; n < bits; ++n) {
    reconstructed |= basis_node(nth_dimension(mask, n));
  }
  EXPECT_EQ(reconstructed, mask);
}

TEST(Bits, FlipDimensionIsInvolution) {
  const NodeId x = 0b1100;
  for (int m = 1; m <= 4; ++m) {
    EXPECT_NE(flip_dimension(x, m), x);
    EXPECT_EQ(flip_dimension(flip_dimension(x, m), m), x);
  }
}

TEST(Bits, FlipDimensionChangesExactlyOneBit) {
  for (int m = 1; m <= 8; ++m) {
    EXPECT_EQ(hamming_distance(0b10101010, flip_dimension(0b10101010, m)), 1);
  }
}

TEST(Bits, CountsMatchPaper) {
  // The d-cube has 2^d nodes and d*2^d arcs (§1.1).
  EXPECT_EQ(num_hypercube_nodes(3), 8u);
  EXPECT_EQ(num_hypercube_arcs(3), 24u);
  EXPECT_EQ(num_hypercube_nodes(10), 1024u);
  EXPECT_EQ(num_hypercube_arcs(10), 10240u);
}

TEST(Bits, AntipodeIsSelfInverse) {
  constexpr int d = 6;
  for (NodeId x = 0; x < 64; ++x) {
    EXPECT_EQ(antipode(antipode(x, d), d), x);
  }
}

TEST(Bits, AntipodeStaysInRange) {
  constexpr int d = 5;
  for (NodeId x = 0; x < 32; ++x) {
    EXPECT_LT(antipode(x, d), 32u);
  }
}

// Property sweep: the greedy "next dimension" order visits required
// dimensions in strictly increasing order and terminates at the target.
class GreedyWalkProperty : public ::testing::TestWithParam<NodeId> {};

TEST_P(GreedyWalkProperty, IncreasingDimensionWalkReachesTarget) {
  constexpr int d = 8;
  const NodeId x = GetParam();
  const NodeId z = antipode(x ^ 0b10110100, d);
  NodeId cur = x;
  int last_dim = 0;
  int steps = 0;
  while (cur != z) {
    const int dim = lowest_dimension(cur ^ z);
    ASSERT_GT(dim, last_dim);
    last_dim = dim;
    cur = flip_dimension(cur, dim);
    ASSERT_LE(++steps, d);
  }
  EXPECT_EQ(steps, hamming_distance(x, z));
}

INSTANTIATE_TEST_SUITE_P(AllOrigins, GreedyWalkProperty,
                         ::testing::Values(0u, 1u, 42u, 128u, 200u, 255u));

}  // namespace
}  // namespace routesim
