// Tests for every closed-form bound in core/bounds.hpp against hand
// calculations, ordering relations and limiting behaviour.

#include "core/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/assert.hpp"
#include "util/bits.hpp"

namespace routesim::bounds {
namespace {

TEST(Bounds, LoadFactorDefinition) {
  EXPECT_DOUBLE_EQ(load_factor({8, 1.2, 0.5}), 0.6);
  EXPECT_DOUBLE_EQ(load_factor({3, 0.0, 0.9}), 0.0);
}

TEST(Bounds, StabilityCondition) {
  EXPECT_TRUE(stability_possible({4, 1.9, 0.5}));
  EXPECT_TRUE(stability_possible({4, 2.0, 0.5}));   // rho = 1 boundary
  EXPECT_FALSE(stability_possible({4, 2.1, 0.5}));  // rho > 1
}

TEST(Bounds, MeanHopsIsDp) { EXPECT_DOUBLE_EQ(mean_hops({10, 1.0, 0.3}), 3.0); }

TEST(Bounds, Prop12HandValues) {
  // T <= dp/(1-rho): d=8, p=1/2, rho=0.5 -> 8.
  EXPECT_DOUBLE_EQ(greedy_delay_upper_bound({8, 1.0, 0.5}), 8.0);
  // rho=0.9 -> 4/(0.1) = 40 with d=8, p=1/2.
  EXPECT_NEAR(greedy_delay_upper_bound({8, 1.8, 0.5}), 40.0, 1e-9);
}

TEST(Bounds, Prop13HandValues) {
  // T >= dp + p*rho/(2(1-rho)): d=8, p=0.5, rho=0.5 -> 4 + 0.25 = 4.25.
  EXPECT_DOUBLE_EQ(greedy_delay_lower_bound({8, 1.0, 0.5}), 4.25);
}

TEST(Bounds, LowerNeverExceedsUpper) {
  for (const double rho : {0.05, 0.3, 0.6, 0.9, 0.99}) {
    for (const int d : {2, 6, 12}) {
      for (const double p : {0.1, 0.5, 1.0}) {
        const HypercubeParams hp{d, rho / p, p};
        EXPECT_LE(greedy_delay_lower_bound(hp), greedy_delay_upper_bound(hp))
            << "d=" << d << " p=" << p << " rho=" << rho;
      }
    }
  }
}

TEST(Bounds, UniversalLbBelowObliviousLbBelowGreedyLb) {
  // Prop. 2 (all schemes) <= Prop. 3 (oblivious) <= Prop. 13 (this greedy
  // scheme): each restriction tightens the bound.
  for (const double rho : {0.2, 0.5, 0.8, 0.95}) {
    const HypercubeParams hp{8, 2.0 * rho, 0.5};
    EXPECT_LE(universal_delay_lower_bound(hp), oblivious_delay_lower_bound(hp) + 1e-12);
    EXPECT_LE(oblivious_delay_lower_bound(hp), greedy_delay_lower_bound(hp) + 1e-12);
  }
}

TEST(Bounds, UniversalLbAvgFormIsWeaker) {
  for (const double rho : {0.3, 0.7, 0.9}) {
    const HypercubeParams hp{6, 2.0 * rho, 0.5};
    EXPECT_LE(universal_delay_lower_bound_avg(hp),
              universal_delay_lower_bound(hp) + 1e-12);
  }
}

TEST(Bounds, ExactP1DelayBetweenBrackets) {
  for (const double lambda : {0.2, 0.6, 0.9}) {
    const HypercubeParams hp{7, lambda, 1.0};
    const double exact = greedy_delay_exact_p1(7, lambda);
    EXPECT_GE(exact, greedy_delay_lower_bound(hp) - 1e-12);
    EXPECT_LE(exact, greedy_delay_upper_bound(hp) + 1e-12);
  }
}

TEST(Bounds, HeavyTrafficLimitsOrdered) {
  const HypercubeParams hp{9, 1.0, 0.4};
  EXPECT_DOUBLE_EQ(heavy_traffic_lower(hp), 0.2);
  EXPECT_DOUBLE_EQ(heavy_traffic_upper(hp), 3.6);
  EXPECT_LE(heavy_traffic_lower(hp), heavy_traffic_upper(hp));
}

TEST(Bounds, HeavyTrafficLimitsMatchBoundAsymptotics) {
  // (1-rho) * bound converges to the stated limits as rho -> 1.
  const int d = 6;
  const double p = 0.5;
  for (const double rho : {0.999, 0.9999}) {
    const HypercubeParams hp{d, rho / p, p};
    EXPECT_NEAR((1 - rho) * greedy_delay_upper_bound(hp), heavy_traffic_upper(hp),
                1e-6);
    EXPECT_NEAR((1 - rho) * greedy_delay_lower_bound(hp), heavy_traffic_lower(hp),
                0.01);
  }
}

TEST(Bounds, SlottedAddsTau) {
  const HypercubeParams hp{5, 1.0, 0.5};
  EXPECT_DOUBLE_EQ(slotted_delay_upper_bound(hp, 0.25),
                   greedy_delay_upper_bound(hp) + 0.25);
  EXPECT_THROW((void)slotted_delay_upper_bound(hp, 0.0), routesim::ContractViolation);
  EXPECT_THROW((void)slotted_delay_upper_bound(hp, 1.5), routesim::ContractViolation);
}

TEST(Bounds, MeanPacketsPerNode) {
  // d*rho/(1-rho): d=6, rho=0.5 -> 6.
  EXPECT_DOUBLE_EQ(mean_packets_per_node_bound({6, 1.0, 0.5}), 6.0);
}

TEST(Bounds, UnstableParametersRejected) {
  EXPECT_THROW((void)greedy_delay_upper_bound({4, 2.5, 0.5}),
               routesim::ContractViolation);
  EXPECT_THROW((void)greedy_delay_lower_bound({4, 2.0, 0.5}),
               routesim::ContractViolation);
  EXPECT_THROW((void)universal_delay_lower_bound({4, 2.0, 0.5}),
               routesim::ContractViolation);
}

TEST(Bounds, GeneralDistributionLoadFactors) {
  // f concentrated on masks {011 (dims 1,2), 100 (dim 3)} with weights
  // 1/4 and 3/4: rho_1 = rho_2 = lambda/4, rho_3 = 3 lambda/4.
  std::vector<double> pmf(8, 0.0);
  pmf[0b011] = 0.25;
  pmf[0b100] = 0.75;
  EXPECT_NEAR(dimension_load_factor(pmf, 1, 2.0), 0.5, 1e-12);
  EXPECT_NEAR(dimension_load_factor(pmf, 2, 2.0), 0.5, 1e-12);
  EXPECT_NEAR(dimension_load_factor(pmf, 3, 2.0), 1.5, 1e-12);
  EXPECT_NEAR(load_factor_general(pmf, 3, 2.0), 1.5, 1e-12);
}

TEST(Bounds, GeneralReducesToBitFlip) {
  // Bit-flip pmf as a general law: rho_j = lambda*p for every j.
  const int d = 4;
  const double p = 0.3;
  std::vector<double> pmf(16);
  for (NodeId mask = 0; mask < 16; ++mask) {
    pmf[mask] = std::pow(p, std::popcount(mask)) *
                std::pow(1 - p, d - std::popcount(mask));
  }
  for (int dim = 1; dim <= d; ++dim) {
    EXPECT_NEAR(dimension_load_factor(pmf, dim, 1.5), 1.5 * p, 1e-12);
  }
  EXPECT_NEAR(load_factor_general(pmf, d, 1.5), 1.5 * p, 1e-12);
}

// ------------------------------------------------------------------ butterfly

TEST(BflyBounds, LoadFactorUsesWorseDirection) {
  EXPECT_DOUBLE_EQ(bfly_load_factor({5, 1.0, 0.3}), 0.7);
  EXPECT_DOUBLE_EQ(bfly_load_factor({5, 1.0, 0.7}), 0.7);
  EXPECT_DOUBLE_EQ(bfly_load_factor({5, 1.0, 0.5}), 0.5);
}

TEST(BflyBounds, UniformPMaximisesSustainableLambda) {
  // For given lambda, rho is minimised at p = 1/2 (§4.2).
  const double lambda = 1.5;
  EXPECT_TRUE(bfly_stability_possible({4, lambda, 0.5}));
  EXPECT_FALSE(bfly_stability_possible({4, lambda, 0.2}));
}

TEST(BflyBounds, Prop17HandValue) {
  // d=4, lambda=1, p=1/2: T <= 4*0.5/0.5 + 4*0.5/0.5 = 8.
  EXPECT_DOUBLE_EQ(bfly_greedy_delay_upper_bound({4, 1.0, 0.5}), 8.0);
}

TEST(BflyBounds, Prop14HandValue) {
  // d=4, lambda=1, p=1/2: T >= 3 + 0.5*(1+0.5) + 0.5*(1+0.5) = 4.5.
  EXPECT_DOUBLE_EQ(bfly_universal_delay_lower_bound({4, 1.0, 0.5}), 4.5);
}

TEST(BflyBounds, LowerNeverExceedsUpper) {
  for (const double lambda : {0.2, 0.8, 1.2}) {
    for (const double p : {0.1, 0.4, 0.5, 0.8}) {
      if (lambda * std::max(p, 1 - p) >= 1.0) continue;
      const ButterflyParams bp{6, lambda, p};
      EXPECT_LE(bfly_universal_delay_lower_bound(bp),
                bfly_greedy_delay_upper_bound(bp) + 1e-12);
    }
  }
}

TEST(BflyBounds, SymmetricInP) {
  const ButterflyParams a{5, 0.9, 0.3};
  const ButterflyParams b{5, 0.9, 0.7};
  EXPECT_NEAR(bfly_greedy_delay_upper_bound(a), bfly_greedy_delay_upper_bound(b), 1e-12);
  EXPECT_NEAR(bfly_universal_delay_lower_bound(a), bfly_universal_delay_lower_bound(b),
              1e-12);
  EXPECT_NEAR(bfly_mean_packets_per_node(a), bfly_mean_packets_per_node(b), 1e-12);
}

TEST(BflyBounds, MeanPacketsPerNodeHandValue) {
  // eta = 0.5/(0.5) + 0.5/(0.5) = 2 at lambda=1, p=1/2.
  EXPECT_DOUBLE_EQ(bfly_mean_packets_per_node({4, 1.0, 0.5}), 2.0);
}

TEST(BflyBounds, HeavyTrafficLimits) {
  const ButterflyParams bp{7, 1.0, 0.3};
  EXPECT_DOUBLE_EQ(bfly_heavy_traffic_lower(bp), 0.35);
  EXPECT_DOUBLE_EQ(bfly_heavy_traffic_upper(bp), 4.9);
}

TEST(BflyBounds, UnstableRejected) {
  EXPECT_THROW((void)bfly_greedy_delay_upper_bound({4, 2.0, 0.5}),
               routesim::ContractViolation);
  EXPECT_THROW((void)bfly_universal_delay_lower_bound({4, 1.3, 0.8}),
               routesim::ContractViolation);
}

}  // namespace
}  // namespace routesim::bounds
