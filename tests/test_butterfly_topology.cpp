// Tests for the butterfly topology of §4.1.

#include "topology/butterfly.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/assert.hpp"

namespace routesim {
namespace {

using ArcKind = Butterfly::ArcKind;

TEST(ButterflyTopology, CountsMatchPaper) {
  // (d+1) 2^d nodes; d 2^(d+1) arcs.
  const Butterfly bfly(2);
  EXPECT_EQ(bfly.num_levels(), 3);
  EXPECT_EQ(bfly.rows(), 4u);
  EXPECT_EQ(bfly.num_nodes(), 12u);
  EXPECT_EQ(bfly.num_arcs(), 16u);

  const Butterfly bigger(5);
  EXPECT_EQ(bigger.num_nodes(), 6u * 32u);
  EXPECT_EQ(bigger.num_arcs(), 5u * 64u);
}

TEST(ButterflyTopology, DimensionBoundsEnforced) {
  EXPECT_THROW(Butterfly(0), ContractViolation);
  EXPECT_THROW(Butterfly(26), ContractViolation);
  EXPECT_NO_THROW(Butterfly(1));
}

TEST(ButterflyTopology, ArcIndexIsBijective) {
  const Butterfly bfly(4);
  std::set<BflyArcId> seen;
  for (int level = 1; level <= 4; ++level) {
    for (NodeId row = 0; row < bfly.rows(); ++row) {
      for (const auto kind : {ArcKind::kStraight, ArcKind::kVertical}) {
        const BflyArcId arc = bfly.arc_index(row, level, kind);
        EXPECT_LT(arc, bfly.num_arcs());
        EXPECT_TRUE(seen.insert(arc).second);
        EXPECT_EQ(bfly.arc_kind(arc), kind);
        EXPECT_EQ(bfly.arc_level(arc), level);
        EXPECT_EQ(bfly.arc_row(arc), row);
      }
    }
  }
  EXPECT_EQ(seen.size(), bfly.num_arcs());
}

TEST(ButterflyTopology, StraightArcKeepsRow) {
  const Butterfly bfly(3);
  for (int level = 1; level <= 3; ++level) {
    for (NodeId row = 0; row < bfly.rows(); ++row) {
      EXPECT_EQ(bfly.arc_target_row(bfly.arc_index(row, level, ArcKind::kStraight)),
                row);
    }
  }
}

TEST(ButterflyTopology, VerticalArcFlipsLevelBit) {
  // [x; j] connects vertically to [x XOR e_j; j+1] (§4.1).
  const Butterfly bfly(3);
  for (int level = 1; level <= 3; ++level) {
    for (NodeId row = 0; row < bfly.rows(); ++row) {
      EXPECT_EQ(bfly.arc_target_row(bfly.arc_index(row, level, ArcKind::kVertical)),
                flip_dimension(row, level));
    }
  }
}

TEST(ButterflyTopology, PathHasExactlyDArcs) {
  const Butterfly bfly(5);
  for (NodeId origin = 0; origin < bfly.rows(); origin += 7) {
    for (NodeId dest = 0; dest < bfly.rows(); dest += 5) {
      EXPECT_EQ(bfly.path(origin, dest).size(), 5u);
    }
  }
}

TEST(ButterflyTopology, PathVerticalArcsMatchHammingDistance) {
  // The path from [x;1] to [z;d+1] contains exactly H(x,z) vertical arcs,
  // at the levels where x and z differ (§4.1).
  const Butterfly bfly(6);
  for (NodeId origin = 0; origin < bfly.rows(); origin += 13) {
    for (NodeId dest = 0; dest < bfly.rows(); dest += 11) {
      int verticals = 0;
      for (const BflyArcId arc : bfly.path(origin, dest)) {
        if (bfly.arc_kind(arc) == ArcKind::kVertical) {
          ++verticals;
          EXPECT_TRUE(has_dimension(origin ^ dest, bfly.arc_level(arc)));
        }
      }
      EXPECT_EQ(verticals, hamming_distance(origin, dest));
    }
  }
}

TEST(ButterflyTopology, PathTraversesLevelsInOrder) {
  const Butterfly bfly(4);
  const auto path = bfly.path(0b0000, 0b1010);
  ASSERT_EQ(path.size(), 4u);
  NodeId row = 0b0000;
  for (int level = 1; level <= 4; ++level) {
    const BflyArcId arc = path[static_cast<std::size_t>(level - 1)];
    EXPECT_EQ(bfly.arc_level(arc), level);
    EXPECT_EQ(bfly.arc_row(arc), row);
    row = bfly.arc_target_row(arc);
  }
  EXPECT_EQ(row, 0b1010u);
}

TEST(ButterflyTopology, PathIsUniquePerPair) {
  // Distinct destination rows yield distinct arc sequences from the same
  // origin (the butterfly is a permutation-of-levels crossbar).
  const Butterfly bfly(4);
  std::set<std::vector<BflyArcId>> paths;
  for (NodeId dest = 0; dest < bfly.rows(); ++dest) {
    EXPECT_TRUE(paths.insert(bfly.path(3, dest)).second);
  }
}

TEST(ButterflyTopology, AllStraightPathWhenRowsEqual) {
  const Butterfly bfly(4);
  for (const BflyArcId arc : bfly.path(9, 9)) {
    EXPECT_EQ(bfly.arc_kind(arc), ArcKind::kStraight);
  }
}

TEST(ButterflyTopology, PathsFromSameRowShareFirstArcOnlyIfSameDirection) {
  const Butterfly bfly(2);
  // Fig. 3a sanity: from [00;1], destinations 00 and 01 diverge at level 1.
  const auto to_same = bfly.path(0b00, 0b00);
  const auto to_flip = bfly.path(0b00, 0b01);
  EXPECT_NE(to_same[0], to_flip[0]);
  EXPECT_EQ(bfly.arc_kind(to_same[0]), ArcKind::kStraight);
  EXPECT_EQ(bfly.arc_kind(to_flip[0]), ArcKind::kVertical);
}

}  // namespace
}  // namespace routesim
